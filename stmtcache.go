package qppt

import (
	"container/list"
	"sync"
)

// DefaultStmtCacheSize is the per-Conn prepared-statement cache capacity
// when Config.StmtCache is zero: comfortably more than any workload's
// distinct statement population (the SSB suite has 13) while bounding a
// client that generates unbounded distinct SQL texts.
const DefaultStmtCacheSize = 64

// StmtCacheStats aggregates every Conn's prepared-statement cache
// traffic in Engine.Stats. Hits are Binds/Queries that skipped planning
// entirely; Evicted counts LRU evictions under the per-Conn capacity;
// Cached is the number of statements currently held across all Conns.
type StmtCacheStats struct {
	Hits    int64
	Misses  int64
	Evicted int64
	Cached  int64
}

// A stmtCache is one Conn's LRU of prepared statements, keyed by SQL
// text. Counters aggregate on the owning engine so Engine.Stats reports
// cache traffic across every Conn. The cache does not fingerprint query
// options: a Conn prepares all its statements with one fixed option set
// (the wire server's per-connection defaults), so the text is the key.
type stmtCache struct {
	eng *Engine
	cap int

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	byText map[string]*list.Element
}

// stmtEntry is one cached statement.
type stmtEntry struct {
	text string
	stmt *Stmt
}

func newStmtCache(eng *Engine, capacity int) *stmtCache {
	if capacity == 0 {
		capacity = DefaultStmtCacheSize
	}
	if capacity < 0 {
		return nil // caching disabled
	}
	return &stmtCache{eng: eng, cap: capacity, ll: list.New(), byText: make(map[string]*list.Element)}
}

// lookup returns the cached statement for the text, promoting it to
// most-recently-used, and counts the hit or miss.
func (c *stmtCache) lookup(text string) (*Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byText[text]
	if !ok {
		c.eng.stmtMisses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.eng.stmtHits.Add(1)
	return el.Value.(*stmtEntry).stmt, true
}

// add caches a freshly planned statement, evicting the least recently
// used entry beyond capacity.
func (c *stmtCache) add(text string, stmt *Stmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byText[text]; ok {
		return // a concurrent PrepareCached of the same text won the race
	}
	c.byText[text] = c.ll.PushFront(&stmtEntry{text: text, stmt: stmt})
	c.eng.stmtCached.Add(1)
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.byText, last.Value.(*stmtEntry).text)
		c.eng.stmtCached.Add(-1)
		c.eng.stmtEvicted.Add(1)
	}
}

// drop empties the cache when its Conn closes, keeping the engine-wide
// Cached gauge honest.
func (c *stmtCache) drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eng.stmtCached.Add(-int64(c.ll.Len()))
	c.ll.Init()
	c.byText = make(map[string]*list.Element)
}

// len reports the number of cached statements (tests).
func (c *stmtCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
