#!/usr/bin/env bash
# Run the full local lint pass: gofmt, go vet, and the in-repo qpptvet
# analyzer suite (internal/lint) through the real `go vet -vettool`
# protocol — the same gate CI applies.
#
# Usage:
#   scripts/lint.sh                 # lint the whole module
#   scripts/lint.sh ./internal/core # lint specific packages
#
# Findings print as file:line:col: [analyzer] message. Silence a finding
# only with an auditable reason on the flagged line or the line above:
#
#   //qpptvet:ignore <analyzer> <reason>
#
# A bare ignore without a reason suppresses nothing and is itself
# reported. See README "Static analysis" for the analyzer catalogue.
set -euo pipefail
cd "$(dirname "$0")/.."

patterns=("$@")
if [ ${#patterns[@]} -eq 0 ]; then
  patterns=(./...)
fi

# gofmt: list offenders explicitly, skipping analyzer testdata trees
# (their stub sources are inputs, not build targets — though they are
# kept formatted too).
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [ -n "$unformatted" ]; then
  echo "gofmt: unformatted files:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet =="
go vet "${patterns[@]}"

echo "== qpptvet (domain invariants) =="
bin=$(mktemp -d)/qpptvet
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/qpptvet
go vet -vettool="$bin" "${patterns[@]}"

echo "lint: clean"
