#!/usr/bin/env bash
# Run the core micro-benchmarks and compare them against a baseline with
# cmd/benchdiff (gate) and benchstat (report, when installed), failing on
# >15% median regressions whose sample ranges fully separate.
#
# Usage:
#   scripts/bench_regress.sh                    # compare against the checked-in baseline
#   scripts/bench_regress.sh baseline.txt       # compare against a given baseline file
#   scripts/bench_regress.sh --interleave DIR   # compare against a base-ref worktree
#   REGEN=1 scripts/bench_regress.sh            # regenerate the checked-in baseline
#
# The benchmark set covers the engine's hot kernels: the parallel
# partition-wise merge, batched prefix-tree/KISS lookup and insert (arena
# and pointer layouts), the synchronous index scan, the fused-chain
# plan execution (fused vs materialized, serial and parallel), and the
# SWAR batch kernels (level-synchronous probe descent kernel vs scalar,
# and the range-stream selection-vector path). Benchmarks
# run with -benchmem, so cmd/benchdiff gates allocs/op next to ns/op —
# allocation regressions on the hot kernels fail CI even when wall time
# hides them in runner noise.
#
# --interleave alternates count-1 runs between the base worktree and the
# current tree instead of running one side after the other. Shared and
# burst-credit runners slow down monotonically under sustained load, so a
# sequential old-then-new comparison biases against "new"; interleaving
# gives both sides the same load profile. CI uses this mode for pull
# requests. Baseline files are machine-specific: the checked-in one is a
# non-blocking drift signal for pushes to main, never a PR gate.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=${COUNT:-6}
BENCHTIME=${BENCHTIME:-0.3s}
PATTERN='BenchmarkMergePartials|BenchmarkInsertBatch|BenchmarkLookupBatch|BenchmarkSyncScan|BenchmarkKissLookupBatch|BenchmarkKissInsertBatch|BenchmarkFusedChain|BenchmarkBatchedProbe|BenchmarkProbeKernel|BenchmarkRangeStreamKernel'
PKGS="./internal/core ./internal/prefixtree ./internal/kisstree ./internal/kernel"

run_benches() { # $1 = count
  go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$1" $PKGS
}

compare() { # $1 = old file, $2 = new file
  if command -v benchstat >/dev/null 2>&1; then
    echo; echo "=== benchstat report ==="
    benchstat "$1" "$2" || true
  fi
  echo; echo "=== regression gate (median ns/op + allocs/op, >15% separated fails) ==="
  go run ./cmd/benchdiff -old "$1" -new "$2" -threshold 15 -allocs-threshold 15
}

if [ "${REGEN:-0}" = "1" ]; then
  BASELINE=${1:-internal/bench/testdata/regress-baseline.txt}
  echo "regenerating $BASELINE (count=$COUNT, benchtime=$BENCHTIME)..."
  mkdir -p "$(dirname "$BASELINE")"
  run_benches "$COUNT" | tee "$BASELINE"
  exit 0
fi

if [ "${1:-}" = "--interleave" ]; then
  BASE_DIR=${2:?--interleave needs a base worktree directory}
  OLD=$(mktemp) NEW=$(mktemp)
  trap 'rm -f "$OLD" "$NEW"' EXIT
  for i in $(seq "$COUNT"); do
    echo "interleaved round $i/$COUNT..."
    (cd "$BASE_DIR" && run_benches 1) >> "$OLD" || true
    run_benches 1 >> "$NEW"
  done
  compare "$OLD" "$NEW"
  exit 0
fi

BASELINE=${1:-internal/bench/testdata/regress-baseline.txt}
if [ ! -f "$BASELINE" ]; then
  echo "bench_regress: baseline $BASELINE not found (run REGEN=1 $0 first)" >&2
  exit 2
fi
NEW=$(mktemp)
trap 'rm -f "$NEW"' EXIT
run_benches "$COUNT" | tee "$NEW"
compare "$BASELINE" "$NEW"
