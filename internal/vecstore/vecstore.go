// Package vecstore is the vector-at-a-time baseline engine, standing in
// for the commercial DBMS (VectorWise-style) of the paper's evaluation
// (Section 5).
//
// Operators form a volcano iterator tree, but Next delivers a *vector* of
// 1024 tuples (column-major, cache-resident) instead of a single tuple —
// eliminating the per-tuple interpretation and virtual-call overhead the
// paper attributes to the classic iterator model, while keeping
// intermediates small enough to stay in cache. Joins are vectorized hash
// joins; grouping is a separate vectorized hash aggregation. Like every
// column-wise engine it pays tuple reconstruction: each attribute carried
// across a join is copied vector by vector.
package vecstore

import (
	"fmt"

	"qppt/internal/hashbase"
)

// VectorSize is the number of tuples per vector; 1024 × 8 B columns fit
// comfortably in L1/L2 like the paper's vector model prescribes.
const VectorSize = 1024

// A Batch is one vector of tuples in column-major layout.
type Batch struct {
	N    int
	Cols [][]uint64
}

func newBatch(width int) *Batch {
	b := &Batch{Cols: make([][]uint64, width)}
	for i := range b.Cols {
		b.Cols[i] = make([]uint64, VectorSize)
	}
	return b
}

// An Op is a vectorized volcano operator: Open prepares (and for blocking
// operators consumes the children), Next fills the caller's batch and
// reports whether it produced any tuples, Schema names the output columns.
type Op interface {
	Open()
	Next(out *Batch) bool
	Schema() []string
}

// colIdx resolves a column name in a schema.
func colIdx(schema []string, name string) int {
	for i, c := range schema {
		if c == name {
			return i
		}
	}
	panic(fmt.Sprintf("vecstore: column %q not in schema %v", name, schema))
}

// Scan produces a table's columns vector by vector.
type Scan struct {
	Table map[string][]uint64
	Names []string

	cols [][]uint64
	pos  int
	n    int
}

// NewScan builds a scan over the named columns.
func NewScan(table map[string][]uint64, names ...string) *Scan {
	return &Scan{Table: table, Names: names}
}

// Open implements Op.
func (s *Scan) Open() {
	s.cols = make([][]uint64, len(s.Names))
	s.n = 0
	for i, name := range s.Names {
		c, ok := s.Table[name]
		if !ok {
			panic(fmt.Sprintf("vecstore: unknown column %q", name))
		}
		s.cols[i] = c
		s.n = len(c)
	}
	s.pos = 0
}

// Next implements Op.
func (s *Scan) Next(out *Batch) bool {
	if s.pos >= s.n {
		return false
	}
	n := min(VectorSize, s.n-s.pos)
	for i, c := range s.cols {
		copy(out.Cols[i][:n], c[s.pos:s.pos+n])
	}
	out.N = n
	s.pos += n
	return true
}

// Schema implements Op.
func (s *Scan) Schema() []string { return s.Names }

// Select filters its child with a per-tuple predicate, compacting each
// vector in place (the vectorized selection primitive).
type Select struct {
	Child Op
	// Pred receives the child batch and a tuple position.
	Pred func(b *Batch, i int) bool

	buf *Batch
}

// Open implements Op.
func (s *Select) Open() {
	s.Child.Open()
	s.buf = newBatch(len(s.Child.Schema()))
}

// Next implements Op.
func (s *Select) Next(out *Batch) bool {
	for {
		if !s.Child.Next(s.buf) {
			return false
		}
		n := 0
		for i := 0; i < s.buf.N; i++ {
			if !s.Pred(s.buf, i) {
				continue
			}
			for c := range s.buf.Cols {
				out.Cols[c][n] = s.buf.Cols[c][i]
			}
			n++
		}
		if n > 0 {
			out.N = n
			return true
		}
	}
}

// Schema implements Op.
func (s *Select) Schema() []string { return s.Child.Schema() }

// Map appends one computed column to its child's output (the vectorized
// projection primitive, e.g. extendedprice*discount).
type Map struct {
	Child Op
	Name  string
	Fn    func(b *Batch, i int) uint64
}

// Open implements Op.
func (m *Map) Open() { m.Child.Open() }

// Next implements Op.
func (m *Map) Next(out *Batch) bool {
	// Child fills the leading columns of out directly; Map fills the last.
	child := &Batch{Cols: out.Cols[:len(out.Cols)-1]}
	if !m.Child.Next(child) {
		return false
	}
	out.N = child.N
	last := out.Cols[len(out.Cols)-1]
	for i := 0; i < out.N; i++ {
		last[i] = m.Fn(child, i)
	}
	return true
}

// Schema implements Op.
func (m *Map) Schema() []string { return append(append([]string{}, m.Child.Schema()...), m.Name) }

// HashJoin is the vectorized hash join. Open drains the build child into a
// hash table (keys plus payload columns); Next streams probe vectors,
// emitting, for every match, the probe columns plus the build payload —
// the per-join tuple-reconstruction copy of the vector model. Inner
// matches may fan out one probe vector into several output vectors.
type HashJoin struct {
	Build    Op
	BuildKey string
	// BuildPayload names the build columns carried into the output
	// (empty for a pure existence/semi join).
	BuildPayload []string
	Probe        Op
	ProbeKey     string
	// Semi keeps probe tuples with at least one match, carrying no
	// build columns and never fanning out.
	Semi bool

	ht       *hashbase.MultiMap
	payload  [][]uint64 // build payload values, indexed by build row id
	probeBuf *Batch
	probeKey int
	// resume state for fan-out
	resumeRow  int
	matchBuf   []uint32
	pendingB   []uint32
	pendingRow int
}

// Open implements Op.
func (j *HashJoin) Open() {
	j.Build.Open()
	j.Probe.Open()
	bSchema := j.Build.Schema()
	bKey := colIdx(bSchema, j.BuildKey)
	pay := make([]int, len(j.BuildPayload))
	for i, name := range j.BuildPayload {
		pay[i] = colIdx(bSchema, name)
	}
	j.ht = hashbase.NewMultiMap(1024)
	j.payload = j.payload[:0]
	buf := newBatch(len(bSchema))
	for j.Build.Next(buf) {
		for i := 0; i < buf.N; i++ {
			row := make([]uint64, len(pay))
			for c, p := range pay {
				row[c] = buf.Cols[p][i]
			}
			j.ht.Insert(buf.Cols[bKey][i], uint32(len(j.payload)))
			j.payload = append(j.payload, row)
		}
	}
	j.probeBuf = newBatch(len(j.Probe.Schema()))
	j.probeBuf.N = 0
	j.probeKey = colIdx(j.Probe.Schema(), j.ProbeKey)
	j.resumeRow = 0
	j.pendingB = nil
}

// Schema implements Op.
func (j *HashJoin) Schema() []string {
	s := append([]string{}, j.Probe.Schema()...)
	if !j.Semi {
		s = append(s, j.BuildPayload...)
	}
	return s
}

// Next implements Op.
func (j *HashJoin) Next(out *Batch) bool {
	n := 0
	emit := func(row int, b uint32) {
		for c := range j.probeBuf.Cols {
			out.Cols[c][n] = j.probeBuf.Cols[c][row]
		}
		if !j.Semi {
			base := len(j.probeBuf.Cols)
			for c, v := range j.payload[b] {
				out.Cols[base+c][n] = v
			}
		}
		n++
	}
	for {
		// Drain pending fan-out from the previous call.
		for j.pendingB != nil {
			emit(j.pendingRow, j.pendingB[0])
			j.pendingB = j.pendingB[1:]
			if len(j.pendingB) == 0 {
				j.pendingB = nil
				j.resumeRow = j.pendingRow + 1
			}
			if n == VectorSize {
				out.N = n
				return true
			}
		}
		if j.resumeRow >= j.probeBuf.N {
			if !j.Probe.Next(j.probeBuf) {
				if n > 0 {
					out.N = n
					return true
				}
				return false
			}
			j.resumeRow = 0
		}
		for row := j.resumeRow; row < j.probeBuf.N; row++ {
			k := j.probeBuf.Cols[j.probeKey][row]
			if j.Semi {
				if j.ht.Contains(k) {
					emit(row, 0)
					if n == VectorSize {
						j.resumeRow = row + 1
						out.N = n
						return true
					}
				}
				continue
			}
			j.matchBuf = j.matchBuf[:0]
			j.ht.ForEach(k, func(b uint32) { j.matchBuf = append(j.matchBuf, b) })
			for mi, b := range j.matchBuf {
				emit(row, b)
				if n == VectorSize {
					if mi+1 < len(j.matchBuf) {
						// Pause mid-row: keep the unemitted matches in an
						// owned buffer (matchBuf is reused per probe row).
						j.pendingB = append([]uint32(nil), j.matchBuf[mi+1:]...)
						j.pendingRow = row
					} else {
						j.resumeRow = row + 1
					}
					out.N = n
					return true
				}
			}
		}
		j.resumeRow = j.probeBuf.N
	}
}

// HashAgg is the blocking vectorized hash aggregation: it drains its child
// at Open, grouping by one packed key column and summing the measure
// columns, then emits the group table vector by vector.
type HashAgg struct {
	Child    Op
	GroupCol string // packed group key column (callers pack multi-attr keys via Map)
	SumCols  []string

	keys  []uint64
	sums  [][]uint64
	index map[uint64]int
	pos   int
}

// Open implements Op.
func (a *HashAgg) Open() {
	a.Child.Open()
	schema := a.Child.Schema()
	g := colIdx(schema, a.GroupCol)
	sc := make([]int, len(a.SumCols))
	for i, name := range a.SumCols {
		sc[i] = colIdx(schema, name)
	}
	a.keys = a.keys[:0]
	a.sums = a.sums[:0]
	a.index = make(map[uint64]int)
	buf := newBatch(len(schema))
	for a.Child.Next(buf) {
		for i := 0; i < buf.N; i++ {
			k := buf.Cols[g][i]
			gi, ok := a.index[k]
			if !ok {
				gi = len(a.keys)
				a.index[k] = gi
				a.keys = append(a.keys, k)
				a.sums = append(a.sums, make([]uint64, len(sc)))
			}
			for c, p := range sc {
				a.sums[gi][c] += buf.Cols[p][i]
			}
		}
	}
	a.pos = 0
}

// Schema implements Op.
func (a *HashAgg) Schema() []string {
	return append([]string{a.GroupCol}, a.SumCols...)
}

// Next implements Op.
func (a *HashAgg) Next(out *Batch) bool {
	if a.pos >= len(a.keys) {
		return false
	}
	n := min(VectorSize, len(a.keys)-a.pos)
	for i := 0; i < n; i++ {
		out.Cols[0][i] = a.keys[a.pos+i]
		for c := range a.sums[a.pos+i] {
			out.Cols[1+c][i] = a.sums[a.pos+i][c]
		}
	}
	out.N = n
	a.pos += n
	return true
}

// Collect runs an operator tree to completion and materializes the result
// rows (for result delivery and tests).
func Collect(op Op) [][]uint64 {
	op.Open()
	width := len(op.Schema())
	out := newBatch(width)
	var rows [][]uint64
	for op.Next(out) {
		for i := 0; i < out.N; i++ {
			row := make([]uint64, width)
			for c := range out.Cols {
				row[c] = out.Cols[c][i]
			}
			rows = append(rows, row)
		}
	}
	return rows
}
