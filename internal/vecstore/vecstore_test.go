package vecstore

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func table(n int, gen func(i int) (a, b uint64)) map[string][]uint64 {
	ca, cb := make([]uint64, n), make([]uint64, n)
	for i := 0; i < n; i++ {
		ca[i], cb[i] = gen(i)
	}
	return map[string][]uint64{"a": ca, "b": cb}
}

func TestScanCrossesVectorBoundaries(t *testing.T) {
	n := VectorSize*3 + 17
	tab := table(n, func(i int) (uint64, uint64) { return uint64(i), uint64(i * 2) })
	rows := Collect(NewScan(tab, "a", "b"))
	if len(rows) != n {
		t.Fatalf("scanned %d rows, want %d", len(rows), n)
	}
	for i, r := range rows {
		if r[0] != uint64(i) || r[1] != uint64(i*2) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestSelectCompacts(t *testing.T) {
	n := VectorSize * 2
	tab := table(n, func(i int) (uint64, uint64) { return uint64(i % 10), uint64(i) })
	sel := &Select{
		Child: NewScan(tab, "a", "b"),
		Pred:  func(b *Batch, i int) bool { return b.Cols[0][i] < 3 },
	}
	rows := Collect(sel)
	want := 0
	for i := 0; i < n; i++ {
		if i%10 < 3 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r[0] >= 3 {
			t.Fatalf("unfiltered row %v", r)
		}
	}
}

func TestSelectAllFilteredBatches(t *testing.T) {
	// Batches that filter to zero rows must be skipped, not emitted.
	n := VectorSize * 3
	tab := table(n, func(i int) (uint64, uint64) {
		if i < VectorSize { // first vector entirely filtered out
			return 99, uint64(i)
		}
		return 1, uint64(i)
	})
	sel := &Select{
		Child: NewScan(tab, "a", "b"),
		Pred:  func(b *Batch, i int) bool { return b.Cols[0][i] == 1 },
	}
	rows := Collect(sel)
	if len(rows) != n-VectorSize {
		t.Fatalf("%d rows, want %d", len(rows), n-VectorSize)
	}
}

func TestMapComputesColumn(t *testing.T) {
	tab := table(100, func(i int) (uint64, uint64) { return uint64(i), uint64(i + 1) })
	m := &Map{
		Child: NewScan(tab, "a", "b"),
		Name:  "prod",
		Fn:    func(b *Batch, i int) uint64 { return b.Cols[0][i] * b.Cols[1][i] },
	}
	if !reflect.DeepEqual(m.Schema(), []string{"a", "b", "prod"}) {
		t.Fatalf("schema = %v", m.Schema())
	}
	rows := Collect(m)
	for _, r := range rows {
		if r[2] != r[0]*r[1] {
			t.Fatalf("row %v", r)
		}
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nb, np := 500, VectorSize*2+99
	bt := table(nb, func(i int) (uint64, uint64) { return uint64(rng.Intn(50)), uint64(i) })
	pt := table(np, func(i int) (uint64, uint64) { return uint64(rng.Intn(80)), uint64(i + 10000) })
	join := &HashJoin{
		Build:        NewScan(bt, "a", "b"),
		BuildKey:     "a",
		BuildPayload: []string{"b"},
		Probe:        NewScan(pt, "a", "b"),
		ProbeKey:     "a",
	}
	if !reflect.DeepEqual(join.Schema(), []string{"a", "b", "b"}) {
		t.Fatalf("schema = %v", join.Schema())
	}
	got := Collect(join)
	var want [][]uint64
	for p := 0; p < np; p++ {
		for b := 0; b < nb; b++ {
			if pt["a"][p] == bt["a"][b] {
				want = append(want, []uint64{pt["a"][p], pt["b"][p], bt["b"][b]})
			}
		}
	}
	sortRows(got)
	sortRows(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join: %d rows, nested loop: %d rows", len(got), len(want))
	}
}

func TestHashJoinSemi(t *testing.T) {
	bt := table(10, func(i int) (uint64, uint64) { return uint64(i), 0 })
	pt := table(100, func(i int) (uint64, uint64) { return uint64(i % 25), uint64(i) })
	join := &HashJoin{
		Build:    NewScan(bt, "a"),
		BuildKey: "a",
		Probe:    NewScan(pt, "a", "b"),
		ProbeKey: "a",
		Semi:     true,
	}
	rows := Collect(join)
	want := 0
	for i := 0; i < 100; i++ {
		if i%25 < 10 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r[0] >= 10 {
			t.Fatalf("non-matching row %v", r)
		}
	}
}

func TestHashJoinFanOutAcrossVectors(t *testing.T) {
	// One probe key with more matches than a vector holds: the join must
	// pause mid-row and resume, losing nothing.
	nb := VectorSize + 500
	bt := table(nb, func(i int) (uint64, uint64) { return 7, uint64(i) })
	pt := table(3, func(i int) (uint64, uint64) { return 7, uint64(i) })
	join := &HashJoin{
		Build:        NewScan(bt, "a", "b"),
		BuildKey:     "a",
		BuildPayload: []string{"b"},
		Probe:        NewScan(pt, "a", "b"),
		ProbeKey:     "a",
	}
	rows := Collect(join)
	if len(rows) != 3*nb {
		t.Fatalf("%d rows, want %d", len(rows), 3*nb)
	}
	// Every build value must appear exactly 3 times.
	count := map[uint64]int{}
	for _, r := range rows {
		count[r[2]]++
	}
	for v, c := range count {
		if c != 3 {
			t.Fatalf("build row %d appeared %d times", v, c)
		}
	}
}

func TestHashAgg(t *testing.T) {
	n := VectorSize*2 + 50
	tab := table(n, func(i int) (uint64, uint64) { return uint64(i % 7), uint64(i) })
	agg := &HashAgg{
		Child:    NewScan(tab, "a", "b"),
		GroupCol: "a",
		SumCols:  []string{"b"},
	}
	rows := Collect(agg)
	if len(rows) != 7 {
		t.Fatalf("%d groups, want 7", len(rows))
	}
	want := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		want[uint64(i%7)] += uint64(i)
	}
	for _, r := range rows {
		if want[r[0]] != r[1] {
			t.Fatalf("group %d = %d, want %d", r[0], r[1], want[r[0]])
		}
	}
}

func TestJoinThenAggPipeline(t *testing.T) {
	// The classic shape: filter dim, join fact, aggregate.
	dim := table(50, func(i int) (uint64, uint64) { return uint64(i), uint64(i % 4) })
	fact := table(5000, func(i int) (uint64, uint64) { return uint64(i % 50), uint64(i % 100) })
	plan := &HashAgg{
		Child: &HashJoin{
			Build: &Select{
				Child: NewScan(dim, "a", "b"),
				Pred:  func(b *Batch, i int) bool { return b.Cols[1][i] == 2 },
			},
			BuildKey:     "a",
			BuildPayload: []string{"b"},
			Probe:        NewScan(fact, "a", "b"),
			ProbeKey:     "a",
		},
		GroupCol: "a",
		SumCols:  []string{"b"},
	}
	rows := Collect(plan)
	want := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		k := uint64(i % 50)
		if k%4 == 2 {
			want[k] += uint64(i % 100)
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("%d groups, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		if want[r[0]] != r[1] {
			t.Fatalf("group %d = %d, want %d", r[0], r[1], want[r[0]])
		}
	}
}

func sortRows(rows [][]uint64) {
	sort.Slice(rows, func(i, j int) bool {
		for c := range rows[i] {
			if rows[i][c] != rows[j][c] {
				return rows[i][c] < rows[j][c]
			}
		}
		return false
	})
}
