// Package lint registers QPPT's domain invariant analyzers.
//
// Each analyzer encodes one invariant the type system cannot express —
// pin balance on spill handles, arena reference escape, cancellation
// poll cadence, lock-guarded field access, resource teardown trails.
// They run together as cmd/qpptvet, either standalone or as a
// `go vet -vettool` plugin; see the individual packages for the exact
// rules and their documented heuristics.
package lint

import (
	"qppt/internal/lint/closetrail"
	"qppt/internal/lint/ctxpoll"
	"qppt/internal/lint/lockguard"
	"qppt/internal/lint/pinbalance"
	"qppt/internal/lint/qlint"
	"qppt/internal/lint/refescape"
)

// Suite returns every registered analyzer, in stable order. Adding an
// analyzer here obligates unit tests (testdata + analysistest-style
// _test.go) and fixture coverage; the registry tests enforce both.
func Suite() []*qlint.Analyzer {
	return []*qlint.Analyzer{
		closetrail.Analyzer,
		ctxpoll.Analyzer,
		lockguard.Analyzer,
		pinbalance.Analyzer,
		refescape.Analyzer,
	}
}
