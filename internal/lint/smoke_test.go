package lint_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"qppt/internal/lint"
	"qppt/internal/lint/qlint"
)

// fixtureDir is the smoke-test module: a miniature shadow of the real
// API surface with one deliberate violation per analyzer.
const fixtureDir = "testdata/fixture"

// expected maps each analyzer to a substring of the finding it must
// produce on the fixture. Keeping one entry per registered analyzer is
// load-bearing: an analyzer added to Suite() without fixture coverage
// fails TestFixtureCoversEveryAnalyzer below.
var expected = map[string]string{
	"pinbalance": "Pin on h is not released on every return path",
	"refescape":  "arena.Ref stored in struct field c.ref",
	"ctxpoll":    "ScanAll drives t.Iterate without a cancellation poll",
	"lockguard":  "ti.indexes is guarded by idxMu but accessed without holding it",
	"closetrail": "spill.Manager created here does not reach m.Close()",
}

// loadFixtureDiags runs the in-process suite over the fixture module.
func loadFixtureDiags(t *testing.T) []qlint.Diagnostic {
	t.Helper()
	pkgs, err := qlint.Load(qlint.LoadOptions{Dir: fixtureDir}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var diags []qlint.Diagnostic
	for _, pkg := range pkgs {
		ds, err := qlint.Run(lint.Suite(), pkg)
		if err != nil {
			t.Fatal(err)
		}
		diags = append(diags, ds...)
	}
	return diags
}

// TestFixtureCoversEveryAnalyzer: every registered analyzer must produce
// its expected finding on the fixture module, and nothing else. A new
// analyzer without a planted fixture violation — or an analyzer that
// silently stops firing — fails here.
func TestFixtureCoversEveryAnalyzer(t *testing.T) {
	diags := loadFixtureDiags(t)
	byAnalyzer := map[string][]string{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d.Message)
	}
	for _, a := range lint.Suite() {
		want, ok := expected[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no expected fixture finding; plant a violation in %s and register it in the expected map", a.Name, fixtureDir)
			continue
		}
		found := false
		for _, msg := range byAnalyzer[a.Name] {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("analyzer %s produced no fixture finding matching %q; got %v", a.Name, want, byAnalyzer[a.Name])
		}
	}
	if len(diags) != len(lint.Suite()) {
		var all []string
		for _, d := range diags {
			all = append(all, d.String())
		}
		t.Errorf("fixture produced %d findings, want exactly %d (one per analyzer):\n%s",
			len(diags), len(lint.Suite()), strings.Join(all, "\n"))
	}
}

// buildQpptvet compiles the vet tool once per test binary.
func buildQpptvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qpptvet")
	cmd := exec.Command("go", "build", "-o", bin, "qppt/cmd/qpptvet")
	cmd.Dir = ".." // internal/lint -> module root is two up; go build resolves by package path anyway
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building qpptvet: %v\n%s", err, out)
	}
	return bin
}

// TestGoVetVettoolEndToEnd drives the real go vet -vettool protocol over
// the fixture module and asserts every analyzer's finding comes back
// through the go command.
func TestGoVetVettoolEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	bin := buildQpptvet(t)
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = abs
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 on the violation fixture; output:\n%s", out)
	}
	for name, want := range expected {
		marker := fmt.Sprintf("[%s] ", name)
		if !strings.Contains(string(out), marker) || !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %s finding (%q):\n%s", name, want, out)
		}
	}
}

// TestStandaloneCleanModule: the standalone runner must exit 0 on a
// clean package (the lint framework itself).
func TestStandaloneCleanModule(t *testing.T) {
	bin := buildQpptvet(t)
	cmd := exec.Command(bin, "./internal/lint/qlint/")
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("qpptvet on a clean package: %v\n%s", err, out)
	}
}

// TestSuppressionSilencesFinding: a qpptvet:ignore comment with a reason
// silences the finding; stripping the reason brings it back. Exercised
// through the real loader on a copy of the fixture.
func TestSuppressionSilencesFinding(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, fixtureDir, dir)
	corePath := filepath.Join(dir, "internal/core/core.go")
	src, err := os.ReadFile(corePath)
	if err != nil {
		t.Fatal(err)
	}
	patched := strings.Replace(string(src),
		"\tm, err := spill.New(1<<20, \"/tmp/spill\")\n\tif err != nil {\n\t\treturn\n\t}\n\tm.Register(\"t\")",
		"\t//qpptvet:ignore closetrail fixture exercises the suppression path\n\tm, err := spill.New(1<<20, \"/tmp/spill\")\n\tif err != nil {\n\t\treturn\n\t}\n\tm.Register(\"t\")", 1)
	if patched == string(src) {
		t.Fatal("fixture source changed; update the suppression patch")
	}
	if err := os.WriteFile(corePath, []byte(patched), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := qlint.Load(qlint.LoadOptions{Dir: dir}, "./internal/core/")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := qlint.Run(lint.Suite(), pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			if d.Analyzer == "closetrail" {
				t.Errorf("suppressed closetrail finding still reported: %s", d)
			}
		}
	}
}

func copyTree(t *testing.T, from, to string) {
	t.Helper()
	err := filepath.Walk(from, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(from, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(to, rel)
		if info.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
