// Package guard exercises the lockguard analyzer with a scratch copy of
// the PR 5 catalog race pattern: a per-table index cache guarded by a
// dedicated mutex.
package guard

import "sync"

// TableInfo mirrors catalog.TableInfo's index-cache corner.
type TableInfo struct {
	Name string

	idxMu   sync.Mutex
	indexes map[string]int // guarded by idxMu

	statsMu sync.RWMutex
	rows    int // guarded by statsMu
}

// Clean: lock held across the access, released by defer.
func (ti *TableInfo) Index(col string) (int, bool) {
	ti.idxMu.Lock()
	defer ti.idxMu.Unlock()
	idx, ok := ti.indexes[col]
	return idx, ok
}

// Flagged: the PR 5 race — reading the cache without the lock.
func (ti *TableInfo) IndexRacy(col string) (int, bool) {
	idx, ok := ti.indexes[col] // want `ti.indexes is guarded by idxMu but accessed without holding it`
	return idx, ok
}

// Flagged: writing without the lock is the other half of the race.
func (ti *TableInfo) PutRacy(col string, idx int) {
	if ti.indexes == nil { // want `ti.indexes is guarded by idxMu but accessed without holding it`
		ti.indexes = map[string]int{} // want `ti.indexes is guarded by idxMu but accessed without holding it`
	}
	ti.indexes[col] = idx // want `ti.indexes is guarded by idxMu but accessed without holding it`
}

// Flagged: lock released before the access; positionally the last lock
// operation before the read is the Unlock.
func (ti *TableInfo) UnlockTooEarly(col string) int {
	ti.idxMu.Lock()
	n := len(ti.indexes)
	ti.idxMu.Unlock()
	return n + ti.indexes[col] // want `ti.indexes is guarded by idxMu but accessed without holding it`
}

// Clean: the Locked-suffix convention — the caller holds idxMu.
func (ti *TableInfo) buildIndexLocked(col string) int {
	idx := len(ti.indexes)
	ti.indexes[col] = idx
	return idx
}

// Clean: RLock counts for read access under an RWMutex.
func (ti *TableInfo) Rows() int {
	ti.statsMu.RLock()
	defer ti.statsMu.RUnlock()
	return ti.rows
}

// Flagged: RWMutex fields race like any other.
func (ti *TableInfo) RowsRacy() int {
	return ti.rows // want `ti.rows is guarded by statsMu but accessed without holding it`
}

// Clean: constructor pattern — a fresh local not yet published.
func Load(name string, cols []string) *TableInfo {
	ti := &TableInfo{Name: name}
	ti.indexes = make(map[string]int, len(cols))
	for i, c := range cols {
		ti.indexes[c] = i
	}
	return ti
}

// Suppressed: audited single-writer phase.
func (ti *TableInfo) seedBeforeServe(col string, idx int) {
	//qpptvet:ignore lockguard called before the catalog is published to any session
	ti.indexes[col] = idx
}

// Clean: the mutex field itself is not guarded.
func (ti *TableInfo) withBoth(col string) int {
	ti.idxMu.Lock()
	n := ti.indexes[col]
	ti.idxMu.Unlock()
	ti.statsMu.RLock()
	n += ti.rows
	ti.statsMu.RUnlock()
	return n
}
