package lockguard_test

import (
	"testing"

	"qppt/internal/lint/lockguard"
	"qppt/internal/lint/qlinttest"
)

func TestLockGuard(t *testing.T) {
	qlinttest.Run(t, "testdata", lockguard.Analyzer, "guard")
}
