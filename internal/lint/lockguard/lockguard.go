// Package lockguard checks that struct fields annotated with a
// "// guarded by <mu>" comment are only accessed with that mutex held.
//
// The annotation is machine-checked documentation: writing
//
//	idxMu   sync.Mutex
//	indexes map[string]*core.IndexedTable // guarded by idxMu
//
// obligates every access to x.indexes to happen under x.idxMu. This pins
// the race class fixed in PR 5's catalog work (the per-table index cache
// read concurrently with BuildIndexCtx) so it cannot be reintroduced
// silently: a new method touching the map without the lock is a vet
// error, not a -race flake three sessions later.
//
// An access is considered protected when any of these hold:
//
//   - positionally, the last Lock/RLock/Unlock/RUnlock on x.<mu> before
//     the access (deferred unlocks excluded — they run at exit) is a
//     Lock or RLock in the same function body;
//   - the enclosing function's name ends in "Locked" — the codebase's
//     caller-holds-the-lock suffix convention (buildIndexLocked);
//   - the base value is a local freshly built from a composite literal
//     in the same body (constructor pattern: the value has not been
//     published yet).
//
// These are mechanical approximations, not a proof — closures that run
// after the region unlocks, or fresh locals leaked to goroutines, are
// not tracked. Genuine exceptions carry
// //qpptvet:ignore lockguard <reason> suppressions.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"qppt/internal/lint/qlint"
)

// Analyzer is the lockguard invariant checker.
var Analyzer = &qlint.Analyzer{
	Name: "lockguard",
	Doc:  "check that fields annotated `// guarded by <mu>` are only accessed with that mutex held",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *qlint.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards maps each annotated field object to the name of the
// mutex field guarding it.
func collectGuards(pass *qlint.Pass) map[types.Object]string {
	guards := map[types.Object]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardComment(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkFunc(pass *qlint.Pass, fd *ast.FuncDecl, guards map[types.Object]string) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // caller-holds-the-lock convention
	}
	fresh := freshLocals(pass, fd.Body)
	deferred := deferredCalls(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[s.Obj()]
		if !guarded {
			return true
		}
		base := qlint.ExprString(sel.X)
		if fresh[base] {
			return true
		}
		if heldAt(fd.Body, deferred, base+"."+mu, sel.Pos()) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s but accessed without holding it; lock %s.%s first or move the access into a *Locked helper",
			base, sel.Sel.Name, mu, base, mu)
		return true
	})
}

// freshLocals collects names of locals initialized from composite
// literals in this body — constructor-pattern values not yet published.
func freshLocals(pass *qlint.Pass, body *ast.BlockStmt) map[string]bool {
	fresh := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok.String() != ":=" || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = u.X
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				fresh[id.Name] = true
			}
		}
		return true
	})
	return fresh
}

// deferredCalls collects the call expressions that appear directly under
// a defer statement, so heldAt can ignore deferred unlocks.
func deferredCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	def := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			def[d.Call] = true
		}
		return true
	})
	return def
}

// heldAt reports whether, positionally, the last lock operation on
// muExpr ("ti.idxMu") before pos is a Lock or RLock. Deferred unlocks
// are skipped: `mu.Lock(); defer mu.Unlock()` keeps the lock held for
// the rest of the body.
func heldAt(body *ast.BlockStmt, deferred map[*ast.CallExpr]bool, muExpr string, pos token.Pos) bool {
	held := false
	var last token.Pos = -1
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos || deferred[call] {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || qlint.ExprString(sel.X) != muExpr {
			return true
		}
		if call.Pos() <= last {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			held, last = true, call.Pos()
		case "Unlock", "RUnlock":
			held, last = false, call.Pos()
		}
		return true
	})
	return held
}
