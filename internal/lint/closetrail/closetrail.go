// Package closetrail checks that locally created lifecycle-bearing
// resources reach their teardown call on every return path.
//
// The tracked resources and their teardown methods:
//
//	qppt.New / engine constructors  -> Engine.Close   (stops sessions, closes spill)
//	spill.New / spill.NewConfig     -> Manager.Close  (removes spill files, frees budget)
//	duplist.NewSlab / NewSlabIn     -> Slab.Release   (returns chunks to the recycler)
//	Recycler.Local()                -> Recycler.Drain (hands cached chunks back to the parent)
//	wire.NewServer                  -> Server.Close   (closes listeners, drains live connections)
//	client.New / NewConn / NewPipe  -> Conn.Close     (sends Terminate, closes the socket)
//
// A leaked Manager keeps spill files on disk; a worker-local Recycler
// that is never drained strands its chunk cache; a leaked wire Server
// or client Conn pins its sessions and their statement caches. The analyzer proves,
// per function body, that a constructor result bound to a local variable
// reaches its teardown on all paths to a normal exit. `defer x.Close()`
// is the preferred form and always satisfies the check.
//
// The same heuristics as pinbalance apply (documented there): textual
// variable matching, error-branch exemption for `x, err := ...`
// constructors, escape-as-ownership-transfer (returning the value or
// storing it in a struct hands the obligation to the new owner),
// terminal paths exempt, goto/labeled functions skipped. Results not
// bound to a plain local (`ex.wrecs[i] = rec.Local()`) escape at birth
// and are not tracked. Intentional exceptions carry
// //qpptvet:ignore closetrail <reason> suppressions.
package closetrail

import (
	"go/ast"
	"go/types"
	"strings"

	"qppt/internal/lint/qlint"
)

// Analyzer is the closetrail invariant checker.
var Analyzer = &qlint.Analyzer{
	Name: "closetrail",
	Doc:  "check that locally created Engine/spill.Manager/duplist.Slab/worker-local Recycler/wire.Server/client.Conn values reach Close/Release/Drain on every path",
	Run:  run,
}

// resource describes one tracked lifecycle: values of type pkgSuffix.
// typeName created by constructors must reach the release method.
type resource struct {
	pkgSuffix string
	typeName  string
	release   string
}

var resources = []resource{
	{"qppt", "Engine", "Close"},
	{"internal/spill", "Manager", "Close"},
	{"internal/duplist", "Slab", "Release"},
	{"internal/arena", "Recycler", "Drain"},
	{"internal/wire", "Server", "Close"},
	{"internal/wire/client", "Conn", "Close"},
}

func run(pass *qlint.Pass) error {
	pass.EachFunc(true, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
		checkBody(pass, body)
	})
	return nil
}

func checkBody(pass *qlint.Pass, body *ast.BlockStmt) {
	var g *qlint.FlowGraph // built lazily: most bodies create no resources
	qlint.InspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		res, ok := acquires(pass, call)
		if !ok {
			return true
		}
		v, ok := as.Lhs[0].(*ast.Ident)
		if !ok || v.Name == "_" {
			return true // escaped (or deliberately discarded) at birth
		}
		if g == nil {
			g = qlint.BuildFlow(body)
		}
		checkResource(pass, g, as, call, v.Name, res)
		return true
	})
}

// acquires reports whether call creates a tracked resource: a NewXxx
// constructor returning (a pointer to) a tracked type, or Local() on a
// Recycler.
func acquires(pass *qlint.Pass, call *ast.CallExpr) (resource, bool) {
	name := calleeName(call)
	isCtor := strings.HasPrefix(name, "New")
	isLocal := name == "Local"
	if !isCtor && !isLocal {
		return resource{}, false
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return resource{}, false
	}
	t := tv.Type
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return resource{}, false
		}
		t = tup.At(0).Type()
	}
	for _, res := range resources {
		if res.typeName == "Recycler" && !isLocal {
			continue // NewRecycler roots are long-lived; only Local() obligates Drain
		}
		if res.typeName != "Recycler" && !isCtor {
			continue
		}
		if qlint.NamedFrom(t, res.pkgSuffix, res.typeName) {
			return res, true
		}
	}
	return resource{}, false
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

func checkResource(pass *qlint.Pass, g *qlint.FlowGraph, acq *ast.AssignStmt, call *ast.CallExpr, varName string, res resource) {
	// defer v.Close(), directly or inside a deferred closure, tears down
	// on every exit.
	for _, d := range g.Defers {
		if isReleaseOn(d.Call, varName, res.release) {
			return
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && containsReleaseOn(lit.Body, varName, res.release) {
			return
		}
	}

	node := g.NodeContaining(acq.Pos(), acq.End())
	if node == nil {
		return
	}
	errVar := ""
	if len(acq.Lhs) == 2 {
		if id, ok := acq.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			errVar = id.Name
		}
	}

	releaseOrEscape := func(n ast.Node) bool {
		if containsReleaseOn(n, varName, res.release) {
			return true
		}
		return escapes(n, acq, varName)
	}
	if !g.AllPathsReach(node, errVar, releaseOrEscape) {
		pass.Reportf(call.Pos(),
			"%s.%s created here does not reach %s.%s() on every return path; add `defer %s.%s()` once the constructor succeeds",
			res.pkgSuffix[strings.LastIndexByte(res.pkgSuffix, '/')+1:], res.typeName, varName, res.release, varName, res.release)
	}
}

func isReleaseOn(call *ast.CallExpr, varName, release string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != release {
		return false
	}
	return qlint.ExprString(sel.X) == varName
}

func containsReleaseOn(n ast.Node, varName, release string) bool {
	found := false
	qlint.InspectShallow(n, func(m ast.Node) bool {
		if c, ok := m.(*ast.CallExpr); ok && isReleaseOn(c, varName, release) {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether node transfers ownership of the resource: the
// variable appears as a call argument, in a return statement, on the
// right of an assignment (other than the acquisition itself), in a
// composite literal, or in a channel send.
func escapes(node ast.Node, acq *ast.AssignStmt, varName string) bool {
	found := false
	isVar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == varName
	}
	qlint.InspectShallow(node, func(n ast.Node) bool {
		if found || n == acq {
			return !found
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isVar(arg) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isVar(r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			if blankAssign(n) {
				break // `_ = v` keeps ownership here
			}
			for _, r := range n.Rhs {
				if isVar(r) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					if isVar(kv.Value) {
						found = true
					}
				} else if isVar(e) {
					found = true
				}
			}
		case *ast.SendStmt:
			if isVar(n.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

// blankAssign reports whether every left-hand side of the assignment is
// the blank identifier.
func blankAssign(as *ast.AssignStmt) bool {
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
