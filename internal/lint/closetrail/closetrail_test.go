package closetrail_test

import (
	"testing"

	"qppt/internal/lint/closetrail"
	"qppt/internal/lint/qlinttest"
)

func TestCloseTrail(t *testing.T) {
	qlinttest.Run(t, "testdata", closetrail.Analyzer, "trail")
}
