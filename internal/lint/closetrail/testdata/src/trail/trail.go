// Package trail exercises the closetrail analyzer: locally created
// Engine / spill.Manager / duplist.Slab / worker-local Recycler values
// must reach Close/Release/Drain on every return path.
package trail

import (
	"qppt"
	"qppt/internal/arena"
	"qppt/internal/duplist"
	"qppt/internal/spill"
	"qppt/internal/wire"
	"qppt/internal/wire/client"
)

// Clean: the preferred form — defer right after the constructor.
func deferClose() (int, error) {
	e, err := qppt.New(qppt.Config{})
	if err != nil {
		return 0, err
	}
	defer e.Close()
	return e.Exec("q")
}

// Flagged: the engine leaks on the early return.
func leakOnEarlyReturn(q string) (int, error) {
	e, err := qppt.New(qppt.Config{}) // want `qppt.Engine created here does not reach e.Close\(\) on every return path`
	if err != nil {
		return 0, err
	}
	n, err := e.Exec(q)
	if err != nil {
		return 0, err // engine never closed on this path
	}
	e.Close()
	return n, nil
}

// Clean: the error branch of the constructor itself is exempt.
func closeAllPaths(q string) error {
	m, err := spill.New(1<<20, "/tmp/spill")
	if err != nil {
		return err
	}
	m.Register(q)
	m.Close()
	return nil
}

// Flagged: no teardown at all.
func leakManager() {
	m, err := spill.New(1<<20, "/tmp/spill") // want `spill.Manager created here does not reach m.Close\(\) on every return path`
	if err != nil {
		return
	}
	m.Register("t")
}

// Flagged: a slab released on one branch only.
func slabHalfReleased(n int) {
	s := duplist.NewSlab() // want `duplist.Slab created here does not reach s.Release\(\) on every return path`
	if n > 0 {
		s.Push(uint64(n))
		s.Release()
	}
}

// Clean: released via a deferred closure.
func slabDeferredClosure() {
	s := duplist.NewSlabIn(nil)
	defer func() { s.Release() }()
	s.Push(1)
}

// Flagged: a worker-local recycler that is never drained strands its
// chunk cache.
func localNoDrain(root *arena.Recycler) {
	lr := root.Local() // want `arena.Recycler created here does not reach lr.Drain\(\) on every return path`
	_ = lr
}

// Clean: drained on the way out.
func localDrained(root *arena.Recycler) {
	lr := root.Local()
	defer lr.Drain()
	_ = duplist.NewSlabIn(lr)
}

// Clean: root recyclers are long-lived; only Local() obligates Drain.
func rootRecycler() *arena.Recycler {
	return arena.NewRecycler()
}

// Clean: ownership transfers with the return value.
func openEngine() (*qppt.Engine, error) {
	e, err := qppt.New(qppt.Config{})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// Clean: storing the manager hands the obligation to the struct.
type server struct{ m *spill.Manager }

func (sv *server) init() error {
	m, err := spill.New(1<<20, "/tmp/spill")
	if err != nil {
		return err
	}
	sv.m = m
	return nil
}

// Clean: the wire server is torn down on every exit.
func serveWire(e *qppt.Engine, addr string) error {
	srv := wire.NewServer(e)
	defer srv.Close()
	return srv.ListenAndServe(addr)
}

// Flagged: the server leaks when ListenAndServe fails.
func serveWireLeaky(e *qppt.Engine, addr string) error {
	srv := wire.NewServer(e) // want `wire.Server created here does not reach srv.Close\(\) on every return path`
	if err := srv.ListenAndServe(addr); err != nil {
		return err // listeners and live conns never closed
	}
	srv.Close()
	return nil
}

// Clean: a dialed client connection closed via defer.
func wireRoundTrip(addr, q string) (int, error) {
	cc, err := client.New(addr)
	if err != nil {
		return 0, err
	}
	defer cc.Close()
	return cc.Query(q)
}

// Flagged: the connection leaks on the query-error path, stranding the
// server-side session and its statement cache.
func wireLeakOnError(addr, q string) (int, error) {
	cc, err := client.New(addr) // want `client.Conn created here does not reach cc.Close\(\) on every return path`
	if err != nil {
		return 0, err
	}
	n, err := cc.Query(q)
	if err != nil {
		return 0, err
	}
	cc.Close()
	return n, nil
}

// Clean: ownership of the dialed connection transfers to the caller.
func dialWire(addr string) (*client.Conn, error) {
	return client.New(addr)
}

// Suppressed: process-lifetime singleton, audited.
func globalEngine() {
	//qpptvet:ignore closetrail process-lifetime engine, closed by the exit handler
	e, _ := qppt.New(qppt.Config{})
	_ = e
}
