// Package spill is a stub of qppt/internal/spill for analyzer tests.
package spill

// Manager is a stub spill manager.
type Manager struct{ budget int64 }

// New builds a manager with a byte budget and spill directory.
func New(budget int64, dir string) (*Manager, error) {
	return &Manager{budget: budget}, nil
}

// NewConfig builds a manager from a Config.
func NewConfig(cfg Config) (*Manager, error) { return &Manager{}, nil }

// Config mirrors the manager configuration.
type Config struct{ Budget int64 }

// Close removes spill files and frees the budget.
func (m *Manager) Close() error { return nil }

// Register tracks a spillable index.
func (m *Manager) Register(name string) {}
