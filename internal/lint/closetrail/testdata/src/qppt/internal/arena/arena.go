// Package arena is a stub of qppt/internal/arena for analyzer tests.
package arena

// Recycler is a stub chunk pool.
type Recycler struct{ parent *Recycler }

// NewRecycler builds a root recycler (long-lived; no Drain obligation).
func NewRecycler() *Recycler { return &Recycler{} }

// Local derives a worker-local recycler; it must be drained back.
func (r *Recycler) Local() *Recycler { return &Recycler{parent: r} }

// Drain hands cached chunks back to the parent.
func (r *Recycler) Drain() {}
