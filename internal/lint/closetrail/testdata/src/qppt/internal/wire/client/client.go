// Package client is a stub of the wire-protocol client for analyzer tests.
package client

// Conn is a stub client connection.
type Conn struct{ open bool }

// New dials a server.
func New(addr string) (*Conn, error) { return &Conn{open: true}, nil }

// Query runs one statement.
func (c *Conn) Query(text string) (int, error) { return len(text), nil }

// Close terminates the session and closes the socket.
func (c *Conn) Close() error { c.open = false; return nil }
