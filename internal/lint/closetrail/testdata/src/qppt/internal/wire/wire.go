// Package wire is a stub of the wire-protocol server for analyzer tests.
package wire

import "qppt"

// Server is a stub serving-tier listener owner.
type Server struct{ eng *qppt.Engine }

// NewServer builds a server over an engine.
func NewServer(eng *qppt.Engine) *Server { return &Server{eng: eng} }

// ListenAndServe blocks serving connections.
func (s *Server) ListenAndServe(addr string) error { return nil }

// Close shuts the server down.
func (s *Server) Close() error { return nil }
