// Package duplist is a stub of qppt/internal/duplist for analyzer tests.
package duplist

import "qppt/internal/arena"

// Slab is a stub chunked slab.
type Slab struct{ rec *arena.Recycler }

// NewSlab builds a slab on the global recycler.
func NewSlab() *Slab { return NewSlabIn(nil) }

// NewSlabIn builds a slab drawing chunks from rec.
func NewSlabIn(rec *arena.Recycler) *Slab { return &Slab{rec: rec} }

// Release returns the slab's chunks to the recycler.
func (s *Slab) Release() {}

// Push appends a value.
func (s *Slab) Push(v uint64) {}
