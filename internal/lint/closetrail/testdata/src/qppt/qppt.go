// Package qppt is a stub of the qppt root package for analyzer tests.
package qppt

// Config mirrors the engine configuration.
type Config struct{ SpillBudget int64 }

// Engine is a stub long-lived query engine.
type Engine struct{ open bool }

// New builds an engine.
func New(cfg Config) (*Engine, error) { return &Engine{open: true}, nil }

// Close shuts the engine down.
func (e *Engine) Close() error { e.open = false; return nil }

// Exec runs a query.
func (e *Engine) Exec(q string) (int, error) { return len(q), nil }
