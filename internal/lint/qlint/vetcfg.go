package qlint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
)

// VetConfig mirrors the JSON configuration the go command hands a
// -vettool for each package (the x/tools unitchecker protocol): source
// files, the import map, and export-data locations for every
// dependency. The field set was captured empirically from `go vet`
// (go1.x); unknown fields are ignored on decode.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses one vet.cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("qlint: parsing %s: %w", path, err)
	}
	return cfg, nil
}

// LoadVetPackage type-checks the package described by cfg, resolving
// imports through the export-data files the go command listed in
// cfg.PackageFile.
func LoadVetPackage(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	compImp := importer.ForCompiler(fset, compilerOf(cfg), func(path string) (io.ReadCloser, error) {
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("qlint: no package file for %q", path)
		}
		return os.Open(f)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped := cfg.ImportMap[path]; mapped != "" {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})
	return checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
}

func compilerOf(cfg *VetConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
