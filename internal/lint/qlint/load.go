package qlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadOptions configure Load.
type LoadOptions struct {
	// Dir is the working directory for go list (the module to analyze).
	// Empty means the current directory.
	Dir string
	// Tests includes each package's in-package _test.go files (external
	// X_test packages are not analyzed).
	Tests bool
}

type listedPkg struct {
	ImportPath  string
	Dir         string
	Name        string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Standard    bool
	DepOnly     bool
	Error       *struct{ Err string }
}

// Load lists patterns with the go tool and type-checks every matched
// package from source; dependencies are imported from compiler export
// data (`go list -export`), so loading works offline and without any
// third-party packages.
func Load(opts LoadOptions, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(opts.Dir, append([]string{"-export", "-deps"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPkg
	for _, p := range pkgs {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("qlint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	if opts.Tests {
		// The test dep graph can pull in packages (testing, os/exec, ...)
		// absent from the plain graph; absorb their export data. The
		// synthetic "pkg.test" / "pkg [pkg.test]" entries are skipped —
		// in-package test files are parsed into the base package below.
		testPkgs, err := goList(opts.Dir, append([]string{"-export", "-deps", "-test"}, patterns...))
		if err != nil {
			return nil, err
		}
		for _, p := range testPkgs {
			if strings.ContainsAny(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
				continue
			}
			if p.Export != "" && exports[p.ImportPath] == "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("qlint: no export data for %q", path)
		}
		return os.Open(f)
	})
	var out []*Package
	for _, t := range targets {
		files := t.GoFiles
		if opts.Tests {
			files = append(append([]string{}, files...), t.TestGoFiles...)
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkPackage parses and type-checks one package from source files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("qlint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("qlint: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func goList(dir string, args []string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,Name,Export,GoFiles,TestGoFiles,Standard,DepOnly,Error"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(outPipe)
	var pkgs []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("qlint: go list: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("qlint: go list: %w\n%s", err, stderr.String())
	}
	return pkgs, nil
}
