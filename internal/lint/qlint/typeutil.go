package qlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Analyzers identify QPPT types by package-path suffix rather than by the
// exact module path, so the same analyzer fires on the real module
// ("qppt/internal/spill"), on analysistest-style stubs under
// testdata/src, and on the smoke-test fixture module — all of which end
// in the same "internal/<pkg>" suffix.

// PathHasSuffix reports whether package path p is suffix or ends in
// "/"+suffix.
func PathHasSuffix(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// NamedFrom reports whether t (after unwrapping pointers and aliases) is
// the named type pkgSuffix.name.
func NamedFrom(t types.Type, pkgSuffix, name string) bool {
	t = deref(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// FromPkg reports whether t's named type (after unwrapping pointers,
// slices and instantiation) is declared in a package whose path ends in
// pkgSuffix.
func FromPkg(t types.Type, pkgSuffix string) bool {
	t = deref(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && PathHasSuffix(pkg.Path(), pkgSuffix)
}

func deref(t types.Type) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return t
		}
	}
}

// MethodCall matches a call expression of the form recv.name(...) and
// returns the receiver expression. The receiver's type is checked by the
// caller via the pass's type info.
func MethodCall(call *ast.CallExpr, name string) (recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != name {
		return nil, false
	}
	return sel.X, true
}

// CallOnType reports whether call is recv.method(...) where recv's type
// is pkgSuffix.typeName, returning the receiver expression.
func (p *Pass) CallOnType(call *ast.CallExpr, pkgSuffix, typeName string, methods ...string) (ast.Expr, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	found := false
	for _, m := range methods {
		if sel.Sel.Name == m {
			found = true
			break
		}
	}
	if !found {
		return nil, "", false
	}
	tv, ok := p.TypesInfo.Types[sel.X]
	if !ok || !NamedFrom(tv.Type, pkgSuffix, typeName) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// ExprString renders an expression in canonical source form, for
// receiver-identity matching ("h", "r.h", "ex.spill").
func ExprString(e ast.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.SelectorExpr:
		writeExpr(b, e.X)
		b.WriteByte('.')
		b.WriteString(e.Sel.Name)
	case *ast.ParenExpr:
		writeExpr(b, e.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		writeExpr(b, e.X)
	case *ast.IndexExpr:
		writeExpr(b, e.X)
		b.WriteByte('[')
		writeExpr(b, e.Index)
		b.WriteByte(']')
	case *ast.BasicLit:
		b.WriteString(e.Value)
	case *ast.CallExpr:
		writeExpr(b, e.Fun)
		b.WriteString("(…)")
	default:
		b.WriteString("…")
	}
}

// InspectShallow walks n without descending into function literals, so a
// per-body analysis never attributes a closure's statements to its
// enclosing function.
func InspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return visit(m)
	})
}
