package qlint

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// ignoreRe matches the auditable suppression form:
//
//	//qpptvet:ignore pinbalance reason text...
//	//qpptvet:ignore pinbalance,closetrail reason text...
//
// Group 1 is the comma-separated analyzer list, group 2 the reason.
var ignoreRe = regexp.MustCompile(`^//\s*qpptvet:ignore\s+([a-z][a-z0-9_,]*)\s*(.*)$`)

type suppression struct {
	analyzers map[string]bool
	reason    string
	used      bool
	file      string
	line      int
}

// collectSuppressions indexes every qpptvet:ignore comment by (file, line).
func collectSuppressions(pkg *Package) map[string][]*suppression {
	byLine := make(map[string][]*suppression) // "file:line" -> suppressions
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				// Analyzer testdata marks expected diagnostics with
				// trailing "// want" comments; never count those as the
				// suppression's justification.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = strings.TrimSpace(reason[:i])
				}
				s := &suppression{
					analyzers: make(map[string]bool),
					reason:    reason,
					file:      pos.Filename,
					line:      pos.Line,
				}
				for _, name := range strings.Split(m[1], ",") {
					s.analyzers[strings.TrimSpace(name)] = true
				}
				key := posKey(pos.Filename, pos.Line)
				byLine[key] = append(byLine[key], s)
			}
		}
	}
	return byLine
}

func posKey(file string, line int) string {
	return file + "\x00" + strconv.Itoa(line)
}

// filterSuppressed drops diagnostics covered by a qpptvet:ignore comment
// on the same line or the line above, and reports malformed suppressions
// (missing reason) so an unexplained ignore can never silently pass CI.
func filterSuppressed(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	sups := collectSuppressions(pkg)
	if len(sups) == 0 {
		return diags
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if s := matchSuppression(sups, d); s != nil {
			s.used = true
			continue
		}
		kept = append(kept, d)
	}
	// Malformed or dangling suppressions are findings themselves: an
	// ignore without a reason is not auditable, and one naming an unknown
	// analyzer is probably a typo hiding nothing.
	for _, list := range sups {
		for _, s := range list {
			if s.reason == "" {
				kept = append(kept, Diagnostic{
					Analyzer: "qpptvet",
					Pos:      positionAt(s),
					Message:  "qpptvet:ignore needs a reason: //qpptvet:ignore <analyzer> <why>",
				})
				continue
			}
			for name := range s.analyzers {
				if !known[name] {
					kept = append(kept, Diagnostic{
						Analyzer: "qpptvet",
						Pos:      positionAt(s),
						Message:  "qpptvet:ignore names unknown analyzer " + name,
					})
				}
			}
		}
	}
	return kept
}

func matchSuppression(sups map[string][]*suppression, d Diagnostic) *suppression {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, s := range sups[posKey(d.Pos.Filename, line)] {
			if s.analyzers[d.Analyzer] && s.reason != "" {
				return s
			}
		}
	}
	return nil
}

func positionAt(s *suppression) (p token.Position) {
	p.Filename = s.file
	p.Line = s.line
	p.Column = 1
	return p
}
