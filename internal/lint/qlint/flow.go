package qlint

import (
	"go/ast"
	"go/token"
)

// This file implements a small statement-level control-flow graph over a
// single function body, with the two path queries the lifecycle analyzers
// need:
//
//   - AllPathsReach: from a given statement, does every path to a normal
//     function exit pass a node matching a predicate? (pinbalance,
//     closetrail: the release must happen on all return paths)
//   - AnyPathReaches: from a given statement, can execution reach a node
//     matching a predicate? (refescape: a compact pointer read reachable
//     after its backing arena was reset)
//
// The graph is deliberately conservative and syntax-directed. Paths that
// end in panic(...), os.Exit, t.Fatal and friends are not required to
// release resources (the goroutine is unwinding). goto and labeled
// break/continue mark the graph Unsupported; analyzers skip such functions
// rather than guess. Function literals are opaque single nodes — closures
// get their own graphs.

// A flowBlock is a basic block: a run of nodes with branch-free flow.
type flowBlock struct {
	nodes []ast.Node
	succs []*flowBlock
	// failIdx, when >= 0, records that this block ends in a branch on
	// `<errVar> != nil` (or `== nil`) and succs[failIdx] is the branch
	// taken when errVar is non-nil. AllPathsReach uses it to skip the
	// failure branch of the very call that acquired the resource.
	errVar  string
	failIdx int
}

// A FlowGraph is the CFG of one function body.
type FlowGraph struct {
	entry  *flowBlock
	exit   *flowBlock
	blocks []*flowBlock
	// Defers collects every defer statement in the body, including
	// conditional ones — treated as if they always run, a deliberate
	// approximation in the code's favor.
	Defers []*ast.DeferStmt
	// Unsupported is set when the body uses goto or labeled
	// break/continue; path queries on an unsupported graph answer
	// optimistically so analyzers stay silent instead of guessing.
	Unsupported bool
}

type loopFrame struct {
	brk, cont *flowBlock
}

type flowBuilder struct {
	g     *FlowGraph
	loops []loopFrame
	// switch/select "break" targets stack interleaved with loops: break
	// binds to the innermost breakable construct.
	breaks []*flowBlock
}

// BuildFlow constructs the control-flow graph of body.
func BuildFlow(body *ast.BlockStmt) *FlowGraph {
	g := &FlowGraph{}
	b := &flowBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	last := b.stmts(g.entry, body.List)
	b.link(last, g.exit) // falling off the end is a normal exit
	return g
}

func (b *flowBuilder) newBlock() *flowBlock {
	blk := &flowBlock{failIdx: -1}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *flowBuilder) link(from, to *flowBlock) {
	if from != nil && to != nil {
		from.succs = append(from.succs, to)
	}
}

// stmts threads list through cur, returning the block open at the end
// (nil when the list always transfers control elsewhere).
func (b *flowBuilder) stmts(cur *flowBlock, list []ast.Stmt) *flowBlock {
	for _, s := range list {
		cur = b.stmt(cur, s)
		if cur == nil {
			// Unreachable trailing code: keep it in a fresh dead block so
			// its nodes still exist for position lookups.
			cur = b.newBlock()
		}
	}
	return cur
}

func (b *flowBuilder) stmt(cur *flowBlock, s ast.Stmt) *flowBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.LabeledStmt:
		// The label itself is harmless; only branches naming it are (and
		// they independently mark the graph unsupported).
		return b.stmt(cur, s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		markErrCond(cur, s.Cond)
		after := b.newBlock()
		thenStart := b.newBlock()
		b.link(cur, thenStart) // succs[0] = cond-true branch
		b.link(b.stmts(thenStart, s.Body.List), after)
		if s.Else != nil {
			elseStart := b.newBlock()
			b.link(cur, elseStart) // succs[1] = cond-false branch
			b.link(b.stmt(elseStart, s.Else), after)
		} else {
			b.link(cur, after) // succs[1] = fallthrough
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		b.link(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
			b.link(b.stmt(post, s.Post), head)
		}
		bodyStart := b.newBlock()
		b.link(head, bodyStart)
		if s.Cond != nil {
			b.link(head, after) // for{} without cond only exits via break
		}
		b.pushLoop(after, post)
		b.link(b.stmts(bodyStart, s.Body.List), post)
		b.popLoop()
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		after := b.newBlock()
		b.link(cur, head)
		head.nodes = append(head.nodes, s.X)
		bodyStart := b.newBlock()
		b.link(head, bodyStart)
		b.link(head, after)
		b.pushLoop(after, head)
		b.link(b.stmts(bodyStart, s.Body.List), head)
		b.popLoop()
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(cur, s)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.link(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		if s.Label != nil {
			b.g.Unsupported = true
			return nil
		}
		switch s.Tok {
		case token.BREAK:
			if n := len(b.breaks); n > 0 {
				b.link(cur, b.breaks[n-1])
			} else {
				b.g.Unsupported = true
			}
		case token.CONTINUE:
			if n := len(b.loops); n > 0 {
				b.link(cur, b.loops[n-1].cont)
			} else {
				b.g.Unsupported = true
			}
		case token.GOTO:
			b.g.Unsupported = true
		case token.FALLTHROUGH:
			// Handled by switchLike; seeing one here means a malformed
			// tree — be conservative.
			b.g.Unsupported = true
		}
		return nil

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		cur.nodes = append(cur.nodes, s)
		return cur

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isTerminalCall(s.X) {
			return nil // panic/os.Exit/t.Fatal...: path never exits normally
		}
		return cur

	default:
		// Assign, Decl, IncDec, Send, Go, Empty: straight-line.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchLike lowers switch / type switch / select to branches.
func (b *flowBuilder) switchLike(cur *flowBlock, s ast.Stmt) *flowBlock {
	after := b.newBlock()
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}

	b.breaks = append(b.breaks, after)
	type caseBody struct {
		start *flowBlock
		list  []ast.Stmt
	}
	bodies := make([]caseBody, 0, len(clauses))
	for _, c := range clauses {
		start := b.newBlock()
		b.link(cur, start)
		switch c := c.(type) {
		case *ast.CaseClause:
			if len(c.List) == 0 {
				hasDefault = true
			}
			for _, e := range c.List {
				start.nodes = append(start.nodes, e)
			}
			bodies = append(bodies, caseBody{start, c.Body})
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				start = b.stmt(start, c.Comm)
				if start == nil {
					start = b.newBlock()
				}
			}
			bodies = append(bodies, caseBody{start, c.Body})
		}
	}
	for i, cb := range bodies {
		list := cb.list
		fall := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				list, fall = list[:n-1], true
			}
		}
		end := b.stmts(cb.start, list)
		if fall && i+1 < len(bodies) {
			b.link(end, bodies[i+1].start)
		} else {
			b.link(end, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		// A switch without default (or an empty one) can fall through
		// untouched; a select without default blocks, but modeling the
		// skip keeps the query conservative for AllPathsReach.
		b.link(cur, after)
	}
	return after
}

func (b *flowBuilder) pushLoop(brk, cont *flowBlock) {
	b.loops = append(b.loops, loopFrame{brk, cont})
	b.breaks = append(b.breaks, brk)
}

func (b *flowBuilder) popLoop() {
	b.loops = b.loops[:len(b.loops)-1]
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// markErrCond recognizes `x != nil` / `x == nil` branch conditions.
func markErrCond(blk *flowBlock, cond ast.Expr) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	var id *ast.Ident
	if i, ok := bin.X.(*ast.Ident); ok && isNilIdent(bin.Y) {
		id = i
	} else if i, ok := bin.Y.(*ast.Ident); ok && isNilIdent(bin.X) {
		id = i
	}
	if id == nil {
		return
	}
	switch bin.Op {
	case token.NEQ:
		blk.errVar, blk.failIdx = id.Name, 0 // succs[0] = "x != nil" taken
	case token.EQL:
		blk.errVar, blk.failIdx = id.Name, 1 // succs[1] = "x == nil" not taken
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isTerminalCall reports whether e is a call that never returns.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "FailNow", "Goexit", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// NodeContaining returns the graph node (statement or condition) whose
// source range encloses [pos, end), or nil. Graph nodes are disjoint, so
// the first hit is the only one.
func (g *FlowGraph) NodeContaining(pos, end token.Pos) ast.Node {
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if n.Pos() <= pos && end <= n.End() {
				return n
			}
		}
	}
	return nil
}

// findNode locates the block and node index holding n (by identity).
func (g *FlowGraph) findNode(n ast.Node) (*flowBlock, int) {
	for _, blk := range g.blocks {
		for i, node := range blk.nodes {
			if node == n {
				return blk, i
			}
		}
	}
	return nil, 0
}

// pathState keys the DFS memo: position plus whether the acquisition's
// error variable still holds the acquisition result.
type pathState struct {
	blk     *flowBlock
	errLive bool
}

// AllPathsReach reports whether, starting from the statement `from`
// (which must be a node of the graph), every path to a normal function
// exit passes a node for which match returns true. errVar, when
// non-empty, names the variable that received the acquisition's error:
// branches taken only when that variable is non-nil are excluded until
// the variable is reassigned. Unsupported graphs answer true.
func (g *FlowGraph) AllPathsReach(from ast.Node, errVar string, match func(ast.Node) bool) bool {
	if g.Unsupported {
		return true
	}
	blk, idx := g.findNode(from)
	if blk == nil {
		return true // not in graph (dead code): nothing to prove
	}
	memo := make(map[pathState]bool)
	onPath := make(map[pathState]bool)
	var walk func(blk *flowBlock, idx int, errLive bool) bool
	walk = func(blk *flowBlock, idx int, errLive bool) bool {
		if idx == 0 {
			st := pathState{blk, errLive}
			if v, ok := memo[st]; ok {
				return v
			}
			if onPath[st] {
				return true // looping path: never exits
			}
			onPath[st] = true
			defer func() { delete(onPath, st) }()
		}
		if blk == g.exit {
			return false
		}
		for i := idx; i < len(blk.nodes); i++ {
			n := blk.nodes[i]
			if match(n) {
				return true
			}
			if errLive && errVar != "" && reassigns(n, errVar) {
				errLive = false
			}
		}
		if len(blk.succs) == 0 {
			return true // terminated path (panic etc.)
		}
		ok := true
		for i, succ := range blk.succs {
			if errLive && blk.errVar == errVar && errVar != "" && i == blk.failIdx {
				continue // the acquisition itself failed: nothing to release
			}
			if !walk(succ, 0, errLive) {
				ok = false
				break
			}
		}
		if idx == 0 {
			memo[pathState{blk, errLive}] = ok
		}
		return ok
	}
	return walk(blk, idx+1, errVar != "")
}

// AnyPathReaches reports whether a node matching match is reachable from
// the statement `from` (exclusive) without first passing a node for which
// kill returns true (kill may be nil). Unsupported graphs answer false.
// The first reached matching node is returned for diagnostics.
func (g *FlowGraph) AnyPathReaches(from ast.Node, match, kill func(ast.Node) bool) (ast.Node, bool) {
	if g.Unsupported {
		return nil, false
	}
	blk, idx := g.findNode(from)
	if blk == nil {
		return nil, false
	}
	seen := make(map[*flowBlock]bool)
	var walk func(blk *flowBlock, idx int) (ast.Node, bool)
	walk = func(blk *flowBlock, idx int) (ast.Node, bool) {
		if idx == 0 {
			if seen[blk] {
				return nil, false
			}
			seen[blk] = true
		}
		for i := idx; i < len(blk.nodes); i++ {
			if match(blk.nodes[i]) {
				return blk.nodes[i], true
			}
			if kill != nil && kill(blk.nodes[i]) {
				return nil, false
			}
		}
		for _, succ := range blk.succs {
			if n, ok := walk(succ, 0); ok {
				return n, true
			}
		}
		return nil, false
	}
	return walk(blk, idx+1)
}

// reassigns reports whether node assigns to a variable named name.
func reassigns(n ast.Node, name string) bool {
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
				return true
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if id.Name == name {
							return true
						}
					}
				}
			}
		}
	}
	return false
}
