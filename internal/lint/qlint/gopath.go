package qlint

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadTestdata type-checks one package from an analysistest-style tree:
// root/src/<path>/*.go, with imports resolved first against root/src
// (stub packages mimicking QPPT's internal APIs) and then against the
// standard library via compiler export data. This is how analyzer unit
// tests and the qpptvet smoke fixture load their cases.
func LoadTestdata(root, path string) (*Package, error) {
	gi := &gopathImporter{
		root: root,
		fset: token.NewFileSet(),
		memo: map[string]*types.Package{},
		pkgs: map[string]*Package{},
	}
	gi.std = importer.ForCompiler(gi.fset, "gc", func(p string) (io.ReadCloser, error) {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", p).Output()
		if err != nil {
			return nil, fmt.Errorf("qlint: resolving stdlib %q: %w", p, err)
		}
		f := strings.TrimSpace(string(out))
		if f == "" {
			return nil, fmt.Errorf("qlint: no export data for stdlib %q", p)
		}
		return os.Open(f)
	})
	if _, err := gi.Import(path); err != nil {
		return nil, err
	}
	return gi.pkgs[path], nil
}

type gopathImporter struct {
	root string
	fset *token.FileSet
	memo map[string]*types.Package
	pkgs map[string]*Package
	std  types.Importer
}

func (gi *gopathImporter) Import(path string) (*types.Package, error) {
	if p, ok := gi.memo[path]; ok {
		return p, nil
	}
	dir := filepath.Join(gi.root, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		p, err := gi.std.Import(path)
		if err != nil {
			return nil, err
		}
		gi.memo[path] = p
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("qlint: no Go files in %s", dir)
	}
	pkg, err := checkPackage(gi.fset, gi, path, dir, names)
	if err != nil {
		return nil, err
	}
	gi.memo[path] = pkg.Types
	gi.pkgs[path] = pkg
	return pkg.Types, nil
}
