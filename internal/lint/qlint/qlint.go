// Package qlint is a minimal, dependency-free analysis framework in the
// shape of golang.org/x/tools/go/analysis, built for QPPT's domain
// invariant checkers (cmd/qpptvet).
//
// The vendored x/tools framework is deliberately not used: this module has
// no third-party dependencies and the analyzers only need per-package
// syntax + type information, which the standard library provides. The API
// mirrors go/analysis closely (Analyzer, Pass, Diagnostic), so migrating
// onto x/tools later is a mechanical change.
//
// Suppressions: any diagnostic can be silenced with an auditable comment
// on the flagged line or the line directly above it:
//
//	//qpptvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory — a bare ignore without justification does not
// suppress anything (and itself raises a diagnostic), so every silenced
// finding carries its audit trail in the source.
package qlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// comments. Lower-case, no spaces.
	Name string

	// Doc is the analyzer's help text: first line is a one-line
	// summary, the rest documents the exact rule and its heuristics.
	Doc string

	// Run performs the analysis on one package. Findings are delivered
	// through pass.Report / pass.Reportf; the error return is for
	// operational failures only (it aborts the whole run).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  msg,
	})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Run applies every analyzer to the package and returns the surviving
// diagnostics (suppressed findings filtered out, bad suppression comments
// reported), sorted by position.
func Run(analyzers []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}
	diags = filterSuppressed(pkg, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(visit func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, visit)
	}
}

// EachFunc invokes fn for every function body in the package: named
// function and method declarations, and — when literals is true —
// function literals (each literal visited as its own body, so a checker
// that analyzes bodies independently sees closures exactly once).
func (p *Pass) EachFunc(literals bool, fn func(name string, ftype *ast.FuncType, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd.Name.Name, fd.Type, fd.Body)
			if literals {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						fn(fd.Name.Name+":func literal", lit.Type, lit.Body)
					}
					return true
				})
			}
		}
	}
}
