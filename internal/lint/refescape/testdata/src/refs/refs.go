// Package refs exercises the refescape analyzer: arena.Ref compact
// pointers must not be stored in struct fields outside the arena-owned
// packages nor read after their backing storage is invalidated.
package refs

import "qppt/internal/arena"

// holder is NOT an arena-owned type, so persisting a Ref in it dangles.
type holder struct {
	ref arena.Ref
	n   int
}

var global arena.Ref

// Flagged: field store outside the owned packages.
func storeField(h *holder, a *arena.Arena) {
	h.ref = a.Alloc() // want `arena.Ref stored in struct field h.ref`
}

// Flagged: composite literal smuggling a Ref into a struct.
func storeLiteral(a *arena.Arena) holder {
	return holder{ref: a.Alloc()} // want `arena.Ref stored in struct literal`
}

// Flagged: package-level variable.
func storeGlobal(a *arena.Arena) {
	global = a.Alloc() // want `arena.Ref stored in package-level variable global`
}

// Clean: locals and parameters may carry Refs.
func localUse(a *arena.Arena) int {
	r := a.Alloc()
	return a.At(r)
}

// Flagged: reading a Ref after the arena was reset.
func useAfterReset(a *arena.Arena) int {
	r := a.Alloc()
	a.Reset()
	return a.At(r) // want `arena.Ref r is read after a.Reset\(\)`
}

// Flagged: the invalidation reaches the read through a loop back edge.
func useAfterResetLoop(a *arena.Arena, n int) int {
	sum := 0
	r := a.Alloc()
	for i := 0; i < n; i++ {
		sum += a.At(r) // want `arena.Ref r is read after a.Reset\(\)`
		a.Reset()
	}
	return sum
}

// Clean: the Ref is reassigned after the reset before any read.
func refreshAfterReset(a *arena.Arena) int {
	r := a.Alloc()
	a.Reset()
	r = a.Alloc()
	return a.At(r)
}

// Clean: the read happens strictly before the invalidation.
func readThenReset(a *arena.Arena) int {
	r := a.Alloc()
	v := a.At(r)
	a.Detach()
	return v
}

// Clean: Ref defined after the invalidation is fresh.
func freshAfterDetach(a *arena.Arena) int {
	a.Detach()
	r := a.Alloc()
	return a.At(r)
}

// Flagged: parameters count as live Refs too.
func useParamAfterRecycle(a *arena.Arena, rec *arena.Recycler, r arena.Ref) int {
	a.Recycle(rec)
	return a.At(r) // want `arena.Ref r is read after a.Recycle\(\)`
}

// Suppressed: audited exception.
func auditedUse(a *arena.Arena) int {
	r := a.Alloc()
	a.Reset()
	//qpptvet:ignore refescape the chunk is known to stay resident in this test helper
	return a.At(r)
}
