// Package arena is a stub of qppt/internal/arena for analyzer tests.
package arena

// Ref is a tagged compact pointer into arena storage.
type Ref uint32

// Nil is the zero Ref.
const Nil Ref = 0

// NodeRef builds a Ref from a node index.
func NodeRef(idx uint32) Ref { return Ref(idx + 1) }

// Index recovers the index.
func (r Ref) Index() uint32 { return uint32(r) - 1 }

// Arena is a stub chunked arena.
type Arena struct{ n int }

func (a *Arena) Alloc() Ref   { a.n++; return NodeRef(uint32(a.n)) }
func (a *Arena) Reset()       { a.n = 0 }
func (a *Arena) Detach()      {}
func (a *Arena) At(r Ref) int { return int(r.Index()) }

// Recycler is a stub chunk pool.
type Recycler struct{}

func (a *Arena) Recycle(rec *Recycler) {}
