package refescape_test

import (
	"testing"

	"qppt/internal/lint/qlinttest"
	"qppt/internal/lint/refescape"
)

func TestRefEscape(t *testing.T) {
	qlinttest.Run(t, "testdata", refescape.Analyzer, "refs")
}
