// Package refescape checks that arena.Ref compact pointers stay inside
// the code that owns their lifetime.
//
// An arena.Ref is a 32-bit tagged index into chunked arena storage; it is
// only meaningful while the backing arena's chunks are live. Two classes
// of misuse are flagged:
//
//  1. Storing a Ref into a struct field (or package-level variable)
//     outside the arena-owned packages (internal/arena and the tree /
//     duplist packages built directly on it). Long-lived copies of
//     compact pointers silently dangle when the arena is reset, detached
//     for spilling, or recycled; consumers must keep index positions or
//     copy payloads out instead.
//
//  2. Reading a Ref-typed local after a call to Reset / Detach / Recycle
//     on an arena (or tree Recycle / slab Release) that can reach the
//     read. The check is receiver-agnostic — any invalidation kills every
//     live Ref in the function — because the Ref carries no link to its
//     backing arena; a reassignment of the Ref revives it.
//
// Functions using goto or labeled branches are skipped by the
// reachability half of the check.
package refescape

import (
	"go/ast"
	"go/types"

	"qppt/internal/lint/qlint"
)

// Analyzer is the refescape invariant checker.
var Analyzer = &qlint.Analyzer{
	Name: "refescape",
	Doc:  "check that arena.Ref compact pointers are not stored in struct fields outside arena-owned packages or used after arena Reset/Detach/Recycle",
	Run:  run,
}

// ownedPkgs build directly on arena storage and legitimately embed Refs
// in their node structures.
var ownedPkgs = []string{
	"internal/arena",
	"internal/prefixtree",
	"internal/prefixtree/ptrtree",
	"internal/kisstree",
	"internal/duplist",
}

func isOwned(path string) bool {
	for _, p := range ownedPkgs {
		if qlint.PathHasSuffix(path, p) {
			return true
		}
	}
	return false
}

func isRef(t types.Type) bool {
	return t != nil && qlint.NamedFrom(t, "internal/arena", "Ref")
}

func run(pass *qlint.Pass) error {
	if isOwned(pass.Pkg.Path()) {
		return nil
	}
	checkStores(pass)
	pass.EachFunc(true, func(name string, ftype *ast.FuncType, body *ast.BlockStmt) {
		checkLiveness(pass, ftype, body)
	})
	return nil
}

// checkStores flags Refs stored into struct fields, package-level
// variables, or composite literal fields.
func checkStores(pass *qlint.Pass) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0] // multi-value call: flag if any LHS is a persistent Ref slot
				}
				if rhs == nil || !isRef(pass.TypesInfo.Types[lhs].Type) {
					continue
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
						pass.Reportf(n.Pos(), "arena.Ref stored in struct field %s outside the arena-owned packages; compact pointers dangle after Reset/Detach/Recycle — keep an index or copy the payload", qlint.ExprString(sel))
					}
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
						pass.Reportf(n.Pos(), "arena.Ref stored in package-level variable %s; compact pointers dangle after Reset/Detach/Recycle", id.Name)
					}
				}
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.Types[n].Type
			if t == nil {
				return true
			}
			if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
				return true
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if isRef(pass.TypesInfo.Types[val].Type) {
					pass.Reportf(val.Pos(), "arena.Ref stored in struct literal outside the arena-owned packages; compact pointers dangle after Reset/Detach/Recycle — keep an index or copy the payload")
				}
			}
		}
		return true
	})
}

// invalidators kill every live compact pointer into their receiver's
// storage; since a Ref does not identify its arena, any of them kills
// all live Refs in the function.
func isInvalidator(pass *qlint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Reset", "Detach", "Recycle":
		return qlint.FromPkg(tv.Type, "internal/arena") ||
			qlint.FromPkg(tv.Type, "internal/prefixtree") ||
			qlint.FromPkg(tv.Type, "internal/kisstree")
	case "Release":
		return qlint.FromPkg(tv.Type, "internal/duplist")
	}
	return false
}

func checkLiveness(pass *qlint.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	// Collect Ref-typed locals (including parameters) and invalidator
	// call sites; both are rare, so bail out early when absent.
	refVars := map[*types.Var]bool{}
	addDef := func(id *ast.Ident) {
		if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok && isRef(v.Type()) {
			refVars[v] = true
		}
	}
	if ftype != nil && ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, id := range field.Names {
				addDef(id)
			}
		}
	}
	qlint.InspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					addDef(id)
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				addDef(id)
			}
		}
		return true
	})
	var invalidators []*ast.CallExpr
	qlint.InspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isInvalidator(pass, call) {
			invalidators = append(invalidators, call)
		}
		return true
	})
	if len(invalidators) == 0 || len(refVars) == 0 {
		return
	}

	g := qlint.BuildFlow(body)
	for _, inv := range invalidators {
		node := g.NodeContaining(inv.Pos(), inv.End())
		if node == nil {
			continue
		}
		for v := range refVars {
			if v.Pos() > inv.Pos() {
				continue // defined after the invalidation: a fresh ref
			}
			use, found := g.AnyPathReaches(node,
				func(n ast.Node) bool { return readsVar(pass, n, v) },
				func(n ast.Node) bool { return overwritesVar(pass, n, v) })
			if found {
				pass.Reportf(use.Pos(), "arena.Ref %s is read after %s — compact pointers do not survive arena Reset/Detach/Recycle", v.Name(), callLabel(inv))
			}
		}
	}
}

func callLabel(call *ast.CallExpr) string {
	return qlint.ExprString(call.Fun) + "()"
}

// readsVar reports whether node reads v (any use that is not a plain
// overwrite target).
func readsVar(pass *qlint.Pass, node ast.Node, v *types.Var) bool {
	writes := map[*ast.Ident]bool{}
	if as, ok := node.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				writes[id] = true
			}
		}
	}
	found := false
	qlint.InspectShallow(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !writes[id] {
			if pass.TypesInfo.Uses[id] == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// overwritesVar reports whether node assigns v a fresh value.
func overwritesVar(pass *qlint.Pass, node ast.Node, v *types.Var) bool {
	as, ok := node.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == v || pass.TypesInfo.Defs[id] == v {
				return true
			}
		}
	}
	return false
}
