package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"qppt/internal/lint"
)

var nameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// TestRegistry: every analyzer in Suite() must be well-formed AND carry
// its own analysistest-style unit tests — a package under internal/lint/
// named after the analyzer, with a _test.go file and a testdata/src tree
// containing want-comments. Registering an analyzer without tests fails
// here, which fails CI.
func TestRegistry(t *testing.T) {
	suite := lint.Suite()
	if len(suite) < 5 {
		t.Fatalf("suite has %d analyzers, want at least 5", len(suite))
	}
	seen := map[string]bool{}
	for _, a := range suite {
		if a == nil || a.Run == nil {
			t.Fatal("nil analyzer (or Run) in suite")
		}
		if !nameRe.MatchString(a.Name) {
			t.Errorf("analyzer name %q is not lower-case alphanumeric", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}

		dir := a.Name // internal/lint/<name>, relative to this package
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			t.Errorf("analyzer %s has no package directory internal/lint/%s", a.Name, a.Name)
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, a.Name+"_test.go")); err != nil {
			t.Errorf("analyzer %s has no unit test file internal/lint/%s/%s_test.go", a.Name, a.Name, a.Name)
		}
		testdata := filepath.Join(dir, "testdata", "src")
		if st, err := os.Stat(testdata); err != nil || !st.IsDir() {
			t.Errorf("analyzer %s has no testdata tree internal/lint/%s/testdata/src", a.Name, a.Name)
			continue
		}
		// The testdata must assert at least one diagnostic (a want
		// comment) and one suppression, so both polarities stay covered.
		wants, ignores := 0, 0
		err := filepath.Walk(testdata, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			wants += strings.Count(string(data), "// want ")
			ignores += strings.Count(string(data), "qpptvet:ignore "+a.Name)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if wants == 0 {
			t.Errorf("analyzer %s testdata has no `// want` assertions", a.Name)
		}
		if ignores == 0 {
			t.Errorf("analyzer %s testdata exercises no qpptvet:ignore suppression", a.Name)
		}
	}
}
