// Package qppt is the root of the qpptvet smoke-test fixture module: a
// miniature shadow of the real module's API surface with one deliberate
// violation per analyzer planted in internal/core. The e2e test runs
// the qpptvet binary over this module (standalone and as a go vet
// -vettool) and asserts the expected findings — an analyzer that stops
// firing here fails CI.
package qppt

// Config mirrors the engine configuration.
type Config struct{ SpillBudget int64 }

// Engine is a stub long-lived query engine.
type Engine struct{ open bool }

// New builds an engine.
func New(cfg Config) (*Engine, error) { return &Engine{open: true}, nil }

// Close shuts the engine down.
func (e *Engine) Close() error { e.open = false; return nil }

// Exec runs a query.
func (e *Engine) Exec(q string) (int, error) { return len(q), nil }
