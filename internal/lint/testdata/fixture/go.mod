module fixture.example/qppt

go 1.22
