// Package prefixtree shadows qppt/internal/prefixtree for the qpptvet
// fixture.
package prefixtree

// Tree is a stub prefix tree.
type Tree struct{ keys []uint64 }

// Iterate visits every key in order.
func (t *Tree) Iterate(visit func(k uint64) bool) {
	for _, k := range t.keys {
		if !visit(k) {
			return
		}
	}
}
