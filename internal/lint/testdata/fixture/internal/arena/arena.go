// Package arena shadows qppt/internal/arena for the qpptvet fixture.
package arena

// Ref is a tagged compact pointer into arena storage.
type Ref uint32

// Arena is a stub chunked arena.
type Arena struct{ n int }

func (a *Arena) Alloc() Ref   { a.n++; return Ref(a.n) }
func (a *Arena) Reset()       { a.n = 0 }
func (a *Arena) At(r Ref) int { return int(r) }
