// Package core carries one deliberate violation per qpptvet analyzer
// (and one clean counterpart each), so the smoke test can assert every
// analyzer fires end-to-end. Line positions matter only loosely — the
// smoke test matches on analyzer name, file, and message substrings.
package core

import (
	"context"
	"sync"

	"fixture.example/qppt/internal/arena"
	"fixture.example/qppt/internal/prefixtree"
	"fixture.example/qppt/internal/spill"
)

// ---- pinbalance ----

// LeakPin pins a handle and loses it on the error path.
func LeakPin(h *spill.Handle, work func() error) error {
	if err := h.Pin(); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // pin leaked here
	}
	h.Unpin()
	return nil
}

// BalancedPin is the preferred form.
func BalancedPin(h *spill.Handle, work func() error) error {
	if err := h.Pin(); err != nil {
		return err
	}
	defer h.Unpin()
	return work()
}

// ---- refescape ----

// cache is not an arena-owned type; persisting a Ref in it dangles.
type cache struct{ ref arena.Ref }

// StoreRef smuggles a compact pointer into a long-lived struct.
func StoreRef(c *cache, a *arena.Arena) {
	c.ref = a.Alloc()
}

// LocalRef keeps the Ref on the stack — fine.
func LocalRef(a *arena.Arena) int {
	r := a.Alloc()
	return a.At(r)
}

// ---- ctxpoll ----

// ScanAll drives a full-tree iteration with no cancellation poll.
func ScanAll(t *prefixtree.Tree) int {
	n := 0
	t.Iterate(func(k uint64) bool {
		n++
		return true
	})
	return n
}

// ScanPolled checks the context on a cadence.
func ScanPolled(ctx context.Context, t *prefixtree.Tree) int {
	n := 0
	t.Iterate(func(k uint64) bool {
		if n&1023 == 0 && ctx.Err() != nil {
			return false
		}
		n++
		return true
	})
	return n
}

// ---- lockguard (the PR 5 catalog race pattern) ----

// TableInfo shadows the catalog's per-table index cache.
type TableInfo struct {
	idxMu   sync.Mutex
	indexes map[string]int // guarded by idxMu
}

// IndexRacy re-introduces the race: the cache read skips the lock.
func (ti *TableInfo) IndexRacy(col string) (int, bool) {
	idx, ok := ti.indexes[col]
	return idx, ok
}

// Index takes the lock, as the annotation demands.
func (ti *TableInfo) Index(col string) (int, bool) {
	ti.idxMu.Lock()
	defer ti.idxMu.Unlock()
	idx, ok := ti.indexes[col]
	return idx, ok
}

// ---- closetrail ----

// LeakManager builds a spill manager and never closes it.
func LeakManager() {
	m, err := spill.New(1<<20, "/tmp/spill")
	if err != nil {
		return
	}
	m.Register("t")
}

// UseManager closes on every path.
func UseManager() error {
	m, err := spill.New(1<<20, "/tmp/spill")
	if err != nil {
		return err
	}
	defer m.Close()
	m.Register("t")
	return nil
}
