// Package spill shadows qppt/internal/spill for the qpptvet fixture.
package spill

import "context"

// Handle is a stub spillable-entry handle.
type Handle struct{ pins int }

func (h *Handle) Pin() error                       { h.pins++; return nil }
func (h *Handle) PinCtx(ctx context.Context) error { h.pins++; return nil }
func (h *Handle) PinRange(lo, hi uint64) error     { h.pins++; return nil }
func (h *Handle) Unpin()                           { h.pins-- }

// Manager is a stub spill manager.
type Manager struct{ budget int64 }

// New builds a manager with a byte budget and spill directory.
func New(budget int64, dir string) (*Manager, error) {
	return &Manager{budget: budget}, nil
}

// Close removes spill files and frees the budget.
func (m *Manager) Close() error { return nil }

// Register tracks a spillable entry.
func (m *Manager) Register(name string) *Handle { return &Handle{} }
