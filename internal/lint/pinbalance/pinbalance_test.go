package pinbalance_test

import (
	"testing"

	"qppt/internal/lint/pinbalance"
	"qppt/internal/lint/qlinttest"
)

func TestPinBalance(t *testing.T) {
	qlinttest.Run(t, "testdata", pinbalance.Analyzer, "pin")
}
