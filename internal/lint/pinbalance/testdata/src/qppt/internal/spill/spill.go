// Package spill is a stub of qppt/internal/spill for analyzer tests: the
// analyzers match types by package-path suffix ("internal/spill"), so
// this stand-in exercises them without importing the real engine.
package spill

import "context"

// Handle mirrors the pinning surface of the real spill.Handle.
type Handle struct{ pins int }

func (h *Handle) Pin() error                                           { h.pins++; return nil }
func (h *Handle) PinCtx(ctx context.Context) error                     { h.pins++; return nil }
func (h *Handle) PinRange(lo, hi uint64) error                         { h.pins++; return nil }
func (h *Handle) PinRangeCtx(ctx context.Context, lo, hi uint64) error { h.pins++; return nil }
func (h *Handle) Unpin()                                               { h.pins-- }
func (h *Handle) Drop()                                                {}
func (h *Handle) Detach() error                                        { return nil }

// Manager mirrors the lifecycle surface of the real spill.Manager.
type Manager struct{}

func New(budget int64, dir string) (*Manager, error) { return &Manager{}, nil }

func (m *Manager) Register(label string, obj any, size func() int) *Handle { return &Handle{} }
func (m *Manager) Close() error                                            { return nil }
