// Package pin exercises the pinbalance analyzer: every spill.Handle pin
// must reach an Unpin on all return paths.
package pin

import (
	"context"
	"errors"

	"qppt/internal/spill"
)

func work() error { return errors.New("boom") }

// Clean: defer releases on every path.
func deferred(h *spill.Handle) error {
	if err := h.Pin(); err != nil {
		return err
	}
	defer h.Unpin()
	return work()
}

// Clean: the failure branch of the pin's own error check needs no Unpin.
func pinErrorPath(h *spill.Handle) error {
	err := h.PinCtx(context.Background())
	if err != nil {
		return err
	}
	defer h.Unpin()
	return nil
}

// Flagged: the work() error path returns without releasing — the classic
// unbalanced-pin-on-error-path bug.
func leakOnError(h *spill.Handle) error {
	if err := h.Pin(); err != nil { // want `Pin on h is not released on every return path`
		return err
	}
	if err := work(); err != nil {
		return err
	}
	h.Unpin()
	return nil
}

// Flagged: an unbalanced PinRange — the range pin is never released.
func leakRange(h *spill.Handle, lo, hi uint64) error {
	if err := h.PinRange(lo, hi); err != nil { // want `PinRange on h is not released on every return path`
		return err
	}
	return work()
}

// Clean: released in both branches.
func branches(h *spill.Handle, cond bool) error {
	if err := h.PinRange(0, 10); err != nil {
		return err
	}
	if cond {
		h.Unpin()
		return nil
	}
	h.Unpin()
	return work()
}

// Flagged: released in only one branch.
func halfBranches(h *spill.Handle, cond bool) error {
	if err := h.PinRange(0, 10); err != nil { // want `PinRange on h is not released on every return path`
		return err
	}
	if cond {
		h.Unpin()
		return nil
	}
	return work()
}

// Clean: ownership escapes — the pinned handle is appended to a slice the
// caller releases (the pinInputs pattern).
func escapesAppend(hs []*spill.Handle) ([]*spill.Handle, error) {
	var pinned []*spill.Handle
	for _, h := range hs {
		if err := h.Pin(); err != nil {
			for _, p := range pinned {
				p.Unpin()
			}
			return nil, err
		}
		pinned = append(pinned, h)
	}
	return pinned, nil
}

// Clean: ownership escapes through a call.
func keep(h *spill.Handle) {}

func escapesCall(h *spill.Handle) error {
	if err := h.Pin(); err != nil {
		return err
	}
	keep(h)
	return nil
}

// Clean: a path that panics does not owe a release.
func panicPath(h *spill.Handle) {
	if err := h.Pin(); err != nil {
		panic(err)
	}
	if work() != nil {
		panic("bad")
	}
	h.Unpin()
}

// Flagged: a pin inside a closure must be balanced inside the closure.
func closureLeak(h *spill.Handle) func() error {
	return func() error {
		if err := h.Pin(); err != nil { // want `Pin on h is not released on every return path`
			return err
		}
		return work()
	}
}

// Clean: balanced inside the closure.
func closureBalanced(h *spill.Handle) func() error {
	return func() error {
		if err := h.Pin(); err != nil {
			return err
		}
		defer h.Unpin()
		return work()
	}
}

// Clean: selector receivers match textually across pin and unpin.
type carrier struct{ h *spill.Handle }

func selectorRecv(c *carrier) error {
	if err := c.h.PinRange(1, 2); err != nil {
		return err
	}
	defer c.h.Unpin()
	return work()
}

// Clean: deferred closure releasing the handle counts.
func deferredClosure(h *spill.Handle) error {
	if err := h.Pin(); err != nil {
		return err
	}
	defer func() {
		h.Unpin()
	}()
	return work()
}

// Suppressed: an intentionally permanent pin with an auditable reason.
func permanentPin(h *spill.Handle) error {
	//qpptvet:ignore pinbalance the result pin is intentionally held until Close
	if err := h.Pin(); err != nil {
		return err
	}
	return nil
}

// A suppression without a reason does not silence the finding and is
// itself reported.
func badSuppression(h *spill.Handle) error {
	//qpptvet:ignore pinbalance // want `qpptvet:ignore needs a reason`
	if err := h.Pin(); err != nil { // want `Pin on h is not released on every return path`
		return err
	}
	return nil
}
