// Package pinbalance checks that every spill.Handle pin is released on
// every return path.
//
// A Pin / PinCtx / PinRange / PinRangeCtx call on a *spill.Handle keeps
// the handle's index resident and blocks eviction until a matching Unpin;
// a pin leaked on an error path wedges the spill manager's budget for the
// rest of the plan (and Manager.Close blocks on pinned handles). The
// analyzer proves, per function body, that each pin reaches an Unpin on
// the same receiver on all paths to a normal exit. `defer h.Unpin()` is
// the preferred form and always satisfies the check.
//
// Heuristics (documented because suppressions must be auditable):
//
//   - Receivers match by source expression ("h", "r.h"), not by alias
//     analysis.
//   - The failure branch of the pin's own error check is exempt (a failed
//     pin holds nothing), until that error variable is reassigned.
//   - A pinned handle that escapes the function — passed to a call,
//     appended to a slice, stored, returned — transfers the release
//     obligation to its new owner and satisfies the check locally.
//   - Paths ending in panic / t.Fatal / os.Exit are unwinding and exempt.
//   - Functions using goto or labeled branches are skipped entirely.
//
// Pins whose balance is genuinely non-local (pin loops released by a
// later loop, intentionally permanent result pins) carry
// //qpptvet:ignore pinbalance <reason> suppressions.
package pinbalance

import (
	"go/ast"

	"qppt/internal/lint/qlint"
)

// Analyzer is the pinbalance invariant checker.
var Analyzer = &qlint.Analyzer{
	Name: "pinbalance",
	Doc:  "check that every spill.Handle Pin/PinCtx/PinRange/PinRangeCtx reaches an Unpin on all return paths (defer preferred)",
	Run:  run,
}

var pinMethods = []string{"Pin", "PinCtx", "PinRange", "PinRangeCtx"}

func run(pass *qlint.Pass) error {
	pass.EachFunc(true, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
		checkBody(pass, body)
	})
	return nil
}

func checkBody(pass *qlint.Pass, body *ast.BlockStmt) {
	var g *qlint.FlowGraph // built lazily: most bodies have no pins
	qlint.InspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method, ok := pass.CallOnType(call, "internal/spill", "Handle", pinMethods...)
		if !ok {
			return true
		}
		if g == nil {
			g = qlint.BuildFlow(body)
		}
		checkPin(pass, g, body, call, recv, method)
		return true
	})
}

func checkPin(pass *qlint.Pass, g *qlint.FlowGraph, body *ast.BlockStmt, call *ast.CallExpr, recv ast.Expr, method string) {
	recvKey := qlint.ExprString(recv)

	// defer recv.Unpin(), directly or inside a deferred closure, releases
	// on every exit.
	for _, d := range g.Defers {
		if isUnpinOn(d.Call, recvKey) {
			return
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok && containsUnpinOn(lit.Body, recvKey) {
			return
		}
	}

	node := nodeFor(g, body, call)
	if node == nil {
		return // not reachable in the graph (dead code)
	}
	errVar := pinErrVar(node, call)

	release := func(n ast.Node) bool {
		found := false
		qlint.InspectShallow(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && isUnpinOn(c, recvKey) {
				found = true
			}
			return !found
		})
		return found || escapes(n, call, recvKey)
	}
	if !g.AllPathsReach(node, errVar, release) {
		pass.Reportf(call.Pos(),
			"%s on %s is not released on every return path; add `defer %s.Unpin()` after the pin succeeds, or unpin before each return",
			method, recvKey, recvKey)
	}
}

// nodeFor finds the flow-graph node (statement or condition) containing
// the pin call.
func nodeFor(g *qlint.FlowGraph, body *ast.BlockStmt, call *ast.CallExpr) ast.Node {
	return g.NodeContaining(call.Pos(), call.End())
}

// pinErrVar names the variable receiving the pin's error, for
// failure-branch exemption: `err := h.Pin()` / `err = h.Pin()`.
func pinErrVar(node ast.Node, call *ast.CallExpr) string {
	as, ok := node.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || as.Rhs[0] != call || len(as.Lhs) != 1 {
		return ""
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return ""
	}
	return id.Name
}

func isUnpinOn(call *ast.CallExpr, recvKey string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Unpin" {
		return false
	}
	return qlint.ExprString(sel.X) == recvKey
}

func containsUnpinOn(body *ast.BlockStmt, recvKey string) bool {
	found := false
	qlint.InspectShallow(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isUnpinOn(c, recvKey) {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether node transfers ownership of the handle: the
// receiver appears as a call argument (append(pins, h), keep(h)), in a
// return statement, on the right of an assignment, in a composite
// literal, or in a channel send. pinCall itself is not an escape.
func escapes(node ast.Node, pinCall *ast.CallExpr, recvKey string) bool {
	found := false
	isRecv := func(e ast.Expr) bool { return e != nil && qlint.ExprString(e) == recvKey }
	qlint.InspectShallow(node, func(n ast.Node) bool {
		if found || n == pinCall {
			return !found
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isRecv(arg) {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isRecv(r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			if blankAssign(n) {
				break // `_ = h` keeps ownership here
			}
			for _, r := range n.Rhs {
				if isRecv(r) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					if isRecv(kv.Value) {
						found = true
					}
				} else if isRecv(e) {
					found = true
				}
			}
		case *ast.SendStmt:
			if isRecv(n.Value) {
				found = true
			}
		}
		return !found
	})
	return found
}

// blankAssign reports whether every left-hand side of the assignment is
// the blank identifier.
func blankAssign(as *ast.AssignStmt) bool {
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
