// Package qlinttest runs a qlint analyzer over an analysistest-style
// testdata tree and checks its diagnostics against `// want` comments:
//
//	h.PinRange(lo, hi) // want `pin is not released`
//
// Each want comment holds one or more quoted or backquoted regular
// expressions; every reported diagnostic on that line must match one of
// them, every want must be matched, and lines without wants must stay
// silent. This mirrors golang.org/x/tools/go/analysis/analysistest, which
// this module deliberately avoids depending on.
package qlinttest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"qppt/internal/lint/qlint"
)

var wantRe = regexp.MustCompile("(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// Run loads each package path from root/src and applies the analyzer,
// reporting any mismatch against the package's want comments.
func Run(t *testing.T, root string, a *qlint.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		pkg, err := qlint.LoadTestdata(root, path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := qlint.Run([]*qlint.Analyzer{a}, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, pkg, path, diags)
	}
}

type want struct {
	re   *regexp.Regexp
	pos  string
	used bool
}

func checkWants(t *testing.T, pkg *qlint.Package, path string, diags []qlint.Diagnostic) {
	t.Helper()
	wants := map[string][]*want{} // "file:line" -> wants
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey(pos)
				for _, q := range wantRe.FindAllString(text[i+len("// want "):], -1) {
					pat := q
					if pat[0] == '`' {
						pat = pat[1 : len(pat)-1]
					} else {
						var err error
						if pat, err = strconv.Unquote(pat); err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re, pos: pos.String()})
				}
			}
		}
	}
	for _, d := range diags {
		key := lineKey(d.Pos)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic in %s: [%s] %s", d.Pos, path, d.Analyzer, d.Message)
		}
	}
	for _, list := range wants {
		for _, w := range list {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
			}
		}
	}
}

func lineKey(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
