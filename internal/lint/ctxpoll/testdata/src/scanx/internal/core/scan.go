// Package core exercises the ctxpoll analyzer: functions in executor
// packages that drive scans must poll for cancellation.
package core

import (
	"context"

	"qppt/internal/prefixtree"
	"qppt/internal/storage"
)

// ExecContext mirrors the executor's per-query context carrier.
type ExecContext struct{ ctx context.Context }

func (ec *ExecContext) err() error { return ec.ctx.Err() }

// pipeline mirrors the throttled-abort pipeline.
type pipeline struct {
	ctx  context.Context
	tick int
}

func (p *pipeline) aborted() bool {
	p.tick++
	if p.tick&1023 != 0 {
		return false
	}
	return p.ctx.Err() != nil
}

// Flagged: a full-tree iteration with no way to stop it.
func scanNoPoll(t *prefixtree.Tree) int {
	n := 0
	t.Iterate(func(k string) bool { // want `scanNoPoll drives t.Iterate without a cancellation poll`
		n++
		return true
	})
	return n
}

// Flagged: range scans are scans too.
func rangeNoPoll(t *prefixtree.Tree, lo, hi string) int {
	n := 0
	t.Range(lo, hi, func(k string) bool { // want `rangeNoPoll drives t.Range without a cancellation poll`
		n++
		return true
	})
	return n
}

// Flagged: the package-level synchronized sweep.
func syncNoPoll(a, b *prefixtree.Tree) int {
	n := 0
	prefixtree.SyncScan(a, b, func(k string) bool { // want `syncNoPoll drives prefixtree.SyncScan without a cancellation poll`
		n++
		return true
	})
	return n
}

// Flagged: table scans from the storage layer.
func tableNoPoll(t *storage.Table) int {
	n := 0
	t.ScanCommitted(func(row int) bool { // want `tableNoPoll drives t.ScanCommitted without a cancellation poll`
		n += row
		return true
	})
	return n
}

// Clean: polls ctx.Err() inside the visitor.
func scanWithCtx(ctx context.Context, t *prefixtree.Tree) int {
	n := 0
	t.Iterate(func(k string) bool {
		if n&1023 == 0 && ctx.Err() != nil {
			return false
		}
		n++
		return true
	})
	return n
}

// Clean: the throttled pipeline poll counts.
func scanWithAborted(p *pipeline, t *prefixtree.Tree) int {
	n := 0
	t.Iterate(func(k string) bool {
		if p.aborted() {
			return false
		}
		n++
		return true
	})
	return n
}

// Clean: the ExecContext err() check counts.
func scanWithEcErr(ec *ExecContext, t *storage.Table) int {
	n := 0
	t.ScanCommitted(func(row int) bool {
		if ec.err() != nil {
			return false
		}
		n += row
		return true
	})
	return n
}

// Clean: a Done-channel select counts.
func scanWithDone(ctx context.Context, t *prefixtree.Tree) int {
	n := 0
	t.Iterate(func(k string) bool {
		select {
		case <-ctx.Done():
			return false
		default:
		}
		n++
		return true
	})
	return n
}

// Clean: an adapter forwarding its visitor parameter — the polling
// obligation stays with whoever supplies visit.
type treeIndex struct{ t *prefixtree.Tree }

func (ti *treeIndex) Iterate(visit func(k string) bool) {
	ti.t.Iterate(func(k string) bool { return visit(k) })
}

// Clean: forwarding the parameter directly is an adapter too.
func forwardDirect(t *prefixtree.Tree, visit func(k string) bool) {
	t.Iterate(visit)
}

// Flagged: a locally defined visitor is this function's responsibility.
func localVisitor(t *prefixtree.Tree) int {
	n := 0
	count := func(k string) bool {
		n++
		return true
	}
	t.Iterate(count) // want `localVisitor drives t.Iterate without a cancellation poll`
	return n
}

// Suppressed: a bounded per-morsel range the caller polls per claim.
func boundedMorsel(t *prefixtree.Tree, lo, hi string) int {
	n := 0
	//qpptvet:ignore ctxpoll morsel ranges are bounded; the dispatcher polls between claims
	t.Range(lo, hi, func(k string) bool {
		n++
		return true
	})
	return n
}
