// Package storage is a stub of qppt/internal/storage for analyzer tests.
package storage

// Table is a stub versioned table.
type Table struct{ rows []int }

// ScanCommitted visits every committed row.
func (t *Table) ScanCommitted(visit func(row int) bool) {
	for _, r := range t.rows {
		if !visit(r) {
			return
		}
	}
}
