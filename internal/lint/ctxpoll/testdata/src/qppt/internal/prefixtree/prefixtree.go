// Package prefixtree is a stub of qppt/internal/prefixtree for analyzer
// tests.
package prefixtree

// Tree is a stub succinct prefix tree.
type Tree struct{ keys []string }

// Iterate visits every key in order.
func (t *Tree) Iterate(visit func(k string) bool) {
	for _, k := range t.keys {
		if !visit(k) {
			return
		}
	}
}

// Range visits keys in [lo, hi).
func (t *Tree) Range(lo, hi string, visit func(k string) bool) {
	for _, k := range t.keys {
		if k >= lo && k < hi && !visit(k) {
			return
		}
	}
}

// SyncScan co-iterates two trees.
func SyncScan(a, b *Tree, visit func(k string) bool) {
	a.Iterate(visit)
}

// SyncScanRange co-iterates two trees over [lo, hi).
func SyncScanRange(a, b *Tree, lo, hi string, visit func(k string) bool) {
	a.Range(lo, hi, visit)
}
