package ctxpoll_test

import (
	"testing"

	"qppt/internal/lint/ctxpoll"
	"qppt/internal/lint/qlinttest"
)

func TestCtxPoll(t *testing.T) {
	qlinttest.Run(t, "testdata", ctxpoll.Analyzer, "scanx/internal/core")
}
