// Package ctxpoll checks that functions driving whole-index or table
// scans in the executor packages poll for cancellation.
//
// QPPT's cancellation contract (PR 5) is cooperative: streaming loops
// poll the query context on a cadence — the established pattern is one
// ctx.Err() call per 1024 fed combinations (core's abortTickMask, the
// catalog's per-8192-rows build poll) — so a hung-up client unwinds the
// plan within a fraction of a millisecond. A new scan loop that never
// polls silently breaks that contract; nothing else in the toolchain
// notices.
//
// Rule: in the packages listed in targetPkgs, a function whose body
// (including its closures) drives a scan — Iterate / Range / Scan /
// ScanCommitted on an index, tree, or table type, or a SyncScan /
// SyncScanRange sweep — must contain a cancellation poll: a ctx.Err()
// or <-ctx.Done() on a context.Context, a pipeline aborted() call, or an
// ExecContext err() check.
//
// Exemptions, kept deliberately mechanical:
//   - adapters that merely forward a visitor received as a function-typed
//     parameter (ptIndex.Iterate wrapping Tree.Iterate) — the polling
//     obligation stays with the visitor's provider;
//   - _test.go files (tests drive scans to completion by design).
//
// Bounded scans (per-morsel ranges polled by the caller per claim) carry
// //qpptvet:ignore ctxpoll <reason> suppressions.
package ctxpoll

import (
	"go/ast"
	"go/types"
	"strings"

	"qppt/internal/lint/qlint"
)

// Analyzer is the ctxpoll invariant checker.
var Analyzer = &qlint.Analyzer{
	Name: "ctxpoll",
	Doc:  "check that scan-driving loops in the executor packages poll for cancellation (the every-1024-combinations pattern)",
	Run:  run,
}

// targetPkgs are the packages whose scan loops must stay cancellable.
var targetPkgs = []string{"internal/core", "internal/catalog"}

// scanRecvPkgs are the packages whose types carry scan methods.
var scanRecvPkgs = []string{
	"internal/core",
	"internal/prefixtree",
	"internal/prefixtree/ptrtree",
	"internal/kisstree",
	"internal/storage",
	"internal/hashbase",
}

var scanMethods = map[string]bool{
	"Iterate":       true,
	"Range":         true,
	"Scan":          true,
	"ScanCommitted": true,
}

var scanFuncs = map[string]bool{
	"SyncScan":      true,
	"SyncScanRange": true,
}

func run(pass *qlint.Pass) error {
	target := false
	for _, p := range targetPkgs {
		if qlint.PathHasSuffix(pass.Pkg.Path(), p) {
			target = true
			break
		}
	}
	if !target {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *qlint.Pass, fd *ast.FuncDecl) {
	var scans []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isScanCall(pass, call) && !forwardsVisitorParam(pass, fd, call) {
			scans = append(scans, call)
		}
		return true
	})
	if len(scans) == 0 {
		return
	}
	polled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if polled {
			return false
		}
		if isPoll(pass, n) {
			polled = true
		}
		return true
	})
	if polled {
		return
	}
	for _, call := range scans {
		pass.Reportf(call.Pos(),
			"%s drives %s without a cancellation poll; check ctx on a cadence (ctx.Err() / p.aborted() / ec.err(), the every-1024-combinations pattern)",
			fd.Name.Name, qlint.ExprString(call.Fun))
	}
}

// isScanCall recognizes scan-driving calls: scan methods on index/tree/
// table types, and the package-level synchronized sweeps.
func isScanCall(pass *qlint.Pass, call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		if scanMethods[fn.Sel.Name] {
			tv, ok := pass.TypesInfo.Types[fn.X]
			if ok {
				for _, p := range scanRecvPkgs {
					if qlint.FromPkg(tv.Type, p) {
						return true
					}
				}
			}
		}
		if scanFuncs[fn.Sel.Name] {
			// Qualified call prefixtree.SyncScan(...).
			if id, ok := fn.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
					for _, p := range scanRecvPkgs {
						if qlint.PathHasSuffix(pn.Imported().Path(), p) {
							return true
						}
					}
				}
			}
		}
	case *ast.Ident:
		// Unqualified call to this package's own SyncScan/SyncScanRange.
		if scanFuncs[fn.Name] {
			if f, ok := pass.TypesInfo.Uses[fn].(*types.Func); ok && f.Pkg() == pass.Pkg {
				return true
			}
		}
	}
	return false
}

// forwardsVisitorParam reports whether the scan call's visitor argument
// is (or references) a function-typed parameter of fd — the adapter
// pattern, where the polling obligation stays with the caller supplying
// the visitor.
func forwardsVisitorParam(pass *qlint.Pass, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, isFunc := pass.TypesInfo.Types[field.Type].Type.(*types.Signature); !isFunc {
				if _, isFunc := pass.TypesInfo.Types[field.Type].Type.Underlying().(*types.Signature); !isFunc {
					continue
				}
			}
			for _, id := range field.Names {
				params[pass.TypesInfo.Defs[id]] = true
			}
		}
	}
	if len(params) == 0 {
		return false
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && params[pass.TypesInfo.Uses[id]] {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isPoll recognizes the cancellation checks the codebase uses.
func isPoll(pass *qlint.Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		sel, ok := n.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch sel.Sel.Name {
		case "Err", "Done":
			tv, ok := pass.TypesInfo.Types[sel.X]
			return ok && qlint.NamedFrom(tv.Type, "context", "Context")
		case "aborted":
			return true // pipeline.aborted(): the throttled poll itself
		case "err":
			tv, ok := pass.TypesInfo.Types[sel.X]
			return ok && qlint.NamedFrom(tv.Type, "internal/core", "ExecContext")
		}
	}
	return false
}
