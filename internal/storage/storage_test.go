package storage

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestTable(t *testing.T, m *Manager) *Table {
	t.Helper()
	tbl, err := m.CreateTable("t", MustSchema(
		Column{Name: "k", Type: TypeInt},
		Column{Name: "v", Type: TypeInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSchema(t *testing.T) {
	s := MustSchema(Column{Name: "a"}, Column{Name: "b", Type: TypeString})
	if s.Width() != 2 || s.Col("a") != 0 || s.Col("b") != 1 || s.Col("c") != -1 {
		t.Fatal("schema lookup broken")
	}
	if _, err := NewSchema(Column{Name: "x"}, Column{Name: "x"}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestCreateTableDuplicate(t *testing.T) {
	m := NewManager()
	newTestTable(t, m)
	if _, err := m.CreateTable("t", MustSchema(Column{Name: "k"})); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if m.Table("t") == nil || m.Table("zz") != nil {
		t.Fatal("Table lookup broken")
	}
}

func TestBulkLoadAndScan(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	first := tbl.BulkLoad([][]uint64{{1, 10}, {2, 20}, {3, 30}})
	if first != 0 || tbl.NumRIDs() != 3 {
		t.Fatalf("first=%d rids=%d", first, tbl.NumRIDs())
	}
	seen := 0
	tbl.ScanCommitted(m.Now(), func(rid uint64, row []uint64) bool {
		if row[0] != rid+1 || row[1] != (rid+1)*10 {
			t.Fatalf("rid %d row %v", rid, row)
		}
		seen++
		return true
	})
	if seen != 3 {
		t.Fatalf("scanned %d rows", seen)
	}
	if got := tbl.ReadCommitted(1, m.Now()); got[1] != 20 {
		t.Fatalf("ReadCommitted = %v", got)
	}
	if tbl.ReadCommitted(99, m.Now()) != nil {
		t.Fatal("read past end returned data")
	}
}

func TestTxnInsertVisibility(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	tx1 := m.Begin()
	rid, err := tx1.Insert(tbl, []uint64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Own write visible, other transactions blind.
	if tx1.Get(tbl, rid) == nil {
		t.Fatal("own insert invisible")
	}
	tx2 := m.Begin()
	if tx2.Get(tbl, rid) != nil {
		t.Fatal("uncommitted insert visible to another txn")
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// tx2's snapshot predates the commit.
	if tx2.Get(tbl, rid) != nil {
		t.Fatal("commit leaked into older snapshot")
	}
	tx3 := m.Begin()
	if got := tx3.Get(tbl, rid); got == nil || got[1] != 100 {
		t.Fatalf("committed insert invisible to new txn: %v", got)
	}
}

func TestTxnUpdateSnapshots(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	tbl.BulkLoad([][]uint64{{1, 10}})
	reader := m.Begin()
	writer := m.Begin()
	if err := writer.Update(tbl, 0, []uint64{1, 11}); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := reader.Get(tbl, 0); got[1] != 10 {
		t.Fatalf("reader snapshot sees %v, want old version", got)
	}
	after := m.Begin()
	if got := after.Get(tbl, 0); got[1] != 11 {
		t.Fatalf("new txn sees %v, want new version", got)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	tbl.BulkLoad([][]uint64{{1, 10}})
	tx1 := m.Begin()
	tx2 := m.Begin()
	if err := tx1.Update(tbl, 0, []uint64{1, 11}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Update(tbl, 0, []uint64{1, 12}); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent update: %v, want ErrConflict", err)
	}
	if err := tx2.Delete(tbl, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent delete: %v, want ErrConflict", err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// A txn that began before tx1's commit must also fail (stale snapshot).
	if err := tx2.Update(tbl, 0, []uint64{1, 13}); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale update: %v, want ErrConflict", err)
	}
	tx2.Abort()
}

func TestAbortRollsBack(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	tbl.BulkLoad([][]uint64{{1, 10}})
	tx := m.Begin()
	rid, _ := tx.Insert(tbl, []uint64{2, 20})
	if err := tx.Update(tbl, 0, []uint64{1, 99}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	after := m.Begin()
	if after.Get(tbl, rid) != nil {
		t.Fatal("aborted insert visible")
	}
	if got := after.Get(tbl, 0); got[1] != 10 {
		t.Fatalf("aborted update left %v", got)
	}
	// A new writer must succeed (no lingering locks).
	tx2 := m.Begin()
	if err := tx2.Update(tbl, 0, []uint64{1, 42}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAndVacuum(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	tbl.BulkLoad([][]uint64{{1, 10}, {2, 20}})
	tx := m.Begin()
	if err := tx.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	if tx.Get(tbl, 0) != nil {
		t.Fatal("own delete still visible")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := m.Begin()
	if after.Get(tbl, 0) != nil {
		t.Fatal("deleted row visible")
	}
	if after.Get(tbl, 1) == nil {
		t.Fatal("surviving row lost")
	}
	if n := tbl.Vacuum(m.Now()); n == 0 {
		t.Fatal("vacuum reclaimed nothing")
	}
	if after.Get(tbl, 1) == nil {
		t.Fatal("vacuum removed live row")
	}
	// Writing to a vacuumed RID fails cleanly.
	tx2 := m.Begin()
	if err := tx2.Update(tbl, 0, []uint64{9, 9}); err == nil {
		t.Fatal("update of vacuumed rid succeeded")
	}
}

func TestDoubleFinishErrors(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	tx := m.Begin()
	tx.Insert(tbl, []uint64{1, 1})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("second commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrDone) {
		t.Fatalf("abort after commit: %v", err)
	}
	if _, err := tx.Insert(tbl, []uint64{2, 2}); !errors.Is(err, ErrDone) {
		t.Fatalf("insert after commit: %v", err)
	}
}

func TestUpdateOwnInsert(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	tx := m.Begin()
	rid, _ := tx.Insert(tbl, []uint64{1, 1})
	if err := tx.Update(tbl, rid, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if got := tx.Get(tbl, rid); got[1] != 2 {
		t.Fatalf("own update invisible: %v", got)
	}
	tx.Commit()
	if got := m.Begin().Get(tbl, rid); got[1] != 2 {
		t.Fatalf("committed chain wrong: %v", got)
	}
}

func TestRowWidthValidation(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	tx := m.Begin()
	if _, err := tx.Insert(tbl, []uint64{1}); err == nil {
		t.Fatal("narrow insert accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("BulkLoad with wrong width did not panic")
			}
		}()
		tbl.BulkLoad([][]uint64{{1}})
	}()
}

// TestPropertySerialHistory applies a random serial history of committed
// and aborted transactions and checks the final committed state against a
// map oracle. Serial (non-interleaved) histories must agree exactly.
func TestPropertySerialHistory(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewManager()
		tbl, _ := m.CreateTable("t", MustSchema(Column{Name: "k"}, Column{Name: "v"}))
		tbl.BulkLoad([][]uint64{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
		oracle := map[uint64]uint64{0: 0, 1: 0, 2: 0, 3: 0}
		for _, op := range ops {
			rid := uint64(op % 4)
			val := uint64(op)
			commit := op%3 != 0
			tx := m.Begin()
			var err error
			if op%5 == 0 {
				err = tx.Delete(tbl, rid)
			} else {
				err = tx.Update(tbl, rid, []uint64{rid, val})
			}
			if err != nil {
				// Deleted earlier: only legal failure in a serial history.
				if _, alive := oracle[rid]; alive {
					return false
				}
				tx.Abort()
				continue
			}
			if commit {
				if tx.Commit() != nil {
					return false
				}
				if op%5 == 0 {
					delete(oracle, rid)
				} else {
					oracle[rid] = val
				}
			} else if tx.Abort() != nil {
				return false
			}
		}
		final := m.Begin()
		got := map[uint64]uint64{}
		final.Scan(tbl, func(rid uint64, row []uint64) bool {
			got[rid] = row[1]
			return true
		})
		if len(got) != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(19))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersSeeStableSnapshots(t *testing.T) {
	m := NewManager()
	tbl := newTestTable(t, m)
	rows := make([][]uint64, 100)
	for i := range rows {
		rows[i] = []uint64{uint64(i), 1}
	}
	tbl.BulkLoad(rows)
	done := make(chan bool)
	// Writers continuously bump values; readers must always see a
	// consistent total (every row same "generation" sum is not guaranteed,
	// but each row must show a committed value, never a torn/marked one).
	go func() {
		for i := 0; i < 200; i++ {
			tx := m.Begin()
			rid := uint64(i % 100)
			cur := tx.Get(tbl, rid)
			if cur != nil {
				tx.Update(tbl, rid, []uint64{cur[0], cur[1] + 1})
			}
			tx.Commit()
		}
		done <- true
	}()
	for i := 0; i < 200; i++ {
		tx := m.Begin()
		tx.Scan(tbl, func(rid uint64, row []uint64) bool {
			if row[1] == 0 {
				t.Error("reader saw uninitialized value")
				return false
			}
			return true
		})
	}
	<-done
}
