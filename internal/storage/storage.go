// Package storage implements the row-store substrate that QPPT runs on:
// an in-memory row store with multi-version concurrency control, the shape
// of the paper's DexterDB prototype ("an in-memory database system that
// stores tuples in a row-store and uses MVCC for transactional isolation",
// Section 5).
//
// Tuples are fixed-width rows of uint64 attribute values (integers directly,
// strings as order-preserving dictionary codes assigned by the catalog).
// Rows are addressed by record identifiers (RIDs); each RID heads a version
// chain, and transactions run under snapshot isolation: reads see the
// committed state as of the transaction's begin timestamp, and write-write
// conflicts abort the later writer.
//
// Base indexes have to care for transactional isolation (Section 3); QPPT's
// intermediate indexes do not, because they are private to one query. The
// storage layer therefore exposes RIDs and visibility checks for index
// readers, while intermediate results never touch this package.
package storage

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ColType describes the logical type of a column. Both types are stored as
// uint64 words: integers directly (signed values through key.FromInt64 when
// indexed), strings as order-preserving dictionary codes.
type ColType uint8

const (
	// TypeInt is a 64-bit integer column.
	TypeInt ColType = iota
	// TypeString is a dictionary-encoded string column.
	TypeString
)

// A Column is one attribute of a table schema.
type Column struct {
	Name string
	Type ColType
}

// A Schema is an ordered list of columns with name lookup.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Cols returns the schema's columns in order.
func (s *Schema) Cols() []Column { return s.cols }

// Width reports the number of columns.
func (s *Schema) Width() int { return len(s.cols) }

// Col returns the position of the named column, or -1.
func (s *Schema) Col(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustCol is Col that panics on unknown names, for static plans.
func (s *Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: unknown column %q", name))
	}
	return i
}

// Timestamps. Committed versions carry plain commit timestamps; versions
// written by an in-flight transaction carry a transaction marker (high bit
// set) until commit.
const (
	tsInfinity = math.MaxUint64
	txnMarkBit = uint64(1) << 63
)

func isTxnMark(ts uint64) bool { return ts&txnMarkBit != 0 }

// A version is one tuple version in a RID's chain, newest first.
type version struct {
	begin uint64 // commit TS of the creator, or txn marker while in flight
	end   uint64 // commit TS of the deleter, tsInfinity, or txn marker
	next  *version
	data  []uint64
}

// A Table is an in-memory row-store table: a slice of version chains
// indexed by RID.
type Table struct {
	name   string
	schema *Schema

	mu   sync.RWMutex
	rows []*version
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRIDs reports the number of allocated RIDs (including rows whose every
// version may be invisible to a given snapshot).
func (t *Table) NumRIDs() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// A Manager owns tables, the commit clock, and transaction bookkeeping.
type Manager struct {
	mu     sync.Mutex
	clock  uint64 // last issued commit timestamp
	nextID uint64 // transaction id counter
	tables map[string]*Table
}

// NewManager returns an empty storage manager. The commit clock starts at 1
// so that bulk-loaded data (begin TS 1) is visible to every transaction.
func NewManager() *Manager {
	return &Manager{clock: 1, tables: make(map[string]*Table)}
}

// CreateTable registers a new empty table.
func (m *Manager) CreateTable(name string, schema *Schema) (*Table, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.tables[name]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := &Table{name: name, schema: schema}
	m.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (m *Manager) Table(name string) *Table {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tables[name]
}

// BulkLoad appends committed rows directly, bypassing the transaction
// machinery; it is the load path for benchmark data. It returns the RID of
// the first appended row; the rows occupy consecutive RIDs.
func (t *Table) BulkLoad(rows [][]uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	first := uint64(len(t.rows))
	for _, r := range rows {
		if len(r) != t.schema.Width() {
			panic(fmt.Sprintf("storage: row width %d != schema width %d", len(r), t.schema.Width()))
		}
		data := make([]uint64, len(r))
		copy(data, r)
		t.rows = append(t.rows, &version{begin: 1, end: tsInfinity, data: data})
	}
	return first
}

// ReadCommitted returns the newest committed data for rid as of ts, or nil
// if no version is visible. It is the read path for single-statement OLAP
// queries, which run against the latest stable snapshot.
func (t *Table) ReadCommitted(rid uint64, ts uint64) []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if rid >= uint64(len(t.rows)) {
		return nil
	}
	for v := t.rows[rid]; v != nil; v = v.next {
		if isTxnMark(v.begin) || v.begin > ts {
			continue
		}
		if !isTxnMark(v.end) && v.end <= ts {
			return nil // deleted before ts; older versions are older still
		}
		return v.data
	}
	return nil
}

// ScanCommitted visits every row visible at ts with its RID. The row slice
// aliases storage memory and is only valid during the call.
func (t *Table) ScanCommitted(ts uint64, visit func(rid uint64, row []uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for rid := range t.rows {
		for v := t.rows[rid]; v != nil; v = v.next {
			if isTxnMark(v.begin) || v.begin > ts {
				continue
			}
			if !isTxnMark(v.end) && v.end <= ts {
				break
			}
			if !visit(uint64(rid), v.data) {
				return
			}
			break
		}
	}
}

// Now returns the current commit clock; reads at this timestamp see all
// committed data.
func (m *Manager) Now() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

// ErrConflict is returned when a write-write conflict forces an abort.
var ErrConflict = errors.New("storage: write-write conflict")

// ErrDone is returned for operations on a committed or aborted transaction.
var ErrDone = errors.New("storage: transaction already finished")

// A Txn is a snapshot-isolation transaction.
type Txn struct {
	m      *Manager
	mark   uint64 // txnMarkBit | id
	readTS uint64
	done   bool
	writes []writeRec
}

type writeRec struct {
	table   *Table
	rid     uint64
	created *version // version this txn added (nil for pure deletes)
	old     *version // version whose end this txn stamped (nil for inserts)
}

// Begin starts a transaction reading the current committed snapshot.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return &Txn{m: m, mark: txnMarkBit | m.nextID, readTS: m.clock}
}

// ReadTS returns the transaction's snapshot timestamp.
func (tx *Txn) ReadTS() uint64 { return tx.readTS }

// visible reports whether version v is visible to this transaction.
func (tx *Txn) visible(v *version) bool {
	switch {
	case v.begin == tx.mark:
		// own write; visible unless this txn deleted it again
		return v.end != tx.mark
	case isTxnMark(v.begin) || v.begin > tx.readTS:
		return false
	}
	if v.end == tx.mark {
		return false // deleted by this txn
	}
	if !isTxnMark(v.end) && v.end <= tx.readTS {
		return false
	}
	return true
}

// Get returns the row data visible to the transaction, or nil.
func (tx *Txn) Get(t *Table, rid uint64) []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if rid >= uint64(len(t.rows)) {
		return nil
	}
	for v := t.rows[rid]; v != nil; v = v.next {
		if tx.visible(v) {
			return v.data
		}
	}
	return nil
}

// Scan visits every row visible to the transaction.
func (tx *Txn) Scan(t *Table, visit func(rid uint64, row []uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for rid := range t.rows {
		for v := t.rows[rid]; v != nil; v = v.next {
			if tx.visible(v) {
				if !visit(uint64(rid), v.data) {
					return
				}
				break
			}
		}
	}
}

// Insert adds a new row, returning its RID. The row becomes visible to
// other transactions once this one commits.
func (tx *Txn) Insert(t *Table, row []uint64) (uint64, error) {
	if tx.done {
		return 0, ErrDone
	}
	if len(row) != t.schema.Width() {
		return 0, fmt.Errorf("storage: row width %d != schema width %d", len(row), t.schema.Width())
	}
	data := make([]uint64, len(row))
	copy(data, row)
	v := &version{begin: tx.mark, end: tsInfinity, data: data}
	t.mu.Lock()
	rid := uint64(len(t.rows))
	t.rows = append(t.rows, v)
	t.mu.Unlock()
	tx.writes = append(tx.writes, writeRec{table: t, rid: rid, created: v})
	return rid, nil
}

// Update replaces the row at rid. It returns ErrConflict if another
// transaction has touched the row since this transaction's snapshot.
func (tx *Txn) Update(t *Table, rid uint64, row []uint64) error {
	return tx.mutate(t, rid, row)
}

// Delete removes the row at rid, with the same conflict rules as Update.
func (tx *Txn) Delete(t *Table, rid uint64) error {
	return tx.mutate(t, rid, nil)
}

// mutate stamps the head version's end and, for updates, prepends the new
// version. newRow == nil means delete.
func (tx *Txn) mutate(t *Table, rid uint64, newRow []uint64) error {
	if tx.done {
		return ErrDone
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rid >= uint64(len(t.rows)) {
		return fmt.Errorf("storage: rid %d out of range", rid)
	}
	head := t.rows[rid]
	if head == nil {
		return fmt.Errorf("storage: rid %d was vacuumed", rid)
	}
	// First-writer-wins: any concurrent uncommitted writer, or a commit
	// after our snapshot, aborts this write.
	if head.begin == tx.mark {
		// updating our own earlier write: fold into it
	} else if isTxnMark(head.begin) || head.begin > tx.readTS {
		return ErrConflict
	}
	if head.end != tsInfinity && head.end != tx.mark {
		return ErrConflict // deleted by someone (committed or in flight)
	}
	if newRow == nil {
		head.end = tx.mark
		tx.writes = append(tx.writes, writeRec{table: t, rid: rid, old: head})
		return nil
	}
	if len(newRow) != t.schema.Width() {
		return fmt.Errorf("storage: row width %d != schema width %d", len(newRow), t.schema.Width())
	}
	data := make([]uint64, len(newRow))
	copy(data, newRow)
	head.end = tx.mark
	v := &version{begin: tx.mark, end: tsInfinity, next: head, data: data}
	t.rows[rid] = v
	tx.writes = append(tx.writes, writeRec{table: t, rid: rid, created: v, old: head})
	return nil
}

// Commit makes all writes durable at a single new commit timestamp.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrDone
	}
	tx.done = true
	tx.m.mu.Lock()
	tx.m.clock++
	commitTS := tx.m.clock
	tx.m.mu.Unlock()
	for _, w := range tx.writes {
		w.table.mu.Lock()
		if w.created != nil {
			w.created.begin = commitTS
		}
		if w.old != nil {
			w.old.end = commitTS
		}
		w.table.mu.Unlock()
	}
	tx.writes = nil
	return nil
}

// Abort rolls back all writes.
func (tx *Txn) Abort() error {
	if tx.done {
		return ErrDone
	}
	tx.done = true
	for _, w := range tx.writes {
		w.table.mu.Lock()
		if w.old != nil {
			w.old.end = tsInfinity
		}
		if w.created != nil {
			// Unlink the created version: it is the chain head (only this
			// txn could have prepended above it — any other writer would
			// have hit ErrConflict).
			w.table.rows[w.rid] = w.created.next
		}
		w.table.mu.Unlock()
	}
	tx.writes = nil
	return nil
}

// Vacuum prunes versions no snapshot at or after horizon can see: committed
// versions whose end timestamp is below the horizon, and fully deleted
// chains. It returns the number of versions reclaimed.
func (t *Table) Vacuum(horizon uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	reclaimed := 0
	for rid, head := range t.rows {
		// Keep the newest version that is visible at or after the horizon;
		// cut everything strictly older than the first version whose end
		// is below the horizon.
		for v := head; v != nil; v = v.next {
			if v.next != nil && !isTxnMark(v.next.end) && v.next.end <= horizon {
				for d := v.next; d != nil; d = d.next {
					reclaimed++
				}
				v.next = nil
				break
			}
		}
		// A chain whose head is already dead below the horizon can be
		// replaced by an empty marker chain (RIDs stay allocated).
		if head != nil && !isTxnMark(head.end) && head.end <= horizon {
			t.rows[rid] = nil
			reclaimed++
		}
	}
	return reclaimed
}
