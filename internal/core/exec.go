package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"qppt/internal/arena"
	"qppt/internal/duplist"
	"qppt/internal/spill"
)

// Options tune plan execution; they are the knobs the paper's demonstrator
// exposes (Appendix A) plus the morsel-driven parallelism configuration.
type Options struct {
	// BufferSize is the joinbuffer/selectionbuffer size: how many
	// combinations are buffered before a batched index operation is
	// issued. 1 disables batching (scalar tuple-at-a-time); the
	// demonstrator offers 1, 64, 512 and 2048.
	BufferSize int
	// Workers sizes the plan-wide shared worker pool (scheduler.go). The
	// same pool serves inter-operator parallelism (independent plan
	// branches run concurrently) and intra-operator parallelism
	// (operators split their scans into work-stealing key-range morsels,
	// paper Section 7), so goroutine count is bounded by Workers no
	// matter how many operators run at once. 0 or 1 = serial, the
	// paper's evaluation mode.
	//
	// Results are schedule-independent: keys, per-key row multisets and
	// folded aggregates are identical to serial execution. The one
	// exception is the *order* of duplicate rows under a single key of a
	// non-folding output, which depends on which worker claimed which
	// morsel; consumers of plain outputs must not rely on intra-key row
	// order when Workers > 1.
	Workers int
	// MorselsPerWorker is the morsel fan-out factor: each parallel
	// operator splits its key space into Workers × MorselsPerWorker
	// morsels. More morsels resist skew better but leave more partial
	// outputs to merge. Default DefaultMorselsPerWorker.
	MorselsPerWorker int
	// MemBudget caps the resident bytes of the plan's intermediate
	// indexes. When the plan exceeds it, cold intermediates are frozen —
	// their arena chunks written to temp files in one sequential pass —
	// and restored on next access, least-recently-used first (package
	// spill). 0 disables spilling; results are identical either way.
	// Base indexes never spill: the budget governs what the plan *adds*.
	MemBudget int64
	// SpillDir is where frozen intermediates are written. Empty uses a
	// private directory under the OS temp dir, removed when the plan
	// finishes.
	SpillDir string
	// Recycle enables the plan-scoped chunk recycler: when the last
	// consumer of an intermediate index finishes, the index's node
	// chunks, leaf chunks and slab blocks are cleared and parked in a
	// size-classed pool that later index allocations (including worker
	// partials and thaws) draw from first — instead of cycling the same
	// chunk shapes through the garbage collector once per operator.
	// Results are identical either way.
	Recycle bool
	// MmapThaw restores spilled intermediates by memory-mapping the
	// spill file (privately) and adopting the mapped pages as the index
	// arenas' chunks — the tree interior is never copied and untouched
	// pages fault in lazily. Platforms or index kinds without mmap
	// support silently fall back to the copying restore. Results are
	// identical either way.
	MmapThaw bool
	// CollectStats gathers per-operator execution statistics.
	CollectStats bool
	// AdmissionWait is how long the plan waited in an admission queue
	// before RunCtx was entered. Execution ignores it; the queue-aware
	// entry folds it into PlanStats so per-query statistics separate
	// time-queued from time-executing (qppt.Engine sets it from its
	// admission gate).
	AdmissionWait time.Duration
	// NoFuse disables pipeline fusion. By default the executor detects
	// single-consumer plan edges whose intermediate index would be built,
	// scanned once by a streaming consumer and dropped, and executes each
	// such operator chain as one stage: combinations flow straight from
	// the producer's pipeline into the consumer's, and only the chain's
	// top operator materializes an output index (fuse.go). Results are
	// identical either way, up to the intra-key duplicate row order of
	// non-folding outputs — the same caveat as Workers > 1.
	NoFuse bool
	// ProbeBatch is the probe-forward batch size inside fused chains: how
	// many assembled combinations a fused link accumulates in its
	// recycler-backed probe buffer before handing them — key-sorted, so
	// the consumer's batched index probes walk shared tree descents once —
	// to the link above. 0 uses DefaultProbeBatch; 1 forwards scalar
	// combination-at-a-time (the pre-batching behavior). Irrelevant under
	// NoFuse. Results are identical at any setting, up to the intra-key
	// duplicate row order of non-folding outputs (the Workers > 1 caveat).
	ProbeBatch int
}

// poolWorkers resolves Workers into the pool size the scheduler uses.
// WorkersAuto (-1) sizes the pool to GOMAXPROCS.
func (o Options) poolWorkers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	if o.Workers == WorkersAuto {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// WorkersAuto sizes the worker pool to GOMAXPROCS.
const WorkersAuto = -1

// morselsPerWorker resolves the morsel fan-out factor.
func (o Options) morselsPerWorker() int {
	if o.MorselsPerWorker < 1 {
		return DefaultMorselsPerWorker
	}
	return o.MorselsPerWorker
}

// ExecContext carries execution state for one operator invocation.
type ExecContext struct {
	ctx     context.Context // query context; nil means non-cancellable
	opts    Options
	sched   *Scheduler
	rec     *arena.Recycler   // plan- or session-scoped chunk pool (nil without recycling)
	wrecs   []*arena.Recycler // worker-local child pools, indexed by pool worker (nil without parallel recycling)
	spill   *spill.Manager    // plan/engine spill manager (nil without a memory budget)
	mu      sync.Mutex        // guards opStats under intra-operator parallelism
	opStats *OperatorStats
}

// workerRec returns pool worker w's local chunk pool, falling back to the
// shared plan pool when worker-local pools are not active. Partials built
// from a worker-local pool recycle through it without touching the shared
// pool's lock, keeping the worker's chunk traffic cache-warm.
func (ec *ExecContext) workerRec(w int) *arena.Recycler {
	if w >= 0 && w < len(ec.wrecs) && ec.wrecs[w] != nil {
		return ec.wrecs[w]
	}
	return ec.rec
}

// noteSpill folds freeze/thaw events of operator-owned transient state
// (the registered worker partials of a large merge) into the operator
// statistics.
func (ec *ExecContext) noteSpill(spills, restores int) {
	if ec.opStats == nil || (spills == 0 && restores == 0) {
		return
	}
	ec.mu.Lock()
	ec.opStats.Spills += spills
	ec.opStats.Restores += restores
	ec.mu.Unlock()
}

// err reports the query context's cancellation state (nil when the
// context cannot be cancelled). Morsel bodies and merge tasks poll it so
// a cancelled query stops claiming work promptly.
func (ec *ExecContext) err() error {
	if ec.ctx == nil {
		return nil
	}
	return ec.ctx.Err()
}

func (ec *ExecContext) bufferSize() int {
	if ec.opts.BufferSize < 1 {
		return DefaultBufferSize
	}
	return ec.opts.BufferSize
}

// scheduler returns the plan's shared pool, creating a serial one for
// contexts constructed outside Plan.Run (tests, ad-hoc operator calls).
func (ec *ExecContext) scheduler() *Scheduler {
	if ec.sched == nil {
		ec.sched = NewScheduler(ec.opts.poolWorkers())
	}
	return ec.sched
}

func (ec *ExecContext) morselsPerWorker() int { return ec.opts.morselsPerWorker() }

// DefaultBufferSize is the joinbuffer size used when Options does not set
// one; it matches the middle setting of the paper's demonstrator.
const DefaultBufferSize = 512

// DefaultProbeBatch is the probe-forward batch size inside fused chains
// when Options does not set one. It matches DefaultBufferSize, so one
// forwarded batch fills (at most) one joinbuffer flush in the consumer.
const DefaultProbeBatch = 512

// probeSortMinKeys is the smallest probe-target index (keys) for which a
// fused link key-sorts its probe batches before forwarding. Below it the
// consumer's tree is shallow enough that probes cost a descent of a level
// or two regardless of order, and the per-batch sort is pure overhead;
// above it sorted batches let LookupBatch/InsertBatch walk shared
// descents once per distinct prefix.
const probeSortMinKeys = 4096

// probeBatch resolves Options.ProbeBatch: 0 = default, anything below 1 =
// scalar forwarding.
func (ec *ExecContext) probeBatch() int {
	if ec.opts.ProbeBatch == 0 {
		return DefaultProbeBatch
	}
	if ec.opts.ProbeBatch < 1 {
		return 1
	}
	return ec.opts.ProbeBatch
}

// noteSink folds one worker pipeline's counters into the operator
// statistics: each pipeline is one pool worker's partial, so the call also
// counts the workers and morsels that actually executed.
func (ec *ExecContext) noteSink(p *pipeline) {
	if ec.opStats == nil {
		return
	}
	ec.mu.Lock()
	ec.opStats.IndexTime += p.snk.insertTime
	if p.snk.forward != nil || p.snk.forwardBatch != nil {
		// A forwarding sink (fused edge) streams its combinations to the
		// consumer instead of indexing them.
		ec.opStats.TuplesStreamed += p.snk.inserted
	} else {
		ec.opStats.TuplesIndexed += p.snk.inserted
	}
	ec.opStats.ProbeBatches += p.snk.batches + p.fedBatches
	ec.opStats.SortedFlushes += p.snk.sortedFlushes
	ec.opStats.ArrivalFlushes += p.snk.arrivalFlushes
	ec.opStats.StreamedIn += p.fedRows
	ec.opStats.ProbeLookups += p.lookups
	ec.opStats.KernelDescents += p.kernelDescents
	ec.opStats.ScalarDescents += p.scalarDescents
	ec.opStats.Workers++
	ec.opStats.Morsels += p.morsels
	ec.mu.Unlock()
}

// OperatorStats are the per-operator execution statistics the demonstrator
// visualizes (Appendix A): total time, the portion spent indexing the
// output, input/output sizes and index types.
type OperatorStats struct {
	Label string
	// Time is the operator's total execution time; MaterializeTime is
	// the portion spent producing combinations (Time − IndexTime), and
	// IndexTime the portion spent inserting into the output index.
	Time            time.Duration
	MaterializeTime time.Duration
	IndexTime       time.Duration
	// TuplesIndexed counts rows inserted into the output index (before
	// aggregation folds them); ProbeLookups counts assisting-index
	// lookups issued through the joinbuffer.
	TuplesIndexed int
	ProbeLookups  int
	// Fused marks an operator that ran as a non-top link of a fused
	// chain: its output index was never built, and TuplesStreamed counts
	// the combinations it streamed into its consumer instead. For such
	// operators TuplesIndexed, IndexTime and the Out* fields are zero.
	// FusedKind labels the kind of fused edge by its consumer: "probe"
	// (Join/Intersect), "select-probe" (SelectJoin) or "range-stream"
	// (Selection/Having).
	Fused          bool
	FusedKind      string
	TuplesStreamed int
	// ProbeBatches counts the probe batches this operator took part in
	// over fused edges (0 under scalar forwarding, ProbeBatch <= 1): for
	// a producer (Fused) the batches its forwarding sink handed out,
	// split into SortedFlushes (delivered or verified key-sorted) and
	// ArrivalFlushes (arrival order); for a non-probing chain top
	// (range-stream / select-probe consumer) the batches it received,
	// with StreamedIn counting the combinations that survived the batch
	// predicate filter. AvgBatchFill is combinations per batch — how full
	// the probe buffer ran against the configured ProbeBatch size.
	ProbeBatches   int
	SortedFlushes  int
	ArrivalFlushes int
	StreamedIn     int
	AvgBatchFill   float64
	// KernelDescents/ScalarDescents split this operator's batched
	// assisting-index lookups by the descent strategy the trees picked:
	// the word-parallel SWAR kernel vs the scalar job loop (small
	// batches, or kernels disabled via -nokernel / QPPT_KERNEL=off).
	KernelDescents int
	ScalarDescents int
	// Workers is the number of pool workers that contributed a partial
	// output; Morsels the number of key-range morsels they processed
	// (1/1 for serial execution).
	Workers int
	Morsels int
	// OutRows/OutKeys/OutBytes describe the output indexed table.
	OutRows  int
	OutKeys  int
	OutBytes int
	// Spills/Restores count how often this operator's output index was
	// frozen to disk and thawed back under Options.MemBudget.
	Spills   int
	Restores int
}

// PlanStats aggregates the statistics of one plan execution in
// post-order (children before parents), plus the parallelism
// configuration the plan ran with, so benchmark output records it.
type PlanStats struct {
	Ops   []OperatorStats
	Total time.Duration
	// Workers is the shared pool size; MorselsPerWorker the morsel
	// fan-out factor (1/1 for serial execution).
	Workers          int
	MorselsPerWorker int
	// MemBudget echoes the governing budget (0 = unlimited); the
	// remaining fields aggregate the spill manager's activity:
	// freeze/thaw event counts, the bytes they moved, and the peak
	// tracked residency of the plan's intermediate indexes. Under a
	// shared (engine-scoped) manager the counters are this plan's deltas
	// — exact when the plan runs alone, approximate under concurrent
	// plans — and PeakResident is how much the plan raised the engine's
	// high-water mark (0 when it stayed under the prior peak).
	MemBudget    int64
	Spills       int
	Restores     int
	SpillBytes   int64
	RestoreBytes int64
	PeakResident int64
	// RestoreBytesRead counts the spill-file bytes actually copied during
	// restores (mmap-adopted pages and range-skipped chunks excluded);
	// MmapRestores and PartialRestores count the zero-copy and
	// range-restricted restore events.
	RestoreBytesRead int64
	MmapRestores     int
	PartialRestores  int
	// ChunksRecycled/ChunksReused/RecycleSavedBytes aggregate the plan
	// recycler's traffic under Options.Recycle: chunks parked in the
	// pool, chunk allocations served from it, and the heap allocation
	// those reuses avoided.
	ChunksRecycled    int
	ChunksReused      int
	RecycleSavedBytes int64
	// FusedEdges counts the single-consumer plan edges executed as fused
	// streams — each is one intermediate index the plan never built
	// (0 under Options.NoFuse).
	FusedEdges int
	// AdmissionWait is how long the plan sat in the engine's admission
	// queue before execution began (0 when the plan was admitted
	// immediately or no gate is configured). Total does not include it.
	AdmissionWait time.Duration
}

func (ps *PlanStats) String() string {
	if ps == nil {
		return "(no stats)"
	}
	s := fmt.Sprintf("total %v (pool: %d workers × %d morsels)\n", ps.Total, ps.Workers, ps.MorselsPerWorker)
	if ps.AdmissionWait > 0 {
		s += fmt.Sprintf("admission: queued %v before execution\n", ps.AdmissionWait.Round(time.Microsecond))
	}
	if ps.MemBudget > 0 {
		s += fmt.Sprintf("membudget %s: %d spills (%s out), %d restores (%s in, %s read), peak resident %s\n",
			spill.FormatBytes(ps.MemBudget), ps.Spills, spill.FormatBytes(ps.SpillBytes),
			ps.Restores, spill.FormatBytes(ps.RestoreBytes), spill.FormatBytes(ps.RestoreBytesRead),
			spill.FormatBytes(ps.PeakResident))
		if ps.MmapRestores > 0 || ps.PartialRestores > 0 {
			s += fmt.Sprintf("  %d mmap (zero-copy) restores, %d partial (range-restricted) restores\n",
				ps.MmapRestores, ps.PartialRestores)
		}
	}
	if ps.ChunksRecycled > 0 || ps.ChunksReused > 0 {
		s += fmt.Sprintf("recycler: %d chunks parked, %d reused (%s of allocation avoided)\n",
			ps.ChunksRecycled, ps.ChunksReused, spill.FormatBytes(ps.RecycleSavedBytes))
	}
	if ps.FusedEdges > 0 {
		s += fmt.Sprintf("fusion: %d intermediate indexes skipped\n", ps.FusedEdges)
	}
	if kd, sd := ps.descents(); kd > 0 || sd > 0 {
		s += fmt.Sprintf("kernels: %d SWAR descents, %d scalar\n", kd, sd)
	}
	for _, op := range ps.Ops {
		if op.Fused {
			kind := op.FusedKind
			if kind == "" {
				kind = "stream"
			}
			s += fmt.Sprintf("  %-24s %10v  fused %s: %d combinations streamed",
				op.Label+" ⇒", op.Time.Round(time.Microsecond), kind, op.TuplesStreamed)
			if op.ProbeBatches > 0 {
				s += fmt.Sprintf(" in %d batches (avg fill %.1f, %d sorted / %d arrival)",
					op.ProbeBatches, op.AvgBatchFill, op.SortedFlushes, op.ArrivalFlushes)
			}
			s += "\n"
			continue
		}
		s += fmt.Sprintf("  %-24s %10v (index %8v) out: %d rows, %d keys, %d B",
			op.Label, op.Time.Round(time.Microsecond), op.IndexTime.Round(time.Microsecond),
			op.OutRows, op.OutKeys, op.OutBytes)
		if op.Workers > 1 {
			s += fmt.Sprintf("  [%d workers, %d morsels]", op.Workers, op.Morsels)
		}
		if op.ProbeBatches > 0 {
			// A non-probing chain top: batches received over the fused
			// edge, combinations surviving the stream predicate.
			s += fmt.Sprintf("  [%d stream batches in, %d kept, avg fill %.1f]",
				op.ProbeBatches, op.StreamedIn, op.AvgBatchFill)
		}
		if op.Spills > 0 || op.Restores > 0 {
			s += fmt.Sprintf("  [spilled ×%d, restored ×%d]", op.Spills, op.Restores)
		}
		s += "\n"
	}
	return s
}

// descents sums the per-operator kernel/scalar descent split for the
// plan-level stats line and the engine's serve-mode counters.
func (ps *PlanStats) descents() (kernel, scalar int) {
	for _, op := range ps.Ops {
		kernel += op.KernelDescents
		scalar += op.ScalarDescents
	}
	return kernel, scalar
}

// A Plan is an executable QPPT operator DAG.
type Plan struct {
	Root Operator
}

// Run executes the plan in an ephemeral environment — a private worker
// pool, recycler and spill manager that live for this one call — and
// returns the final indexed table (the query result index, already grouped
// and sorted by its key) plus statistics when requested.
//
// Deprecated: Run is the historical one-shot entry point, kept as a thin
// wrapper. New callers use RunCtx, which adds cancellation and lets a
// long-lived Env carry the worker pool, chunk pool and spill budget across
// plans (see qppt.Engine).
func (pl *Plan) Run(opts Options) (*IndexedTable, *PlanStats, error) {
	return pl.RunCtx(context.Background(), nil, opts)
}

// RunCtx executes the plan and returns the final indexed table (the query
// result index, already grouped and sorted by its key) plus statistics
// when requested.
//
// env supplies the long-lived execution resources. A nil env runs the
// plan one-shot: pool, recycler and spill manager are created from opts
// and torn down with the call. A non-nil env shares its worker pool
// across every plan using it, parks dropped intermediates' chunks in its
// session recycler (opts.Workers and opts.Recycle are then ignored —
// those are environment properties), and registers intermediates with its
// shared spill manager (opts.MemBudget/SpillDir/MmapThaw are ignored when
// the env carries a manager; a spill-less env honors opts.MemBudget with
// a plan-private manager). The plan's result is detached from a shared
// manager before returning, so it stays valid however long it outlives
// the plan.
//
// Cancelling ctx unwinds the plan promptly: morsel loops, merge tasks and
// operator scans stop at the next batch boundary, waits on spill
// freeze/thaw transitions return early, pins are released, and — once
// every in-flight worker has drained — RunCtx returns ctx.Err() with no
// goroutines, pins or spill files left behind.
func (pl *Plan) RunCtx(ctx context.Context, env *Env, opts Options) (*IndexedTable, *PlanStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	shared := env != nil
	if !shared {
		var err error
		if env, err = ephemeralEnv(opts); err != nil {
			return nil, nil, err
		}
		if env.spill != nil {
			defer env.spill.Close() // removes spill files; the result is thawed first
		}
	}
	ex := &executor{
		ctx:   ctx,
		opts:  opts,
		sched: env.sched,
		rec:   env.rec,
		memo:  make(map[Operator]*memoEntry),
	}
	ownSpill := env.spill == nil && shared && opts.MemBudget > 0
	if ownSpill {
		mgr, err := newSpillManager(opts.MemBudget, opts.SpillDir, opts.MmapThaw)
		if err != nil {
			return nil, nil, err
		}
		ex.spill = mgr
		defer mgr.Close()
	} else {
		ex.spill = env.spill
	}
	if ex.rec != nil || ex.spill != nil || !opts.NoFuse {
		// Consumer counting drives chunk recycling, the early deletion of
		// spill files, and fusion: an intermediate nobody will read again
		// should neither sit in the chunk pool's way nor keep a snapshot
		// on disk until the plan ends — and one that exactly one streaming
		// consumer will read should not be built at all.
		ex.uses = make(map[Operator]int)
		countUses(pl.Root, ex.uses)
		ex.uses[pl.Root]++ // the caller consumes the result; never drop it
	}
	if !opts.NoFuse {
		ex.chains = buildChains(pl.Root, ex.uses)
	}
	if ex.spill != nil {
		ex.handles = make(map[*IndexedTable]*spill.Handle)
		ex.doneOut = make(map[Operator]*IndexedTable)
	}
	if ex.rec != nil && ex.sched.parallel() {
		// Worker-local chunk pools: each pool worker recycles its partial
		// indexes through a private child pool, drained back into the
		// shared pool when the plan finishes.
		ex.wrecs = make([]*arena.Recycler, ex.sched.Workers())
		for i := range ex.wrecs {
			ex.wrecs[i] = ex.rec.Local()
		}
	}
	var stats *PlanStats
	var spill0 spill.Stats
	var rec0 arena.RecyclerStats
	if opts.CollectStats {
		stats = &PlanStats{Workers: ex.sched.Workers(), MorselsPerWorker: 1,
			MemBudget: opts.MemBudget, AdmissionWait: opts.AdmissionWait}
		if ex.sched.parallel() {
			stats.MorselsPerWorker = opts.morselsPerWorker()
		}
		if shared {
			// Shared managers and recyclers accumulate across plans;
			// report this plan's activity as the counter delta (exact when
			// the plan runs alone, approximate under concurrent plans).
			if ex.spill != nil && !ownSpill {
				spill0 = ex.spill.Stats()
				stats.MemBudget = ex.spill.Budget()
			}
			rec0 = ex.rec.Stats()
		}
	}
	t0 := time.Now()
	out, err := ex.resolve(pl.Root, stats)
	if err == nil {
		err = ctx.Err() // a cancelled plan must not report success
	}
	for _, wr := range ex.wrecs {
		wr.Drain() // fold the worker-local pools back into the shared pool
	}
	if ex.spill != nil && shared && !ownSpill {
		// The shared manager outlives this plan: whatever spill state the
		// plan still owns must leave with it. The result is detached
		// (thawed, materialized, its file deleted) so it stays valid
		// indefinitely; on error every remaining handle is dropped.
		if err == nil {
			if h := ex.handleOf(out); h != nil {
				err = h.Detach()
			}
		}
		ex.mu.Lock()
		leftover := make([]*spill.Handle, 0, len(ex.handles))
		for t, h := range ex.handles {
			if err == nil && t == out {
				continue
			}
			leftover = append(leftover, h)
		}
		ex.mu.Unlock()
		for _, h := range leftover {
			h.Drop()
		}
	}
	if err != nil {
		return nil, nil, err
	}
	if ex.spill != nil && (!shared || ownSpill) {
		// The result index must survive Close: thaw it and stop evicting
		// it (the pin is never released — the manager is done). Close
		// materializes any mmap-adopted chunks before unmapping.
		if h := ex.handleOf(out); h != nil {
			//qpptvet:ignore pinbalance intentionally permanent: the result index must outlive the manager (see comment above)
			if err := h.PinCtx(ctx); err != nil {
				return nil, nil, err
			}
		}
	}
	if stats != nil {
		if ex.spill != nil {
			ms := ex.spill.Stats()
			stats.Spills, stats.Restores = ms.Spills-spill0.Spills, ms.Restores-spill0.Restores
			stats.SpillBytes, stats.RestoreBytes = ms.SpillBytes-spill0.SpillBytes, ms.RestoreBytes-spill0.RestoreBytes
			stats.RestoreBytesRead = ms.RestoreBytesRead - spill0.RestoreBytesRead
			stats.MmapRestores = ms.MmapRestores - spill0.MmapRestores
			stats.PartialRestores = ms.PartialRestores - spill0.PartialRestores
			// Peak is a high-water mark; under a shared manager report how
			// much this plan raised it (0 = stayed under the engine's
			// prior peak), consistent with the sibling delta counters.
			stats.PeakResident = ms.Peak - spill0.Peak
			for _, ref := range ex.spillOps {
				// Add (not assign): merge-partial freeze/thaw traffic is
				// already folded in through noteSpill.
				s, r := ref.h.Counts()
				stats.Ops[ref.op].Spills += s
				stats.Ops[ref.op].Restores += r
			}
		}
		if ex.rec != nil {
			rs := ex.rec.Stats()
			stats.ChunksRecycled, stats.ChunksReused = rs.Recycled-rec0.Recycled, rs.Reused-rec0.Reused
			stats.RecycleSavedBytes = rs.SavedBytes - rec0.SavedBytes
		}
		stats.FusedEdges = ex.fusedEdges
		stats.Total = time.Since(t0)
	}
	return out, stats, nil
}

// countUses walks the plan DAG once and counts, per operator, how many
// parent edges consume its output. The executor decrements the count as
// parents finish; at zero the intermediate is dropped and its chunks
// recycled.
func countUses(op Operator, uses map[Operator]int) {
	for _, c := range op.Children() {
		uses[c]++
		if uses[c] == 1 {
			countUses(c, uses)
		}
	}
}

// executor memoizes operator outputs so DAG-shaped plans run each operator
// once, and resolves independent children concurrently on the plan's
// shared worker pool. With a memory budget it also owns the plan's spill
// manager: every non-base operator output is registered for LRU eviction,
// and inputs are pinned resident around each operator run.
type executor struct {
	ctx   context.Context
	opts  Options
	sched *Scheduler
	mu    sync.Mutex
	memo  map[Operator]*memoEntry

	// rec and uses implement plan-scoped chunk recycling (Options.Recycle):
	// uses holds the remaining consumer count per operator output, and rec
	// receives the chunks of outputs whose count reaches zero. wrecs are
	// the worker-local child pools (one per pool worker) that front rec
	// under parallel execution; they are drained back when the plan ends.
	rec   *arena.Recycler
	wrecs []*arena.Recycler
	uses  map[Operator]int

	// chains maps each fused chain's top operator to the chain (fuse.go);
	// fusedEdges counts the edges executed as streams.
	chains     map[Operator]*fuseChain
	fusedEdges int

	spill    *spill.Manager
	handles  map[*IndexedTable]*spill.Handle // intermediate table → spill handle
	doneOut  map[Operator]*IndexedTable      // resolved outputs, for locality-aware task ordering
	spillOps []spillOpRef
}

// frostScore counts how many of op's already-resolved inputs are frozen
// on disk: the thaw cost a worker pays before op's subtree makes progress.
func (ex *executor) frostScore(op Operator) int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	n := 0
	for _, c := range op.Children() {
		t := ex.doneOut[c]
		if t == nil {
			continue
		}
		if h := ex.handles[t]; h != nil && h.Frozen() {
			n++
		}
	}
	return n
}

// frostOrder returns a stable task order for resolving the given subtrees
// concurrently: subtrees whose already-resolved inputs are resident start
// before ones that must first thaw frozen intermediates, so the pool works
// on warm data while cold restores queue behind it (locality-aware
// scheduling). Without a spill manager everything is resident and the
// order is the identity.
func (ex *executor) frostOrder(ops []Operator) []int {
	order := make([]int, len(ops))
	for i := range order {
		order[i] = i
	}
	if ex.spill == nil || len(ops) < 2 {
		return order
	}
	scores := make([]int, len(ops))
	for i, c := range ops {
		scores[i] = ex.frostScore(c)
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	return order
}

// spillOpRef links a spill handle to its operator's slot in PlanStats.Ops
// so the freeze/thaw counts can be filled in when the plan finishes.
type spillOpRef struct {
	h  *spill.Handle
	op int
}

// handleOf returns the spill handle of a registered intermediate, nil for
// base tables and unspillable index kinds.
func (ex *executor) handleOf(t *IndexedTable) *spill.Handle {
	if ex.spill == nil || t == nil {
		return nil
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.handles[t]
}

// releaseInput decrements an operator output's remaining-consumer count
// and, at zero, drops the intermediate: its spill state (file, mapping)
// is removed so the spill directory holds only snapshots a consumer may
// still need, and — with Options.Recycle — its chunk storage is parked in
// the plan pool. Base tables are never dropped; the plan root carries an
// extra use so the result survives. Drop precedes Recycle: Drop waits out
// any in-flight freeze/thaw of the entry and releases the file mapping,
// after which recycling only touches heap chunks (mapped ones are
// skipped).
func (ex *executor) releaseInput(op Operator, t *IndexedTable) {
	if t == nil {
		return
	}
	if _, isBase := op.(*Base); isBase {
		return
	}
	ex.mu.Lock()
	ex.uses[op]--
	done := ex.uses[op] == 0
	var h *spill.Handle
	if done && ex.handles != nil {
		h = ex.handles[t]
	}
	ex.mu.Unlock()
	if !done {
		return
	}
	if h != nil {
		h.Drop()
	}
	if ex.rec != nil {
		if rc, ok := t.Idx.(chunkRecycler); ok {
			rc.Recycle()
		}
	}
}

type memoEntry struct {
	once sync.Once
	out  *IndexedTable
	st   *OperatorStats
	// pre holds the statistics of the fused (non-top) links of a chain
	// resolved through this entry; they precede st in post-order.
	pre []*OperatorStats
	err error
}

func (ex *executor) entry(op Operator) *memoEntry {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	e, ok := ex.memo[op]
	if !ok {
		e = &memoEntry{}
		ex.memo[op] = e
	}
	return e
}

// A pinSet names one operator's resolved inputs for pinInputs; fused
// chains pass one set per link.
type pinSet struct {
	op     Operator
	inputs []*IndexedTable
}

// pinInputs restores — and protects from eviction — every spilled input
// the given operators are about to scan or probe. Operators that only
// touch part of an input's key space (inputRanger) pin that range, so a
// frozen input thaws only the chunks the scan will reach. Handles are
// acquired in Seq order: an uncovered range top-up waits for an entry's
// pins to drain, and ordered acquisition keeps those waits cycle-free
// across concurrent branches. The returned handles stay pinned until the
// caller unpins them; on error nothing stays pinned.
func (ex *executor) pinInputs(sets []pinSet) ([]*spill.Handle, error) {
	if ex.spill == nil {
		return nil, nil
	}
	type pinReq struct {
		h      *spill.Handle
		lo, hi uint64
		ranged bool
	}
	byHandle := make(map[*spill.Handle]*pinReq)
	var order []*pinReq
	for _, s := range sets {
		rr, _ := s.op.(inputRanger)
		for i, in := range s.inputs {
			h := ex.handleOf(in)
			if h == nil {
				continue // base table, unspillable kind, or fused placeholder
			}
			var lo, hi uint64
			ranged := false
			if rr != nil {
				lo, hi, ranged = rr.inputKeyRange(i)
			}
			if r, ok := byHandle[h]; ok {
				// One pin must serve every ordinal reading this
				// intermediate; widen to full unless the ranges agree.
				if !ranged || !r.ranged || r.lo != lo || r.hi != hi {
					r.ranged = false
				}
				continue
			}
			r := &pinReq{h: h, lo: lo, hi: hi, ranged: ranged}
			byHandle[h] = r
			order = append(order, r)
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].h.Seq() < order[b].h.Seq() })
	var pinned []*spill.Handle
	for _, r := range order {
		var err error
		if r.ranged {
			err = r.h.PinRangeCtx(ex.ctx, r.lo, r.hi)
		} else {
			err = r.h.PinCtx(ex.ctx)
		}
		if err != nil {
			for _, h := range pinned {
				h.Unpin()
			}
			return nil, err
		}
		pinned = append(pinned, r.h)
	}
	return pinned, nil
}

func (ex *executor) resolve(op Operator, stats *PlanStats) (*IndexedTable, error) {
	e := ex.entry(op)
	e.once.Do(func() {
		if err := ex.ctx.Err(); err != nil {
			e.err = err // cancelled: don't start another operator
			return
		}
		if ch := ex.chains[op]; ch != nil {
			// op tops a fused chain: the chain runs as one stage inside
			// this memo entry (fuse.go), bypassing the links below it.
			ex.runChain(ch, e, stats)
			return
		}
		children := op.Children()
		inputs := make([]*IndexedTable, len(children))
		if ex.sched.parallel() && len(children) > 1 {
			// Independent subtrees resolve concurrently on the shared
			// pool; Fork runs on pool workers when they are idle and
			// inline otherwise, so the goroutine count stays bounded by
			// the pool size however deep the plan nests. Subtrees with
			// resident inputs are issued before ones that must thaw.
			tasks := make([]func() error, len(children))
			for t, oi := range ex.frostOrder(children) {
				i, c := oi, children[oi]
				tasks[t] = func() error {
					in, err := ex.resolve(c, stats)
					inputs[i] = in
					return err
				}
			}
			if err := ex.sched.Fork(tasks...); err != nil {
				e.err = err
				return
			}
		} else {
			for i, c := range children {
				in, err := ex.resolve(c, stats)
				if err != nil {
					e.err = err
					return
				}
				inputs[i] = in
			}
		}
		pinned, err := ex.pinInputs([]pinSet{{op: op, inputs: inputs}})
		if err != nil {
			e.err = err
			return
		}
		unpin := func() {
			for _, h := range pinned {
				h.Unpin()
			}
			pinned = nil
		}
		ec := &ExecContext{ctx: ex.ctx, opts: ex.opts, sched: ex.sched,
			rec: ex.rec, wrecs: ex.wrecs, spill: ex.spill}
		if stats != nil {
			if _, isBase := op.(*Base); !isBase {
				e.st = &OperatorStats{Label: op.Label()}
				ec.opStats = e.st
			}
		}
		t0 := time.Now()
		e.out, e.err = op.run(ec, inputs)
		if e.err == nil {
			// A scan aborted by cancellation can surface a partial output;
			// never memoize it as a valid result.
			e.err = ex.ctx.Err()
		}
		if e.st != nil && e.err == nil {
			e.st.Time = time.Since(t0)
			e.st.MaterializeTime = e.st.Time - e.st.IndexTime
			e.st.OutRows = e.out.Rows()
			e.st.OutKeys = e.out.Keys()
			e.st.OutBytes = e.out.Idx.Bytes()
		}
		unpin()
		if ex.doneOut != nil && e.err == nil {
			ex.mu.Lock()
			ex.doneOut[op] = e.out
			ex.mu.Unlock()
		}
		// Hand the fresh intermediate to the spill manager, which may
		// evict it (or a colder sibling) right away to hold the budget.
		// Base tables stay out: the budget governs what the plan adds.
		if ex.spill != nil && e.err == nil {
			if _, isBase := op.(*Base); !isBase {
				if fz := freezerOf(e.out.Idx); fz != nil {
					h := ex.spill.Register(op.Label(), fz, e.out.Idx.Bytes)
					ex.mu.Lock()
					ex.handles[e.out] = h
					ex.mu.Unlock()
				}
			}
		}
		// Each input has served one more consumer; drop the ones no other
		// operator will read — deleting their spill state and, with a
		// recycler, returning their chunks to the pool the next index
		// allocation draws from.
		if ex.uses != nil && e.err == nil {
			for i, c := range children {
				ex.releaseInput(c, inputs[i])
			}
		}
	})
	if e.err == nil && e.st != nil && stats != nil {
		// Append post-order, exactly once per operator; a fused chain's
		// non-top links precede the top.
		ex.mu.Lock()
		for _, p := range e.pre {
			stats.Ops = append(stats.Ops, *p)
		}
		e.pre = nil
		st := *e.st
		e.st = nil
		stats.Ops = append(stats.Ops, st)
		if h := ex.handles[e.out]; h != nil {
			ex.spillOps = append(ex.spillOps, spillOpRef{h: h, op: len(stats.Ops) - 1})
		}
		ex.mu.Unlock()
	}
	return e.out, e.err
}

// A Result is the client-side materialization of a query result index:
// one row per index key, the key fields first, the payload columns after.
// Because the result index is a prefix tree, rows arrive already sorted by
// the key fields (paper Section 3: "the resulting index ... is already
// sorted"); OrderBy re-sorts only when the requested order involves
// non-key columns such as aggregates.
type Result struct {
	Attrs []string
	Rows  [][]uint64
}

// Extract materializes an indexed table into a Result in key order.
func Extract(t *IndexedTable) *Result {
	r := &Result{Attrs: append(append([]string{}, t.Key.Attrs...), t.Cols...)}
	comp := t.Key.Composer()
	nk := len(t.Key.Attrs)
	//qpptvet:ignore ctxpoll client-side materialization of a finished plan's result; there is no query context here
	t.Idx.Iterate(func(k uint64, vals *duplist.List) bool {
		emit := func(payload []uint64) bool {
			row := make([]uint64, 0, nk+len(t.Cols))
			switch nk {
			case 0:
			case 1:
				row = append(row, k)
			default:
				row = comp.Split(k, row)
			}
			row = append(row, payload...)
			r.Rows = append(r.Rows, row)
			return true
		}
		if len(t.Cols) == 0 {
			for n := 0; n < vals.Len(); n++ {
				emit(nil)
			}
			return true
		}
		vals.Scan(emit)
		return true
	})
	return r
}

// OrderBy sorts the result rows by the given column positions; negative
// positions sort that column descending (position -(i+1) means column i
// descending).
func (r *Result) OrderBy(cols ...int) {
	sort.SliceStable(r.Rows, func(a, b int) bool {
		ra, rb := r.Rows[a], r.Rows[b]
		for _, c := range cols {
			if c < 0 {
				i := -c - 1
				if ra[i] != rb[i] {
					return ra[i] > rb[i]
				}
				continue
			}
			if ra[c] != rb[c] {
				return ra[c] < rb[c]
			}
		}
		return false
	})
}

// Col returns the position of the named attribute in result rows, or -1.
func (r *Result) Col(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}
