package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qppt/internal/duplist"
)

// Options tune plan execution; they are the knobs the paper's demonstrator
// exposes (Appendix A).
type Options struct {
	// BufferSize is the joinbuffer/selectionbuffer size: how many
	// combinations are buffered before a batched index operation is
	// issued. 1 disables batching (scalar tuple-at-a-time); the
	// demonstrator offers 1, 64, 512 and 2048.
	BufferSize int
	// Parallel runs independent plan subtrees concurrently (e.g. the
	// two dimension selections of SSB Q2.3). The paper's evaluation is
	// single-threaded, so this is off by default.
	Parallel bool
	// Workers enables intra-operator parallelism (paper Section 7):
	// each operator's main scan is split into this many disjoint
	// key-space partitions processed concurrently, with per-worker
	// partial output indexes merged at the end. 0 or 1 = off.
	Workers int
	// CollectStats gathers per-operator execution statistics.
	CollectStats bool
}

// ExecContext carries execution state for one operator invocation.
type ExecContext struct {
	opts    Options
	mu      sync.Mutex // guards opStats under intra-operator parallelism
	opStats *OperatorStats
}

func (ec *ExecContext) bufferSize() int {
	if ec.opts.BufferSize < 1 {
		return DefaultBufferSize
	}
	return ec.opts.BufferSize
}

func (ec *ExecContext) workers() int {
	if ec.opts.Workers < 1 {
		return 1
	}
	return ec.opts.Workers
}

// DefaultBufferSize is the joinbuffer size used when Options does not set
// one; it matches the middle setting of the paper's demonstrator.
const DefaultBufferSize = 512

// noteSink folds pipeline counters into the operator statistics,
// accumulating across partition workers.
func (ec *ExecContext) noteSink(p *pipeline) {
	if ec.opStats == nil {
		return
	}
	ec.mu.Lock()
	ec.opStats.IndexTime += p.snk.insertTime
	ec.opStats.TuplesIndexed += p.snk.inserted
	ec.opStats.ProbeLookups += p.lookups
	ec.mu.Unlock()
}

// OperatorStats are the per-operator execution statistics the demonstrator
// visualizes (Appendix A): total time, the portion spent indexing the
// output, input/output sizes and index types.
type OperatorStats struct {
	Label string
	// Time is the operator's total execution time; MaterializeTime is
	// the portion spent producing combinations (Time − IndexTime), and
	// IndexTime the portion spent inserting into the output index.
	Time            time.Duration
	MaterializeTime time.Duration
	IndexTime       time.Duration
	// TuplesIndexed counts rows inserted into the output index (before
	// aggregation folds them); ProbeLookups counts assisting-index
	// lookups issued through the joinbuffer.
	TuplesIndexed int
	ProbeLookups  int
	// OutRows/OutKeys/OutBytes describe the output indexed table.
	OutRows  int
	OutKeys  int
	OutBytes int
}

// PlanStats aggregates the statistics of one plan execution in
// post-order (children before parents).
type PlanStats struct {
	Ops   []OperatorStats
	Total time.Duration
}

func (ps *PlanStats) String() string {
	if ps == nil {
		return "(no stats)"
	}
	s := fmt.Sprintf("total %v\n", ps.Total)
	for _, op := range ps.Ops {
		s += fmt.Sprintf("  %-24s %10v (index %8v) out: %d rows, %d keys, %d B\n",
			op.Label, op.Time.Round(time.Microsecond), op.IndexTime.Round(time.Microsecond),
			op.OutRows, op.OutKeys, op.OutBytes)
	}
	return s
}

// A Plan is an executable QPPT operator DAG.
type Plan struct {
	Root Operator
}

// Run executes the plan and returns the final indexed table (the query
// result index, already grouped and sorted by its key) plus statistics
// when requested.
func (pl *Plan) Run(opts Options) (*IndexedTable, *PlanStats, error) {
	ex := &executor{opts: opts, memo: make(map[Operator]*memoEntry)}
	var stats *PlanStats
	if opts.CollectStats {
		stats = &PlanStats{}
	}
	t0 := time.Now()
	out, err := ex.resolve(pl.Root, stats)
	if err != nil {
		return nil, nil, err
	}
	if stats != nil {
		stats.Total = time.Since(t0)
	}
	return out, stats, nil
}

// executor memoizes operator outputs so DAG-shaped plans run each operator
// once, and optionally runs independent children in parallel.
type executor struct {
	opts Options
	mu   sync.Mutex
	memo map[Operator]*memoEntry
}

type memoEntry struct {
	once sync.Once
	out  *IndexedTable
	st   *OperatorStats
	err  error
}

func (ex *executor) entry(op Operator) *memoEntry {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	e, ok := ex.memo[op]
	if !ok {
		e = &memoEntry{}
		ex.memo[op] = e
	}
	return e
}

func (ex *executor) resolve(op Operator, stats *PlanStats) (*IndexedTable, error) {
	e := ex.entry(op)
	e.once.Do(func() {
		children := op.Children()
		inputs := make([]*IndexedTable, len(children))
		if ex.opts.Parallel && len(children) > 1 {
			var wg sync.WaitGroup
			errs := make([]error, len(children))
			for i, c := range children {
				wg.Add(1)
				go func(i int, c Operator) {
					defer wg.Done()
					inputs[i], errs[i] = ex.resolve(c, stats)
				}(i, c)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					e.err = err
					return
				}
			}
		} else {
			for i, c := range children {
				in, err := ex.resolve(c, stats)
				if err != nil {
					e.err = err
					return
				}
				inputs[i] = in
			}
		}
		ec := &ExecContext{opts: ex.opts}
		if stats != nil {
			if _, isBase := op.(*Base); !isBase {
				e.st = &OperatorStats{Label: op.Label()}
				ec.opStats = e.st
			}
		}
		t0 := time.Now()
		e.out, e.err = op.run(ec, inputs)
		if e.st != nil && e.err == nil {
			e.st.Time = time.Since(t0)
			e.st.MaterializeTime = e.st.Time - e.st.IndexTime
			e.st.OutRows = e.out.Rows()
			e.st.OutKeys = e.out.Keys()
			e.st.OutBytes = e.out.Idx.Bytes()
		}
	})
	if e.err == nil && e.st != nil && stats != nil {
		// Append post-order, exactly once per operator.
		ex.mu.Lock()
		st := *e.st
		e.st = nil
		stats.Ops = append(stats.Ops, st)
		ex.mu.Unlock()
	}
	return e.out, e.err
}

// A Result is the client-side materialization of a query result index:
// one row per index key, the key fields first, the payload columns after.
// Because the result index is a prefix tree, rows arrive already sorted by
// the key fields (paper Section 3: "the resulting index ... is already
// sorted"); OrderBy re-sorts only when the requested order involves
// non-key columns such as aggregates.
type Result struct {
	Attrs []string
	Rows  [][]uint64
}

// Extract materializes an indexed table into a Result in key order.
func Extract(t *IndexedTable) *Result {
	r := &Result{Attrs: append(append([]string{}, t.Key.Attrs...), t.Cols...)}
	comp := t.Key.Composer()
	nk := len(t.Key.Attrs)
	t.Idx.Iterate(func(k uint64, vals *duplist.List) bool {
		emit := func(payload []uint64) bool {
			row := make([]uint64, 0, nk+len(t.Cols))
			switch nk {
			case 0:
			case 1:
				row = append(row, k)
			default:
				row = comp.Split(k, row)
			}
			row = append(row, payload...)
			r.Rows = append(r.Rows, row)
			return true
		}
		if len(t.Cols) == 0 {
			for n := 0; n < vals.Len(); n++ {
				emit(nil)
			}
			return true
		}
		vals.Scan(emit)
		return true
	})
	return r
}

// OrderBy sorts the result rows by the given column positions; negative
// positions sort that column descending (position -(i+1) means column i
// descending).
func (r *Result) OrderBy(cols ...int) {
	sort.SliceStable(r.Rows, func(a, b int) bool {
		ra, rb := r.Rows[a], r.Rows[b]
		for _, c := range cols {
			if c < 0 {
				i := -c - 1
				if ra[i] != rb[i] {
					return ra[i] > rb[i]
				}
				continue
			}
			if ra[c] != rb[c] {
				return ra[c] < rb[c]
			}
		}
		return false
	})
}

// Col returns the position of the named attribute in result rows, or -1.
func (r *Result) Col(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}
