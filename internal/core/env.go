package core

import (
	"qppt/internal/arena"
	"qppt/internal/spill"
)

// An Env is the long-lived execution environment a plan runs in: the
// shared worker pool, the cross-plan chunk recycler, and the spill manager
// whose byte budget spans every concurrent plan. Plan.Run creates (and
// tears down) an ephemeral Env per call — the historical one-shot mode —
// while a server embeds one Env in a qppt.Engine and passes it to
// Plan.RunCtx so the steady state the prefix-tree processing model builds
// up (warm chunk pools, a stable worker pool, one spill budget) carries
// across queries instead of being re-created and re-collected per plan.
//
// An Env is safe for concurrent use: any number of plans may run against
// it at once. The scheduler bounds the *helper* goroutines across all of
// them; each plan's calling goroutine additionally works inline, so K
// concurrent plans on a pool of W workers run at most K+W−1 execution
// goroutines. Close releases the spill state; plans must not be running.
type Env struct {
	sched *Scheduler
	rec   *arena.Recycler
	spill *spill.Manager
}

// EnvConfig parameterizes NewEnv. The zero value is a serial environment
// with no recycler and no spill budget — equivalent to one-shot execution
// with zero Options.
type EnvConfig struct {
	// Workers sizes the shared worker pool (see Options.Workers; the same
	// WorkersAuto sentinel applies). Plans run through this Env ignore
	// Options.Workers — the pool is an environment property.
	Workers int
	// Recycle creates the session-scoped chunk recycler; RecycleCap
	// bounds the bytes it may retain (0 = unbounded; see
	// arena.Recycler.SetCap). Dropped intermediates' chunks park here and
	// later plans' index allocations draw from the pool first.
	Recycle    bool
	RecycleCap int64
	// MemBudget caps the resident bytes of intermediate indexes across
	// every plan sharing this Env (0 = no spilling); SpillDir and
	// MmapThaw configure the spill manager as in Options.
	MemBudget int64
	SpillDir  string
	MmapThaw  bool
}

// NewEnv builds a long-lived execution environment.
func NewEnv(cfg EnvConfig) (*Env, error) {
	env := &Env{sched: NewScheduler(Options{Workers: cfg.Workers}.poolWorkers())}
	if cfg.Recycle {
		env.rec = arena.NewRecycler()
		env.rec.SetCap(cfg.RecycleCap)
	}
	if cfg.MemBudget > 0 {
		mgr, err := newSpillManager(cfg.MemBudget, cfg.SpillDir, cfg.MmapThaw)
		if err != nil {
			return nil, err
		}
		env.spill = mgr
	}
	return env, nil
}

// newSpillManager is the single place a spill manager is assembled from
// budget knobs — NewEnv builds the environment-scoped manager through it
// and RunCtx the plan-private one (a budget passed in Options against a
// spill-less shared Env), so the two paths cannot drift apart.
func newSpillManager(budget int64, dir string, mmap bool) (*spill.Manager, error) {
	return spill.NewConfig(spill.Config{Budget: budget, Dir: dir, Mmap: mmap})
}

// Workers reports the shared pool size.
func (e *Env) Workers() int { return e.sched.Workers() }

// RecyclerStats snapshots the session recycler's counters (zero without a
// recycler).
func (e *Env) RecyclerStats() arena.RecyclerStats { return e.rec.Stats() }

// SpillStats snapshots the shared spill manager's counters (zero without
// a memory budget).
func (e *Env) SpillStats() spill.Stats {
	if e.spill == nil {
		return spill.Stats{}
	}
	return e.spill.Stats()
}

// Close tears the environment down, deleting all spill state. Every plan
// using the Env must have finished: results were detached from the spill
// manager when their plans returned, so they stay valid after Close.
func (e *Env) Close() error {
	if e == nil {
		return nil
	}
	if e.spill != nil {
		return e.spill.Close()
	}
	return nil
}

// ephemeralEnv assembles the per-call environment Plan.Run historically
// created: pool, recycler and spill manager live for one execution. The
// plan-scoped recycler is uncapped — it dies with the plan.
func ephemeralEnv(opts Options) (*Env, error) {
	return NewEnv(EnvConfig{
		Workers:   opts.Workers,
		Recycle:   opts.Recycle,
		MemBudget: opts.MemBudget,
		SpillDir:  opts.SpillDir,
		MmapThaw:  opts.MmapThaw,
	})
}
