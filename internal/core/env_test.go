package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestRunCtxCancelMidScan cancels the context deterministically from
// inside a selection's residual filter: the scan must stop within one
// abort-poll window and RunCtx must report context.Canceled instead of a
// partial result.
func TestRunCtxCancelMidScan(t *testing.T) {
	const nKeys = 200000
	idx := NewIndex(IndexConfig{KeyBits: 32})
	for k := uint64(0); k < nKeys; k++ {
		idx.Insert(k, nil)
	}
	base := NewIndexedTable("big[k]", SimpleKey("k", 32), nil, idx)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const cancelAt = 1000
	seen := 0
	plan := &Plan{Root: &Selection{
		Input: &Base{Table: base},
		Residual: func([]uint64) bool {
			seen++
			if seen == cancelAt {
				cancel()
			}
			return true
		},
		Out: OutputSpec{
			Name:    "out",
			Key:     SimpleKey("k", 32),
			KeyRefs: []Ref{{Input: 0, Attr: "k"}},
		},
	}}
	out, _, err := plan.RunCtx(ctx, nil, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx returned err=%v out=%v, want context.Canceled", err, out)
	}
	// The abort poll runs every abortTickMask+1 fed combinations; the scan
	// must not have continued much past the cancellation point.
	if limit := cancelAt + 2*(abortTickMask+1); seen > limit {
		t.Errorf("scan visited %d rows after cancelling at %d (limit %d)", seen, cancelAt, limit)
	}
}

// TestRunCtxCancelParallel: the same deterministic cancellation under
// morsel-driven execution — every worker must stop claiming and RunCtx
// must unwind without deadlocking on the shared pool.
func TestRunCtxCancelParallel(t *testing.T) {
	const nKeys = 200000
	idx := NewIndex(IndexConfig{KeyBits: 32})
	for k := uint64(0); k < nKeys; k++ {
		idx.Insert(k, nil)
	}
	base := NewIndexedTable("big[k]", SimpleKey("k", 32), nil, idx)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	plan := &Plan{Root: &Selection{
		Input: &Base{Table: base},
		Residual: func([]uint64) bool {
			cancel() // idempotent; the first combination cancels the query
			return true
		},
		Out: OutputSpec{
			Name:    "out",
			Key:     SimpleKey("k", 32),
			KeyRefs: []Ref{{Input: 0, Attr: "k"}},
		},
	}}
	_, _, err := plan.RunCtx(ctx, nil, Options{Workers: 4, MorselsPerWorker: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel RunCtx returned %v, want context.Canceled", err)
	}
}

// TestEnvCrossPlanReuse: two identical plans run back-to-back against one
// Env must produce bit-identical results, and the second plan's index
// allocations must be served from the chunks the first plan dropped —
// the cross-plan steady state the session-scoped recycler exists for.
func TestEnvCrossPlanReuse(t *testing.T) {
	f := buildFixture(21)
	want, _, err := starPlan(f, 2).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := Extract(want).Rows

	env, err := NewEnv(EnvConfig{Recycle: true})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	var firstReuse int
	for pass := 0; pass < 2; pass++ {
		// NoFuse: cross-plan chunk reuse needs the plan to build (and drop)
		// its intermediate index; fusion would stream it instead.
		out, stats, err := starPlan(f, 2).RunCtx(context.Background(), env, Options{CollectStats: true, NoFuse: true})
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !reflect.DeepEqual(Extract(out).Rows, wantRows) {
			t.Fatalf("pass %d: env-run result differs", pass)
		}
		if pass == 0 {
			firstReuse = stats.ChunksReused
		} else if stats.ChunksReused <= firstReuse {
			t.Errorf("second plan reused %d chunks, first %d — no cross-plan reuse",
				stats.ChunksReused, firstReuse)
		}
	}
	if rs := env.RecyclerStats(); rs.Reused == 0 {
		t.Errorf("env recycler recorded no reuse: %+v", rs)
	}
}

// TestEnvSharedSpillDetachesResult: under a shared (env-scoped) spill
// manager, a plan's intermediates must leave the spill directory with the
// plan and its result must stay fully usable — including after later
// plans churn the budget and after Env.Close.
func TestEnvSharedSpillDetachesResult(t *testing.T) {
	dir := t.TempDir()
	env, err := NewEnv(EnvConfig{Recycle: true, MemBudget: 1, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	f := buildFixture(22)
	want, _, err := starPlan(f, 2).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := Extract(want).Rows

	out, stats, err := starPlan(f, 2).RunCtx(context.Background(), env, Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spills == 0 {
		t.Fatalf("1-byte budget produced no spills: %+v", stats)
	}
	// Every spill file of the finished plan — intermediates and result —
	// must be gone: dropped intermediates delete theirs, the detached
	// result deletes its own.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, filepath.Join(dir, e.Name()))
	}
	if len(files) > 0 {
		t.Errorf("spill files left after the plan finished: %v", files)
	}
	// Churn the budget with another plan, then close the env; the first
	// result must stay intact throughout.
	if _, _, err := starPlan(f, 3).RunCtx(context.Background(), env, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	if got := Extract(out).Rows; !reflect.DeepEqual(got, wantRows) {
		t.Fatal("detached result changed after env churn and Close")
	}
}

// TestRunDeprecatedWrapper: the historical one-shot entry point must keep
// working unchanged on top of RunCtx.
func TestRunDeprecatedWrapper(t *testing.T) {
	f := buildFixture(23)
	a, _, err := starPlan(f, 2).Run(Options{Recycle: true, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := starPlan(f, 2).RunCtx(context.Background(), nil, Options{Recycle: true, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Extract(a).Rows, Extract(b).Rows) {
		t.Fatal("Run and RunCtx(nil env) disagree")
	}
}
