package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMergePartials compares the sequential re-insert merge against
// the parallel partition-wise merge that morsel-driven execution uses,
// across worker counts and both index structures (KISS for narrow keys,
// prefix tree for wide ones). The partition-wise merge should show a
// clear speedup at ≥ 4 workers.
func BenchmarkMergePartials(b *testing.B) {
	const (
		nPartials      = 8
		rowsPerPartial = 120000
	)
	for _, cfg := range []struct {
		name string
		bits uint
	}{
		{"kiss24", 24},
		{"pt40", 40},
	} {
		spec := &OutputSpec{
			Name: "bench",
			Key:  SimpleKey("k", cfg.bits),
			Cols: []string{"v"},
			Fold: FoldSum(0),
		}
		rng := rand.New(rand.NewSource(101))
		partials := make([]*IndexedTable, nPartials)
		for p := range partials {
			idx := newOutputIndex(spec, nil)
			keys := make([]uint64, rowsPerPartial)
			rows := make([][]uint64, rowsPerPartial)
			for i := range keys {
				keys[i] = uint64(rng.Int63()) & keySpaceMax(cfg.bits)
				rows[i] = []uint64{uint64(i % 97)}
			}
			idx.InsertBatch(keys, rows)
			partials[p] = NewIndexedTable(spec.Name, spec.Key, spec.Cols, idx)
		}
		b.Run(cfg.name+"/serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mergePartials(nil, spec, partials, nil)
			}
		})
		for _, workers := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/parallel-w%d", cfg.name, workers), func(b *testing.B) {
				ec := &ExecContext{opts: Options{Workers: workers}}
				for i := 0; i < b.N; i++ {
					mergePartialsParallel(ec, spec, partials)
				}
			})
		}
	}
}
