package core

import (
	"reflect"
	"testing"
)

// Options.Recycle must be a pure storage decision: results bit-identical,
// the plan stats recording chunks parked and reused — the drop→reuse
// round trip across operators — serially, under morsel parallelism, and
// combined with a spill budget.
func TestRecycleMatchesBaseline(t *testing.T) {
	f := buildFixture(11)
	// Three operator levels: the selection output drops when the join
	// finishes, so the final HAVING's index allocations can draw from the
	// pool — the cross-operator drop→reuse cycle the recycler exists for.
	mkPlan := func() *Plan {
		join := starPlan(f, 2).Root
		return &Plan{Root: &Having{
			Input: join,
			Pred:  nil,
			Out: OutputSpec{
				Name:     "having",
				Key:      SimpleKey("region", 8),
				KeyRefs:  []Ref{{Input: 0, Attr: "region"}},
				Cols:     []string{"sum_qty"},
				ColExprs: []RowExpr{Attr(0, "sum_qty")},
			},
		}}
	}
	want, _, err := mkPlan().Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantRes := Extract(want)
	for _, opt := range []Options{
		{Recycle: true},
		{Recycle: true, Workers: 3},
		{Recycle: true, Workers: 3, MemBudget: 1},
		{Recycle: true, Workers: 3, MemBudget: 1, MmapThaw: true},
	} {
		opt.CollectStats = true
		// The drop→reuse cycle needs the selection intermediate to be
		// built and dropped; fusion would skip it entirely.
		opt.NoFuse = true
		out, stats, err := mkPlan().Run(opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if !reflect.DeepEqual(Extract(out).Rows, wantRes.Rows) {
			t.Fatalf("%+v: recycled result differs", opt)
		}
		if stats.ChunksRecycled == 0 {
			t.Fatalf("%+v: no chunks parked: %+v", opt, stats)
		}
		if stats.ChunksReused == 0 || stats.RecycleSavedBytes == 0 {
			t.Fatalf("%+v: no chunks reused: %+v", opt, stats)
		}
	}
}

// A DAG whose intermediate feeds two parents must only be dropped after
// the second parent finished; the result must stay correct.
func TestRecycleDropsOnlyAfterLastConsumer(t *testing.T) {
	f := buildFixture(12)
	sel := &Selection{
		Input: &Base{Table: f.prodByBrand},
		Pred:  Between(0, 10),
		Out: OutputSpec{
			Name:    "σ_products",
			Key:     SimpleKey("prodkey", 16),
			KeyRefs: []Ref{{Input: 0, Attr: "prodkey"}},
		},
	}
	// Both join inputs read the same selection output (a self-intersect):
	// every key survives, and the cross product squares the multiplicity.
	join := &Intersect{
		A: sel,
		B: sel,
		Out: OutputSpec{
			Name:    "both",
			Key:     SimpleKey("prodkey", 16),
			KeyRefs: []Ref{{Input: 0, Attr: "prodkey"}},
		},
	}
	plan := &Plan{Root: join}
	want, _, err := (&Plan{Root: join}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := plan.Run(Options{Recycle: true, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Extract(got).Rows, Extract(want).Rows) {
		t.Fatal("shared-intermediate recycled result differs")
	}
	if stats.ChunksRecycled == 0 {
		t.Fatalf("selection output never recycled: %+v", stats)
	}
}

// An index kind that cannot freeze must simply never be registered with
// the spill manager (stay resident); freezerOf is the gate.
func TestFreezerOfUnspillableKind(t *testing.T) {
	plain := struct{ Index }{NewIndex(IndexConfig{KeyBits: 16})}
	if freezerOf(plain) != nil {
		t.Fatal("wrapper without spill hooks reported as freezable")
	}
	if freezerOf(NewIndex(IndexConfig{KeyBits: 16})) == nil {
		t.Fatal("prefix-tree index kind not freezable")
	}
	sh := newShardedIndex([]Index{plain}, []uint64{0}, []uint64{^uint64(0)}, 64)
	if freezerOf(sh) != nil {
		t.Fatal("sharded index over an unspillable shard reported as freezable")
	}
}

// A range-restricted Selection over a frozen intermediate must thaw only
// the chunks its predicate envelope touches: the partial-restore counter
// moves and fewer spill-file bytes are read than a full restore of the
// same plan shape needs.
func TestPartialThawReadsLessForRangePredicates(t *testing.T) {
	// A base table with enough distinct keys that its intermediate copy
	// spans many leaf chunks (a KISS leaf chunk holds 8192 leaves).
	const nKeys = 60000
	baseIdx := NewIndex(IndexConfig{KeyBits: 32, PayloadWidth: 1})
	for k := uint64(0); k < nKeys; k++ {
		baseIdx.Insert(k, []uint64{k * 7})
	}
	base := NewIndexedTable("wide[k]", SimpleKey("k", 32), []string{"v"}, baseIdx)
	// identity σ materializes the fat intermediate; the outer σ reads a
	// narrow band out of it.
	mkPlan := func(pred KeyPred) *Plan {
		ident := &Selection{
			Input: &Base{Table: base},
			Pred:  Between(0, nKeys-1),
			Out: OutputSpec{
				Name:     "fat",
				Key:      SimpleKey("k", 32),
				KeyRefs:  []Ref{{Input: 0, Attr: "k"}},
				Cols:     []string{"v"},
				ColExprs: []RowExpr{Attr(0, "v")},
			},
		}
		return &Plan{Root: &Selection{
			Input: ident,
			Pred:  pred,
			Out: OutputSpec{
				Name:     "band",
				Key:      SimpleKey("k", 32),
				KeyRefs:  []Ref{{Input: 0, Attr: "k"}},
				Cols:     []string{"v"},
				ColExprs: []RowExpr{Attr(0, "v")},
			},
		}}
	}
	narrow := Between(1000, 2000)

	// Partial thaw needs the fat intermediate to exist: with fusion on,
	// the single-consumer σ→σ edge streams and never materializes it, so
	// this test runs the materialized path explicitly.
	want, _, err := mkPlan(narrow).Run(Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := mkPlan(narrow).Run(Options{MemBudget: 1, CollectStats: true, NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Extract(got).Rows, Extract(want).Rows) {
		t.Fatal("partially thawed selection result differs")
	}
	if stats.PartialRestores == 0 {
		t.Fatalf("no partial restore recorded: %+v", stats)
	}
	partialRead := stats.RestoreBytesRead
	if partialRead == 0 {
		t.Fatal("no restore bytes recorded")
	}
	// The same plan with an unrestricted selection thaws everything.
	_, full, err := mkPlan(nil).Run(Options{MemBudget: 1, CollectStats: true, NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.RestoreBytesRead <= partialRead {
		t.Fatalf("range-restricted thaw read %d bytes, full thaw %d — no savings",
			partialRead, full.RestoreBytesRead)
	}
}
