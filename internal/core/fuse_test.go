package core

import (
	"reflect"
	"strings"
	"testing"
)

// buildChains must detect exactly the single-consumer streaming edges:
// the star plan's σ_products → join edge fuses; a multi-consumer
// intermediate, a folding producer, and a key-range-scanning consumer
// all stay materialized.
func TestBuildChainsShapes(t *testing.T) {
	f := buildFixture(14)
	chainsOf := func(root Operator) map[Operator]*fuseChain {
		uses := map[Operator]int{}
		countUses(root, uses)
		uses[root]++
		return buildChains(root, uses)
	}

	// Star plan: one chain, selection streaming into the join's right
	// input (ordinal 1).
	plan := starPlan(f, 2)
	chains := chainsOf(plan.Root)
	if len(chains) != 1 {
		t.Fatalf("star plan has %d chains, want 1", len(chains))
	}
	ch := chains[plan.Root]
	if ch == nil {
		t.Fatal("star plan chain not keyed by its top operator")
	}
	if len(ch.links) != 2 || ch.ords[0] != -1 || ch.ords[1] != 1 {
		t.Fatalf("chain shape links=%d ords=%v, want 2 links feeding ordinal 1", len(ch.links), ch.ords)
	}
	if _, ok := ch.links[0].(*Selection); !ok {
		t.Fatalf("chain bottom is %T, want *Selection", ch.links[0])
	}
	if FusableEdges(plan.Root) != 1 {
		t.Fatalf("FusableEdges = %d, want 1", FusableEdges(plan.Root))
	}

	// Multi-consumer: both intersect inputs read the same selection —
	// the index is genuinely shared, nothing fuses.
	sel := &Selection{
		Input: &Base{Table: f.prodByBrand},
		Pred:  Between(0, 10),
		Out: OutputSpec{
			Name:    "σ_products",
			Key:     SimpleKey("prodkey", 16),
			KeyRefs: []Ref{{Input: 0, Attr: "prodkey"}},
		},
	}
	shared := &Intersect{A: sel, B: sel, Out: sel.Out}
	if got := chainsOf(shared); len(got) != 0 {
		t.Fatalf("multi-consumer selection fused: %d chains", len(got))
	}
	if FusableEdges(shared) != 0 {
		t.Fatal("FusableEdges counted a multi-consumer edge")
	}

	// Folding producer: the fold must see the whole multiset before the
	// consumer reads it, so the edge stays materialized.
	foldSel := &Selection{
		Input: &Base{Table: f.factByProd},
		Out: OutputSpec{
			Name:     "Γ_qty",
			Key:      SimpleKey("custkey", 16),
			KeyRefs:  []Ref{{Input: 0, Attr: "custkey"}},
			Cols:     []string{"sum_qty"},
			ColExprs: []RowExpr{Attr(0, "qty")},
			Fold:     FoldSum(0),
		},
	}
	if fusableProducer(foldSel, map[Operator]int{foldSel: 1}) {
		t.Fatal("folding selection reported fusable")
	}

	// Selection consumer: key-range scans need the materialized index
	// (and drive partial thaw); a σ→σ plan must build no chains.
	outer := &Selection{
		Input: sel,
		Pred:  Between(2, 5),
		Out:   sel.Out,
	}
	if got := chainsOf(outer); len(got) != 0 {
		t.Fatalf("selection consumer fused: %d chains", len(got))
	}
}

// Fusion must be a pure execution strategy: results bit-identical to the
// materialized plan across serial/parallel execution and with a spill
// budget, with the fused-edge counter moving.
func TestFusedMatchesMaterialized(t *testing.T) {
	f := buildFixture(15)
	mkPlan := func() *Plan {
		join := starPlan(f, 2).Root
		return &Plan{Root: &Having{
			Input: join,
			Pred:  nil,
			Out: OutputSpec{
				Name:     "having",
				Key:      SimpleKey("region", 8),
				KeyRefs:  []Ref{{Input: 0, Attr: "region"}},
				Cols:     []string{"sum_qty"},
				ColExprs: []RowExpr{Attr(0, "sum_qty")},
			},
		}}
	}
	want, _, err := mkPlan().Run(Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	wantRes := Extract(want)
	for _, opt := range []Options{
		{},
		{Workers: 3},
		{MemBudget: 1},
		{Workers: 3, MemBudget: 1},
		{Workers: 3, MemBudget: 1, MmapThaw: true, Recycle: true},
	} {
		opt.CollectStats = true
		out, stats, err := mkPlan().Run(opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if !reflect.DeepEqual(Extract(out).Rows, wantRes.Rows) {
			t.Fatalf("%+v: fused result differs", opt)
		}
		if stats.FusedEdges != 1 {
			t.Fatalf("%+v: FusedEdges = %d, want 1", opt, stats.FusedEdges)
		}
	}
}

// Per-operator stats of a fused chain: the bypassed link reports its
// streamed combinations under its own label, the top link reports the
// materialized output, and the plan stats surface the skipped edge.
func TestFusedStatsAttribution(t *testing.T) {
	f := buildFixture(16)
	out, stats, err := starPlan(f, 2).Run(Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FusedEdges != 1 {
		t.Fatalf("FusedEdges = %d, want 1", stats.FusedEdges)
	}
	if len(stats.Ops) != 2 {
		t.Fatalf("%d operator rows, want 2", len(stats.Ops))
	}
	sel, join := stats.Ops[0], stats.Ops[1]
	if sel.Label != "σ→σ_products" || !sel.Fused {
		t.Fatalf("first op %q fused=%v, want the fused selection", sel.Label, sel.Fused)
	}
	if sel.TuplesStreamed == 0 || sel.TuplesIndexed != 0 {
		t.Fatalf("fused selection streamed=%d indexed=%d, want streamed>0 indexed=0", sel.TuplesStreamed, sel.TuplesIndexed)
	}
	if sel.Time <= 0 {
		t.Fatal("fused selection reported no time")
	}
	if join.Fused || join.OutKeys != out.Keys() || join.OutRows != out.Rows() {
		t.Fatalf("top join stats %+v do not match output %d/%d", join, out.Keys(), out.Rows())
	}
	s := stats.String()
	if !strings.Contains(s, "fusion: 1 intermediate indexes skipped") || !strings.Contains(s, "combinations streamed") {
		t.Fatalf("stats string does not report fusion:\n%s", s)
	}
}

// frostOrder without a spill manager must be the identity permutation —
// locality ordering only exists to prefer resident inputs over frozen
// ones, and without a budget nothing is ever frozen.
func TestFrostOrderIdentityWithoutSpill(t *testing.T) {
	f := buildFixture(17)
	ex := &executor{}
	ops := []Operator{&Base{Table: f.custByKey}, &Base{Table: f.factByProd}, &Base{Table: f.prodByBrand}}
	order := ex.frostOrder(ops)
	if len(order) != len(ops) {
		t.Fatalf("frostOrder returned %d indexes for %d ops", len(order), len(ops))
	}
	for i, o := range order {
		if o != i {
			t.Fatalf("frostOrder without spill = %v, want identity", order)
		}
	}
}
