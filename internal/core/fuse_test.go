package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// buildChains must detect exactly the single-consumer streaming edges:
// the star plan's σ_products → join edge and a σ→σ range stream fuse; a
// multi-consumer intermediate and a folding producer stay materialized.
func TestBuildChainsShapes(t *testing.T) {
	f := buildFixture(14)
	chainsOf := func(root Operator) map[Operator]*fuseChain {
		uses := map[Operator]int{}
		countUses(root, uses)
		uses[root]++
		return buildChains(root, uses)
	}

	// Star plan: one chain, selection streaming into the join's right
	// input (ordinal 1).
	plan := starPlan(f, 2)
	chains := chainsOf(plan.Root)
	if len(chains) != 1 {
		t.Fatalf("star plan has %d chains, want 1", len(chains))
	}
	ch := chains[plan.Root]
	if ch == nil {
		t.Fatal("star plan chain not keyed by its top operator")
	}
	if len(ch.links) != 2 || ch.ords[0] != -1 || ch.ords[1] != 1 {
		t.Fatalf("chain shape links=%d ords=%v, want 2 links feeding ordinal 1", len(ch.links), ch.ords)
	}
	if _, ok := ch.links[0].(*Selection); !ok {
		t.Fatalf("chain bottom is %T, want *Selection", ch.links[0])
	}
	if FusableEdges(plan.Root) != 1 {
		t.Fatalf("FusableEdges = %d, want 1", FusableEdges(plan.Root))
	}

	// Multi-consumer: both intersect inputs read the same selection —
	// the index is genuinely shared, nothing fuses.
	sel := &Selection{
		Input: &Base{Table: f.prodByBrand},
		Pred:  Between(0, 10),
		Out: OutputSpec{
			Name:    "σ_products",
			Key:     SimpleKey("prodkey", 16),
			KeyRefs: []Ref{{Input: 0, Attr: "prodkey"}},
		},
	}
	shared := &Intersect{A: sel, B: sel, Out: sel.Out}
	if got := chainsOf(shared); len(got) != 0 {
		t.Fatalf("multi-consumer selection fused: %d chains", len(got))
	}
	if FusableEdges(shared) != 0 {
		t.Fatal("FusableEdges counted a multi-consumer edge")
	}

	// Folding producer: the fold must see the whole multiset before the
	// consumer reads it, so the edge stays materialized.
	foldSel := &Selection{
		Input: &Base{Table: f.factByProd},
		Out: OutputSpec{
			Name:     "Γ_qty",
			Key:      SimpleKey("custkey", 16),
			KeyRefs:  []Ref{{Input: 0, Attr: "custkey"}},
			Cols:     []string{"sum_qty"},
			ColExprs: []RowExpr{Attr(0, "qty")},
			Fold:     FoldSum(0),
		},
	}
	if fusableProducer(foldSel, map[Operator]int{foldSel: 1}) {
		t.Fatal("folding selection reported fusable")
	}

	// Selection consumer (range-stream fusion): the σ→σ edge fuses — the
	// outer selection applies its predicate on the ordered range stream
	// instead of scanning a materialized intermediate.
	outer := &Selection{
		Input: sel,
		Pred:  Between(2, 5),
		Out:   sel.Out,
	}
	got := chainsOf(outer)
	if len(got) != 1 {
		t.Fatalf("σ→σ plan has %d chains, want 1", len(got))
	}
	sch := got[Operator(outer)]
	if sch == nil || len(sch.links) != 2 || sch.ords[1] != 0 {
		t.Fatalf("σ→σ chain shape %+v, want 2 links feeding ordinal 0", sch)
	}
	if FusableEdges(outer) != 1 {
		t.Fatalf("FusableEdges(σ→σ) = %d, want 1", FusableEdges(outer))
	}
}

// Fusion must be a pure execution strategy: results bit-identical to the
// materialized plan across serial/parallel execution and with a spill
// budget, with the fused-edge counter moving.
func TestFusedMatchesMaterialized(t *testing.T) {
	f := buildFixture(15)
	mkPlan := func() *Plan {
		join := starPlan(f, 2).Root
		return &Plan{Root: &Having{
			Input: join,
			Pred:  nil,
			Out: OutputSpec{
				Name:     "having",
				Key:      SimpleKey("region", 8),
				KeyRefs:  []Ref{{Input: 0, Attr: "region"}},
				Cols:     []string{"sum_qty"},
				ColExprs: []RowExpr{Attr(0, "sum_qty")},
			},
		}}
	}
	want, _, err := mkPlan().Run(Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	wantRes := Extract(want)
	for _, opt := range []Options{
		{},
		{Workers: 3},
		{MemBudget: 1},
		{Workers: 3, MemBudget: 1},
		{Workers: 3, MemBudget: 1, MmapThaw: true, Recycle: true},
	} {
		opt.CollectStats = true
		out, stats, err := mkPlan().Run(opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if !reflect.DeepEqual(Extract(out).Rows, wantRes.Rows) {
			t.Fatalf("%+v: fused result differs", opt)
		}
		if stats.FusedEdges != 1 {
			t.Fatalf("%+v: FusedEdges = %d, want 1", opt, stats.FusedEdges)
		}
	}
}

// Per-operator stats of a fused chain: the bypassed link reports its
// streamed combinations under its own label, the top link reports the
// materialized output, and the plan stats surface the skipped edge.
func TestFusedStatsAttribution(t *testing.T) {
	f := buildFixture(16)
	out, stats, err := starPlan(f, 2).Run(Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FusedEdges != 1 {
		t.Fatalf("FusedEdges = %d, want 1", stats.FusedEdges)
	}
	if len(stats.Ops) != 2 {
		t.Fatalf("%d operator rows, want 2", len(stats.Ops))
	}
	sel, join := stats.Ops[0], stats.Ops[1]
	if sel.Label != "σ→σ_products" || !sel.Fused {
		t.Fatalf("first op %q fused=%v, want the fused selection", sel.Label, sel.Fused)
	}
	if sel.TuplesStreamed == 0 || sel.TuplesIndexed != 0 {
		t.Fatalf("fused selection streamed=%d indexed=%d, want streamed>0 indexed=0", sel.TuplesStreamed, sel.TuplesIndexed)
	}
	if sel.Time <= 0 {
		t.Fatal("fused selection reported no time")
	}
	if join.Fused || join.OutKeys != out.Keys() || join.OutRows != out.Rows() {
		t.Fatalf("top join stats %+v do not match output %d/%d", join, out.Keys(), out.Rows())
	}
	s := stats.String()
	if !strings.Contains(s, "fusion: 1 intermediate indexes skipped") || !strings.Contains(s, "combinations streamed") {
		t.Fatalf("stats string does not report fusion:\n%s", s)
	}
}

// Batch-boundary edges of fused range-stream execution: an identity σ
// feeding a band σ fuses with the envelope clip active (the output key is
// the scanned key), so every case also exercises the clipped scan path.
// Covered: the empty stream (the producer's predicate selects nothing),
// probe batches larger than a morsel's combination count (finish must
// cascade the partial batch through the stack), tiny batches forcing many
// flushes with a partial last one, and scalar forwarding.
func TestRangeStreamBatchEdges(t *testing.T) {
	f := buildFixture(18)
	outSpec := func(name string) OutputSpec {
		return OutputSpec{
			Name:     name,
			Key:      SimpleKey("brand", 8),
			KeyRefs:  []Ref{{Input: 0, Attr: "brand"}},
			Cols:     []string{"prodkey"},
			ColExprs: []RowExpr{Attr(0, "prodkey")},
		}
	}
	mkPlan := func(innerPred, outerPred KeyPred) *Plan {
		inner := &Selection{Input: &Base{Table: f.prodByBrand}, Pred: innerPred, Out: outSpec("ident")}
		return &Plan{Root: &Selection{Input: inner, Pred: outerPred, Out: outSpec("band")}}
	}
	band := Between(2, 5)

	want, _, err := mkPlan(nil, band).Run(Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := Extract(want).Rows
	if len(wantRows) == 0 {
		t.Fatal("band selects nothing — fixture changed?")
	}
	for _, opt := range []Options{
		{},              // default batch ≫ 200 combinations: only finish flushes
		{ProbeBatch: 3}, // many flushes, partial last batch
		{ProbeBatch: 1}, // scalar forwarding
		{ProbeBatch: 1024, Workers: 3, MorselsPerWorker: 3}, // batch spans every morsel's end
		{ProbeBatch: 3, Workers: 3, MemBudget: 1},
	} {
		opt.CollectStats = true
		out, stats, err := mkPlan(nil, band).Run(opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if stats.FusedEdges != 1 {
			t.Fatalf("%+v: FusedEdges = %d, want 1", opt, stats.FusedEdges)
		}
		if !reflect.DeepEqual(Extract(out).Rows, wantRows) {
			t.Fatalf("%+v: fused σ→σ result differs", opt)
		}
	}

	// Empty stream: an empty (non-nil) inner predicate scans nothing; the
	// chain must finish cleanly with zero batches and an empty output.
	out, stats, err := mkPlan(KeyPred{}, band).Run(Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 0 {
		t.Fatalf("empty stream produced %d rows", out.Rows())
	}
	if stats.Ops[0].ProbeBatches != 0 {
		t.Fatalf("empty stream recorded %d probe batches", stats.Ops[0].ProbeBatches)
	}
}

// Batch flushes into a deep probe target must key-sort before
// forwarding. The driver streams a scrambled permutation, so batches
// arrive unsorted, and the target holds ≥ probeSortMinKeys keys, so
// sortPays picks the sorting path: narrow keys exercise the packed
// key<<32|index sort, wide (≥ 2³²) keys the comparator fallback.
func TestBatchSortPaths(t *testing.T) {
	const nKeys = 2 * probeSortMinKeys
	mkPlan := func(keyBits, shift uint) *Plan {
		rng := rand.New(rand.NewSource(21))
		tgtIdx := NewIndex(IndexConfig{KeyBits: keyBits, PayloadWidth: 1})
		for i := 0; i < nKeys; i++ {
			tgtIdx.Insert(uint64(i)<<shift, []uint64{uint64(rng.Intn(97))})
		}
		target := NewIndexedTable("target[k]", SimpleKey("k", keyBits), []string{"v"}, tgtIdx)
		drvIdx := NewIndex(IndexConfig{KeyBits: 16, PayloadWidth: 1})
		for a, i := range rng.Perm(nKeys) {
			drvIdx.Insert(uint64(a), []uint64{uint64(i) << shift})
		}
		driver := NewIndexedTable("driver[a]", SimpleKey("a", 16), []string{"k"}, drvIdx)
		sel := &Selection{
			Input: &Base{Table: driver},
			Out: OutputSpec{
				Name:    "σ_driver",
				Key:     SimpleKey("k", keyBits),
				KeyRefs: []Ref{{Input: 0, Attr: "k"}},
			},
		}
		return &Plan{Root: &Join{
			Left:  &Base{Table: target},
			Right: sel,
			Out: OutputSpec{
				Name:     "Γ_k",
				Key:      SimpleKey("k", keyBits),
				KeyRefs:  []Ref{{Input: 0, Attr: "k"}},
				Cols:     []string{"sum_v"},
				ColExprs: []RowExpr{Attr(0, "v")},
				Fold:     FoldSum(0),
			},
		}}
	}
	for _, tc := range []struct {
		name           string
		keyBits, shift uint
	}{
		{"packed32", 16, 0},  // keys < 2³²: packed key<<32|index sort
		{"wide-key", 48, 33}, // keys ≥ 2³²: comparator fallback
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, _, err := mkPlan(tc.keyBits, tc.shift).Run(Options{NoFuse: true})
			if err != nil {
				t.Fatal(err)
			}
			wantRows := Extract(want).Rows
			if len(wantRows) != nKeys {
				t.Fatalf("oracle has %d groups, want %d", len(wantRows), nKeys)
			}
			for _, opt := range []Options{
				{},
				{ProbeBatch: 7},
				{Workers: 3, MorselsPerWorker: 3},
			} {
				opt.CollectStats = true
				out, stats, err := mkPlan(tc.keyBits, tc.shift).Run(opt)
				if err != nil {
					t.Fatalf("%+v: %v", opt, err)
				}
				if stats.FusedEdges != 1 {
					t.Fatalf("%+v: FusedEdges = %d, want 1", opt, stats.FusedEdges)
				}
				if !reflect.DeepEqual(Extract(out).Rows, wantRows) {
					t.Fatalf("%+v: sorted-batch result differs from materialized", opt)
				}
			}
		})
	}
}

// Cancelling a query mid-stream under a memory budget must surface
// ctx.Err() and drain every pin: the plan's deferred spill-manager Close
// hangs on a leaked pin, so this test completing is the assertion.
func TestFusedChainCancellationDrainsPins(t *testing.T) {
	f := buildFixture(19)
	qctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fed := 0
	inner := &Selection{
		Input: &Base{Table: f.factByProd},
		Residual: func([]uint64) bool {
			fed++
			if fed == 5000 {
				cancel() // mid-scan, with combinations buffered in the probe batch
			}
			return true
		},
		Out: OutputSpec{
			Name:     "ident",
			Key:      SimpleKey("prodkey", 16),
			KeyRefs:  []Ref{{Input: 0, Attr: "prodkey"}},
			Cols:     []string{"custkey", "qty"},
			ColExprs: []RowExpr{Attr(0, "custkey"), Attr(0, "qty")},
		},
	}
	outer := &Selection{
		Input: inner,
		Pred:  Between(0, 1<<16-1),
		Out: OutputSpec{
			Name:     "band",
			Key:      SimpleKey("prodkey", 16),
			KeyRefs:  []Ref{{Input: 0, Attr: "prodkey"}},
			Cols:     []string{"custkey", "qty"},
			ColExprs: []RowExpr{Attr(0, "custkey"), Attr(0, "qty")},
		},
	}
	_, _, err := (&Plan{Root: outer}).RunCtx(qctx, nil, Options{MemBudget: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled fused chain returned %v, want context.Canceled", err)
	}
}

// frostOrder without a spill manager must be the identity permutation —
// locality ordering only exists to prefer resident inputs over frozen
// ones, and without a budget nothing is ever frozen.
func TestFrostOrderIdentityWithoutSpill(t *testing.T) {
	f := buildFixture(17)
	ex := &executor{}
	ops := []Operator{&Base{Table: f.custByKey}, &Base{Table: f.factByProd}, &Base{Table: f.prodByBrand}}
	order := ex.frostOrder(ops)
	if len(order) != len(ops) {
		t.Fatalf("frostOrder returned %d indexes for %d ops", len(order), len(ops))
	}
	for i, o := range order {
		if o != i {
			t.Fatalf("frostOrder without spill = %v, want identity", order)
		}
	}
}
