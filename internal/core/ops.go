package core

import (
	"fmt"

	"qppt/internal/arena"
	"qppt/internal/duplist"
)

// An Operator is one node of a QPPT execution plan. Operators form a DAG;
// each produces exactly one intermediate indexed table, already indexed on
// the key its consumer requests (cooperative operators, paper Section 1).
type Operator interface {
	// Label names the operator instance for plans and statistics.
	Label() string
	// Children returns the input operators, in input-ordinal order.
	Children() []Operator
	// run executes the operator on the resolved inputs.
	run(ec *ExecContext, inputs []*IndexedTable) (*IndexedTable, error)
}

// inputRanger is implemented by operators whose execution only touches
// part of an input's key space. The executor uses it to thaw a frozen
// (spilled) input partially: only the chunks the declared range touches
// come back from disk (spill.Handle.PinRange).
type inputRanger interface {
	// inputKeyRange reports the inclusive key interval the operator will
	// query on input ordinal i; ok == false means the whole key space.
	inputKeyRange(i int) (lo, hi uint64, ok bool)
}

// predEnvelope returns the inclusive hull of a selection predicate's
// ranges; ok is false for a nil predicate (scan everything).
func predEnvelope(pred KeyPred) (uint64, uint64, bool) {
	if len(pred) == 0 {
		return 0, 0, false
	}
	lo, hi := pred[0].Lo, pred[0].Hi
	for _, r := range pred[1:] {
		lo, hi = min(lo, r.Lo), max(hi, r.Hi)
	}
	return lo, hi, true
}

// Base is the leaf operator: it passes a base index into the plan. Base
// indexes are either pure secondary indexes (payload = record identifier)
// or partially clustered indexes that carry the join/selection/grouping
// attributes of interest in their payload (paper Section 3).
type Base struct {
	Table *IndexedTable
}

// Label implements Operator.
func (b *Base) Label() string { return b.Table.Name }

// Children implements Operator.
func (b *Base) Children() []Operator { return nil }

func (b *Base) run(*ExecContext, []*IndexedTable) (*IndexedTable, error) {
	return b.Table, nil
}

// Selection is the selection/having operator (paper Section 4.1): it scans
// the qualifying key ranges of its input index and inserts the qualifying
// tuples into a new index on the key requested by the successive operator.
// Conjunctions over several attributes either run against a
// multidimensional (composed-key) input index, or use the Residual filter
// on payload attributes.
type Selection struct {
	Input Operator
	// Pred is the index-key predicate (union of ranges).
	Pred KeyPred
	// Residual, if non-nil, additionally filters combinations; offsets
	// into the context must be resolved with CtxOf.
	Residual func(ctx []uint64) bool
	Out      OutputSpec
}

// Having is the logical HAVING operator; physically it is the same
// operator as Selection (paper Section 4.1).
type Having = Selection

// Label implements Operator.
func (s *Selection) Label() string { return "σ→" + s.Out.Name }

// Children implements Operator.
func (s *Selection) Children() []Operator { return []Operator{s.Input} }

// CtxOf resolves an attribute of the selection's input to its context
// offset, for building Residual filters and computed expressions.
func (s *Selection) CtxOf(input *IndexedTable, attr string) int {
	return mustResolve(newCtxLayout(input), Ref{Input: 0, Attr: attr})
}

// inputKeyRange implements inputRanger: the scan only touches the
// predicate's key ranges, so a spilled input thaws just their envelope.
func (s *Selection) inputKeyRange(i int) (uint64, uint64, bool) {
	if i != 0 {
		return 0, 0, false
	}
	return predEnvelope(s.Pred)
}

// pipe builds the selection's combination pipeline over its input; the
// caller attaches the sink (setSink to materialize, setForward to fuse).
func (s *Selection) pipe(ec *ExecContext, inputs []*IndexedTable) (*pipeline, error) {
	p := newPipeline(ec, newCtxLayout(inputs[0]))
	p.residual = s.Residual
	return p, nil
}

// scan returns the morsel scan body over the resolved inputs.
func (s *Selection) scan(inputs []*IndexedTable) scanFn {
	in := inputs[0]
	return func(p *pipeline, lo, hi uint64, whole bool) {
		pred := s.Pred
		if !whole {
			pred = intersectPred(pred, lo, hi)
		}
		feedScan(p, in, pred)
	}
}

// bounds returns the morsel interval: with a predicate, morsels partition
// its envelope instead of the data bounds — the scan clips every morsel
// to the predicate anyway, and a partially thawed input must not be asked
// for Min/Max (its skipped leaves read as empty key-0 leaves).
func (s *Selection) bounds(inputs []*IndexedTable) boundsFn {
	in := inputs[0]
	return func() (uint64, uint64, bool) {
		if lo, hi, ok := predEnvelope(s.Pred); ok {
			return lo, hi, true
		}
		return idxBounds(in.Idx)
	}
}

func (s *Selection) run(ec *ExecContext, inputs []*IndexedTable) (*IndexedTable, error) {
	newPart := func(spec *OutputSpec, rec *arena.Recycler) (*pipeline, *IndexedTable, error) {
		p, err := s.pipe(ec, inputs)
		if err != nil {
			return nil, nil, err
		}
		p.rec = rec
		out, err := p.setSink(spec)
		if err != nil {
			return nil, nil, err
		}
		return p, out, nil
	}
	return runMorsels(ec, &s.Out, s.bounds(inputs), newPart, s.scan(inputs))
}

// feedScan scans input 0's qualifying key ranges into the pipeline. A nil
// predicate scans everything through the plain iterator (the serial fast
// path); morsel scans pass their pre-clipped ranges.
func feedScan(p *pipeline, in *IndexedTable, pred KeyPred) {
	comp := in.Key.Composer()
	ctx := make([]uint64, p.layout.width)
	scan := func(k uint64, vals *duplist.List) bool {
		if p.aborted() {
			return false // query cancelled; the partial output is discarded
		}
		p.layout.fillKey(ctx, 0, k, comp)
		if len(in.Cols) == 0 {
			for n := 0; n < vals.Len(); n++ {
				p.feed(ctx)
			}
			return true
		}
		vals.Scan(func(row []uint64) bool {
			p.layout.fillRow(ctx, 0, row)
			p.feed(ctx)
			return true
		})
		return true
	}
	if pred == nil {
		in.Idx.Iterate(scan)
		return
	}
	for _, r := range pred {
		in.Idx.Range(r.Lo, r.Hi, scan)
	}
}

// An Assist attaches one assisting index to a composed join (paper
// Section 4.2): for every combination, ProbeWith's value is looked up in
// the assisting index (through the joinbuffer); misses drop the
// combination, hits extend it with the assisting rows.
type Assist struct {
	Input Operator
	// ProbeWith locates the probe key among the earlier inputs. Input
	// ordinals: 0 = left main, 1 = right main, 2+i = assist i.
	ProbeWith Ref
}

// Join is the n-ary multi-way/star join operator (paper Section 4.2), and
// with no assists the plain 2-way join. The two main inputs must be
// indexed on the join key; they are joined with the synchronous index scan,
// matching content nodes produce the cross product of their tuples, and
// each assisting index then filters/extends the combinations. The output
// is built with grouping/aggregation as a side effect when Out.Fold is set
// (the join-group of the paper's plans).
type Join struct {
	Left, Right Operator
	Assists     []Assist
	// Residual, if non-nil, filters combinations right after the main
	// match, before any assist probes.
	Residual func(ctx []uint64) bool
	Out      OutputSpec
}

// Label implements Operator.
func (j *Join) Label() string {
	return fmt.Sprintf("⋈%d→%s", 2+len(j.Assists), j.Out.Name)
}

// Children implements Operator.
func (j *Join) Children() []Operator {
	ops := []Operator{j.Left, j.Right}
	for _, a := range j.Assists {
		ops = append(ops, a.Input)
	}
	return ops
}

// pipe builds the join's probe pipeline (assist stages only — the mains
// are fed by the synchronous scan); the caller attaches the sink.
func (j *Join) pipe(ec *ExecContext, inputs []*IndexedTable) (*pipeline, error) {
	layout := newCtxLayout(inputs...)
	p := newPipeline(ec, layout)
	for i, a := range j.Assists {
		off, err := layout.resolve(a.ProbeWith)
		if err != nil {
			return nil, fmt.Errorf("core: %s assist %d: %w", j.Label(), i, err)
		}
		p.addProbe(2+i, off)
	}
	return p, nil
}

// scan returns the morsel scan body: the synchronous index scan over the
// two main inputs, cross-producting matching content nodes.
func (j *Join) scan(inputs []*IndexedTable) scanFn {
	left, right := inputs[0], inputs[1]
	return func(p *pipeline, lo, hi uint64, whole bool) {
		lComp, rComp := left.Key.Composer(), right.Key.Composer()
		ctx := make([]uint64, p.layout.width)
		feedPair := func(ctx []uint64) {
			if j.Residual == nil || j.Residual(ctx) {
				p.feedStage(0, ctx)
			}
		}
		visit := func(k uint64, lv, rv *duplist.List) bool {
			if p.aborted() {
				return false // query cancelled; the partial output is discarded
			}
			p.layout.fillKey(ctx, 0, k, lComp)
			p.layout.fillKey(ctx, 1, k, rComp)
			// Cross product of the matching content nodes, nested-loop style.
			if len(left.Cols) == 0 {
				for n := 0; n < lv.Len(); n++ {
					crossRight(p.layout, ctx, right, rv, feedPair)
				}
				return true
			}
			lv.Scan(func(lrow []uint64) bool {
				p.layout.fillRow(ctx, 0, lrow)
				crossRight(p.layout, ctx, right, rv, feedPair)
				return true
			})
			return true
		}
		if whole {
			SyncScan(left.Idx, right.Idx, visit)
		} else {
			syncScanKeyRange(left.Idx, right.Idx, lo, hi, visit)
		}
	}
}

// bounds returns the synchronous scan's morsel interval.
func (j *Join) bounds(inputs []*IndexedTable) boundsFn {
	left, right := inputs[0], inputs[1]
	return func() (uint64, uint64, bool) { return syncScanBounds(left.Idx, right.Idx) }
}

func (j *Join) run(ec *ExecContext, inputs []*IndexedTable) (*IndexedTable, error) {
	newPart := func(spec *OutputSpec, rec *arena.Recycler) (*pipeline, *IndexedTable, error) {
		p, err := j.pipe(ec, inputs)
		if err != nil {
			return nil, nil, err
		}
		p.rec = rec
		out, err := p.setSink(spec)
		if err != nil {
			return nil, nil, err
		}
		return p, out, nil
	}
	return runMorsels(ec, &j.Out, j.bounds(inputs), newPart, j.scan(inputs))
}

func crossRight(layout ctxLayout, ctx []uint64, right *IndexedTable, rv *duplist.List, feed func([]uint64)) {
	if len(right.Cols) == 0 {
		for n := 0; n < rv.Len(); n++ {
			feed(ctx)
		}
		return
	}
	rv.Scan(func(rrow []uint64) bool {
		layout.fillRow(ctx, 1, rrow)
		feed(ctx)
		return true
	})
}

// SelectJoin is the composed heterogeneous operator (paper Section 4.3): a
// selection whose qualifying tuples are not materialized into an
// intermediate index but directly probed into the successive join. The
// synchronous index scan is not applicable — the selection input is sorted
// on the selection predicate, not the join key — but the prefix trees' high
// point-read performance (batched through the selectionbuffer) makes the
// composition profitable whenever the selection alone would materialize a
// large intermediate result.
type SelectJoin struct {
	// SelInput is the selection's input (input ordinal 0).
	SelInput Operator
	// Pred and Residual are the selection predicate on SelInput's key
	// and payloads.
	Pred     KeyPred
	Residual func(ctx []uint64) bool
	// Main is the join's other main input (ordinal 1), probed on
	// ProbeMainWith (an attribute of input 0).
	Main          Operator
	ProbeMainWith Ref
	// MainResidual, if non-nil, filters combinations right after the
	// main probe — i.e. as soon as Main's attributes are available but
	// before any assisting index is touched.
	MainResidual func(ctx []uint64) bool
	// Assists are additional star-join inputs (ordinals 2+i).
	Assists []Assist
	Out     OutputSpec
}

// Label implements Operator.
func (sj *SelectJoin) Label() string {
	return fmt.Sprintf("σ⋈%d→%s", 2+len(sj.Assists), sj.Out.Name)
}

// Children implements Operator.
func (sj *SelectJoin) Children() []Operator {
	ops := []Operator{sj.SelInput, sj.Main}
	for _, a := range sj.Assists {
		ops = append(ops, a.Input)
	}
	return ops
}

// inputKeyRange implements inputRanger for the selection input; the main
// and assisting indexes are probed on arbitrary keys and need full pins.
func (sj *SelectJoin) inputKeyRange(i int) (uint64, uint64, bool) {
	if i != 0 {
		return 0, 0, false
	}
	return predEnvelope(sj.Pred)
}

// pipe builds the select-join's probe pipeline: the main probe at stage
// 0, assists after, with the selection residual at the pipeline entry and
// the main residual between the main probe and the first assist.
func (sj *SelectJoin) pipe(ec *ExecContext, inputs []*IndexedTable) (*pipeline, error) {
	layout := newCtxLayout(inputs...)
	p := newPipeline(ec, layout)
	mainOff, err := layout.resolve(sj.ProbeMainWith)
	if err != nil {
		return nil, fmt.Errorf("core: %s main probe: %w", sj.Label(), err)
	}
	p.addProbe(1, mainOff)
	for i, a := range sj.Assists {
		off, err := layout.resolve(a.ProbeWith)
		if err != nil {
			return nil, fmt.Errorf("core: %s assist %d: %w", sj.Label(), i, err)
		}
		p.addProbe(2+i, off)
	}
	p.residual = sj.Residual
	p.setFilter(1, sj.MainResidual)
	return p, nil
}

// scan returns the morsel scan body over the selection input.
func (sj *SelectJoin) scan(inputs []*IndexedTable) scanFn {
	sel := inputs[0]
	return func(p *pipeline, lo, hi uint64, whole bool) {
		pred := sj.Pred
		if !whole {
			pred = intersectPred(pred, lo, hi)
		}
		feedScan(p, sel, pred)
	}
}

// bounds returns the selection scan's morsel interval. See
// Selection.bounds: the predicate envelope stands in for the data bounds
// so a partially thawed selection input is never asked for Min/Max.
func (sj *SelectJoin) bounds(inputs []*IndexedTable) boundsFn {
	sel := inputs[0]
	return func() (uint64, uint64, bool) {
		if lo, hi, ok := predEnvelope(sj.Pred); ok {
			return lo, hi, true
		}
		return idxBounds(sel.Idx)
	}
}

func (sj *SelectJoin) run(ec *ExecContext, inputs []*IndexedTable) (*IndexedTable, error) {
	newPart := func(spec *OutputSpec, rec *arena.Recycler) (*pipeline, *IndexedTable, error) {
		p, err := sj.pipe(ec, inputs)
		if err != nil {
			return nil, nil, err
		}
		p.rec = rec
		out, err := p.setSink(spec)
		if err != nil {
			return nil, nil, err
		}
		return p, out, nil
	}
	return runMorsels(ec, &sj.Out, sj.bounds(inputs), newPart, sj.scan(inputs))
}

// Intersect is the set intersection operator used when conjunctive
// predicates are decomposed into separate selections over record-identifier
// indexes (paper Section 4.1). Both inputs must be indexed on the same key
// (typically the rid); matching keys emit the cross product of their rows,
// exactly like a 2-way join — which is what the intersect physically is.
type Intersect struct {
	A, B Operator
	Out  OutputSpec
}

// Label implements Operator.
func (op *Intersect) Label() string { return "∩→" + op.Out.Name }

// Children implements Operator.
func (op *Intersect) Children() []Operator { return []Operator{op.A, op.B} }

// asJoin returns the 2-way join the intersect physically is; the fused
// execution path reuses the join's pipe and scan through it.
func (op *Intersect) asJoin() *Join { return &Join{Out: op.Out} }

func (op *Intersect) run(ec *ExecContext, inputs []*IndexedTable) (*IndexedTable, error) {
	return op.asJoin().run(ec, inputs)
}

// UnionDistinct is the distinct-union set operator (paper Section 4.1).
// Both inputs must share the key spec and payload layout; each key of
// either input appears exactly once in the output, keeping the first row
// encountered (rows under one key are duplicates by construction when the
// inputs are rid-keyed selection results).
type UnionDistinct struct {
	A, B Operator
	Out  OutputSpec
}

// Label implements Operator.
func (op *UnionDistinct) Label() string { return "∪→" + op.Out.Name }

// Children implements Operator.
func (op *UnionDistinct) Children() []Operator { return []Operator{op.A, op.B} }

func (op *UnionDistinct) run(ec *ExecContext, inputs []*IndexedTable) (*IndexedTable, error) {
	a, b := inputs[0], inputs[1]
	if len(a.Cols) != len(b.Cols) {
		return nil, fmt.Errorf("core: union inputs have different payload widths")
	}
	spec := op.Out
	if spec.Fold != nil {
		return nil, fmt.Errorf("core: union output cannot fold")
	}
	spec.Fold = func(dst, src []uint64) {} // distinct: keep the first row per key
	layout := newCtxLayout(a)
	p := newPipeline(ec, layout)
	out, err := p.setSink(&spec)
	if err != nil {
		return nil, err
	}
	for _, in := range []*IndexedTable{a, b} {
		l := newCtxLayout(in)
		comp := in.Key.Composer()
		ctx := make([]uint64, l.width)
		in.Idx.Iterate(func(k uint64, vals *duplist.List) bool {
			if p.aborted() {
				return false // query cancelled; the partial output is discarded
			}
			l.fillKey(ctx, 0, k, comp)
			if len(in.Cols) == 0 {
				p.snk.feed(ctx, p.bufSize)
				return true
			}
			vals.Scan(func(row []uint64) bool {
				l.fillRow(ctx, 0, row)
				p.snk.feed(ctx, p.bufSize)
				return true
			})
			return true
		})
	}
	if err := ec.err(); err != nil {
		return nil, err
	}
	p.finish()
	ec.noteSink(p)
	return out, nil
}

func mustResolve(l ctxLayout, r Ref) int {
	off, err := l.resolve(r)
	if err != nil {
		panic(err)
	}
	return off
}

// CtxOffsets resolves attribute references against the context layout an
// operator with the given inputs will use; plan builders use it to compile
// Residual filters and Computed expressions. The inputs must be the
// operator's input tables in ordinal order.
func CtxOffsets(inputs []*IndexedTable, refs ...Ref) []int {
	l := newCtxLayout(inputs...)
	offs := make([]int, len(refs))
	for i, r := range refs {
		offs[i] = mustResolve(l, r)
	}
	return offs
}
