package core

import (
	"sort"

	"qppt/internal/duplist"
)

// A shardedIndex presents several disjoint-key-range sub-indexes as one
// Index. It is the output shape of the parallel partition-wise merge
// (paper Section 7): because a key's position in a prefix tree is
// deterministic, disjoint output key ranges never touch the same subtree,
// so each shard can be built by a different pool worker with no
// synchronization at all — the shards *are* the disjoint subtrees, just
// materialized as separate trees.
//
// Shards are ordered by key range and together cover the full key space
// (the first shard's range is extended down to 0 and the last one's up to
// the key-width maximum), so every Index operation routes totally:
// point operations dispatch to the owning shard, ordered scans visit the
// shards in range order, which preserves the ascending key order the rest
// of the engine relies on.
type shardedIndex struct {
	shards []Index
	los    []uint64 // inclusive lower bound per shard
	his    []uint64 // inclusive upper bound per shard
	bits   uint
}

// newShardedIndex wraps pre-built shards. bounds must be sorted, disjoint
// and contiguous; shards[i] must only contain keys in [los[i], his[i]].
func newShardedIndex(shards []Index, los, his []uint64, bits uint) *shardedIndex {
	return &shardedIndex{shards: shards, los: los, his: his, bits: bits}
}

// shard returns the ordinal of the shard owning key. A key above the last
// shard's bound clamps to the last shard: its range is documented as
// extended up to the key-space maximum, and probe keys can exceed even
// that (e.g. a probe attribute wider than the index key), which must read
// as a miss in the last shard — not an out-of-range panic.
func (s *shardedIndex) shard(key uint64) int {
	if i := sort.Search(len(s.his), func(i int) bool { return key <= s.his[i] }); i < len(s.his) {
		return i
	}
	return len(s.his) - 1
}

func (s *shardedIndex) Insert(key uint64, row []uint64) {
	s.shards[s.shard(key)].Insert(key, row)
}

func (s *shardedIndex) InsertBatch(keys []uint64, rows [][]uint64) {
	for i, k := range keys {
		if rows == nil {
			s.shards[s.shard(k)].Insert(k, nil)
		} else {
			s.shards[s.shard(k)].Insert(k, rows[i])
		}
	}
}

func (s *shardedIndex) Lookup(key uint64) *duplist.List {
	return s.shards[s.shard(key)].Lookup(key)
}

// LookupBatch groups the probe keys by shard so the per-shard batches keep
// the level-synchronized lookup kernels effective.
func (s *shardedIndex) LookupBatch(keys []uint64, visit func(i int, vals *duplist.List)) {
	if len(keys) == 0 {
		return
	}
	subKeys := make([][]uint64, len(s.shards))
	subPos := make([][]int, len(s.shards))
	for i, k := range keys {
		si := s.shard(k)
		subKeys[si] = append(subKeys[si], k)
		subPos[si] = append(subPos[si], i)
	}
	for si, sk := range subKeys {
		if len(sk) == 0 {
			continue
		}
		pos := subPos[si]
		s.shards[si].LookupBatch(sk, func(j int, vals *duplist.List) {
			visit(pos[j], vals)
		})
	}
}

func (s *shardedIndex) Iterate(visit func(key uint64, vals *duplist.List) bool) bool {
	for _, sh := range s.shards {
		if !sh.Iterate(visit) {
			return false
		}
	}
	return true
}

func (s *shardedIndex) Range(lo, hi uint64, visit func(key uint64, vals *duplist.List) bool) bool {
	if lo > hi {
		return true
	}
	for i, sh := range s.shards {
		if s.los[i] > hi || s.his[i] < lo {
			continue
		}
		if !sh.Range(max(lo, s.los[i]), min(hi, s.his[i]), visit) {
			return false
		}
	}
	return true
}

func (s *shardedIndex) Keys() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Keys()
	}
	return n
}

func (s *shardedIndex) Rows() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Rows()
	}
	return n
}

func (s *shardedIndex) PayloadWidth() int { return s.shards[0].PayloadWidth() }
func (s *shardedIndex) KeyBits() uint     { return s.bits }

func (s *shardedIndex) Bytes() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Bytes()
	}
	return n
}

func (s *shardedIndex) Min() (uint64, bool) {
	for _, sh := range s.shards {
		if k, ok := sh.Min(); ok {
			return k, true
		}
	}
	return 0, false
}

func (s *shardedIndex) Max() (uint64, bool) {
	for i := len(s.shards) - 1; i >= 0; i-- {
		if k, ok := s.shards[i].Max(); ok {
			return k, true
		}
	}
	return 0, false
}
