package core

import (
	"context"
	"fmt"
	"slices"
	"time"

	"qppt/internal/arena"
	"qppt/internal/duplist"
	"qppt/internal/kernel"
	"qppt/internal/key"
)

// The combination-context pipeline is the shared execution kernel of all
// composed operators (paper Section 4). A *combination* is one candidate
// output tuple: the values of the current main-index match plus the payload
// rows of every assisting index probed so far. Combinations flow through a
// sequence of probe stages (one per assisting index) into the sink, which
// materializes the output key and payload row and inserts them into the
// output index.
//
// Every stage buffers combinations and works on batches: probe stages issue
// batched index lookups through the joinbuffer/selectionbuffer, and the
// sink issues batched index inserts (paper Sections 2.3 and 4.2). Buffer
// size 1 degenerates to scalar tuple-at-a-time processing, which is exactly
// the knob the paper's demonstrator exposes.

// ctxLayout assigns each operator input a segment of the flat combination
// context: first the input's key fields, then its payload columns.
type ctxLayout struct {
	inputs []*IndexedTable
	starts []int // segment start per input
	width  int
}

func newCtxLayout(inputs ...*IndexedTable) ctxLayout {
	l := ctxLayout{inputs: inputs, starts: make([]int, len(inputs))}
	for i, in := range inputs {
		l.starts[i] = l.width
		l.width += len(in.Key.Attrs) + len(in.Cols)
	}
	return l
}

// keyOff returns the ctx offset of field f of input i's key.
func (l ctxLayout) keyOff(i, f int) int { return l.starts[i] + f }

// colOff returns the ctx offset of payload column c of input i.
func (l ctxLayout) colOff(i, c int) int { return l.starts[i] + len(l.inputs[i].Key.Attrs) + c }

// resolve compiles an attribute reference to a ctx offset.
func (l ctxLayout) resolve(r Ref) (int, error) {
	if r.Input < 0 || r.Input >= len(l.inputs) {
		return 0, fmt.Errorf("core: ref input %d out of range", r.Input)
	}
	in := l.inputs[r.Input]
	if f := in.Key.Field(r.Attr); f >= 0 {
		return l.keyOff(r.Input, f), nil
	}
	if c := in.Col(r.Attr); c >= 0 {
		return l.colOff(r.Input, c), nil
	}
	return 0, fmt.Errorf("core: attribute %q not available from input %d (%s)", r.Attr, r.Input, in.Name)
}

// fillKey writes the (possibly composed) key of input i into its ctx key
// slots.
func (l ctxLayout) fillKey(ctx []uint64, i int, k uint64, comp *key.Composer) {
	n := len(l.inputs[i].Key.Attrs)
	switch n {
	case 0:
	case 1:
		ctx[l.starts[i]] = k
	default:
		for f := 0; f < n; f++ {
			ctx[l.starts[i]+f] = comp.Field(k, f)
		}
	}
}

// fillRow writes a payload row of input i into its ctx slots.
func (l ctxLayout) fillRow(ctx []uint64, i int, row []uint64) {
	copy(ctx[l.starts[i]+len(l.inputs[i].Key.Attrs):], row)
}

// A probeStage joins one assisting index into the combination (paper
// Section 4.2): the probe key is read from the context, looked up in the
// assisting index (batched through the joinbuffer), and each returned row
// extends the combination; a miss removes the combination.
type probeStage struct {
	table    *IndexedTable
	input    int // this stage's input ordinal in the layout
	probeOff int // ctx offset holding the probe key
	comp     *key.Composer

	// joinbuffer
	ctxs  [][]uint64
	keys  []uint64
	arena []uint64
}

// A sink materializes combinations into the output index: it assembles the
// output key (composed if multi-attribute) and payload row, then issues
// batched inserts. With forward set (a fused edge) the index is skipped
// entirely: each assembled (key, row) pair streams straight into the
// consumer operator's pipeline instead.
type sink struct {
	out      Index
	keyOffs  []int
	comp     *key.Composer
	exprs    []compiledExpr
	rowWidth int

	// forward, when non-nil, receives every assembled combination in
	// place of an index insert; row is only valid for the duration of the
	// call. out is nil in this mode and flush is a no-op.
	forward func(k uint64, row []uint64)
	rowBuf  []uint64

	// forwardBatch, when non-nil, replaces forward with batched delivery:
	// assembled combinations accumulate in the recycler-backed probe
	// buffer (fwKeys, plus fwRows at a flat rowWidth stride) and are
	// handed over fwBatch at a time together with a key-sorted permutation
	// — perm[j] indexes the j-th combination in key order, or perm is nil
	// when arrival order already is key order — so the consumer's batched
	// index probes walk shared tree descents once. batches counts the
	// handoffs (OperatorStats.ProbeBatches).
	forwardBatch   func(keys, rows []uint64, perm []uint32)
	fwBatch        int
	fwArrival      bool // deliver batches in arrival order, never sort
	fwKeys         []uint64
	fwRows         []uint64
	fwPerm         []uint32
	fwSort         []uint64 // key<<32|index packing scratch for 32-bit keys
	batches        int
	sortedFlushes  int // batches delivered (or verified) in key order
	arrivalFlushes int // batches delivered in arrival order

	// fwFiltered, when set, makes flushForward evaluate the consumer's
	// key ranges (fwPredLo/fwPredHi, parallel arrays) over the whole
	// buffered batch into the fwMask bitmask and compact the survivors by
	// the fwSel selection vector before delivery — range-stream fusion's
	// per-row predicate callback turned into two word-parallel passes.
	// A filter with zero ranges drops everything (an empty KeyPred
	// matches nothing), hence the flag rather than len()>0.
	fwFiltered bool
	fwPredLo   []uint64
	fwPredHi   []uint64
	fwMask     []uint64
	fwSel      []uint32

	keys      []uint64
	rows      [][]uint64
	arena     []uint64
	fieldsBuf []uint64

	insertTime time.Duration
	inserted   int
}

type compiledExpr struct {
	off int
	fn  func(ctx []uint64) uint64
}

// A pipeline ties the stages together for one operator execution. Under
// morsel-driven parallelism each pool worker owns one pipeline (its
// private partial output), scans all the morsels it claims through it,
// and the sink accounting — insert time, tuples indexed, probe lookups,
// morsels processed — is folded into the operator statistics per worker
// by ExecContext.noteSink.
type pipeline struct {
	layout   ctxLayout
	qctx     context.Context // query context; scans poll it for cancellation
	ticks    int             // feed counter driving the periodic ctx poll
	stopped  bool            // latched once qctx is cancelled
	rec      *arena.Recycler // plan chunk pool for the output index
	residual func(ctx []uint64) bool
	// filters[i], if set, drops combinations entering stage i
	// (i == len(stages) filters combinations entering the sink). This is
	// how composed operators place residual predicates after the probe
	// that makes their attributes available.
	filters []func(ctx []uint64) bool
	stages  []*probeStage
	snk     *sink
	bufSize int
	lookups int // probe-stage lookups issued (stats)
	morsels int // key-range morsels scanned through this pipeline (stats)

	kernelDescents int // probe-stage flushes taking the SWAR kernel descent
	scalarDescents int // probe-stage flushes taking the scalar job loop

	// fedBatches/fedRows count the probe batches this pipeline *received*
	// over its fused input edge and the combinations surviving the batch
	// filter — attributed by the forwarding closure when this pipeline is
	// a non-probing chain top (range-stream / select-probe), whose sink
	// otherwise reports no batch traffic at all.
	fedBatches int
	fedRows    int
}

// setFilter installs a combination filter at the entry of stage i.
func (p *pipeline) setFilter(i int, f func(ctx []uint64) bool) {
	if f == nil {
		return
	}
	for len(p.filters) <= i {
		p.filters = append(p.filters, nil)
	}
	p.filters[i] = f
}

func newPipeline(ec *ExecContext, layout ctxLayout) *pipeline {
	bufSize := ec.bufferSize()
	if bufSize < 1 {
		bufSize = 1
	}
	return &pipeline{layout: layout, qctx: ec.ctx, bufSize: bufSize, rec: ec.rec}
}

// abortTickMask throttles the cancellation poll to one ctx.Err() call per
// 1024 fed combinations — cheap against the index work per combination,
// frequent enough that even a serial whole-input scan unwinds within a
// fraction of a millisecond of cancellation.
const abortTickMask = 1<<10 - 1

// aborted polls the query context (throttled) and latches its
// cancellation; scan loops call it per visited key or fed combination and
// stop early once it reports true. The produced partial output is
// discarded by the caller — runMorsels re-checks the context after every
// morsel and surfaces ctx.Err().
func (p *pipeline) aborted() bool {
	if p.stopped {
		return true
	}
	if p.qctx == nil {
		return false
	}
	p.ticks++
	if p.ticks&abortTickMask != 0 {
		return false
	}
	if p.qctx.Err() != nil {
		p.stopped = true
	}
	return p.stopped
}

// addProbe appends a probe stage for assisting input `input`, probing with
// the attribute at ctx offset probeOff.
func (p *pipeline) addProbe(input int, probeOff int) {
	p.stages = append(p.stages, &probeStage{
		table:    p.layout.inputs[input],
		input:    input,
		probeOff: probeOff,
		comp:     p.layout.inputs[input].Key.Composer(),
	})
}

// compileSink compiles the output spec's key refs and column expressions
// against the layout, without deciding where the assembled combinations
// go (setSink materializes them; setForward streams them).
func (p *pipeline) compileSink(spec *OutputSpec) (*sink, error) {
	if len(spec.KeyRefs) != len(spec.Key.Attrs) {
		return nil, fmt.Errorf("core: output %q: %d key refs for %d key attrs", spec.Name, len(spec.KeyRefs), len(spec.Key.Attrs))
	}
	if len(spec.ColExprs) != len(spec.Cols) {
		return nil, fmt.Errorf("core: output %q: %d col exprs for %d cols", spec.Name, len(spec.ColExprs), len(spec.Cols))
	}
	s := &sink{rowWidth: len(spec.Cols), comp: spec.Key.Composer()}
	for _, r := range spec.KeyRefs {
		off, err := p.layout.resolve(r)
		if err != nil {
			return nil, err
		}
		s.keyOffs = append(s.keyOffs, off)
	}
	for i, e := range spec.ColExprs {
		if e.Fn != nil {
			s.exprs = append(s.exprs, compiledExpr{fn: e.Fn})
			continue
		}
		off, err := p.layout.resolve(e.Ref)
		if err != nil {
			return nil, fmt.Errorf("core: output %q col %d: %w", spec.Name, i, err)
		}
		s.exprs = append(s.exprs, compiledExpr{off: off})
	}
	return s, nil
}

// setSink compiles the output spec against the layout and creates the
// output index.
func (p *pipeline) setSink(spec *OutputSpec) (*IndexedTable, error) {
	s, err := p.compileSink(spec)
	if err != nil {
		return nil, err
	}
	s.out = newOutputIndex(spec, p.rec)
	p.snk = s
	return NewIndexedTable(spec.Name, spec.Key, spec.Cols, s.out), nil
}

// setForward compiles the output spec like setSink but skips the output
// index: every combination the sink would have inserted is assembled
// (key composed, payload row evaluated) and handed to fw — the fused
// consumer's accept hook — instead. No arena chunks are allocated and
// nothing is registered with the spill manager for this edge.
func (p *pipeline) setForward(spec *OutputSpec, fw func(k uint64, row []uint64)) error {
	s, err := p.compileSink(spec)
	if err != nil {
		return err
	}
	s.forward = fw
	s.rowBuf = make([]uint64, 0, s.rowWidth)
	p.snk = s
	return nil
}

// setForwardBatch compiles the output spec like setForward but delivers
// the assembled combinations in batches of (at most) batch combinations:
// the fused producer's probe buffer. With sorted set, each batch is
// key-sorted before delivery (unless it already arrives in key order);
// otherwise batches go out in arrival order — the caller decides whether
// the consumer can amortize sorted probes. The buffers come from the
// pipeline's chunk recycler when one is active — per-worker probe
// buffers then cycle through the pool instead of the heap — and go back
// to it through release.
func (p *pipeline) setForwardBatch(spec *OutputSpec, batch int, sorted bool, fw func(keys, rows []uint64, perm []uint32)) error {
	s, err := p.compileSink(spec)
	if err != nil {
		return err
	}
	if batch < 1 {
		batch = 1
	}
	s.forwardBatch = fw
	s.fwBatch = batch
	s.fwArrival = !sorted
	s.fwKeys = arena.NewChunk[uint64](p.rec, batch)
	if sorted {
		s.fwPerm = arena.NewChunk[uint32](p.rec, batch)
		s.fwSort = arena.NewChunk[uint64](p.rec, batch)
	}
	if s.rowWidth > 0 {
		s.fwRows = arena.NewChunk[uint64](p.rec, batch*s.rowWidth)
	}
	p.snk = s
	return nil
}

// setForwardFilter installs the consumer's key ranges on a batched
// forwarding sink. flushForward then evaluates the predicate over each
// buffered batch into a bitmask and compacts survivors by selection
// vector, so the consumer's accept hook never sees a filtered-out
// combination — this replaces range-stream fusion's per-row predMatch
// callback. Must follow setForwardBatch on the same pipeline.
func (p *pipeline) setForwardFilter(pred KeyPred) {
	s := p.snk
	if s == nil || s.forwardBatch == nil {
		return
	}
	s.fwFiltered = true
	for _, r := range pred {
		if r.Hi < r.Lo {
			continue // inverted range matches nothing
		}
		s.fwPredLo = append(s.fwPredLo, r.Lo)
		s.fwPredHi = append(s.fwPredHi, r.Hi)
	}
	s.fwMask = arena.NewChunk[uint64](p.rec, kernel.MaskWords(s.fwBatch))
	s.fwSel = arena.NewChunk[uint32](p.rec, s.fwBatch)
}

// release parks the sink's recycler-backed probe buffers back in the
// pipeline's chunk pool. Call after finish; a non-batching pipeline (or
// one without a recycler) is a no-op.
func (p *pipeline) release() {
	s := p.snk
	if s == nil || s.forwardBatch == nil {
		return
	}
	arena.PutChunk(p.rec, s.fwKeys)
	arena.PutChunk(p.rec, s.fwPerm)
	arena.PutChunk(p.rec, s.fwSort)
	arena.PutChunk(p.rec, s.fwRows)
	arena.PutChunk(p.rec, s.fwMask)
	arena.PutChunk(p.rec, s.fwSel)
	s.fwKeys, s.fwPerm, s.fwSort, s.fwRows = nil, nil, nil, nil
	s.fwMask, s.fwSel = nil, nil
}

// feed pushes a completed base combination into the pipeline. The ctx slice
// is copied; callers may reuse it.
func (p *pipeline) feed(ctx []uint64) {
	if p.residual != nil && !p.residual(ctx) {
		return
	}
	p.feedStage(0, ctx)
}

func (p *pipeline) feedStage(i int, ctx []uint64) {
	if i < len(p.filters) && p.filters[i] != nil && !p.filters[i](ctx) {
		return
	}
	if i == len(p.stages) {
		p.snk.feed(ctx, p.bufSize)
		return
	}
	st := p.stages[i]
	// Copy ctx into the stage arena (joinbuffer).
	if cap(st.arena) == 0 {
		st.arena = make([]uint64, 0, p.bufSize*p.layout.width)
	}
	start := len(st.arena)
	st.arena = append(st.arena, ctx...)
	st.ctxs = append(st.ctxs, st.arena[start:len(st.arena):len(st.arena)])
	st.keys = append(st.keys, ctx[st.probeOff])
	if len(st.ctxs) >= p.bufSize {
		p.flushStage(i)
	}
}

// flushStage drains stage i's joinbuffer with one batched lookup, feeding
// surviving (extended) combinations onward. The buffers are reused after
// the flush: combinations only ever flow to later stages, so nothing can
// refill this stage while it drains.
func (p *pipeline) flushStage(i int) {
	st := p.stages[i]
	if len(st.ctxs) == 0 {
		return
	}
	ctxs, keys := st.ctxs, st.keys
	p.lookups += len(keys)
	// Mirror the trees' dispatch decision so the stats split (kernel vs
	// scalar descents) reflects which inner loop actually ran.
	if kernel.Batched(len(keys)) {
		p.kernelDescents++
	} else {
		p.scalarDescents++
	}
	st.table.Idx.LookupBatch(keys, func(j int, vals *duplist.List) {
		if vals == nil {
			return // key absent: combination removed from the cross product
		}
		ctx := ctxs[j]
		p.layout.fillKey(ctx, st.input, keys[j], st.comp)
		if len(st.table.Cols) == 0 {
			// Existence-only assist (e.g. a unique key with no payload):
			// the row multiplicity still applies.
			for n := 0; n < vals.Len(); n++ {
				p.feedStage(i+1, ctx)
			}
			return
		}
		vals.Scan(func(row []uint64) bool {
			p.layout.fillRow(ctx, st.input, row)
			p.feedStage(i+1, ctx)
			return true
		})
	})
	st.ctxs, st.keys, st.arena = st.ctxs[:0], st.keys[:0], st.arena[:0]
}

// feed buffers one combination in the sink; flush materializes and inserts.
// On a fused edge (forward set) the combination streams straight to the
// consumer instead.
func (s *sink) feed(ctx []uint64, bufSize int) {
	var k uint64
	switch len(s.keyOffs) {
	case 0:
		k = 0
	case 1:
		k = ctx[s.keyOffs[0]]
	default:
		if s.fieldsBuf == nil {
			s.fieldsBuf = make([]uint64, len(s.keyOffs))
		}
		for i, off := range s.keyOffs {
			s.fieldsBuf[i] = ctx[off]
		}
		k = s.comp.Compose(s.fieldsBuf...)
	}
	if s.forwardBatch != nil {
		s.fwKeys = append(s.fwKeys, k)
		for _, e := range s.exprs {
			if e.fn != nil {
				s.fwRows = append(s.fwRows, e.fn(ctx))
			} else {
				s.fwRows = append(s.fwRows, ctx[e.off])
			}
		}
		s.inserted++
		if len(s.fwKeys) >= s.fwBatch {
			s.flushForward()
		}
		return
	}
	if s.forward != nil {
		s.rowBuf = s.rowBuf[:0]
		for _, e := range s.exprs {
			if e.fn != nil {
				s.rowBuf = append(s.rowBuf, e.fn(ctx))
			} else {
				s.rowBuf = append(s.rowBuf, ctx[e.off])
			}
		}
		s.inserted++
		s.forward(k, s.rowBuf)
		return
	}
	if cap(s.arena) == 0 {
		s.arena = make([]uint64, 0, bufSize*s.rowWidth)
	}
	start := len(s.arena)
	for _, e := range s.exprs {
		if e.fn != nil {
			s.arena = append(s.arena, e.fn(ctx))
		} else {
			s.arena = append(s.arena, ctx[e.off])
		}
	}
	s.keys = append(s.keys, k)
	s.rows = append(s.rows, s.arena[start:len(s.arena):len(s.arena)])
	if len(s.keys) >= bufSize {
		s.flush()
	}
}

// flushForward hands the buffered probe batch to the consumer. A sorting
// sink delivers in key order — equal keys keep their arrival order, so
// the order is deterministic — which is what lets the consumer's
// LookupBatch/InsertBatch amortize shared tree descents; an arrival-order
// sink (fwArrival: the consumer cannot amortize sorted probes) skips all
// of that. Either way a nil permutation tells the consumer to decode in
// arrival order. Most sorting streams already arrive key-ordered (the
// bottom scan is ordered and many links preserve its key), so the common
// case pays one linear scan; unsorted batches of 32-bit keys sort packed
// key<<32|index values, and only wider keys fall back to a comparator
// sort through the permutation.
func (s *sink) flushForward() {
	n := len(s.fwKeys)
	if n == 0 {
		return
	}
	// Batch accounting happens before the filter: AvgBatchFill keeps
	// meaning "combinations assembled per handoff", whether or not the
	// consumer's predicate then thins the batch.
	s.batches++
	if s.fwArrival {
		s.arrivalFlushes++
	} else {
		s.sortedFlushes++
	}
	if s.fwFiltered {
		n = s.filterForward(n)
		if n == 0 {
			s.fwKeys, s.fwRows = s.fwKeys[:0], s.fwRows[:0]
			return
		}
	}
	keys := s.fwKeys[:n]
	rows := s.fwRows
	if s.rowWidth > 0 {
		rows = s.fwRows[:n*s.rowWidth]
	}
	if s.fwArrival {
		s.forwardBatch(keys, rows, nil)
		s.fwKeys, s.fwRows = s.fwKeys[:0], s.fwRows[:0]
		return
	}
	sorted, orKeys := kernel.SortedOr(keys)
	switch {
	case sorted:
		s.forwardBatch(keys, rows, nil)
	case orKeys < 1<<32:
		// 32-bit keys (dimension and composed keys in practice): pack
		// key<<32|index and value-sort — far cheaper than a comparator
		// sort chasing the key array through the permutation. The index in
		// the low bits makes the order stable by construction.
		s.fwSort = kernel.PackKeyIdx(s.fwSort, keys)
		slices.Sort(s.fwSort)
		for _, v := range s.fwSort {
			s.fwPerm = append(s.fwPerm, uint32(v))
		}
		s.forwardBatch(keys, rows, s.fwPerm)
		s.fwSort, s.fwPerm = s.fwSort[:0], s.fwPerm[:0]
	default:
		for i := 0; i < n; i++ {
			s.fwPerm = append(s.fwPerm, uint32(i))
		}
		slices.SortFunc(s.fwPerm, func(a, b uint32) int {
			if keys[a] != keys[b] {
				if keys[a] < keys[b] {
					return -1
				}
				return 1
			}
			return int(a) - int(b)
		})
		s.forwardBatch(keys, rows, s.fwPerm)
		s.fwPerm = s.fwPerm[:0]
	}
	s.fwKeys, s.fwRows = s.fwKeys[:0], s.fwRows[:0]
}

// filterForward evaluates the installed key ranges over the buffered
// batch and compacts the survivors in place; it returns the survivor
// count. The batch envelope (one MinMax scan) short-circuits the two
// common extremes — a batch entirely inside one range skips the mask
// pass, a batch disjoint from every range drops without one. Otherwise
// one branch-free RangeMask pass per range builds the survivor bitmask
// and MaskSel turns it into an ascending selection vector, so the
// in-place compaction (j <= sel[j] always) never overwrites unread rows.
func (s *sink) filterForward(n int) int {
	if len(s.fwPredLo) == 0 {
		return 0 // empty predicate matches nothing
	}
	keys := s.fwKeys[:n]
	blo, bhi := kernel.MinMax(keys)
	overlap := false
	for r := range s.fwPredLo {
		lo, hi := s.fwPredLo[r], s.fwPredHi[r]
		if blo >= lo && bhi <= hi {
			return n // whole batch inside one range
		}
		if bhi >= lo && blo <= hi {
			overlap = true
		}
	}
	if !overlap {
		return 0 // batch disjoint from every range
	}
	mask := s.fwMask[:kernel.MaskWords(n)]
	clear(mask)
	for r := range s.fwPredLo {
		kernel.RangeMask(mask, keys, s.fwPredLo[r], s.fwPredHi[r])
	}
	s.fwSel = kernel.MaskSel(s.fwSel[:0], mask, n)
	w := s.rowWidth
	for j, idx := range s.fwSel {
		i := int(idx)
		s.fwKeys[j] = s.fwKeys[i]
		if w > 0 && j != i {
			copy(s.fwRows[j*w:(j+1)*w], s.fwRows[i*w:(i+1)*w])
		}
	}
	return len(s.fwSel)
}

// flush issues the batched insert (materialization + indexing); a batched
// forwarding sink drains its probe buffer instead, and a scalar
// forwarding sink never buffers, so flush is a no-op for it.
func (s *sink) flush() {
	if s.forwardBatch != nil {
		s.flushForward()
		return
	}
	if s.forward != nil || len(s.keys) == 0 {
		return
	}
	t0 := time.Now()
	if s.rowWidth == 0 {
		s.out.InsertBatch(s.keys, nil)
	} else {
		s.out.InsertBatch(s.keys, s.rows)
	}
	s.insertTime += time.Since(t0)
	s.inserted += len(s.keys)
	s.keys, s.rows, s.arena = s.keys[:0], s.rows[:0], s.arena[:0]
}

// finish drains every buffer in stage order.
func (p *pipeline) finish() {
	for i := range p.stages {
		p.flushStage(i)
	}
	p.snk.flush()
}
