package core

import (
	"context"
	"errors"
	"testing"
)

// TestMergeRangeIntoCancelled: a merge range must poll the query context
// on the abortTickMask cadence and stop folding rows once the query is
// cancelled (regression for the qpptvet ctxpoll finding on
// mergeRangeInto — merges used to run to completion into an output
// nobody would read).
func TestMergeRangeIntoCancelled(t *testing.T) {
	spec := &OutputSpec{Name: "m", Key: SimpleKey("k", 32), Cols: []string{"v"}}
	const rows = 50000
	in := newOutputIndex(spec, nil)
	for i := 0; i < rows; i++ {
		in.Insert(uint64(i), []uint64{1})
	}
	partials := []*IndexedTable{NewIndexedTable(spec.Name, spec.Key, spec.Cols, in)}
	span := keySpaceMax(spec.Key.TotalBits())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := &ExecContext{ctx: ctx}

	out := newOutputIndex(spec, nil)
	if err := mergeRangeInto(ec, out, spec, partials, 0, span); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled merge returned %v, want context.Canceled", err)
	}
	if got := out.Keys(); got >= rows {
		t.Fatalf("cancelled merge still folded all %d rows", got)
	}

	// The serial baseline propagates the same error.
	if _, err := mergePartials(ec, spec, partials, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mergePartials returned %v, want context.Canceled", err)
	}

	// A nil ExecContext stays non-cancellable and merges everything.
	out2 := newOutputIndex(spec, nil)
	if err := mergeRangeInto(nil, out2, spec, partials, 0, span); err != nil {
		t.Fatalf("nil-ec merge returned %v", err)
	}
	if got := out2.Keys(); got != rows {
		t.Fatalf("nil-ec merge folded %d rows, want %d", got, rows)
	}
}
