package core

import (
	"io"

	"qppt/internal/spill"
)

// Spill support for intermediate indexes (paper motivation: QPPT builds an
// index per operator, so total intermediate-index footprint — not the base
// tables — caps the runnable scale factor). The index adapters forward the
// trees' Freeze/Thaw chunk hooks, and the executor registers every
// non-base operator output with a plan-scoped spill.Manager when
// Options.MemBudget is set.

func (p ptIndex) WriteSnapshot(w io.Writer) error { return p.t.WriteSnapshot(w) }
func (p ptIndex) Release()                        { p.t.Release() }
func (p ptIndex) Thaw(r io.Reader) error          { return p.t.Thaw(r) }

func (k kissIndex) WriteSnapshot(w io.Writer) error { return k.t.WriteSnapshot(w) }
func (k kissIndex) Release()                        { k.t.Release() }
func (k kissIndex) Thaw(r io.Reader) error          { return k.t.Thaw(r) }

// WriteSnapshot writes every shard into one stream, in shard order; the
// merge bounds, key ranges and counters stay resident. Because no shard
// detaches until Release, an error midway through the stream leaves every
// shard intact. Thaw restores the shards in the same order.
func (s *shardedIndex) WriteSnapshot(w io.Writer) error {
	for _, sh := range s.shards {
		if err := sh.(spill.Freezer).WriteSnapshot(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *shardedIndex) Release() {
	for _, sh := range s.shards {
		sh.(spill.Freezer).Release()
	}
}

func (s *shardedIndex) Thaw(r io.Reader) error {
	for _, sh := range s.shards {
		if err := sh.(spill.Freezer).Thaw(r); err != nil {
			return err
		}
	}
	return nil
}

// freezerOf returns the index's spill hook, or nil when the index kind
// cannot detach its storage (the retained pointer-based baseline layout
// keeps per-node heap objects and is simply never evicted).
func freezerOf(idx Index) spill.Freezer {
	switch v := idx.(type) {
	case *shardedIndex:
		for _, sh := range v.shards {
			if freezerOf(sh) == nil {
				return nil
			}
		}
		return v
	case spill.Freezer:
		return v
	}
	return nil
}
