package core

import (
	"io"

	"qppt/internal/arena"
	"qppt/internal/spill"
)

// Spill support for intermediate indexes (paper motivation: QPPT builds an
// index per operator, so total intermediate-index footprint — not the base
// tables — caps the runnable scale factor). The index adapters forward the
// trees' freeze/thaw chunk hooks — including the zero-copy mmap thaw and
// the range-restricted partial thaw — and the executor registers every
// non-base operator output with a plan-scoped spill.Manager when
// Options.MemBudget is set.

func (p ptIndex) WriteSnapshot(w io.Writer) error { return p.t.WriteSnapshot(w) }
func (p ptIndex) Release()                        { p.t.Release() }
func (p ptIndex) Thaw(r io.Reader) error          { return p.t.Thaw(r) }
func (p ptIndex) ThawMapped(mr *arena.MapReader) error {
	return p.t.ThawMapped(mr)
}
func (p ptIndex) ThawRange(f io.ReadSeeker, lo, hi uint64) (int64, bool, error) {
	return p.t.ThawRange(f, lo, hi)
}
func (p ptIndex) Materialize() { p.t.Materialize() }
func (p ptIndex) Recycle()     { p.t.Recycle() }

func (k kissIndex) WriteSnapshot(w io.Writer) error { return k.t.WriteSnapshot(w) }
func (k kissIndex) Release()                        { k.t.Release() }
func (k kissIndex) Thaw(r io.Reader) error          { return k.t.Thaw(r) }
func (k kissIndex) ThawMapped(mr *arena.MapReader) error {
	return k.t.ThawMapped(mr)
}
func (k kissIndex) ThawRange(f io.ReadSeeker, lo, hi uint64) (int64, bool, error) {
	return k.t.ThawRange(f, lo, hi)
}
func (k kissIndex) Materialize() { k.t.Materialize() }
func (k kissIndex) Recycle()     { k.t.Recycle() }

func (p ptIndex) Frozen() bool   { return p.t.Frozen() }
func (k kissIndex) Frozen() bool { return k.t.Frozen() }

// chunkRecycler is implemented by every index kind whose chunk storage
// can be dropped into the plan recycler when the last consumer is done.
type chunkRecycler interface {
	Recycle()
}

// frozenIndex reports whether an index's storage is currently detached
// (spilled); the sharded rollback below uses it to find the shards a
// failed multi-shard restore left resident.
type frozenIndex interface {
	Frozen() bool
}

// rollbackThaw releases every shard that is no longer frozen, returning
// the sharded index to the fully frozen state the plain thaw paths
// require. A multi-shard restore that fails midway leaves earlier shards
// resident (and, under mmap, aliasing mapped pages); without the
// rollback a later full Thaw would fail forever on the first shard's
// "not frozen" guard — and the resident shard bytes would escape the
// budget accounting.
func (s *shardedIndex) rollbackThaw() {
	for _, sh := range s.shards {
		if fr, ok := sh.(frozenIndex); ok && !fr.Frozen() {
			sh.(spill.Freezer).Release()
		}
	}
}

// WriteSnapshot writes every shard into one stream, in shard order; the
// merge bounds, key ranges and counters stay resident. Because no shard
// detaches until Release, an error midway through the stream leaves every
// shard intact. The thaw paths restore the shards in the same order.
func (s *shardedIndex) WriteSnapshot(w io.Writer) error {
	for _, sh := range s.shards {
		if err := sh.(spill.Freezer).WriteSnapshot(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *shardedIndex) Release() {
	for _, sh := range s.shards {
		sh.(spill.Freezer).Release()
	}
}

func (s *shardedIndex) Thaw(r io.Reader) error {
	for _, sh := range s.shards {
		if err := sh.(spill.Freezer).Thaw(r); err != nil {
			s.rollbackThaw()
			return err
		}
	}
	return nil
}

// ThawMapped adopts each shard's chunks out of the shared mapped stream.
// On error every shard is rolled back to frozen and no shard references
// the mapping, so the caller may unmap it and retry any thaw path.
func (s *shardedIndex) ThawMapped(mr *arena.MapReader) error {
	for _, sh := range s.shards {
		if err := sh.(spill.MappedThawer).ThawMapped(mr); err != nil {
			s.rollbackThaw()
			return err
		}
	}
	return nil
}

// ThawRange forwards the consumer's range to every shard: a shard whose
// key range misses [lo, hi] restores only its interior and skips all its
// leaf chunks, so the range-restricted restore stays proportional to the
// touched data however the merge sharded it. A mid-stream error on a
// fresh (fully frozen) restore rolls every shard back to frozen; on a
// top-up the previously resident portions stay intact, matching the
// manager's resident-on-error handling.
func (s *shardedIndex) ThawRange(f io.ReadSeeker, lo, hi uint64) (int64, bool, error) {
	fresh := true
	for _, sh := range s.shards {
		if fr, ok := sh.(frozenIndex); ok && !fr.Frozen() {
			fresh = false
			break
		}
	}
	var total int64
	full := true
	for _, sh := range s.shards {
		n, shFull, err := sh.(spill.RangeThawer).ThawRange(f, lo, hi)
		total += n
		full = full && shFull
		if err != nil {
			if fresh {
				s.rollbackThaw()
			}
			return total, false, err
		}
	}
	return total, full, nil
}

func (s *shardedIndex) Materialize() {
	for _, sh := range s.shards {
		if mz, ok := sh.(spill.Materializer); ok {
			mz.Materialize()
		}
	}
}

func (s *shardedIndex) Recycle() {
	for _, sh := range s.shards {
		if rc, ok := sh.(chunkRecycler); ok {
			rc.Recycle()
		}
	}
}

// freezerOf returns the index's spill hook, or nil for index kinds that
// cannot detach their storage (none of the built-in kinds today; the
// check keeps custom Index implementations safely resident).
func freezerOf(idx Index) spill.Freezer {
	switch v := idx.(type) {
	case *shardedIndex:
		for _, sh := range v.shards {
			if freezerOf(sh) == nil {
				return nil
			}
		}
		return v
	case spill.Freezer:
		return v
	}
	return nil
}
