package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerBoundsConcurrency: however deeply Fork and ForEachWorker
// nest, the number of concurrently executing bodies must never exceed the
// pool size — the property that replaces the seed's Workers ×
// concurrent-operators goroutine blowup.
func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers = 4
	s := NewScheduler(workers)
	var cur, peak atomic.Int64
	body := func() {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
	}
	// Three "plan branches", each running a morsel loop — the shape of a
	// star-join plan with three dimension selections.
	branch := func() error {
		return s.ForEachWorker(32, func(_, _ int) error {
			body()
			return nil
		})
	}
	if err := s.Fork(branch, branch, branch); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", got, workers)
	}
	if got := peak.Load(); got < 2 {
		t.Fatalf("peak concurrency %d: pool never ran anything in parallel", got)
	}
}

// TestForEachWorkerCoversAllMorsels: every morsel is processed exactly
// once and worker slots stay dense and in range.
func TestForEachWorkerCoversAllMorsels(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		s := NewScheduler(workers)
		const n = 100
		var mu sync.Mutex
		seen := make([]int, n)
		err := s.ForEachWorker(n, func(w, m int) error {
			if w < 0 || w >= workers {
				t.Errorf("worker slot %d out of range [0,%d)", w, workers)
			}
			mu.Lock()
			seen[m]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for m, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: morsel %d processed %d times", workers, m, c)
			}
		}
	}
}

// TestForEachWorkerStealsFromStragglers: a worker stuck on one expensive
// morsel must not stall the rest — idle workers steal the remaining
// morsels. This is the skew scenario that breaks static partitioning:
// there, the worker owning the dense partition does all the work alone.
func TestForEachWorkerStealsFromStragglers(t *testing.T) {
	s := NewScheduler(2)
	const n = 64
	var mu sync.Mutex
	byWorker := map[int]int{}
	heavyWorker := -1
	err := s.ForEachWorker(n, func(w, m int) error {
		if m == 0 {
			// The "dense subtree" morsel: expensive enough that the other
			// worker drains everything else meanwhile.
			time.Sleep(50 * time.Millisecond)
			mu.Lock()
			heavyWorker = w
			mu.Unlock()
		}
		mu.Lock()
		byWorker[w]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range byWorker {
		total += c
	}
	if total != n {
		t.Fatalf("processed %d morsels, want %d", total, n)
	}
	// The worker that got stuck on the heavy morsel cannot have processed
	// the bulk: the other worker must have stolen it.
	if c := byWorker[heavyWorker]; c > n/2 {
		t.Fatalf("straggler worker processed %d of %d morsels; stealing did not engage", c, n)
	}
}

func TestSchedulerErrorPropagation(t *testing.T) {
	s := NewScheduler(3)
	boom := errors.New("boom")
	if err := s.Fork(
		func() error { return nil },
		func() error { return boom },
		func() error { return nil },
	); !errors.Is(err, boom) {
		t.Fatalf("Fork error = %v, want boom", err)
	}
	var ran atomic.Int64
	err := s.ForEachWorker(1000, func(_, m int) error {
		ran.Add(1)
		if m == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ForEachWorker error = %v, want boom", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("error did not stop morsel claiming")
	}
}

// TestForkSaturatedPoolRunsInline: once the pool has no free workers,
// Fork must still make progress on the calling goroutine instead of
// blocking — the property that makes nested parallelism deadlock-free.
func TestForkSaturatedPoolRunsInline(t *testing.T) {
	s := NewScheduler(2)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	// Occupy the single helper slot.
	ok := s.acquire()
	if !ok {
		t.Fatal("fresh pool has no helper slot")
	}
	go func() {
		defer wg.Done()
		<-release
		s.release()
	}()
	done := make(chan error, 1)
	go func() {
		done <- s.Fork(
			func() error { return nil },
			func() error { return nil },
			func() error { return nil },
		)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fork blocked on a saturated pool")
	}
	close(release)
	wg.Wait()
}
