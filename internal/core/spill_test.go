package core

import (
	"bytes"
	"reflect"
	"testing"

	"qppt/internal/duplist"
)

// Regression: shard() used to return len(s.his) for a key above the last
// shard's bound, so Insert/Lookup panicked with index-out-of-range. The
// last shard's range is documented as extended to the key-space maximum;
// keys at and beyond it must clamp there and behave like any other key.
func TestShardedIndexClampRouting(t *testing.T) {
	const bits = uint(16)
	max := keySpaceMax(bits)
	mk := func() Index { return NewIndex(IndexConfig{KeyBits: bits, PayloadWidth: 1}) }
	a, b := mk(), mk()
	a.Insert(5, []uint64{50})
	b.Insert(max, []uint64{99})
	s := newShardedIndex([]Index{a, b}, []uint64{0, 0x8000}, []uint64{0x7fff, max}, bits)

	// At the key-space maximum: owned by the last shard.
	if v := s.Lookup(max); v == nil || v.First()[0] != 99 {
		t.Fatalf("Lookup(max) = %v, want the stored row", v)
	}
	// Beyond it (e.g. a probe attribute wider than the index key): must
	// clamp to the last shard and read as a miss — no panic.
	if v := s.Lookup(max + 1); v != nil {
		t.Fatalf("Lookup(max+1) = %v, want nil", v)
	}
	got := map[int]uint64{}
	s.LookupBatch([]uint64{5, max, max + 12345}, func(i int, vals *duplist.List) {
		if vals != nil {
			got[i] = vals.First()[0]
		}
	})
	if !reflect.DeepEqual(got, map[int]uint64{0: 50, 1: 99}) {
		t.Fatalf("LookupBatch beyond max = %v", got)
	}
	// Inserts beyond the bound clamp into the last shard and stay findable
	// (the KISS shard accepts any 32-bit key; routing must not panic).
	s.Insert(max+2, []uint64{7})
	if v := s.Lookup(max + 2); v == nil || v.First()[0] != 7 {
		t.Fatal("Insert beyond max not routed to the last shard")
	}
}

// The sharded index a parallel merge produces must survive a freeze/thaw
// cycle shard-for-shard.
func TestShardedIndexFreezeThaw(t *testing.T) {
	spec := &OutputSpec{Name: "s", Key: SimpleKey("k", 32), Cols: []string{"v"}}
	var partials []*IndexedTable
	for p := 0; p < 3; p++ {
		idx := newOutputIndex(spec, nil)
		for i := 0; i < 6000; i++ {
			idx.Insert(uint64(i*7+p), []uint64{uint64(i)})
		}
		partials = append(partials, NewIndexedTable(spec.Name, spec.Key, spec.Cols, idx))
	}
	ec := &ExecContext{opts: Options{Workers: 3}}
	merged, _ := mergePartialsParallel(ec, spec, partials)
	sh, ok := merged.Idx.(*shardedIndex)
	if !ok {
		t.Fatal("parallel merge did not shard")
	}
	plain, _ := mergePartials(nil, spec, partials, nil)

	fz := freezerOf(merged.Idx)
	if fz == nil {
		t.Fatal("sharded index over arena shards not spillable")
	}
	var buf bytes.Buffer
	if err := fz.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	fz.Release()
	if err := fz.Thaw(&buf); err != nil {
		t.Fatalf("Thaw: %v", err)
	}
	_ = sh
	assertSameTable(t, plain, merged)
}

// A plan run under a memory budget must spill (and restore) intermediates
// yet produce bit-identical results, serially and with morsel
// parallelism; the stats must record the traffic.
func TestMemBudgetSpillsAndMatches(t *testing.T) {
	f := buildFixture(3)
	want, _, err := starPlan(f, 2).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantRes := Extract(want)
	for _, workers := range []int{1, 3} {
		out, stats, err := starPlan(f, 2).Run(Options{
			MemBudget:    1, // far below any intermediate: everything cold spills
			Workers:      workers,
			CollectStats: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(Extract(out).Rows, wantRes.Rows) {
			t.Fatalf("workers=%d: budgeted result differs", workers)
		}
		if stats.Spills == 0 || stats.Restores == 0 {
			t.Fatalf("workers=%d: no spill traffic recorded: %+v", workers, stats)
		}
		if stats.SpillBytes == 0 || stats.RestoreBytes == 0 || stats.PeakResident == 0 {
			t.Fatalf("workers=%d: byte counters empty: %+v", workers, stats)
		}
		opSpills, opRestores := 0, 0
		for _, op := range stats.Ops {
			opSpills += op.Spills
			opRestores += op.Restores
		}
		if opSpills != stats.Spills || opRestores != stats.Restores {
			t.Fatalf("workers=%d: per-op spill counts %d/%d don't add up to plan totals %d/%d",
				workers, opSpills, opRestores, stats.Spills, stats.Restores)
		}
	}
}

// A multi-shard restore that fails midway must roll every shard back to
// frozen, so a later thaw from the intact snapshot still succeeds — and
// must never leave a mix of resident and frozen shards behind.
func TestShardedThawRollsBackOnError(t *testing.T) {
	spec := &OutputSpec{Name: "s", Key: SimpleKey("k", 32), Cols: []string{"v"}}
	var partials []*IndexedTable
	for p := 0; p < 3; p++ {
		idx := newOutputIndex(spec, nil)
		for i := 0; i < 6000; i++ {
			idx.Insert(uint64(i*7+p), []uint64{uint64(i)})
		}
		partials = append(partials, NewIndexedTable(spec.Name, spec.Key, spec.Cols, idx))
	}
	ec := &ExecContext{opts: Options{Workers: 3}}
	merged, _ := mergePartialsParallel(ec, spec, partials)
	sh, ok := merged.Idx.(*shardedIndex)
	if !ok {
		t.Fatal("parallel merge did not shard")
	}
	want, _ := mergePartials(nil, spec, partials, nil)

	var buf bytes.Buffer
	if err := sh.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	sh.Release()
	snapshot := buf.Bytes()

	// A truncated stream fails partway through the shard sequence…
	if err := sh.Thaw(bytes.NewReader(snapshot[:len(snapshot)*2/3])); err == nil {
		t.Fatal("truncated thaw did not fail")
	}
	// …and the rollback must leave every shard frozen again,
	for _, shard := range sh.shards {
		if !shard.(frozenIndex).Frozen() {
			t.Fatal("shard left resident after failed multi-shard thaw")
		}
	}
	// …so a retry from the intact snapshot fully recovers.
	if err := sh.Thaw(bytes.NewReader(snapshot)); err != nil {
		t.Fatalf("retry thaw after rollback: %v", err)
	}
	assertSameTable(t, want, merged)
}
