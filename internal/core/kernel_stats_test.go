package core

import (
	"reflect"
	"strings"
	"testing"

	"qppt/internal/kernel"
)

// TestRangeStreamConsumerBatchStats pins the attribution fix for fused
// range-stream links: before it, only probing consumers surfaced any
// batch traffic — a Selection/Having chain top reported neither
// ProbeBatches nor a fill, making range-stream fusion look batchless
// next to probe fusion. Now the producer reports the batches it flushed
// (split sorted vs arrival) and the non-probing top reports the batches
// it received plus the combinations that survived the stream predicate.
func TestRangeStreamConsumerBatchStats(t *testing.T) {
	f := buildFixture(18)
	outSpec := func(name string) OutputSpec {
		return OutputSpec{
			Name:     name,
			Key:      SimpleKey("brand", 8),
			KeyRefs:  []Ref{{Input: 0, Attr: "brand"}},
			Cols:     []string{"prodkey"},
			ColExprs: []RowExpr{Attr(0, "prodkey")},
		}
	}
	// A gapped range union: the envelope clip narrows the bottom scan to
	// the hull [2, 9], but brands 4..7 still stream and must be dropped
	// by the batch filter — so the kept count observably thins.
	mkPlan := func() *Plan {
		inner := &Selection{Input: &Base{Table: f.prodByBrand}, Out: outSpec("ident")}
		return &Plan{Root: &Selection{Input: inner, Pred: KeyPred{{Lo: 2, Hi: 3}, {Lo: 8, Hi: 9}}, Out: outSpec("band")}}
	}
	for _, opt := range []Options{
		{ProbeBatch: 16},
		{ProbeBatch: 16, Workers: 3, MorselsPerWorker: 3},
	} {
		opt.CollectStats = true
		out, stats, err := mkPlan().Run(opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		producer, top := stats.Ops[0], stats.Ops[1]
		if producer.FusedKind != "range-stream" {
			t.Fatalf("%+v: producer kind %q, want range-stream", opt, producer.FusedKind)
		}
		if producer.ProbeBatches == 0 || producer.AvgBatchFill <= 0 {
			t.Fatalf("%+v: producer batches=%d fill=%.1f, want both > 0", opt, producer.ProbeBatches, producer.AvgBatchFill)
		}
		if got := producer.SortedFlushes + producer.ArrivalFlushes; got != producer.ProbeBatches {
			t.Fatalf("%+v: flush split %d+%d != %d batches", opt, producer.SortedFlushes, producer.ArrivalFlushes, producer.ProbeBatches)
		}
		// The fix under test: the non-probing chain top reports the batch
		// traffic it received, not zeros.
		if top.ProbeBatches == 0 || top.AvgBatchFill <= 0 {
			t.Fatalf("%+v: range-stream top batches=%d fill=%.1f, want both > 0", opt, top.ProbeBatches, top.AvgBatchFill)
		}
		// A batch whose every key the filter drops is flushed by the
		// producer but never handed over, so the top can receive fewer
		// batches than the producer flushed — never more.
		if top.ProbeBatches > producer.ProbeBatches {
			t.Fatalf("%+v: top received %d batches, producer flushed only %d", opt, top.ProbeBatches, producer.ProbeBatches)
		}
		// No residual and no fold in this plan, so the combinations that
		// survive the batch predicate filter are exactly the output rows.
		if top.StreamedIn != out.Rows() {
			t.Fatalf("%+v: top StreamedIn=%d, output has %d rows", opt, top.StreamedIn, out.Rows())
		}
		if top.StreamedIn >= producer.TuplesStreamed {
			t.Fatalf("%+v: filter kept %d of %d streamed — predicate did not thin the stream", opt, top.StreamedIn, producer.TuplesStreamed)
		}
		if s := stats.String(); !strings.Contains(s, "stream batches in") {
			t.Fatalf("%+v: stats string misses the consumer batch line:\n%s", opt, s)
		}
	}
}

// TestForwardFilterMatchesPredMatch runs the same multi-range σ→σ chain
// through the three predicate paths — batched selection-vector filter
// (default), scalar predMatch wrapping (ProbeBatch 1), and materialized
// key-range scan (NoFuse) — and requires bit-identical results. The
// multi-range predicate exercises mask accumulation across ranges; the
// payload column checks row compaction alongside the keys.
func TestForwardFilterMatchesPredMatch(t *testing.T) {
	f := buildFixture(19)
	outSpec := func(name string) OutputSpec {
		return OutputSpec{
			Name:     name,
			Key:      SimpleKey("brand", 8),
			KeyRefs:  []Ref{{Input: 0, Attr: "brand"}},
			Cols:     []string{"prodkey"},
			ColExprs: []RowExpr{Attr(0, "prodkey")},
		}
	}
	preds := []KeyPred{
		Between(2, 5),
		{{Lo: 1, Hi: 3}, {Lo: 9, Hi: 14}, {Lo: 20, Hi: 20}}, // multi-range union
		{{Lo: 200, Hi: 255}}, // disjoint from every brand: empty result
		{},                   // empty predicate: matches nothing
		nil,                  // no predicate: passes everything
	}
	for pi, pred := range preds {
		mkPlan := func() *Plan {
			inner := &Selection{Input: &Base{Table: f.prodByBrand}, Out: outSpec("ident")}
			return &Plan{Root: &Selection{Input: inner, Pred: pred, Out: outSpec("band")}}
		}
		want, _, err := mkPlan().Run(Options{NoFuse: true})
		if err != nil {
			t.Fatal(err)
		}
		wantRows := Extract(want).Rows
		for _, opt := range []Options{
			{},
			{ProbeBatch: 7}, // partial final batches, mask tail words
			{ProbeBatch: 1}, // scalar predMatch path
			{Workers: 3, MorselsPerWorker: 3},
		} {
			out, _, err := mkPlan().Run(opt)
			if err != nil {
				t.Fatalf("pred %d %+v: %v", pi, opt, err)
			}
			if !reflect.DeepEqual(Extract(out).Rows, wantRows) {
				t.Fatalf("pred %d %+v: fused result differs from materialized", pi, opt)
			}
		}
	}
}

// TestKernelDescentStatsSplit checks the kernel/scalar descent counters:
// a probe-heavy plan under the default dispatch reports SWAR descents,
// the same plan under ForceGeneric reports only scalar ones, and the
// plan-level stats line surfaces the split.
func TestKernelDescentStatsSplit(t *testing.T) {
	if !kernel.Enabled() {
		t.Skip("kernels disabled in this configuration")
	}
	f := buildFixture(20)
	run := func() *PlanStats {
		_, stats, err := starPlan(f, 2).Run(Options{CollectStats: true})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	kd, sd := run().descents()
	if kd == 0 {
		t.Fatalf("kernel descents = 0 (scalar %d), want > 0 under active dispatch", sd)
	}
	if s := run().String(); !strings.Contains(s, "SWAR descents") {
		t.Fatalf("stats string misses the kernel line:\n%s", s)
	}
	restore := kernel.ForceGeneric()
	kd, sd = run().descents()
	restore()
	if kd != 0 || sd == 0 {
		t.Fatalf("under ForceGeneric: kernel=%d scalar=%d, want 0 and > 0", kd, sd)
	}
}
