package core

import (
	"fmt"
	"strings"

	"qppt/internal/key"
)

// A KeySpec declares what an indexed table is indexed on: one attribute, or
// several packed into an order-preserving composed key (most significant
// field first). The bit widths drive both the composed-key layout and the
// KISS-vs-prefix-tree decision for the index structure.
type KeySpec struct {
	Attrs []string
	Bits  []uint
}

// SimpleKey is a KeySpec for a single attribute of the given width.
func SimpleKey(attr string, bits uint) KeySpec {
	return KeySpec{Attrs: []string{attr}, Bits: []uint{bits}}
}

// GroupKey is a KeySpec for a grouping key composed of several attributes.
func GroupKey(attrs []string, bits []uint) KeySpec {
	return KeySpec{Attrs: attrs, Bits: bits}
}

// TotalBits reports the composed key width.
func (ks KeySpec) TotalBits() uint {
	var total uint
	for _, b := range ks.Bits {
		total += b
	}
	if total == 0 {
		return 1 // keyless (single-group) tables use the constant key 0
	}
	return total
}

// Composer returns the key composer for multi-attribute specs, or nil for
// simple (or keyless) specs.
func (ks KeySpec) Composer() *key.Composer {
	if len(ks.Attrs) < 2 {
		return nil
	}
	return key.MustComposer(ks.Bits...)
}

// Field returns the position of attr among the key attributes, or -1.
func (ks KeySpec) Field(attr string) int {
	for i, a := range ks.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

func (ks KeySpec) String() string {
	if len(ks.Attrs) == 0 {
		return "⟨const⟩"
	}
	return strings.Join(ks.Attrs, "·")
}

// An IndexedTable is the unit of data exchange between QPPT operators: a
// set of tuples stored inside a prefix-tree index, indexed on Key, with a
// fixed-width payload row holding the attributes in Cols. Base indexes and
// intermediate results share this representation; base indexes additionally
// carry the owning relation's name.
type IndexedTable struct {
	// Name identifies the table in plans and statistics (e.g. "lineorder
	// [orderdate]" for a base index, "σ_part" for an intermediate).
	Name string
	// Key is the attribute layout of the index key.
	Key KeySpec
	// Cols names the payload attributes, in payload-row order.
	Cols []string
	// Idx is the underlying index structure.
	Idx Index

	byName map[string]int
}

// NewIndexedTable wraps an index with its attribute layout. The payload
// width of idx must match len(cols).
func NewIndexedTable(name string, ks KeySpec, cols []string, idx Index) *IndexedTable {
	if idx.PayloadWidth() != len(cols) {
		panic(fmt.Sprintf("core: index payload width %d != %d columns", idx.PayloadWidth(), len(cols)))
	}
	t := &IndexedTable{Name: name, Key: ks, Cols: cols, Idx: idx}
	t.byName = make(map[string]int, len(cols))
	for i, c := range cols {
		t.byName[c] = i
	}
	return t
}

// Shape builds an index-less IndexedTable that only carries the attribute
// layout. Plan builders use shapes to resolve context offsets (CtxOffsets)
// for operators whose inputs are other operators' future outputs; shapes
// must not be executed.
func Shape(name string, ks KeySpec, cols []string) *IndexedTable {
	t := &IndexedTable{Name: name, Key: ks, Cols: cols}
	t.byName = make(map[string]int, len(cols))
	for i, c := range cols {
		t.byName[c] = i
	}
	return t
}

// ShapeOf returns the layout a spec's output table will have.
func (o *OutputSpec) ShapeOf() *IndexedTable { return Shape(o.Name, o.Key, o.Cols) }

// Col returns the payload position of the named attribute, or -1.
func (t *IndexedTable) Col(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// HasAttr reports whether the attribute is available from this table,
// either as a key field or as a payload column.
func (t *IndexedTable) HasAttr(name string) bool {
	return t.Col(name) >= 0 || t.Key.Field(name) >= 0
}

// Rows reports the number of tuples in the table.
func (t *IndexedTable) Rows() int { return t.Idx.Rows() }

// Keys reports the number of distinct index keys.
func (t *IndexedTable) Keys() int { return t.Idx.Keys() }

// A Ref names an attribute to be read from one of an operator's inputs.
// Operators compile Refs into flat offsets into their combination context
// (see pipeline.go), so per-tuple evaluation is a single indexed load.
type Ref struct {
	// Input is the operator-relative input ordinal (0 = first/left).
	Input int
	// Attr is the attribute name, resolved against the input's key
	// fields and payload columns.
	Attr string
}

// A RowExpr produces one output-row value: either an attribute reference or
// a computed expression over the combination context (used for derived
// measures such as extendedprice*discount).
type RowExpr struct {
	// Ref is used when Fn is nil.
	Ref Ref
	// Fn computes the value from the flat combination context. Ctx
	// offsets for Fn are resolved with the operator's CtxOf helper at
	// plan-build time.
	Fn func(ctx []uint64) uint64
}

// Attr is shorthand for a RowExpr reading an attribute.
func Attr(input int, name string) RowExpr { return RowExpr{Ref: Ref{Input: input, Attr: name}} }

// Computed is shorthand for a RowExpr computing a derived value.
func Computed(fn func(ctx []uint64) uint64) RowExpr { return RowExpr{Fn: fn} }

// An OutputSpec describes the cooperative output of an operator: the key
// the *next* operator requests, the payload attributes to carry along, and
// optionally a fold function that turns the output index into a
// grouping/aggregating index (integration level 1, paper Section 4).
type OutputSpec struct {
	// Name labels the resulting intermediate table.
	Name string
	// Key declares the output key attributes; empty Attrs mean a
	// keyless (single group) output with constant key 0.
	Key KeySpec
	// KeyRefs locate the key attributes in the operator's inputs, one
	// per Key.Attrs entry.
	KeyRefs []Ref
	// Cols names the output payload attributes.
	Cols []string
	// ColExprs produce the payload values, one per Cols entry.
	ColExprs []RowExpr
	// Fold, if non-nil, aggregates payload rows per output key.
	Fold func(dst, src []uint64)
	// ForcePrefixTree and CompressKISS tune the output index structure.
	ForcePrefixTree bool
	CompressKISS    bool
	// PrefixLen overrides k′ for prefix-tree outputs.
	PrefixLen uint
}

// FoldSum returns a fold function summing the payload positions in cols
// (all other positions keep the first row's values — correct for grouping
// keys carried redundantly in payloads).
func FoldSum(cols ...int) func(dst, src []uint64) {
	return func(dst, src []uint64) {
		for _, c := range cols {
			dst[c] += src[c]
		}
	}
}

// A KeyRange is one inclusive key interval of a selection predicate.
type KeyRange struct{ Lo, Hi uint64 }

// A KeyPred is a union of inclusive key ranges, the index-key predicate
// form of the selection/having operator. Point predicates are single
// one-element ranges; IN lists are multiple ranges; BETWEEN is one range.
// Ranges should be sorted and non-overlapping.
type KeyPred []KeyRange

// Point returns a predicate matching exactly k.
func Point(k uint64) KeyPred { return KeyPred{{Lo: k, Hi: k}} }

// Between returns a predicate matching [lo, hi].
func Between(lo, hi uint64) KeyPred { return KeyPred{{Lo: lo, Hi: hi}} }

// In returns a predicate matching any of the given keys.
func In(keys ...uint64) KeyPred {
	p := make(KeyPred, len(keys))
	for i, k := range keys {
		p[i] = KeyRange{Lo: k, Hi: k}
	}
	return p
}

// EverythingUpTo returns a predicate matching [0, hi] (e.g. quantity < 25
// becomes EverythingUpTo(24) on an unsigned domain).
func EverythingUpTo(hi uint64) KeyPred { return Between(0, hi) }
