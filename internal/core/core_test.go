package core

import (
	"math/rand"
	"reflect"
	"testing"

	"qppt/internal/duplist"
)

// The test fixture is a miniature star schema:
//
//	fact(custkey, prodkey, qty)       — nFact rows
//	customers(custkey) → region       — nCust rows
//	products(prodkey)  → brand        — nProd rows
//
// with base indexes shaped the way QPPT base indexes are: partially
// clustered (the payload carries the attributes later operators need).
type fixture struct {
	factByProd  *IndexedTable // key prodkey, payload [custkey, qty]
	custByKey   *IndexedTable // key custkey, payload [region]
	prodByBrand *IndexedTable // key brand, payload [prodkey]

	// raw rows for brute-force oracles
	fact [][3]uint64 // custkey, prodkey, qty
	cust map[uint64]uint64
	prod map[uint64]uint64 // prodkey → brand
}

const (
	nFact   = 30000
	nCust   = 500
	nProd   = 200
	nBrand  = 25
	nRegion = 5
)

func buildFixture(seed int64) *fixture {
	rng := rand.New(rand.NewSource(seed))
	f := &fixture{cust: map[uint64]uint64{}, prod: map[uint64]uint64{}}

	factIdx := NewIndex(IndexConfig{KeyBits: 16, PayloadWidth: 2})
	custIdx := NewIndex(IndexConfig{KeyBits: 16, PayloadWidth: 1})
	prodIdx := NewIndex(IndexConfig{KeyBits: 8, PayloadWidth: 1})

	for c := uint64(0); c < nCust; c++ {
		region := uint64(rng.Intn(nRegion))
		f.cust[c] = region
		custIdx.Insert(c, []uint64{region})
	}
	for p := uint64(0); p < nProd; p++ {
		brand := uint64(rng.Intn(nBrand))
		f.prod[p] = brand
		prodIdx.Insert(brand, []uint64{p})
	}
	for i := 0; i < nFact; i++ {
		c := uint64(rng.Intn(nCust))
		p := uint64(rng.Intn(nProd))
		q := uint64(rng.Intn(50) + 1)
		f.fact = append(f.fact, [3]uint64{c, p, q})
		factIdx.Insert(p, []uint64{c, q})
	}

	f.factByProd = NewIndexedTable("fact[prodkey]", SimpleKey("prodkey", 16), []string{"custkey", "qty"}, factIdx)
	f.custByKey = NewIndexedTable("customers[custkey]", SimpleKey("custkey", 16), []string{"region"}, custIdx)
	f.prodByBrand = NewIndexedTable("products[brand]", SimpleKey("brand", 8), []string{"prodkey"}, prodIdx)
	return f
}

// oracleGroupSum computes, brute force, sum(qty) grouped by region for
// fact rows whose product brand is in brands and qty within [qlo, qhi].
func (f *fixture) oracleGroupSum(brands map[uint64]bool, qlo, qhi uint64) map[uint64]uint64 {
	out := map[uint64]uint64{}
	for _, r := range f.fact {
		c, p, q := r[0], r[1], r[2]
		if !brands[f.prod[p]] || q < qlo || q > qhi {
			continue
		}
		out[f.cust[c]] += q
	}
	return out
}

// starPlan builds: σ_products(brand=17) → ⋈(fact, σ_out) assisted by
// customers, grouped by region with sum(qty).
func starPlan(f *fixture, brand uint64) *Plan {
	sel := &Selection{
		Input: &Base{Table: f.prodByBrand},
		Pred:  Point(brand),
		Out: OutputSpec{
			Name:     "σ_products",
			Key:      SimpleKey("prodkey", 16),
			KeyRefs:  []Ref{{Input: 0, Attr: "prodkey"}},
			Cols:     nil,
			ColExprs: nil,
		},
	}
	join := &Join{
		Left:  &Base{Table: f.factByProd},
		Right: sel,
		Assists: []Assist{{
			Input:     &Base{Table: f.custByKey},
			ProbeWith: Ref{Input: 0, Attr: "custkey"},
		}},
		Out: OutputSpec{
			Name:     "Γ_region",
			Key:      SimpleKey("region", 8),
			KeyRefs:  []Ref{{Input: 2, Attr: "region"}},
			Cols:     []string{"sum_qty"},
			ColExprs: []RowExpr{Attr(0, "qty")},
			Fold:     FoldSum(0),
		},
	}
	return &Plan{Root: join}
}

func resultAsMap(t *testing.T, res *Result) map[uint64]uint64 {
	t.Helper()
	m := map[uint64]uint64{}
	for _, row := range res.Rows {
		if len(row) != 2 {
			t.Fatalf("result row %v has %d fields, want 2", row, len(row))
		}
		if _, dup := m[row[0]]; dup {
			t.Fatalf("duplicate group key %d", row[0])
		}
		m[row[0]] = row[1]
	}
	return m
}

func TestStarJoinGroupMatchesOracle(t *testing.T) {
	f := buildFixture(1)
	for brand := uint64(0); brand < 4; brand++ {
		out, _, err := starPlan(f, brand).Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := resultAsMap(t, Extract(out))
		want := f.oracleGroupSum(map[uint64]bool{brand: true}, 0, ^uint64(0))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("brand %d: got %v, want %v", brand, got, want)
		}
	}
}

func TestBufferSizesGiveIdenticalResults(t *testing.T) {
	f := buildFixture(2)
	var ref map[uint64]uint64
	for _, bs := range []int{1, 64, 512, 2048} {
		out, _, err := starPlan(f, 3).Run(Options{BufferSize: bs})
		if err != nil {
			t.Fatal(err)
		}
		got := resultAsMap(t, Extract(out))
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("buffer size %d changed the result", bs)
		}
	}
}

func TestParallelGivesIdenticalResults(t *testing.T) {
	f := buildFixture(3)
	seq, _, err := starPlan(f, 5).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := starPlan(f, 5).Run(Options{Workers: WorkersAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultAsMap(t, Extract(seq)), resultAsMap(t, Extract(par))) {
		t.Fatal("parallel execution changed the result")
	}
}

func TestSelectionResidualAndRange(t *testing.T) {
	f := buildFixture(4)
	// Select fact rows with qty in [10, 20] via residual on a full scan,
	// output keyed on custkey with qty payload, then aggregate per region
	// through a join with customers.
	factShape := f.factByProd
	qtyOff := CtxOffsets([]*IndexedTable{factShape}, Ref{Input: 0, Attr: "qty"})[0]
	sel := &Selection{
		Input:    &Base{Table: factShape},
		Pred:     nil, // full scan
		Residual: func(ctx []uint64) bool { return ctx[qtyOff] >= 10 && ctx[qtyOff] <= 20 },
		Out: OutputSpec{
			Name:     "σ_fact",
			Key:      SimpleKey("custkey", 16),
			KeyRefs:  []Ref{{Input: 0, Attr: "custkey"}},
			Cols:     []string{"qty"},
			ColExprs: []RowExpr{Attr(0, "qty")},
		},
	}
	join := &Join{
		Left:  sel,
		Right: &Base{Table: f.custByKey},
		Out: OutputSpec{
			Name:     "Γ_region",
			Key:      SimpleKey("region", 8),
			KeyRefs:  []Ref{{Input: 1, Attr: "region"}},
			Cols:     []string{"sum_qty"},
			ColExprs: []RowExpr{Attr(0, "qty")},
			Fold:     FoldSum(0),
		},
	}
	out, _, err := (&Plan{Root: join}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := resultAsMap(t, Extract(out))
	want := map[uint64]uint64{}
	for _, r := range f.fact {
		if r[2] >= 10 && r[2] <= 20 {
			want[f.cust[r[0]]] += r[2]
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectJoinEquivalentToSelectionPlusJoin(t *testing.T) {
	f := buildFixture(5)
	brand := uint64(7)
	// Composed: select products on brand and join straight into fact.
	sj := &SelectJoin{
		SelInput:      &Base{Table: f.prodByBrand},
		Pred:          Point(brand),
		Main:          &Base{Table: f.factByProd},
		ProbeMainWith: Ref{Input: 0, Attr: "prodkey"},
		Assists: []Assist{{
			Input:     &Base{Table: f.custByKey},
			ProbeWith: Ref{Input: 1, Attr: "custkey"},
		}},
		Out: OutputSpec{
			Name:     "Γ_region",
			Key:      SimpleKey("region", 8),
			KeyRefs:  []Ref{{Input: 2, Attr: "region"}},
			Cols:     []string{"sum_qty"},
			ColExprs: []RowExpr{Attr(1, "qty")},
			Fold:     FoldSum(0),
		},
	}
	composed, _, err := (&Plan{Root: sj}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	separate, _, err := starPlan(f, brand).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultAsMap(t, Extract(composed)), resultAsMap(t, Extract(separate))) {
		t.Fatal("select-join result differs from selection+join plan")
	}
	want := f.oracleGroupSum(map[uint64]bool{brand: true}, 0, ^uint64(0))
	if !reflect.DeepEqual(resultAsMap(t, Extract(composed)), want) {
		t.Fatal("select-join result differs from oracle")
	}
}

func TestComposedGroupKeyOutput(t *testing.T) {
	f := buildFixture(6)
	// Group by (region, brand): a composed output key, checking both the
	// composition and the sortedness of extraction.
	sel := &Selection{
		Input: &Base{Table: f.prodByBrand},
		Pred:  Between(0, nBrand-1), // all brands
		Out: OutputSpec{
			Name:     "σ_products",
			Key:      SimpleKey("prodkey", 16),
			KeyRefs:  []Ref{{Input: 0, Attr: "prodkey"}},
			Cols:     []string{"brand"},
			ColExprs: []RowExpr{Attr(0, "brand")},
		},
	}
	join := &Join{
		Left:  &Base{Table: f.factByProd},
		Right: sel,
		Assists: []Assist{{
			Input:     &Base{Table: f.custByKey},
			ProbeWith: Ref{Input: 0, Attr: "custkey"},
		}},
		Out: OutputSpec{
			Name:     "Γ_region_brand",
			Key:      GroupKey([]string{"region", "brand"}, []uint{8, 8}),
			KeyRefs:  []Ref{{Input: 2, Attr: "region"}, {Input: 1, Attr: "brand"}},
			Cols:     []string{"sum_qty"},
			ColExprs: []RowExpr{Attr(0, "qty")},
			Fold:     FoldSum(0),
		},
	}
	out, _, err := (&Plan{Root: join}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Extract(out)
	want := map[[2]uint64]uint64{}
	for _, r := range f.fact {
		want[[2]uint64{f.cust[r[0]], f.prod[r[1]]}] += r[2]
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("%d groups, want %d", len(res.Rows), len(want))
	}
	var prev [2]uint64
	for i, row := range res.Rows {
		k := [2]uint64{row[0], row[1]}
		if want[k] != row[2] {
			t.Fatalf("group %v = %d, want %d", k, row[2], want[k])
		}
		if i > 0 && !(prev[0] < k[0] || (prev[0] == k[0] && prev[1] < k[1])) {
			t.Fatal("extraction not sorted by composed key")
		}
		prev = k
	}
}

func TestKeylessSingleGroupOutput(t *testing.T) {
	f := buildFixture(7)
	// sum(qty) over everything: keyless output, one group.
	sel := &Selection{
		Input: &Base{Table: f.factByProd},
		Out: OutputSpec{
			Name:     "Γ_all",
			Key:      KeySpec{}, // constant key 0
			KeyRefs:  nil,
			Cols:     []string{"sum_qty", "count"},
			ColExprs: []RowExpr{Attr(0, "qty"), Computed(func([]uint64) uint64 { return 1 })},
			Fold:     FoldSum(0, 1),
		},
	}
	out, _, err := (&Plan{Root: sel}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Extract(out)
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(res.Rows))
	}
	var wantSum uint64
	for _, r := range f.fact {
		wantSum += r[2]
	}
	if res.Rows[0][0] != wantSum || res.Rows[0][1] != nFact {
		t.Fatalf("sum/count = %d/%d, want %d/%d", res.Rows[0][0], res.Rows[0][1], wantSum, nFact)
	}
}

func TestIntersectAndUnion(t *testing.T) {
	f := buildFixture(8)
	// Decomposed conjunction/disjunction over rid-like keys: customers in
	// region 1, customers in regions {1,2} via two selections.
	selRegion := func(name string, regions ...uint64) *Selection {
		return &Selection{
			Input: &Base{Table: f.custByKey},
			Pred:  nil,
			Residual: func(regs map[uint64]bool) func(ctx []uint64) bool {
				off := CtxOffsets([]*IndexedTable{f.custByKey}, Ref{Input: 0, Attr: "region"})[0]
				return func(ctx []uint64) bool { return regs[ctx[off]] }
			}(toSet(regions)),
			Out: OutputSpec{
				Name:    name,
				Key:     SimpleKey("custkey", 16),
				KeyRefs: []Ref{{Input: 0, Attr: "custkey"}},
			},
		}
	}
	inter := &Intersect{
		A: selRegion("A", 1, 2),
		B: selRegion("B", 2, 3),
		Out: OutputSpec{
			Name:    "A∩B",
			Key:     SimpleKey("custkey", 16),
			KeyRefs: []Ref{{Input: 0, Attr: "custkey"}},
		},
	}
	union := &UnionDistinct{
		A: selRegion("A", 1),
		B: selRegion("B", 1, 3),
		Out: OutputSpec{
			Name:    "A∪B",
			Key:     SimpleKey("custkey", 16),
			KeyRefs: []Ref{{Input: 0, Attr: "custkey"}},
		},
	}
	iOut, _, err := (&Plan{Root: inter}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	uOut, _, err := (&Plan{Root: union}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantI, wantU := 0, 0
	for _, reg := range f.cust {
		if reg == 2 {
			wantI++
		}
		if reg == 1 || reg == 3 {
			wantU++
		}
	}
	if iOut.Keys() != wantI {
		t.Errorf("intersect keys = %d, want %d", iOut.Keys(), wantI)
	}
	if uOut.Keys() != wantU {
		t.Errorf("union keys = %d, want %d", uOut.Keys(), wantU)
	}
}

func toSet(xs []uint64) map[uint64]bool {
	m := make(map[uint64]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func TestStatsCollection(t *testing.T) {
	f := buildFixture(9)
	out, stats, err := starPlan(f, 2).Run(Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || len(stats.Ops) != 2 {
		t.Fatalf("stats = %+v, want 2 operators", stats)
	}
	// Post-order: selection before join.
	if stats.Ops[0].Label != "σ→σ_products" {
		t.Errorf("first op = %q", stats.Ops[0].Label)
	}
	join := stats.Ops[1]
	if join.OutKeys != out.Keys() || join.OutRows != out.Rows() {
		t.Errorf("join stats out %d/%d, table %d/%d", join.OutKeys, join.OutRows, out.Keys(), out.Rows())
	}
	if join.ProbeLookups == 0 {
		t.Error("join reported no assist lookups")
	}
	if join.Time <= 0 || join.IndexTime < 0 || join.MaterializeTime < 0 {
		t.Errorf("implausible times: %+v", join)
	}
	if stats.String() == "" {
		t.Error("empty stats string")
	}
}

func TestResultOrderBy(t *testing.T) {
	r := &Result{
		Attrs: []string{"a", "b"},
		Rows:  [][]uint64{{1, 10}, {2, 30}, {3, 20}},
	}
	r.OrderBy(-2) // b descending
	if r.Rows[0][1] != 30 || r.Rows[1][1] != 20 || r.Rows[2][1] != 10 {
		t.Fatalf("descending sort wrong: %v", r.Rows)
	}
	r.OrderBy(0)
	if r.Rows[0][0] != 1 || r.Rows[2][0] != 3 {
		t.Fatalf("ascending sort wrong: %v", r.Rows)
	}
	if r.Col("b") != 1 || r.Col("zz") != -1 {
		t.Fatal("Col lookup wrong")
	}
}

func TestNewIndexStructureChoice(t *testing.T) {
	if got := NewIndex(IndexConfig{KeyBits: 32}); got.KeyBits() != 32 {
		t.Errorf("32-bit index reports %d key bits", got.KeyBits())
	}
	if _, isKiss := NewIndex(IndexConfig{KeyBits: 20}).(kissIndex); !isKiss {
		t.Error("narrow keys did not pick the KISS-Tree")
	}
	if _, isPT := NewIndex(IndexConfig{KeyBits: 33}).(ptIndex); !isPT {
		t.Error("wide keys did not pick the prefix tree")
	}
	if _, isPT := NewIndex(IndexConfig{KeyBits: 20, ForcePrefixTree: true}).(ptIndex); !isPT {
		t.Error("ForcePrefixTree ignored")
	}
}

func TestSyncScanMixedKinds(t *testing.T) {
	a := NewIndex(IndexConfig{KeyBits: 20})                        // KISS
	b := NewIndex(IndexConfig{KeyBits: 20, ForcePrefixTree: true}) // PT
	want := 0
	for i := uint64(0); i < 3000; i += 3 {
		a.Insert(i, nil)
	}
	for i := uint64(0); i < 3000; i += 5 {
		b.Insert(i, nil)
	}
	for i := uint64(0); i < 3000; i += 15 {
		want++
	}
	got := 0
	SyncScan(a, b, func(k uint64, va, vb *duplist.List) bool {
		if k%15 != 0 {
			t.Fatalf("phantom match %d", k)
		}
		got++
		return true
	})
	if got != want {
		t.Fatalf("mixed-kind sync scan found %d, want %d", got, want)
	}
}
