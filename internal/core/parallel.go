package core

import (
	"sync"

	"qppt/internal/duplist"
	"qppt/internal/kisstree"
	"qppt/internal/prefixtree"
)

// Intra-operator parallelism (paper Section 7).
//
// The paper identifies the prefix tree's deterministic, unbalanced shape
// as the enabler for intra-operator parallelism: because a key's position
// is fixed, the tree splits into disjoint subtrees by key range, and no
// rebalancing can ever move data between partitions mid-scan. Workers scan
// disjoint key-space partitions of the operator's main input, each builds
// a private partial output index, and the partials are merged by
// re-inserting (the aggregation fold makes merged groups exact for
// associative aggregates such as SUM and COUNT).
//
// Operators opt in through Options.Workers > 1; the default (and the
// paper's evaluation mode) stays single-threaded.

// partitionBounds splits the key space [lo, hi] into `parts` contiguous
// chunks and returns the bounds of chunk `part` (0-based). The split is by
// key *space*, matching the subtree partitioning of an unbalanced trie:
// chunk boundaries align with subtree boundaries, never with data.
func partitionBounds(lo, hi uint64, part, parts int) (uint64, uint64, bool) {
	if lo > hi || parts <= 0 || part >= parts {
		return 0, 0, false
	}
	span := hi - lo + 1 // may overflow to 0 for the full 64-bit space
	if span == 0 {
		// Full key space: split by the top bits instead.
		step := ^uint64(0)/uint64(parts) + 1
		pLo := uint64(part) * step
		pHi := pLo + step - 1
		if part == parts-1 {
			pHi = ^uint64(0)
		}
		return pLo, pHi, true
	}
	step := span / uint64(parts)
	if step == 0 {
		// Fewer keys than workers: give everything to the first chunk.
		if part == 0 {
			return lo, hi, true
		}
		return 0, 0, false
	}
	pLo := lo + uint64(part)*step
	pHi := pLo + step - 1
	if part == parts-1 {
		pHi = hi
	}
	return pLo, pHi, true
}

// intersectPred clips a selection predicate (nil = everything) to a key
// partition, returning the ranges a worker must scan. The result is never
// nil: a worker whose partition misses every range gets an empty predicate
// (scan nothing), not a nil one (scan everything).
func intersectPred(pred KeyPred, lo, hi uint64) KeyPred {
	if pred == nil {
		return KeyPred{{Lo: lo, Hi: hi}}
	}
	out := KeyPred{}
	for _, r := range pred {
		l, h := max(r.Lo, lo), min(r.Hi, hi)
		if l <= h {
			out = append(out, KeyRange{Lo: l, Hi: h})
		}
	}
	return out
}

// SyncScanPart runs the synchronous index scan restricted to worker
// `part` of `parts` key-space partitions. Partitions are disjoint and
// cover everything, so the union over all parts visits exactly the keys
// SyncScan would.
func SyncScanPart(a, b Index, part, parts int, visit func(key uint64, va, vb *duplist.List) bool) bool {
	if parts <= 1 {
		return SyncScan(a, b, visit)
	}
	aLo, aOK := a.Min()
	bLo, bOK := b.Min()
	if !aOK || !bOK {
		return true
	}
	aHi, _ := a.Max()
	bHi, _ := b.Max()
	lo, hi := max(aLo, bLo), min(aHi, bHi)
	pLo, pHi, ok := partitionBounds(lo, hi, part, parts)
	if !ok {
		return true
	}
	switch ai := a.(type) {
	case ptIndex:
		if bi, isPT := b.(ptIndex); isPT && ai.t.PrefixLen() == bi.t.PrefixLen() && ai.t.KeyBits() == bi.t.KeyBits() {
			return prefixtree.SyncScanRange(ai.t, bi.t, pLo, pHi, func(la, lb *prefixtree.Leaf) bool {
				return visit(la.Key, &la.Vals, &lb.Vals)
			})
		}
	case kissIndex:
		if bi, isKiss := b.(kissIndex); isKiss {
			return kisstree.SyncScanRange(ai.t, bi.t, pLo, pHi, func(la, lb *kisstree.Leaf) bool {
				return visit(la.Key, &la.Vals, &lb.Vals)
			})
		}
	}
	// Mixed kinds: range-scan the smaller index's partition, probe the
	// larger one.
	small, large := a, b
	swapped := false
	if b.Keys() < a.Keys() {
		small, large = b, a
		swapped = true
	}
	return small.Range(pLo, pHi, func(key uint64, vs *duplist.List) bool {
		vl := large.Lookup(key)
		if vl == nil {
			return true
		}
		if swapped {
			return visit(key, vl, vs)
		}
		return visit(key, vs, vl)
	})
}

// mergePartials folds per-worker partial outputs into the final output
// index. Aggregating outputs merge exactly because the fold is applied
// again on insert; plain outputs concatenate their duplicate rows.
func mergePartials(spec *OutputSpec, partials []*IndexedTable) *IndexedTable {
	idx := NewIndex(IndexConfig{
		KeyBits:         spec.Key.TotalBits(),
		PayloadWidth:    len(spec.Cols),
		Fold:            spec.Fold,
		ForcePrefixTree: spec.ForcePrefixTree,
		CompressKISS:    spec.CompressKISS,
		PrefixLen:       spec.PrefixLen,
	})
	keys := make([]uint64, 0, DefaultBufferSize)
	rows := make([][]uint64, 0, DefaultBufferSize)
	flush := func() {
		if len(keys) == 0 {
			return
		}
		if len(spec.Cols) == 0 {
			idx.InsertBatch(keys, nil)
		} else {
			idx.InsertBatch(keys, rows)
		}
		keys, rows = keys[:0], rows[:0]
	}
	for _, p := range partials {
		p.Idx.Iterate(func(k uint64, vals *duplist.List) bool {
			if len(spec.Cols) == 0 {
				for n := 0; n < vals.Len(); n++ {
					keys = append(keys, k)
					if len(keys) == cap(keys) {
						flush()
					}
				}
				return true
			}
			vals.Scan(func(row []uint64) bool {
				keys = append(keys, k)
				rows = append(rows, row)
				if len(keys) == cap(keys) {
					flush()
				}
				return true
			})
			return true
		})
		flush() // rows alias partial memory; flush before moving on
	}
	flush()
	return NewIndexedTable(spec.Name, spec.Key, spec.Cols, idx)
}

// runPartitioned executes `parts` workers, each producing a partial output
// through runPart(part, spec), and merges the partials.
func runPartitioned(spec *OutputSpec, parts int, runPart func(part int, spec *OutputSpec) (*IndexedTable, error)) (*IndexedTable, error) {
	partials := make([]*IndexedTable, parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			specCopy := *spec // private sink per worker
			partials[w], errs[w] = runPart(w, &specCopy)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergePartials(spec, partials), nil
}
