package core

import (
	"qppt/internal/arena"
	"qppt/internal/duplist"
	"qppt/internal/kisstree"
	"qppt/internal/prefixtree"
	"qppt/internal/spill"
)

// Intra-operator parallelism (paper Section 7).
//
// The paper identifies the prefix tree's deterministic, unbalanced shape
// as the enabler for intra-operator parallelism: because a key's position
// is fixed, the tree splits into disjoint subtrees by key range, and no
// rebalancing can ever move data between partitions mid-scan.
//
// Execution is morsel-driven (see scheduler.go): the operator's input key
// space is split into many small morsels that idle pool workers steal.
// Each pool worker scans its morsels into a private partial output index,
// and the partials are combined by a parallel partition-wise merge: the
// *output* key space is split into disjoint ranges and all partials are
// merged per range concurrently — safe because a key's position in the
// prefix tree is deterministic, so disjoint output ranges never share a
// subtree. Aggregating outputs merge exactly (the fold is applied again
// on insert); plain outputs concatenate their duplicate rows.
//
// Operators opt in through Options.Workers > 1; the default (and the
// paper's evaluation mode) stays single-threaded.

// partitionBounds splits the key space [lo, hi] into `parts` contiguous
// chunks and returns the bounds of chunk `part` (0-based). The split is by
// key *space*, matching the subtree partitioning of an unbalanced trie:
// chunk boundaries align with subtree boundaries, never with data. The
// same function produces both the scan morsels and the merge partitions.
func partitionBounds(lo, hi uint64, part, parts int) (uint64, uint64, bool) {
	if lo > hi || parts <= 0 || part >= parts {
		return 0, 0, false
	}
	span := hi - lo + 1 // may overflow to 0 for the full 64-bit space
	if span == 0 {
		// Full key space: split by the top bits instead.
		step := ^uint64(0)/uint64(parts) + 1
		pLo := uint64(part) * step
		pHi := pLo + step - 1
		if part == parts-1 {
			pHi = ^uint64(0)
		}
		return pLo, pHi, true
	}
	step := span / uint64(parts)
	if step == 0 {
		// Fewer keys than morsels: give everything to the first chunk.
		if part == 0 {
			return lo, hi, true
		}
		return 0, 0, false
	}
	pLo := lo + uint64(part)*step
	pHi := pLo + step - 1
	if part == parts-1 {
		pHi = hi
	}
	return pLo, pHi, true
}

// intersectPred clips a selection predicate (nil = everything) to a key
// partition, returning the ranges a worker must scan. The result is never
// nil: a worker whose partition misses every range gets an empty predicate
// (scan nothing), not a nil one (scan everything).
func intersectPred(pred KeyPred, lo, hi uint64) KeyPred {
	if pred == nil {
		return KeyPred{{Lo: lo, Hi: hi}}
	}
	out := KeyPred{}
	for _, r := range pred {
		l, h := max(r.Lo, lo), min(r.Hi, hi)
		if l <= h {
			out = append(out, KeyRange{Lo: l, Hi: h})
		}
	}
	return out
}

// syncScanKeyRange runs the synchronous index scan restricted to keys in
// [lo, hi], using the native skip-scan kernels where the index kinds allow
// them and the iterate-small/probe-large fallback otherwise.
func syncScanKeyRange(a, b Index, lo, hi uint64, visit func(key uint64, va, vb *duplist.List) bool) bool {
	switch ai := a.(type) {
	case ptIndex:
		if bi, isPT := b.(ptIndex); isPT && ai.t.PrefixLen() == bi.t.PrefixLen() && ai.t.KeyBits() == bi.t.KeyBits() {
			return prefixtree.SyncScanRange(ai.t, bi.t, lo, hi, func(la, lb *prefixtree.Leaf) bool {
				return visit(la.Key, &la.Vals, &lb.Vals)
			})
		}
	case kissIndex:
		if bi, isKiss := b.(kissIndex); isKiss {
			return kisstree.SyncScanRange(ai.t, bi.t, lo, hi, func(la, lb *kisstree.Leaf) bool {
				return visit(la.Key, &la.Vals, &lb.Vals)
			})
		}
	}
	// Mixed kinds: range-scan the smaller index's partition, probe the
	// larger one.
	small, large := a, b
	swapped := false
	if b.Keys() < a.Keys() {
		small, large = b, a
		swapped = true
	}
	return small.Range(lo, hi, func(key uint64, vs *duplist.List) bool {
		vl := large.Lookup(key)
		if vl == nil {
			return true
		}
		if swapped {
			return visit(key, vl, vs)
		}
		return visit(key, vs, vl)
	})
}

// syncScanBounds reports the key interval both indexes can contribute to,
// ok == false when either index is empty or the intervals are disjoint.
func syncScanBounds(a, b Index) (uint64, uint64, bool) {
	aLo, aOK := a.Min()
	bLo, bOK := b.Min()
	if !aOK || !bOK {
		return 0, 0, false
	}
	aHi, _ := a.Max()
	bHi, _ := b.Max()
	lo, hi := max(aLo, bLo), min(aHi, bHi)
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// idxBounds reports an index's key interval, ok == false when empty.
func idxBounds(idx Index) (uint64, uint64, bool) {
	lo, ok := idx.Min()
	if !ok {
		return 0, 0, false
	}
	hi, _ := idx.Max()
	return lo, hi, true
}

// keySpaceMax is the largest representable key for a key width.
func keySpaceMax(bits uint) uint64 {
	if bits == 0 || bits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<bits - 1
}

// scanFn feeds the input keys in [lo, hi] through a worker's pipeline
// (whole == true means the morsel covers the full input, letting the
// operator keep its unclipped fast path); boundsFn reports the operator's
// morsel interval (ok == false when there is nothing to scan).
type scanFn = func(p *pipeline, lo, hi uint64, whole bool)
type boundsFn = func() (uint64, uint64, bool)

// runMorsels drives one operator's scan as work-stealing morsels on the
// plan's shared pool. newPart builds a fresh pipeline + output table pair
// (one per pool worker, created lazily when the worker claims its first
// non-empty morsel) whose output index draws chunks from the given
// recycler — each pool worker gets its worker-local pool so partials stay
// cache-warm and uncontended; scan feeds the input keys in [lo, hi]
// through the worker's pipeline. The per-worker partial outputs are then
// combined with the parallel partition-wise merge. With a single worker
// the lone partial is the output itself and execution degenerates to the
// paper's single-threaded mode.
func runMorsels(ec *ExecContext, spec *OutputSpec,
	bounds boundsFn,
	newPart func(spec *OutputSpec, rec *arena.Recycler) (*pipeline, *IndexedTable, error),
	scan scanFn,
) (*IndexedTable, error) {
	sched := ec.scheduler()
	empty := func() (*IndexedTable, error) {
		p, out, err := newPart(spec, ec.rec)
		if err != nil {
			return nil, err
		}
		p.finish()
		ec.noteSink(p)
		return out, nil
	}
	lo, hi, ok := bounds()
	if !ok {
		return empty()
	}
	workers := sched.Workers()
	morsels := 1
	if workers > 1 {
		morsels = workers * ec.morselsPerWorker()
	}
	pipes := make([]*pipeline, workers)
	outs := make([]*IndexedTable, workers)
	err := sched.ForEachWorker(morsels, func(w, m int) error {
		if err := ec.err(); err != nil {
			return err // cancelled: stop claiming morsels
		}
		mLo, mHi, ok := partitionBounds(lo, hi, m, morsels)
		if !ok {
			return nil
		}
		p := pipes[w]
		if p == nil {
			specCopy := *spec // private sink per worker partial
			var err error
			p, outs[w], err = newPart(&specCopy, ec.workerRec(w))
			if err != nil {
				return err
			}
			pipes[w] = p
		}
		scan(p, mLo, mHi, morsels == 1)
		if err := ec.err(); err != nil {
			return err // the scan itself may have been aborted mid-morsel
		}
		p.morsels++
		return nil
	})
	if err != nil {
		return nil, err
	}
	var partials []*IndexedTable
	for w, p := range pipes {
		if p == nil {
			continue
		}
		p.finish()
		ec.noteSink(p)
		partials = append(partials, outs[w])
	}
	switch len(partials) {
	case 0:
		return empty()
	case 1:
		// One worker claimed every non-empty morsel: its partial already is
		// the complete output.
		return partials[0], nil
	}
	out, err := mergePartialsParallel(ec, spec, partials)
	if err != nil {
		return nil, err
	}
	// The per-worker partials are dead the moment the merge re-inserted
	// their rows (the output owns copies); with a recycler their chunks
	// immediately feed the next allocations instead of the GC.
	if ec.rec != nil {
		for _, p := range partials {
			if rc, ok := p.Idx.(chunkRecycler); ok {
				rc.Recycle()
			}
		}
	}
	return out, nil
}

// mergeRangeInto folds the [lo, hi] slice of every partial into idx, in
// partial order. Aggregating outputs merge exactly because the fold is
// applied again on insert; plain outputs concatenate their duplicate rows.
// The merge polls ec on the abortTickMask cadence (one check per 1024
// entries) and returns the cancellation error — a large merge range must
// not keep folding rows into an output nobody will read. ec may be nil
// (non-cancellable).
func mergeRangeInto(ec *ExecContext, idx Index, spec *OutputSpec, partials []*IndexedTable, lo, hi uint64) error {
	keys := make([]uint64, 0, DefaultBufferSize)
	rows := make([][]uint64, 0, DefaultBufferSize)
	ticks, cancelled := 0, false
	poll := func() bool { // reports whether the merge must stop
		ticks++
		if ticks&abortTickMask != 0 {
			return cancelled
		}
		if ec != nil && ec.err() != nil {
			cancelled = true
		}
		return cancelled
	}
	flush := func() {
		if len(keys) == 0 {
			return
		}
		if len(spec.Cols) == 0 {
			idx.InsertBatch(keys, nil)
		} else {
			idx.InsertBatch(keys, rows)
		}
		keys, rows = keys[:0], rows[:0]
	}
	for _, p := range partials {
		if cancelled {
			break
		}
		p.Idx.Range(lo, hi, func(k uint64, vals *duplist.List) bool {
			if poll() {
				return false
			}
			if len(spec.Cols) == 0 {
				for n := 0; n < vals.Len(); n++ {
					keys = append(keys, k)
					if len(keys) == cap(keys) {
						flush()
					}
				}
				return true
			}
			vals.Scan(func(row []uint64) bool {
				keys = append(keys, k)
				rows = append(rows, row)
				if len(keys) == cap(keys) {
					flush()
				}
				return true
			})
			return true
		})
		flush() // rows alias partial memory; flush before moving on
	}
	flush()
	if cancelled {
		return ec.err()
	}
	return nil
}

// newOutputIndex creates the output index structure an OutputSpec asks
// for, drawing chunk storage from the plan recycler when one is active.
func newOutputIndex(spec *OutputSpec, rec *arena.Recycler) Index {
	return NewIndex(IndexConfig{
		KeyBits:         spec.Key.TotalBits(),
		PayloadWidth:    len(spec.Cols),
		Fold:            spec.Fold,
		ForcePrefixTree: spec.ForcePrefixTree,
		CompressKISS:    spec.CompressKISS,
		PrefixLen:       spec.PrefixLen,
		Recycler:        rec,
	})
}

// mergePartials is the sequential merge baseline: it folds per-worker
// partial outputs into one final output index by re-insertion, scanning
// the partials one after another over the full key space. ec may be nil
// (non-cancellable); a cancelled merge returns the context's error.
func mergePartials(ec *ExecContext, spec *OutputSpec, partials []*IndexedTable, rec *arena.Recycler) (*IndexedTable, error) {
	idx := newOutputIndex(spec, rec)
	if err := mergeRangeInto(ec, idx, spec, partials, 0, keySpaceMax(spec.Key.TotalBits())); err != nil {
		return nil, err
	}
	return NewIndexedTable(spec.Name, spec.Key, spec.Cols, idx), nil
}

// parallelMergeMinKeys gates the parallel merge: below this many output
// rows the sequential re-insert wins on setup cost.
const parallelMergeMinKeys = 4096

// mergePartialsParallel is the parallel partition-wise merge: it splits
// the output key space into disjoint ranges (one per merge task, aligned
// to prefix-subtree boundaries like the scan morsels) and merges all
// partials per range concurrently on the shared pool, producing a
// range-sharded output index. Disjoint output ranges never touch the same
// subtree, so the per-range merge tasks need no synchronization. The only
// error a merge task can return is the query context's cancellation.
func mergePartialsParallel(ec *ExecContext, spec *OutputSpec, partials []*IndexedTable) (*IndexedTable, error) {
	sched := ec.scheduler()
	total := 0
	for _, p := range partials {
		total += p.Idx.Rows()
	}
	if !sched.parallel() || total < parallelMergeMinKeys {
		return mergePartials(ec, spec, partials, ec.rec)
	}
	var lo, hi uint64
	any := false
	for _, p := range partials {
		l, ok := p.Idx.Min()
		if !ok {
			continue
		}
		h, _ := p.Idx.Max()
		if !any || l < lo {
			lo = l
		}
		if !any || h > hi {
			hi = h
		}
		any = true
	}
	if !any {
		return mergePartials(ec, spec, partials, ec.rec)
	}
	// Two ranges per worker give the claiming loops room to balance ranges
	// of uneven density without fragmenting the output into many shards.
	parts := sched.Workers() * 2
	var los, his []uint64
	for r := 0; r < parts; r++ {
		rLo, rHi, ok := partitionBounds(lo, hi, r, parts)
		if !ok {
			continue
		}
		los = append(los, rLo)
		his = append(his, rHi)
	}
	if len(los) < 2 {
		return mergePartials(ec, spec, partials, ec.rec)
	}
	// Under a memory budget the worker partials are spillable state like
	// any other intermediate: register them with the manager (all or
	// nothing — an unfreezable index kind keeps every partial resident)
	// so a large merge does not hold the full partial population resident.
	// Each merge task then pins just its key range of every partial, in
	// registration (Seq) order — ordered acquisition keeps the pin waits
	// cycle-free across concurrent merge tasks and operator resolves.
	var phs []*spill.Handle
	if ec.spill != nil {
		phs = make([]*spill.Handle, len(partials))
		for i, p := range partials {
			fz := freezerOf(p.Idx)
			if fz == nil {
				for _, h := range phs[:i] {
					h.Drop()
				}
				phs = nil
				break
			}
			phs[i] = ec.spill.Register("partial:"+spec.Name, fz, p.Idx.Bytes)
		}
	}
	shards := make([]Index, len(los))
	err := sched.ForEachWorker(len(shards), func(_, r int) error {
		if err := ec.err(); err != nil {
			return err // cancelled: stop claiming merge ranges
		}
		for i, h := range phs {
			//qpptvet:ignore pinbalance loop pins are balanced by the Unpin loop after the merge and the phs[:i] cleanup on error
			if err := h.PinRangeCtx(ec.ctx, los[r], his[r]); err != nil {
				for _, ph := range phs[:i] {
					ph.Unpin()
				}
				return err
			}
		}
		idx := newOutputIndex(spec, ec.rec)
		mergeErr := mergeRangeInto(ec, idx, spec, partials, los[r], his[r])
		for _, h := range phs {
			h.Unpin()
		}
		if mergeErr != nil {
			return mergeErr
		}
		shards[r] = idx
		return nil
	})
	if phs != nil {
		// The partials die with this merge; fold their freeze/thaw
		// traffic into the operator's statistics before dropping them.
		spills, restores := 0, 0
		for _, h := range phs {
			s, r := h.Counts()
			spills, restores = spills+s, restores+r
			h.Drop()
		}
		ec.noteSpill(spills, restores)
	}
	if err != nil {
		return nil, err
	}
	// Extend the edge shards so the sharded index routes the full key
	// space, not just the observed interval.
	los[0] = 0
	his[len(his)-1] = keySpaceMax(spec.Key.TotalBits())
	sh := newShardedIndex(shards, los, his, spec.Key.TotalBits())
	return NewIndexedTable(spec.Name, spec.Key, spec.Cols, sh), nil
}
