package core

import (
	"fmt"
	"time"

	"qppt/internal/arena"
)

// Pipeline fusion (ROADMAP "fuse pipelines across single-consumer
// edges"). QPPT's decomposed-plan model materializes a full prefix-tree
// index for every operator output. That is pure overhead when the output
// has exactly one consumer that immediately re-streams it through its own
// pipeline: the index is built, scanned once, and dropped. Fusion detects
// maximal runs of such edges (fuseChain) and executes each run as ONE
// morsel-driven stage — the bottom link drives its native scan over its
// own key-range morsels, every upper link consumes the combinations as a
// stream through its probe pipeline (sink.forward), and only the top link
// materializes an output index. No arena chunks are allocated for the
// bypassed intermediates, nothing is registered with the spill manager,
// and no partial merge happens below the top.
//
// Fusion degrades gracefully: an edge stays materialized when the
// producer output is multi-consumer (the index is genuinely shared),
// aggregating (the fold must see the whole multiset before the consumer
// reads it), or feeds a consumer that needs indexed access —
// Selection/Having consumers scan key ranges (and drive the partial-thaw
// optimization), Join/Intersect consumers need a single-field probe key,
// UnionDistinct iterates both inputs. Options.NoFuse turns the whole
// mechanism off.
//
// Streaming preserves the materialized semantics exactly: the bypassed
// index would have held one entry per assembled combination (existence-
// only outputs preserve multiplicity through their duplicate-list
// length), and the consumer's scan/probe path visits each entry once —
// so forwarding each assembled combination directly yields the same
// multiset. Only the arrival ORDER at the top sink differs (producer-scan
// order instead of output key order), which is invisible to folded
// outputs and to any consumer that does not rely on intra-key duplicate
// row order — the same caveat morsel parallelism already carries.

// A fuseChain is one maximal run of single-consumer edges executed as a
// single stage. links runs bottom → top; ords[i] is the input ordinal of
// links[i] that links[i-1] streams into (ords[0] = -1: the bottom drives
// its own scan). Only the top link materializes.
type fuseChain struct {
	links []Operator
	ords  []int
}

func (ch *fuseChain) top() Operator { return ch.links[len(ch.links)-1] }

// FusableEdges reports how many producer→consumer edges pipeline fusion
// skips when the plan rooted at root runs with fusion on — the number of
// intermediate indexes never built. Planning surfaces (prepared
// statements, EXPLAIN-style tooling) use it to annotate a plan without
// executing it.
func FusableEdges(root Operator) int {
	uses := make(map[Operator]int)
	countUses(root, uses)
	uses[root]++ // the caller consumes the result, matching RunCtx
	n := 0
	for _, ch := range buildChains(root, uses) {
		n += len(ch.links) - 1
	}
	return n
}

// fuseSpec returns a fusable operator's output spec (nil for kinds fusion
// never touches).
func fuseSpec(op Operator) *OutputSpec {
	switch p := op.(type) {
	case *Selection:
		return &p.Out
	case *Join:
		return &p.Out
	case *SelectJoin:
		return &p.Out
	case *Intersect:
		return &p.Out
	}
	return nil
}

// fusableProducer reports whether op's output may be streamed instead of
// materialized: a single-consumer, non-aggregating Selection, Join,
// SelectJoin or Intersect. Folding outputs must materialize — the fold
// collapses the multiset per key, and the consumer must see the collapsed
// rows, not the raw combinations.
func fusableProducer(op Operator, uses map[Operator]int) bool {
	if uses[op] != 1 {
		return false
	}
	spec := fuseSpec(op)
	return spec != nil && spec.Fold == nil
}

// fuseCands reports which input ordinals of a consumer can accept a fused
// stream, and whether the producer's output key must be a single field.
// Join and Intersect replace the synchronous scan with a probe of the
// other main, keyed by one context slot — so the fused main's key must be
// single-attribute. SelectJoin matches its predicate on the raw (possibly
// composed) key, so any arity works. Selection (= Having) is deliberately
// absent: it scans its input by key range, which both the paper's model
// and the partial-thaw optimization rely on.
func fuseCands(op Operator) (ords []int, needSingleKey bool) {
	switch op.(type) {
	case *Join:
		return []int{0, 1}, true
	case *SelectJoin:
		return []int{0}, false
	case *Intersect:
		return []int{0, 1}, true
	}
	return nil, false
}

// chainAt grows the longest fusable chain ending at top, following at
// most one fused edge per consumer (the first qualifying candidate
// ordinal). Returns nil when no edge into top fuses.
func chainAt(top Operator, uses map[Operator]int) *fuseChain {
	type edge struct {
		child Operator
		ord   int
	}
	var edges []edge // collected top-down
	cur := top
	for {
		cands, needSingle := fuseCands(cur)
		var child Operator
		ord := -1
		children := cur.Children()
		for _, o := range cands {
			c := children[o]
			if !fusableProducer(c, uses) {
				continue
			}
			if needSingle && len(fuseSpec(c).Key.Attrs) != 1 {
				continue
			}
			child, ord = c, o
			break
		}
		if child == nil {
			break
		}
		edges = append(edges, edge{child: child, ord: ord})
		cur = child
	}
	n := len(edges)
	if n == 0 {
		return nil
	}
	ch := &fuseChain{links: make([]Operator, n+1), ords: make([]int, n+1)}
	ch.ords[0] = -1
	for k := 0; k < n; k++ {
		ch.links[k] = edges[n-1-k].child
	}
	ch.links[n] = top
	for k := 1; k <= n; k++ {
		ch.ords[k] = edges[n-k].ord
	}
	return ch
}

// buildChains walks the plan once and returns every fused chain, keyed by
// its top link — the operator the executor resolves; the links below it
// are bypassed and never resolved on their own.
func buildChains(root Operator, uses map[Operator]int) map[Operator]*fuseChain {
	chains := make(map[Operator]*fuseChain)
	seen := make(map[Operator]bool)
	var walk func(op Operator)
	walk = func(op Operator) {
		if seen[op] {
			return
		}
		seen[op] = true
		if ch := chainAt(op, uses); ch != nil {
			chains[op] = ch
			// Recurse only into the inputs that stay materialized; the
			// fused links belong to this chain.
			for i, l := range ch.links {
				for o, c := range l.Children() {
					if i > 0 && o == ch.ords[i] {
						continue
					}
					walk(c)
				}
			}
			return
		}
		for _, c := range op.Children() {
			walk(c)
		}
	}
	walk(root)
	return chains
}

// predMatch reports whether key k satisfies a selection predicate,
// matching feedScan's range semantics: a nil predicate accepts
// everything, an empty non-nil one nothing.
func predMatch(pred KeyPred, k uint64) bool {
	if pred == nil {
		return true
	}
	for _, r := range pred {
		if k >= r.Lo && k <= r.Hi {
			return true
		}
	}
	return false
}

// fusedPipe builds the pipeline through which a fused consumer receives
// the producer's streamed combinations, and returns the accept hook the
// producer's forwarding sink calls with each assembled (key, row) pair.
// inputs[fo] is a shape placeholder for the bypassed intermediate — it
// fixes the context layout but is never scanned or probed.
func fusedPipe(ec *ExecContext, op Operator, fo int, inputs []*IndexedTable) (*pipeline, func(k uint64, row []uint64), error) {
	switch c := op.(type) {
	case *Join:
		return fusedJoinPipe(ec, c, fo, inputs)
	case *Intersect:
		return fusedJoinPipe(ec, c.asJoin(), fo, inputs)
	case *SelectJoin:
		p, err := c.pipe(ec, inputs)
		if err != nil {
			return nil, nil, err
		}
		comp := inputs[0].Key.Composer()
		ctx := make([]uint64, p.layout.width)
		pred := c.Pred
		accept := func(k uint64, row []uint64) {
			// The selection predicate on the streamed key stands in for
			// the key-range scan of the materialized path; feed then
			// applies the selection residual before the main probe.
			if !predMatch(pred, k) || p.aborted() {
				return
			}
			p.layout.fillKey(ctx, 0, k, comp)
			p.layout.fillRow(ctx, 0, row)
			p.feed(ctx)
		}
		return p, accept, nil
	}
	return nil, nil, fmt.Errorf("core: operator %s cannot consume a fused stream", op.Label())
}

// fusedJoinPipe replaces the join's synchronous scan: the fused main (at
// ordinal fo) streams in and the other main becomes probe stage 0, keyed
// by the streamed main's (single-field) key. Assists follow as stages 1+,
// and the join residual — which the materialized path applies after both
// mains are filled, before any assist — runs on entry to stage 1.
func fusedJoinPipe(ec *ExecContext, j *Join, fo int, inputs []*IndexedTable) (*pipeline, func(k uint64, row []uint64), error) {
	layout := newCtxLayout(inputs...)
	p := newPipeline(ec, layout)
	p.addProbe(1-fo, layout.keyOff(fo, 0))
	for i, a := range j.Assists {
		off, err := layout.resolve(a.ProbeWith)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s assist %d: %w", j.Label(), i, err)
		}
		p.addProbe(2+i, off)
	}
	p.setFilter(1, j.Residual)
	ctx := make([]uint64, layout.width)
	accept := func(k uint64, row []uint64) {
		if p.aborted() {
			return
		}
		p.layout.fillKey(ctx, fo, k, nil) // single-field key: no composer
		p.layout.fillRow(ctx, fo, row)
		p.feedStage(0, ctx)
	}
	return p, accept, nil
}

// bottomPipe builds the chain bottom's native combination pipeline; the
// driver attaches the forwarding sink.
func bottomPipe(ec *ExecContext, op Operator, inputs []*IndexedTable) (*pipeline, error) {
	switch b := op.(type) {
	case *Selection:
		return b.pipe(ec, inputs)
	case *Join:
		return b.pipe(ec, inputs)
	case *SelectJoin:
		return b.pipe(ec, inputs)
	case *Intersect:
		return b.asJoin().pipe(ec, inputs)
	}
	return nil, fmt.Errorf("core: operator %s cannot drive a fused chain", op.Label())
}

// bottomScan returns the chain bottom's native morsel scan and bounds.
func bottomScan(op Operator, inputs []*IndexedTable) (scanFn, boundsFn, error) {
	switch b := op.(type) {
	case *Selection:
		return b.scan(inputs), b.bounds(inputs), nil
	case *Join:
		return b.scan(inputs), b.bounds(inputs), nil
	case *SelectJoin:
		return b.scan(inputs), b.bounds(inputs), nil
	case *Intersect:
		j := b.asJoin()
		return j.scan(inputs), j.bounds(inputs), nil
	}
	return nil, nil, fmt.Errorf("core: operator %s cannot drive a fused chain", op.Label())
}

// runChain executes one fused chain inside the top link's memo entry:
// resolve the materialized inputs of every link, pin whatever of them is
// spilled, run the chain as one morsel-driven stage, then register the
// top output and release the consumed inputs — exactly what resolve does
// around a single operator, widened to the whole chain.
func (ex *executor) runChain(ch *fuseChain, e *memoEntry, stats *PlanStats) {
	n := len(ch.links)
	childOf := make([][]Operator, n)
	inputsOf := make([][]*IndexedTable, n)
	type slot struct{ link, ord int }
	var slots []slot
	for i, l := range ch.links {
		cs := l.Children()
		childOf[i] = cs
		inputsOf[i] = make([]*IndexedTable, len(cs))
		for o := range cs {
			if i > 0 && o == ch.ords[i] {
				continue // the fused edge: no materialized input
			}
			slots = append(slots, slot{i, o})
		}
	}
	resolveSlot := func(s slot) error {
		in, err := ex.resolve(childOf[s.link][s.ord], stats)
		inputsOf[s.link][s.ord] = in
		return err
	}
	if ex.sched.parallel() && len(slots) > 1 {
		ops := make([]Operator, len(slots))
		for i, s := range slots {
			ops[i] = childOf[s.link][s.ord]
		}
		tasks := make([]func() error, len(slots))
		for t, oi := range ex.frostOrder(ops) {
			s := slots[oi]
			tasks[t] = func() error { return resolveSlot(s) }
		}
		if err := ex.sched.Fork(tasks...); err != nil {
			e.err = err
			return
		}
	} else {
		for _, s := range slots {
			if err := resolveSlot(s); err != nil {
				e.err = err
				return
			}
		}
	}
	// The bypassed edges get shape placeholders: the skipped
	// intermediate's key spec and column layout with no index behind it.
	for i := 1; i < n; i++ {
		inputsOf[i][ch.ords[i]] = fuseSpec(ch.links[i-1]).ShapeOf()
	}
	sets := make([]pinSet, n)
	for i, l := range ch.links {
		sets[i] = pinSet{op: l, inputs: inputsOf[i]}
	}
	pinned, err := ex.pinInputs(sets)
	if err != nil {
		e.err = err
		return
	}
	// One ExecContext per link, so the stream's combination counts and
	// probe lookups attribute to the operator that produced them instead
	// of lumping into the top's statistics.
	ecs := make([]*ExecContext, n)
	for i, l := range ch.links {
		ec := &ExecContext{ctx: ex.ctx, opts: ex.opts, sched: ex.sched,
			rec: ex.rec, wrecs: ex.wrecs, spill: ex.spill}
		if stats != nil {
			st := &OperatorStats{Label: l.Label(), Fused: i < n-1}
			ec.opStats = st
			if i < n-1 {
				e.pre = append(e.pre, st)
			} else {
				e.st = st
			}
		}
		ecs[i] = ec
	}
	t0 := time.Now()
	e.out, e.err = ex.driveChain(ch, ecs, inputsOf)
	if e.err == nil {
		// A scan aborted by cancellation can surface a partial output;
		// never memoize it as a valid result.
		e.err = ex.ctx.Err()
	}
	if e.err == nil && e.st != nil {
		// The links execute as one interleaved stage; each reports the
		// chain's wall time, with IndexTime (and so MaterializeTime)
		// still per link — only the top ever indexes.
		elapsed := time.Since(t0)
		for _, ec := range ecs {
			ec.opStats.Time = elapsed
			ec.opStats.MaterializeTime = elapsed - ec.opStats.IndexTime
		}
		e.st.OutRows = e.out.Rows()
		e.st.OutKeys = e.out.Keys()
		e.st.OutBytes = e.out.Idx.Bytes()
	}
	for _, h := range pinned {
		h.Unpin()
	}
	ex.mu.Lock()
	ex.fusedEdges += n - 1
	if ex.doneOut != nil && e.err == nil {
		ex.doneOut[ch.top()] = e.out
	}
	ex.mu.Unlock()
	if ex.spill != nil && e.err == nil {
		if fz := freezerOf(e.out.Idx); fz != nil {
			h := ex.spill.Register(ch.top().Label(), fz, e.out.Idx.Bytes)
			ex.mu.Lock()
			ex.handles[e.out] = h
			ex.mu.Unlock()
		}
	}
	if ex.uses != nil && e.err == nil {
		for i := range ch.links {
			for o, c := range childOf[i] {
				if i > 0 && o == ch.ords[i] {
					continue
				}
				ex.releaseInput(c, inputsOf[i][o])
			}
		}
	}
}

// driveChain runs the fused chain as one morsel-driven stage: per pool
// worker one stack of pipelines (the bottom's native pipe, fused consumer
// pipes above it, the top's materializing sink), the bottom's native scan
// claiming key-range morsels, and the top partials combined with the
// parallel partition-wise merge — the exact shape of runMorsels with a
// pipeline stack in place of the single pipeline.
func (ex *executor) driveChain(ch *fuseChain, ecs []*ExecContext, inputsOf [][]*IndexedTable) (*IndexedTable, error) {
	n := len(ch.links)
	spec := fuseSpec(ch.top())
	scan, bounds, err := bottomScan(ch.links[0], inputsOf[0])
	if err != nil {
		return nil, err
	}
	// newStack builds one worker's pipeline stack, wiring each link's
	// forwarding sink to the accept hook of the link above, top-down.
	newStack := func(sinkSpec *OutputSpec, rec *arena.Recycler) ([]*pipeline, *IndexedTable, error) {
		pipes := make([]*pipeline, n)
		var accept func(k uint64, row []uint64)
		var out *IndexedTable
		for i := n - 1; i >= 1; i-- {
			p, acc, err := fusedPipe(ecs[i], ch.links[i], ch.ords[i], inputsOf[i])
			if err != nil {
				return nil, nil, err
			}
			if i == n-1 {
				p.rec = rec
				if out, err = p.setSink(sinkSpec); err != nil {
					return nil, nil, err
				}
			} else if err = p.setForward(fuseSpec(ch.links[i]), accept); err != nil {
				return nil, nil, err
			}
			pipes[i] = p
			accept = acc
		}
		p0, err := bottomPipe(ecs[0], ch.links[0], inputsOf[0])
		if err != nil {
			return nil, nil, err
		}
		if err := p0.setForward(fuseSpec(ch.links[0]), accept); err != nil {
			return nil, nil, err
		}
		pipes[0] = p0
		return pipes, out, nil
	}
	finish := func(pipes []*pipeline) {
		for i, p := range pipes { // bottom → top: buffered combinations cascade upward
			p.finish()
			ecs[i].noteSink(p)
		}
	}
	topEC := ecs[n-1]
	sched := topEC.scheduler()
	empty := func() (*IndexedTable, error) {
		pipes, out, err := newStack(spec, topEC.rec)
		if err != nil {
			return nil, err
		}
		finish(pipes)
		return out, nil
	}
	lo, hi, ok := bounds()
	if !ok {
		return empty()
	}
	workers := sched.Workers()
	morsels := 1
	if workers > 1 {
		morsels = workers * topEC.morselsPerWorker()
	}
	stacks := make([][]*pipeline, workers)
	outs := make([]*IndexedTable, workers)
	err = sched.ForEachWorker(morsels, func(w, m int) error {
		if err := topEC.err(); err != nil {
			return err // cancelled: stop claiming morsels
		}
		mLo, mHi, ok := partitionBounds(lo, hi, m, morsels)
		if !ok {
			return nil
		}
		pipes := stacks[w]
		if pipes == nil {
			specCopy := *spec // private sink per worker partial
			var err error
			pipes, outs[w], err = newStack(&specCopy, topEC.workerRec(w))
			if err != nil {
				return err
			}
			stacks[w] = pipes
		}
		scan(pipes[0], mLo, mHi, morsels == 1)
		if err := topEC.err(); err != nil {
			return err // the scan itself may have been aborted mid-morsel
		}
		for _, p := range pipes {
			p.morsels++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var partials []*IndexedTable
	for w, pipes := range stacks {
		if pipes == nil {
			continue
		}
		finish(pipes)
		partials = append(partials, outs[w])
	}
	switch len(partials) {
	case 0:
		return empty()
	case 1:
		return partials[0], nil
	}
	out, err := mergePartialsParallel(topEC, spec, partials)
	if err != nil {
		return nil, err
	}
	if topEC.rec != nil {
		for _, p := range partials {
			if rc, ok := p.Idx.(chunkRecycler); ok {
				rc.Recycle()
			}
		}
	}
	return out, nil
}
