package core

import (
	"fmt"
	"time"

	"qppt/internal/arena"
)

// Pipeline fusion (ROADMAP "fuse pipelines across single-consumer
// edges"). QPPT's decomposed-plan model materializes a full prefix-tree
// index for every operator output. That is pure overhead when the output
// has exactly one consumer that immediately re-streams it through its own
// pipeline: the index is built, scanned once, and dropped. Fusion detects
// maximal runs of such edges (fuseChain) and executes each run as ONE
// morsel-driven stage — the bottom link drives its native scan over its
// own key-range morsels, every upper link consumes the combinations as a
// stream through its probe pipeline (sink.forward), and only the top link
// materializes an output index. No arena chunks are allocated for the
// bypassed intermediates, nothing is registered with the spill manager,
// and no partial merge happens below the top.
//
// Fusion degrades gracefully: an edge stays materialized when the
// producer output is multi-consumer (the index is genuinely shared),
// aggregating (the fold must see the whole multiset before the consumer
// reads it), or feeds a consumer fusion cannot stream into —
// Join/Intersect consumers need a single-field probe key, UnionDistinct
// iterates both inputs. Options.NoFuse turns the whole mechanism off.
//
// Fused links forward in batches (Options.ProbeBatch): each link's
// probe buffer accumulates assembled combinations and hands them to the
// link above key-sorted, so the consumer's batched index probes and
// inserts walk shared tree descents once per batch instead of once per
// combination — the vector-at-a-time processing the paper's batch
// algorithms are built for, inside a morsel-driven stage. Sorting is
// adaptive: a batch is sorted only when the consumer can amortize it — a
// probing consumer whose probe target is deep enough (probeSortMinKeys)
// — and only when it does not already arrive in key order; range-stream
// consumers and shallow probe targets get the batch in arrival order,
// keeping the batch machinery's overhead to the buffer copy.
//
// Selection/Having consumers fuse as *range streams*: the producer's
// key-sorted batches stand in for the ordered key-range scan the
// materialized path would run, the selection applies its predicate on
// the stream (predMatch), and — when every link below forwards the scan
// key unchanged — the predicate envelope additionally clips the bottom
// link's scan bounds (chainEnvelope), so out-of-range keys are never
// even produced. The partial-thaw optimization a materialized Selection
// input would drive is moot here: the bypassed intermediate is never
// built, so there is nothing to freeze or thaw.
//
// Streaming preserves the materialized semantics exactly: the bypassed
// index would have held one entry per assembled combination (existence-
// only outputs preserve multiplicity through their duplicate-list
// length), and the consumer's scan/probe path visits each entry once —
// so forwarding each assembled combination directly yields the same
// multiset. Only the arrival ORDER at the top sink differs (producer-scan
// order instead of output key order), which is invisible to folded
// outputs and to any consumer that does not rely on intra-key duplicate
// row order — the same caveat morsel parallelism already carries.

// A fuseChain is one maximal run of single-consumer edges executed as a
// single stage. links runs bottom → top; ords[i] is the input ordinal of
// links[i] that links[i-1] streams into (ords[0] = -1: the bottom drives
// its own scan). Only the top link materializes.
type fuseChain struct {
	links []Operator
	ords  []int
}

func (ch *fuseChain) top() Operator { return ch.links[len(ch.links)-1] }

// FusableEdges reports how many producer→consumer edges pipeline fusion
// skips when the plan rooted at root runs with fusion on — the number of
// intermediate indexes never built. Planning surfaces (prepared
// statements, EXPLAIN-style tooling) use it to annotate a plan without
// executing it.
func FusableEdges(root Operator) int {
	uses := make(map[Operator]int)
	countUses(root, uses)
	uses[root]++ // the caller consumes the result, matching RunCtx
	n := 0
	for _, ch := range buildChains(root, uses) {
		n += len(ch.links) - 1
	}
	return n
}

// fuseSpec returns a fusable operator's output spec (nil for kinds fusion
// never touches).
func fuseSpec(op Operator) *OutputSpec {
	switch p := op.(type) {
	case *Selection:
		return &p.Out
	case *Join:
		return &p.Out
	case *SelectJoin:
		return &p.Out
	case *Intersect:
		return &p.Out
	}
	return nil
}

// fusableProducer reports whether op's output may be streamed instead of
// materialized: a single-consumer, non-aggregating Selection, Join,
// SelectJoin or Intersect. Folding outputs must materialize — the fold
// collapses the multiset per key, and the consumer must see the collapsed
// rows, not the raw combinations.
func fusableProducer(op Operator, uses map[Operator]int) bool {
	if uses[op] != 1 {
		return false
	}
	spec := fuseSpec(op)
	return spec != nil && spec.Fold == nil
}

// fuseCands reports which input ordinals of a consumer can accept a fused
// stream, and whether the producer's output key must be a single field.
// Join and Intersect replace the synchronous scan with a probe of the
// other main, keyed by one context slot — so the fused main's key must be
// single-attribute. SelectJoin and Selection (= Having) match their
// predicate on the raw (possibly composed) key, so any arity works: the
// key-range scan a materialized Selection input would get is replaced by
// the predicate applied to the ordered range stream (and, where the key
// passes through unchanged, by clipping the bottom scan to the predicate
// envelope — chainEnvelope).
func fuseCands(op Operator) (ords []int, needSingleKey bool) {
	switch op.(type) {
	case *Join:
		return []int{0, 1}, true
	case *SelectJoin:
		return []int{0}, false
	case *Selection:
		return []int{0}, false
	case *Intersect:
		return []int{0, 1}, true
	}
	return nil, false
}

// chainAt grows the longest fusable chain ending at top, following at
// most one fused edge per consumer (the first qualifying candidate
// ordinal). Returns nil when no edge into top fuses.
func chainAt(top Operator, uses map[Operator]int) *fuseChain {
	type edge struct {
		child Operator
		ord   int
	}
	var edges []edge // collected top-down
	cur := top
	for {
		cands, needSingle := fuseCands(cur)
		var child Operator
		ord := -1
		children := cur.Children()
		for _, o := range cands {
			c := children[o]
			if !fusableProducer(c, uses) {
				continue
			}
			if needSingle && len(fuseSpec(c).Key.Attrs) != 1 {
				continue
			}
			child, ord = c, o
			break
		}
		if child == nil {
			break
		}
		edges = append(edges, edge{child: child, ord: ord})
		cur = child
	}
	n := len(edges)
	if n == 0 {
		return nil
	}
	ch := &fuseChain{links: make([]Operator, n+1), ords: make([]int, n+1)}
	ch.ords[0] = -1
	for k := 0; k < n; k++ {
		ch.links[k] = edges[n-1-k].child
	}
	ch.links[n] = top
	for k := 1; k <= n; k++ {
		ch.ords[k] = edges[n-k].ord
	}
	return ch
}

// buildChains walks the plan once and returns every fused chain, keyed by
// its top link — the operator the executor resolves; the links below it
// are bypassed and never resolved on their own.
func buildChains(root Operator, uses map[Operator]int) map[Operator]*fuseChain {
	chains := make(map[Operator]*fuseChain)
	seen := make(map[Operator]bool)
	var walk func(op Operator)
	walk = func(op Operator) {
		if seen[op] {
			return
		}
		seen[op] = true
		if ch := chainAt(op, uses); ch != nil {
			chains[op] = ch
			// Recurse only into the inputs that stay materialized; the
			// fused links belong to this chain.
			for i, l := range ch.links {
				for o, c := range l.Children() {
					if i > 0 && o == ch.ords[i] {
						continue
					}
					walk(c)
				}
			}
			return
		}
		for _, c := range op.Children() {
			walk(c)
		}
	}
	walk(root)
	return chains
}

// predMatch reports whether key k satisfies a selection predicate,
// matching feedScan's range semantics: a nil predicate accepts
// everything, an empty non-nil one nothing.
func predMatch(pred KeyPred, k uint64) bool {
	if pred == nil {
		return true
	}
	for _, r := range pred {
		if k >= r.Lo && k <= r.Hi {
			return true
		}
	}
	return false
}

// fusedPipe builds the pipeline through which a fused consumer receives
// the producer's streamed combinations, and returns the accept hook the
// producer's forwarding sink calls with each assembled (key, row) pair.
// inputs[fo] is a shape placeholder for the bypassed intermediate — it
// fixes the context layout but is never scanned or probed.
func fusedPipe(ec *ExecContext, op Operator, fo int, inputs []*IndexedTable) (*pipeline, func(k uint64, row []uint64), error) {
	switch c := op.(type) {
	case *Join:
		return fusedJoinPipe(ec, c, fo, inputs)
	case *Intersect:
		return fusedJoinPipe(ec, c.asJoin(), fo, inputs)
	case *SelectJoin:
		p, err := c.pipe(ec, inputs)
		if err != nil {
			return nil, nil, err
		}
		comp := inputs[0].Key.Composer()
		ctx := make([]uint64, p.layout.width)
		accept := func(k uint64, row []uint64) {
			// The selection predicate on the streamed key stands in for
			// the key-range scan of the materialized path; wireForward
			// evaluates it per batch (selection vector) or per key
			// (scalar forwarding) before this hook runs, and feed then
			// applies the selection residual before the main probe.
			if p.aborted() {
				return
			}
			p.layout.fillKey(ctx, 0, k, comp)
			p.layout.fillRow(ctx, 0, row)
			p.feed(ctx)
		}
		return p, accept, nil
	case *Selection:
		p, err := c.pipe(ec, inputs)
		if err != nil {
			return nil, nil, err
		}
		comp := inputs[0].Key.Composer()
		ctx := make([]uint64, p.layout.width)
		accept := func(k uint64, row []uint64) {
			// Range-stream fusion: the key-sorted batches arriving here
			// are the ordered range stream the materialized path would
			// have scanned out of the intermediate index. The predicate
			// runs upstream of this hook — wireForward compacts each
			// producer batch by selection vector (or wraps the scalar
			// forward with predMatch) — the residual inside feed, and
			// nothing is ever indexed below the chain top.
			if p.aborted() {
				return
			}
			p.layout.fillKey(ctx, 0, k, comp)
			p.layout.fillRow(ctx, 0, row)
			p.feed(ctx)
		}
		return p, accept, nil
	}
	return nil, nil, fmt.Errorf("core: operator %s cannot consume a fused stream", op.Label())
}

// fusedJoinPipe replaces the join's synchronous scan: the fused main (at
// ordinal fo) streams in and the other main becomes probe stage 0, keyed
// by the streamed main's (single-field) key. Assists follow as stages 1+,
// and the join residual — which the materialized path applies after both
// mains are filled, before any assist — runs on entry to stage 1.
func fusedJoinPipe(ec *ExecContext, j *Join, fo int, inputs []*IndexedTable) (*pipeline, func(k uint64, row []uint64), error) {
	layout := newCtxLayout(inputs...)
	p := newPipeline(ec, layout)
	p.addProbe(1-fo, layout.keyOff(fo, 0))
	for i, a := range j.Assists {
		off, err := layout.resolve(a.ProbeWith)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %s assist %d: %w", j.Label(), i, err)
		}
		p.addProbe(2+i, off)
	}
	p.setFilter(1, j.Residual)
	ctx := make([]uint64, layout.width)
	accept := func(k uint64, row []uint64) {
		if p.aborted() {
			return
		}
		p.layout.fillKey(ctx, fo, k, nil) // single-field key: no composer
		p.layout.fillRow(ctx, fo, row)
		p.feedStage(0, ctx)
	}
	return p, accept, nil
}

// fusedKindOf labels the kind of fused edge by the consumer it streams
// into (OperatorStats.FusedKind).
func fusedKindOf(consumer Operator) string {
	switch consumer.(type) {
	case *Selection:
		return "range-stream"
	case *SelectJoin:
		return "select-probe"
	case *Join, *Intersect:
		return "probe"
	}
	return ""
}

// forwardsScanKey reports whether link i of the chain forwards its
// driving key unchanged: the link's output key is a single field read
// straight from the key slot the scanned (i == 0) or streamed (i > 0)
// input fills with the raw key. Only through such links does a
// downstream Selection's key predicate constrain the bottom scan.
func forwardsScanKey(ch *fuseChain, i int, inputs []*IndexedTable) bool {
	spec := fuseSpec(ch.links[i])
	if len(spec.KeyRefs) != 1 {
		return false
	}
	layout := newCtxLayout(inputs...)
	off, err := layout.resolve(spec.KeyRefs[0])
	if err != nil {
		return false
	}
	var cands []int
	if i == 0 {
		switch ch.links[0].(type) {
		case *Join, *Intersect:
			// The synchronous scan fills both mains' key slots with the
			// same scanned key.
			cands = []int{0, 1}
		default:
			cands = []int{0}
		}
	} else {
		cands = []int{ch.ords[i]}
	}
	for _, fo := range cands {
		// A multi-attribute key is composed: its individual fields are
		// not the raw driving key, so only single-field slots qualify.
		if len(layout.inputs[fo].Key.Attrs) == 1 && off == layout.keyOff(fo, 0) {
			return true
		}
	}
	return false
}

// chainEnvelope intersects the predicate envelopes of the chain's fused
// Selection consumers that observe the bottom scan key unchanged. The
// result is an extra clip on the bottom link's scan bounds: a key outside
// the envelope would flow up the chain unchanged and die at that
// selection's predMatch, so the bottom never scans it. ok is false when
// no fused selection constrains the scan key.
func chainEnvelope(ch *fuseChain, inputsOf [][]*IndexedTable) (lo, hi uint64, ok bool) {
	for i := 1; i < len(ch.links); i++ {
		if !forwardsScanKey(ch, i-1, inputsOf[i-1]) {
			break // the key is transformed below this link; predicates above do not see the scan key
		}
		sel, isSel := ch.links[i].(*Selection)
		if !isSel {
			continue
		}
		plo, phi, pok := predEnvelope(sel.Pred)
		if !pok {
			continue
		}
		if !ok {
			lo, hi, ok = plo, phi, true
		} else {
			lo, hi = max(lo, plo), min(hi, phi)
		}
	}
	return lo, hi, ok
}

// bottomPipe builds the chain bottom's native combination pipeline; the
// driver attaches the forwarding sink.
func bottomPipe(ec *ExecContext, op Operator, inputs []*IndexedTable) (*pipeline, error) {
	switch b := op.(type) {
	case *Selection:
		return b.pipe(ec, inputs)
	case *Join:
		return b.pipe(ec, inputs)
	case *SelectJoin:
		return b.pipe(ec, inputs)
	case *Intersect:
		return b.asJoin().pipe(ec, inputs)
	}
	return nil, fmt.Errorf("core: operator %s cannot drive a fused chain", op.Label())
}

// bottomScan returns the chain bottom's native morsel scan and bounds.
func bottomScan(op Operator, inputs []*IndexedTable) (scanFn, boundsFn, error) {
	switch b := op.(type) {
	case *Selection:
		return b.scan(inputs), b.bounds(inputs), nil
	case *Join:
		return b.scan(inputs), b.bounds(inputs), nil
	case *SelectJoin:
		return b.scan(inputs), b.bounds(inputs), nil
	case *Intersect:
		j := b.asJoin()
		return j.scan(inputs), j.bounds(inputs), nil
	}
	return nil, nil, fmt.Errorf("core: operator %s cannot drive a fused chain", op.Label())
}

// runChain executes one fused chain inside the top link's memo entry:
// resolve the materialized inputs of every link, pin whatever of them is
// spilled, run the chain as one morsel-driven stage, then register the
// top output and release the consumed inputs — exactly what resolve does
// around a single operator, widened to the whole chain.
func (ex *executor) runChain(ch *fuseChain, e *memoEntry, stats *PlanStats) {
	n := len(ch.links)
	childOf := make([][]Operator, n)
	inputsOf := make([][]*IndexedTable, n)
	type slot struct{ link, ord int }
	var slots []slot
	for i, l := range ch.links {
		cs := l.Children()
		childOf[i] = cs
		inputsOf[i] = make([]*IndexedTable, len(cs))
		for o := range cs {
			if i > 0 && o == ch.ords[i] {
				continue // the fused edge: no materialized input
			}
			slots = append(slots, slot{i, o})
		}
	}
	resolveSlot := func(s slot) error {
		in, err := ex.resolve(childOf[s.link][s.ord], stats)
		inputsOf[s.link][s.ord] = in
		return err
	}
	if ex.sched.parallel() && len(slots) > 1 {
		ops := make([]Operator, len(slots))
		for i, s := range slots {
			ops[i] = childOf[s.link][s.ord]
		}
		tasks := make([]func() error, len(slots))
		for t, oi := range ex.frostOrder(ops) {
			s := slots[oi]
			tasks[t] = func() error { return resolveSlot(s) }
		}
		if err := ex.sched.Fork(tasks...); err != nil {
			e.err = err
			return
		}
	} else {
		for _, s := range slots {
			if err := resolveSlot(s); err != nil {
				e.err = err
				return
			}
		}
	}
	// The bypassed edges get shape placeholders: the skipped
	// intermediate's key spec and column layout with no index behind it.
	for i := 1; i < n; i++ {
		inputsOf[i][ch.ords[i]] = fuseSpec(ch.links[i-1]).ShapeOf()
	}
	sets := make([]pinSet, n)
	for i, l := range ch.links {
		sets[i] = pinSet{op: l, inputs: inputsOf[i]}
	}
	pinned, err := ex.pinInputs(sets)
	if err != nil {
		e.err = err
		return
	}
	// One ExecContext per link, so the stream's combination counts and
	// probe lookups attribute to the operator that produced them instead
	// of lumping into the top's statistics.
	ecs := make([]*ExecContext, n)
	for i, l := range ch.links {
		ec := &ExecContext{ctx: ex.ctx, opts: ex.opts, sched: ex.sched,
			rec: ex.rec, wrecs: ex.wrecs, spill: ex.spill}
		if stats != nil {
			st := &OperatorStats{Label: l.Label(), Fused: i < n-1}
			ec.opStats = st
			if i < n-1 {
				st.FusedKind = fusedKindOf(ch.links[i+1])
				e.pre = append(e.pre, st)
			} else {
				e.st = st
			}
		}
		ecs[i] = ec
	}
	t0 := time.Now()
	e.out, e.err = ex.driveChain(ch, ecs, inputsOf)
	if e.err == nil {
		// A scan aborted by cancellation can surface a partial output;
		// never memoize it as a valid result.
		e.err = ex.ctx.Err()
	}
	if e.err == nil && e.st != nil {
		// The links execute as one interleaved stage; each reports the
		// chain's wall time, with IndexTime (and so MaterializeTime)
		// still per link — only the top ever indexes.
		elapsed := time.Since(t0)
		for _, ec := range ecs {
			ec.opStats.Time = elapsed
			ec.opStats.MaterializeTime = elapsed - ec.opStats.IndexTime
			if ec.opStats.ProbeBatches > 0 {
				// Producers fill batches they streamed out; a non-probing
				// chain top fills from the batches it received instead.
				ec.opStats.AvgBatchFill = float64(ec.opStats.TuplesStreamed+ec.opStats.StreamedIn) / float64(ec.opStats.ProbeBatches)
			}
		}
		e.st.OutRows = e.out.Rows()
		e.st.OutKeys = e.out.Keys()
		e.st.OutBytes = e.out.Idx.Bytes()
	}
	for _, h := range pinned {
		h.Unpin()
	}
	ex.mu.Lock()
	ex.fusedEdges += n - 1
	if ex.doneOut != nil && e.err == nil {
		ex.doneOut[ch.top()] = e.out
	}
	ex.mu.Unlock()
	if ex.spill != nil && e.err == nil {
		if fz := freezerOf(e.out.Idx); fz != nil {
			h := ex.spill.Register(ch.top().Label(), fz, e.out.Idx.Bytes)
			ex.mu.Lock()
			ex.handles[e.out] = h
			ex.mu.Unlock()
		}
	}
	if ex.uses != nil && e.err == nil {
		for i := range ch.links {
			for o, c := range childOf[i] {
				if i > 0 && o == ch.ords[i] {
					continue
				}
				ex.releaseInput(c, inputsOf[i][o])
			}
		}
	}
}

// driveChain runs the fused chain as one morsel-driven stage: per pool
// worker one stack of pipelines (the bottom's native pipe, fused consumer
// pipes above it, the top's materializing sink), the bottom's native scan
// claiming key-range morsels, and the top partials combined with the
// parallel partition-wise merge — the exact shape of runMorsels with a
// pipeline stack in place of the single pipeline.
func (ex *executor) driveChain(ch *fuseChain, ecs []*ExecContext, inputsOf [][]*IndexedTable) (*IndexedTable, error) {
	n := len(ch.links)
	spec := fuseSpec(ch.top())
	scan, bounds, err := bottomScan(ch.links[0], inputsOf[0])
	if err != nil {
		return nil, err
	}
	// Fused links forward their combinations in key-sorted batches of
	// probeBatch (Options.ProbeBatch); 1 degenerates to scalar
	// combination-at-a-time forwarding, the pre-batching behavior.
	probeBatch := ecs[0].probeBatch()
	// sortPays reports whether key-sorting link i's probe batches can buy
	// anything from the consumer above: a Selection applies its predicate
	// per combination without probing an index, and probes into a shallow
	// index descend a level or two no matter the order — in both cases the
	// per-batch sort costs more than the shared descents it would create.
	sortPays := func(i int) bool {
		consumer := ch.links[i+1]
		if _, ok := consumer.(*Selection); ok {
			return false
		}
		for o, in := range inputsOf[i+1] {
			if o != ch.ords[i+1] && in != nil && in.Keys() >= probeSortMinKeys {
				return true
			}
		}
		return false
	}
	// streamPred returns the consumer's key predicate on the fused stream
	// (nil: no predicate). Selection covers Having via the type alias.
	streamPred := func(op Operator) KeyPred {
		switch c := op.(type) {
		case *Selection:
			return c.Pred
		case *SelectJoin:
			return c.Pred
		}
		return nil
	}
	// wireForward attaches link i's forwarding sink: batched (the probe
	// buffer hands the consumer's accept hook the batch, key-sorted when
	// that pays) or scalar. The consumer's stream predicate moves into
	// the sink here: batched sinks evaluate it per batch into a selection
	// vector (setForwardFilter), scalar forwarding wraps the accept hook
	// with the per-key predMatch. consumer is the pipe the batches land
	// in; a non-probing chain top (range-stream / select-probe) has no
	// probe stages of its own, so the received-batch counts attributed
	// here are the only batch stats it gets.
	wireForward := func(i int, p *pipeline, spec *OutputSpec, accept func(k uint64, row []uint64), consumer *pipeline) error {
		pred := streamPred(ch.links[i+1])
		if probeBatch <= 1 {
			if pred != nil {
				inner := accept
				accept = func(k uint64, row []uint64) {
					if predMatch(pred, k) {
						inner(k, row)
					}
				}
			}
			return p.setForward(spec, accept)
		}
		countIn := i+1 == n-1 && fusedKindOf(ch.links[i+1]) != "probe"
		w := len(spec.Cols)
		err := p.setForwardBatch(spec, probeBatch, sortPays(i), func(keys, rows []uint64, perm []uint32) {
			if countIn {
				consumer.fedBatches++
				consumer.fedRows += len(keys)
			}
			if perm == nil { // arrival order (already sorted, or sorting skipped)
				for i := range keys {
					accept(keys[i], rows[i*w:i*w+w])
				}
				return
			}
			for _, j := range perm {
				accept(keys[j], rows[int(j)*w:int(j)*w+w])
			}
		})
		if err == nil && pred != nil {
			p.setForwardFilter(pred)
		}
		return err
	}
	// newStack builds one worker's pipeline stack, wiring each link's
	// forwarding sink to the accept hook of the link above, top-down.
	newStack := func(sinkSpec *OutputSpec, rec *arena.Recycler) ([]*pipeline, *IndexedTable, error) {
		pipes := make([]*pipeline, n)
		var accept func(k uint64, row []uint64)
		var out *IndexedTable
		for i := n - 1; i >= 1; i-- {
			p, acc, err := fusedPipe(ecs[i], ch.links[i], ch.ords[i], inputsOf[i])
			if err != nil {
				return nil, nil, err
			}
			p.rec = rec // sink index chunks (top) and probe buffers (below) share the worker pool
			if i == n-1 {
				if out, err = p.setSink(sinkSpec); err != nil {
					return nil, nil, err
				}
			} else if err = wireForward(i, p, fuseSpec(ch.links[i]), accept, pipes[i+1]); err != nil {
				return nil, nil, err
			}
			pipes[i] = p
			accept = acc
		}
		p0, err := bottomPipe(ecs[0], ch.links[0], inputsOf[0])
		if err != nil {
			return nil, nil, err
		}
		p0.rec = rec
		if err := wireForward(0, p0, fuseSpec(ch.links[0]), accept, pipes[1]); err != nil {
			return nil, nil, err
		}
		pipes[0] = p0
		return pipes, out, nil
	}
	finish := func(pipes []*pipeline) {
		for i, p := range pipes { // bottom → top: buffered combinations cascade upward
			p.finish()
			ecs[i].noteSink(p)
			p.release() // park the probe buffers for the next worker/plan
		}
	}
	topEC := ecs[n-1]
	sched := topEC.scheduler()
	empty := func() (*IndexedTable, error) {
		pipes, out, err := newStack(spec, topEC.rec)
		if err != nil {
			return nil, err
		}
		finish(pipes)
		return out, nil
	}
	lo, hi, ok := bounds()
	if !ok {
		return empty()
	}
	clipped := false
	if elo, ehi, eok := chainEnvelope(ch, inputsOf); eok {
		// A fused range-stream consumer constrains the scan key: clip the
		// bottom scan to its predicate envelope so out-of-range keys are
		// never produced just to be dropped at predMatch.
		if elo > lo {
			lo, clipped = elo, true
		}
		if ehi < hi {
			hi, clipped = ehi, true
		}
		if lo > hi {
			return empty()
		}
	}
	workers := sched.Workers()
	morsels := 1
	if workers > 1 {
		morsels = workers * topEC.morselsPerWorker()
	}
	stacks := make([][]*pipeline, workers)
	outs := make([]*IndexedTable, workers)
	err = sched.ForEachWorker(morsels, func(w, m int) error {
		if err := topEC.err(); err != nil {
			return err // cancelled: stop claiming morsels
		}
		mLo, mHi, ok := partitionBounds(lo, hi, m, morsels)
		if !ok {
			return nil
		}
		pipes := stacks[w]
		if pipes == nil {
			specCopy := *spec // private sink per worker partial
			var err error
			pipes, outs[w], err = newStack(&specCopy, topEC.workerRec(w))
			if err != nil {
				return err
			}
			stacks[w] = pipes
		}
		// A clipped serial scan must take the morsel-range path: the
		// whole-input fast path ignores the bounds.
		scan(pipes[0], mLo, mHi, morsels == 1 && !clipped)
		if err := topEC.err(); err != nil {
			return err // the scan itself may have been aborted mid-morsel
		}
		for _, p := range pipes {
			p.morsels++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var partials []*IndexedTable
	for w, pipes := range stacks {
		if pipes == nil {
			continue
		}
		finish(pipes)
		partials = append(partials, outs[w])
	}
	switch len(partials) {
	case 0:
		return empty()
	case 1:
		return partials[0], nil
	}
	out, err := mergePartialsParallel(topEC, spec, partials)
	if err != nil {
		return nil, err
	}
	if topEC.rec != nil {
		for _, p := range partials {
			if rc, ok := p.Idx.(chunkRecycler); ok {
				rc.Recycle()
			}
		}
	}
	return out, nil
}
