package core

import "testing"

var benchKeys int

// BenchmarkFusedChain times the star plan (selection streaming into an
// aggregating join) with the single-consumer edge fused against the
// materialized execution of the same plan, serially and under morsel
// parallelism. The fused path should be no slower and allocate less: the
// selection's intermediate index is never built.
func BenchmarkFusedChain(b *testing.B) {
	f := buildFixture(21)
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"fused", Options{}},
		{"materialized", Options{NoFuse: true}},
		{"fused-w4", Options{Workers: 4}},
		{"materialized-w4", Options{Workers: 4, NoFuse: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, _, err := starPlan(f, 2).Run(cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				benchKeys += out.Keys()
			}
		})
	}
}

// BenchmarkBatchedProbe sweeps the probe-forward batch size of the fused
// star plan. batch1 is scalar forwarding (the pre-batching execution);
// larger batches sort each buffer so the consumer's LookupBatch walks
// shared tree descents once per distinct key — the paper's batch-probe
// amortization inside a fused chain. The recycler keeps steady-state
// batch buffers allocation-neutral across sizes.
func BenchmarkBatchedProbe(b *testing.B) {
	f := buildFixture(22)
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"batch1", Options{ProbeBatch: 1}},
		{"batch256", Options{ProbeBatch: 256}},
		{"batch512", Options{}},
		{"batch1024", Options{ProbeBatch: 1024}},
		{"batch512-w4", Options{Workers: 4}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, _, err := starPlan(f, 2).Run(cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				benchKeys += out.Keys()
			}
		})
	}
}
