// Package core implements QPPT's indexed table-at-a-time processing model
// (paper Sections 1, 3 and 4): intermediate indexed tables, cooperative
// operators, and composed operators.
//
// Operators do not exchange tuples, columns, or vectors. Every operator
// consumes one or more indexed tables — sets of tuples stored inside an
// in-memory prefix-tree index — and produces exactly one indexed table as
// output, indexed on the attribute(s) the *next* operator requests. The
// number of "next calls" between operators is thereby reduced to exactly
// one: passing the output index handle.
//
// The package provides the selection/having operator, the set operators
// (intersect, distinct union), the 2-way join-group, the composed
// multi-way/star join, and the composed select-join, all built on the
// synchronous index scan and on batched (buffered) index operations.
package core

import (
	"qppt/internal/arena"
	"qppt/internal/duplist"
	"qppt/internal/kisstree"
	"qppt/internal/prefixtree"
)

// Index is the common surface of the two prefix-tree index structures QPPT
// deploys: the generalized prefix tree (arbitrary key width) and the
// KISS-Tree (32-bit keys). QPPT decides per intermediate index which
// structure to use, at plan time, based on the key width (paper
// Section 2.2); NewIndex encodes that decision.
type Index interface {
	// Insert adds one payload row under key (aggregating if the index
	// was created with a fold function).
	Insert(key uint64, row []uint64)
	// InsertBatch adds many rows at once, level-synchronously (paper
	// Section 2.3). rows may be nil for width-0 indexes.
	InsertBatch(keys []uint64, rows [][]uint64)
	// Lookup returns the payload rows stored under key, or nil.
	Lookup(key uint64) *duplist.List
	// LookupBatch resolves many keys level-synchronously; vals is nil
	// for absent keys.
	LookupBatch(keys []uint64, visit func(i int, vals *duplist.List))
	// Iterate visits all keys in ascending order.
	Iterate(visit func(key uint64, vals *duplist.List) bool) bool
	// Range visits all keys in [lo, hi] in ascending order.
	Range(lo, hi uint64, visit func(key uint64, vals *duplist.List) bool) bool
	// Keys reports the number of distinct keys.
	Keys() int
	// Rows reports the total number of payload rows.
	Rows() int
	// PayloadWidth reports the row width in uint64 words.
	PayloadWidth() int
	// KeyBits reports the index key width in bits.
	KeyBits() uint
	// Bytes estimates the heap footprint.
	Bytes() int
	// Min and Max report the key bounds (ok == false when empty).
	Min() (uint64, bool)
	Max() (uint64, bool)
}

// IndexConfig parameterizes NewIndex.
type IndexConfig struct {
	// KeyBits is the width of the keys this index must hold. Indexes
	// with KeyBits <= 32 use a KISS-Tree, wider ones a prefix tree.
	KeyBits uint
	// PayloadWidth is the number of uint64 attribute values per row.
	PayloadWidth int
	// Fold, if non-nil, makes the index aggregate rows per key.
	Fold func(dst, src []uint64)
	// PrefixLen overrides the prefix tree's k′ (default 4); ignored for
	// KISS-Trees.
	PrefixLen uint
	// ForcePrefixTree disables the KISS-Tree choice even for narrow
	// keys; used by benchmarks that compare the structures directly.
	ForcePrefixTree bool
	// CompressKISS enables bitmask compression of KISS second-level
	// nodes. QPPT leaves this off for dense domains to avoid the RCU
	// copy overhead (paper Section 2.2).
	CompressKISS bool
	// Recycler, if non-nil, routes the index's chunk storage through a
	// plan-scoped chunk pool (see arena.Recycler): growth draws from it
	// and dropping the index parks the chunks there for the next one.
	Recycler *arena.Recycler
}

// NewIndex creates the index structure QPPT would pick for the given
// configuration: a KISS-Tree for keys up to 32 bits, a generalized prefix
// tree otherwise.
func NewIndex(cfg IndexConfig) Index {
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 64
	}
	if cfg.KeyBits <= kisstree.KeyBits && !cfg.ForcePrefixTree {
		return kissIndex{kisstree.MustNew(kisstree.Config{
			PayloadWidth: cfg.PayloadWidth,
			Fold:         cfg.Fold,
			Compress:     cfg.CompressKISS,
			Recycler:     cfg.Recycler,
		})}
	}
	return ptIndex{prefixtree.MustNew(prefixtree.Config{
		PrefixLen:    cfg.PrefixLen,
		KeyBits:      cfg.KeyBits,
		PayloadWidth: cfg.PayloadWidth,
		Fold:         cfg.Fold,
		Recycler:     cfg.Recycler,
	})}
}

// ptIndex adapts *prefixtree.Tree to Index.
type ptIndex struct{ t *prefixtree.Tree }

func (p ptIndex) Insert(key uint64, row []uint64)            { p.t.Insert(key, row) }
func (p ptIndex) InsertBatch(keys []uint64, rows [][]uint64) { p.t.InsertBatch(keys, rows) }
func (p ptIndex) Keys() int                                  { return p.t.Keys() }
func (p ptIndex) Rows() int                                  { return p.t.Rows() }
func (p ptIndex) PayloadWidth() int                          { return p.t.PayloadWidth() }
func (p ptIndex) KeyBits() uint                              { return p.t.KeyBits() }
func (p ptIndex) Bytes() int                                 { return p.t.Bytes() }
func (p ptIndex) Min() (uint64, bool)                        { return p.t.Min() }
func (p ptIndex) Max() (uint64, bool)                        { return p.t.Max() }

func (p ptIndex) Lookup(key uint64) *duplist.List {
	if lf := p.t.Lookup(key); lf != nil {
		return &lf.Vals
	}
	return nil
}

func (p ptIndex) LookupBatch(keys []uint64, visit func(i int, vals *duplist.List)) {
	p.t.LookupBatch(keys, func(i int, lf *prefixtree.Leaf) {
		if lf != nil {
			visit(i, &lf.Vals)
		} else {
			visit(i, nil)
		}
	})
}

func (p ptIndex) Iterate(visit func(key uint64, vals *duplist.List) bool) bool {
	return p.t.Iterate(func(lf *prefixtree.Leaf) bool { return visit(lf.Key, &lf.Vals) })
}

func (p ptIndex) Range(lo, hi uint64, visit func(key uint64, vals *duplist.List) bool) bool {
	return p.t.Range(lo, hi, func(lf *prefixtree.Leaf) bool { return visit(lf.Key, &lf.Vals) })
}

// kissIndex adapts *kisstree.Tree to Index.
type kissIndex struct{ t *kisstree.Tree }

func (k kissIndex) Insert(key uint64, row []uint64)            { k.t.Insert(key, row) }
func (k kissIndex) InsertBatch(keys []uint64, rows [][]uint64) { k.t.InsertBatch(keys, rows) }
func (k kissIndex) Keys() int                                  { return k.t.Keys() }
func (k kissIndex) Rows() int                                  { return k.t.Rows() }
func (k kissIndex) PayloadWidth() int                          { return k.t.PayloadWidth() }
func (k kissIndex) KeyBits() uint                              { return kisstree.KeyBits }
func (k kissIndex) Bytes() int                                 { return k.t.Bytes() }
func (k kissIndex) Min() (uint64, bool)                        { return k.t.Min() }
func (k kissIndex) Max() (uint64, bool)                        { return k.t.Max() }

func (k kissIndex) Lookup(key uint64) *duplist.List {
	if lf := k.t.Lookup(key); lf != nil {
		return &lf.Vals
	}
	return nil
}

func (k kissIndex) LookupBatch(keys []uint64, visit func(i int, vals *duplist.List)) {
	k.t.LookupBatch(keys, func(i int, lf *kisstree.Leaf) {
		if lf != nil {
			visit(i, &lf.Vals)
		} else {
			visit(i, nil)
		}
	})
}

func (k kissIndex) Iterate(visit func(key uint64, vals *duplist.List) bool) bool {
	return k.t.Iterate(func(lf *kisstree.Leaf) bool { return visit(lf.Key, &lf.Vals) })
}

func (k kissIndex) Range(lo, hi uint64, visit func(key uint64, vals *duplist.List) bool) bool {
	return k.t.Range(lo, hi, func(lf *kisstree.Leaf) bool { return visit(lf.Key, &lf.Vals) })
}

// SyncScan runs the synchronous index scan over two indexes, visiting every
// key present in both along with both payload lists, in ascending key
// order. When both indexes are the same tree kind with the same geometry
// the native skip-scan kernels are used; otherwise (mixed kinds or
// differing prefix lengths) it falls back to iterating the smaller index
// and probing the larger one — the same asymmetry the select-join exploits.
func SyncScan(a, b Index, visit func(key uint64, va, vb *duplist.List) bool) bool {
	switch ai := a.(type) {
	case ptIndex:
		if bi, ok := b.(ptIndex); ok && ai.t.PrefixLen() == bi.t.PrefixLen() && ai.t.KeyBits() == bi.t.KeyBits() {
			return prefixtree.SyncScan(ai.t, bi.t, func(la, lb *prefixtree.Leaf) bool {
				return visit(la.Key, &la.Vals, &lb.Vals)
			})
		}
	case kissIndex:
		if bi, ok := b.(kissIndex); ok {
			return kisstree.SyncScan(ai.t, bi.t, func(la, lb *kisstree.Leaf) bool {
				return visit(la.Key, &la.Vals, &lb.Vals)
			})
		}
	}
	// Fallback: iterate the smaller index, probe the larger.
	small, large := a, b
	swapped := false
	if b.Keys() < a.Keys() {
		small, large = b, a
		swapped = true
	}
	return small.Iterate(func(key uint64, vs *duplist.List) bool {
		vl := large.Lookup(key)
		if vl == nil {
			return true
		}
		if swapped {
			return visit(key, vl, vs)
		}
		return visit(key, vs, vl)
	})
}
