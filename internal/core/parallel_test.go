package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"qppt/internal/duplist"
)

func TestPartitionBounds(t *testing.T) {
	// Partitions must be disjoint and cover [lo, hi] exactly.
	f := func(lo, hi uint64, parts8 uint8) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		parts := int(parts8%7) + 1
		var next uint64 = lo
		covered := false
		for p := 0; p < parts; p++ {
			pLo, pHi, ok := partitionBounds(lo, hi, p, parts)
			if !ok {
				continue
			}
			if pLo != next {
				return false // gap or overlap
			}
			if pHi < pLo {
				return false
			}
			if pHi == hi {
				covered = true
			}
			next = pHi + 1
		}
		return covered
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// Full key space does not overflow.
	seen := uint64(0)
	for p := 0; p < 4; p++ {
		lo, hi, ok := partitionBounds(0, ^uint64(0), p, 4)
		if !ok {
			t.Fatalf("full-space partition %d missing", p)
		}
		seen += hi - lo + 1
	}
	if seen != 0 { // 2^64 wraps to 0
		t.Fatalf("full-space partitions cover %d keys too few/many", seen)
	}
}

func TestIntersectPred(t *testing.T) {
	pred := KeyPred{{Lo: 10, Hi: 20}, {Lo: 30, Hi: 40}}
	got := intersectPred(pred, 15, 35)
	want := KeyPred{{Lo: 15, Hi: 20}, {Lo: 30, Hi: 35}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if got := intersectPred(pred, 21, 29); got == nil || len(got) != 0 {
		t.Fatalf("disjoint intersect = %#v, want empty non-nil", got)
	}
	if got := intersectPred(nil, 5, 9); !reflect.DeepEqual(got, KeyPred{{Lo: 5, Hi: 9}}) {
		t.Fatalf("nil pred intersect = %v", got)
	}
}

// TestSyncScanPartCoversSyncScan: the union of all partitions must visit
// exactly the pairs the unpartitioned scan visits, for all index kinds.
func TestSyncScanPartCoversSyncScan(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	configs := []struct {
		name string
		a, b IndexConfig
	}{
		{"kiss-kiss", IndexConfig{KeyBits: 20}, IndexConfig{KeyBits: 20}},
		{"pt-pt", IndexConfig{KeyBits: 40}, IndexConfig{KeyBits: 40}},
		{"mixed", IndexConfig{KeyBits: 20}, IndexConfig{KeyBits: 20, ForcePrefixTree: true}},
	}
	for _, cfg := range configs {
		a, b := NewIndex(cfg.a), NewIndex(cfg.b)
		for i := 0; i < 20000; i++ {
			a.Insert(uint64(rng.Intn(50000)), nil)
			b.Insert(uint64(rng.Intn(50000)), nil)
		}
		want := map[uint64]bool{}
		SyncScan(a, b, func(k uint64, _, _ *duplist.List) bool {
			want[k] = true
			return true
		})
		for _, parts := range []int{1, 2, 3, 7} {
			got := map[uint64]bool{}
			for p := 0; p < parts; p++ {
				SyncScanPart(a, b, p, parts, func(k uint64, _, _ *duplist.List) bool {
					if got[k] {
						t.Fatalf("%s parts=%d: key %d visited twice", cfg.name, parts, k)
					}
					got[k] = true
					return true
				})
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s parts=%d: %d keys, want %d", cfg.name, parts, len(got), len(want))
			}
		}
	}
}

// TestWorkersPreserveResults: intra-operator parallelism must never change
// operator output.
func TestWorkersPreserveResults(t *testing.T) {
	f := buildFixture(77)
	ref, _, err := starPlan(f, 4).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		got, stats, err := starPlan(f, 4).Run(Options{Workers: w, CollectStats: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resultAsMap(t, Extract(got)), resultAsMap(t, Extract(ref))) {
			t.Fatalf("workers=%d changed the result", w)
		}
		if stats.Ops[len(stats.Ops)-1].TuplesIndexed == 0 {
			t.Fatalf("workers=%d: no stats accumulated", w)
		}
	}
}

func TestWorkersWithSelectJoin(t *testing.T) {
	f := buildFixture(78)
	sj := func() *SelectJoin {
		return &SelectJoin{
			SelInput:      &Base{Table: f.prodByBrand},
			Pred:          Between(0, nBrand-1),
			Main:          &Base{Table: f.factByProd},
			ProbeMainWith: Ref{Input: 0, Attr: "prodkey"},
			Out: OutputSpec{
				Name:     "Γ",
				Key:      SimpleKey("region?", 16), // keyed on custkey actually
				KeyRefs:  []Ref{{Input: 1, Attr: "custkey"}},
				Cols:     []string{"sum_qty"},
				ColExprs: []RowExpr{Attr(1, "qty")},
				Fold:     FoldSum(0),
			},
		}
	}
	ref, _, err := (&Plan{Root: sj()}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := (&Plan{Root: sj()}).Run(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultAsMap(t, Extract(ref)), resultAsMap(t, Extract(par))) {
		t.Fatal("workers changed select-join result")
	}
}

func TestWorkersOnNonAggregatingSelection(t *testing.T) {
	// Plain (non-folding) outputs must carry the same row multiset.
	f := buildFixture(79)
	sel := func() *Selection {
		return &Selection{
			Input: &Base{Table: f.factByProd},
			Pred:  Between(0, nProd/2),
			Out: OutputSpec{
				Name:     "σ",
				Key:      SimpleKey("custkey", 16),
				KeyRefs:  []Ref{{Input: 0, Attr: "custkey"}},
				Cols:     []string{"qty"},
				ColExprs: []RowExpr{Attr(0, "qty")},
			},
		}
	}
	ref, _, err := (&Plan{Root: sel()}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := (&Plan{Root: sel()}).Run(Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rows() != par.Rows() || ref.Keys() != par.Keys() {
		t.Fatalf("rows/keys: %d/%d vs %d/%d", ref.Rows(), ref.Keys(), par.Rows(), par.Keys())
	}
	count := func(t2 *IndexedTable) map[[2]uint64]int {
		m := map[[2]uint64]int{}
		t2.Idx.Iterate(func(k uint64, vals *duplist.List) bool {
			vals.Scan(func(row []uint64) bool {
				m[[2]uint64{k, row[0]}]++
				return true
			})
			return true
		})
		return m
	}
	if !reflect.DeepEqual(count(ref), count(par)) {
		t.Fatal("row multisets differ")
	}
}
