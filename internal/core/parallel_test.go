package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"qppt/internal/duplist"
)

func TestPartitionBounds(t *testing.T) {
	// Partitions must be disjoint and cover [lo, hi] exactly.
	f := func(lo, hi uint64, parts8 uint8) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		parts := int(parts8%7) + 1
		var next uint64 = lo
		covered := false
		for p := 0; p < parts; p++ {
			pLo, pHi, ok := partitionBounds(lo, hi, p, parts)
			if !ok {
				continue
			}
			if pLo != next {
				return false // gap or overlap
			}
			if pHi < pLo {
				return false
			}
			if pHi == hi {
				covered = true
			}
			next = pHi + 1
		}
		return covered
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// Full key space does not overflow.
	seen := uint64(0)
	for p := 0; p < 4; p++ {
		lo, hi, ok := partitionBounds(0, ^uint64(0), p, 4)
		if !ok {
			t.Fatalf("full-space partition %d missing", p)
		}
		seen += hi - lo + 1
	}
	if seen != 0 { // 2^64 wraps to 0
		t.Fatalf("full-space partitions cover %d keys too few/many", seen)
	}
}

func TestIntersectPred(t *testing.T) {
	pred := KeyPred{{Lo: 10, Hi: 20}, {Lo: 30, Hi: 40}}
	got := intersectPred(pred, 15, 35)
	want := KeyPred{{Lo: 15, Hi: 20}, {Lo: 30, Hi: 35}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if got := intersectPred(pred, 21, 29); got == nil || len(got) != 0 {
		t.Fatalf("disjoint intersect = %#v, want empty non-nil", got)
	}
	if got := intersectPred(nil, 5, 9); !reflect.DeepEqual(got, KeyPred{{Lo: 5, Hi: 9}}) {
		t.Fatalf("nil pred intersect = %v", got)
	}
}

// TestSyncScanMorselsCoverSyncScan: the union over all key-range morsels
// must visit exactly the pairs the unpartitioned scan visits, for all
// index kinds — the property the Join operator's morsel split relies on.
func TestSyncScanMorselsCoverSyncScan(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	configs := []struct {
		name string
		a, b IndexConfig
	}{
		{"kiss-kiss", IndexConfig{KeyBits: 20}, IndexConfig{KeyBits: 20}},
		{"pt-pt", IndexConfig{KeyBits: 40}, IndexConfig{KeyBits: 40}},
		{"mixed", IndexConfig{KeyBits: 20}, IndexConfig{KeyBits: 20, ForcePrefixTree: true}},
	}
	for _, cfg := range configs {
		a, b := NewIndex(cfg.a), NewIndex(cfg.b)
		for i := 0; i < 20000; i++ {
			a.Insert(uint64(rng.Intn(50000)), nil)
			b.Insert(uint64(rng.Intn(50000)), nil)
		}
		want := map[uint64]bool{}
		SyncScan(a, b, func(k uint64, _, _ *duplist.List) bool {
			want[k] = true
			return true
		})
		lo, hi, okB := syncScanBounds(a, b)
		if !okB {
			t.Fatalf("%s: no scan bounds", cfg.name)
		}
		for _, parts := range []int{1, 2, 3, 7} {
			got := map[uint64]bool{}
			for p := 0; p < parts; p++ {
				pLo, pHi, ok := partitionBounds(lo, hi, p, parts)
				if !ok {
					continue
				}
				syncScanKeyRange(a, b, pLo, pHi, func(k uint64, _, _ *duplist.List) bool {
					if got[k] {
						t.Fatalf("%s parts=%d: key %d visited twice", cfg.name, parts, k)
					}
					got[k] = true
					return true
				})
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s parts=%d: %d keys, want %d", cfg.name, parts, len(got), len(want))
			}
		}
	}
}

// TestWorkersPreserveResults: intra-operator parallelism must never change
// operator output.
func TestWorkersPreserveResults(t *testing.T) {
	f := buildFixture(77)
	ref, _, err := starPlan(f, 4).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		got, stats, err := starPlan(f, 4).Run(Options{Workers: w, CollectStats: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resultAsMap(t, Extract(got)), resultAsMap(t, Extract(ref))) {
			t.Fatalf("workers=%d changed the result", w)
		}
		if stats.Ops[len(stats.Ops)-1].TuplesIndexed == 0 {
			t.Fatalf("workers=%d: no stats accumulated", w)
		}
	}
}

func TestWorkersWithSelectJoin(t *testing.T) {
	f := buildFixture(78)
	sj := func() *SelectJoin {
		return &SelectJoin{
			SelInput:      &Base{Table: f.prodByBrand},
			Pred:          Between(0, nBrand-1),
			Main:          &Base{Table: f.factByProd},
			ProbeMainWith: Ref{Input: 0, Attr: "prodkey"},
			Out: OutputSpec{
				Name:     "Γ",
				Key:      SimpleKey("region?", 16), // keyed on custkey actually
				KeyRefs:  []Ref{{Input: 1, Attr: "custkey"}},
				Cols:     []string{"sum_qty"},
				ColExprs: []RowExpr{Attr(1, "qty")},
				Fold:     FoldSum(0),
			},
		}
	}
	ref, _, err := (&Plan{Root: sj()}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := (&Plan{Root: sj()}).Run(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultAsMap(t, Extract(ref)), resultAsMap(t, Extract(par))) {
		t.Fatal("workers changed select-join result")
	}
}

func TestWorkersOnNonAggregatingSelection(t *testing.T) {
	// Plain (non-folding) outputs must carry the same row multiset.
	f := buildFixture(79)
	sel := func() *Selection {
		return &Selection{
			Input: &Base{Table: f.factByProd},
			Pred:  Between(0, nProd/2),
			Out: OutputSpec{
				Name:     "σ",
				Key:      SimpleKey("custkey", 16),
				KeyRefs:  []Ref{{Input: 0, Attr: "custkey"}},
				Cols:     []string{"qty"},
				ColExprs: []RowExpr{Attr(0, "qty")},
			},
		}
	}
	ref, _, err := (&Plan{Root: sel()}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := (&Plan{Root: sel()}).Run(Options{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rows() != par.Rows() || ref.Keys() != par.Keys() {
		t.Fatalf("rows/keys: %d/%d vs %d/%d", ref.Rows(), ref.Keys(), par.Rows(), par.Keys())
	}
	count := func(t2 *IndexedTable) map[[2]uint64]int {
		m := map[[2]uint64]int{}
		t2.Idx.Iterate(func(k uint64, vals *duplist.List) bool {
			vals.Scan(func(row []uint64) bool {
				m[[2]uint64{k, row[0]}]++
				return true
			})
			return true
		})
		return m
	}
	if !reflect.DeepEqual(count(ref), count(par)) {
		t.Fatal("row multisets differ")
	}
}

// TestMorselsBalanceSkewedKeys: a deliberately skewed key distribution —
// nearly all rows crammed into the top slice of the key space, so a static
// Workers-way split would hand one partition almost everything — must
// still produce results identical to serial execution, with the morsel
// fan-out engaged (more morsels than workers).
func TestMorselsBalanceSkewedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	idx := NewIndex(IndexConfig{KeyBits: 32, PayloadWidth: 1})
	// 3% of rows spread over the key space, 97% in the top 1/64th.
	for i := 0; i < 40000; i++ {
		var k uint64
		if i%32 == 0 {
			k = uint64(rng.Intn(1 << 32))
		} else {
			k = uint64(63<<26) + uint64(rng.Intn(1<<26))
		}
		idx.Insert(k, []uint64{uint64(rng.Intn(100))})
	}
	in := NewIndexedTable("skewed", SimpleKey("k", 32), []string{"v"}, idx)
	sel := func() *Selection {
		return &Selection{
			Input: &Base{Table: in},
			Out: OutputSpec{
				Name:     "Γ",
				Key:      SimpleKey("g", 8),
				KeyRefs:  []Ref{{Input: 0, Attr: "v"}},
				Cols:     []string{"n"},
				ColExprs: []RowExpr{Computed(func([]uint64) uint64 { return 1 })},
				Fold:     FoldSum(0),
			},
		}
	}
	ref, _, err := (&Plan{Root: sel()}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := (&Plan{Root: sel()}).Run(Options{Workers: 4, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultAsMap(t, Extract(ref)), resultAsMap(t, Extract(got))) {
		t.Fatal("skewed morsel execution changed the result")
	}
	op := stats.Ops[len(stats.Ops)-1]
	if op.Morsels <= op.Workers {
		t.Fatalf("morsel fan-out did not engage: %d morsels for %d workers", op.Morsels, op.Workers)
	}
	if stats.Workers != 4 {
		t.Fatalf("plan stats report %d workers, want 4", stats.Workers)
	}
}

// TestMergePartialsParallelMatchesSerial: the partition-wise parallel
// merge must produce exactly the table the sequential re-insert produces,
// for folding and plain outputs alike.
func TestMergePartialsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, folding := range []bool{true, false} {
		spec := &OutputSpec{
			Name: "m",
			Key:  SimpleKey("k", 40), // prefix tree
			Cols: []string{"v"},
		}
		if folding {
			spec.Fold = FoldSum(0)
		}
		var partials []*IndexedTable
		for p := 0; p < 5; p++ {
			idx := newOutputIndex(spec, nil)
			for i := 0; i < 9000; i++ {
				idx.Insert(uint64(rng.Intn(1<<22)), []uint64{uint64(rng.Intn(10))})
			}
			partials = append(partials, NewIndexedTable(spec.Name, spec.Key, spec.Cols, idx))
		}
		serial, _ := mergePartials(nil, spec, partials, nil)
		ec := &ExecContext{opts: Options{Workers: 4}}
		par, _ := mergePartialsParallel(ec, spec, partials)
		if _, sharded := par.Idx.(*shardedIndex); !sharded {
			t.Fatalf("folding=%v: parallel merge did not shard", folding)
		}
		assertSameTable(t, serial, par)
	}
}

// assertSameTable checks two indexed tables hold the same keys in the same
// ascending order with the same per-key row multisets.
func assertSameTable(t *testing.T, a, b *IndexedTable) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Keys() != b.Keys() {
		t.Fatalf("rows/keys: %d/%d vs %d/%d", a.Rows(), a.Keys(), b.Rows(), b.Keys())
	}
	collect := func(tb *IndexedTable) ([]uint64, map[uint64]map[[2]uint64]int) {
		var order []uint64
		rows := map[uint64]map[[2]uint64]int{}
		tb.Idx.Iterate(func(k uint64, vals *duplist.List) bool {
			order = append(order, k)
			m := map[[2]uint64]int{}
			vals.Scan(func(row []uint64) bool {
				var cell [2]uint64
				copy(cell[:], row)
				m[cell]++
				return true
			})
			rows[k] = m
			return true
		})
		return order, rows
	}
	aOrder, aRows := collect(a)
	bOrder, bRows := collect(b)
	if !reflect.DeepEqual(aOrder, bOrder) {
		t.Fatal("key iteration order differs")
	}
	if !reflect.DeepEqual(aRows, bRows) {
		t.Fatal("per-key row multisets differ")
	}
}

// TestShardedIndexSemantics: the sharded index a parallel merge produces
// must behave exactly like the equivalent plain index for every Index
// operation downstream operators use.
func TestShardedIndexSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	spec := &OutputSpec{Name: "s", Key: SimpleKey("k", 32), Cols: []string{"v"}}
	var partials []*IndexedTable
	for p := 0; p < 3; p++ {
		idx := newOutputIndex(spec, nil)
		for i := 0; i < 6000; i++ {
			idx.Insert(uint64(rng.Intn(1<<30)), []uint64{uint64(i)})
		}
		partials = append(partials, NewIndexedTable(spec.Name, spec.Key, spec.Cols, idx))
	}
	plain, _ := mergePartials(nil, spec, partials, nil)
	ec := &ExecContext{opts: Options{Workers: 3}}
	sharded, _ := mergePartialsParallel(ec, spec, partials)
	sh, ok := sharded.Idx.(*shardedIndex)
	if !ok {
		t.Fatal("parallel merge did not shard")
	}

	if pm, _ := plain.Idx.Min(); func() uint64 { m, _ := sh.Min(); return m }() != pm {
		t.Fatal("Min differs")
	}
	if pm, _ := plain.Idx.Max(); func() uint64 { m, _ := sh.Max(); return m }() != pm {
		t.Fatal("Max differs")
	}
	if sh.PayloadWidth() != plain.Idx.PayloadWidth() {
		t.Fatal("PayloadWidth differs")
	}

	// Point lookups and batch lookups, hits and misses.
	probes := make([]uint64, 0, 6000)
	for i := 0; i < 4000; i++ {
		probes = append(probes, uint64(rng.Intn(1<<30)))
	}
	hits := 0
	plain.Idx.Iterate(func(k uint64, _ *duplist.List) bool {
		probes = append(probes, k)
		hits++
		return hits < 2000
	})
	for _, k := range probes {
		a, b := plain.Idx.Lookup(k), sh.Lookup(k)
		if (a == nil) != (b == nil) {
			t.Fatalf("Lookup(%d) presence differs", k)
		}
		if a != nil && a.Len() != b.Len() {
			t.Fatalf("Lookup(%d) multiplicity differs", k)
		}
	}
	got := map[int]int{}
	sh.LookupBatch(probes, func(i int, vals *duplist.List) {
		if vals != nil {
			got[i] = vals.Len()
		}
	})
	want := map[int]int{}
	plain.Idx.LookupBatch(probes, func(i int, vals *duplist.List) {
		if vals != nil {
			want[i] = vals.Len()
		}
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("LookupBatch results differ")
	}

	// Range scans, including ones spanning shard boundaries.
	for trial := 0; trial < 50; trial++ {
		lo := uint64(rng.Intn(1 << 30))
		hi := lo + uint64(rng.Intn(1<<28))
		var a, b []uint64
		plain.Idx.Range(lo, min(hi, keySpaceMax(32)), func(k uint64, _ *duplist.List) bool {
			a = append(a, k)
			return true
		})
		sh.Range(lo, min(hi, keySpaceMax(32)), func(k uint64, _ *duplist.List) bool {
			b = append(b, k)
			return true
		})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Range(%d,%d) differs: %d vs %d keys", lo, hi, len(a), len(b))
		}
	}

	// Inserting after the merge routes to the owning shard.
	preKeys := sh.Keys()
	sh.Insert(0, []uint64{7})
	sh.Insert(keySpaceMax(32), []uint64{8})
	if sh.Keys() < preKeys+1 {
		t.Fatal("post-merge inserts lost")
	}
	if sh.Lookup(keySpaceMax(32)) == nil {
		t.Fatal("post-merge insert at key-space edge not found")
	}
}
