package core

import (
	"sync"
	"sync/atomic"
)

// Morsel-driven parallelism on a plan-wide shared worker pool.
//
// The paper (Section 7) identifies the prefix tree's deterministic,
// unbalanced shape as the enabler for intra-operator parallelism: a key's
// position in the tree is fixed, so the key space splits into disjoint
// subtrees that workers can process without coordination. The seed
// implementation exploited this in the narrowest possible way — each
// operator statically split its key space into exactly Workers partitions
// and merged the partial outputs sequentially, while independent plan
// branches spawned unbounded extra goroutines.
//
// The Scheduler replaces both mechanisms with one coordinated pool:
//
//   - Inter-operator parallelism: the executor resolves independent plan
//     branches through Fork, which runs them on pool workers instead of
//     fresh goroutines.
//   - Intra-operator parallelism: operators split their scans into many
//     small key-range *morsels* (MorselsPerWorker × Workers, aligned to
//     prefix-subtree boundaries by partitionBounds) and submit them through
//     ForEachWorker. Idle workers steal the next unclaimed morsel, so a
//     skewed key distribution — where a static split would leave one
//     partition with nearly all the data — keeps every worker busy.
//
// The pool is bounded: across the whole plan, no more than Workers
// goroutines ever execute concurrently (the caller's goroutine counts as
// one; at most Workers−1 helpers exist at any instant). Submitting work
// never blocks — when the pool is saturated, the submitting goroutine runs
// the work inline — so nested Fork/ForEachWorker calls cannot deadlock.

// DefaultMorselsPerWorker is the morsel fan-out factor used when Options
// does not set one: each parallel operator splits its key space into
// Workers × DefaultMorselsPerWorker morsels. More morsels mean finer work
// stealing (better skew resistance) at the cost of more partial outputs to
// merge.
const DefaultMorselsPerWorker = 4

// A Scheduler owns a bounded budget of worker goroutines shared by every
// operator of one plan execution (and, later, by every concurrent plan that
// uses the same Scheduler). The zero-cost way to think about it: the
// calling goroutine is worker zero, and tokens admit up to Workers−1
// helpers.
type Scheduler struct {
	workers int
	tokens  chan struct{}
}

// NewScheduler creates a pool of the given size. Sizes below one are
// clamped to one (serial execution: all work runs on the caller).
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{workers: workers, tokens: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		s.tokens <- struct{}{}
	}
	return s
}

// Workers reports the pool size.
func (s *Scheduler) Workers() int {
	if s == nil {
		return 1
	}
	return s.workers
}

// parallel reports whether the pool can run anything concurrently.
func (s *Scheduler) parallel() bool { return s != nil && s.workers > 1 }

// acquire reserves one helper slot without blocking; callers fall back to
// running work inline when the pool is saturated.
func (s *Scheduler) acquire() bool {
	select {
	case <-s.tokens:
		return true
	default:
		return false
	}
}

func (s *Scheduler) release() { s.tokens <- struct{}{} }

// Fork runs the tasks concurrently on the pool and returns the first
// error. The calling goroutine always participates: tasks that cannot get
// a pool worker run inline, so Fork never blocks waiting for capacity and
// nests safely (a task may Fork or ForEachWorker again).
func (s *Scheduler) Fork(tasks ...func() error) error {
	switch len(tasks) {
	case 0:
		return nil
	case 1:
		return tasks[0]()
	}
	errs := make([]error, len(tasks))
	spawned := make([]bool, len(tasks))
	var wg sync.WaitGroup
	if s.parallel() {
		for i := 1; i < len(tasks); i++ {
			if !s.acquire() {
				break // saturated: the remainder runs inline below
			}
			spawned[i] = true
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer s.release()
				errs[i] = tasks[i]()
			}(i)
		}
	}
	errs[0] = tasks[0]()
	for i := 1; i < len(tasks); i++ {
		if !spawned[i] {
			errs[i] = tasks[i]()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachWorker processes n morsels on the pool. Up to Workers loops run
// concurrently; each loop claims the next unclaimed morsel from a shared
// counter, which is what makes the schedule work-stealing: a loop stuck on
// an expensive morsel simply stops claiming, and the idle loops drain the
// rest.
//
// body receives a dense worker slot in [0, Workers()) that is stable for
// the duration of one loop — operators use it to accumulate into private
// per-worker partial outputs without synchronization. The first error
// stops all loops from claiming further morsels and is returned.
func (s *Scheduler) ForEachWorker(n int, body func(worker, morsel int) error) error {
	if n <= 0 {
		return nil
	}
	var next atomic.Int64
	var failed atomic.Bool
	errs := make([]error, s.Workers())
	loop := func(w int) {
		for !failed.Load() {
			m := int(next.Add(1) - 1)
			if m >= n {
				return
			}
			if err := body(w, m); err != nil {
				errs[w] = err
				failed.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
	if s.parallel() {
		for w := 1; w < s.workers && w < n; w++ {
			if !s.acquire() {
				break // pool busy elsewhere: the caller loop absorbs the rest
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer s.release()
				loop(w)
			}(w)
		}
	}
	loop(0)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
