package ssb

// SQLTexts holds the thirteen SSB queries in the paper's SQL dialect
// (Figure 5 and Listings 1–2 show 2.3, 1.1 and 4.1 verbatim; the rest
// follow the benchmark specification). They feed the SQL front end in
// package sql and the qpptsql shell.
var SQLTexts = map[string]string{
	"1.1": `select sum(lo_extendedprice*lo_discount) as revenue
		from lineorder, ` + "`date`" + `
		where lo_orderdate = d_datekey
		and d_year = 1993
		and lo_discount between 1 and 3
		and lo_quantity < 25;`,

	"1.2": `select sum(lo_extendedprice*lo_discount) as revenue
		from lineorder, ` + "`date`" + `
		where lo_orderdate = d_datekey
		and d_yearmonthnum = 199401
		and lo_discount between 4 and 6
		and lo_quantity between 26 and 35;`,

	"1.3": `select sum(lo_extendedprice*lo_discount) as revenue
		from lineorder, ` + "`date`" + `
		where lo_orderdate = d_datekey
		and d_weeknuminyear = 6
		and d_year = 1994
		and lo_discount between 5 and 7
		and lo_quantity between 26 and 35;`,

	"2.1": `select sum(lo_revenue), d_year, p_brand1
		from lineorder, ` + "`date`" + `, part, supplier
		where lo_orderdate = d_datekey
		and lo_partkey = p_partkey
		and lo_suppkey = s_suppkey
		and p_category = 'MFGR#12'
		and s_region = 'AMERICA'
		group by d_year, p_brand1
		order by d_year, p_brand1;`,

	"2.2": `select sum(lo_revenue), d_year, p_brand1
		from lineorder, ` + "`date`" + `, part, supplier
		where lo_orderdate = d_datekey
		and lo_partkey = p_partkey
		and lo_suppkey = s_suppkey
		and p_brand1 between 'MFGR#2221' and 'MFGR#2228'
		and s_region = 'ASIA'
		group by d_year, p_brand1
		order by d_year, p_brand1;`,

	"2.3": `select sum(lo_revenue), d_year, p_brand1
		from lineorder, ` + "`date`" + `, part, supplier
		where lo_orderdate = d_datekey
		and lo_partkey = p_partkey
		and lo_suppkey = s_suppkey
		and p_brand1 = 'MFGR#2221'
		and s_region = 'EUROPE'
		group by d_year, p_brand1
		order by d_year, p_brand1;`,

	"3.1": `select c_nation, s_nation, d_year, sum(lo_revenue) as revenue
		from customer, lineorder, supplier, ` + "`date`" + `
		where lo_custkey = c_custkey
		and lo_suppkey = s_suppkey
		and lo_orderdate = d_datekey
		and c_region = 'ASIA'
		and s_region = 'ASIA'
		and d_year between 1992 and 1997
		group by c_nation, s_nation, d_year
		order by d_year asc, revenue desc;`,

	"3.2": `select c_city, s_city, d_year, sum(lo_revenue) as revenue
		from customer, lineorder, supplier, ` + "`date`" + `
		where lo_custkey = c_custkey
		and lo_suppkey = s_suppkey
		and lo_orderdate = d_datekey
		and c_nation = 'UNITED STATES'
		and s_nation = 'UNITED STATES'
		and d_year between 1992 and 1997
		group by c_city, s_city, d_year
		order by d_year asc, revenue desc;`,

	"3.3": `select c_city, s_city, d_year, sum(lo_revenue) as revenue
		from customer, lineorder, supplier, ` + "`date`" + `
		where lo_custkey = c_custkey
		and lo_suppkey = s_suppkey
		and lo_orderdate = d_datekey
		and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5')
		and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5')
		and d_year between 1992 and 1997
		group by c_city, s_city, d_year
		order by d_year asc, revenue desc;`,

	"3.4": `select c_city, s_city, d_year, sum(lo_revenue) as revenue
		from customer, lineorder, supplier, ` + "`date`" + `
		where lo_custkey = c_custkey
		and lo_suppkey = s_suppkey
		and lo_orderdate = d_datekey
		and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5')
		and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5')
		and d_yearmonth = 'Dec1997'
		group by c_city, s_city, d_year
		order by d_year asc, revenue desc;`,

	"4.1": `select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit
		from ` + "`date`" + `, customer, supplier, part, lineorder
		where lo_custkey = c_custkey
		and lo_suppkey = s_suppkey
		and lo_partkey = p_partkey
		and lo_orderdate = d_datekey
		and c_region = 'AMERICA'
		and s_region = 'AMERICA'
		and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
		group by d_year, c_nation
		order by d_year, c_nation;`,

	"4.2": `select d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) as profit
		from ` + "`date`" + `, customer, supplier, part, lineorder
		where lo_custkey = c_custkey
		and lo_suppkey = s_suppkey
		and lo_partkey = p_partkey
		and lo_orderdate = d_datekey
		and c_region = 'AMERICA'
		and s_region = 'AMERICA'
		and d_year in (1997, 1998)
		and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
		group by d_year, s_nation, p_category
		order by d_year, s_nation, p_category;`,

	"4.3": `select d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) as profit
		from ` + "`date`" + `, customer, supplier, part, lineorder
		where lo_custkey = c_custkey
		and lo_suppkey = s_suppkey
		and lo_partkey = p_partkey
		and lo_orderdate = d_datekey
		and c_region = 'AMERICA'
		and s_nation = 'UNITED STATES'
		and d_year in (1997, 1998)
		group by d_year, s_city, p_brand1
		order by d_year, s_city, p_brand1;`,
}
