package ssb

import (
	"math"
	"strings"
	"testing"
)

func TestCardinalityScaling(t *testing.T) {
	c, s, p, l := cardinalities(1)
	if c != 30000 || s != 2000 || p != 200000 || l != 6000000 {
		t.Fatalf("SF 1 cardinalities: %d %d %d %d", c, s, p, l)
	}
	c, s, p, l = cardinalities(4)
	if c != 120000 || s != 8000 || l != 24000000 {
		t.Fatalf("SF 4 cardinalities: %d %d %d", c, s, l)
	}
	if p != 200000*3 { // 1 + log2(4)
		t.Fatalf("SF 4 parts = %d", p)
	}
	c, s, p, l = cardinalities(0.0001)
	if c < 100 || s < 20 || p < 200 || l < 1000 {
		t.Fatalf("tiny SF ignores minimums: %d %d %d %d", c, s, p, l)
	}
}

func TestDateDimensionShape(t *testing.T) {
	d := Generate(GenConfig{SF: 0.001, Seed: 1})
	cols := map[string][]uint64{}
	var yearmonth []string
	for _, c := range d.Tables["date"] {
		if c.Name == "d_yearmonth" {
			yearmonth = c.Strs
			continue
		}
		cols[c.Name] = c.Ints
	}
	if len(cols["d_datekey"]) != 2557 {
		t.Fatalf("date rows = %d", len(cols["d_datekey"]))
	}
	// Datekeys strictly increasing, consistent with year/month fields.
	for i := range cols["d_datekey"] {
		dk := cols["d_datekey"][i]
		y, m, day := dk/10000, dk/100%100, dk%100
		if y < 1992 || y > 1998 || m < 1 || m > 12 || day < 1 || day > 31 {
			t.Fatalf("bad datekey %d", dk)
		}
		if cols["d_year"][i] != y || cols["d_yearmonthnum"][i] != y*100+m {
			t.Fatalf("inconsistent year fields at %d", dk)
		}
		if w := cols["d_weeknuminyear"][i]; w < 1 || w > 53 {
			t.Fatalf("week %d at %d", w, dk)
		}
		if i > 0 && dk <= cols["d_datekey"][i-1] {
			t.Fatalf("datekeys not increasing at %d", i)
		}
	}
	if yearmonth[0] != "Jan1992" || yearmonth[len(yearmonth)-1] != "Dec1998" {
		t.Fatalf("yearmonth bounds: %s..%s", yearmonth[0], yearmonth[len(yearmonth)-1])
	}
	// Feb 29 exists in 1992 and 1996 only.
	leaps := 0
	for _, dk := range cols["d_datekey"] {
		if dk%10000 == 229 {
			leaps++
		}
	}
	if leaps != 2 {
		t.Fatalf("%d leap days, want 2", leaps)
	}
}

func TestDimensionDomains(t *testing.T) {
	d := Generate(GenConfig{SF: 0.05, Seed: 2})
	// Customer regions roughly uniform over the five regions.
	var regions []string
	var cities []string
	var nations []string
	for _, c := range d.Tables["customer"] {
		switch c.Name {
		case "c_region":
			regions = c.Strs
		case "c_city":
			cities = c.Strs
		case "c_nation":
			nations = c.Strs
		}
	}
	count := map[string]int{}
	for _, r := range regions {
		count[r]++
	}
	if len(count) != 5 {
		t.Fatalf("%d regions", len(count))
	}
	expected := float64(len(regions)) / 5
	for r, n := range count {
		if math.Abs(float64(n)-expected) > expected/2 {
			t.Errorf("region %s count %d far from uniform %f", r, n, expected)
		}
	}
	// Cities derive from nations: 9-char prefix + digit.
	for i, city := range cities {
		if len(city) != 10 {
			t.Fatalf("city %q not 10 chars", city)
		}
		padded := nations[i] + "          "
		if city[:9] != padded[:9] {
			t.Fatalf("city %q does not match nation %q", city, nations[i])
		}
	}
	// Part brands extend their category which extends the manufacturer.
	var mfgr, cat, brand []string
	for _, c := range d.Tables["part"] {
		switch c.Name {
		case "p_mfgr":
			mfgr = c.Strs
		case "p_category":
			cat = c.Strs
		case "p_brand1":
			brand = c.Strs
		}
	}
	for i := range mfgr {
		if !strings.HasPrefix(cat[i], mfgr[i]) || !strings.HasPrefix(brand[i], cat[i]) {
			t.Fatalf("hierarchy broken: %s / %s / %s", mfgr[i], cat[i], brand[i])
		}
	}
}

func TestLineorderMeasures(t *testing.T) {
	d := Generate(GenConfig{SF: 0.002, Seed: 5})
	cols := map[string][]uint64{}
	for _, c := range d.Tables["lineorder"] {
		cols[c.Name] = c.Ints
	}
	for i := range cols["lo_quantity"] {
		q, disc := cols["lo_quantity"][i], cols["lo_discount"][i]
		if q < 1 || q > 50 {
			t.Fatalf("quantity %d", q)
		}
		if disc > 10 {
			t.Fatalf("discount %d", disc)
		}
		if cols["lo_supplycost"][i] >= cols["lo_revenue"][i] {
			t.Fatalf("row %d: supplycost %d >= revenue %d (profit must stay positive)",
				i, cols["lo_supplycost"][i], cols["lo_revenue"][i])
		}
		if i > 0 && cols["lo_orderkey"][i] < cols["lo_orderkey"][i-1] {
			t.Fatalf("orderkeys not monotone at %d", i)
		}
	}
}
