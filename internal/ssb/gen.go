// Package ssb implements the Star Schema Benchmark (O'Neil et al.) as used
// by the paper's evaluation (Section 5): a deterministic data generator
// with the standard star schema — the lineorder fact table surrounded by
// the date, customer, supplier and part dimensions — and all thirteen
// benchmark queries (1.1–4.3) implemented three times: as QPPT plans, on
// the column-at-a-time baseline engine, and on the vector-at-a-time
// baseline engine. Cross-engine result equality is the strongest
// correctness check in this repository.
package ssb

import (
	"fmt"
	"math"
	"math/rand"

	"qppt/internal/catalog"
)

// GenConfig parameterizes the generator.
type GenConfig struct {
	// SF is the scale factor: lineorder has ~6,000,000×SF rows. The
	// paper uses SF=15; tests use small fractions. Values below 1 scale
	// every table down proportionally (with sane minimums).
	SF float64
	// Seed makes generation deterministic.
	Seed int64
}

// Data is the generated benchmark data in loadable column form.
type Data struct {
	SF     float64
	Tables map[string][]catalog.ColumnData
}

// Regions and nations follow the TPC-H hierarchy SSB inherits.
var regionNations = map[string][]string{
	"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
	"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
	"ASIA":        {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
	"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
	"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var months = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

var mktSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

// city derives an SSB city from a nation: the nation name padded/truncated
// to 9 characters plus a digit 0–9 (e.g. "UNITED KINGDOM" → "UNITED KI5").
func city(nation string, i int) string {
	padded := nation + "          "
	return padded[:9] + string(rune('0'+i%10))
}

func daysInMonth(y, m int) int {
	switch m {
	case 2:
		if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
			return 29
		}
		return 28
	case 4, 6, 9, 11:
		return 30
	default:
		return 31
	}
}

// Cardinalities per the SSB specification, with proportional scaling for
// fractional SF (the paper's experiments only vary SF).
func cardinalities(sf float64) (nCust, nSupp, nPart, nLine int) {
	scale := func(base int, minimum int) int {
		n := int(math.Round(float64(base) * sf))
		if n < minimum {
			n = minimum
		}
		return n
	}
	nCust = scale(30000, 100)
	nSupp = scale(2000, 20)
	if sf >= 1 {
		nPart = 200000 * (1 + int(math.Log2(sf)))
	} else {
		nPart = scale(200000, 200)
	}
	nLine = scale(6000000, 1000)
	return
}

// Generate builds a deterministic SSB dataset.
func Generate(cfg GenConfig) *Data {
	if cfg.SF <= 0 {
		cfg.SF = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nCust, nSupp, nPart, nLine := cardinalities(cfg.SF)

	d := &Data{SF: cfg.SF, Tables: make(map[string][]catalog.ColumnData)}
	dateKeys := genDate(d)
	genCustomer(d, rng, nCust)
	genSupplier(d, rng, nSupp)
	genPart(d, rng, nPart)
	genLineorder(d, rng, nLine, nCust, nSupp, nPart, dateKeys)
	return d
}

// genDate builds the 7-year date dimension (1992–1998) and returns the
// datekey domain for the fact generator.
func genDate(d *Data) []uint64 {
	var (
		datekey, year, yearmonthnum, weeknum []uint64
		yearmonth                            []string
	)
	for y := 1992; y <= 1998; y++ {
		dayOfYear := 0
		for m := 1; m <= 12; m++ {
			for day := 1; day <= daysInMonth(y, m); day++ {
				dayOfYear++
				datekey = append(datekey, uint64(y*10000+m*100+day))
				year = append(year, uint64(y))
				yearmonthnum = append(yearmonthnum, uint64(y*100+m))
				yearmonth = append(yearmonth, fmt.Sprintf("%s%d", months[m-1], y))
				weeknum = append(weeknum, uint64((dayOfYear-1)/7+1))
			}
		}
	}
	d.Tables["date"] = []catalog.ColumnData{
		{Name: "d_datekey", Ints: datekey},
		{Name: "d_year", Ints: year},
		{Name: "d_yearmonthnum", Ints: yearmonthnum},
		{Name: "d_yearmonth", Strs: yearmonth},
		{Name: "d_weeknuminyear", Ints: weeknum},
	}
	return datekey
}

func genCustomer(d *Data, rng *rand.Rand, n int) {
	key := make([]uint64, n)
	cities := make([]string, n)
	nations := make([]string, n)
	regs := make([]string, n)
	segs := make([]string, n)
	for i := 0; i < n; i++ {
		region := regions[rng.Intn(len(regions))]
		nation := regionNations[region][rng.Intn(5)]
		key[i] = uint64(i + 1)
		cities[i] = city(nation, rng.Intn(10))
		nations[i] = nation
		regs[i] = region
		segs[i] = mktSegments[rng.Intn(len(mktSegments))]
	}
	d.Tables["customer"] = []catalog.ColumnData{
		{Name: "c_custkey", Ints: key},
		{Name: "c_city", Strs: cities},
		{Name: "c_nation", Strs: nations},
		{Name: "c_region", Strs: regs},
		{Name: "c_mktsegment", Strs: segs},
	}
}

func genSupplier(d *Data, rng *rand.Rand, n int) {
	key := make([]uint64, n)
	cities := make([]string, n)
	nations := make([]string, n)
	regs := make([]string, n)
	for i := 0; i < n; i++ {
		region := regions[rng.Intn(len(regions))]
		nation := regionNations[region][rng.Intn(5)]
		key[i] = uint64(i + 1)
		cities[i] = city(nation, rng.Intn(10))
		nations[i] = nation
		regs[i] = region
	}
	d.Tables["supplier"] = []catalog.ColumnData{
		{Name: "s_suppkey", Ints: key},
		{Name: "s_city", Strs: cities},
		{Name: "s_nation", Strs: nations},
		{Name: "s_region", Strs: regs},
	}
}

func genPart(d *Data, rng *rand.Rand, n int) {
	key := make([]uint64, n)
	mfgrs := make([]string, n)
	cats := make([]string, n)
	brands := make([]string, n)
	sizes := make([]uint64, n)
	for i := 0; i < n; i++ {
		m := rng.Intn(5) + 1  // MFGR#1..5
		c := rng.Intn(5) + 1  // category digit 1..5
		b := rng.Intn(40) + 1 // brand 1..40 within the category
		key[i] = uint64(i + 1)
		mfgrs[i] = fmt.Sprintf("MFGR#%d", m)
		cats[i] = fmt.Sprintf("MFGR#%d%d", m, c)
		brands[i] = fmt.Sprintf("MFGR#%d%d%d", m, c, b)
		sizes[i] = uint64(rng.Intn(50) + 1)
	}
	d.Tables["part"] = []catalog.ColumnData{
		{Name: "p_partkey", Ints: key},
		{Name: "p_mfgr", Strs: mfgrs},
		{Name: "p_category", Strs: cats},
		{Name: "p_brand1", Strs: brands},
		{Name: "p_size", Ints: sizes},
	}
}

func genLineorder(d *Data, rng *rand.Rand, n, nCust, nSupp, nPart int, dateKeys []uint64) {
	orderkey := make([]uint64, n)
	linenum := make([]uint64, n)
	custkey := make([]uint64, n)
	partkey := make([]uint64, n)
	suppkey := make([]uint64, n)
	orderdate := make([]uint64, n)
	quantity := make([]uint64, n)
	extprice := make([]uint64, n)
	discount := make([]uint64, n)
	revenue := make([]uint64, n)
	supplycost := make([]uint64, n)
	line := 0
	for i := 0; i < n; i++ {
		if line == 0 {
			line = rng.Intn(7) + 1 // orders have 1–7 lines
		}
		orderkey[i] = uint64(i/7 + 1)
		linenum[i] = uint64(line)
		line--
		custkey[i] = uint64(rng.Intn(nCust) + 1)
		partkey[i] = uint64(rng.Intn(nPart) + 1)
		suppkey[i] = uint64(rng.Intn(nSupp) + 1)
		orderdate[i] = dateKeys[rng.Intn(len(dateKeys))]
		q := uint64(rng.Intn(50) + 1)
		quantity[i] = q
		price := q * uint64(rng.Intn(1000)+1000) // unit price 1000–1999
		extprice[i] = price
		disc := uint64(rng.Intn(11)) // 0–10 percent
		discount[i] = disc
		revenue[i] = price * (100 - disc) / 100
		supplycost[i] = price * 6 / 10
	}
	d.Tables["lineorder"] = []catalog.ColumnData{
		{Name: "lo_orderkey", Ints: orderkey},
		{Name: "lo_linenumber", Ints: linenum},
		{Name: "lo_custkey", Ints: custkey},
		{Name: "lo_partkey", Ints: partkey},
		{Name: "lo_suppkey", Ints: suppkey},
		{Name: "lo_orderdate", Ints: orderdate},
		{Name: "lo_quantity", Ints: quantity},
		{Name: "lo_extendedprice", Ints: extprice},
		{Name: "lo_discount", Ints: discount},
		{Name: "lo_revenue", Ints: revenue},
		{Name: "lo_supplycost", Ints: supplycost},
	}
}
