package ssb

import (
	"testing"

	"qppt/internal/sql"
)

// TestAdviseSSBWorkload: the index advisor over the full 13-query SSB
// workload must recommend exactly the indexes the plans then use, with no
// duplicates, and planning after Advise must create no further indexes.
func TestAdviseSSBWorkload(t *testing.T) {
	ds := testDataset(t)
	planner := sql.NewPlanner(ds.Cat)
	workload := make([]string, 0, len(QueryIDs))
	for _, qid := range QueryIDs {
		workload = append(workload, SQLTexts[qid])
	}
	recs, err := planner.Advise(workload, sql.Options{UseSelectJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	seen := map[string]bool{}
	factIdx := 0
	for _, r := range recs {
		name := r.Def.IndexName(r.Table)
		if seen[name] {
			t.Errorf("duplicate recommendation %s", name)
		}
		seen[name] = true
		if len(r.Queries) == 0 {
			t.Errorf("%s recommended for no query", name)
		}
		if r.Table == "lineorder" {
			factIdx++
		}
		// The recommendation must already be provisioned (Advise warms).
		if ds.Cat.Table(r.Table).Index(name) == nil {
			t.Errorf("%s not built by Advise", name)
		}
	}
	if factIdx < 3 {
		t.Errorf("only %d lineorder indexes recommended; the workload needs several entry points", factIdx)
	}
	// Re-advising is idempotent.
	again, err := planner.Advise(workload, sql.Options{UseSelectJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(recs) {
		t.Errorf("re-advise returned %d recs, want %d", len(again), len(recs))
	}
}

func TestAdviseErrors(t *testing.T) {
	ds := testDataset(t)
	planner := sql.NewPlanner(ds.Cat)
	if _, err := planner.Advise([]string{"not sql"}, sql.Options{}); err == nil {
		t.Error("bad statement accepted")
	}
	if _, err := planner.Advise([]string{"select sum(x) from nosuch"}, sql.Options{}); err == nil {
		t.Error("unknown table accepted")
	}
}
