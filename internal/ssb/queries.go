package ssb

import (
	"fmt"
	"sort"
)

// QueryIDs lists the thirteen SSB queries in benchmark order.
var QueryIDs = []string{"1.1", "1.2", "1.3", "2.1", "2.2", "2.3", "3.1", "3.2", "3.3", "3.4", "4.1", "4.2", "4.3"}

// A QueryResult is a normalized query result: attribute names plus rows in
// the query's ORDER BY order (ties broken by the remaining columns so that
// results compare exactly across engines).
type QueryResult struct {
	Attrs []string
	Rows  [][]uint64
}

// Equal reports whether two results are identical.
func (r *QueryResult) Equal(o *QueryResult) bool {
	if len(r.Attrs) != len(o.Attrs) || len(r.Rows) != len(o.Rows) {
		return false
	}
	for i := range r.Attrs {
		if r.Attrs[i] != o.Attrs[i] {
			return false
		}
	}
	for i := range r.Rows {
		for c := range r.Rows[i] {
			if r.Rows[i][c] != o.Rows[i][c] {
				return false
			}
		}
	}
	return true
}

// orderRows sorts rows by the given columns (negative = that column
// descending, encoded as -(col+1)), breaking ties with all remaining
// columns ascending to make the order total.
func orderRows(rows [][]uint64, keys ...int) {
	if len(rows) == 0 {
		return
	}
	width := len(rows[0])
	used := make([]bool, width)
	full := append([]int{}, keys...)
	for _, k := range keys {
		c := k
		if c < 0 {
			c = -c - 1
		}
		used[c] = true
	}
	for c := 0; c < width; c++ {
		if !used[c] {
			full = append(full, c)
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for _, k := range full {
			c, desc := k, false
			if c < 0 {
				c, desc = -c-1, true
			}
			if ra[c] != rb[c] {
				if desc {
					return ra[c] > rb[c]
				}
				return ra[c] < rb[c]
			}
		}
		return false
	})
}

// project reorders row columns.
func project(rows [][]uint64, cols ...int) [][]uint64 {
	out := make([][]uint64, len(rows))
	for i, r := range rows {
		nr := make([]uint64, len(cols))
		for j, c := range cols {
			nr[j] = r[c]
		}
		out[i] = nr
	}
	return out
}

// pack packs small fields (each < 2^16) into one uint64 group key for the
// baseline engines' hash aggregations.
func pack(fields ...uint64) uint64 {
	var k uint64
	for _, f := range fields {
		k = k<<16 | (f & 0xFFFF)
	}
	return k
}

// unpack splits a packed key back into n fields.
func unpack(k uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = k & 0xFFFF
		k >>= 16
	}
	return out
}

// querySchema returns the normalized output attributes per query.
func querySchema(qid string) []string {
	switch qid {
	case "1.1", "1.2", "1.3":
		return []string{"revenue"}
	case "2.1", "2.2", "2.3":
		return []string{"d_year", "p_brand1", "revenue"}
	case "3.1":
		return []string{"c_nation", "s_nation", "d_year", "revenue"}
	case "3.2", "3.3", "3.4":
		return []string{"c_city", "s_city", "d_year", "revenue"}
	case "4.1":
		return []string{"d_year", "c_nation", "profit"}
	case "4.2":
		return []string{"d_year", "s_nation", "p_category", "profit"}
	case "4.3":
		return []string{"d_year", "s_city", "p_brand1", "profit"}
	}
	panic(fmt.Sprintf("ssb: unknown query %q", qid))
}

// DecodeRow renders a normalized result row as strings using the dataset's
// dictionaries (for human-readable output in tools and examples).
func (ds *Dataset) DecodeRow(qid string, row []uint64) []string {
	attrs := querySchema(qid)
	out := make([]string, len(attrs))
	for i, a := range attrs {
		switch a {
		case "p_brand1", "p_category":
			out[i] = ds.Part.Decode(a, row[i])
		case "c_nation", "c_city":
			out[i] = ds.Customer.Decode(a, row[i])
		case "s_nation", "s_city":
			out[i] = ds.Supplier.Decode(a, row[i])
		default:
			out[i] = fmt.Sprintf("%d", row[i])
		}
	}
	return out
}
