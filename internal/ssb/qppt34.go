package ssb

import "qppt/internal/core"

// dimSel bundles a dimension selection: its base index, the predicate on
// that index's key, the key attribute of the output (the dimension's
// foreign-key column in lineorder terms), and the attribute carried into
// the output payload (empty for pure existence filters).
type dimSel struct {
	idx    *core.IndexedTable
	pred   core.KeyPred
	outKey string
	carry  string
}

// selection materializes a dimSel as a Selection operator producing an
// index keyed on the dimension key with the carried attribute as payload.
func (ds *Dataset) selection(name string, d dimSel, keyBits uint) *core.Selection {
	out := core.OutputSpec{
		Name:    name,
		Key:     core.SimpleKey(d.outKey, keyBits),
		KeyRefs: []core.Ref{{Input: 0, Attr: d.outKey}},
	}
	if d.carry != "" {
		out.Cols = []string{d.carry}
		out.ColExprs = []core.RowExpr{core.Attr(0, d.carry)}
	}
	return &core.Selection{Input: &core.Base{Table: d.idx}, Pred: d.pred, Out: out}
}

// planQ3 builds the Q3.x plans: customer, supplier and date selections
// star-joined against lineorder-by-custkey, grouped by
// (d_year, customer attribute, supplier attribute) with sum(lo_revenue).
// With select-join the customer selection is fused into the star join.
func (ds *Dataset) planQ3(opt PlanOptions, cust, supp, date dimSel) (*core.Plan, error) {
	loMain := ds.Lineorder.MustIndex([]string{"lo_custkey"},
		"lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue", "lo_supplycost")
	selSupp := ds.selection("σ_supplier", supp, ds.Supplier.Bits("s_suppkey"))
	selDate := ds.selection("σ_date", date, ds.Date.Bits("d_datekey"))

	groupKey := core.GroupKey(
		[]string{"d_year", cust.carry, supp.carry},
		[]uint{ds.Date.Bits("d_year"), ds.Customer.Bits(cust.carry), ds.Supplier.Bits(supp.carry)})
	cols := []string{"revenue"}

	if opt.UseSelectJoin {
		sj := &core.SelectJoin{
			SelInput:      &core.Base{Table: cust.idx},
			Pred:          cust.pred,
			Main:          &core.Base{Table: loMain},
			ProbeMainWith: core.Ref{Input: 0, Attr: cust.outKey},
			Assists: []core.Assist{
				{Input: selSupp, ProbeWith: core.Ref{Input: 1, Attr: "lo_suppkey"}},
				{Input: selDate, ProbeWith: core.Ref{Input: 1, Attr: "lo_orderdate"}},
			},
			Out: core.OutputSpec{
				Name:     "Γ_year_c_s",
				Key:      groupKey,
				KeyRefs:  []core.Ref{{Input: 3, Attr: "d_year"}, {Input: 0, Attr: cust.carry}, {Input: 2, Attr: supp.carry}},
				Cols:     cols,
				ColExprs: []core.RowExpr{core.Attr(1, "lo_revenue")},
				Fold:     core.FoldSum(0),
			},
		}
		return &core.Plan{Root: sj}, nil
	}

	selCust := ds.selection("σ_customer", cust, ds.Customer.Bits("c_custkey"))
	join := &core.Join{
		Left:  &core.Base{Table: loMain},
		Right: selCust,
		Assists: []core.Assist{
			{Input: selSupp, ProbeWith: core.Ref{Input: 0, Attr: "lo_suppkey"}},
			{Input: selDate, ProbeWith: core.Ref{Input: 0, Attr: "lo_orderdate"}},
		},
		Out: core.OutputSpec{
			Name:     "Γ_year_c_s",
			Key:      groupKey,
			KeyRefs:  []core.Ref{{Input: 3, Attr: "d_year"}, {Input: 1, Attr: cust.carry}, {Input: 2, Attr: supp.carry}},
			Cols:     cols,
			ColExprs: []core.RowExpr{core.Attr(0, "lo_revenue")},
			Fold:     core.FoldSum(0),
		},
	}
	return &core.Plan{Root: join}, nil
}

// q4Main returns the lineorder-by-custkey main index every Q4.x plan
// starts from.
func (ds *Dataset) q4Main() *core.IndexedTable {
	return ds.Lineorder.MustIndex([]string{"lo_custkey"},
		"lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue", "lo_supplycost")
}

// planQ41 builds query 4.1 honoring PlanOptions.JoinArity — the Figure 9
// sweep. The arity caps how many tables one composed join operator may
// join; lower arities chain additional 2-way joins, each materializing an
// intermediate index keyed on the next join attribute.
func (ds *Dataset) planQ41(opt PlanOptions) (*core.Plan, error) {
	loMain := ds.q4Main()
	selCustSpec := dimSel{ds.Customer.MustIndex([]string{"c_region"}, "c_custkey", "c_nation"),
		ds.strPoint(ds.Customer, "c_region", "AMERICA"), "c_custkey", "c_nation"}
	selSupp := ds.selection("σ_supplier",
		dimSel{ds.Supplier.MustIndex([]string{"s_region"}, "s_suppkey"),
			ds.strPoint(ds.Supplier, "s_region", "AMERICA"), "s_suppkey", ""},
		ds.Supplier.Bits("s_suppkey"))
	selPart := ds.selection("σ_part",
		dimSel{ds.Part.MustIndex([]string{"p_mfgr"}, "p_partkey", "p_brand1", "p_category"),
			ds.strIn(ds.Part, "p_mfgr", "MFGR#1", "MFGR#2"), "p_partkey", ""},
		ds.Part.Bits("p_partkey"))
	dateIdx := &core.Base{Table: ds.Date.MustIndex([]string{"d_datekey"}, "d_year")}

	groupKey := core.GroupKey([]string{"d_year", "c_nation"},
		[]uint{ds.Date.Bits("d_year"), ds.Customer.Bits("c_nation")})
	odBits := ds.Lineorder.Bits("lo_orderdate")
	arity := opt.JoinArity
	if arity <= 0 || arity > 5 {
		arity = 5
	}

	// With select-join and full arity, the customer selection fuses into
	// the star join (the plan the paper's Figure 7 uses for the 4.x
	// queries). Arity-capped plans keep selections separate so that
	// Figure 9 isolates the join-composition effect.
	if opt.UseSelectJoin && arity == 5 {
		sj := &core.SelectJoin{
			SelInput:      &core.Base{Table: selCustSpec.idx},
			Pred:          selCustSpec.pred,
			Main:          &core.Base{Table: loMain},
			ProbeMainWith: core.Ref{Input: 0, Attr: "c_custkey"},
			Assists: []core.Assist{
				{Input: selSupp, ProbeWith: core.Ref{Input: 1, Attr: "lo_suppkey"}},
				{Input: selPart, ProbeWith: core.Ref{Input: 1, Attr: "lo_partkey"}},
				{Input: dateIdx, ProbeWith: core.Ref{Input: 1, Attr: "lo_orderdate"}},
			},
			Out: core.OutputSpec{
				Name:     "Γ_year_nation",
				Key:      groupKey,
				KeyRefs:  []core.Ref{{Input: 4, Attr: "d_year"}, {Input: 0, Attr: "c_nation"}},
				Cols:     []string{"profit"},
				ColExprs: []core.RowExpr{core.Computed(q4ProfitAt(ds, []*core.IndexedTable{selCustSpec.idx, loMain}))},
				Fold:     core.FoldSum(0),
			},
		}
		return &core.Plan{Root: sj}, nil
	}

	selCust := ds.selection("σ_customer", selCustSpec, ds.Customer.Bits("c_custkey"))
	profitLo0 := q4ProfitAt(ds, []*core.IndexedTable{loMain}) // lineorder is input 0 below

	switch arity {
	case 5: // one 5-way star join doing everything
		join := &core.Join{
			Left: &core.Base{Table: loMain}, Right: selCust,
			Assists: []core.Assist{
				{Input: selSupp, ProbeWith: core.Ref{Input: 0, Attr: "lo_suppkey"}},
				{Input: selPart, ProbeWith: core.Ref{Input: 0, Attr: "lo_partkey"}},
				{Input: dateIdx, ProbeWith: core.Ref{Input: 0, Attr: "lo_orderdate"}},
			},
			Out: core.OutputSpec{
				Name: "Γ_year_nation", Key: groupKey,
				KeyRefs:  []core.Ref{{Input: 4, Attr: "d_year"}, {Input: 1, Attr: "c_nation"}},
				Cols:     []string{"profit"},
				ColExprs: []core.RowExpr{core.Computed(profitLo0)},
				Fold:     core.FoldSum(0),
			},
		}
		return &core.Plan{Root: join}, nil

	case 4: // 4-way star join, then 2-way join-group with date
		j1 := &core.Join{
			Left: &core.Base{Table: loMain}, Right: selCust,
			Assists: []core.Assist{
				{Input: selSupp, ProbeWith: core.Ref{Input: 0, Attr: "lo_suppkey"}},
				{Input: selPart, ProbeWith: core.Ref{Input: 0, Attr: "lo_partkey"}},
			},
			Out: core.OutputSpec{
				Name: "⋈4_orderdate", Key: core.SimpleKey("lo_orderdate", odBits),
				KeyRefs:  []core.Ref{{Input: 0, Attr: "lo_orderdate"}},
				Cols:     []string{"c_nation", "profit"},
				ColExprs: []core.RowExpr{core.Attr(1, "c_nation"), core.Computed(profitLo0)},
			},
		}
		return &core.Plan{Root: ds.q4DateGroup(j1, dateIdx, groupKey)}, nil

	case 3: // 3-way star join, 2-way with part, 2-way join-group with date
		j1 := &core.Join{
			Left: &core.Base{Table: loMain}, Right: selCust,
			Assists: []core.Assist{
				{Input: selSupp, ProbeWith: core.Ref{Input: 0, Attr: "lo_suppkey"}},
			},
			Out: core.OutputSpec{
				Name: "⋈3_partkey", Key: core.SimpleKey("lo_partkey", ds.Lineorder.Bits("lo_partkey")),
				KeyRefs:  []core.Ref{{Input: 0, Attr: "lo_partkey"}},
				Cols:     []string{"lo_orderdate", "c_nation", "profit"},
				ColExprs: []core.RowExpr{core.Attr(0, "lo_orderdate"), core.Attr(1, "c_nation"), core.Computed(profitLo0)},
			},
		}
		j2 := ds.q4PartJoin(j1, selPart, odBits)
		return &core.Plan{Root: ds.q4DateGroup(j2, dateIdx, groupKey)}, nil

	default: // arity 2: a chain of 2-way joins only
		j1 := &core.Join{
			Left: &core.Base{Table: loMain}, Right: selCust,
			Out: core.OutputSpec{
				Name: "⋈2_suppkey", Key: core.SimpleKey("lo_suppkey", ds.Lineorder.Bits("lo_suppkey")),
				KeyRefs:  []core.Ref{{Input: 0, Attr: "lo_suppkey"}},
				Cols:     []string{"lo_partkey", "lo_orderdate", "c_nation", "profit"},
				ColExprs: []core.RowExpr{core.Attr(0, "lo_partkey"), core.Attr(0, "lo_orderdate"), core.Attr(1, "c_nation"), core.Computed(profitLo0)},
			},
		}
		j2 := &core.Join{
			Left: j1, Right: selSupp,
			Out: core.OutputSpec{
				Name: "⋈2_partkey", Key: core.SimpleKey("lo_partkey", ds.Lineorder.Bits("lo_partkey")),
				KeyRefs:  []core.Ref{{Input: 0, Attr: "lo_partkey"}},
				Cols:     []string{"lo_orderdate", "c_nation", "profit"},
				ColExprs: []core.RowExpr{core.Attr(0, "lo_orderdate"), core.Attr(0, "c_nation"), core.Attr(0, "profit")},
			},
		}
		j3 := ds.q4PartJoin(j2, selPart, odBits)
		return &core.Plan{Root: ds.q4DateGroup(j3, dateIdx, groupKey)}, nil
	}
}

// q4ProfitAt compiles the profit measure against a layout where lineorder
// attributes live in the given input position.
func q4ProfitAt(ds *Dataset, inputs []*core.IndexedTable) func(ctx []uint64) uint64 {
	loInput := len(inputs) - 1
	offs := core.CtxOffsets(inputs,
		core.Ref{Input: loInput, Attr: "lo_revenue"},
		core.Ref{Input: loInput, Attr: "lo_supplycost"})
	rOff, scOff := offs[0], offs[1]
	return func(ctx []uint64) uint64 { return ctx[rOff] - ctx[scOff] }
}

// q4PartJoin joins an intermediate keyed on lo_partkey with the part
// selection, producing an index keyed on lo_orderdate.
func (ds *Dataset) q4PartJoin(left core.Operator, selPart *core.Selection, odBits uint) *core.Join {
	return &core.Join{
		Left: left, Right: selPart,
		Out: core.OutputSpec{
			Name: "⋈_orderdate", Key: core.SimpleKey("lo_orderdate", odBits),
			KeyRefs:  []core.Ref{{Input: 0, Attr: "lo_orderdate"}},
			Cols:     []string{"c_nation", "profit"},
			ColExprs: []core.RowExpr{core.Attr(0, "c_nation"), core.Attr(0, "profit")},
		},
	}
}

// q4DateGroup is the final 2-way join-group with the date dimension.
func (ds *Dataset) q4DateGroup(left core.Operator, dateIdx *core.Base, groupKey core.KeySpec) *core.Join {
	return &core.Join{
		Left: left, Right: dateIdx,
		Out: core.OutputSpec{
			Name: "Γ_year_nation", Key: groupKey,
			KeyRefs:  []core.Ref{{Input: 1, Attr: "d_year"}, {Input: 0, Attr: "c_nation"}},
			Cols:     []string{"profit"},
			ColExprs: []core.RowExpr{core.Attr(0, "profit")},
			Fold:     core.FoldSum(0),
		},
	}
}

// planQ42 builds query 4.2: regions on customer and supplier, mfgr on
// part, years {1997, 1998}, grouped by (d_year, s_nation, p_category).
func (ds *Dataset) planQ42(opt PlanOptions) (*core.Plan, error) {
	loMain := ds.q4Main()
	custIdx := ds.Customer.MustIndex([]string{"c_region"}, "c_custkey", "c_nation")
	custPred := ds.strPoint(ds.Customer, "c_region", "AMERICA")
	// The supplier payload carries s_nation for the group key.
	selSupp := ds.selection("σ_supplier",
		dimSel{ds.Supplier.MustIndex([]string{"s_region"}, "s_suppkey", "s_nation"),
			ds.strPoint(ds.Supplier, "s_region", "AMERICA"), "s_suppkey", "s_nation"},
		ds.Supplier.Bits("s_suppkey"))
	selPart := ds.selection("σ_part",
		dimSel{ds.Part.MustIndex([]string{"p_mfgr"}, "p_partkey", "p_brand1", "p_category"),
			ds.strIn(ds.Part, "p_mfgr", "MFGR#1", "MFGR#2"), "p_partkey", "p_category"},
		ds.Part.Bits("p_partkey"))
	selDate := ds.selection("σ_date",
		dimSel{ds.Date.MustIndex([]string{"d_year"}, "d_datekey", "d_weeknuminyear"),
			core.In(1997, 1998), "d_datekey", "d_year"},
		ds.Date.Bits("d_datekey"))

	groupKey := core.GroupKey([]string{"d_year", "s_nation", "p_category"},
		[]uint{ds.Date.Bits("d_year"), ds.Supplier.Bits("s_nation"), ds.Part.Bits("p_category")})

	if opt.UseSelectJoin {
		sj := &core.SelectJoin{
			SelInput:      &core.Base{Table: custIdx},
			Pred:          custPred,
			Main:          &core.Base{Table: loMain},
			ProbeMainWith: core.Ref{Input: 0, Attr: "c_custkey"},
			Assists: []core.Assist{
				{Input: selSupp, ProbeWith: core.Ref{Input: 1, Attr: "lo_suppkey"}},
				{Input: selPart, ProbeWith: core.Ref{Input: 1, Attr: "lo_partkey"}},
				{Input: selDate, ProbeWith: core.Ref{Input: 1, Attr: "lo_orderdate"}},
			},
			Out: core.OutputSpec{
				Name:    "Γ_year_nation_cat",
				Key:     groupKey,
				KeyRefs: []core.Ref{{Input: 4, Attr: "d_year"}, {Input: 2, Attr: "s_nation"}, {Input: 3, Attr: "p_category"}},
				Cols:    []string{"profit"},
				ColExprs: []core.RowExpr{core.Computed(
					q4ProfitAt(ds, []*core.IndexedTable{custIdx, loMain}))},
				Fold: core.FoldSum(0),
			},
		}
		return &core.Plan{Root: sj}, nil
	}
	selCust := ds.selection("σ_customer",
		dimSel{custIdx, custPred, "c_custkey", ""}, ds.Customer.Bits("c_custkey"))
	join := &core.Join{
		Left: &core.Base{Table: loMain}, Right: selCust,
		Assists: []core.Assist{
			{Input: selSupp, ProbeWith: core.Ref{Input: 0, Attr: "lo_suppkey"}},
			{Input: selPart, ProbeWith: core.Ref{Input: 0, Attr: "lo_partkey"}},
			{Input: selDate, ProbeWith: core.Ref{Input: 0, Attr: "lo_orderdate"}},
		},
		Out: core.OutputSpec{
			Name:    "Γ_year_nation_cat",
			Key:     groupKey,
			KeyRefs: []core.Ref{{Input: 4, Attr: "d_year"}, {Input: 2, Attr: "s_nation"}, {Input: 3, Attr: "p_category"}},
			Cols:    []string{"profit"},
			ColExprs: []core.RowExpr{core.Computed(
				q4ProfitAt(ds, []*core.IndexedTable{loMain}))},
			Fold: core.FoldSum(0),
		},
	}
	return &core.Plan{Root: join}, nil
}

// planQ43 builds query 4.3: customer region AMERICA (existence only),
// supplier nation UNITED STATES, years {1997, 1998}, all parts joined for
// their brand, grouped by (d_year, s_city, p_brand1).
func (ds *Dataset) planQ43(opt PlanOptions) (*core.Plan, error) {
	loMain := ds.q4Main()
	custIdx := ds.Customer.MustIndex([]string{"c_region"}, "c_custkey", "c_nation")
	custPred := ds.strPoint(ds.Customer, "c_region", "AMERICA")
	selSupp := ds.selection("σ_supplier",
		dimSel{ds.Supplier.MustIndex([]string{"s_nation"}, "s_suppkey", "s_city"),
			ds.strPoint(ds.Supplier, "s_nation", "UNITED STATES"), "s_suppkey", "s_city"},
		ds.Supplier.Bits("s_suppkey"))
	partIdx := &core.Base{Table: ds.Part.MustIndex([]string{"p_partkey"}, "p_brand1")}
	selDate := ds.selection("σ_date",
		dimSel{ds.Date.MustIndex([]string{"d_year"}, "d_datekey", "d_weeknuminyear"),
			core.In(1997, 1998), "d_datekey", "d_year"},
		ds.Date.Bits("d_datekey"))

	groupKey := core.GroupKey([]string{"d_year", "s_city", "p_brand1"},
		[]uint{ds.Date.Bits("d_year"), ds.Supplier.Bits("s_city"), ds.Part.Bits("p_brand1")})

	if opt.UseSelectJoin {
		sj := &core.SelectJoin{
			SelInput:      &core.Base{Table: custIdx},
			Pred:          custPred,
			Main:          &core.Base{Table: loMain},
			ProbeMainWith: core.Ref{Input: 0, Attr: "c_custkey"},
			Assists: []core.Assist{
				{Input: selSupp, ProbeWith: core.Ref{Input: 1, Attr: "lo_suppkey"}},
				{Input: partIdx, ProbeWith: core.Ref{Input: 1, Attr: "lo_partkey"}},
				{Input: selDate, ProbeWith: core.Ref{Input: 1, Attr: "lo_orderdate"}},
			},
			Out: core.OutputSpec{
				Name:    "Γ_year_city_brand",
				Key:     groupKey,
				KeyRefs: []core.Ref{{Input: 4, Attr: "d_year"}, {Input: 2, Attr: "s_city"}, {Input: 3, Attr: "p_brand1"}},
				Cols:    []string{"profit"},
				ColExprs: []core.RowExpr{core.Computed(
					q4ProfitAt(ds, []*core.IndexedTable{custIdx, loMain}))},
				Fold: core.FoldSum(0),
			},
		}
		return &core.Plan{Root: sj}, nil
	}
	selCust := ds.selection("σ_customer",
		dimSel{custIdx, custPred, "c_custkey", ""}, ds.Customer.Bits("c_custkey"))
	join := &core.Join{
		Left: &core.Base{Table: loMain}, Right: selCust,
		Assists: []core.Assist{
			{Input: selSupp, ProbeWith: core.Ref{Input: 0, Attr: "lo_suppkey"}},
			{Input: partIdx, ProbeWith: core.Ref{Input: 0, Attr: "lo_partkey"}},
			{Input: selDate, ProbeWith: core.Ref{Input: 0, Attr: "lo_orderdate"}},
		},
		Out: core.OutputSpec{
			Name:    "Γ_year_city_brand",
			Key:     groupKey,
			KeyRefs: []core.Ref{{Input: 4, Attr: "d_year"}, {Input: 2, Attr: "s_city"}, {Input: 3, Attr: "p_brand1"}},
			Cols:    []string{"profit"},
			ColExprs: []core.RowExpr{core.Computed(
				q4ProfitAt(ds, []*core.IndexedTable{loMain}))},
			Fold: core.FoldSum(0),
		},
	}
	return &core.Plan{Root: join}, nil
}
