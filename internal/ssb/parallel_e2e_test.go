package ssb

import (
	"reflect"
	"strings"
	"testing"

	"qppt/internal/core"
)

// TestMorselParallelMatchesSerial asserts bit-identical results between
// serial and morsel-driven execution for every SSB query, across plan
// shapes (with and without composed select-joins) and pool sizes. The
// grouped aggregates fold associatively and the result index iterates in
// key order, so the parallel schedule must be completely invisible in the
// output.
func TestMorselParallelMatchesSerial(t *testing.T) {
	ds := testDataset(t)
	for _, qid := range QueryIDs {
		for _, useSJ := range []bool{true, false} {
			serial, _, err := ds.RunQPPT(qid, PlanOptions{UseSelectJoin: useSJ})
			if err != nil {
				t.Fatalf("Q%s serial: %v", qid, err)
			}
			for _, workers := range []int{2, 4} {
				opt := PlanOptions{
					UseSelectJoin: useSJ,
					Exec:          core.Options{Workers: workers, MorselsPerWorker: 3},
				}
				par, _, err := ds.RunQPPT(qid, opt)
				if err != nil {
					t.Fatalf("Q%s workers=%d: %v", qid, workers, err)
				}
				if !reflect.DeepEqual(serial.Rows, par.Rows) {
					t.Errorf("Q%s selectjoin=%v workers=%d: parallel result differs (%d vs %d rows)",
						qid, useSJ, workers, len(par.Rows), len(serial.Rows))
				}
			}
		}
	}
}

// TestMorselStatsRecordConfiguration: the plan statistics must surface
// the pool configuration and the per-operator worker/morsel counts, so
// benchmark output records what it measured.
func TestMorselStatsRecordConfiguration(t *testing.T) {
	ds := testDataset(t)
	// NoFuse: the fan-out assertion needs the final join to drive its own
	// morsels over the wide date-key space; fused, the whole chain is
	// driven by the select-join's narrow selection envelope.
	_, stats, err := ds.RunQPPT("2.3", PlanOptions{
		UseSelectJoin: true,
		Exec:          core.Options{Workers: 3, MorselsPerWorker: 5, CollectStats: true, NoFuse: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 3 || stats.MorselsPerWorker != 5 {
		t.Fatalf("plan stats pool = %d×%d, want 3×5", stats.Workers, stats.MorselsPerWorker)
	}
	fanned := false
	for _, op := range stats.Ops {
		if op.Morsels > 1 {
			fanned = true
		}
		if op.Workers < 1 || op.Morsels < op.Workers {
			t.Fatalf("%s: %d workers, %d morsels", op.Label, op.Workers, op.Morsels)
		}
	}
	if !fanned {
		t.Fatal("no operator recorded a morsel fan-out > 1")
	}
	if s := stats.String(); !strings.Contains(s, "workers") || !strings.Contains(s, "morsels") {
		t.Fatalf("stats string does not record the pool configuration:\n%s", s)
	}
}
