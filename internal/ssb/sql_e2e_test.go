package ssb

import (
	"testing"

	"qppt/internal/core"
	"qppt/internal/sql"
)

// TestSQLMatchesHandBuiltPlans runs the paper's SQL text for every SSB
// query through the SQL front end and compares against the column engine's
// results — end-to-end coverage of lexer, parser, planner and executor.
func TestSQLMatchesHandBuiltPlans(t *testing.T) {
	ds := testDataset(t)
	planner := sql.NewPlanner(ds.Cat)
	for _, qid := range QueryIDs {
		for _, useSJ := range []bool{true, false} {
			stmt, err := planner.PlanSQL(SQLTexts[qid], sql.Options{UseSelectJoin: useSJ})
			if err != nil {
				t.Fatalf("Q%s (selectjoin=%v): plan: %v", qid, useSJ, err)
			}
			rows, _, err := stmt.Run()
			if err != nil {
				t.Fatalf("Q%s (selectjoin=%v): run: %v", qid, useSJ, err)
			}
			got := &QueryResult{Attrs: querySchema(qid), Rows: normalizeSQL(qid, rows.Rows)}
			want, err := ds.RunColumn(qid)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("Q%s (selectjoin=%v): SQL and column engine disagree: %d vs %d rows\nsql: %v\ncol: %v",
					qid, useSJ, len(got.Rows), len(want.Rows), head(got.Rows), head(want.Rows))
			}
		}
	}
}

// normalizeSQL projects SQL results (SELECT-item order) into the shared
// normalized layout and applies the full-tiebreak ordering.
func normalizeSQL(qid string, rows [][]uint64) [][]uint64 {
	switch qid {
	case "2.1", "2.2", "2.3":
		rows = project(rows, 1, 2, 0) // [sum, year, brand] → [year, brand, sum]
		orderRows(rows, 0, 1)
	case "3.1", "3.2", "3.3", "3.4":
		rows = project(rows, 0, 1, 2, 3)
		orderRows(rows, 2, -4)
	case "4.1":
		rows = project(rows, 0, 1, 2)
		orderRows(rows, 0, 1)
	case "4.2", "4.3":
		rows = project(rows, 0, 1, 2, 3)
		orderRows(rows, 0, 1, 2)
	}
	return rows
}

func TestSQLStatsAndDecode(t *testing.T) {
	ds := testDataset(t)
	planner := sql.NewPlanner(ds.Cat)
	stmt, err := planner.PlanSQL(SQLTexts["2.3"], sql.Options{
		UseSelectJoin: true,
		Exec:          core.Options{CollectStats: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, stats, err := stmt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || len(stats.Ops) == 0 {
		t.Fatal("no stats collected")
	}
	if len(rows.Attrs) != 3 {
		t.Fatalf("attrs = %v", rows.Attrs)
	}
	if len(rows.Rows) > 0 {
		brand := rows.Decode(0, 2)
		if len(brand) < 5 || brand[:5] != "MFGR#" {
			t.Errorf("decoded brand = %q", brand)
		}
		year := rows.Decode(0, 1)
		if year < "1992" || year > "1998" {
			t.Errorf("decoded year = %q", year)
		}
	}
}

func TestSQLPlannerErrors(t *testing.T) {
	ds := testDataset(t)
	planner := sql.NewPlanner(ds.Cat)
	bad := []string{
		"select sum(lo_revenue) from nosuch",
		"select sum(lo_revenue) from lineorder, customer",                                                   // no join condition
		"select sum(c_custkey) from lineorder, customer where lo_custkey = c_custkey",                       // non-fact aggregate
		"select lo_quantity from lineorder, customer where lo_custkey = c_custkey",                          // ungrouped column
		"select sum(lo_revenue) from lineorder, customer where lo_custkey = c_custkey and p_brand1 = 'X'",   // unknown column
		"select sum(lo_revenue) from lineorder, customer where lo_custkey = c_custkey order by lo_quantity", // order by non-output
	}
	for _, src := range bad {
		if stmt, err := planner.PlanSQL(src, sql.Options{}); err == nil {
			t.Errorf("accepted %q (plan: %v)", src, stmt.Attrs)
		}
	}
}

func TestSQLSingleTable(t *testing.T) {
	ds := testDataset(t)
	planner := sql.NewPlanner(ds.Cat)
	stmt, err := planner.PlanSQL(
		`select sum(lo_revenue) as r from lineorder where lo_quantity < 10 and lo_discount = 5`,
		sql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := stmt.Run()
	if err != nil {
		t.Fatal(err)
	}
	cols := ds.Raw["lineorder"]
	var want uint64
	for i := range cols["lo_revenue"] {
		if cols["lo_quantity"][i] < 10 && cols["lo_discount"][i] == 5 {
			want += cols["lo_revenue"][i]
		}
	}
	if len(rows.Rows) != 1 || rows.Rows[0][0] != want {
		t.Fatalf("single-table sum = %v, want %d", rows.Rows, want)
	}
}

func TestSQLGroupByFactColumn(t *testing.T) {
	ds := testDataset(t)
	planner := sql.NewPlanner(ds.Cat)
	stmt, err := planner.PlanSQL(
		`select lo_discount, sum(lo_revenue) as r from lineorder, customer
		 where lo_custkey = c_custkey and c_region = 'ASIA'
		 group by lo_discount order by lo_discount`,
		sql.Options{UseSelectJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := stmt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 11 { // discounts 0..10
		t.Fatalf("%d groups, want 11", len(rows.Rows))
	}
	// Oracle.
	asia, _ := ds.Customer.Dict("c_region").Code("ASIA")
	region := ds.Raw["customer"]["c_region"]
	want := map[uint64]uint64{}
	cols := ds.Raw["lineorder"]
	for i := range cols["lo_revenue"] {
		if region[cols["lo_custkey"][i]-1] == asia {
			want[cols["lo_discount"][i]] += cols["lo_revenue"][i]
		}
	}
	for _, r := range rows.Rows {
		if want[r[0]] != r[1] {
			t.Fatalf("discount %d: %d, want %d", r[0], r[1], want[r[0]])
		}
	}
}
