package ssb

import (
	"fmt"

	"qppt/internal/catalog"
	"qppt/internal/vecstore"
)

// RunVector executes a query on the vector-at-a-time baseline engine: a
// volcano tree of vectorized operators — selections over dimension scans
// feeding hash-join builds, the fact scan streaming through the probe
// sides, a packed-key hash aggregation on top.
func (ds *Dataset) RunVector(qid string) (*QueryResult, error) {
	lo := ds.Raw["lineorder"]
	date := ds.Raw["date"]
	cust := ds.Raw["customer"]
	supp := ds.Raw["supplier"]
	part := ds.Raw["part"]
	qr := &QueryResult{Attrs: querySchema(qid)}

	at := func(op vecstore.Op, name string) int {
		for i, c := range op.Schema() {
			if c == name {
				return i
			}
		}
		panic(fmt.Sprintf("ssb: column %q not in schema %v", name, op.Schema()))
	}
	eqSel := func(child vecstore.Op, col string, val uint64, ok bool) vecstore.Op {
		i := at(child, col)
		if !ok {
			return &vecstore.Select{Child: child, Pred: func(*vecstore.Batch, int) bool { return false }}
		}
		return &vecstore.Select{Child: child, Pred: func(b *vecstore.Batch, r int) bool { return b.Cols[i][r] == val }}
	}
	rangeSel := func(child vecstore.Op, col string, lo2, hi2 uint64) vecstore.Op {
		i := at(child, col)
		return &vecstore.Select{Child: child, Pred: func(b *vecstore.Batch, r int) bool {
			return b.Cols[i][r] >= lo2 && b.Cols[i][r] <= hi2
		}}
	}
	inSel := func(child vecstore.Op, col string, set map[uint64]bool) vecstore.Op {
		i := at(child, col)
		return &vecstore.Select{Child: child, Pred: func(b *vecstore.Batch, r int) bool { return set[b.Cols[i][r]] }}
	}
	codes := func(d *catalog.Dict, vals ...string) map[uint64]bool {
		set := map[uint64]bool{}
		for _, s := range vals {
			if c, ok := d.Code(s); ok {
				set[c] = true
			}
		}
		return set
	}

	switch qid {
	case "1.1", "1.2", "1.3":
		var dateSel vecstore.Op
		var dLo, dHi, qLo, qHi uint64
		switch qid {
		case "1.1":
			dateSel = rangeSel(vecstore.NewScan(date, "d_datekey", "d_year"), "d_year", 1993, 1993)
			dLo, dHi, qLo, qHi = 1, 3, 0, 24
		case "1.2":
			dateSel = rangeSel(vecstore.NewScan(date, "d_datekey", "d_yearmonthnum"), "d_yearmonthnum", 199401, 199401)
			dLo, dHi, qLo, qHi = 4, 6, 26, 35
		case "1.3":
			dateSel = rangeSel(rangeSel(
				vecstore.NewScan(date, "d_datekey", "d_year", "d_weeknuminyear"),
				"d_year", 1994, 1994), "d_weeknuminyear", 6, 6)
			dLo, dHi, qLo, qHi = 5, 7, 26, 35
		}
		lineSel := rangeSel(rangeSel(
			vecstore.NewScan(lo, "lo_orderdate", "lo_quantity", "lo_discount", "lo_extendedprice"),
			"lo_discount", dLo, dHi), "lo_quantity", qLo, qHi)
		join := &vecstore.HashJoin{
			Build: dateSel, BuildKey: "d_datekey",
			Probe: lineSel, ProbeKey: "lo_orderdate", Semi: true,
		}
		di, ei := at(join, "lo_discount"), at(join, "lo_extendedprice")
		rev := &vecstore.Map{Child: join, Name: "rev",
			Fn: func(b *vecstore.Batch, r int) uint64 { return b.Cols[ei][r] * b.Cols[di][r] }}
		one := &vecstore.Map{Child: rev, Name: "one",
			Fn: func(*vecstore.Batch, int) uint64 { return 0 }}
		agg := &vecstore.HashAgg{Child: one, GroupCol: "one", SumCols: []string{"rev"}}
		rows := vecstore.Collect(agg)
		if len(rows) == 0 {
			qr.Rows = [][]uint64{{0}}
		} else {
			qr.Rows = [][]uint64{{rows[0][1]}}
		}
		return qr, nil

	case "2.1", "2.2", "2.3":
		var partSel vecstore.Op
		switch qid {
		case "2.1":
			c, ok := ds.Part.Dict("p_category").Code("MFGR#12")
			partSel = eqSel(vecstore.NewScan(part, "p_partkey", "p_brand1", "p_category"), "p_category", c, ok)
		case "2.2":
			d := ds.Part.Dict("p_brand1")
			lo2, ok1 := d.CeilCode("MFGR#2221")
			hi2, ok2 := d.FloorCode("MFGR#2228")
			if !ok1 || !ok2 || lo2 > hi2 {
				lo2, hi2 = 1, 0
			}
			partSel = rangeSel(vecstore.NewScan(part, "p_partkey", "p_brand1"), "p_brand1", lo2, hi2)
		case "2.3":
			c, ok := ds.Part.Dict("p_brand1").Code("MFGR#2221")
			partSel = eqSel(vecstore.NewScan(part, "p_partkey", "p_brand1"), "p_brand1", c, ok)
		}
		regionName := map[string]string{"2.1": "AMERICA", "2.2": "ASIA", "2.3": "EUROPE"}[qid]
		rc, rok := ds.Supplier.Dict("s_region").Code(regionName)
		suppSel := eqSel(vecstore.NewScan(supp, "s_suppkey", "s_region"), "s_region", rc, rok)

		j1 := &vecstore.HashJoin{
			Build: suppSel, BuildKey: "s_suppkey", Semi: true,
			Probe:    vecstore.NewScan(lo, "lo_partkey", "lo_suppkey", "lo_orderdate", "lo_revenue"),
			ProbeKey: "lo_suppkey",
		}
		j2 := &vecstore.HashJoin{
			Build: partSel, BuildKey: "p_partkey", BuildPayload: []string{"p_brand1"},
			Probe: j1, ProbeKey: "lo_partkey",
		}
		j3 := &vecstore.HashJoin{
			Build: vecstore.NewScan(date, "d_datekey", "d_year"), BuildKey: "d_datekey",
			BuildPayload: []string{"d_year"},
			Probe:        j2, ProbeKey: "lo_orderdate",
		}
		yi, bi := at(j3, "d_year"), at(j3, "p_brand1")
		keyed := &vecstore.Map{Child: j3, Name: "gk",
			Fn: func(b *vecstore.Batch, r int) uint64 { return pack(b.Cols[yi][r], b.Cols[bi][r]) }}
		agg := &vecstore.HashAgg{Child: keyed, GroupCol: "gk", SumCols: []string{"lo_revenue"}}
		for _, row := range vecstore.Collect(agg) {
			f := unpack(row[0], 2)
			qr.Rows = append(qr.Rows, []uint64{f[0], f[1], row[1]})
		}
		orderRows(qr.Rows, 0, 1)
		return qr, nil

	case "3.1", "3.2", "3.3", "3.4":
		var custSel, suppSel, dateSel vecstore.Op
		var cAttr, sAttr string
		switch qid {
		case "3.1":
			c, ok := ds.Customer.Dict("c_region").Code("ASIA")
			custSel = eqSel(vecstore.NewScan(cust, "c_custkey", "c_nation", "c_region"), "c_region", c, ok)
			s, sok := ds.Supplier.Dict("s_region").Code("ASIA")
			suppSel = eqSel(vecstore.NewScan(supp, "s_suppkey", "s_nation", "s_region"), "s_region", s, sok)
			cAttr, sAttr = "c_nation", "s_nation"
		case "3.2":
			c, ok := ds.Customer.Dict("c_nation").Code("UNITED STATES")
			custSel = eqSel(vecstore.NewScan(cust, "c_custkey", "c_city", "c_nation"), "c_nation", c, ok)
			s, sok := ds.Supplier.Dict("s_nation").Code("UNITED STATES")
			suppSel = eqSel(vecstore.NewScan(supp, "s_suppkey", "s_city", "s_nation"), "s_nation", s, sok)
			cAttr, sAttr = "c_city", "s_city"
		case "3.3", "3.4":
			custSel = inSel(vecstore.NewScan(cust, "c_custkey", "c_city"), "c_city",
				codes(ds.Customer.Dict("c_city"), "UNITED KI1", "UNITED KI5"))
			suppSel = inSel(vecstore.NewScan(supp, "s_suppkey", "s_city"), "s_city",
				codes(ds.Supplier.Dict("s_city"), "UNITED KI1", "UNITED KI5"))
			cAttr, sAttr = "c_city", "s_city"
		}
		if qid == "3.4" {
			c, ok := ds.Date.Dict("d_yearmonth").Code("Dec1997")
			dateSel = eqSel(vecstore.NewScan(date, "d_datekey", "d_year", "d_yearmonth"), "d_yearmonth", c, ok)
		} else {
			dateSel = rangeSel(vecstore.NewScan(date, "d_datekey", "d_year"), "d_year", 1992, 1997)
		}
		j1 := &vecstore.HashJoin{
			Build: custSel, BuildKey: "c_custkey", BuildPayload: []string{cAttr},
			Probe:    vecstore.NewScan(lo, "lo_custkey", "lo_suppkey", "lo_orderdate", "lo_revenue"),
			ProbeKey: "lo_custkey",
		}
		j2 := &vecstore.HashJoin{
			Build: suppSel, BuildKey: "s_suppkey", BuildPayload: []string{sAttr},
			Probe: j1, ProbeKey: "lo_suppkey",
		}
		j3 := &vecstore.HashJoin{
			Build: dateSel, BuildKey: "d_datekey", BuildPayload: []string{"d_year"},
			Probe: j2, ProbeKey: "lo_orderdate",
		}
		ci, si, yi := at(j3, cAttr), at(j3, sAttr), at(j3, "d_year")
		keyed := &vecstore.Map{Child: j3, Name: "gk",
			Fn: func(b *vecstore.Batch, r int) uint64 {
				return pack(b.Cols[ci][r], b.Cols[si][r], b.Cols[yi][r])
			}}
		agg := &vecstore.HashAgg{Child: keyed, GroupCol: "gk", SumCols: []string{"lo_revenue"}}
		for _, row := range vecstore.Collect(agg) {
			f := unpack(row[0], 3)
			qr.Rows = append(qr.Rows, []uint64{f[0], f[1], f[2], row[1]})
		}
		orderRows(qr.Rows, 2, -4)
		return qr, nil

	case "4.1", "4.2", "4.3":
		c, cok := ds.Customer.Dict("c_region").Code("AMERICA")
		custSel := eqSel(vecstore.NewScan(cust, "c_custkey", "c_nation", "c_region"), "c_region", c, cok)
		var suppSel, partSel, dateSel vecstore.Op
		switch qid {
		case "4.1", "4.2":
			s, sok := ds.Supplier.Dict("s_region").Code("AMERICA")
			suppSel = eqSel(vecstore.NewScan(supp, "s_suppkey", "s_nation", "s_region"), "s_region", s, sok)
			partSel = inSel(vecstore.NewScan(part, "p_partkey", "p_category", "p_brand1", "p_mfgr"), "p_mfgr",
				codes(ds.Part.Dict("p_mfgr"), "MFGR#1", "MFGR#2"))
		case "4.3":
			s, sok := ds.Supplier.Dict("s_nation").Code("UNITED STATES")
			suppSel = eqSel(vecstore.NewScan(supp, "s_suppkey", "s_city", "s_nation"), "s_nation", s, sok)
			partSel = vecstore.NewScan(part, "p_partkey", "p_brand1")
		}
		if qid == "4.1" {
			dateSel = vecstore.NewScan(date, "d_datekey", "d_year")
		} else {
			dateSel = rangeSel(vecstore.NewScan(date, "d_datekey", "d_year"), "d_year", 1997, 1998)
		}
		var sPay, pPay []string
		switch qid {
		case "4.2":
			sPay, pPay = []string{"s_nation"}, []string{"p_category"}
		case "4.3":
			sPay, pPay = []string{"s_city"}, []string{"p_brand1"}
		}
		j1 := &vecstore.HashJoin{
			Build: custSel, BuildKey: "c_custkey", BuildPayload: []string{"c_nation"},
			Probe: vecstore.NewScan(lo, "lo_custkey", "lo_suppkey", "lo_partkey",
				"lo_orderdate", "lo_revenue", "lo_supplycost"),
			ProbeKey: "lo_custkey",
		}
		j2 := &vecstore.HashJoin{
			Build: suppSel, BuildKey: "s_suppkey", BuildPayload: sPay,
			Probe: j1, ProbeKey: "lo_suppkey", Semi: qid == "4.1",
		}
		j3 := &vecstore.HashJoin{
			Build: partSel, BuildKey: "p_partkey", BuildPayload: pPay,
			Probe: j2, ProbeKey: "lo_partkey", Semi: qid == "4.1",
		}
		j4 := &vecstore.HashJoin{
			Build: dateSel, BuildKey: "d_datekey", BuildPayload: []string{"d_year"},
			Probe: j3, ProbeKey: "lo_orderdate",
		}
		ri, ki := at(j4, "lo_revenue"), at(j4, "lo_supplycost")
		profit := &vecstore.Map{Child: j4, Name: "profit",
			Fn: func(b *vecstore.Batch, r int) uint64 { return b.Cols[ri][r] - b.Cols[ki][r] }}
		yi := at(profit, "d_year")
		var keyFn func(b *vecstore.Batch, r int) uint64
		var nFields int
		switch qid {
		case "4.1":
			ni := at(profit, "c_nation")
			keyFn = func(b *vecstore.Batch, r int) uint64 { return pack(b.Cols[yi][r], b.Cols[ni][r]) }
			nFields = 2
		case "4.2":
			ni, pi := at(profit, "s_nation"), at(profit, "p_category")
			keyFn = func(b *vecstore.Batch, r int) uint64 {
				return pack(b.Cols[yi][r], b.Cols[ni][r], b.Cols[pi][r])
			}
			nFields = 3
		case "4.3":
			ni, pi := at(profit, "s_city"), at(profit, "p_brand1")
			keyFn = func(b *vecstore.Batch, r int) uint64 {
				return pack(b.Cols[yi][r], b.Cols[ni][r], b.Cols[pi][r])
			}
			nFields = 3
		}
		keyed := &vecstore.Map{Child: profit, Name: "gk", Fn: keyFn}
		agg := &vecstore.HashAgg{Child: keyed, GroupCol: "gk", SumCols: []string{"profit"}}
		for _, row := range vecstore.Collect(agg) {
			f := unpack(row[0], nFields)
			qr.Rows = append(qr.Rows, append(f, row[1]))
		}
		if nFields == 2 {
			orderRows(qr.Rows, 0, 1)
		} else {
			orderRows(qr.Rows, 0, 1, 2)
		}
		return qr, nil
	}
	return nil, fmt.Errorf("ssb: unknown query %q", qid)
}
