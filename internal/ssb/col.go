package ssb

import (
	"fmt"

	"qppt/internal/colstore"
	"qppt/internal/hashbase"
)

// RunColumn executes a query on the column-at-a-time baseline engine,
// mirroring the BAT-operator chains a MonetDB plan would run: every step
// fully materializes oid lists or reconstructed columns before the next
// step starts. The per-attribute Fetch calls are the tuple-reconstruction
// cost the paper's Figure 7 attributes the column model.
func (ds *Dataset) RunColumn(qid string) (*QueryResult, error) {
	lo := ds.ColDB.Table("lineorder")
	date := ds.ColDB.Table("date")
	cust := ds.ColDB.Table("customer")
	supp := ds.ColDB.Table("supplier")
	part := ds.ColDB.Table("part")
	qr := &QueryResult{Attrs: querySchema(qid)}

	// dimLookup pairs a unique-key dimension hash table with an optional
	// carried attribute column.
	type dimLookup struct {
		m    *hashbase.MultiMap
		attr []uint64 // indexed by dimension oid; nil = existence only
	}
	makeDim := func(keyCol []uint64, oids []uint32, attr []uint64) dimLookup {
		return dimLookup{m: colstore.BuildJoin(keyCol, oids), attr: attr}
	}
	first := func(m *hashbase.MultiMap, k uint64) (uint32, bool) {
		var oid uint32
		found := false
		m.ForEach(k, func(v uint32) {
			if !found {
				oid, found = v, true
			}
		})
		return oid, found
	}

	switch qid {
	case "1.1", "1.2", "1.3":
		var doids []uint32
		var dLo, dHi, qLo, qHi uint64
		switch qid {
		case "1.1":
			doids = colstore.SelectRange(date.Col("d_year"), 1993, 1993)
			dLo, dHi, qLo, qHi = 1, 3, 0, 24
		case "1.2":
			doids = colstore.SelectRange(date.Col("d_yearmonthnum"), 199401, 199401)
			dLo, dHi, qLo, qHi = 4, 6, 26, 35
		case "1.3":
			doids = colstore.SelectRange(date.Col("d_year"), 1994, 1994)
			doids = colstore.RefineRange(date.Col("d_weeknuminyear"), doids, 6, 6)
			dLo, dHi, qLo, qHi = 5, 7, 26, 35
		}
		dateSet := colstore.BuildJoin(date.Col("d_datekey"), doids)
		loids := colstore.SelectRange(lo.Col("lo_discount"), dLo, dHi)
		loids = colstore.RefineRange(lo.Col("lo_quantity"), loids, qLo, qHi)
		odates := colstore.Fetch(lo.Col("lo_orderdate"), loids)
		loids = colstore.SemiJoin(odates, loids, dateSet)
		ext := colstore.Fetch(lo.Col("lo_extendedprice"), loids)
		disc := colstore.Fetch(lo.Col("lo_discount"), loids)
		var revenue uint64
		for i := range ext {
			revenue += ext[i] * disc[i]
		}
		qr.Rows = [][]uint64{{revenue}}
		return qr, nil

	case "2.1", "2.2", "2.3":
		var poids []uint32
		switch qid {
		case "2.1":
			if c, ok := ds.Part.Dict("p_category").Code("MFGR#12"); ok {
				poids = colstore.SelectRange(part.Col("p_category"), c, c)
			}
		case "2.2":
			d := ds.Part.Dict("p_brand1")
			if lo2, ok1 := d.CeilCode("MFGR#2221"); ok1 {
				if hi2, ok2 := d.FloorCode("MFGR#2228"); ok2 && lo2 <= hi2 {
					poids = colstore.SelectRange(part.Col("p_brand1"), lo2, hi2)
				}
			}
		case "2.3":
			if c, ok := ds.Part.Dict("p_brand1").Code("MFGR#2221"); ok {
				poids = colstore.SelectRange(part.Col("p_brand1"), c, c)
			}
		}
		regionName := map[string]string{"2.1": "AMERICA", "2.2": "ASIA", "2.3": "EUROPE"}[qid]
		var soids []uint32
		if c, ok := ds.Supplier.Dict("s_region").Code(regionName); ok {
			soids = colstore.SelectRange(supp.Col("s_region"), c, c)
		}
		partDim := makeDim(part.Col("p_partkey"), poids, part.Col("p_brand1"))
		suppDim := makeDim(supp.Col("s_suppkey"), soids, nil)
		dateDim := makeDim(date.Col("d_datekey"), nil, date.Col("d_year"))

		// Probe lineorder by partkey, then reconstruct and filter.
		pOut, bOut := colstore.ProbeJoin(lo.Col("lo_partkey"), nil, partDim.m)
		suppKeys := colstore.Fetch(lo.Col("lo_suppkey"), pOut)
		var keepLo []uint32
		var keepBrand []uint64
		for i, sk := range suppKeys {
			if suppDim.m.Contains(sk) {
				keepLo = append(keepLo, pOut[i])
				keepBrand = append(keepBrand, partDim.attr[bOut[i]])
			}
		}
		odates := colstore.Fetch(lo.Col("lo_orderdate"), keepLo)
		revs := colstore.Fetch(lo.Col("lo_revenue"), keepLo)
		packed := make([]uint64, 0, len(keepLo))
		meas := make([]uint64, 0, len(keepLo))
		for i := range keepLo {
			doid, ok := first(dateDim.m, odates[i])
			if !ok {
				continue
			}
			packed = append(packed, pack(dateDim.attr[doid], keepBrand[i]))
			meas = append(meas, revs[i])
		}
		groups := colstore.GroupSum(packed, meas)
		for k, v := range groups {
			f := unpack(k, 2)
			qr.Rows = append(qr.Rows, []uint64{f[0], f[1], v})
		}
		orderRows(qr.Rows, 0, 1)
		return qr, nil

	case "3.1", "3.2", "3.3", "3.4":
		var coids, soids, doids []uint32
		var cAttr, sAttr []uint64
		switch qid {
		case "3.1":
			if c, ok := ds.Customer.Dict("c_region").Code("ASIA"); ok {
				coids = colstore.SelectRange(cust.Col("c_region"), c, c)
			}
			if c, ok := ds.Supplier.Dict("s_region").Code("ASIA"); ok {
				soids = colstore.SelectRange(supp.Col("s_region"), c, c)
			}
			cAttr, sAttr = cust.Col("c_nation"), supp.Col("s_nation")
		case "3.2":
			if c, ok := ds.Customer.Dict("c_nation").Code("UNITED STATES"); ok {
				coids = colstore.SelectRange(cust.Col("c_nation"), c, c)
			}
			if c, ok := ds.Supplier.Dict("s_nation").Code("UNITED STATES"); ok {
				soids = colstore.SelectRange(supp.Col("s_nation"), c, c)
			}
			cAttr, sAttr = cust.Col("c_city"), supp.Col("s_city")
		case "3.3", "3.4":
			cities := map[uint64]bool{}
			for _, s := range []string{"UNITED KI1", "UNITED KI5"} {
				if c, ok := ds.Customer.Dict("c_city").Code(s); ok {
					cities[c] = true
				}
			}
			coids = colstore.SelectIn(cust.Col("c_city"), cities)
			scities := map[uint64]bool{}
			for _, s := range []string{"UNITED KI1", "UNITED KI5"} {
				if c, ok := ds.Supplier.Dict("s_city").Code(s); ok {
					scities[c] = true
				}
			}
			soids = colstore.SelectIn(supp.Col("s_city"), scities)
			cAttr, sAttr = cust.Col("c_city"), supp.Col("s_city")
		}
		if qid == "3.4" {
			if c, ok := ds.Date.Dict("d_yearmonth").Code("Dec1997"); ok {
				doids = colstore.SelectRange(date.Col("d_yearmonth"), c, c)
			}
		} else {
			doids = colstore.SelectRange(date.Col("d_year"), 1992, 1997)
		}
		custDim := makeDim(cust.Col("c_custkey"), coids, cAttr)
		suppDim := makeDim(supp.Col("s_suppkey"), soids, sAttr)
		dateDim := makeDim(date.Col("d_datekey"), doids, date.Col("d_year"))

		pOut, bOut := colstore.ProbeJoin(lo.Col("lo_custkey"), nil, custDim.m)
		suppKeys := colstore.Fetch(lo.Col("lo_suppkey"), pOut)
		odates := colstore.Fetch(lo.Col("lo_orderdate"), pOut)
		revs := colstore.Fetch(lo.Col("lo_revenue"), pOut)
		packed := make([]uint64, 0, len(pOut))
		meas := make([]uint64, 0, len(pOut))
		for i := range pOut {
			soid, ok := first(suppDim.m, suppKeys[i])
			if !ok {
				continue
			}
			doid, ok := first(dateDim.m, odates[i])
			if !ok {
				continue
			}
			packed = append(packed, pack(custDim.attr[bOut[i]], suppDim.attr[soid], dateDim.attr[doid]))
			meas = append(meas, revs[i])
		}
		groups := colstore.GroupSum(packed, meas)
		for k, v := range groups {
			f := unpack(k, 3)
			qr.Rows = append(qr.Rows, []uint64{f[0], f[1], f[2], v})
		}
		orderRows(qr.Rows, 2, -4)
		return qr, nil

	case "4.1", "4.2", "4.3":
		var coids, soids, poids, doids []uint32
		if c, ok := ds.Customer.Dict("c_region").Code("AMERICA"); ok {
			coids = colstore.SelectRange(cust.Col("c_region"), c, c)
		}
		switch qid {
		case "4.1", "4.2":
			if c, ok := ds.Supplier.Dict("s_region").Code("AMERICA"); ok {
				soids = colstore.SelectRange(supp.Col("s_region"), c, c)
			}
			mfgrs := map[uint64]bool{}
			for _, s := range []string{"MFGR#1", "MFGR#2"} {
				if c, ok := ds.Part.Dict("p_mfgr").Code(s); ok {
					mfgrs[c] = true
				}
			}
			poids = colstore.SelectIn(part.Col("p_mfgr"), mfgrs)
		case "4.3":
			if c, ok := ds.Supplier.Dict("s_nation").Code("UNITED STATES"); ok {
				soids = colstore.SelectRange(supp.Col("s_nation"), c, c)
			}
			poids = nil // all parts (needed for p_brand1)
		}
		if qid == "4.1" {
			doids = nil // all years
		} else {
			doids = colstore.SelectRange(date.Col("d_year"), 1997, 1998)
		}

		var cAttr, sAttr, pAttr []uint64
		switch qid {
		case "4.1":
			cAttr = cust.Col("c_nation")
		case "4.2":
			sAttr = supp.Col("s_nation")
			pAttr = part.Col("p_category")
		case "4.3":
			sAttr = supp.Col("s_city")
			pAttr = part.Col("p_brand1")
		}
		custDim := makeDim(cust.Col("c_custkey"), coids, cAttr)
		suppDim := makeDim(supp.Col("s_suppkey"), soids, sAttr)
		partDim := makeDim(part.Col("p_partkey"), poids, pAttr)
		dateDim := makeDim(date.Col("d_datekey"), doids, date.Col("d_year"))

		pOut, bOut := colstore.ProbeJoin(lo.Col("lo_custkey"), nil, custDim.m)
		suppKeys := colstore.Fetch(lo.Col("lo_suppkey"), pOut)
		partKeys := colstore.Fetch(lo.Col("lo_partkey"), pOut)
		odates := colstore.Fetch(lo.Col("lo_orderdate"), pOut)
		revs := colstore.Fetch(lo.Col("lo_revenue"), pOut)
		costs := colstore.Fetch(lo.Col("lo_supplycost"), pOut)
		packed := make([]uint64, 0, len(pOut))
		meas := make([]uint64, 0, len(pOut))
		for i := range pOut {
			soid, ok := first(suppDim.m, suppKeys[i])
			if !ok {
				continue
			}
			poid, ok := first(partDim.m, partKeys[i])
			if !ok {
				continue
			}
			doid, ok := first(dateDim.m, odates[i])
			if !ok {
				continue
			}
			var k uint64
			switch qid {
			case "4.1":
				k = pack(dateDim.attr[doid], custDim.attr[bOut[i]])
			case "4.2":
				k = pack(dateDim.attr[doid], suppDim.attr[soid], partDim.attr[poid])
			case "4.3":
				k = pack(dateDim.attr[doid], suppDim.attr[soid], partDim.attr[poid])
			}
			packed = append(packed, k)
			meas = append(meas, revs[i]-costs[i])
		}
		groups := colstore.GroupSum(packed, meas)
		n := 2
		if qid != "4.1" {
			n = 3
		}
		for k, v := range groups {
			f := unpack(k, n)
			row := append(f, v)
			qr.Rows = append(qr.Rows, row)
		}
		if qid == "4.1" {
			orderRows(qr.Rows, 0, 1)
		} else {
			orderRows(qr.Rows, 0, 1, 2)
		}
		return qr, nil
	}
	return nil, fmt.Errorf("ssb: unknown query %q", qid)
}
