package ssb

import (
	"context"
	"fmt"

	"qppt/internal/catalog"
	"qppt/internal/core"
)

// PlanOptions are the physical/logical plan knobs of the paper's
// demonstrator (Appendix A): whether selections are integrated into join
// operators, the maximum multi-way join arity, and the execution options
// (joinbuffer size, parallel leaf selections, statistics).
type PlanOptions struct {
	// UseSelectJoin integrates dimension selections into the successive
	// join operator where the plan allows it (paper Section 4.3).
	UseSelectJoin bool
	// JoinArity caps the number of tables joined by one composed join
	// operator (2, 3, 4, 5); 0 means unlimited (full multi-way). The
	// sweep reproduces Figure 9 on query 4.1.
	JoinArity int
	// DecomposeSelections runs conjunctive fact restrictions as separate
	// selection operators over single-attribute indexes keyed on the
	// record identifier, combined by the intersect set operator (paper
	// Section 4.1). Honored by the Q1.x plans; implies no select-join.
	DecomposeSelections bool
	// Exec carries the execution options: joinbuffer size, statistics,
	// and the morsel-driven parallelism knobs — Exec.Workers sizes the
	// plan-wide shared worker pool that serves both concurrent plan
	// branches and the operators' work-stealing key-range morsels,
	// Exec.MorselsPerWorker the morsel fan-out (see core.Options).
	Exec core.Options
}

// DefaultPlanOptions mirror the paper's preferred configuration: composed
// select-joins on, unlimited join arity, default joinbuffer.
func DefaultPlanOptions() PlanOptions {
	return PlanOptions{UseSelectJoin: true}
}

// BuildPlan constructs the QPPT execution plan for a query.
func (ds *Dataset) BuildPlan(qid string, opt PlanOptions) (*core.Plan, error) {
	switch qid {
	case "1.1":
		return ds.planQ1(opt, datePredYear(ds, 1993), 1, 3, 0, 24), nil
	case "1.2":
		return ds.planQ1(opt, datePredYearMonth(ds, 199401), 4, 6, 26, 35), nil
	case "1.3":
		return ds.planQ1(opt, datePredYearWeek(ds, 1994, 6), 5, 7, 26, 35), nil
	case "2.1":
		return ds.planQ2(opt, ds.partSel("p_category", ds.strPoint(ds.Part, "p_category", "MFGR#12")), "AMERICA"), nil
	case "2.2":
		return ds.planQ2(opt, ds.partSel("p_brand1", ds.strRange(ds.Part, "p_brand1", "MFGR#2221", "MFGR#2228")), "ASIA"), nil
	case "2.3":
		return ds.planQ2(opt, ds.partSel("p_brand1", ds.strPoint(ds.Part, "p_brand1", "MFGR#2221")), "EUROPE"), nil
	case "3.1":
		return ds.planQ3(opt,
			dimSel{ds.Customer.MustIndex([]string{"c_region"}, "c_custkey", "c_nation"), ds.strPoint(ds.Customer, "c_region", "ASIA"), "c_custkey", "c_nation"},
			dimSel{ds.Supplier.MustIndex([]string{"s_region"}, "s_suppkey", "s_nation"), ds.strPoint(ds.Supplier, "s_region", "ASIA"), "s_suppkey", "s_nation"},
			dimSel{ds.Date.MustIndex([]string{"d_year"}, "d_datekey", "d_weeknuminyear"), core.Between(1992, 1997), "d_datekey", "d_year"})
	case "3.2":
		return ds.planQ3(opt,
			dimSel{ds.Customer.MustIndex([]string{"c_nation"}, "c_custkey", "c_city"), ds.strPoint(ds.Customer, "c_nation", "UNITED STATES"), "c_custkey", "c_city"},
			dimSel{ds.Supplier.MustIndex([]string{"s_nation"}, "s_suppkey", "s_city"), ds.strPoint(ds.Supplier, "s_nation", "UNITED STATES"), "s_suppkey", "s_city"},
			dimSel{ds.Date.MustIndex([]string{"d_year"}, "d_datekey", "d_weeknuminyear"), core.Between(1992, 1997), "d_datekey", "d_year"})
	case "3.3", "3.4":
		datePred := core.Between(1992, 1997)
		dateIdx := ds.Date.MustIndex([]string{"d_year"}, "d_datekey", "d_weeknuminyear")
		if qid == "3.4" {
			datePred = ds.strPoint(ds.Date, "d_yearmonth", "Dec1997")
			dateIdx = ds.Date.MustIndex([]string{"d_yearmonth"}, "d_datekey", "d_year")
		}
		return ds.planQ3(opt,
			dimSel{ds.Customer.MustIndex([]string{"c_city"}, "c_custkey"), ds.strIn(ds.Customer, "c_city", "UNITED KI1", "UNITED KI5"), "c_custkey", "c_city"},
			dimSel{ds.Supplier.MustIndex([]string{"s_city"}, "s_suppkey"), ds.strIn(ds.Supplier, "s_city", "UNITED KI1", "UNITED KI5"), "s_suppkey", "s_city"},
			dimSel{dateIdx, datePred, "d_datekey", "d_year"})
	case "4.1":
		return ds.planQ41(opt)
	case "4.2":
		return ds.planQ42(opt)
	case "4.3":
		return ds.planQ43(opt)
	}
	return nil, fmt.Errorf("ssb: unknown query %q", qid)
}

// RunQPPT builds and executes the QPPT plan for a query one-shot,
// returning the normalized result and, when requested, the per-operator
// statistics.
func (ds *Dataset) RunQPPT(qid string, opt PlanOptions) (*QueryResult, *core.PlanStats, error) {
	return ds.RunQPPTCtx(context.Background(), qid, opt, nil)
}

// RunQPPTCtx is RunQPPT with cancellation and an optional long-lived
// execution environment: with a non-nil env the query runs on the
// environment's shared worker pool, recycles dropped intermediates into
// its session chunk pool, and spills under its cross-plan memory budget
// (see core.Plan.RunCtx).
func (ds *Dataset) RunQPPTCtx(ctx context.Context, qid string, opt PlanOptions, env *core.Env) (*QueryResult, *core.PlanStats, error) {
	plan, err := ds.BuildPlan(qid, opt)
	if err != nil {
		return nil, nil, err
	}
	out, stats, err := plan.RunCtx(ctx, env, opt.Exec)
	if err != nil {
		return nil, nil, err
	}
	return ds.normalizeQPPT(qid, out), stats, nil
}

// normalizeQPPT converts the result index into the query's normalized
// row layout and order.
func (ds *Dataset) normalizeQPPT(qid string, out *core.IndexedTable) *QueryResult {
	res := core.Extract(out)
	qr := &QueryResult{Attrs: querySchema(qid)}
	switch qid {
	case "1.1", "1.2", "1.3":
		// Keyless single group: extraction yields zero key fields plus the
		// one aggregate column; an empty index means sum 0.
		if len(res.Rows) == 0 {
			qr.Rows = [][]uint64{{0}}
		} else {
			qr.Rows = [][]uint64{{res.Rows[0][0]}}
		}
	case "2.1", "2.2", "2.3", "4.1", "4.2", "4.3":
		// Group key order == ORDER BY: rows come out of the prefix tree
		// already sorted (paper Section 3).
		qr.Rows = res.Rows
	case "3.1", "3.2", "3.3", "3.4":
		// Index key (d_year, c, s) → output layout (c, s, d_year),
		// ordered by d_year asc, revenue desc.
		qr.Rows = project(res.Rows, 1, 2, 0, 3)
		orderRows(qr.Rows, 2, -4)
	}
	return qr
}

// strPoint builds a point predicate from a string constant; constants
// missing from tiny generated dictionaries yield an empty predicate.
func (ds *Dataset) strPoint(ti *catalog.TableInfo, col, s string) core.KeyPred {
	if c, ok := ti.Dict(col).Code(s); ok {
		return core.Point(c)
	}
	return core.KeyPred{{Lo: 1, Hi: 0}} // matches nothing
}

// strRange builds a string BETWEEN predicate via the order-preserving
// dictionary.
func (ds *Dataset) strRange(ti *catalog.TableInfo, col, lo, hi string) core.KeyPred {
	d := ti.Dict(col)
	cl, okL := d.CeilCode(lo)
	ch, okH := d.FloorCode(hi)
	if !okL || !okH || cl > ch {
		return core.KeyPred{{Lo: 1, Hi: 0}}
	}
	return core.Between(cl, ch)
}

// strIn builds an IN predicate over string constants.
func (ds *Dataset) strIn(ti *catalog.TableInfo, col string, vals ...string) core.KeyPred {
	var p core.KeyPred
	for _, s := range vals {
		if c, ok := ti.Dict(col).Code(s); ok {
			p = append(p, core.KeyRange{Lo: c, Hi: c})
		}
	}
	if len(p) == 0 {
		return core.KeyPred{{Lo: 1, Hi: 0}}
	}
	return p
}

// datePred bundles a date-dimension selection entry point.
type datePredSpec struct {
	idx      *core.IndexedTable
	pred     core.KeyPred
	residual func(ctx []uint64) bool // e.g. the week filter of Q1.3
}

func datePredYear(ds *Dataset, year uint64) datePredSpec {
	return datePredSpec{
		idx:  ds.Date.MustIndex([]string{"d_year"}, "d_datekey", "d_weeknuminyear"),
		pred: core.Point(year),
	}
}

func datePredYearMonth(ds *Dataset, ym uint64) datePredSpec {
	return datePredSpec{
		idx:  ds.Date.MustIndex([]string{"d_yearmonthnum"}, "d_datekey"),
		pred: core.Point(ym),
	}
}

func datePredYearWeek(ds *Dataset, year, week uint64) datePredSpec {
	idx := ds.Date.MustIndex([]string{"d_year"}, "d_datekey", "d_weeknuminyear")
	weekOff := core.CtxOffsets([]*core.IndexedTable{idx}, core.Ref{Input: 0, Attr: "d_weeknuminyear"})[0]
	return datePredSpec{
		idx:      idx,
		pred:     core.Point(year),
		residual: func(ctx []uint64) bool { return ctx[weekOff] == week },
	}
}

// planQ1 builds the Q1.x plans: date selection, lineorder restriction on
// discount and quantity, keyless sum(extendedprice*discount).
//
// With select-join the whole query is one composed select-join-group
// operator probing the lineorder-by-orderdate index per qualifying date
// (Figure 8, "DexterDB w/ Select-Join"). Without it, a separate selection
// materializes the large qualifying-lineorder intermediate index keyed on
// orderdate, which a 2-way join-group then consumes.
func (ds *Dataset) planQ1(opt PlanOptions, date datePredSpec, dLo, dHi, qLo, qHi uint64) *core.Plan {
	loMain := ds.Lineorder.MustIndex([]string{"lo_orderdate"}, "lo_quantity", "lo_discount", "lo_extendedprice")
	odBits := ds.Lineorder.Bits("lo_orderdate")

	if opt.DecomposeSelections {
		return ds.planQ1Decomposed(date, dLo, dHi, qLo, qHi, odBits)
	}
	if opt.UseSelectJoin {
		offs := core.CtxOffsets([]*core.IndexedTable{date.idx, loMain},
			core.Ref{Input: 1, Attr: "lo_discount"},
			core.Ref{Input: 1, Attr: "lo_quantity"},
			core.Ref{Input: 1, Attr: "lo_extendedprice"})
		dOff, qOff, eOff := offs[0], offs[1], offs[2]
		sj := &core.SelectJoin{
			SelInput:      &core.Base{Table: date.idx},
			Pred:          date.pred,
			Residual:      date.residual,
			Main:          &core.Base{Table: loMain},
			ProbeMainWith: core.Ref{Input: 0, Attr: "d_datekey"},
			MainResidual: func(ctx []uint64) bool {
				return ctx[dOff] >= dLo && ctx[dOff] <= dHi && ctx[qOff] >= qLo && ctx[qOff] <= qHi
			},
			Out: core.OutputSpec{
				Name:     "Γ_revenue",
				Key:      core.KeySpec{},
				Cols:     []string{"revenue"},
				ColExprs: []core.RowExpr{core.Computed(func(ctx []uint64) uint64 { return ctx[eOff] * ctx[dOff] })},
				Fold:     core.FoldSum(0),
			},
		}
		return &core.Plan{Root: sj}
	}

	// Without select-join: selection over the multidimensional
	// (discount, quantity) index, materialized keyed on orderdate.
	loMulti := ds.Lineorder.MustIndex([]string{"lo_discount", "lo_quantity"}, "lo_orderdate", "lo_extendedprice")
	comp := loMulti.Key.Composer()
	var pred core.KeyPred
	for d := dLo; d <= dHi; d++ {
		pred = append(pred, core.KeyRange{Lo: comp.Compose(d, qLo), Hi: comp.Compose(d, qHi)})
	}
	selOffs := core.CtxOffsets([]*core.IndexedTable{loMulti},
		core.Ref{Input: 0, Attr: "lo_extendedprice"},
		core.Ref{Input: 0, Attr: "lo_discount"})
	eOff, dOff := selOffs[0], selOffs[1]
	selLine := &core.Selection{
		Input: &core.Base{Table: loMulti},
		Pred:  pred,
		Out: core.OutputSpec{
			Name:     "σ_lineorder",
			Key:      core.SimpleKey("lo_orderdate", odBits),
			KeyRefs:  []core.Ref{{Input: 0, Attr: "lo_orderdate"}},
			Cols:     []string{"part_rev"},
			ColExprs: []core.RowExpr{core.Computed(func(ctx []uint64) uint64 { return ctx[eOff] * ctx[dOff] })},
		},
	}
	selDate := &core.Selection{
		Input:    &core.Base{Table: date.idx},
		Pred:     date.pred,
		Residual: date.residual,
		Out: core.OutputSpec{
			Name:    "σ_date",
			Key:     core.SimpleKey("d_datekey", ds.Date.Bits("d_datekey")),
			KeyRefs: []core.Ref{{Input: 0, Attr: "d_datekey"}},
		},
	}
	join := &core.Join{
		Left:  selLine,
		Right: selDate,
		Out: core.OutputSpec{
			Name:     "Γ_revenue",
			Key:      core.KeySpec{},
			Cols:     []string{"revenue"},
			ColExprs: []core.RowExpr{core.Attr(0, "part_rev")},
			Fold:     core.FoldSum(0),
		},
	}
	return &core.Plan{Root: join}
}

// planQ1Decomposed is the Section 4.1 alternative for conjunctive
// predicates without a multidimensional index: one selection operator per
// predicate, each over a single-attribute base index and producing an
// index on the record identifier; the intersect set operator (physically a
// 2-way join on the rid, using the synchronous index scan) combines them
// and builds the orderdate-keyed index the join-group requests.
func (ds *Dataset) planQ1Decomposed(date datePredSpec, dLo, dHi, qLo, qHi uint64, odBits uint) *core.Plan {
	ridBits := ds.Lineorder.Bits(catalog.RIDCol)
	// σ per predicate: discount carries everything later operators need;
	// quantity is a pure rid filter.
	discIdx := ds.Lineorder.MustIndex([]string{"lo_discount"}, "lo_orderdate", "lo_extendedprice")
	qtyIdx := ds.Lineorder.MustIndex([]string{"lo_quantity"})
	selDisc := &core.Selection{
		Input: &core.Base{Table: discIdx},
		Pred:  core.Between(dLo, dHi),
		Out: core.OutputSpec{
			Name:    "σ_discount",
			Key:     core.SimpleKey(catalog.RIDCol, ridBits),
			KeyRefs: []core.Ref{{Input: 0, Attr: catalog.RIDCol}},
			Cols:    []string{"lo_orderdate", "lo_extendedprice", "lo_discount"},
			ColExprs: []core.RowExpr{
				core.Attr(0, "lo_orderdate"), core.Attr(0, "lo_extendedprice"), core.Attr(0, "lo_discount"),
			},
		},
	}
	selQty := &core.Selection{
		Input: &core.Base{Table: qtyIdx},
		Pred:  core.Between(qLo, qHi),
		Out: core.OutputSpec{
			Name:    "σ_quantity",
			Key:     core.SimpleKey(catalog.RIDCol, ridBits),
			KeyRefs: []core.Ref{{Input: 0, Attr: catalog.RIDCol}},
		},
	}
	shapes := []*core.IndexedTable{selDisc.Out.ShapeOf(), selQty.Out.ShapeOf()}
	offs := core.CtxOffsets(shapes,
		core.Ref{Input: 0, Attr: "lo_extendedprice"},
		core.Ref{Input: 0, Attr: "lo_discount"})
	eOff, dOff := offs[0], offs[1]
	inter := &core.Intersect{
		A: selDisc, B: selQty,
		Out: core.OutputSpec{
			Name:     "∩_orderdate",
			Key:      core.SimpleKey("lo_orderdate", odBits),
			KeyRefs:  []core.Ref{{Input: 0, Attr: "lo_orderdate"}},
			Cols:     []string{"part_rev"},
			ColExprs: []core.RowExpr{core.Computed(func(ctx []uint64) uint64 { return ctx[eOff] * ctx[dOff] })},
		},
	}
	selDate := &core.Selection{
		Input:    &core.Base{Table: date.idx},
		Pred:     date.pred,
		Residual: date.residual,
		Out: core.OutputSpec{
			Name:    "σ_date",
			Key:     core.SimpleKey("d_datekey", ds.Date.Bits("d_datekey")),
			KeyRefs: []core.Ref{{Input: 0, Attr: "d_datekey"}},
		},
	}
	join := &core.Join{
		Left:  inter,
		Right: selDate,
		Out: core.OutputSpec{
			Name:     "Γ_revenue",
			Key:      core.KeySpec{},
			Cols:     []string{"revenue"},
			ColExprs: []core.RowExpr{core.Attr(0, "part_rev")},
			Fold:     core.FoldSum(0),
		},
	}
	return &core.Plan{Root: join}
}

// partSelSpec bundles the part-dimension entry point of the Q2.x queries.
type partSelSpec struct {
	idx  *core.IndexedTable
	pred core.KeyPred
}

func (ds *Dataset) partSel(keyCol string, pred core.KeyPred) partSelSpec {
	switch keyCol {
	case "p_brand1":
		return partSelSpec{ds.Part.MustIndex([]string{"p_brand1"}, "p_partkey"), pred}
	case "p_category":
		return partSelSpec{ds.Part.MustIndex([]string{"p_category"}, "p_partkey", "p_brand1"), pred}
	}
	panic("ssb: bad part selection column " + keyCol)
}

// planQ2 builds the Q2.x plans (Figure 5's shape): part and supplier
// selections, 3-way/star join against lineorder-by-partkey producing an
// index on orderdate, then a 2-way join-group with date producing the
// (d_year, p_brand1) grouped sum of revenue.
func (ds *Dataset) planQ2(opt PlanOptions, part partSelSpec, regionName string) *core.Plan {
	loMain := ds.Lineorder.MustIndex([]string{"lo_partkey"}, "lo_suppkey", "lo_orderdate", "lo_revenue")
	dateIdx := ds.Date.MustIndex([]string{"d_datekey"}, "d_year")
	odBits := ds.Lineorder.Bits("lo_orderdate")
	region := ds.strPoint(ds.Supplier, "s_region", regionName)

	selSupp := &core.Selection{
		Input: &core.Base{Table: ds.Supplier.MustIndex([]string{"s_region"}, "s_suppkey")},
		Pred:  region,
		Out: core.OutputSpec{
			Name:    "σ_supplier",
			Key:     core.SimpleKey("s_suppkey", ds.Supplier.Bits("s_suppkey")),
			KeyRefs: []core.Ref{{Input: 0, Attr: "s_suppkey"}},
		},
	}

	var star core.Operator
	if opt.UseSelectJoin {
		star = &core.SelectJoin{
			SelInput:      &core.Base{Table: part.idx},
			Pred:          part.pred,
			Main:          &core.Base{Table: loMain},
			ProbeMainWith: core.Ref{Input: 0, Attr: "p_partkey"},
			Assists: []core.Assist{{
				Input:     selSupp,
				ProbeWith: core.Ref{Input: 1, Attr: "lo_suppkey"},
			}},
			Out: core.OutputSpec{
				Name:     "σ⋈_orderdate",
				Key:      core.SimpleKey("lo_orderdate", odBits),
				KeyRefs:  []core.Ref{{Input: 1, Attr: "lo_orderdate"}},
				Cols:     []string{"p_brand1", "lo_revenue"},
				ColExprs: []core.RowExpr{core.Attr(0, "p_brand1"), core.Attr(1, "lo_revenue")},
			},
		}
	} else {
		selPart := &core.Selection{
			Input: &core.Base{Table: part.idx},
			Pred:  part.pred,
			Out: core.OutputSpec{
				Name:     "σ_part",
				Key:      core.SimpleKey("p_partkey", ds.Part.Bits("p_partkey")),
				KeyRefs:  []core.Ref{{Input: 0, Attr: "p_partkey"}},
				Cols:     []string{"p_brand1"},
				ColExprs: []core.RowExpr{core.Attr(0, "p_brand1")},
			},
		}
		star = &core.Join{
			Left:  &core.Base{Table: loMain},
			Right: selPart,
			Assists: []core.Assist{{
				Input:     selSupp,
				ProbeWith: core.Ref{Input: 0, Attr: "lo_suppkey"},
			}},
			Out: core.OutputSpec{
				Name:     "⋈_orderdate",
				Key:      core.SimpleKey("lo_orderdate", odBits),
				KeyRefs:  []core.Ref{{Input: 0, Attr: "lo_orderdate"}},
				Cols:     []string{"p_brand1", "lo_revenue"},
				ColExprs: []core.RowExpr{core.Attr(1, "p_brand1"), core.Attr(0, "lo_revenue")},
			},
		}
	}
	final := &core.Join{
		Left:  star,
		Right: &core.Base{Table: dateIdx},
		Out: core.OutputSpec{
			Name:     "Γ_year_brand",
			Key:      core.GroupKey([]string{"d_year", "p_brand1"}, []uint{ds.Date.Bits("d_year"), ds.Part.Bits("p_brand1")}),
			KeyRefs:  []core.Ref{{Input: 1, Attr: "d_year"}, {Input: 0, Attr: "p_brand1"}},
			Cols:     []string{"revenue"},
			ColExprs: []core.RowExpr{core.Attr(0, "lo_revenue")},
			Fold:     core.FoldSum(0),
		},
	}
	return &core.Plan{Root: final}
}
