package ssb

import (
	"reflect"
	"testing"

	"qppt/internal/core"
	"qppt/internal/kernel"
)

// TestKernelMatchesScalarAndMaterialized is the acceptance gate for the
// SWAR batch kernels: every SSB query, run with the kernels active
// (default dispatch), forced through the scalar fallback
// (kernel.ForceGeneric — the -nokernel / QPPT_KERNEL=off path), and
// fully materialized (NoFuse), must produce bit-identical results —
// serially, in parallel, and under a sub-peak memory budget that pushes
// intermediates through the spill path. The kernels are an inner-loop
// strategy; nothing about them may be visible in the output.
func TestKernelMatchesScalarAndMaterialized(t *testing.T) {
	if !kernel.Enabled() {
		t.Skip("kernels disabled in this configuration; the fallback is the only path")
	}
	ds := testDataset(t)
	for _, qid := range QueryIDs {
		ref, _, err := ds.RunQPPT(qid, PlanOptions{Exec: core.Options{NoFuse: true}})
		if err != nil {
			t.Fatalf("Q%s materialized: %v", qid, err)
		}
		for _, exec := range []core.Options{
			{},
			{Workers: 3, MorselsPerWorker: 3},
			{MemBudget: 1},
		} {
			withKernel, _, err := ds.RunQPPT(qid, PlanOptions{Exec: exec})
			if err != nil {
				t.Fatalf("Q%s kernel (%+v): %v", qid, exec, err)
			}
			restore := kernel.ForceGeneric()
			scalar, serr := func() (*QueryResult, error) {
				r, _, e := ds.RunQPPT(qid, PlanOptions{Exec: exec})
				return r, e
			}()
			restore()
			if serr != nil {
				t.Fatalf("Q%s scalar (%+v): %v", qid, exec, serr)
			}
			if !reflect.DeepEqual(withKernel.Rows, scalar.Rows) {
				t.Errorf("Q%s %+v: kernel result differs from scalar fallback (%d vs %d rows)",
					qid, exec, len(withKernel.Rows), len(scalar.Rows))
			}
			if !reflect.DeepEqual(withKernel.Rows, ref.Rows) {
				t.Errorf("Q%s %+v: kernel result differs from materialized (%d vs %d rows)",
					qid, exec, len(withKernel.Rows), len(ref.Rows))
			}
		}
	}
}
