package ssb

import (
	"sync"
	"testing"

	"qppt/internal/core"
)

// The dataset is loaded once per test binary: the generator and base index
// builds dominate test time otherwise.
var (
	dsOnce sync.Once
	dsTest *Dataset
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsTest = MustLoad(GenConfig{SF: 0.02, Seed: 42})
	})
	return dsTest
}

func TestGeneratorShape(t *testing.T) {
	ds := testDataset(t)
	if got := ds.Date.Rows(); got != 2557 {
		t.Errorf("date rows = %d, want 2557 (7 years incl. two leap years)", got)
	}
	if ds.Lineorder.Rows() < 100000 {
		t.Errorf("lineorder rows = %d, want >= 100000 at SF 0.02", ds.Lineorder.Rows())
	}
	if ds.Customer.Rows() != 600 || ds.Supplier.Rows() != 40 {
		t.Errorf("customer/supplier rows = %d/%d, want 600/40", ds.Customer.Rows(), ds.Supplier.Rows())
	}
	// Every lineorder foreign key must resolve.
	cols := ds.Raw["lineorder"]
	nCust, nSupp, nPart := uint64(ds.Customer.Rows()), uint64(ds.Supplier.Rows()), uint64(ds.Part.Rows())
	for i, ck := range cols["lo_custkey"] {
		if ck < 1 || ck > nCust {
			t.Fatalf("row %d: custkey %d out of range", i, ck)
		}
		if sk := cols["lo_suppkey"][i]; sk < 1 || sk > nSupp {
			t.Fatalf("row %d: suppkey %d out of range", i, sk)
		}
		if pk := cols["lo_partkey"][i]; pk < 1 || pk > nPart {
			t.Fatalf("row %d: partkey %d out of range", i, pk)
		}
	}
	// Revenue must be consistent with price and discount.
	for i := range cols["lo_revenue"] {
		price, disc := cols["lo_extendedprice"][i], cols["lo_discount"][i]
		if cols["lo_revenue"][i] != price*(100-disc)/100 {
			t.Fatalf("row %d: inconsistent revenue", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(GenConfig{SF: 0.005, Seed: 7})
	b := Generate(GenConfig{SF: 0.005, Seed: 7})
	ca, cb := a.Tables["lineorder"], b.Tables["lineorder"]
	for i := range ca {
		for j := range ca[i].Ints {
			if ca[i].Ints[j] != cb[i].Ints[j] {
				t.Fatalf("column %s differs at row %d", ca[i].Name, j)
			}
		}
	}
}

// TestCrossEngineEquivalence is the repository's strongest correctness
// check: every SSB query must return the identical normalized result on
// the QPPT engine, the column-at-a-time engine, and the vector-at-a-time
// engine.
func TestCrossEngineEquivalence(t *testing.T) {
	ds := testDataset(t)
	for _, qid := range QueryIDs {
		qid := qid
		t.Run("Q"+qid, func(t *testing.T) {
			qppt, _, err := ds.RunQPPT(qid, DefaultPlanOptions())
			if err != nil {
				t.Fatalf("qppt: %v", err)
			}
			col, err := ds.RunColumn(qid)
			if err != nil {
				t.Fatalf("column: %v", err)
			}
			vec, err := ds.RunVector(qid)
			if err != nil {
				t.Fatalf("vector: %v", err)
			}
			if !qppt.Equal(col) {
				t.Errorf("QPPT and column engines disagree:\nqppt: %d rows %v\ncol:  %d rows %v",
					len(qppt.Rows), head(qppt.Rows), len(col.Rows), head(col.Rows))
			}
			if !qppt.Equal(vec) {
				t.Errorf("QPPT and vector engines disagree:\nqppt: %d rows %v\nvec:  %d rows %v",
					len(qppt.Rows), head(qppt.Rows), len(vec.Rows), head(vec.Rows))
			}
		})
	}
}

func head(rows [][]uint64) [][]uint64 {
	if len(rows) > 5 {
		return rows[:5]
	}
	return rows
}

// TestPlanKnobsPreserveResults: the demonstrator's optimizer knobs must
// never change a query's result — only its speed.
func TestPlanKnobsPreserveResults(t *testing.T) {
	ds := testDataset(t)
	for _, qid := range QueryIDs {
		ref, _, err := ds.RunQPPT(qid, DefaultPlanOptions())
		if err != nil {
			t.Fatalf("Q%s: %v", qid, err)
		}
		variants := []PlanOptions{
			{UseSelectJoin: false},
			{UseSelectJoin: true, Exec: core.Options{BufferSize: 1}},
			{UseSelectJoin: true, Exec: core.Options{BufferSize: 64}},
			{UseSelectJoin: false, Exec: core.Options{BufferSize: 2048}},
			{UseSelectJoin: true, Exec: core.Options{Workers: core.WorkersAuto}},
			{UseSelectJoin: true, Exec: core.Options{Workers: 4}},
			{UseSelectJoin: false, Exec: core.Options{Workers: 3}},
		}
		if qid == "4.1" {
			for a := 2; a <= 5; a++ {
				variants = append(variants, PlanOptions{JoinArity: a})
			}
		}
		if qid == "1.1" || qid == "1.2" || qid == "1.3" {
			// Section 4.1: decomposed per-predicate selections combined by
			// the intersect set operator must give the same answer.
			variants = append(variants, PlanOptions{DecomposeSelections: true})
		}
		for vi, opt := range variants {
			got, _, err := ds.RunQPPT(qid, opt)
			if err != nil {
				t.Fatalf("Q%s variant %d: %v", qid, vi, err)
			}
			if !ref.Equal(got) {
				t.Errorf("Q%s variant %d (%+v) changed the result: %d vs %d rows",
					qid, vi, opt, len(got.Rows), len(ref.Rows))
			}
		}
	}
}

func TestResultsNonTrivial(t *testing.T) {
	ds := testDataset(t)
	// With the fixed seed these queries must produce data; a zero result
	// would mean predicates or join paths are silently broken.
	for _, qid := range []string{"1.1", "1.2", "2.1", "3.1", "3.2", "4.1", "4.2"} {
		res, _, err := ds.RunQPPT(qid, DefaultPlanOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("Q%s returned no rows", qid)
			continue
		}
		var total uint64
		for _, r := range res.Rows {
			total += r[len(r)-1]
		}
		if total == 0 {
			t.Errorf("Q%s aggregate total is 0", qid)
		}
	}
}

func TestStatsReportOperators(t *testing.T) {
	ds := testDataset(t)
	_, stats, err := ds.RunQPPT("2.3", PlanOptions{UseSelectJoin: true, Exec: core.Options{CollectStats: true}})
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || len(stats.Ops) < 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// The plan of Figure 5 with select-join: σ_supplier, the composed
	// select-join, and the final join-group.
	if len(stats.Ops) != 3 {
		t.Errorf("Q2.3 w/ select-join has %d operators, want 3", len(stats.Ops))
	}
	for _, op := range stats.Ops {
		if op.Time < 0 {
			t.Errorf("operator %s has negative time", op.Label)
		}
	}
}

func TestDecodeRow(t *testing.T) {
	ds := testDataset(t)
	res, _, err := ds.RunQPPT("2.1", DefaultPlanOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Skip("no rows at this SF")
	}
	dec := ds.DecodeRow("2.1", res.Rows[0])
	if len(dec) != 3 {
		t.Fatalf("decoded = %v", dec)
	}
	if dec[1][:5] != "MFGR#" {
		t.Errorf("brand decoded as %q", dec[1])
	}
}
