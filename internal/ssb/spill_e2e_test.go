package ssb

import (
	"reflect"
	"testing"

	"qppt/internal/core"
)

// peakIntermediateBytes reports the largest intermediate-index footprint a
// query's plan builds, measured from an unbudgeted stats run.
func peakIntermediateBytes(t *testing.T, ds *Dataset, qid string, opt PlanOptions) int {
	t.Helper()
	opt.Exec.CollectStats = true
	_, stats, err := ds.RunQPPT(qid, opt)
	if err != nil {
		t.Fatalf("Q%s stats run: %v", qid, err)
	}
	peak := 0
	for _, op := range stats.Ops {
		if op.OutBytes > peak {
			peak = op.OutBytes
		}
	}
	return peak
}

// TestSpillBudgetMatchesUnbudgeted is the spilling acceptance test: every
// SSB query runs under a memory budget smaller than the plan's peak
// intermediate-index footprint, actually spills and restores intermediate
// indexes (nonzero counters in PlanStats), and produces rows bit-identical
// to the unbudgeted run — spilling is a pure storage decision.
func TestSpillBudgetMatchesUnbudgeted(t *testing.T) {
	ds := testDataset(t)
	for _, qid := range QueryIDs {
		for _, useSJ := range []bool{true, false} {
			plain, _, err := ds.RunQPPT(qid, PlanOptions{UseSelectJoin: useSJ})
			if err != nil {
				t.Fatalf("Q%s unbudgeted: %v", qid, err)
			}
			peak := peakIntermediateBytes(t, ds, qid, PlanOptions{UseSelectJoin: useSJ})
			if peak == 0 {
				t.Fatalf("Q%s: no intermediate footprint measured", qid)
			}
			budget := int64(peak) / 2
			if budget == 0 {
				budget = 1
			}
			opt := PlanOptions{
				UseSelectJoin: useSJ,
				Exec:          core.Options{MemBudget: budget, CollectStats: true},
			}
			budgeted, stats, err := ds.RunQPPT(qid, opt)
			if err != nil {
				t.Fatalf("Q%s budget=%d: %v", qid, budget, err)
			}
			if !reflect.DeepEqual(plain.Rows, budgeted.Rows) {
				t.Errorf("Q%s selectjoin=%v budget=%d: budgeted result differs (%d vs %d rows)",
					qid, useSJ, budget, len(budgeted.Rows), len(plain.Rows))
			}
			if stats.Spills == 0 || stats.Restores == 0 {
				t.Errorf("Q%s selectjoin=%v budget=%d (peak %d): spills=%d restores=%d, want both nonzero",
					qid, useSJ, budget, peak, stats.Spills, stats.Restores)
			}
			if stats.MemBudget != budget {
				t.Errorf("Q%s: stats budget = %d, want %d", qid, stats.MemBudget, budget)
			}
		}
	}
}

// Morsel-driven parallel execution under a budget: branches resolve (and
// pin/unpin their inputs) concurrently, the merged sharded outputs spill
// shard-by-shard, and the result must still be bit-identical.
func TestSpillBudgetUnderParallelism(t *testing.T) {
	ds := testDataset(t)
	for _, qid := range []string{"1.1", "2.3", "3.1", "4.1"} {
		plain, _, err := ds.RunQPPT(qid, PlanOptions{UseSelectJoin: true})
		if err != nil {
			t.Fatalf("Q%s serial: %v", qid, err)
		}
		opt := PlanOptions{
			UseSelectJoin: true,
			Exec: core.Options{
				Workers:          3,
				MorselsPerWorker: 3,
				MemBudget:        1, // everything cold spills
				CollectStats:     true,
			},
		}
		par, stats, err := ds.RunQPPT(qid, opt)
		if err != nil {
			t.Fatalf("Q%s parallel budgeted: %v", qid, err)
		}
		if !reflect.DeepEqual(plain.Rows, par.Rows) {
			t.Errorf("Q%s: parallel budgeted result differs", qid)
		}
		if stats.Spills == 0 || stats.Restores == 0 {
			t.Errorf("Q%s: parallel run recorded spills=%d restores=%d", qid, stats.Spills, stats.Restores)
		}
	}
}

// A budgeted run of the decomposed-selection plan shape (intersect/union
// set operators over rid indexes) exercises spilling across the remaining
// operator kinds.
func TestSpillBudgetDecomposedSelections(t *testing.T) {
	ds := testDataset(t)
	plain, _, err := ds.RunQPPT("1.1", PlanOptions{DecomposeSelections: true})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, stats, err := ds.RunQPPT("1.1", PlanOptions{
		DecomposeSelections: true,
		Exec:                core.Options{MemBudget: 1, CollectStats: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Rows, budgeted.Rows) {
		t.Error("decomposed budgeted result differs")
	}
	if stats.Spills == 0 || stats.Restores == 0 {
		t.Errorf("decomposed plan: spills=%d restores=%d", stats.Spills, stats.Restores)
	}
}

// TestSpillRecycleMmapMatches is the memory-lifecycle acceptance test:
// every SSB query runs with the plan-scoped chunk recycler AND the
// zero-copy mmap restore enabled, serially and under morsel parallelism,
// under a budget below the plan's peak intermediate footprint — and must
// stay bit-identical to the plain run while the recycler and mmap
// counters prove both mechanisms actually engaged.
func TestSpillRecycleMmapMatches(t *testing.T) {
	ds := testDataset(t)
	sawMmap, sawReuse := false, false
	for _, qid := range QueryIDs {
		plain, _, err := ds.RunQPPT(qid, PlanOptions{UseSelectJoin: true})
		if err != nil {
			t.Fatalf("Q%s plain: %v", qid, err)
		}
		peak := peakIntermediateBytes(t, ds, qid, PlanOptions{UseSelectJoin: true})
		budget := int64(peak) / 2
		if budget == 0 {
			budget = 1
		}
		for _, workers := range []int{1, 3} {
			opt := PlanOptions{
				UseSelectJoin: true,
				Exec: core.Options{
					Workers:      workers,
					MemBudget:    budget,
					MmapThaw:     true,
					Recycle:      true,
					CollectStats: true,
				},
			}
			got, stats, err := ds.RunQPPT(qid, opt)
			if err != nil {
				t.Fatalf("Q%s workers=%d recycle+mmap: %v", qid, workers, err)
			}
			if !reflect.DeepEqual(plain.Rows, got.Rows) {
				t.Errorf("Q%s workers=%d: recycle+mmap result differs (%d vs %d rows)",
					qid, workers, len(got.Rows), len(plain.Rows))
			}
			if stats.ChunksRecycled == 0 {
				t.Errorf("Q%s workers=%d: recycler idle: %+v", qid, workers, stats)
			}
			sawMmap = sawMmap || stats.MmapRestores > 0
			sawReuse = sawReuse || stats.ChunksReused > 0
		}
	}
	if !sawReuse {
		t.Error("no query reused a recycled chunk")
	}
	if !sawMmap {
		t.Error("no query took the zero-copy mmap restore path")
	}
}

// The recycler alone (no budget, no spilling) must also be invisible in
// the results — serially and in parallel, across plan shapes.
func TestRecycleMatchesAcrossPlanShapes(t *testing.T) {
	ds := testDataset(t)
	for _, qid := range QueryIDs {
		for _, useSJ := range []bool{true, false} {
			plain, _, err := ds.RunQPPT(qid, PlanOptions{UseSelectJoin: useSJ})
			if err != nil {
				t.Fatalf("Q%s: %v", qid, err)
			}
			for _, workers := range []int{1, 3} {
				opt := PlanOptions{
					UseSelectJoin: useSJ,
					Exec:          core.Options{Workers: workers, Recycle: true, CollectStats: true},
				}
				got, stats, err := ds.RunQPPT(qid, opt)
				if err != nil {
					t.Fatalf("Q%s selectjoin=%v workers=%d recycle: %v", qid, useSJ, workers, err)
				}
				if !reflect.DeepEqual(plain.Rows, got.Rows) {
					t.Errorf("Q%s selectjoin=%v workers=%d: recycled result differs", qid, useSJ, workers)
				}
				// Single-operator plans (a lone composed select-join over
				// base tables) have no intermediate to drop; everywhere
				// else the recycler must have seen traffic.
				if len(stats.Ops) > 1 && stats.ChunksRecycled == 0 {
					t.Errorf("Q%s selectjoin=%v workers=%d: recycler idle across %d operators",
						qid, useSJ, workers, len(stats.Ops))
				}
			}
		}
	}
}
