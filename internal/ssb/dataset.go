package ssb

import (
	"fmt"

	"qppt/internal/catalog"
	"qppt/internal/colstore"
	"qppt/internal/core"
)

// A Dataset is a fully loaded SSB instance: the catalog-backed row store
// with its base indexes (for QPPT), plus the shared encoded column arrays
// the two baseline engines scan. All three engines see the exact same
// dictionary encodings, so query results are comparable bit for bit.
type Dataset struct {
	SF float64

	Cat       *catalog.Catalog
	Lineorder *catalog.TableInfo
	Date      *catalog.TableInfo
	Customer  *catalog.TableInfo
	Supplier  *catalog.TableInfo
	Part      *catalog.TableInfo

	// ColDB is the column-at-a-time engine's database; Raw holds the
	// same column arrays for the vector engine's scans.
	ColDB *colstore.DB
	Raw   map[string]map[string][]uint64
}

// Load generates and loads an SSB instance at the given scale factor.
func Load(cfg GenConfig) (*Dataset, error) {
	data := Generate(cfg)
	ds := &Dataset{SF: data.SF, Cat: catalog.New(), ColDB: colstore.NewDB(), Raw: map[string]map[string][]uint64{}}
	for name, cols := range data.Tables {
		ti, err := ds.Cat.Load(name, cols)
		if err != nil {
			return nil, fmt.Errorf("ssb: loading %s: %w", name, err)
		}
		arrays := ti.Columns()
		if _, err := ds.ColDB.AddTable(name, arrays); err != nil {
			return nil, err
		}
		ds.Raw[name] = arrays
	}
	ds.Lineorder = ds.Cat.Table("lineorder")
	ds.Date = ds.Cat.Table("date")
	ds.Customer = ds.Cat.Table("customer")
	ds.Supplier = ds.Cat.Table("supplier")
	ds.Part = ds.Cat.Table("part")
	if err := ds.buildBaseIndexes(); err != nil {
		return nil, err
	}
	return ds, nil
}

// MustLoad is Load that panics on error, for benchmarks and examples.
func MustLoad(cfg GenConfig) *Dataset {
	ds, err := Load(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// buildBaseIndexes provisions the base indexes the thirteen query plans
// start from (paper Section 3: "these indexes are either already present
// or are created once and remain in the data pool for future queries").
// All fact-table indexes are partially clustered so operators never fetch
// records randomly during processing.
func (ds *Dataset) buildBaseIndexes() error {
	defs := []struct {
		ti  *catalog.TableInfo
		def catalog.IndexDef
	}{
		// Fact table, one clustered index per join/selection entry point.
		{ds.Lineorder, catalog.IndexDef{KeyCols: []string{"lo_orderdate"},
			Include: []string{"lo_quantity", "lo_discount", "lo_extendedprice"}}},
		{ds.Lineorder, catalog.IndexDef{KeyCols: []string{"lo_partkey"},
			Include: []string{"lo_suppkey", "lo_orderdate", "lo_revenue"}}},
		{ds.Lineorder, catalog.IndexDef{KeyCols: []string{"lo_custkey"},
			Include: []string{"lo_suppkey", "lo_partkey", "lo_orderdate", "lo_revenue", "lo_supplycost"}}},
		// Multidimensional index for the decomposed Q1.x selection plans.
		{ds.Lineorder, catalog.IndexDef{KeyCols: []string{"lo_discount", "lo_quantity"},
			Include: []string{"lo_orderdate", "lo_extendedprice"}}},
		// Dimension entry points: one index per selection attribute.
		{ds.Date, catalog.IndexDef{KeyCols: []string{"d_datekey"}, Include: []string{"d_year"}}},
		{ds.Date, catalog.IndexDef{KeyCols: []string{"d_year"}, Include: []string{"d_datekey", "d_weeknuminyear"}}},
		{ds.Date, catalog.IndexDef{KeyCols: []string{"d_yearmonthnum"}, Include: []string{"d_datekey"}}},
		{ds.Date, catalog.IndexDef{KeyCols: []string{"d_yearmonth"}, Include: []string{"d_datekey", "d_year"}}},
		{ds.Customer, catalog.IndexDef{KeyCols: []string{"c_region"}, Include: []string{"c_custkey", "c_nation"}}},
		{ds.Customer, catalog.IndexDef{KeyCols: []string{"c_nation"}, Include: []string{"c_custkey", "c_city"}}},
		{ds.Customer, catalog.IndexDef{KeyCols: []string{"c_city"}, Include: []string{"c_custkey"}}},
		{ds.Supplier, catalog.IndexDef{KeyCols: []string{"s_region"}, Include: []string{"s_suppkey"}}},
		{ds.Supplier, catalog.IndexDef{KeyCols: []string{"s_nation"}, Include: []string{"s_suppkey", "s_city"}}},
		{ds.Supplier, catalog.IndexDef{KeyCols: []string{"s_city"}, Include: []string{"s_suppkey"}}},
		{ds.Part, catalog.IndexDef{KeyCols: []string{"p_brand1"}, Include: []string{"p_partkey"}}},
		{ds.Part, catalog.IndexDef{KeyCols: []string{"p_category"}, Include: []string{"p_partkey", "p_brand1"}}},
		{ds.Part, catalog.IndexDef{KeyCols: []string{"p_mfgr"}, Include: []string{"p_partkey", "p_brand1", "p_category"}}},
		{ds.Part, catalog.IndexDef{KeyCols: []string{"p_partkey"}, Include: []string{"p_brand1"}}},
	}
	for _, d := range defs {
		if _, err := d.ti.BuildIndex(d.def); err != nil {
			return err
		}
	}
	return nil
}

// Index fetches a previously built base index as a plan input.
func (ds *Dataset) Index(ti *catalog.TableInfo, keyCols []string, include ...string) *core.IndexedTable {
	return ti.MustIndex(keyCols, include...)
}
