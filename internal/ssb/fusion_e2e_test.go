package ssb

import (
	"reflect"
	"testing"

	"qppt/internal/catalog"
	"qppt/internal/core"
)

// TestFusionMatchesMaterialized asserts bit-identical results between
// fused (default) and materialized (NoFuse) execution for every SSB
// query, across plan shapes, serial and parallel execution, with a
// sub-peak memory budget forcing the materialized intermediates through
// the spill path, and with both batched (default) and scalar
// (ProbeBatch 1) probe forwarding inside the fused chains. Fusion is
// purely an execution strategy; it must be completely invisible in the
// output.
func TestFusionMatchesMaterialized(t *testing.T) {
	ds := testDataset(t)
	for _, qid := range QueryIDs {
		for _, useSJ := range []bool{true, false} {
			ref, _, err := ds.RunQPPT(qid, PlanOptions{
				UseSelectJoin: useSJ,
				Exec:          core.Options{NoFuse: true},
			})
			if err != nil {
				t.Fatalf("Q%s materialized: %v", qid, err)
			}
			for _, exec := range []core.Options{
				{},
				{Workers: 3, MorselsPerWorker: 3},
				{MemBudget: 1},
				{Workers: 3, MorselsPerWorker: 3, MemBudget: 1},
			} {
				for _, probeBatch := range []int{0, 1} {
					exec := exec
					exec.ProbeBatch = probeBatch
					fused, _, err := ds.RunQPPT(qid, PlanOptions{UseSelectJoin: useSJ, Exec: exec})
					if err != nil {
						t.Fatalf("Q%s fused (%+v): %v", qid, exec, err)
					}
					if !reflect.DeepEqual(ref.Rows, fused.Rows) {
						t.Errorf("Q%s selectjoin=%v %+v: fused result differs (%d vs %d rows)",
							qid, useSJ, exec, len(fused.Rows), len(ref.Rows))
					}
				}
			}
		}
	}
}

// TestRangeStreamFusionMatchesMaterialized covers the Selection/Having
// fused-consumer kind on SSB data — a shape the canned SSB plans never
// produce, so it is built by hand: a rid-keyed selection (the
// decomposed-plan shape of flight 1) feeding a second selection with a
// rid-range predicate. The σ→σ edge fuses as an ordered range stream;
// results must be bit-identical to the materialized path across
// serial/parallel execution, a sub-peak memory budget, and batched vs
// scalar probe forwarding. The rid key is unique, so not even the
// intra-key duplicate order caveat applies.
func TestRangeStreamFusionMatchesMaterialized(t *testing.T) {
	ds := testDataset(t)
	ridBits := ds.Lineorder.Bits(catalog.RIDCol)
	nRows := uint64(ds.Lineorder.Rows())
	cols := []string{"lo_orderdate", "lo_extendedprice"}
	colExprs := []core.RowExpr{core.Attr(0, "lo_orderdate"), core.Attr(0, "lo_extendedprice")}
	mkPlan := func() *core.Plan {
		discIdx := ds.Lineorder.MustIndex([]string{"lo_discount"}, "lo_orderdate", "lo_extendedprice")
		inner := &core.Selection{
			Input: &core.Base{Table: discIdx},
			Pred:  core.Between(1, 3),
			Out: core.OutputSpec{
				Name:     "σ_discount",
				Key:      core.SimpleKey(catalog.RIDCol, ridBits),
				KeyRefs:  []core.Ref{{Input: 0, Attr: catalog.RIDCol}},
				Cols:     cols,
				ColExprs: colExprs,
			},
		}
		return &core.Plan{Root: &core.Selection{
			Input: inner,
			Pred:  core.Between(nRows/4, 3*nRows/4),
			Out: core.OutputSpec{
				Name:     "σ_band",
				Key:      core.SimpleKey(catalog.RIDCol, ridBits),
				KeyRefs:  []core.Ref{{Input: 0, Attr: catalog.RIDCol}},
				Cols:     cols,
				ColExprs: colExprs,
			},
		}}
	}
	ref, _, err := mkPlan().Run(core.Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	refRows := core.Extract(ref).Rows
	if len(refRows) == 0 {
		t.Fatal("empty reference result — the predicates select nothing")
	}
	for _, exec := range []core.Options{
		{},
		{Workers: 3, MorselsPerWorker: 3},
		{MemBudget: 1},
		{Workers: 3, MorselsPerWorker: 3, MemBudget: 1},
	} {
		for _, probeBatch := range []int{0, 1} {
			exec := exec
			exec.ProbeBatch = probeBatch
			exec.CollectStats = true
			out, stats, err := mkPlan().Run(exec)
			if err != nil {
				t.Fatalf("%+v: %v", exec, err)
			}
			if stats.FusedEdges != 1 {
				t.Fatalf("%+v: FusedEdges = %d, want 1 (σ→σ range stream)", exec, stats.FusedEdges)
			}
			if got := stats.Ops[0].FusedKind; got != "range-stream" {
				t.Fatalf("%+v: fused edge kind %q, want range-stream", exec, got)
			}
			if probeBatch == 0 && stats.Ops[0].ProbeBatches == 0 {
				t.Fatalf("%+v: batched forwarding recorded no probe batches", exec)
			}
			if !reflect.DeepEqual(core.Extract(out).Rows, refRows) {
				t.Fatalf("%+v: range-stream fused result differs", exec)
			}
		}
	}
}

// TestFusionCoversDecomposedPlans: on the decomposed (plain) plan shape
// every SSB query carries at least one single-consumer selection→join
// edge, so the fused-edge counter must move on well over half the suite
// — the coverage the fusion ablation reports.
func TestFusionCoversDecomposedPlans(t *testing.T) {
	ds := testDataset(t)
	fusedQueries := 0
	for _, qid := range QueryIDs {
		_, stats, err := ds.RunQPPT(qid, PlanOptions{Exec: core.Options{CollectStats: true}})
		if err != nil {
			t.Fatalf("Q%s: %v", qid, err)
		}
		if stats.FusedEdges > 0 {
			fusedQueries++
		}
	}
	if fusedQueries < 8 {
		t.Fatalf("only %d of %d decomposed queries fused any edge, want >= 8", fusedQueries, len(QueryIDs))
	}
}
