package ssb

import (
	"reflect"
	"testing"

	"qppt/internal/core"
)

// TestFusionMatchesMaterialized asserts bit-identical results between
// fused (default) and materialized (NoFuse) execution for every SSB
// query, across plan shapes, serial and parallel execution, and with a
// sub-peak memory budget forcing the materialized intermediates through
// the spill path. Fusion is purely an execution strategy; it must be
// completely invisible in the output.
func TestFusionMatchesMaterialized(t *testing.T) {
	ds := testDataset(t)
	for _, qid := range QueryIDs {
		for _, useSJ := range []bool{true, false} {
			ref, _, err := ds.RunQPPT(qid, PlanOptions{
				UseSelectJoin: useSJ,
				Exec:          core.Options{NoFuse: true},
			})
			if err != nil {
				t.Fatalf("Q%s materialized: %v", qid, err)
			}
			for _, exec := range []core.Options{
				{},
				{Workers: 3, MorselsPerWorker: 3},
				{MemBudget: 1},
				{Workers: 3, MorselsPerWorker: 3, MemBudget: 1},
			} {
				fused, _, err := ds.RunQPPT(qid, PlanOptions{UseSelectJoin: useSJ, Exec: exec})
				if err != nil {
					t.Fatalf("Q%s fused (%+v): %v", qid, exec, err)
				}
				if !reflect.DeepEqual(ref.Rows, fused.Rows) {
					t.Errorf("Q%s selectjoin=%v %+v: fused result differs (%d vs %d rows)",
						qid, useSJ, exec, len(fused.Rows), len(ref.Rows))
				}
			}
		}
	}
}

// TestFusionCoversDecomposedPlans: on the decomposed (plain) plan shape
// every SSB query carries at least one single-consumer selection→join
// edge, so the fused-edge counter must move on well over half the suite
// — the coverage the fusion ablation reports.
func TestFusionCoversDecomposedPlans(t *testing.T) {
	ds := testDataset(t)
	fusedQueries := 0
	for _, qid := range QueryIDs {
		_, stats, err := ds.RunQPPT(qid, PlanOptions{Exec: core.Options{CollectStats: true}})
		if err != nil {
			t.Fatalf("Q%s: %v", qid, err)
		}
		if stats.FusedEdges > 0 {
			fusedQueries++
		}
	}
	if fusedQueries < 8 {
		t.Fatalf("only %d of %d decomposed queries fused any edge, want >= 8", fusedQueries, len(QueryIDs))
	}
}
