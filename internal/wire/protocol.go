// Package wire is QPPT's serving tier: a length-prefixed binary wire
// protocol over the qppt.Engine / Session surface, with admission-aware
// backpressure and typed error classes.
//
// Every frame is one type byte followed by a big-endian uint32 payload
// length and the payload. Payload scalars are unsigned varints, strings
// are uvarint-length-prefixed UTF-8. The client speaks first:
//
//	client → server                     server → client
//	Hello     magic "QPPT", version     HelloOK      version, banner
//	Query     flags, sql                RowHeader    attr names
//	Prepare   name, sql                 RowBatch     uint64 cells (raw)
//	Bind      portal, stmt name         RowBatchStr  string cells (decoded)
//	Execute   flags, portal             Done         row count, elapsed ns
//	Cancel    —  (out of band)          PrepareOK    attr names
//	CloseStmt name                      BindOK / CloseOK
//	Terminate —                         Err          class, message
//
// A Query (or Execute) answer is RowHeader, zero or more row batches
// streamed RowBatchSize rows at a time, then Done — or a single Err
// frame. Cancel is read out of band while a query executes and aborts it
// through the engine's context path; the aborted command answers
// Err/ClassCancelled. Err frames carry one of the five error classes
// below, the protocol generalization of the HTTP serve mode's
// 400/499/500/503 mapping (Class.HTTPStatus is the single place that
// mapping lives).
package wire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"

	"qppt"
)

// Magic opens every Hello frame; Version is the protocol revision the
// handshake negotiates (the server answers min(client, server)).
const (
	Magic   = "QPPT"
	Version = 1
)

// RowBatchSize is how many result rows one RowBatch/RowBatchStr frame
// carries: large enough to amortize framing, small enough that a slow
// client applies backpressure through the TCP window instead of letting
// the server buffer an unbounded result ahead of it.
const RowBatchSize = 256

// MaxClientFrame bounds client→server payloads (statements); a frame
// declaring more is a protocol error and closes the connection.
// MaxServerFrame bounds server→client payloads the client will accept.
const (
	MaxClientFrame = 1 << 20
	MaxServerFrame = 1 << 26
)

// FrameType tags a frame. Client→server types have the high bit clear,
// server→client types set.
type FrameType byte

const (
	FrameHello     FrameType = 0x01
	FrameQuery     FrameType = 0x02
	FramePrepare   FrameType = 0x03
	FrameBind      FrameType = 0x04
	FrameExecute   FrameType = 0x05
	FrameCancel    FrameType = 0x06
	FrameCloseStmt FrameType = 0x07
	FrameTerminate FrameType = 0x08

	FrameHelloOK     FrameType = 0x81
	FramePrepareOK   FrameType = 0x82
	FrameBindOK      FrameType = 0x83
	FrameCloseOK     FrameType = 0x84
	FrameRowHeader   FrameType = 0x85
	FrameRowBatch    FrameType = 0x86
	FrameRowBatchStr FrameType = 0x87
	FrameDone        FrameType = 0x88
	FrameErr         FrameType = 0x89
)

// FlagDecode on Query/Execute asks for RowBatchStr frames: cells decoded
// through the catalog dictionaries server-side instead of raw uint64
// codes. Raw mode is the default — it is bit-identical to in-process
// Session.Query results.
const FlagDecode byte = 1 << 0

// Class is a protocol error class — the wire generalization of the HTTP
// serve mode's status mapping, so overload, cancellation and server
// failure stay distinguishable to any client.
type Class byte

const (
	// ClassBadRequest: the statement is at fault (parse/plan errors,
	// unknown prepared names, malformed frames). HTTP 400.
	ClassBadRequest Class = 1
	// ClassCancelled: the client cancelled or disconnected mid-query.
	// HTTP 499 (the nginx convention the serve mode already used).
	ClassCancelled Class = 2
	// ClassInternal: execution failed server-side (spill I/O). HTTP 500.
	ClassInternal Class = 3
	// ClassUnavailable: the engine is shut down or shutting down. HTTP 503.
	ClassUnavailable Class = 4
	// ClassOverloaded: admission control shed this query — the session's
	// queue is full (qppt.ErrOverloaded). Back off and retry. HTTP 503.
	ClassOverloaded Class = 5
)

func (c Class) String() string {
	switch c {
	case ClassBadRequest:
		return "bad-request"
	case ClassCancelled:
		return "cancelled"
	case ClassInternal:
		return "internal"
	case ClassUnavailable:
		return "unavailable"
	case ClassOverloaded:
		return "overloaded"
	}
	return fmt.Sprintf("class-%d", byte(c))
}

// HTTPStatus is the single home of the error-class ↔ HTTP status
// mapping; the HTTP serve mode is a thin adapter over the wire server
// and derives every response status from it.
func (c Class) HTTPStatus() int {
	switch c {
	case ClassBadRequest:
		return http.StatusBadRequest
	case ClassCancelled:
		return 499 // client closed request (nginx convention)
	case ClassUnavailable, ClassOverloaded:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// Classify maps an execution error onto its protocol class: typed engine
// conditions (overload, closed engine, cancellation) take precedence,
// anything else gets the caller's stage fallback (ClassBadRequest while
// planning, ClassInternal while executing).
func Classify(err error, fallback Class) Class {
	switch {
	case errors.Is(err, qppt.ErrOverloaded):
		return ClassOverloaded
	case errors.Is(err, qppt.ErrEngineClosed):
		return ClassUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ClassCancelled
	}
	return fallback
}

// Error is a server-reported failure, decoded from an Err frame by the
// client (and used server-side to carry a class to the frame writer).
type Error struct {
	Class Class
	Msg   string
}

func (e *Error) Error() string { return fmt.Sprintf("qppt wire: %s: %s", e.Class, e.Msg) }

// Is lets errors.Is match the engine's typed sentinels through a wire
// round-trip: a ClassOverloaded error is qppt.ErrOverloaded to the
// caller, a ClassUnavailable one qppt.ErrEngineClosed.
func (e *Error) Is(target error) bool {
	switch target {
	case qppt.ErrOverloaded:
		return e.Class == ClassOverloaded
	case qppt.ErrEngineClosed:
		return e.Class == ClassUnavailable
	}
	return false
}

// WriteFrame writes one frame: type byte, big-endian payload length,
// payload.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads beyond max.
func ReadFrame(r io.Reader, max int) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if int(n) > max {
		return 0, nil, fmt.Errorf("qppt wire: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(hdr[0]), payload, nil
}

// A Payload builds a frame payload: uvarint scalars, length-prefixed
// strings.
type Payload struct{ Buf []byte }

func (p *Payload) U8(b byte) { p.Buf = append(p.Buf, b) }

func (p *Payload) Uvarint(v uint64) { p.Buf = binary.AppendUvarint(p.Buf, v) }

func (p *Payload) Str(s string) {
	p.Buf = binary.AppendUvarint(p.Buf, uint64(len(s)))
	p.Buf = append(p.Buf, s...)
}

// A PayloadReader decodes a frame payload. Decoding errors stick: check
// Err once after the reads (every getter returns a zero value once the
// reader has failed).
type PayloadReader struct {
	buf []byte
	err error
}

func NewPayloadReader(buf []byte) *PayloadReader { return &PayloadReader{buf: buf} }

var errTruncated = errors.New("qppt wire: truncated payload")

func (r *PayloadReader) U8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.err = errTruncated
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *PayloadReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *PayloadReader) Str() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)) < n {
		r.err = errTruncated
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// Err reports the first decoding failure, or nil.
func (r *PayloadReader) Err() error { return r.err }
