package wire_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qppt"
	"qppt/internal/ssb"
	"qppt/internal/wire"
	"qppt/internal/wire/client"
)

var (
	wireDSOnce sync.Once
	wireDS     *ssb.Dataset
)

// wireDataset loads one shared SSB instance for the package — the same
// scale the engine suite uses, big enough that every query returns rows.
func wireDataset(t *testing.T) *ssb.Dataset {
	t.Helper()
	wireDSOnce.Do(func() {
		wireDS = ssb.MustLoad(ssb.GenConfig{SF: 0.02, Seed: 42})
	})
	return wireDS
}

// reference runs every SSB query in-process on its own session — the
// bit-identity oracle the wire results must match exactly.
func reference(t *testing.T, eng *qppt.Engine, ds *ssb.Dataset) map[string]*refResult {
	t.Helper()
	sess := eng.Session(ds.Cat)
	out := make(map[string]*refResult, len(ssb.QueryIDs))
	for _, qid := range ssb.QueryIDs {
		rows, _, err := sess.Query(context.Background(), ssb.SQLTexts[qid])
		if err != nil {
			t.Fatalf("reference %s: %v", qid, err)
		}
		out[qid] = &refResult{attrs: rows.Attrs, rows: rows.Rows}
	}
	return out
}

type refResult struct {
	attrs []string
	rows  [][]uint64
}

func (r *refResult) check(qid string, res *client.Result) error {
	if !reflect.DeepEqual(res.Attrs, r.attrs) {
		return fmt.Errorf("%s: attrs %v over the wire, want %v", qid, res.Attrs, r.attrs)
	}
	if len(res.Rows) != len(r.rows) {
		return fmt.Errorf("%s: %d rows over the wire, want %d", qid, len(res.Rows), len(r.rows))
	}
	for i := range r.rows {
		if !reflect.DeepEqual(res.Rows[i], r.rows[i]) {
			return fmt.Errorf("%s row %d: %v over the wire, want %v (bit-identity broken)", qid, i, res.Rows[i], r.rows[i])
		}
	}
	return nil
}

// assertNoLeakedGoroutines fails if wire/execution goroutines survive
// the servers and engines a test closed.
func assertNoLeakedGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if leakedGoroutines() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Errorf("wire/execution goroutines still running:\n%s", buf[:n])
}

func leakedGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "qppt/internal/wire.") ||
			strings.Contains(g, "qppt/internal/core.") ||
			strings.Contains(g, "qppt/internal/spill.") {
			count++
		}
	}
	return count
}

func assertNoSpillFiles(t *testing.T, dir string) {
	t.Helper()
	var left []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			left = append(left, path)
		}
		return nil
	})
	if len(left) > 0 {
		t.Errorf("spill files left after close: %v", left)
	}
}

// TestWireSSBBitIdentical: all 13 SSB queries over the wire protocol
// return byte-for-byte the rows an in-process Session.Query returns,
// and decoded mode matches Rows.Decode cell by cell.
func TestWireSSBBitIdentical(t *testing.T) {
	ds := wireDataset(t)
	eng, err := qppt.New(qppt.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	refs := reference(t, eng, ds)

	srv := wire.NewServer(eng, ds.Cat)
	defer srv.Close()
	cc, err := client.NewPipe(srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if cc.Banner == "" || cc.Version != wire.Version {
		t.Fatalf("handshake negotiated banner %q version %d", cc.Banner, cc.Version)
	}

	for _, qid := range ssb.QueryIDs {
		res, err := cc.Query(ssb.SQLTexts[qid])
		if err != nil {
			t.Fatalf("%s over the wire: %v", qid, err)
		}
		if err := refs[qid].check(qid, res); err != nil {
			t.Fatal(err)
		}
	}

	// Decoded mode: cells match the in-process catalog decoding.
	sess := eng.Session(ds.Cat)
	rows, _, err := sess.Query(context.Background(), ssb.SQLTexts["3.1"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := cc.QueryDecoded(ssb.SQLTexts["3.1"])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strs) != len(rows.Rows) {
		t.Fatalf("decoded rows %d, want %d", len(res.Strs), len(rows.Rows))
	}
	for i := range rows.Rows {
		for c := range rows.Attrs {
			if want := rows.Decode(i, c); res.Strs[i][c] != want {
				t.Fatalf("decoded cell (%d,%d) = %q over the wire, want %q", i, c, res.Strs[i][c], want)
			}
		}
	}

	cc.Close()
	srv.Close()
	eng.Close()
	assertNoLeakedGoroutines(t)
}

// TestWirePrepareBindExecute: the extended protocol — named statements,
// portals, repeated execution through the statement cache — and its
// error classes for unknown names.
func TestWirePrepareBindExecute(t *testing.T) {
	ds := wireDataset(t)
	eng, err := qppt.New(qppt.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := wire.NewServer(eng, ds.Cat)
	defer srv.Close()
	cc, err := client.NewPipe(srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	attrs, err := cc.Prepare("q21", ssb.SQLTexts["2.1"])
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Bind("p", "q21"); err != nil {
		t.Fatal(err)
	}
	first, err := cc.Execute("p")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Attrs, attrs) {
		t.Fatalf("Execute attrs %v, want PrepareOK's %v", first.Attrs, attrs)
	}
	second, err := cc.Execute("p")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatal("repeated Execute of one portal returned different rows")
	}

	// A Query of the same text hits the per-connection statement cache.
	if _, err := cc.Query(ssb.SQLTexts["2.1"]); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats().StmtCache; st.Hits == 0 {
		t.Errorf("statement cache hits = 0 after re-preparing one text, want > 0 (stats %+v)", st)
	}

	// A second statement name for the same SQL shares the cached plan;
	// its portals must survive closing the *other* name.
	if _, err := cc.Prepare("q21b", ssb.SQLTexts["2.1"]); err != nil {
		t.Fatal(err)
	}
	if err := cc.Bind("pb", "q21b"); err != nil {
		t.Fatal(err)
	}

	if err := cc.CloseStmt("q21"); err != nil {
		t.Fatal(err)
	}
	var werr *wire.Error
	if err := cc.Bind("p2", "q21"); !errors.As(err, &werr) || werr.Class != wire.ClassBadRequest {
		t.Fatalf("Bind to a closed statement returned %v, want ClassBadRequest", err)
	}
	// Closing a statement implicitly closes its portals (Postgres
	// semantics) — but only its own, not the same-text sibling's.
	if _, err := cc.Execute("p"); !errors.As(err, &werr) || werr.Class != wire.ClassBadRequest {
		t.Fatalf("Execute of a closed statement's portal returned %v, want ClassBadRequest", err)
	}
	if again, err := cc.Execute("pb"); err != nil {
		t.Fatalf("Execute of the sibling statement's portal: %v", err)
	} else if !reflect.DeepEqual(first.Rows, again.Rows) {
		t.Fatal("sibling portal returned different rows after CloseStmt of the other name")
	}
	if _, err := cc.Execute("nope"); !errors.As(err, &werr) || werr.Class != wire.ClassBadRequest {
		t.Fatalf("Execute of unknown portal returned %v, want ClassBadRequest", err)
	}
	if _, err := cc.Query("SELECT nonsense FROM nowhere"); !errors.As(err, &werr) || werr.Class != wire.ClassBadRequest {
		t.Fatalf("bad SQL returned %v, want ClassBadRequest", err)
	}

	cc.Close()
	srv.Close()
	eng.Close()
	assertNoLeakedGoroutines(t)
}

// TestWireConcurrentClients: 8 concurrent TCP clients × two passes over
// all 13 SSB queries against an admission-capped engine. Every result
// must stay bit-identical under contention, the statement caches must
// record hits, and shutdown must leave no goroutine behind. (Queue-wait
// metrics are pinned by TestWireOverload, whose spill-throttled queries
// are long enough to overlap deterministically even on one CPU.)
func TestWireConcurrentClients(t *testing.T) {
	ds := wireDataset(t)
	eng, err := qppt.New(qppt.Config{Workers: 2, MaxPlans: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	refs := reference(t, eng, ds)

	srv := wire.NewServer(eng, ds.Cat)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	const clients = 8
	conns := make([]*client.Conn, clients)
	for i := range conns {
		if conns[i], err = client.New(ln.Addr().String()); err != nil {
			t.Fatal(err)
		}
		defer conns[i].Close()
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for _, cc := range conns {
		wg.Add(1)
		go func(cc *client.Conn) {
			defer wg.Done()
			for pass := 0; pass < 2; pass++ { // second pass hits the stmt cache
				for _, qid := range ssb.QueryIDs {
					res, err := cc.Query(ssb.SQLTexts[qid])
					if err != nil {
						errs <- fmt.Errorf("%s: %w", qid, err)
						return
					}
					if err := refs[qid].check(qid, res); err != nil {
						errs <- err
						return
					}
				}
			}
		}(cc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := eng.Stats()
	if st.Admission.Admitted < int64(clients*2*len(ssb.QueryIDs)) {
		t.Errorf("admitted %d plans, want >= %d", st.Admission.Admitted, clients*2*len(ssb.QueryIDs))
	}
	if st.StmtCache.Hits < int64(clients*len(ssb.QueryIDs)) {
		t.Errorf("statement cache hits %d, want >= %d (one full pass per client)", st.StmtCache.Hits, clients*len(ssb.QueryIDs))
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, wire.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	assertNoLeakedGoroutines(t)
}

// TestWireCancelFrame: an out-of-band Cancel frame aborts the in-flight
// query, the aborted command answers ClassCancelled, and the connection
// stays usable — with no spill files or goroutines left behind.
func TestWireCancelFrame(t *testing.T) {
	ds := wireDataset(t)
	spillDir := t.TempDir()
	eng, err := qppt.New(qppt.Config{Workers: 2, MemBudget: 1 << 20, SpillDir: spillDir})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := wire.NewServer(eng, ds.Cat)
	defer srv.Close()
	cc, err := client.NewPipe(srv)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	sawCancel := false
	for _, delay := range []time.Duration{50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		timer := time.AfterFunc(delay, func() { cc.Cancel() })
		res, err := cc.Query(ssb.SQLTexts["4.1"])
		timer.Stop()
		var werr *wire.Error
		switch {
		case err == nil:
			if res == nil || len(res.Attrs) == 0 {
				t.Fatalf("cancelled query (delay %v) returned an empty result without error", delay)
			}
		case errors.As(err, &werr) && werr.Class == wire.ClassCancelled:
			sawCancel = true
		default:
			t.Fatalf("cancelled query (delay %v) returned %v, want success or ClassCancelled", delay, err)
		}
	}
	if !sawCancel {
		t.Log("no cancellation landed mid-run (fast machine or tiny dataset)")
	}

	// The connection survives cancellation and still answers correctly. A
	// stray Cancel from the sweep may race into this query (the timer can
	// fire as its Query returns); that cancels one command, not the conn.
	if _, err := cc.Query(ssb.SQLTexts["1.1"]); err != nil {
		var werr *wire.Error
		if !errors.As(err, &werr) || werr.Class != wire.ClassCancelled {
			t.Fatalf("query after cancellations: %v", err)
		}
		if _, err := cc.Query(ssb.SQLTexts["1.1"]); err != nil {
			t.Fatalf("query after stray cancel: %v", err)
		}
	}

	cc.Close()
	srv.Close()
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	assertNoSpillFiles(t, spillDir)
	assertNoLeakedGoroutines(t)
}

// TestWireDisconnectAborts: a client that vanishes mid-query takes the
// in-flight plan down with it — the conn context aborts the run, and
// server shutdown drains cleanly with no leaked goroutines, pins or
// spill files.
func TestWireDisconnectAborts(t *testing.T) {
	ds := wireDataset(t)
	spillDir := t.TempDir()
	eng, err := qppt.New(qppt.Config{Workers: 2, MemBudget: 1 << 20, SpillDir: spillDir})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := wire.NewServer(eng, ds.Cat)
	defer srv.Close()

	for _, delay := range []time.Duration{100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		cc, err := client.NewPipe(srv)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := cc.Query(ssb.SQLTexts["4.1"])
			done <- err
		}()
		time.Sleep(delay)
		cc.Close() // vanish mid-query
		<-done     // the query call returns (result or connection error) — no hang
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	assertNoSpillFiles(t, spillDir)
	assertNoLeakedGoroutines(t)
}

// TestWireOverload: 4× the admission cap of simultaneous clients. The
// gate must shed the excess with honest ClassOverloaded answers (which
// errors.Is-match qppt.ErrOverloaded through the wire), record queue
// waits for the clients it delays, never hang, and keep serving
// afterwards. A small memory budget makes each query spill: the file
// I/O yields the processor, so later arrivals reach the gate while the
// admitted query is still running — deterministic contention even on a
// single-CPU machine, where pure-CPU queries would serialize admission
// arrivals behind the running plan.
func TestWireOverload(t *testing.T) {
	ds := wireDataset(t)
	spillDir := t.TempDir()
	eng, err := qppt.New(qppt.Config{Workers: 2, MaxPlans: 1, QueueDepth: 1,
		MemBudget: 1 << 20, SpillDir: spillDir})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := wire.NewServer(eng, ds.Cat)
	defer srv.Close()

	const storm = 8 // 4× the single-waiter capacity (1 running + 1 queued)
	conns := make([]*client.Conn, storm)
	for i := range conns {
		if conns[i], err = client.NewPipe(srv); err != nil {
			t.Fatal(err)
		}
		defer conns[i].Close()
	}
	// Warm every connection's statement cache first: a fresh connection's
	// first query plans under shared catalog locks, which would serialize
	// the storm before it ever reached the admission gate.
	for _, cc := range conns {
		if _, err := cc.Query(ssb.SQLTexts["4.1"]); err != nil {
			t.Fatal(err)
		}
	}

	// Barrier-fire all 8 at once; bounded retries absorb the (unlikely)
	// round where the scheduler never overlaps two executions.
	ok, shed := 0, 0
	for round := 0; round < 50 && (ok == 0 || shed == 0); round++ {
		start := make(chan struct{})
		results := make(chan error, storm)
		var wg sync.WaitGroup
		for _, cc := range conns {
			wg.Add(1)
			go func(cc *client.Conn) {
				defer wg.Done()
				<-start
				_, err := cc.Query(ssb.SQLTexts["4.1"])
				results <- err
			}(cc)
		}
		close(start)
		wg.Wait()
		close(results)

		for err := range results {
			switch {
			case err == nil:
				ok++
			case errors.Is(err, qppt.ErrOverloaded):
				shed++
			default:
				t.Fatalf("storm query returned %v, want success or ErrOverloaded", err)
			}
		}
	}
	if ok == 0 {
		t.Error("no query in the storm succeeded")
	}
	if shed == 0 {
		t.Error("no query in the storm was shed with ErrOverloaded")
	}
	st := eng.Stats()
	if st.Admission.Rejected == 0 {
		t.Errorf("gate recorded no rejections (stats %+v)", st.Admission)
	}
	// The client the gate queued (rather than shed) waited for the slot.
	if st.Admission.Waited == 0 || st.Admission.WaitTime == 0 {
		t.Errorf("gate recorded no queue waits (stats %+v)", st.Admission)
	}
	// The storm re-ran each connection's warmed statement.
	if st.StmtCache.Hits == 0 {
		t.Error("storm recorded no statement-cache hits")
	}

	// The server keeps answering after the storm.
	if _, err := conns[0].Query(ssb.SQLTexts["1.1"]); err != nil {
		t.Fatalf("query after the storm: %v", err)
	}

	for _, cc := range conns {
		cc.Close()
	}
	srv.Close()
	eng.Close()
	assertNoSpillFiles(t, spillDir)
	assertNoLeakedGoroutines(t)
}
