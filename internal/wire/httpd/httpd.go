// Package httpd adapts a wire.Server to HTTP. It is deliberately thin:
// each request becomes one wire-protocol connection over an in-process
// net.Pipe, so planning, admission, cancellation and error
// classification all happen in the wire/engine path and the handler
// only translates — the response status comes from wire.Class.HTTPStatus,
// the single home of the error-class ↔ HTTP mapping.
package httpd

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"

	"qppt/internal/wire"
	"qppt/internal/wire/client"
)

// New returns the HTTP handler over srv:
//
//	POST /query  (or GET with ?q=)  → {"attrs": [...], "rows": [[...]], "elapsed": "..."}
//	GET  /stats                     → the engine statistics snapshot as JSON
//
// A client that disconnects mid-query cancels it through the wire
// protocol's Cancel path and is reported as 499 server-side.
func New(srv *wire.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		text := r.FormValue("q")
		if text == "" {
			body, _ := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			text = strings.TrimSpace(string(body))
		}
		if text == "" {
			http.Error(w, "missing query (q parameter or request body)", http.StatusBadRequest)
			return
		}
		cc, err := client.NewPipe(srv)
		if err != nil {
			http.Error(w, err.Error(), wire.ClassUnavailable.HTTPStatus())
			return
		}
		defer cc.Close()
		// Relay request-context cancellation (client hung up) onto the wire.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-r.Context().Done():
				cc.Cancel()
			case <-done:
			}
		}()
		res, err := cc.QueryDecoded(text)
		if err != nil {
			status := http.StatusInternalServerError
			var werr *wire.Error
			if errors.As(err, &werr) {
				status = werr.Class.HTTPStatus()
			}
			http.Error(w, err.Error(), status)
			return
		}
		rows := res.Strs
		if rows == nil {
			rows = [][]string{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"attrs":   res.Attrs,
			"rows":    rows,
			"elapsed": res.Elapsed.String(),
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(srv.Stats())
	})
	return mux
}
