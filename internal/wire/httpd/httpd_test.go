package httpd_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"qppt"
	"qppt/internal/ssb"
	"qppt/internal/wire"
	"qppt/internal/wire/httpd"
)

// TestHTTPAdapter: the HTTP mode is a thin shell over the wire server —
// decoded results match the in-process decode, and every error class
// surfaces as the status wire.Class.HTTPStatus dictates.
func TestHTTPAdapter(t *testing.T) {
	ds := ssb.MustLoad(ssb.GenConfig{SF: 0.005, Seed: 11})
	eng, err := qppt.New(qppt.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := wire.NewServer(eng, ds.Cat)
	defer srv.Close()
	hs := httptest.NewServer(httpd.New(srv))
	defer hs.Close()

	get := func(q string) (int, string) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/query?q=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// A good query returns the decoded rows the in-process path produces.
	text := ssb.SQLTexts["1.1"]
	status, body := get(text)
	if status != http.StatusOK {
		t.Fatalf("query returned %d: %s", status, body)
	}
	var got struct {
		Attrs []string   `json:"attrs"`
		Rows  [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	rows, _, err := eng.Session(ds.Cat).Query(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(rows.Rows) {
		t.Fatalf("HTTP returned %d rows, want %d", len(got.Rows), len(rows.Rows))
	}
	for i := range rows.Rows {
		for c := range rows.Attrs {
			if want := rows.Decode(i, c); got.Rows[i][c] != want {
				t.Fatalf("cell (%d,%d) = %q, want %q", i, c, got.Rows[i][c], want)
			}
		}
	}

	// Error classes map through wire.Class.HTTPStatus — the only mapping.
	if status, _ := get("SELECT broken FROM nowhere"); status != http.StatusBadRequest {
		t.Errorf("bad SQL returned %d, want 400", status)
	}
	if status, body := get(""); status != http.StatusBadRequest || !strings.Contains(body, "missing query") {
		t.Errorf("empty query returned %d %q, want 400", status, body)
	}

	// /stats serves the engine snapshot.
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(stats), "StmtCache") {
		t.Errorf("/stats returned %d %q", resp.StatusCode, stats)
	}

	// A closed engine answers 503 (ClassUnavailable), not a hang or a 500.
	eng.Close()
	if status, _ := get(text); status != http.StatusServiceUnavailable {
		t.Errorf("query on closed engine returned %d, want 503", status)
	}
}
