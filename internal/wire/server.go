package wire

import (
	"errors"
	"net"
	"sync"

	"qppt"
	"qppt/internal/catalog"
)

// A Server speaks the wire protocol over an Engine and one catalog. It
// owns nothing of the engine's lifecycle: Close stops listeners and
// connections but leaves the engine to its creator. One server can run
// any number of listeners (Serve) and direct connections (ServeConn —
// how the HTTP adapter and in-process clients attach over net.Pipe).
type Server struct {
	eng    *qppt.Engine
	cat    *catalog.Catalog
	opts   []qppt.QueryOption
	banner string

	mu        sync.Mutex
	listeners map[net.Listener]struct{} // guarded by mu
	conns     map[*srvConn]struct{}     // guarded by mu
	closed    bool                      // guarded by mu
	wg        sync.WaitGroup
}

// NewServer builds a server for the engine and catalog. The query
// options become every connection's planning/run defaults (they must be
// a fixed set — prepared statements cache against them, see
// Session.PrepareCached). Call Close when done: it disconnects every
// client and waits for their handlers to drain.
func NewServer(eng *qppt.Engine, cat *catalog.Catalog, opts ...qppt.QueryOption) *Server {
	return &Server{
		eng:       eng,
		cat:       cat,
		opts:      opts,
		banner:    "qppt",
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*srvConn]struct{}),
	}
}

// ErrServerClosed is returned by Serve/ListenAndServe after Close.
var ErrServerClosed = errors.New("qppt wire: server closed")

// ListenAndServe listens on the TCP address and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close (or a listener error) and
// handles each on its own goroutine. It takes ownership of ln.
func (s *Server) Serve(ln net.Listener) error {
	if err := s.addListener(ln); err != nil {
		ln.Close()
		return err
	}
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrServerClosed
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(nc)
		}()
	}
}

// ServeConn serves one pre-established connection synchronously,
// returning when the client terminates or the connection fails. It
// takes ownership of nc. This is the attachment point for net.Pipe
// clients (client.Pipe, the HTTP adapter).
func (s *Server) ServeConn(nc net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	s.serveConn(nc)
}

// Close disconnects every client, stops every listener, and waits for
// all connection handlers to exit. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for ln := range s.listeners {
			ln.Close()
		}
		for c := range s.conns {
			c.shutdown()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// addListener registers ln so Close can stop it; it fails once the
// server is closed.
func (s *Server) addListener(ln net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	return nil
}

// track registers a live connection so Close can disconnect it; it
// fails if the server is already closed.
func (s *Server) track(c *srvConn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	s.conns[c] = struct{}{}
	return nil
}

func (s *Server) untrack(c *srvConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// Addr returns the first active listener's address (tests bind :0 and
// need the resolved port), or nil if none is listening.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ln := range s.listeners {
		return ln.Addr()
	}
	return nil
}

// Stats returns the engine's statistics snapshot — the serving tier's
// observability surface (admission queue depths and waits, statement
// cache traffic) without handing adapters the engine itself.
func (s *Server) Stats() qppt.Stats { return s.eng.Stats() }
