// Package client is the Go client for QPPT's wire protocol. A Conn is
// one protocol connection: request/response cycles are serialized, but
// Cancel may be sent from any goroutine while a query is in flight —
// the out-of-band path the server reads alongside execution.
//
// The package imports wire (not the other way around) so the server
// package stays importable by the engine's command-line tools without
// dragging client code along.
package client

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"qppt/internal/wire"
)

// A Result is one query's fully-materialized answer. Raw-mode queries
// fill Rows with the engine's uint64 attribute codes — bit-identical to
// in-process Session.Query results; decoded-mode queries fill Strs with
// the catalog-decoded cell texts. Elapsed is the server-side execution
// time reported by the Done frame.
type Result struct {
	Attrs   []string
	Rows    [][]uint64
	Strs    [][]string
	Elapsed time.Duration
}

// A Conn is one client connection. Methods that run a request/response
// cycle (Query, Prepare, Bind, Execute, CloseStmt) serialize against
// each other; Cancel and Close may be called concurrently with them.
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	// reqMu serializes request/response cycles; wmu serializes raw frame
	// writes beneath them, so Cancel can cut in while a Query holds reqMu
	// waiting on the response.
	reqMu sync.Mutex
	wmu   sync.Mutex

	// Banner and Version are the server's HelloOK identification.
	Banner  string
	Version uint64
}

// New dials addr (TCP) and performs the protocol handshake.
func New(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc)
}

// NewConn performs the handshake over an established connection, taking
// ownership of nc.
func NewConn(nc net.Conn) (*Conn, error) {
	c := &Conn{nc: nc, br: bufio.NewReader(nc)}
	var pl wire.Payload
	pl.Str(wire.Magic)
	pl.Uvarint(wire.Version)
	if err := c.writeFrame(wire.FrameHello, pl.Buf); err != nil {
		nc.Close()
		return nil, err
	}
	t, p, err := wire.ReadFrame(c.br, wire.MaxServerFrame)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if t == wire.FrameErr {
		nc.Close()
		return nil, decodeErr(p)
	}
	r := wire.NewPayloadReader(p)
	c.Version, c.Banner = r.Uvarint(), r.Str()
	if t != wire.FrameHelloOK || r.Err() != nil {
		nc.Close()
		return nil, fmt.Errorf("qppt wire client: malformed handshake reply (frame 0x%02x)", byte(t))
	}
	return c, nil
}

// NewPipe connects an in-process client to srv over a synchronous
// net.Pipe — no sockets, full protocol. The server side runs on its own
// goroutine and exits when the client closes (or the server does).
func NewPipe(srv *wire.Server) (*Conn, error) {
	sc, cc := net.Pipe()
	go srv.ServeConn(sc)
	return NewConn(cc)
}

// Close terminates the session (best effort) and closes the connection.
func (c *Conn) Close() error {
	c.wmu.Lock()
	// Best effort: over a synchronous net.Pipe an unread Terminate would
	// block forever, so bound it — the nc.Close below is authoritative.
	c.nc.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	wire.WriteFrame(c.nc, wire.FrameTerminate, nil)
	c.wmu.Unlock()
	return c.nc.Close()
}

// Cancel asks the server to abort the in-flight command; the command's
// caller sees a ClassCancelled error. Safe from any goroutine; a Cancel
// with nothing in flight is a no-op server-side.
func (c *Conn) Cancel() error {
	return c.writeFrame(wire.FrameCancel, nil)
}

// Query runs one statement and returns its raw (uint64-coded) result.
func (c *Conn) Query(text string) (*Result, error) { return c.query(text, 0) }

// QueryDecoded runs one statement with server-side catalog decoding;
// the result's Strs holds the decoded cells.
func (c *Conn) QueryDecoded(text string) (*Result, error) { return c.query(text, wire.FlagDecode) }

func (c *Conn) query(text string, flags byte) (*Result, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var pl wire.Payload
	pl.U8(flags)
	pl.Str(text)
	if err := c.writeFrame(wire.FrameQuery, pl.Buf); err != nil {
		return nil, err
	}
	return c.readResult()
}

// Prepare plans and names a statement server-side, returning its output
// attribute names.
func (c *Conn) Prepare(name, text string) ([]string, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var pl wire.Payload
	pl.Str(name)
	pl.Str(text)
	if err := c.writeFrame(wire.FramePrepare, pl.Buf); err != nil {
		return nil, err
	}
	t, p, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if t == wire.FrameErr {
		return nil, decodeErr(p)
	}
	r := wire.NewPayloadReader(p)
	attrs := make([]string, r.Uvarint())
	for i := range attrs {
		attrs[i] = r.Str()
	}
	if t != wire.FramePrepareOK || r.Err() != nil {
		return nil, fmt.Errorf("qppt wire client: unexpected reply to Prepare (frame 0x%02x)", byte(t))
	}
	return attrs, nil
}

// Bind points a portal at a prepared statement.
func (c *Conn) Bind(portal, stmt string) error {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var pl wire.Payload
	pl.Str(portal)
	pl.Str(stmt)
	if err := c.writeFrame(wire.FrameBind, pl.Buf); err != nil {
		return err
	}
	return c.readAck(wire.FrameBindOK, "Bind")
}

// Execute runs a bound portal and returns its raw result.
func (c *Conn) Execute(portal string) (*Result, error) { return c.execute(portal, 0) }

// ExecuteDecoded runs a bound portal with server-side decoding.
func (c *Conn) ExecuteDecoded(portal string) (*Result, error) {
	return c.execute(portal, wire.FlagDecode)
}

func (c *Conn) execute(portal string, flags byte) (*Result, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var pl wire.Payload
	pl.U8(flags)
	pl.Str(portal)
	if err := c.writeFrame(wire.FrameExecute, pl.Buf); err != nil {
		return nil, err
	}
	return c.readResult()
}

// CloseStmt forgets a prepared statement name server-side.
func (c *Conn) CloseStmt(name string) error {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var pl wire.Payload
	pl.Str(name)
	if err := c.writeFrame(wire.FrameCloseStmt, pl.Buf); err != nil {
		return err
	}
	return c.readAck(wire.FrameCloseOK, "CloseStmt")
}

func (c *Conn) writeFrame(t wire.FrameType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return wire.WriteFrame(c.nc, t, payload)
}

func (c *Conn) readFrame() (wire.FrameType, []byte, error) {
	return wire.ReadFrame(c.br, wire.MaxServerFrame)
}

func (c *Conn) readAck(want wire.FrameType, op string) error {
	t, p, err := c.readFrame()
	if err != nil {
		return err
	}
	if t == wire.FrameErr {
		return decodeErr(p)
	}
	if t != want {
		return fmt.Errorf("qppt wire client: unexpected reply to %s (frame 0x%02x)", op, byte(t))
	}
	return nil
}

// readResult consumes a query answer: RowHeader, row batches, Done — or
// a single Err frame.
func (c *Conn) readResult() (*Result, error) {
	res := &Result{}
	sawHeader := false
	for {
		t, p, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		r := wire.NewPayloadReader(p)
		switch t {
		case wire.FrameErr:
			return nil, decodeErr(p)
		case wire.FrameRowHeader:
			res.Attrs = make([]string, r.Uvarint())
			for i := range res.Attrs {
				res.Attrs[i] = r.Str()
			}
			sawHeader = true
		case wire.FrameRowBatch:
			nrows, ncols := r.Uvarint(), r.Uvarint()
			for i := uint64(0); i < nrows; i++ {
				row := make([]uint64, ncols)
				for j := range row {
					row[j] = r.Uvarint()
				}
				res.Rows = append(res.Rows, row)
			}
		case wire.FrameRowBatchStr:
			nrows, ncols := r.Uvarint(), r.Uvarint()
			for i := uint64(0); i < nrows; i++ {
				row := make([]string, ncols)
				for j := range row {
					row[j] = r.Str()
				}
				res.Strs = append(res.Strs, row)
			}
		case wire.FrameDone:
			nrows := r.Uvarint()
			res.Elapsed = time.Duration(r.Uvarint())
			if r.Err() != nil {
				return nil, r.Err()
			}
			if !sawHeader || (uint64(len(res.Rows)) != nrows && uint64(len(res.Strs)) != nrows) {
				return nil, fmt.Errorf("qppt wire client: Done reports %d rows, received %d", nrows, len(res.Rows)+len(res.Strs))
			}
			return res, nil
		default:
			return nil, fmt.Errorf("qppt wire client: unexpected frame 0x%02x in result stream", byte(t))
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
}

func decodeErr(p []byte) error {
	r := wire.NewPayloadReader(p)
	class, msg := wire.Class(r.U8()), r.Str()
	if r.Err() != nil {
		return fmt.Errorf("qppt wire client: malformed Err frame")
	}
	return &wire.Error{Class: class, Msg: msg}
}
