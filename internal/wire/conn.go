package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"qppt"
	"qppt/internal/sql"
)

// handshakeTimeout bounds how long a fresh connection may sit silent
// before sending Hello.
const handshakeTimeout = 10 * time.Second

// srvConn is one client connection's server-side state: a qppt.Conn
// (session + statement cache), the named prepared statements and
// portals, and the cancellation plumbing. All command handling runs on
// the serve loop goroutine; a dedicated read-loop goroutine feeds it
// frames and intercepts Cancel out of band.
type srvConn struct {
	srv *Server
	nc  net.Conn
	bw  *bufio.Writer

	// ctx is the connection's lifetime: cancelled on client disconnect,
	// protocol failure, or Server.Close, which aborts any in-flight plan.
	ctx    context.Context
	cancel context.CancelFunc

	sess    *qppt.Conn
	stmts   map[string]*qppt.Stmt
	portals map[string]portal

	// inflight is the cancel func of the currently executing command,
	// armed by the serve loop and fired by the read loop on Cancel.
	inflight atomic.Pointer[context.CancelFunc]
}

// portal is a bound, executable statement. It remembers which prepared
// statement name it came from: closing that statement implicitly closes
// the portal (Postgres semantics), and two statement names for the same
// SQL text share one cached *qppt.Stmt, so the pointer alone could not
// tell their portals apart.
type portal struct {
	stmt *qppt.Stmt
	src  string
}

// frame is one decoded client frame in flight from read loop to serve
// loop.
type frame struct {
	t FrameType
	p []byte
}

// serveConn runs one connection to completion: handshake, then the
// frame loop. The caller holds the server WaitGroup slot.
func (s *Server) serveConn(nc net.Conn) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &srvConn{
		srv:     s,
		nc:      nc,
		bw:      bufio.NewWriter(nc),
		ctx:     ctx,
		cancel:  cancel,
		sess:    s.eng.Conn(s.cat),
		stmts:   make(map[string]*qppt.Stmt),
		portals: make(map[string]portal),
	}
	defer func() {
		cancel()
		nc.Close()
		c.sess.Close()
	}()
	if s.track(c) != nil {
		return
	}
	defer s.untrack(c)
	if err := c.handshake(); err != nil {
		return
	}

	// The read loop pulls frames off the socket so that Cancel (and
	// disconnects) are seen while a query executes on the serve loop. A
	// frame send races against ctx so the read loop can never block on a
	// serve loop that already quit.
	frames := make(chan frame)
	go func() {
		defer cancel() // read failure = client gone: abort in-flight work
		for {
			t, p, err := ReadFrame(nc, MaxClientFrame)
			if err != nil {
				return
			}
			switch t {
			case FrameCancel:
				c.fireCancel()
				continue
			case FrameTerminate:
				// Graceful close. The deferred cancel also aborts anything
				// still in flight — a client that terminates mid-query wants
				// the query gone too.
				return
			}
			select {
			case frames <- frame{t, p}:
			case <-ctx.Done():
				return
			}
		}
	}()

	for {
		var f frame
		select {
		case f = <-frames:
		case <-ctx.Done():
			return
		}
		var err error
		switch f.t {
		case FrameQuery:
			err = c.doQuery(f.p)
		case FramePrepare:
			err = c.doPrepare(f.p)
		case FrameBind:
			err = c.doBind(f.p)
		case FrameExecute:
			err = c.doExecute(f.p)
		case FrameCloseStmt:
			err = c.doCloseStmt(f.p)
		default:
			err = c.writeErr(ClassBadRequest, fmt.Sprintf("unexpected frame 0x%02x", byte(f.t)))
		}
		if err == nil {
			err = c.bw.Flush()
		}
		if err != nil {
			return // connection write failure: nothing left to say
		}
	}
}

// shutdown disconnects the client (Server.Close).
func (c *srvConn) shutdown() {
	c.cancel()
	c.nc.Close()
}

// fireCancel aborts the in-flight command, if any. An idle Cancel is a
// no-op — the same benign race every cancel protocol has: if the
// command already finished, there is nothing to stop.
func (c *srvConn) fireCancel() {
	if f := c.inflight.Load(); f != nil {
		(*f)()
	}
}

// handshake reads Hello (bounded by handshakeTimeout) and answers
// HelloOK with the negotiated version and banner.
func (c *srvConn) handshake() error {
	c.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	t, p, err := ReadFrame(c.nc, MaxClientFrame)
	if err != nil {
		return err
	}
	c.nc.SetReadDeadline(time.Time{})
	r := NewPayloadReader(p)
	magic, version := r.Str(), r.Uvarint()
	if t != FrameHello || r.Err() != nil || magic != Magic {
		c.writeErr(ClassBadRequest, "malformed handshake")
		c.bw.Flush()
		return fmt.Errorf("qppt wire: malformed handshake")
	}
	if version < 1 {
		c.writeErr(ClassBadRequest, fmt.Sprintf("unsupported protocol version %d", version))
		c.bw.Flush()
		return fmt.Errorf("qppt wire: unsupported version %d", version)
	}
	negotiated := uint64(Version)
	if version < negotiated {
		negotiated = version
	}
	var pl Payload
	pl.Uvarint(negotiated)
	pl.Str(c.srv.banner)
	if err := WriteFrame(c.bw, FrameHelloOK, pl.Buf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// doQuery plans (through the statement cache) and runs one statement,
// streaming the result.
func (c *srvConn) doQuery(p []byte) error {
	r := NewPayloadReader(p)
	flags, text := r.U8(), r.Str()
	if r.Err() != nil {
		return c.writeErr(ClassBadRequest, "malformed Query frame")
	}
	qctx, qcancel := context.WithCancel(c.ctx)
	c.inflight.Store(&qcancel)
	defer func() {
		c.inflight.Store(nil)
		qcancel()
	}()
	stmt, err := c.sess.PrepareCached(qctx, text, c.srv.opts...)
	if err != nil {
		return c.writeErr(Classify(err, ClassBadRequest), err.Error())
	}
	return c.run(qctx, stmt, flags)
}

// doPrepare plans and names a statement for later Bind/Execute.
func (c *srvConn) doPrepare(p []byte) error {
	r := NewPayloadReader(p)
	name, text := r.Str(), r.Str()
	if r.Err() != nil {
		return c.writeErr(ClassBadRequest, "malformed Prepare frame")
	}
	qctx, qcancel := context.WithCancel(c.ctx)
	c.inflight.Store(&qcancel)
	defer func() {
		c.inflight.Store(nil)
		qcancel()
	}()
	stmt, err := c.sess.PrepareCached(qctx, text, c.srv.opts...)
	if err != nil {
		return c.writeErr(Classify(err, ClassBadRequest), err.Error())
	}
	c.stmts[name] = stmt
	var pl Payload
	attrs := stmt.Attrs()
	pl.Uvarint(uint64(len(attrs)))
	for _, a := range attrs {
		pl.Str(a)
	}
	return WriteFrame(c.bw, FramePrepareOK, pl.Buf)
}

// doBind points a portal at a prepared statement. QPPT statements have
// no parameters — Bind exists so drivers keep their prepare/bind/execute
// shape and so Execute can address statements by short portal names.
func (c *srvConn) doBind(p []byte) error {
	r := NewPayloadReader(p)
	portalName, name := r.Str(), r.Str()
	if r.Err() != nil {
		return c.writeErr(ClassBadRequest, "malformed Bind frame")
	}
	stmt, ok := c.stmts[name]
	if !ok {
		return c.writeErr(ClassBadRequest, fmt.Sprintf("unknown prepared statement %q", name))
	}
	c.portals[portalName] = portal{stmt: stmt, src: name}
	return WriteFrame(c.bw, FrameBindOK, nil)
}

// doExecute runs a bound portal, streaming the result.
func (c *srvConn) doExecute(p []byte) error {
	r := NewPayloadReader(p)
	flags, portal := r.U8(), r.Str()
	if r.Err() != nil {
		return c.writeErr(ClassBadRequest, "malformed Execute frame")
	}
	pe, ok := c.portals[portal]
	if !ok {
		return c.writeErr(ClassBadRequest, fmt.Sprintf("unknown portal %q", portal))
	}
	qctx, qcancel := context.WithCancel(c.ctx)
	c.inflight.Store(&qcancel)
	defer func() {
		c.inflight.Store(nil)
		qcancel()
	}()
	return c.run(qctx, pe.stmt, flags)
}

// doCloseStmt forgets a prepared statement name and, as in the Postgres
// protocol, implicitly closes every portal bound from it. The
// engine-side plan is owned by the session statement cache either way.
func (c *srvConn) doCloseStmt(p []byte) error {
	r := NewPayloadReader(p)
	name := r.Str()
	if r.Err() != nil {
		return c.writeErr(ClassBadRequest, "malformed CloseStmt frame")
	}
	delete(c.stmts, name)
	for portalName, pe := range c.portals {
		if pe.src == name {
			delete(c.portals, portalName)
		}
	}
	return WriteFrame(c.bw, FrameCloseOK, nil)
}

// run executes a statement under the engine's admission gate and
// streams the result: RowHeader, RowBatch* every RowBatchSize rows,
// Done. Execution errors become a single Err frame with the class the
// engine's typed sentinels dictate.
func (c *srvConn) run(qctx context.Context, stmt *qppt.Stmt, flags byte) error {
	t0 := time.Now()
	rows, _, err := stmt.Run(qctx)
	if err != nil {
		return c.writeErr(Classify(err, ClassInternal), err.Error())
	}
	return c.stream(rows, flags, time.Since(t0))
}

func (c *srvConn) stream(rows *sql.Rows, flags byte, elapsed time.Duration) error {
	var pl Payload
	pl.Uvarint(uint64(len(rows.Attrs)))
	for _, a := range rows.Attrs {
		pl.Str(a)
	}
	if err := WriteFrame(c.bw, FrameRowHeader, pl.Buf); err != nil {
		return err
	}
	ncols := len(rows.Attrs)
	for base := 0; base < len(rows.Rows); base += RowBatchSize {
		n := len(rows.Rows) - base
		if n > RowBatchSize {
			n = RowBatchSize
		}
		var bp Payload
		bp.Uvarint(uint64(n))
		bp.Uvarint(uint64(ncols))
		ftype := FrameRowBatch
		if flags&FlagDecode != 0 {
			ftype = FrameRowBatchStr
			for i := 0; i < n; i++ {
				for j := 0; j < ncols; j++ {
					bp.Str(rows.Decode(base+i, j))
				}
			}
		} else {
			for i := 0; i < n; i++ {
				for _, v := range rows.Rows[base+i] {
					bp.Uvarint(v)
				}
			}
		}
		if err := WriteFrame(c.bw, ftype, bp.Buf); err != nil {
			return err
		}
	}
	var dp Payload
	dp.Uvarint(uint64(len(rows.Rows)))
	dp.Uvarint(uint64(elapsed.Nanoseconds()))
	return WriteFrame(c.bw, FrameDone, dp.Buf)
}

func (c *srvConn) writeErr(class Class, msg string) error {
	var pl Payload
	pl.U8(byte(class))
	pl.Str(msg)
	return WriteFrame(c.bw, FrameErr, pl.Buf)
}
