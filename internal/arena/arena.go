// Package arena provides the chunked-arena storage and 32-bit tagged
// compact pointers shared by QPPT's in-memory index structures (paper
// Section 2.2; Kissinger et al., DaMoN 2012).
//
// Both tree kinds — the generalized prefix tree and the KISS-Tree — keep
// their nodes and content leaves in chunked arenas instead of individually
// heap-allocated objects. A chunk, once allocated, never moves, so an
// element's address is stable for the lifetime of the arena while the
// arena itself grows by whole chunks. Elements are addressed by a 32-bit
// index: half the width of a machine pointer, which doubles (for tagged
// child/leaf slots: quadruples, versus a two-pointer slot) the number of
// tree buckets per cache line, and — because arenas are a handful of large
// allocations instead of millions of tiny ones — removes almost all
// per-object GC bookkeeping for index-structure interiors.
package arena

import (
	"fmt"
	"math/bits"
	"unsafe"
)

// Ref is a tagged 32-bit compact pointer: one slot of a tree node. The
// zero value is the nil reference. Bit 31 is the tag: set for a leaf
// (content-node) reference, clear for a child-node reference. The low 31
// bits hold the element index + 1, so a valid reference is never zero and
// arenas are bounded at 2^31−1 elements — far beyond any in-memory index
// this engine builds (a tree that large would exceed 128 GiB of leaves).
type Ref uint32

// Nil is the empty slot value.
const Nil Ref = 0

const leafTag = 1 << 31

// NodeRef returns the compact pointer to child node idx.
func NodeRef(idx uint32) Ref { return Ref(idx + 1) }

// LeafRef returns the compact pointer to leaf idx.
func LeafRef(idx uint32) Ref { return Ref(idx+1) | leafTag }

// IsNil reports whether r is the empty slot value.
func (r Ref) IsNil() bool { return r == Nil }

// IsLeaf reports whether r points to a leaf. Only meaningful when r is
// not nil.
func (r Ref) IsLeaf() bool { return r&leafTag != 0 }

// Index returns the arena index r points to, for either tag.
func (r Ref) Index() uint32 { return uint32(r&^leafTag) - 1 }

// maxElems is the arena capacity limit imposed by the compact pointer
// encoding (31 index bits, index+1 must not overflow into the tag).
const maxElems = 1<<31 - 1

// An Arena is a chunked slab of T with stable addresses: elements are
// appended to fixed-capacity chunks and addressed by a dense uint32 index.
// Growing the arena allocates a new chunk; existing chunks never move, so
// *T obtained from At stays valid for the arena's lifetime.
//
// The zero value is not ready for use; create arenas with Make so the
// chunk geometry is fixed.
type Arena[T any] struct {
	chunks [][]T
	bits   uint   // log2 elements per chunk
	mask   uint32 // elements per chunk - 1
	n      int
	rec    *Recycler // optional chunk pool (SetRecycler)
}

// Make returns an arena with 2^chunkBits elements per chunk.
func Make[T any](chunkBits uint) Arena[T] {
	if chunkBits == 0 || chunkBits > 30 {
		panic(fmt.Sprintf("arena: chunkBits %d out of range [1,30]", chunkBits))
	}
	return Arena[T]{bits: chunkBits, mask: 1<<chunkBits - 1}
}

// SetRecycler routes the arena's chunk allocations through a plan-scoped
// chunk pool: growth draws matching chunks from rec before asking the
// heap, and Reset parks the chunks there instead of dropping them to the
// garbage collector. A nil rec restores plain heap allocation.
func (a *Arena[T]) SetRecycler(rec *Recycler) { a.rec = rec }

// At returns the address of element idx. The address is stable: chunks
// never move or shrink.
func (a *Arena[T]) At(idx uint32) *T {
	return &a.chunks[idx>>a.bits][idx&a.mask]
}

// grabChunk returns an empty chunk at full capacity, recycled when the
// pool has one.
func (a *Arena[T]) grabChunk() []T {
	if c, ok := GetChunk[T](a.rec, 1<<a.bits); ok {
		return c
	}
	return make([]T, 0, 1<<a.bits)
}

// Alloc appends v and returns its index.
func (a *Arena[T]) Alloc(v T) uint32 {
	if a.n >= maxElems {
		panic("arena: arena full (2^31-1 elements)")
	}
	c := a.n >> a.bits
	if c == len(a.chunks) {
		a.chunks = append(a.chunks, a.grabChunk())
	}
	a.chunks[c] = append(a.chunks[c], v)
	a.n++
	return uint32(a.n - 1)
}

// Len reports the number of elements allocated.
func (a *Arena[T]) Len() int { return a.n }

// Bytes reports the element memory reserved by the arena. Chunks are
// allocated at full capacity (Alloc's make([]T, 0, 1<<bits) commits the
// whole chunk), so the reserved capacity — not just the appended elements —
// is what actually sits in the heap; eviction policies key off this number.
func (a *Arena[T]) Bytes() int {
	var zero T
	return len(a.chunks) * (1 << a.bits) * int(unsafe.Sizeof(zero))
}

// Reset drops every chunk, returning the arena to its post-Make state (the
// chunk geometry is kept). Spilling uses it to detach element storage after
// the elements were written out, and again to rebuild the arena on thaw.
// With a recycler configured the chunks are cleared and parked for reuse
// instead of going to the garbage collector.
func (a *Arena[T]) Reset() {
	for _, c := range a.chunks {
		PutChunk(a.rec, c)
	}
	a.chunks = nil
	a.n = 0
}

// Scan visits every allocated element in index order, stopping early if
// visit returns false and reporting whether it completed.
func (a *Arena[T]) Scan(visit func(idx uint32, v *T) bool) bool {
	idx := uint32(0)
	for _, chunk := range a.chunks {
		for i := range chunk {
			if !visit(idx, &chunk[i]) {
				return false
			}
			idx++
		}
	}
	return true
}

// Slots is a chunked arena of fixed-size blocks of uint32 slots — the node
// storage of a compact-pointer tree. A block holds one tree node's slots
// (the node fanout); blocks are addressed by a dense uint32 ordinal and,
// like Arena chunks, never move once allocated. Freed blocks are zeroed
// and recycled through a free list, so deletes do not grow the arena.
//
// The block length must be a power of two (it is a tree fanout), which
// keeps the per-access ordinal→chunk arithmetic to two shifts and a mask —
// Block sits on the per-level hot path of every tree traversal, where an
// integer division would cost more than the node load it locates.
//
// The zero value is not ready for use; create with MakeSlots.
type Slots struct {
	blockBits    uint // log2 slots per block (the node fanout)
	perChunkBits uint // log2 blocks per chunk
	chunks       [][]uint32
	n            int       // blocks ever allocated (excluding recycled)
	free         []uint32  // recycled block ordinals
	rec          *Recycler // optional chunk pool (SetRecycler)

	// mappedN counts the leading chunks that alias an mmap-ed spill file
	// (ReadChunksMapped). Mapped chunks are writable — the mapping is
	// private, so stores copy pages instead of touching the file — but
	// they are not heap memory: Reset/Detach must drop them without
	// recycling, and Unmap copies them to the heap when the mapping has
	// to outlive the arena's owner.
	mappedN int
}

// slotsChunkTarget is the chunk allocation granularity in slots (256 KiB
// of uint32 — the same granularity as the KISS-Tree root pages). Blocks
// larger than the target get one block per chunk.
const slotsChunkTarget = 1 << 16

// MakeSlots returns a Slots arena with the given block length, which must
// be a power of two.
func MakeSlots(blockLen int) Slots {
	if blockLen <= 0 || blockLen&(blockLen-1) != 0 {
		panic(fmt.Sprintf("arena: block length %d is not a positive power of two", blockLen))
	}
	blockBits := uint(bits.TrailingZeros(uint(blockLen)))
	perChunkBits := uint(0)
	if blockLen < slotsChunkTarget {
		perChunkBits = uint(bits.TrailingZeros(slotsChunkTarget)) - blockBits
	}
	return Slots{blockBits: blockBits, perChunkBits: perChunkBits}
}

// SetRecycler routes chunk growth through a plan-scoped chunk pool, like
// Arena.SetRecycler.
func (s *Slots) SetRecycler(rec *Recycler) { s.rec = rec }

// blockLen reports the slots per block.
func (s *Slots) blockLen() int { return 1 << s.blockBits }

// chunkWords reports the slot capacity of one chunk.
func (s *Slots) chunkWords() int { return 1 << (s.perChunkBits + s.blockBits) }

// grabChunk returns an empty slot chunk at full capacity, recycled when
// the pool has one.
func (s *Slots) grabChunk() []uint32 {
	if c, ok := GetChunk[uint32](s.rec, s.chunkWords()); ok {
		return c
	}
	return make([]uint32, 0, s.chunkWords())
}

// Mapped reports whether any chunk currently aliases an mmap-ed spill
// file (see ReadChunksMapped).
func (s *Slots) Mapped() bool { return s.mappedN > 0 }

// Unmap copies every mapped chunk to the heap, so the arena survives the
// unmapping of the spill file it was thawed from. A no-op for arenas with
// no mapped chunks.
func (s *Slots) Unmap() {
	for i := 0; i < s.mappedN; i++ {
		c := make([]uint32, len(s.chunks[i]), s.chunkWords())
		copy(c, s.chunks[i])
		s.chunks[i] = c
	}
	s.mappedN = 0
}

// Block returns block ord as a slice of its slots. The slice aliases
// arena memory and stays valid as the arena grows.
func (s *Slots) Block(ord uint32) []uint32 {
	c := ord >> s.perChunkBits
	off := (int(ord) & (1<<s.perChunkBits - 1)) << s.blockBits
	return s.chunks[c][off : off+1<<s.blockBits : off+1<<s.blockBits]
}

// Alloc returns the ordinal of a zeroed block, recycling freed blocks
// before growing the arena.
func (s *Slots) Alloc() uint32 {
	if k := len(s.free); k > 0 {
		ord := s.free[k-1]
		s.free = s.free[:k-1]
		return ord
	}
	if s.n >= maxElems {
		panic("arena: slot arena full (2^31-1 blocks)")
	}
	c := s.n >> s.perChunkBits
	if c == len(s.chunks) {
		s.chunks = append(s.chunks, s.grabChunk())
	}
	s.chunks[c] = append(s.chunks[c], make([]uint32, s.blockLen())...)
	s.n++
	return uint32(s.n - 1)
}

// Free zeroes block ord and recycles it. The caller must not use the
// block afterwards; a later Alloc may hand it out again.
func (s *Slots) Free(ord uint32) {
	blk := s.Block(ord)
	for i := range blk {
		blk[i] = 0
	}
	s.free = append(s.free, ord)
}

// Live reports the number of blocks currently allocated and not freed.
func (s *Slots) Live() int { return s.n - len(s.free) }

// Allocated reports the number of blocks ever carved from the chunks
// (recycled blocks are not re-counted); with FreeBlocks it lets tests pin
// that deletes recycle storage instead of growing the arena.
func (s *Slots) Allocated() int { return s.n }

// FreeBlocks reports the number of recycled blocks awaiting reuse.
func (s *Slots) FreeBlocks() int { return len(s.free) }

// Bytes reports the slot memory reserved by the arena: the full capacity
// of every chunk, including recycled blocks awaiting reuse and the
// unappended tail of the newest chunk. Alloc commits a whole chunk up
// front (make([]uint32, 0, cap)), so counting only appended blocks would
// under-report resident memory right after a chunk grows — and the spill
// eviction policy keys off this number.
func (s *Slots) Bytes() int {
	return (len(s.chunks) << (s.perChunkBits + s.blockBits)) * 4
}
