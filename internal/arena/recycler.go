// Plan-scoped chunk recycling (ROADMAP "Arena reuse across operators").
//
// QPPT builds one prefix-tree index per operator, so a plan allocates and
// drops the same chunk shapes over and over: 256 KiB node-slot chunks,
// leaf-header chunks, 64 KiB duplicate slabs. A Recycler is a size-classed
// free list those allocations can cycle through: when the executor drops an
// intermediate index, its chunks are cleared and parked here instead of
// being handed to the garbage collector, and the next index the plan
// builds draws its chunks from the pool before asking the heap. A 13-query
// SSB run then works against a near-steady-state chunk population instead
// of re-allocating (and re-collecting) every operator's index from scratch.
//
// The pool is keyed by element type and chunk capacity, so a chunk only
// ever comes back as what it was — a []Leaf chunk can never resurface as
// node slots. Chunks are zeroed when they enter the pool (dropping any
// payload references they held), which makes a recycled chunk
// indistinguishable from a fresh make.
//
// A Recycler is safe for concurrent use: every pool worker building a
// partial index draws from (and releases to) the same plan-scoped pool.
// It holds whatever peak chunk population the plan reaches and is dropped
// wholesale with the plan — there is no trimming policy, matching the
// plan-scoped lifetime.
package arena

import (
	"reflect"
	"sync"
	"unsafe"
)

// A Recycler pools dropped arena chunks and slab blocks for reuse within
// one plan execution. The zero value is not ready; create with NewRecycler.
// A nil *Recycler is accepted everywhere and disables recycling.
type Recycler struct {
	mu    sync.Mutex
	boxes map[chunkClass][]any // pooled chunks (boxed slices), by class
	stats RecyclerStats
}

// chunkClass identifies one pool: chunks recycle only within their exact
// element type and capacity.
type chunkClass struct {
	elem reflect.Type
	cap  int
}

// RecyclerStats count the pool's traffic for plan statistics.
type RecyclerStats struct {
	// Recycled counts chunks parked in the pool; Reused counts chunk
	// allocations served from it instead of the heap.
	Recycled int
	Reused   int
	// SavedBytes is the heap allocation avoided by the served reuses.
	SavedBytes int64
}

// NewRecycler returns an empty pool.
func NewRecycler() *Recycler {
	return &Recycler{boxes: make(map[chunkClass][]any)}
}

// Stats returns a snapshot of the pool counters.
func (r *Recycler) Stats() RecyclerStats {
	if r == nil {
		return RecyclerStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// classOf returns the pool key for element type T at the given capacity.
func classOf[T any](capElems int) chunkClass {
	return chunkClass{elem: reflect.TypeOf((*T)(nil)).Elem(), cap: capElems}
}

// PutChunk clears c and parks it for reuse. The caller must not touch c
// afterwards; a later GetChunk may hand it out again. Chunks that alias
// memory the caller does not own outright — e.g. mmap-adopted spill pages —
// must never be put. A nil recycler (or a zero-capacity chunk) is a no-op.
func PutChunk[T any](r *Recycler, c []T) {
	if r == nil || cap(c) == 0 {
		return
	}
	c = c[:cap(c)]
	clear(c) // drop payload references; a recycled chunk reads as fresh
	k := classOf[T](cap(c))
	r.mu.Lock()
	r.boxes[k] = append(r.boxes[k], c[:0])
	r.stats.Recycled++
	r.mu.Unlock()
}

// GetChunk returns a pooled zeroed chunk of exactly the requested element
// capacity (length 0), or ok == false when the pool has none (or r is nil).
func GetChunk[T any](r *Recycler, capElems int) ([]T, bool) {
	if r == nil || capElems == 0 {
		return nil, false
	}
	k := classOf[T](capElems)
	r.mu.Lock()
	defer r.mu.Unlock()
	pool := r.boxes[k]
	n := len(pool)
	if n == 0 {
		return nil, false
	}
	c := pool[n-1].([]T)
	pool[n-1] = nil
	r.boxes[k] = pool[:n-1]
	r.stats.Reused++
	var zero T
	r.stats.SavedBytes += int64(capElems) * int64(unsafe.Sizeof(zero))
	return c, true
}
