// Plan-scoped chunk recycling (ROADMAP "Arena reuse across operators").
//
// QPPT builds one prefix-tree index per operator, so a plan allocates and
// drops the same chunk shapes over and over: 256 KiB node-slot chunks,
// leaf-header chunks, 64 KiB duplicate slabs. A Recycler is a size-classed
// free list those allocations can cycle through: when the executor drops an
// intermediate index, its chunks are cleared and parked here instead of
// being handed to the garbage collector, and the next index the plan
// builds draws its chunks from the pool before asking the heap. A 13-query
// SSB run then works against a near-steady-state chunk population instead
// of re-allocating (and re-collecting) every operator's index from scratch.
//
// The pool is keyed by element type and chunk capacity, so a chunk only
// ever comes back as what it was — a []Leaf chunk can never resurface as
// node slots. Chunks are zeroed when they enter the pool (dropping any
// payload references they held), which makes a recycled chunk
// indistinguishable from a fresh make.
//
// A Recycler is safe for concurrent use: every pool worker building a
// partial index draws from (and releases to) the same pool — and, when the
// pool is session-scoped (core.Env / the qppt.Engine), every concurrent
// plan does too.
//
// A plan-scoped pool holds whatever peak chunk population the plan reaches
// and is dropped wholesale with the plan, so it needs no trimming. A
// session-scoped pool outlives every plan; SetCap bounds the bytes it may
// retain — a PutChunk that would push the pooled bytes over the cap drops
// the chunk to the garbage collector instead (a *trim eviction*, counted
// in RecyclerStats), so one freak plan cannot pin its peak footprint for
// the session's lifetime.
package arena

import (
	"reflect"
	"sync"
	"unsafe"
)

// A Recycler pools dropped arena chunks and slab blocks for reuse within
// one plan execution or across the plans of one engine session. The zero
// value is not ready; create with NewRecycler. A nil *Recycler is accepted
// everywhere and disables recycling.
type Recycler struct {
	mu     sync.Mutex
	parent *Recycler            // pool a worker-local child drains into (nil for root pools)
	closed bool                 // set by Drain; later puts forward to the parent
	boxes  map[chunkClass][]any // pooled chunks (boxed slices), by class
	cap    int64                // max pooled bytes; 0 = unbounded
	pooled int64                // bytes currently parked
	stats  RecyclerStats
}

// chunkClass identifies one pool: chunks recycle only within their exact
// element type and capacity.
type chunkClass struct {
	elem reflect.Type
	cap  int
}

// RecyclerStats count the pool's traffic for plan statistics.
type RecyclerStats struct {
	// Recycled counts chunks parked in the pool; Reused counts chunk
	// allocations served from it instead of the heap.
	Recycled int
	Reused   int
	// SavedBytes is the heap allocation avoided by the served reuses.
	SavedBytes int64
	// PooledBytes is the current byte footprint of the parked chunks.
	PooledBytes int64
	// TrimEvicted counts chunks dropped by the SetCap trim policy instead
	// of being pooled; TrimEvictedBytes is their byte footprint. Nonzero
	// values mean the session cap is below the workload's steady-state
	// chunk population.
	TrimEvicted      int
	TrimEvictedBytes int64
}

// NewRecycler returns an empty pool.
func NewRecycler() *Recycler {
	return &Recycler{boxes: make(map[chunkClass][]any)}
}

// Local returns a worker-local child pool fronting r: puts park in the
// child without touching the parent's lock, and gets fall back to the
// parent on a local miss. A worker that cycles partial indexes through
// its own pool keeps its chunk traffic cache-warm and uncontended. The
// child must be drained back into r with Drain when the worker's plan
// stage finishes. A nil r yields a nil (disabled) child.
func (r *Recycler) Local() *Recycler {
	if r == nil {
		return nil
	}
	return &Recycler{parent: r, boxes: make(map[chunkClass][]any)}
}

// Drain moves every chunk parked in a worker-local pool into its parent
// (honoring the parent's SetCap trim policy), folds the local traffic
// counters into the parent's, and closes the local pool: any straggler
// put after Drain forwards to the parent directly. A nil or parentless
// pool is a no-op.
func (r *Recycler) Drain() {
	if r == nil || r.parent == nil {
		return
	}
	r.mu.Lock()
	boxes := r.boxes
	st := r.stats
	r.boxes = make(map[chunkClass][]any)
	r.pooled = 0
	r.stats = RecyclerStats{}
	r.closed = true
	r.mu.Unlock()
	p := r.parent
	p.mu.Lock()
	for k, pool := range boxes {
		bytes := int64(k.cap) * int64(k.elem.Size())
		for _, c := range pool {
			if p.cap > 0 && p.pooled+bytes > p.cap {
				p.stats.TrimEvicted++
				p.stats.TrimEvictedBytes += bytes
				continue
			}
			p.boxes[k] = append(p.boxes[k], c)
			p.pooled += bytes
		}
	}
	p.stats.Recycled += st.Recycled
	p.stats.Reused += st.Reused
	p.stats.SavedBytes += st.SavedBytes
	p.stats.TrimEvicted += st.TrimEvicted
	p.stats.TrimEvictedBytes += st.TrimEvictedBytes
	p.mu.Unlock()
}

// SetCap bounds the bytes the pool may retain: a PutChunk that would push
// the pooled bytes past capBytes drops its chunk to the garbage collector
// instead and counts a trim eviction. capBytes <= 0 removes the bound.
// Session-scoped pools set a cap; plan-scoped pools die with the plan and
// do not need one.
func (r *Recycler) SetCap(capBytes int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if capBytes < 0 {
		capBytes = 0
	}
	r.cap = capBytes
	r.mu.Unlock()
}

// Stats returns a snapshot of the pool counters.
func (r *Recycler) Stats() RecyclerStats {
	if r == nil {
		return RecyclerStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.PooledBytes = r.pooled
	return s
}

// classOf returns the pool key for element type T at the given capacity.
func classOf[T any](capElems int) chunkClass {
	return chunkClass{elem: reflect.TypeOf((*T)(nil)).Elem(), cap: capElems}
}

// PutChunk clears c and parks it for reuse. The caller must not touch c
// afterwards; a later GetChunk may hand it out again. Chunks that alias
// memory the caller does not own outright — e.g. mmap-adopted spill pages —
// must never be put. A nil recycler (or a zero-capacity chunk) is a no-op.
func PutChunk[T any](r *Recycler, c []T) {
	if r == nil || cap(c) == 0 {
		return
	}
	c = c[:cap(c)]
	clear(c) // drop payload references; a recycled chunk reads as fresh
	var zero T
	bytes := int64(cap(c)) * int64(unsafe.Sizeof(zero))
	k := classOf[T](cap(c))
	r.mu.Lock()
	if r.closed {
		// A drained worker-local pool: the chunk belongs to the parent now.
		parent := r.parent
		r.mu.Unlock()
		PutChunk(parent, c)
		return
	}
	if r.cap > 0 && r.pooled+bytes > r.cap {
		// Trim policy: the pool is full — let the GC take this chunk and
		// record that the cap, not the workload, decided so.
		r.stats.TrimEvicted++
		r.stats.TrimEvictedBytes += bytes
		r.mu.Unlock()
		return
	}
	r.boxes[k] = append(r.boxes[k], c[:0])
	r.stats.Recycled++
	r.pooled += bytes
	r.mu.Unlock()
}

// NewChunk returns a length-0 chunk of exactly capElems capacity, served
// from the pool when a matching chunk is parked and freshly allocated
// otherwise. It is the allocation entry point for recycler-backed scratch
// buffers — e.g. the per-worker probe buffers of fused pipelines — whose
// size class (element type × capacity) repeats across workers and plans:
// give the buffer back with PutChunk when the stage finishes and the next
// worker's NewChunk finds it. A nil recycler degrades to a plain make.
func NewChunk[T any](r *Recycler, capElems int) []T {
	if c, ok := GetChunk[T](r, capElems); ok {
		return c
	}
	return make([]T, 0, capElems)
}

// GetChunk returns a pooled zeroed chunk of exactly the requested element
// capacity (length 0), or ok == false when the pool has none (or r is nil).
func GetChunk[T any](r *Recycler, capElems int) ([]T, bool) {
	if r == nil || capElems == 0 {
		return nil, false
	}
	k := classOf[T](capElems)
	r.mu.Lock()
	defer r.mu.Unlock()
	pool := r.boxes[k]
	n := len(pool)
	if n == 0 {
		if r.parent != nil {
			// Worker-local miss: fall back to the shared parent pool.
			parent := r.parent
			r.mu.Unlock()
			c, ok := GetChunk[T](parent, capElems)
			r.mu.Lock() // re-acquire for the deferred unlock
			return c, ok
		}
		return nil, false
	}
	c := pool[n-1].([]T)
	pool[n-1] = nil
	r.boxes[k] = pool[:n-1]
	r.stats.Reused++
	var zero T
	bytes := int64(capElems) * int64(unsafe.Sizeof(zero))
	r.stats.SavedBytes += bytes
	r.pooled -= bytes
	return c, true
}
