package arena

import (
	"bytes"
	"math/rand"
	"testing"
)

// Spilled Slots must restore byte-identical: every block ordinal maps to
// the same slot values, the free list survives, and allocation continues
// exactly where it left off — compact pointers held by other structures
// (tree nodes, root directories) stay valid across a freeze/thaw cycle.
func TestSlotsSpillRoundTrip(t *testing.T) {
	for _, blockLen := range []int{4, 64, 1 << 16} {
		s := MakeSlots(blockLen)
		rng := rand.New(rand.NewSource(int64(blockLen)))
		const blocks = 300
		want := make([][]uint32, blocks)
		for i := 0; i < blocks; i++ {
			ord := s.Alloc()
			blk := s.Block(ord)
			for j := range blk {
				blk[j] = rng.Uint32()
			}
			want[ord] = append([]uint32{}, blk...)
		}
		// Punch holes so the free list round-trips too.
		for _, ord := range []uint32{3, 17, 123} {
			s.Free(ord)
			want[ord] = make([]uint32, blockLen)
		}

		var buf bytes.Buffer
		if err := s.WriteChunks(&buf); err != nil {
			t.Fatalf("blockLen %d: WriteChunks: %v", blockLen, err)
		}
		s.Detach()
		if s.Bytes() != 0 {
			t.Fatalf("blockLen %d: detached Bytes = %d, want 0", blockLen, s.Bytes())
		}
		if err := s.ReadChunks(&buf); err != nil {
			t.Fatalf("blockLen %d: ReadChunks: %v", blockLen, err)
		}

		if s.Live() != blocks-3 {
			t.Fatalf("blockLen %d: Live = %d after thaw, want %d", blockLen, s.Live(), blocks-3)
		}
		for ord := uint32(0); ord < blocks; ord++ {
			blk := s.Block(ord)
			for j, v := range blk {
				if v != want[ord][j] {
					t.Fatalf("blockLen %d: block %d slot %d = %d, want %d",
						blockLen, ord, j, v, want[ord][j])
				}
			}
		}
		// The free list must recycle the same ordinals, newest first.
		if got := s.Alloc(); got != 123 {
			t.Fatalf("blockLen %d: post-thaw Alloc = %d, want recycled 123", blockLen, got)
		}
		// Growth continues past the restored blocks without clobbering them.
		fresh := s.Alloc()
		if fresh != 17 { // next recycled ordinal
			t.Fatalf("blockLen %d: post-thaw Alloc = %d, want recycled 17", blockLen, fresh)
		}
		s.Alloc() // recycles 3
		grown := s.Alloc()
		if grown != blocks {
			t.Fatalf("blockLen %d: grown ordinal = %d, want %d", blockLen, grown, blocks)
		}
		if blk := s.Block(5); blk[0] != want[5][0] {
			t.Fatalf("blockLen %d: growth clobbered restored block", blockLen)
		}
	}
}
