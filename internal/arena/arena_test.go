package arena

import "testing"

func TestRefTagging(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil is not nil")
	}
	for _, idx := range []uint32{0, 1, 1000, 1<<31 - 2} {
		nr := NodeRef(idx)
		lr := LeafRef(idx)
		if nr.IsNil() || lr.IsNil() {
			t.Fatalf("idx %d: valid ref reads as nil", idx)
		}
		if nr.IsLeaf() {
			t.Fatalf("idx %d: node ref tagged as leaf", idx)
		}
		if !lr.IsLeaf() {
			t.Fatalf("idx %d: leaf ref not tagged", idx)
		}
		if nr.Index() != idx || lr.Index() != idx {
			t.Fatalf("idx %d: round-trip gave %d / %d", idx, nr.Index(), lr.Index())
		}
	}
}

func TestArenaStableAddresses(t *testing.T) {
	a := Make[uint64](4) // 16 elements per chunk
	var ptrs []*uint64
	for i := 0; i < 1000; i++ {
		idx := a.Alloc(uint64(i))
		if idx != uint32(i) {
			t.Fatalf("Alloc %d returned index %d", i, idx)
		}
		ptrs = append(ptrs, a.At(idx))
	}
	if a.Len() != 1000 {
		t.Fatalf("Len = %d", a.Len())
	}
	for i, p := range ptrs {
		// The addresses taken while the arena grew must still point at
		// the right elements.
		if *p != uint64(i) || a.At(uint32(i)) != p {
			t.Fatalf("element %d moved", i)
		}
	}
	n := 0
	a.Scan(func(idx uint32, v *uint64) bool {
		if *v != uint64(idx) {
			t.Fatalf("Scan idx %d = %d", idx, *v)
		}
		n++
		return true
	})
	if n != 1000 {
		t.Fatalf("Scan visited %d", n)
	}
}

func TestSlotsAllocFreeRecycle(t *testing.T) {
	for _, blockLen := range []int{2, 16, 64, 1 << 16} {
		s := MakeSlots(blockLen)
		a := s.Alloc()
		b := s.Alloc()
		if a == b {
			t.Fatalf("blockLen %d: duplicate ordinals", blockLen)
		}
		blkA := s.Block(a)
		if len(blkA) != blockLen {
			t.Fatalf("blockLen %d: block has %d slots", blockLen, len(blkA))
		}
		blkA[0] = 7
		blkA[blockLen-1] = 9
		// Growing must not move existing blocks.
		for i := 0; i < 100; i++ {
			s.Alloc()
		}
		if got := s.Block(a); got[0] != 7 || got[blockLen-1] != 9 {
			t.Fatalf("blockLen %d: block moved or lost data", blockLen)
		}
		if s.Live() != 102 {
			t.Fatalf("blockLen %d: Live = %d, want 102", blockLen, s.Live())
		}
		s.Free(a)
		if s.Live() != 101 {
			t.Fatalf("blockLen %d: Live after free = %d", blockLen, s.Live())
		}
		c := s.Alloc() // must recycle a, zeroed
		if c != a {
			t.Fatalf("blockLen %d: freed block not recycled (got %d, want %d)", blockLen, c, a)
		}
		for i, v := range s.Block(c) {
			if v != 0 {
				t.Fatalf("blockLen %d: recycled block slot %d = %d, not zeroed", blockLen, i, v)
			}
		}
		chunkWords := 1 << (s.perChunkBits + s.blockBits)
		wantChunks := (s.n + (1 << s.perChunkBits) - 1) >> s.perChunkBits
		if s.Bytes() != wantChunks*chunkWords*4 {
			t.Fatalf("blockLen %d: Bytes = %d, want %d reserved chunk bytes",
				blockLen, s.Bytes(), wantChunks*chunkWords*4)
		}
	}
}

// Slots.Bytes must report the reserved chunk capacity, not just the
// appended blocks: Alloc commits a whole chunk (make with full cap), so a
// single allocated block already holds one chunk's worth of memory. The
// spill eviction policy keys off this number; under-reporting would let a
// "within budget" plan blow past the budget right after a chunk grows.
func TestSlotsBytesCountsReservedCapacity(t *testing.T) {
	s := MakeSlots(16)
	if s.Bytes() != 0 {
		t.Fatalf("empty Slots: Bytes = %d, want 0", s.Bytes())
	}
	s.Alloc()
	chunkBytes := (1 << (s.perChunkBits + s.blockBits)) * 4
	if s.Bytes() != chunkBytes {
		t.Fatalf("one block: Bytes = %d, want full chunk %d", s.Bytes(), chunkBytes)
	}
	// Filling the rest of the chunk must not change the footprint...
	for i := 1; i < 1<<s.perChunkBits; i++ {
		s.Alloc()
	}
	if s.Bytes() != chunkBytes {
		t.Fatalf("full chunk: Bytes = %d, want %d", s.Bytes(), chunkBytes)
	}
	// ...and the next block commits the next chunk wholesale.
	s.Alloc()
	if s.Bytes() != 2*chunkBytes {
		t.Fatalf("chunk+1 blocks: Bytes = %d, want %d", s.Bytes(), 2*chunkBytes)
	}
	// Freed blocks stay committed: recycling does not return chunk memory.
	s.Free(0)
	if s.Bytes() != 2*chunkBytes {
		t.Fatalf("after Free: Bytes = %d, want %d", s.Bytes(), 2*chunkBytes)
	}
}

// Arena.Bytes likewise reports reserved chunk capacity.
func TestArenaBytesCountsReservedCapacity(t *testing.T) {
	a := Make[uint64](4) // 16 elements per chunk
	if a.Bytes() != 0 {
		t.Fatalf("empty arena: Bytes = %d, want 0", a.Bytes())
	}
	a.Alloc(1)
	if a.Bytes() != 16*8 {
		t.Fatalf("one element: Bytes = %d, want one full chunk (%d)", a.Bytes(), 16*8)
	}
	for i := 0; i < 16; i++ {
		a.Alloc(uint64(i))
	}
	if a.Bytes() != 2*16*8 {
		t.Fatalf("17 elements: Bytes = %d, want two chunks (%d)", a.Bytes(), 2*16*8)
	}
	a.Reset()
	if a.Bytes() != 0 || a.Len() != 0 {
		t.Fatalf("after Reset: Bytes = %d, Len = %d", a.Bytes(), a.Len())
	}
}
