// Chunk export/import: the spill layer of the arenas.
//
// Because compact pointers are arena indices, not machine addresses, an
// arena's content is position-independent: writing the chunks out and
// reading them back into freshly allocated chunks reproduces the identical
// index structure. Slots (the node storage of both tree kinds) spills its
// chunks verbatim in one sequential pass; Arena[T] cannot be dumped
// generically (T may embed Go pointers, e.g. a content leaf's duplicate
// list), so its owner serializes the elements itself and rebuilds them
// index-for-index with Reset + Alloc on thaw.
//
// The word helpers reinterpret slices as raw bytes (unsafe.Slice) — spill
// files live for one plan execution on the machine that wrote them, so
// endianness and field layout never cross a process boundary.
package arena

import (
	"encoding/binary"
	"io"
	"unsafe"
)

// WriteU64 writes one uint64 (spill-file scalar framing).
func WriteU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// ReadU64 reads one uint64 written by WriteU64.
func ReadU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU32s writes a []uint32 as raw bytes.
func WriteU32s(w io.Writer, p []uint32) error {
	if len(p) == 0 {
		return nil
	}
	_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*4))
	return err
}

// ReadU32s fills p with raw bytes written by WriteU32s.
func ReadU32s(r io.Reader, p []uint32) error {
	if len(p) == 0 {
		return nil
	}
	_, err := io.ReadFull(r, unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*4))
	return err
}

// WriteU64s writes a []uint64 as raw bytes.
func WriteU64s(w io.Writer, p []uint64) error {
	if len(p) == 0 {
		return nil
	}
	_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*8))
	return err
}

// ReadU64s fills p with raw bytes written by WriteU64s.
func ReadU64s(r io.Reader, p []uint64) error {
	if len(p) == 0 {
		return nil
	}
	_, err := io.ReadFull(r, unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*8))
	return err
}

// WriteChunks writes the arena's content — block count, free list, and
// every chunk's slots — in one sequential pass. The chunk geometry is not
// written: it is fixed at MakeSlots time and must match on ReadChunks.
func (s *Slots) WriteChunks(w io.Writer) error {
	if err := WriteU64(w, uint64(s.n)); err != nil {
		return err
	}
	if err := WriteU64(w, uint64(len(s.free))); err != nil {
		return err
	}
	if err := WriteU32s(w, s.free); err != nil {
		return err
	}
	for _, c := range s.chunks {
		if err := WriteU32s(w, c); err != nil {
			return err
		}
	}
	return nil
}

// Detach drops the chunk storage and free list so the garbage collector
// can reclaim them; the caller must have written the content out with
// WriteChunks first. Until ReadChunks restores the chunks, only Bytes
// (now 0) and the block/free counters remain meaningful.
func (s *Slots) Detach() {
	s.chunks = nil
	s.free = nil
}

// ReadFrom rebuilds the chunks from a WriteChunks stream, byte-identical:
// every block ordinal maps to the same slots as before the spill, so the
// compact pointers held by other structures stay valid. The receiver must
// have the same geometry as the writer (same MakeSlots block length).
func (s *Slots) ReadChunks(r io.Reader) error {
	n64, err := ReadU64(r)
	if err != nil {
		return err
	}
	nFree, err := ReadU64(r)
	if err != nil {
		return err
	}
	n := int(n64)
	free := make([]uint32, nFree)
	if err := ReadU32s(r, free); err != nil {
		return err
	}
	perChunk := 1 << s.perChunkBits // blocks per chunk
	chunkWords := 1 << (s.perChunkBits + s.blockBits)
	chunks := make([][]uint32, 0, (n+perChunk-1)/perChunk)
	for got := 0; got < n; got += perChunk {
		blocks := min(perChunk, n-got)
		c := make([]uint32, blocks<<s.blockBits, chunkWords)
		if err := ReadU32s(r, c); err != nil {
			return err
		}
		chunks = append(chunks, c)
	}
	s.n = n
	s.free = free
	s.chunks = chunks
	return nil
}
