// Chunk export/import: the spill layer of the arenas.
//
// Because compact pointers are arena indices, not machine addresses, an
// arena's content is position-independent: writing the chunks out and
// reading them back into freshly allocated chunks reproduces the identical
// index structure. Slots (the node storage of both tree kinds) spills its
// chunks verbatim in one sequential pass; Arena[T] cannot be dumped
// generically (T may embed Go pointers, e.g. a content leaf's duplicate
// list), so its owner serializes the elements itself and rebuilds them
// index-for-index with Reset + Alloc on thaw.
//
// The word helpers reinterpret slices as raw bytes (unsafe.Slice) — spill
// files live for one plan execution on the machine that wrote them, so
// endianness and field layout never cross a process boundary.
package arena

import (
	"bytes"
	"encoding/binary"
	"io"
	"unsafe"
)

// WriteU64 writes one uint64 (spill-file scalar framing).
func WriteU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// ReadU64 reads one uint64 written by WriteU64.
func ReadU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU32s writes a []uint32 as raw bytes.
func WriteU32s(w io.Writer, p []uint32) error {
	if len(p) == 0 {
		return nil
	}
	_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*4))
	return err
}

// ReadU32s fills p with raw bytes written by WriteU32s.
func ReadU32s(r io.Reader, p []uint32) error {
	if len(p) == 0 {
		return nil
	}
	_, err := io.ReadFull(r, unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*4))
	return err
}

// WriteU64s writes a []uint64 as raw bytes.
func WriteU64s(w io.Writer, p []uint64) error {
	if len(p) == 0 {
		return nil
	}
	_, err := w.Write(unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*8))
	return err
}

// ReadU64s fills p with raw bytes written by WriteU64s.
func ReadU64s(r io.Reader, p []uint64) error {
	if len(p) == 0 {
		return nil
	}
	_, err := io.ReadFull(r, unsafe.Slice((*byte)(unsafe.Pointer(&p[0])), len(p)*8))
	return err
}

// WriteChunks writes the arena's content — block count, free list, and
// every chunk's slots — in one sequential pass. The chunk geometry is not
// written: it is fixed at MakeSlots time and must match on ReadChunks.
func (s *Slots) WriteChunks(w io.Writer) error {
	if err := WriteU64(w, uint64(s.n)); err != nil {
		return err
	}
	if err := WriteU64(w, uint64(len(s.free))); err != nil {
		return err
	}
	if err := WriteU32s(w, s.free); err != nil {
		return err
	}
	for _, c := range s.chunks {
		if err := WriteU32s(w, c); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotLen reports the exact number of bytes WriteChunks will produce —
// the freeze formats record it so a partial thaw can seek past an already
// resident node section.
func (s *Slots) SnapshotLen() int {
	words := 0
	for _, c := range s.chunks {
		words += len(c)
	}
	return 16 + 4*len(s.free) + 4*words
}

// Detach drops the chunk storage and free list; the caller must have
// written the content out with WriteChunks first. With a recycler
// configured, heap chunks are cleared and parked for reuse (mapped chunks
// are simply dropped — their pages belong to the spill file mapping).
// Until ReadChunks restores the chunks, only Bytes (now 0) and the
// block/free counters remain meaningful.
func (s *Slots) Detach() {
	for i := s.mappedN; i < len(s.chunks); i++ {
		PutChunk(s.rec, s.chunks[i])
	}
	s.chunks = nil
	s.free = nil
	s.mappedN = 0
}

// ReadFrom rebuilds the chunks from a WriteChunks stream, byte-identical:
// every block ordinal maps to the same slots as before the spill, so the
// compact pointers held by other structures stay valid. The receiver must
// have the same geometry as the writer (same MakeSlots block length).
func (s *Slots) ReadChunks(r io.Reader) error {
	n64, err := ReadU64(r)
	if err != nil {
		return err
	}
	nFree, err := ReadU64(r)
	if err != nil {
		return err
	}
	n := int(n64)
	free := make([]uint32, nFree)
	if err := ReadU32s(r, free); err != nil {
		return err
	}
	perChunk := 1 << s.perChunkBits // blocks per chunk
	chunks := make([][]uint32, 0, (n+perChunk-1)/perChunk)
	for got := 0; got < n; got += perChunk {
		blocks := min(perChunk, n-got)
		c := s.grabChunk()[:blocks<<s.blockBits]
		if err := ReadU32s(r, c); err != nil {
			return err
		}
		chunks = append(chunks, c)
	}
	s.n = n
	s.free = free
	s.chunks = chunks
	s.mappedN = 0
	return nil
}

// ReadChunksMapped is ReadChunks over an mmap-ed spill file: full chunks
// are *adopted* — the arena's chunk slices alias the mapped pages, so no
// copy happens and untouched pages are only faulted in when a scan reaches
// them. The partially filled tail chunk is copied to the heap at full
// capacity so later Alloc growth keeps the stable-address guarantee (an
// adopted chunk has no spare capacity to append into). The mapping is
// private, so block writes (Free's zeroing, in-place updates) trigger
// page-level copy-on-write instead of touching the file.
//
// The caller owns the mapping and must keep it alive until the chunks are
// dropped (Detach/Reset) or copied out (Unmap).
func (s *Slots) ReadChunksMapped(r *MapReader) error {
	n64, err := ReadU64(r)
	if err != nil {
		return err
	}
	nFree, err := ReadU64(r)
	if err != nil {
		return err
	}
	n := int(n64)
	free := make([]uint32, nFree)
	if err := ReadU32s(r, free); err != nil {
		return err
	}
	perChunk := 1 << s.perChunkBits
	chunks := make([][]uint32, 0, (n+perChunk-1)/perChunk)
	mappedN := 0
	adopting := true
	for got := 0; got < n; got += perChunk {
		blocks := min(perChunk, n-got)
		words := blocks << s.blockBits
		if adopting && blocks == perChunk {
			if view, ok := r.U32View(words); ok {
				chunks = append(chunks, view)
				mappedN++
				continue
			}
		}
		adopting = false // mapped chunks must stay a prefix of s.chunks
		c := s.grabChunk()[:words]
		if err := ReadU32s(r, c); err != nil {
			return err
		}
		chunks = append(chunks, c)
	}
	s.n = n
	s.free = free
	s.chunks = chunks
	s.mappedN = mappedN
	return nil
}

// LeafChunkDir builds the per-chunk directory a partial thaw navigates
// by: one {min key, max key, byte length} triple per arena chunk, where
// min/max range over the live elements (liveKey reports ok == false for
// recycled zero elements, which carry no data) and size reports each
// element's serialized byte length. A chunk with no live elements gets
// the empty sentinel min > max, so no key range ever selects it.
func LeafChunkDir[T any](a *Arena[T], size func(*T) uint64, liveKey func(*T) (uint64, bool)) []uint64 {
	chunkSize := uint32(1) << a.bits
	nChunks := (a.Len() + int(chunkSize) - 1) / int(chunkSize)
	dir := make([]uint64, 0, 3*nChunks)
	minK, maxK, bytes := ^uint64(0), uint64(0), uint64(0)
	flush := func() {
		dir = append(dir, minK, maxK, bytes)
		minK, maxK, bytes = ^uint64(0), 0, 0
	}
	a.Scan(func(idx uint32, lf *T) bool {
		if idx > 0 && idx&(chunkSize-1) == 0 {
			flush()
		}
		if k, ok := liveKey(lf); ok {
			minK, maxK = min(minK, k), max(maxK, k)
		}
		bytes += size(lf)
		return true
	})
	if a.Len() > 0 {
		flush()
	}
	return dir
}

// ThawChunks is the chunk skip/restore loop of a partial thaw, shared by
// both tree kinds. f must be positioned at the first chunk's serialized
// data; dir is the LeafChunkDir directory; thawed tracks per-chunk
// restore state across additive calls (ignored when skim is set — a
// fully resident structure just seeks to the stream end). Chunks whose
// key range intersects [lo, hi] and are not yet thawed are read in one
// ReadFull and rebuilt element-by-element through restore; all others
// are skipped with a seek. Returns the bytes actually read and whether
// every chunk is now restored.
func ThawChunks[T any](f io.ReadSeeker, a *Arena[T], n uint64, dir []uint64,
	thawed []bool, skim bool, lo, hi uint64,
	restore func(r io.Reader, lf *T) error) (int64, bool, error) {
	chunkSize := uint64(1) << a.bits
	var nRead int64
	var buf []byte
	full := true
	for ci := uint64(0); ci*3 < uint64(len(dir)); ci++ {
		minK, maxK, nb := dir[3*ci], dir[3*ci+1], dir[3*ci+2]
		if !skim && !thawed[ci] && minK > maxK {
			thawed[ci] = true // no live elements: zero is already right
		}
		if skim || thawed[ci] || minK > hi || maxK < lo {
			full = full && (skim || thawed[ci])
			if _, err := f.Seek(int64(nb), io.SeekCurrent); err != nil {
				return nRead, false, err
			}
			continue
		}
		if uint64(cap(buf)) < nb {
			buf = make([]byte, nb)
		}
		buf = buf[:nb]
		if _, err := io.ReadFull(f, buf); err != nil {
			return nRead, false, err
		}
		nRead += int64(nb)
		br := bytes.NewReader(buf)
		base := ci * chunkSize
		cnt := min(chunkSize, n-base)
		for j := uint64(0); j < cnt; j++ {
			if err := restore(br, a.At(uint32(base+j))); err != nil {
				return nRead, false, err
			}
		}
		thawed[ci] = true
	}
	return nRead, full, nil
}

// A MapReader reads a freeze stream out of an mmap-ed spill file. It is a
// plain io.Reader for the parts a thaw must rebuild (content leaves,
// compressed nodes), and hands out zero-copy []uint32 views of the mapped
// pages for the parts an arena can adopt verbatim. Copied reports how many
// bytes went through the copying path — the bytes a zero-copy thaw
// actually read, as opposed to mapped.
type MapReader struct {
	data   []byte
	off    int
	copied int64
}

// NewMapReader wraps a mapped spill file.
func NewMapReader(data []byte) *MapReader { return &MapReader{data: data} }

// Read implements io.Reader over the mapping, counting copied bytes.
func (r *MapReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	r.copied += int64(n)
	return n, nil
}

// U32View returns the next n uint32 values as a slice aliasing the mapped
// pages, advancing the reader past them. ok is false — and the reader does
// not advance — when the current offset is not 4-byte aligned or the
// mapping is too short; callers then fall back to a copying read.
func (r *MapReader) U32View(n int) ([]uint32, bool) {
	if r.off%4 != 0 || r.off+4*n > len(r.data) {
		return nil, false
	}
	v := unsafe.Slice((*uint32)(unsafe.Pointer(&r.data[r.off])), n)
	r.off += 4 * n
	return v, true
}

// Copied reports the bytes delivered through Read (the copying path).
func (r *MapReader) Copied() int64 { return r.copied }
