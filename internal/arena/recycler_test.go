package arena

import (
	"sync"
	"testing"
)

// A chunk parked in the pool must come back only for its exact element
// type and capacity, cleared, and the counters must record the traffic.
func TestRecyclerRoundTripAndClasses(t *testing.T) {
	r := NewRecycler()
	c := make([]uint32, 0, 1024)
	c = append(c, 7, 8, 9)
	PutChunk(r, c)

	if _, ok := GetChunk[uint32](r, 512); ok {
		t.Fatal("wrong capacity served")
	}
	if _, ok := GetChunk[uint64](r, 1024); ok {
		t.Fatal("wrong element type served")
	}
	got, ok := GetChunk[uint32](r, 1024)
	if !ok {
		t.Fatal("exact class not served")
	}
	if len(got) != 0 || cap(got) != 1024 {
		t.Fatalf("recycled chunk has len %d cap %d", len(got), cap(got))
	}
	for _, v := range got[:cap(got)] {
		if v != 0 {
			t.Fatal("recycled chunk not cleared")
		}
	}
	if _, ok := GetChunk[uint32](r, 1024); ok {
		t.Fatal("chunk served twice")
	}
	st := r.Stats()
	if st.Recycled != 1 || st.Reused != 1 || st.SavedBytes != 4096 {
		t.Fatalf("stats = %+v", st)
	}
}

// Typed chunks holding pointers must be cleared on put so the pool never
// retains payload memory.
func TestRecyclerClearsPointerChunks(t *testing.T) {
	type leafish struct {
		p *int
	}
	r := NewRecycler()
	x := 42
	c := make([]leafish, 0, 8)
	c = append(c, leafish{p: &x})
	PutChunk(r, c)
	got, ok := GetChunk[leafish](r, 8)
	if !ok {
		t.Fatal("typed chunk not served")
	}
	for _, v := range got[:cap(got)] {
		if v.p != nil {
			t.Fatal("pointer survived recycling")
		}
	}
}

// A nil recycler must be a universal no-op.
func TestRecyclerNilSafe(t *testing.T) {
	var r *Recycler
	PutChunk(r, make([]uint32, 4))
	if _, ok := GetChunk[uint32](r, 4); ok {
		t.Fatal("nil recycler served a chunk")
	}
	if st := r.Stats(); st != (RecyclerStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// Arena and Slots must draw growth from the pool and return chunks on
// Reset/Detach — the drop→reuse cycle the executor drives per operator.
func TestArenaAndSlotsRecycle(t *testing.T) {
	rec := NewRecycler()

	a := Make[uint64](4) // 16-element chunks
	a.SetRecycler(rec)
	for i := 0; i < 40; i++ { // 3 chunks
		a.Alloc(uint64(i))
	}
	a.Reset()
	if st := rec.Stats(); st.Recycled != 3 {
		t.Fatalf("Reset parked %d chunks, want 3", st.Recycled)
	}
	for i := 0; i < 40; i++ {
		a.Alloc(uint64(100 + i))
	}
	if st := rec.Stats(); st.Reused != 3 {
		t.Fatalf("regrowth reused %d chunks, want 3", st.Reused)
	}
	if *a.At(0) != 100 || *a.At(39) != 139 {
		t.Fatal("recycled arena content wrong")
	}

	s := MakeSlots(16)
	s.SetRecycler(rec)
	perChunk := s.chunkWords() / 16
	for i := 0; i < perChunk+1; i++ { // force 2 chunks
		s.Alloc()
	}
	before := rec.Stats().Recycled
	s.Detach()
	if got := rec.Stats().Recycled - before; got != 2 {
		t.Fatalf("Detach parked %d slot chunks, want 2", got)
	}
}

// The pool is shared by concurrent workers; hammer it under -race.
func TestRecyclerConcurrent(t *testing.T) {
	rec := NewRecycler()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if c, ok := GetChunk[uint32](rec, 256); ok {
					PutChunk(rec, c)
					continue
				}
				PutChunk(rec, make([]uint32, 0, 256))
			}
		}(w)
	}
	wg.Wait()
	st := rec.Stats()
	if st.Recycled == 0 {
		t.Fatalf("no traffic recorded: %+v", st)
	}
}

// SetCap bounds the pooled bytes: chunks beyond the cap are dropped to
// the GC and counted as trim evictions, and the pool keeps serving what
// it retained.
func TestRecyclerTrimCap(t *testing.T) {
	rec := NewRecycler()
	const chunkWords = 1024 // 8 KiB per uint64 chunk
	rec.SetCap(3 * chunkWords * 8)
	for i := 0; i < 5; i++ {
		PutChunk(rec, make([]uint64, 0, chunkWords))
	}
	st := rec.Stats()
	if st.Recycled != 3 || st.TrimEvicted != 2 {
		t.Fatalf("parked %d, trim-evicted %d; want 3 and 2: %+v", st.Recycled, st.TrimEvicted, st)
	}
	if st.PooledBytes != 3*chunkWords*8 {
		t.Fatalf("pooled bytes %d, want %d", st.PooledBytes, 3*chunkWords*8)
	}
	if st.TrimEvictedBytes != 2*chunkWords*8 {
		t.Fatalf("trim-evicted bytes %d, want %d", st.TrimEvictedBytes, 2*chunkWords*8)
	}
	// Draining the pool frees cap headroom: the next Put is pooled again.
	for i := 0; i < 3; i++ {
		if _, ok := GetChunk[uint64](rec, chunkWords); !ok {
			t.Fatalf("pooled chunk %d missing", i)
		}
	}
	PutChunk(rec, make([]uint64, 0, chunkWords))
	st = rec.Stats()
	if st.Recycled != 4 || st.PooledBytes != chunkWords*8 {
		t.Fatalf("pool did not reopen after draining: %+v", st)
	}
	// An uncapped pool never trims.
	rec.SetCap(0)
	for i := 0; i < 8; i++ {
		PutChunk(rec, make([]uint64, 0, chunkWords))
	}
	if got := rec.Stats().TrimEvicted; got != 2 {
		t.Fatalf("uncapped pool trimmed: %d evictions", got)
	}
}
