// Package hashbase provides the hash-table baselines that the paper
// compares prefix trees against (Section 2.5, Figure 3): separate-chaining
// tables in the style of the GLib GHashTable (prime bucket counts) and of
// the paper-era boost::unordered_map (power-of-two bucket counts), plus an
// open-addressing linear-probing table as a stronger modern baseline the
// paper did not have. All map uint64 keys to uint64 values with upsert
// semantics, matching the paper's insert/update workload.
//
// The package also provides MultiMap, an arena-chained uint64→uint32
// multimap used as the hash-join kernel of the column-at-a-time and
// vector-at-a-time baseline engines.
package hashbase

// hashKey is Fibonacci hashing — cheap, well-distributed for both dense
// and sparse keys, and the same function for both tables so Figure 3
// differences come from layout, not hash quality.
func hashKey(k uint64) uint64 {
	return k * 0x9E3779B97F4A7C15
}

// primes roughly double, like GLib's internal prime table.
var primes = []int{
	11, 23, 47, 97, 199, 409, 823, 1741, 3469, 6949, 14033, 28411, 57557,
	116731, 236897, 480881, 976369, 1982627, 4026031, 8175383, 16601593,
	33712729, 68460391, 139022417, 282312799, 573292817,
}

// ChainedMap is a separate-chaining hash table: every entry is a
// separately allocated chain node, so lookups chase at least one pointer
// after the bucket array. With prime bucket counts it models the GLib
// GHashTable; with power-of-two bucket counts it models the
// boost::unordered_map of the paper's era (also node-based chaining).
type ChainedMap struct {
	buckets []*chainEntry
	primeIx int // -1 for power-of-two sizing
	n       int
}

type chainEntry struct {
	next *chainEntry
	key  uint64
	val  uint64
}

// NewChainedMap returns a GLib-style prime-sized table pre-sized for
// capHint entries.
func NewChainedMap(capHint int) *ChainedMap {
	ix := 0
	for ix < len(primes)-1 && primes[ix]*3/4 < capHint {
		ix++
	}
	return &ChainedMap{buckets: make([]*chainEntry, primes[ix]), primeIx: ix}
}

// NewBoostMap returns a Boost-style power-of-two chained table pre-sized
// for capHint entries.
func NewBoostMap(capHint int) *ChainedMap {
	capacity := 16
	for capacity*3/4 < capHint {
		capacity *= 2
	}
	return &ChainedMap{buckets: make([]*chainEntry, capacity), primeIx: -1}
}

// Len reports the number of keys.
func (m *ChainedMap) Len() int { return m.n }

// Insert sets key to val (upsert).
func (m *ChainedMap) Insert(key, val uint64) {
	b := hashKey(key) % uint64(len(m.buckets))
	for e := m.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			e.val = val
			return
		}
	}
	m.buckets[b] = &chainEntry{next: m.buckets[b], key: key, val: val}
	m.n++
	if m.n > len(m.buckets)*3/4 && (m.primeIx < 0 || m.primeIx < len(primes)-1) {
		m.grow()
	}
}

func (m *ChainedMap) grow() {
	old := m.buckets
	if m.primeIx >= 0 {
		m.primeIx++
		m.buckets = make([]*chainEntry, primes[m.primeIx])
	} else {
		m.buckets = make([]*chainEntry, 2*len(old))
	}
	for _, e := range old {
		for e != nil {
			next := e.next
			b := hashKey(e.key) % uint64(len(m.buckets))
			e.next = m.buckets[b]
			m.buckets[b] = e
			e = next
		}
	}
}

// Lookup returns the value for key and whether it is present.
func (m *ChainedMap) Lookup(key uint64) (uint64, bool) {
	for e := m.buckets[hashKey(key)%uint64(len(m.buckets))]; e != nil; e = e.next {
		if e.key == key {
			return e.val, true
		}
	}
	return 0, false
}

// OpenMap is an open-addressing linear-probing hash table with
// power-of-two capacity (the extra modern baseline): entries live inline in
// one array, so successful lookups usually touch a single cache line but
// the table must stay below ~87% load.
type OpenMap struct {
	keys []uint64
	vals []uint64
	used []bool
	mask uint64
	n    int
}

// NewOpenMap returns a table pre-sized for capHint entries.
func NewOpenMap(capHint int) *OpenMap {
	capacity := 16
	for capacity*7/8 < capHint {
		capacity *= 2
	}
	return &OpenMap{
		keys: make([]uint64, capacity),
		vals: make([]uint64, capacity),
		used: make([]bool, capacity),
		mask: uint64(capacity - 1),
	}
}

// Len reports the number of keys.
func (m *OpenMap) Len() int { return m.n }

// Insert sets key to val (upsert).
func (m *OpenMap) Insert(key, val uint64) {
	if m.n >= len(m.keys)*7/8 {
		m.grow()
	}
	i := hashKey(key) & m.mask
	for m.used[i] {
		if m.keys[i] == key {
			m.vals[i] = val
			return
		}
		i = (i + 1) & m.mask
	}
	m.used[i], m.keys[i], m.vals[i] = true, key, val
	m.n++
}

func (m *OpenMap) grow() {
	oldK, oldV, oldU := m.keys, m.vals, m.used
	capacity := len(m.keys) * 2
	m.keys = make([]uint64, capacity)
	m.vals = make([]uint64, capacity)
	m.used = make([]bool, capacity)
	m.mask = uint64(capacity - 1)
	for i, u := range oldU {
		if !u {
			continue
		}
		j := hashKey(oldK[i]) & m.mask
		for m.used[j] {
			j = (j + 1) & m.mask
		}
		m.used[j], m.keys[j], m.vals[j] = true, oldK[i], oldV[i]
	}
}

// Lookup returns the value for key and whether it is present.
func (m *OpenMap) Lookup(key uint64) (uint64, bool) {
	i := hashKey(key) & m.mask
	for m.used[i] {
		if m.keys[i] == key {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// MultiMap maps uint64 keys to lists of uint32 values with all entries in
// one arena (no per-entry allocation). It is the build side of the
// baseline engines' hash joins.
type MultiMap struct {
	heads   []int32 // bucket heads into entries, -1 = empty
	entries []mmEntry
	mask    uint64
}

type mmEntry struct {
	key  uint64
	next int32
	val  uint32
}

// NewMultiMap returns a multimap pre-sized for capHint entries.
func NewMultiMap(capHint int) *MultiMap {
	capacity := 16
	for capacity < capHint {
		capacity *= 2
	}
	m := &MultiMap{
		heads:   make([]int32, capacity),
		entries: make([]mmEntry, 0, capHint),
		mask:    uint64(capacity - 1),
	}
	for i := range m.heads {
		m.heads[i] = -1
	}
	return m
}

// Insert appends val under key (duplicate keys accumulate).
func (m *MultiMap) Insert(key uint64, val uint32) {
	b := hashKey(key) & m.mask
	m.entries = append(m.entries, mmEntry{key: key, next: m.heads[b], val: val})
	m.heads[b] = int32(len(m.entries) - 1)
}

// Len reports the number of entries (not distinct keys).
func (m *MultiMap) Len() int { return len(m.entries) }

// ForEach visits every value stored under key, newest first.
func (m *MultiMap) ForEach(key uint64, visit func(val uint32)) {
	for i := m.heads[hashKey(key)&m.mask]; i >= 0; i = m.entries[i].next {
		if m.entries[i].key == key {
			visit(m.entries[i].val)
		}
	}
}

// Contains reports whether key has at least one entry.
func (m *MultiMap) Contains(key uint64) bool {
	for i := m.heads[hashKey(key)&m.mask]; i >= 0; i = m.entries[i].next {
		if m.entries[i].key == key {
			return true
		}
	}
	return false
}
