package hashbase

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChainedMapOracle(t *testing.T) {
	f := func(ops []uint32) bool {
		m := NewChainedMap(0)
		oracle := map[uint64]uint64{}
		for i, op := range ops {
			k := uint64(op % 5000)
			v := uint64(i)
			m.Insert(k, v)
			oracle[k] = v
		}
		if m.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := m.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		_, ok := m.Lookup(999999)
		return !ok
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMapOracle(t *testing.T) {
	f := func(ops []uint32) bool {
		m := NewOpenMap(0)
		oracle := map[uint64]uint64{}
		for i, op := range ops {
			k := uint64(op % 5000)
			v := uint64(i)
			m.Insert(k, v)
			oracle[k] = v
		}
		if m.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := m.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		_, ok := m.Lookup(999999)
		return !ok
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMapsGrow(t *testing.T) {
	cm := NewChainedMap(0)
	om := NewOpenMap(0)
	const n = 100000
	for i := uint64(0); i < n; i++ {
		cm.Insert(i*7, i)
		om.Insert(i*7, i)
	}
	if cm.Len() != n || om.Len() != n {
		t.Fatalf("Len = %d/%d", cm.Len(), om.Len())
	}
	for i := uint64(0); i < n; i += 997 {
		if v, ok := cm.Lookup(i * 7); !ok || v != i {
			t.Fatalf("chained lost key %d", i*7)
		}
		if v, ok := om.Lookup(i * 7); !ok || v != i {
			t.Fatalf("open lost key %d", i*7)
		}
	}
}

func TestMultiMap(t *testing.T) {
	m := NewMultiMap(8)
	for i := uint32(0); i < 1000; i++ {
		m.Insert(uint64(i%10), i)
	}
	if m.Len() != 1000 {
		t.Fatalf("Len = %d", m.Len())
	}
	for k := uint64(0); k < 10; k++ {
		var got []uint32
		m.ForEach(k, func(v uint32) { got = append(got, v) })
		if len(got) != 100 {
			t.Fatalf("key %d has %d values", k, len(got))
		}
		for _, v := range got {
			if uint64(v%10) != k {
				t.Fatalf("key %d got foreign value %d", k, v)
			}
		}
		if !m.Contains(k) {
			t.Fatalf("Contains(%d) = false", k)
		}
	}
	if m.Contains(11) {
		t.Fatal("Contains(11) = true")
	}
	m.ForEach(42, func(uint32) { t.Fatal("visited value for absent key") })
}
