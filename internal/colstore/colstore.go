// Package colstore is the column-at-a-time baseline engine, standing in
// for MonetDB in the paper's evaluation (Section 5).
//
// The engine follows the BAT-algebra execution style: every operator
// processes a full column and fully materializes its result (candidate/oid
// lists, join index columns, reconstructed value columns) before the next
// operator runs. Its characteristic strength is tight sequential scans;
// its characteristic weakness — the one the paper's Figure 7 exploits — is
// *tuple reconstruction*: every attribute that survives a join has to be
// re-fetched positionally through the join's oid lists, so the
// materialization volume grows with the number of join columns.
//
// Queries are composed from these primitives in package ssb, mirroring how
// a MonetDB query plan would chain BAT operators.
package colstore

import (
	"fmt"

	"qppt/internal/hashbase"
)

// A Table is a set of equal-length columns.
type Table struct {
	name string
	n    int
	cols map[string][]uint64
}

// A DB is a named collection of column tables.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty column store.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// AddTable registers a table from its columns; all columns must have equal
// length.
func (db *DB) AddTable(name string, cols map[string][]uint64) (*Table, error) {
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("colstore: table %q already exists", name)
	}
	t := &Table{name: name, cols: cols, n: -1}
	for cn, c := range cols {
		if t.n == -1 {
			t.n = len(c)
		} else if len(c) != t.n {
			return nil, fmt.Errorf("colstore: column %q length %d != %d", cn, len(c), t.n)
		}
	}
	if t.n == -1 {
		t.n = 0
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Rows reports the table cardinality.
func (t *Table) Rows() int { return t.n }

// Col returns a column by name; it panics for unknown columns (queries are
// static).
func (t *Table) Col(name string) []uint64 {
	c, ok := t.cols[name]
	if !ok {
		panic(fmt.Sprintf("colstore: unknown column %s.%s", t.name, name))
	}
	return c
}

// SelectRange scans a full column and materializes the oid list of values
// in [lo, hi].
func SelectRange(col []uint64, lo, hi uint64) []uint32 {
	out := []uint32{}
	for i, v := range col {
		if v >= lo && v <= hi {
			out = append(out, uint32(i))
		}
	}
	return out
}

// SelectIn scans a full column and materializes the oid list of values in
// set.
func SelectIn(col []uint64, set map[uint64]bool) []uint32 {
	out := []uint32{}
	for i, v := range col {
		if set[v] {
			out = append(out, uint32(i))
		}
	}
	return out
}

// RefineRange filters an existing candidate list against another column —
// the column-at-a-time form of a conjunctive predicate.
func RefineRange(col []uint64, cands []uint32, lo, hi uint64) []uint32 {
	out := make([]uint32, 0)
	for _, oid := range cands {
		if v := col[oid]; v >= lo && v <= hi {
			out = append(out, oid)
		}
	}
	return out
}

// RefineIn filters a candidate list against a set membership predicate.
func RefineIn(col []uint64, cands []uint32, set map[uint64]bool) []uint32 {
	out := make([]uint32, 0)
	for _, oid := range cands {
		if set[col[oid]] {
			out = append(out, oid)
		}
	}
	return out
}

// Fetch materializes col[oid] for every oid — the tuple-reconstruction
// primitive. Every surviving attribute of every join pays one Fetch.
func Fetch(col []uint64, oids []uint32) []uint64 {
	out := make([]uint64, len(oids))
	for i, oid := range oids {
		out[i] = col[oid]
	}
	return out
}

// BuildJoin builds the hash side of a join from the key values of the
// given oids. nil means "the whole column" (an unselected dimension); an
// empty non-nil slice means "no rows" (a selection that matched nothing) —
// the Select/Refine primitives always return non-nil slices.
func BuildJoin(col []uint64, oids []uint32) *hashbase.MultiMap {
	if oids == nil {
		m := hashbase.NewMultiMap(len(col))
		for i, v := range col {
			m.Insert(v, uint32(i))
		}
		return m
	}
	m := hashbase.NewMultiMap(len(oids))
	for _, oid := range oids {
		m.Insert(col[oid], oid)
	}
	return m
}

// ProbeJoin probes every probeKeys value (a fully materialized key column,
// typically the output of a Fetch) against the build side, materializing
// matching oid pairs.
func ProbeJoin(probeKeys []uint64, probeOids []uint32, build *hashbase.MultiMap) (pOut, bOut []uint32) {
	for i, k := range probeKeys {
		p := uint32(i)
		if probeOids != nil {
			p = probeOids[i]
		}
		build.ForEach(k, func(b uint32) {
			pOut = append(pOut, p)
			bOut = append(bOut, b)
		})
	}
	return pOut, bOut
}

// SemiJoin keeps the probe positions whose key exists in the build side —
// the column form of an existence (dimension filter) join.
func SemiJoin(probeKeys []uint64, probeOids []uint32, build *hashbase.MultiMap) []uint32 {
	var out []uint32
	for i, k := range probeKeys {
		if build.Contains(k) {
			if probeOids != nil {
				out = append(out, probeOids[i])
			} else {
				out = append(out, uint32(i))
			}
		}
	}
	return out
}

// GroupSum aggregates measure by the packed group keys, returning a
// hash-ordered materialized group table. Packing multi-column group keys
// is the caller's job (queries know their domains).
func GroupSum(packedKeys, measure []uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for i, k := range packedKeys {
		out[k] += measure[i]
	}
	return out
}

// SumAll reduces a measure column to its total.
func SumAll(measure []uint64) uint64 {
	var s uint64
	for _, v := range measure {
		s += v
	}
	return s
}

// Gather is Fetch for oid lists over oid lists (two-level positional
// reconstruction, e.g. reading a dimension attribute through a join index
// whose build side was itself a selection).
func Gather(oids []uint32, inner []uint32) []uint32 {
	out := make([]uint32, len(oids))
	for i, o := range oids {
		out[i] = inner[o]
	}
	return out
}
