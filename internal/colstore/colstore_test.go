package colstore

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestAddTableValidation(t *testing.T) {
	db := NewDB()
	if _, err := db.AddTable("t", map[string][]uint64{"a": {1, 2}, "b": {1}}); err == nil {
		t.Fatal("ragged table accepted")
	}
	if _, err := db.AddTable("t", map[string][]uint64{"a": {1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddTable("t", nil); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if db.Table("t").Rows() != 2 || db.Table("zz") != nil {
		t.Fatal("table lookup broken")
	}
}

func TestSelectAndRefine(t *testing.T) {
	col := []uint64{5, 1, 9, 3, 7, 3, 0}
	got := SelectRange(col, 3, 7)
	want := []uint32{0, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SelectRange = %v, want %v", got, want)
	}
	other := []uint64{1, 1, 1, 2, 2, 2, 1}
	got = RefineRange(other, got, 2, 2)
	if !reflect.DeepEqual(got, []uint32{3, 4, 5}) {
		t.Fatalf("RefineRange = %v", got)
	}
	got = SelectIn(col, map[uint64]bool{9: true, 0: true})
	if !reflect.DeepEqual(got, []uint32{2, 6}) {
		t.Fatalf("SelectIn = %v", got)
	}
	got = RefineIn(col, []uint32{0, 2, 6}, map[uint64]bool{5: true, 0: true})
	if !reflect.DeepEqual(got, []uint32{0, 6}) {
		t.Fatalf("RefineIn = %v", got)
	}
}

func TestFetch(t *testing.T) {
	col := []uint64{10, 20, 30, 40}
	if got := Fetch(col, []uint32{3, 0, 2}); !reflect.DeepEqual(got, []uint64{40, 10, 30}) {
		t.Fatalf("Fetch = %v", got)
	}
}

func TestJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	build := make([]uint64, 300)
	probe := make([]uint64, 1000)
	for i := range build {
		build[i] = uint64(rng.Intn(100))
	}
	for i := range probe {
		probe[i] = uint64(rng.Intn(150))
	}
	ht := BuildJoin(build, nil)
	pOut, bOut := ProbeJoin(probe, nil, ht)
	type pair struct{ p, b uint32 }
	got := map[pair]bool{}
	for i := range pOut {
		got[pair{pOut[i], bOut[i]}] = true
	}
	want := map[pair]bool{}
	for p, pv := range probe {
		for b, bv := range build {
			if pv == bv {
				want[pair{uint32(p), uint32(b)}] = true
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join produced %d pairs, nested loop %d", len(got), len(want))
	}
}

func TestJoinWithBuildSelection(t *testing.T) {
	build := []uint64{7, 8, 7, 9}
	oids := []uint32{0, 2} // only the two 7s
	ht := BuildJoin(build, oids)
	p, b := ProbeJoin([]uint64{7, 9}, []uint32{100, 200}, ht)
	if len(p) != 2 || p[0] != 100 || p[1] != 100 {
		t.Fatalf("probe oids = %v", p)
	}
	seen := map[uint32]bool{}
	for _, x := range b {
		seen[x] = true
	}
	if !seen[0] || !seen[2] || len(seen) != 2 {
		t.Fatalf("build oids = %v", b)
	}
}

func TestSemiJoin(t *testing.T) {
	ht := BuildJoin([]uint64{1, 2, 3}, nil)
	got := SemiJoin([]uint64{0, 2, 2, 5, 3}, nil, ht)
	if !reflect.DeepEqual(got, []uint32{1, 2, 4}) {
		t.Fatalf("SemiJoin = %v", got)
	}
	got = SemiJoin([]uint64{0, 2}, []uint32{10, 20}, ht)
	if !reflect.DeepEqual(got, []uint32{20}) {
		t.Fatalf("SemiJoin with oids = %v", got)
	}
}

func TestGroupSumAndSumAll(t *testing.T) {
	keys := []uint64{1, 2, 1, 3, 2, 1}
	meas := []uint64{10, 20, 30, 40, 50, 60}
	got := GroupSum(keys, meas)
	want := map[uint64]uint64{1: 100, 2: 70, 3: 40}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GroupSum = %v", got)
	}
	if SumAll(meas) != 210 {
		t.Fatalf("SumAll = %d", SumAll(meas))
	}
}

func TestGather(t *testing.T) {
	inner := []uint32{5, 6, 7}
	if got := Gather([]uint32{2, 0}, inner); !reflect.DeepEqual(got, []uint32{7, 5}) {
		t.Fatalf("Gather = %v", got)
	}
}
