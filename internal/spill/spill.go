// Package spill implements the plan-scoped index spill manager (ROADMAP
// "Index spilling").
//
// QPPT builds an intermediate prefix-tree index per operator, so the total
// index footprint — not the base tables — is what caps the scale factor a
// plan can run. Because the index structures store compact pointers (arena
// indices, not machine addresses), a cold intermediate index is just a
// handful of large contiguous chunks that can be written to a temp file in
// one sequential pass and read back verbatim on next access.
//
// The manager tracks every registered intermediate with its resident byte
// count (the arenas' reserved chunk capacity — see arena.Slots.Bytes) and
// enforces a byte budget: whenever residency exceeds the budget, the
// least-recently-used unpinned entry is frozen to disk until the plan fits
// again. Pinning an entry thaws it if needed and protects it while an
// operator reads it. Eviction is best-effort — when everything live is
// pinned, the plan runs over budget rather than deadlocking.
//
// Freeze/Thaw I/O runs under the manager lock, serializing spill traffic
// into the sequential-pass pattern the chunk layout is designed for.
package spill

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// A Freezer can snapshot its storage into a byte stream, detach it, and
// restore it later. Both QPPT tree kinds (and the sharded index over
// them) implement it via their arena chunk export.
//
// Snapshot and Release are split so the manager can sequence them safely
// around file I/O: Release is called only after the snapshot is flushed
// and closed on disk. If writing fails at any point — including a
// buffered flush, or midway through a multi-shard stream — nothing has
// been detached and the structure simply stays resident.
type Freezer interface {
	// WriteSnapshot serializes the structure's storage to w, leaving the
	// storage attached and the structure fully usable.
	WriteSnapshot(w io.Writer) error
	// Release detaches the storage a successful WriteSnapshot captured;
	// the structure must not be used again until Thaw.
	Release()
	// Thaw restores storage previously written by WriteSnapshot.
	Thaw(r io.Reader) error
}

// Stats aggregates the manager's activity for plan statistics.
type Stats struct {
	// Spills counts freeze events; SpillBytes the bytes they released.
	Spills     int
	SpillBytes int64
	// Restores counts thaw events; RestoreBytes the bytes brought back.
	Restores     int
	RestoreBytes int64
	// Resident is the current tracked residency, Peak its high-water mark.
	Resident int64
	Peak     int64
}

// A Manager owns the spill state of one plan execution.
type Manager struct {
	mu     sync.Mutex
	dir    string
	ownDir bool // dir was created by New and is removed by Close
	budget int64
	clock  uint64
	nextID int
	all    []*Handle
	stats  Stats
}

// New creates a manager enforcing the given byte budget. dir is where
// spill files go; an empty dir creates a private temp directory that
// Close removes. budget <= 0 disables eviction (the manager still tracks
// residency and serves explicit Freeze calls).
func New(budget int64, dir string) (*Manager, error) {
	ownDir := false
	if dir == "" {
		d, err := os.MkdirTemp("", "qppt-spill-*")
		if err != nil {
			return nil, fmt.Errorf("spill: %w", err)
		}
		dir, ownDir = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Manager{dir: dir, ownDir: ownDir, budget: budget}, nil
}

// Budget reports the configured byte budget.
func (m *Manager) Budget() int64 { return m.budget }

// A Handle tracks one registered structure.
type Handle struct {
	m      *Manager
	obj    Freezer
	size   func() int // resident bytes when live
	label  string
	file   string
	bytes  int64 // last observed resident size
	pins   int
	frozen bool
	failed bool // freeze failed once; never retried, stays resident

	lastUse          uint64
	spills, restores int
}

// Register adds a structure to the managed set and reclaims space
// immediately if its residency pushes the plan over budget. size must
// report the structure's current resident bytes; label names it in spill
// file names (diagnostics only).
func (m *Manager) Register(label string, obj Freezer, size func() int) *Handle {
	h := &Handle{m: m, obj: obj, size: size, label: label, bytes: int64(size())}
	m.mu.Lock()
	defer m.mu.Unlock()
	h.lastUse = m.tick()
	h.file = filepath.Join(m.dir, fmt.Sprintf("%03d-%s.spill", m.nextID, sanitize(label)))
	m.nextID++
	m.all = append(m.all, h)
	m.addResident(h.bytes)
	m.balanceLocked()
	return h
}

// Pin makes the handle's structure resident (thawing it if frozen) and
// protects it from eviction until the matching Unpin. Pins nest.
func (h *Handle) Pin() error {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	h.lastUse = m.tick()
	if h.frozen {
		if err := m.thawLocked(h); err != nil {
			return err
		}
	}
	h.pins++
	// The thaw may have pushed residency over budget; evict colder entries.
	m.balanceLocked()
	return nil
}

// Unpin releases one Pin. The structure becomes evictable again once all
// pins are released.
func (h *Handle) Unpin() {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if h.pins > 0 {
		h.pins--
	}
	m.balanceLocked()
}

// Counts reports how often this handle's structure was spilled and
// restored, for per-operator statistics.
func (h *Handle) Counts() (spills, restores int) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return h.spills, h.restores
}

// Frozen reports whether the structure is currently on disk.
func (h *Handle) Frozen() bool {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return h.frozen
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close deletes all spill state. Frozen entries become unusable; callers
// must Pin (thaw) anything they still need — typically the plan's result
// index — before closing.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var firstErr error
	if m.ownDir {
		firstErr = os.RemoveAll(m.dir)
	} else {
		for _, h := range m.all {
			if h.frozen {
				if err := os.Remove(h.file); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	m.all = nil
	return firstErr
}

// tick advances the LRU clock.
func (m *Manager) tick() uint64 {
	m.clock++
	return m.clock
}

func (m *Manager) addResident(delta int64) {
	m.stats.Resident += delta
	if m.stats.Resident > m.stats.Peak {
		m.stats.Peak = m.stats.Resident
	}
}

// balanceLocked freezes least-recently-used unpinned entries until the
// tracked residency fits the budget. Best-effort: with everything pinned
// (or all freezes failing) the plan simply runs over budget.
func (m *Manager) balanceLocked() {
	if m.budget <= 0 {
		return
	}
	for m.stats.Resident > m.budget {
		var victim *Handle
		for _, h := range m.all {
			if h.frozen || h.failed || h.pins > 0 {
				continue
			}
			if victim == nil || h.lastUse < victim.lastUse {
				victim = h
			}
		}
		if victim == nil {
			return
		}
		if err := m.freezeLocked(victim); err != nil {
			victim.failed = true // e.g. disk full: keep resident, stop retrying
		}
	}
}

// freezeLocked writes one entry to its spill file and, only once the file
// is flushed and closed successfully, drops the entry's storage. On any
// write error (e.g. disk full) the structure keeps its storage and stays
// fully usable — a failed freeze must never lose index data.
func (m *Manager) freezeLocked(h *Handle) error {
	h.bytes = int64(h.size()) // refresh: the index grew after registration
	f, err := os.Create(h.file)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := h.obj.WriteSnapshot(bw); err != nil {
		f.Close()
		os.Remove(h.file)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(h.file)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(h.file)
		return err
	}
	h.obj.Release()
	h.frozen = true
	h.spills++
	m.stats.Spills++
	m.stats.SpillBytes += h.bytes
	m.addResident(-h.bytes)
	return nil
}

// thawLocked restores one entry from its spill file and deletes the file
// (a later eviction rewrites it).
func (m *Manager) thawLocked(h *Handle) error {
	f, err := os.Open(h.file)
	if err != nil {
		return fmt.Errorf("spill: restore %s: %w", h.label, err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	if err := h.obj.Thaw(br); err != nil {
		f.Close()
		return fmt.Errorf("spill: restore %s: %w", h.label, err)
	}
	f.Close()
	os.Remove(h.file)
	h.frozen = false
	h.bytes = int64(h.size())
	h.restores++
	m.stats.Restores++
	m.stats.RestoreBytes += h.bytes
	m.addResident(h.bytes)
	return nil
}

// sanitize keeps spill file names to a portable character set.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
		if len(out) >= 48 {
			break
		}
	}
	return string(out)
}
