// Package spill implements the plan-scoped index spill manager (ROADMAP
// "Index spilling").
//
// QPPT builds an intermediate prefix-tree index per operator, so the total
// index footprint — not the base tables — is what caps the scale factor a
// plan can run. Because the index structures store compact pointers (arena
// indices, not machine addresses), a cold intermediate index is just a
// handful of large contiguous chunks that can be written to a temp file in
// one sequential pass and read back verbatim on next access.
//
// The manager tracks every registered intermediate with its resident byte
// count (the arenas' reserved chunk capacity — see arena.Slots.Bytes) and
// enforces a byte budget: whenever residency exceeds the budget, the
// least-recently-used unpinned entry is frozen to disk until the plan fits
// again. Pinning an entry thaws it if needed and protects it while an
// operator reads it. Eviction is best-effort — when everything live is
// pinned, the plan runs over budget rather than deadlocking.
//
// Freeze/Thaw I/O runs *outside* the manager lock: each entry carries its
// own freezing/thawing state, and pins on an entry mid-transition wait on
// a condition variable while other entries keep pinning, unpinning, and
// spilling concurrently. Each entry's I/O itself stays one sequential
// pass — the pattern the chunk layout is designed for.
//
// Three restore paths exist:
//
//   - the plain copying thaw (always available);
//   - a zero-copy mmap thaw (Config.Mmap): the spill file is mapped
//     privately and structures that implement MappedThawer adopt the
//     mapped pages as their arena chunks, so the tree interior is never
//     copied and untouched pages fault in lazily. Unsupported platforms
//     and structures fall back to the copying path;
//   - a partial thaw (Handle.PinRange): structures that implement
//     RangeThawer restore only the leaf chunks a consumer's key range
//     touches, using the per-chunk directory their freeze format records.
//
// Registered structures are read-only after registration (operators build
// an index once, then only scan and probe it); the manager exploits that
// by keeping spill files valid across thaws — re-evicting a clean entry
// releases its storage without rewriting a byte.
package spill

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"qppt/internal/arena"
)

// A Freezer can snapshot its storage into a byte stream, detach it, and
// restore it later. Both QPPT tree kinds (and the sharded index over
// them) implement it via their arena chunk export.
//
// Snapshot and Release are split so the manager can sequence them safely
// around file I/O: Release is called only after the snapshot is flushed
// and closed on disk. If writing fails at any point — including a
// buffered flush, or midway through a multi-shard stream — nothing has
// been detached and the structure simply stays resident.
type Freezer interface {
	// WriteSnapshot serializes the structure's storage to w, leaving the
	// storage attached and the structure fully usable.
	WriteSnapshot(w io.Writer) error
	// Release detaches the storage a successful WriteSnapshot captured;
	// the structure must not be used again until thawed.
	Release()
	// Thaw restores storage previously written by WriteSnapshot.
	Thaw(r io.Reader) error
}

// A MappedThawer can additionally restore itself zero-copy from an
// mmap-ed snapshot, adopting the mapped pages as its chunk storage.
type MappedThawer interface {
	Freezer
	ThawMapped(r *arena.MapReader) error
}

// A Materializer can copy any mmap-adopted storage back to the heap, so
// it survives the unmapping of its spill file (the manager materializes
// still-pinned mapped entries at Close — e.g. the plan's result index).
type Materializer interface {
	Materialize()
}

// A RangeThawer can restore just enough state to serve queries inside a
// key range, reading only the chunks that range touches. Calls are
// additive; a call spanning the full key space completes the restore
// (full == true).
type RangeThawer interface {
	Freezer
	ThawRange(f io.ReadSeeker, lo, hi uint64) (bytesRead int64, full bool, err error)
}

// Stats aggregates the manager's activity for plan statistics.
type Stats struct {
	// Spills counts freeze events; SpillBytes the bytes they released.
	Spills     int
	SpillBytes int64
	// Restores counts frozen→resident thaw events; RestoreBytes the
	// resident bytes they brought back.
	Restores     int
	RestoreBytes int64
	// RestoreBytesRead counts the spill-file bytes actually *copied*
	// during restores: the whole file on a plain thaw, only the rebuilt
	// leaf sections on an mmap thaw (adopted pages fault lazily), and
	// only the selected chunks on a partial thaw.
	RestoreBytesRead int64
	// MmapRestores counts zero-copy (mmap-adopting) thaws;
	// PartialRestores counts range-restricted thaw passes, including
	// top-ups of an already partially resident entry.
	MmapRestores    int
	PartialRestores int
	// Resident is the current tracked residency, Peak its high-water mark.
	Resident int64
	Peak     int64
}

// Config parameterizes a Manager.
type Config struct {
	// Budget caps the tracked resident bytes; <= 0 disables eviction (the
	// manager still tracks residency and serves explicit freezes).
	Budget int64
	// Dir is where spill files go; empty creates a private temp directory
	// that Close removes.
	Dir string
	// Mmap selects the zero-copy restore path for structures that support
	// it; ignored (with a copying fallback) where mmap is unavailable.
	Mmap bool
}

// A Manager owns the spill state of one plan execution.
type Manager struct {
	mu     sync.Mutex
	cond   *sync.Cond // broadcast whenever an entry leaves a transition state
	dir    string
	ownDir bool // dir was created by New and is removed by Close
	budget int64
	mmap   bool
	clock  uint64
	nextID int
	all    []*Handle
	stats  Stats
}

// New creates a manager enforcing the given byte budget, with spill files
// in dir (empty = private temp directory). Shorthand for NewConfig.
func New(budget int64, dir string) (*Manager, error) {
	return NewConfig(Config{Budget: budget, Dir: dir})
}

// NewConfig creates a manager from a full configuration.
func NewConfig(cfg Config) (*Manager, error) {
	dir, ownDir := cfg.Dir, false
	if dir == "" {
		d, err := os.MkdirTemp("", "qppt-spill-*")
		if err != nil {
			return nil, fmt.Errorf("spill: %w", err)
		}
		dir, ownDir = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	m := &Manager{dir: dir, ownDir: ownDir, budget: cfg.Budget, mmap: cfg.Mmap && mmapSupported}
	m.cond = sync.NewCond(&m.mu)
	return m, nil
}

// Budget reports the configured byte budget.
func (m *Manager) Budget() int64 { return m.budget }

// entry states; transitions (freezing, thawing) exclude pins and eviction
// of that entry while other entries proceed.
type entryState int

const (
	stResident entryState = iota
	stFreezing
	stThawing
	stFrozen
)

// A Handle tracks one registered structure.
type Handle struct {
	m         *Manager
	obj       Freezer
	size      func() int // resident bytes when live
	label     string
	file      string
	seq       int   // registration order; pin-ordering key for callers
	bytes     int64 // tracked resident size
	pins      int
	state     entryState
	partial   bool // resident, but only partially thawed (RangeThawer)
	failed    bool // freeze failed once; never retried, stays resident
	dropped   bool // executor dropped the intermediate; file gone
	fileValid bool // spill file holds a complete snapshot
	mapping   []byte
	// cov are the key intervals a partial entry is guaranteed to serve
	// (each interval was one ThawRange argument; overlapping/adjacent
	// intervals merged). Empty when fully resident or frozen.
	cov []keyIval

	lastUse          uint64
	spills, restores int
}

// keyIval is one inclusive thawed key interval.
type keyIval struct{ lo, hi uint64 }

// Seq reports the handle's registration ordinal. Callers that pin several
// handles while other pins are outstanding should acquire them in
// ascending Seq order: an uncovered range top-up waits for the entry's
// pins to drain, and ordered acquisition keeps those waits cycle-free.
func (h *Handle) Seq() int { return h.seq }

// covered reports whether [lo, hi] lies inside one thawed interval.
func (h *Handle) covered(lo, hi uint64) bool {
	for _, iv := range h.cov {
		if iv.lo <= lo && hi <= iv.hi {
			return true
		}
	}
	return false
}

// touches reports whether two inclusive intervals overlap or are
// adjacent. Merging such intervals is exact for coverage: chunks were
// restored for their union, which then is one gapless interval.
func touches(a, b keyIval) bool {
	if a.lo > b.hi { // b entirely below a (b.hi < ^0, so +1 is safe)
		return b.hi+1 == a.lo
	}
	if b.lo > a.hi {
		return a.hi+1 == b.lo
	}
	return true
}

// addCov records [lo, hi] as thawed, merging overlapping or adjacent
// intervals.
func (h *Handle) addCov(lo, hi uint64) {
	merged := keyIval{lo, hi}
	out := h.cov[:0]
	for _, iv := range h.cov {
		if touches(iv, merged) {
			merged.lo = min(merged.lo, iv.lo)
			merged.hi = max(merged.hi, iv.hi)
			continue
		}
		out = append(out, iv)
	}
	h.cov = append(out, merged)
}

// Register adds a structure to the managed set and reclaims space
// immediately if its residency pushes the plan over budget. size must
// report the structure's current resident bytes; label names it in spill
// file names (diagnostics only).
//
// A registered structure must not be mutated anymore: the manager keeps
// its spill file valid across thaws, so a re-eviction can release the
// storage without rewriting it. QPPT intermediates satisfy this by
// construction — an operator output is built once, then only read.
func (m *Manager) Register(label string, obj Freezer, size func() int) *Handle {
	h := &Handle{m: m, obj: obj, size: size, label: label, bytes: int64(size())}
	m.mu.Lock()
	defer m.mu.Unlock()
	h.lastUse = m.tick()
	h.seq = m.nextID
	h.file = filepath.Join(m.dir, fmt.Sprintf("%03d-%s.spill", m.nextID, sanitize(label)))
	m.nextID++
	m.all = append(m.all, h)
	m.addResident(h.bytes)
	m.balanceLocked()
	return h
}

// Pin makes the handle's structure fully resident (thawing it if frozen
// or partially thawed) and protects it from eviction until the matching
// Unpin. Pins nest.
func (h *Handle) Pin() error { return h.pin(nil, 0, ^uint64(0), false) }

// PinCtx is Pin with cancellation: a wait for another entry's in-flight
// freeze/thaw (or for pins to drain before a widening top-up) returns
// ctx.Err() as soon as the context is cancelled, instead of blocking until
// the transition completes. I/O already in flight for *this* call runs to
// completion either way — the spill file stays consistent — but a
// cancelled query stops queuing behind other entries' transitions.
func (h *Handle) PinCtx(ctx context.Context) error { return h.pin(ctx, 0, ^uint64(0), false) }

// PinRangeCtx is PinRange with cancellation, like PinCtx.
func (h *Handle) PinRangeCtx(ctx context.Context, lo, hi uint64) error {
	return h.pin(ctx, lo, hi, true)
}

// PinRange is Pin for a consumer that will only query keys in [lo, hi]:
// if the structure is frozen and supports range thawing, only the chunks
// that range touches are restored. The pin protects the entry like Pin.
//
// Later PinRange/Pin calls *from other consumers* widen the resident
// portion in place — a widening top-up waits for the current pins to
// drain first. For that reason a caller must NOT try to widen an entry
// while still holding its own pin on it (the wait would be for itself):
// release the pin before re-pinning with a wider range, or take a full
// Pin up front. Re-pinning within the already covered range is always
// fine. Callers pinning several handles should acquire them in Seq order
// (see Handle.Seq).
func (h *Handle) PinRange(lo, hi uint64) error { return h.pin(nil, lo, hi, true) }

func (h *Handle) pin(ctx context.Context, lo, hi uint64, ranged bool) error {
	m := h.m
	if ctx != nil {
		// A cancelled context must wake the cond waits below; the waiters
		// themselves then notice ctx.Err() and bail out.
		stop := context.AfterFunc(ctx, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer stop()
	}
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h.lastUse = m.tick()
	for {
		for h.state == stFreezing || h.state == stThawing {
			if err := ctxErr(); err != nil {
				return err
			}
			m.cond.Wait()
		}
		if err := ctxErr(); err != nil {
			return err
		}
		if h.dropped {
			return fmt.Errorf("spill: pin %s: intermediate was dropped", h.label)
		}
		if h.state == stFrozen {
			if err := m.thawLocked(h, lo, hi, ranged); err != nil {
				return err
			}
			break
		}
		if h.partial && !(ranged && h.covered(lo, hi)) {
			// The entry needs a wider restore. Topping up writes leaf
			// chunks in place, so it must not run while readers hold
			// pins: wait for them to drain. Callers pinning several
			// handles acquire them in Seq order, keeping this cycle-free.
			if h.pins > 0 {
				m.cond.Wait()
				continue
			}
			if err := m.thawLocked(h, lo, hi, ranged); err != nil {
				return err
			}
			break
		}
		break // fully resident, or partial with the range already covered
	}
	h.pins++
	// The thaw may have pushed residency over budget; evict colder entries.
	m.balanceLocked()
	return nil
}

// Unpin releases one Pin. The structure becomes evictable again once all
// pins are released.
func (h *Handle) Unpin() {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if h.pins > 0 {
		h.pins--
	}
	if h.pins == 0 {
		m.cond.Broadcast() // a range top-up may be waiting for the drain
	}
	m.balanceLocked()
}

// Drop removes the entry from the managed set: its spill file is deleted,
// any file mapping unmapped, and the handle forgotten by the manager (a
// session-scoped manager outlives many plans; retaining every dead plan's
// handles would grow without bound). The executor calls it when the last
// consumer of an intermediate is done, *before* recycling the structure's
// storage: Drop waits out any in-flight freeze/thaw and releases the
// mapping, after which recycling only ever touches heap chunks (mapped
// ones are skipped by the arenas). The handle's counters remain readable.
func (h *Handle) Drop() {
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	for h.state == stFreezing || h.state == stThawing {
		m.cond.Wait()
	}
	if h.dropped {
		return
	}
	if h.state == stResident {
		m.addResident(-h.bytes)
	}
	h.dropped = true
	h.state = stFrozen // not resident; never thawable again (dropped)
	h.partial = false
	h.cov = nil
	if h.mapping != nil {
		munmapFile(h.mapping)
		h.mapping = nil
	}
	if h.fileValid {
		os.Remove(h.file)
		h.fileValid = false
	}
	m.forgetLocked(h)
}

// Detach permanently removes the entry from the managed set while leaving
// its structure fully resident and self-contained: the structure is thawed
// if frozen or partial, mmap-adopted chunks are materialized to the heap,
// the mapping is unmapped and the spill file deleted. A plan running
// against a session-scoped manager detaches its *result* index this way —
// the result must outlive the plan, but the manager must not keep
// budgeting (or re-evicting) an index it can never see consumed again.
func (h *Handle) Detach() error {
	//qpptvet:ignore pinbalance balanced by the direct pins-- below, under m.mu where Unpin would deadlock
	if err := h.Pin(); err != nil { // fully resident + transitions drained
		return err
	}
	m := h.m
	m.mu.Lock()
	defer m.mu.Unlock()
	h.pins--
	if h.dropped {
		return nil
	}
	if h.mapping != nil {
		if mz, ok := h.obj.(Materializer); ok {
			mz.Materialize()
		}
		munmapFile(h.mapping)
		h.mapping = nil
	}
	if h.fileValid {
		os.Remove(h.file)
		h.fileValid = false
	}
	m.addResident(-h.bytes)
	h.dropped = true // never evictable or thawable again; storage is the caller's
	h.state = stResident
	m.forgetLocked(h)
	m.cond.Broadcast()
	return nil
}

// forgetLocked removes a handle from the managed slice.
func (m *Manager) forgetLocked(h *Handle) {
	for i, other := range m.all {
		if other == h {
			m.all = append(m.all[:i], m.all[i+1:]...)
			return
		}
	}
}

// Counts reports how often this handle's structure was spilled and
// restored, for per-operator statistics.
func (h *Handle) Counts() (spills, restores int) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return h.spills, h.restores
}

// Frozen reports whether the structure is currently on disk.
func (h *Handle) Frozen() bool {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return h.state == stFrozen || h.state == stFreezing
}

// Partial reports whether the structure is resident only for part of its
// key space (see PinRange).
func (h *Handle) Partial() bool {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	return h.partial
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close deletes all spill state. Frozen entries become unusable; callers
// must Pin (thaw) anything they still need — typically the plan's result
// index — before closing. Entries still backed by a file mapping are
// materialized (their mapped chunks copied to the heap) before the
// mapping is dropped, so a pinned result index stays valid after Close.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Snapshot the managed set: waiting out a transition releases the
	// lock, and a still-unwinding plan may Drop/Detach handles meanwhile —
	// which mutates m.all in place and would corrupt a live range over it.
	all := append([]*Handle(nil), m.all...)
	for _, h := range all {
		for h.state == stFreezing || h.state == stThawing {
			m.cond.Wait()
		}
		if h.dropped {
			continue // left the set while we waited; Drop/Detach cleaned up
		}
		if h.mapping != nil {
			if mz, ok := h.obj.(Materializer); ok && h.state == stResident {
				mz.Materialize()
			}
			munmapFile(h.mapping)
			h.mapping = nil
		}
	}
	var firstErr error
	if m.ownDir {
		firstErr = os.RemoveAll(m.dir)
	} else {
		for _, h := range all {
			if h.fileValid {
				if err := os.Remove(h.file); err != nil && firstErr == nil {
					firstErr = err
				}
				h.fileValid = false
			}
		}
	}
	m.all = nil
	return firstErr
}

// tick advances the LRU clock.
func (m *Manager) tick() uint64 {
	m.clock++
	return m.clock
}

func (m *Manager) addResident(delta int64) {
	m.stats.Resident += delta
	if m.stats.Resident > m.stats.Peak {
		m.stats.Peak = m.stats.Resident
	}
}

// balanceLocked freezes least-recently-used unpinned entries until the
// tracked residency fits the budget. Best-effort: with everything pinned
// (or all freezes failing) the plan simply runs over budget. The manager
// lock is dropped around each victim's file I/O; concurrent balancers
// skip entries already mid-transition.
func (m *Manager) balanceLocked() {
	if m.budget <= 0 {
		return
	}
	for m.stats.Resident > m.budget {
		var victim *Handle
		for _, h := range m.all {
			if h.state != stResident || h.failed || h.dropped || h.pins > 0 {
				continue
			}
			if victim == nil || h.lastUse < victim.lastUse {
				victim = h
			}
		}
		if victim == nil {
			return
		}
		m.freezeLocked(victim)
	}
}

// freezeLocked writes one entry to its spill file (unless the file is
// still valid from an earlier freeze) and, only once the file is flushed
// and closed successfully, drops the entry's storage. On any write error
// (e.g. disk full) the structure keeps its storage and stays fully usable
// — a failed freeze must never lose index data. The manager lock is
// released around the file I/O; the entry's freezing state keeps pins and
// concurrent balancers away from it meanwhile.
func (m *Manager) freezeLocked(h *Handle) {
	h.bytes = int64(h.size()) // refresh: the index grew after registration
	h.state = stFreezing
	var err error
	if !h.fileValid {
		m.mu.Unlock()
		err = writeSnapshotFile(h.file, h.obj)
		m.mu.Lock()
	}
	if err != nil {
		h.failed = true // e.g. disk full: keep resident, stop retrying
		h.state = stResident
		m.cond.Broadcast()
		return
	}
	h.fileValid = true
	h.obj.Release()
	if h.mapping != nil {
		// Release dropped the last references into the mapped pages.
		munmapFile(h.mapping)
		h.mapping = nil
	}
	h.state = stFrozen
	h.partial = false
	h.cov = nil
	h.spills++
	m.stats.Spills++
	m.stats.SpillBytes += h.bytes
	m.addResident(-h.bytes)
	m.cond.Broadcast()
}

// writeSnapshotFile writes one sequential snapshot of obj to path,
// removing the file again on any error.
func writeSnapshotFile(path string, obj Freezer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := obj.WriteSnapshot(bw); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// thawLocked restores one entry from its spill file — fully, zero-copy
// via mmap, or partially for a range-restricted consumer — with the
// manager lock released around the I/O. The spill file stays on disk and
// valid, so a later re-eviction of the (read-only) structure is free.
func (m *Manager) thawLocked(h *Handle, lo, hi uint64, ranged bool) error {
	fromFrozen := h.state == stFrozen
	wasBytes := h.bytes
	if !fromFrozen {
		// Partially resident: widening top-up via the range thaw path.
		ranged = true
	}
	h.state = stThawing
	m.mu.Unlock()

	var (
		err       error
		bytesRead int64
		full      = true
		mapped    []byte
		mmapped   bool
	)
	switch {
	case ranged && asRangeThawer(h.obj) != nil:
		rt := asRangeThawer(h.obj)
		var f *os.File
		if f, err = os.Open(h.file); err == nil {
			bytesRead, full, err = rt.ThawRange(f, lo, hi)
			f.Close()
		}
	case m.mmap && asMappedThawer(h.obj) != nil:
		mt := asMappedThawer(h.obj)
		mapped, err = mmapSnapshot(h.file)
		if err == nil {
			mr := arena.NewMapReader(mapped)
			if err = mt.ThawMapped(mr); err == nil {
				bytesRead = mr.Copied()
				mmapped = true
			} else {
				munmapFile(mapped)
				mapped = nil
			}
		}
		if err != nil {
			// Fall back to the copying path rather than failing the pin.
			err = copyThaw(h.file, h.obj)
			if err == nil {
				if fi, serr := os.Stat(h.file); serr == nil {
					bytesRead = fi.Size()
				}
			}
		}
	default:
		err = copyThaw(h.file, h.obj)
		if err == nil {
			if fi, serr := os.Stat(h.file); serr == nil {
				bytesRead = fi.Size()
			}
		}
	}

	m.mu.Lock()
	if err != nil {
		if fromFrozen {
			h.state = stFrozen
		} else {
			h.state = stResident // top-up failed; previous portion intact
		}
		m.cond.Broadcast()
		return fmt.Errorf("spill: restore %s: %w", h.label, err)
	}
	h.state = stResident
	h.partial = !full
	if full {
		h.cov = nil
	} else {
		h.addCov(lo, hi)
	}
	h.mapping = mapped
	h.bytes = int64(h.size())
	m.stats.RestoreBytesRead += bytesRead
	if mmapped {
		m.stats.MmapRestores++
	}
	if !full || !fromFrozen {
		m.stats.PartialRestores++
	}
	if fromFrozen {
		h.restores++
		m.stats.Restores++
		m.stats.RestoreBytes += h.bytes
		m.addResident(h.bytes)
	} else {
		m.addResident(h.bytes - wasBytes)
	}
	m.cond.Broadcast()
	return nil
}

// asRangeThawer and asMappedThawer fish the optional interfaces out of
// the registered object.
func asRangeThawer(obj Freezer) RangeThawer {
	if rt, ok := obj.(RangeThawer); ok {
		return rt
	}
	return nil
}

func asMappedThawer(obj Freezer) MappedThawer {
	if mt, ok := obj.(MappedThawer); ok {
		return mt
	}
	return nil
}

// copyThaw is the plain buffered restore.
func copyThaw(path string, obj Freezer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	br := bufio.NewReaderSize(f, 1<<20)
	err = obj.Thaw(br)
	f.Close()
	return err
}

// mmapSnapshot maps the whole spill file privately.
func mmapSnapshot(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return nil, fmt.Errorf("spill: empty snapshot %s", path)
	}
	return mmapFile(f, fi.Size())
}

// sanitize keeps spill file names to a portable character set.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
		if len(out) >= 48 {
			break
		}
	}
	return string(out)
}
