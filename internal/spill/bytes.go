package spill

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses a human byte-size string for the -membudget flags: a
// plain number is bytes, and the suffixes K/M/G/T — optionally followed by
// "B" or "iB", in any case, with optional whitespace before the suffix —
// scale by powers of 1024. Examples: "268435456", "256MiB", "64mb",
// "64 MiB", "1.5G". Negative sizes are rejected with a dedicated error.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("spill: empty byte size")
	}
	shift := uint(0)
	for _, unit := range []struct {
		sfx string
		sh  uint
	}{
		// Longest suffixes first so "mib" is never read as "b" after "mi".
		{"kib", 10}, {"mib", 20}, {"gib", 30}, {"tib", 40},
		{"kb", 10}, {"mb", 20}, {"gb", 30}, {"tb", 40},
		{"k", 10}, {"m", 20}, {"g", 30}, {"t", 40},
	} {
		if strings.HasSuffix(t, unit.sfx) {
			t, shift = strings.TrimSuffix(t, unit.sfx), unit.sh
			break
		}
	}
	t = strings.TrimSpace(t) // allow "64 MiB"
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("spill: bad byte size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("spill: negative byte size %q", s)
	}
	return int64(v * float64(int64(1)<<shift)), nil
}

// FormatBytes renders n with the largest power-of-1024 unit that keeps
// the value readable, for statistics output.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
