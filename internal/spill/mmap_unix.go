//go:build unix

package spill

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy thaw path; on non-unix builds the
// manager silently falls back to the plain copying restore.
const mmapSupported = true

// mmapFile maps the whole file privately. PROT_WRITE + MAP_PRIVATE gives
// copy-on-write semantics: adopted arena chunks may be written in place
// (block recycling zeroes, in-place updates) and the kernel copies the
// touched pages instead of dirtying the spill file.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
