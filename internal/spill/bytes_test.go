package spill

import (
	"strings"
	"testing"
)

func TestParseBytes(t *testing.T) {
	good := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"123", 123},
		{"64k", 64 << 10},
		{"64K", 64 << 10},
		{"64kb", 64 << 10},
		{"64KiB", 64 << 10},
		{"256MiB", 256 << 20},
		{"256mb", 256 << 20},
		{"64mb", 64 << 20},
		{"64 MiB", 64 << 20}, // space-separated suffix
		{"64 mb", 64 << 20},
		{" 2 G ", 2 << 30},
		{"1.5g", 3 << 29},
		{"2T", 2 << 40},
		{"8 tib", 8 << 40},
	}
	for _, c := range good {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	bad := []struct {
		in      string
		errLike string
	}{
		{"", "empty"},
		{"x", "bad byte size"},
		{"12q", "bad byte size"},
		{"mib", "bad byte size"},
		{"-5", "negative"},
		{"-1.5GiB", "negative"},
		{"-0.5 mb", "negative"},
	}
	for _, c := range bad {
		_, err := ParseBytes(c.in)
		if err == nil {
			t.Errorf("ParseBytes(%q) did not fail", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.errLike) {
			t.Errorf("ParseBytes(%q) error %q, want mention of %q", c.in, err, c.errLike)
		}
	}
}
