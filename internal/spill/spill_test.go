package spill

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"qppt/internal/arena"
)

// fakeIndex is a minimal Freezer: a Slots arena plus a payload count, so
// the manager's byte accounting and freeze/thaw plumbing can be tested
// without dragging in a whole tree.
type fakeIndex struct {
	slots arena.Slots
}

func newFakeIndex(blocks int, seed uint32) *fakeIndex {
	fi := &fakeIndex{slots: arena.MakeSlots(16)}
	for i := 0; i < blocks; i++ {
		blk := fi.slots.Block(fi.slots.Alloc())
		for j := range blk {
			blk[j] = seed + uint32(i*len(blk)+j)
		}
	}
	return fi
}

func (f *fakeIndex) WriteSnapshot(w io.Writer) error { return f.slots.WriteChunks(w) }
func (f *fakeIndex) Release()                        { f.slots.Detach() }
func (f *fakeIndex) Thaw(r io.Reader) error          { return f.slots.ReadChunks(r) }
func (f *fakeIndex) Bytes() int                      { return f.slots.Bytes() }

func (f *fakeIndex) verify(t *testing.T, blocks int, seed uint32) {
	t.Helper()
	for i := 0; i < blocks; i++ {
		blk := f.slots.Block(uint32(i))
		for j, v := range blk {
			if v != seed+uint32(i*len(blk)+j) {
				t.Fatalf("block %d slot %d = %d after restore", i, j, v)
			}
		}
	}
}

func TestManagerEvictsLRUAndRestores(t *testing.T) {
	const blocks = 64 // 64 blocks × 16 slots × 4 B = 4 KiB < one chunk ⇒ Bytes = 256 KiB
	a := newFakeIndex(blocks, 1000)
	oneIdx := int64(a.Bytes())
	// Budget fits one index but not two: registering the second must
	// freeze the first (the least recently used).
	m, err := New(oneIdx+oneIdx/2, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ha := m.Register("a", a, a.Bytes)
	if ha.Frozen() {
		t.Fatal("sole index frozen while under budget")
	}
	b := newFakeIndex(blocks, 2000)
	hb := m.Register("b", b, b.Bytes)
	if !ha.Frozen() {
		t.Fatal("LRU entry not frozen when the second index broke the budget")
	}
	if hb.Frozen() {
		t.Fatal("most recent entry frozen instead of the LRU one")
	}
	if a.Bytes() != 0 {
		t.Fatalf("frozen index still resident (%d bytes)", a.Bytes())
	}

	// Pinning the frozen entry must thaw it byte-identically and evict
	// the other one instead.
	if err := ha.Pin(); err != nil {
		t.Fatal(err)
	}
	a.verify(t, blocks, 1000)
	if !hb.Frozen() {
		t.Fatal("thaw did not rebalance onto the unpinned entry")
	}
	// A pinned entry must never be evicted, however cold.
	c := newFakeIndex(blocks, 3000)
	m.Register("c", c, c.Bytes)
	if ha.Frozen() {
		t.Fatal("pinned entry was evicted")
	}
	ha.Unpin()

	st := m.Stats()
	if st.Spills < 2 || st.Restores != 1 {
		t.Fatalf("stats = %+v, want >=2 spills and 1 restore", st)
	}
	if st.SpillBytes < oneIdx || st.RestoreBytes != oneIdx {
		t.Fatalf("byte counters = %+v", st)
	}
	if s, r := ha.Counts(); s < 1 || r != 1 {
		t.Fatalf("handle a counts = %d/%d", s, r)
	}
}

func TestManagerUnlimitedBudgetNeverSpills(t *testing.T) {
	m, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 4; i++ {
		fi := newFakeIndex(32, uint32(i))
		if h := m.Register(fmt.Sprint(i), fi, fi.Bytes); h.Frozen() {
			t.Fatal("spilled without a budget")
		}
	}
	if st := m.Stats(); st.Spills != 0 || st.Resident == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestManagerCloseRemovesOwnDir(t *testing.T) {
	m, err := New(1, "") // everything spills
	if err != nil {
		t.Fatal(err)
	}
	fi := newFakeIndex(32, 9)
	h := m.Register("x", fi, fi.Bytes)
	if !h.Frozen() {
		t.Fatal("not frozen under 1-byte budget")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(m.dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir survived Close: %v", err)
	}
}

func TestManagerExplicitDirKeepsDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spills")
	m, err := New(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	fi := newFakeIndex(32, 9)
	m.Register("x", fi, fi.Bytes)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("caller-owned dir removed: %v", err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("spill files survived Close: %d entries", len(ents))
	}
}

// Concurrent pin/unpin traffic from several goroutines (the shape the
// plan executor generates when branches resolve in parallel) must stay
// race-free and leave every index restorable.
func TestManagerConcurrentPinUnpin(t *testing.T) {
	m, err := New(1, "") // maximal pressure: everything evictable spills
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const n = 8
	idxs := make([]*fakeIndex, n)
	handles := make([]*Handle, n)
	for i := range idxs {
		idxs[i] = newFakeIndex(16, uint32(100*i))
		handles[i] = m.Register(fmt.Sprint(i), idxs[i], idxs[i].Bytes)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				h := handles[(w*13+r)%n]
				if err := h.Pin(); err != nil {
					t.Errorf("pin: %v", err)
					return
				}
				idxs[(w*13+r)%n].verify(t, 16, uint32(100*((w*13+r)%n)))
				h.Unpin()
			}
		}(w)
	}
	wg.Wait()
	if st := m.Stats(); st.Spills == 0 || st.Restores == 0 {
		t.Fatalf("no spill traffic under pressure: %+v", st)
	}
}

// failingIndex errors partway through its snapshot — the shape of a
// disk-full or mid-shard failure.
type failingIndex struct {
	fakeIndex
	calls int
}

func (f *failingIndex) WriteSnapshot(w io.Writer) error {
	f.calls++
	if err := f.slots.WriteChunks(w); err != nil {
		return err
	}
	return fmt.Errorf("synthetic write failure")
}

// A failed freeze must leave the index resident and fully usable — the
// manager may only detach storage after the snapshot is safely on disk —
// and must not be retried in a hot loop.
func TestFailedFreezeKeepsIndexResident(t *testing.T) {
	m, err := New(1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	fi := &failingIndex{fakeIndex: *newFakeIndex(32, 500)}
	h := m.Register("flaky", fi, fi.Bytes)
	if h.Frozen() {
		t.Fatal("failed freeze marked the entry frozen")
	}
	if fi.Bytes() == 0 {
		t.Fatal("failed freeze detached the index storage")
	}
	fi.verify(t, 32, 500) // data intact, index still queryable
	if fi.calls != 1 {
		t.Fatalf("freeze retried %d times after failing", fi.calls)
	}
	// Further pressure must not retry the failed entry.
	other := newFakeIndex(32, 600)
	m.Register("ok", other, other.Bytes)
	if fi.calls != 1 {
		t.Fatalf("failed entry retried under later pressure (%d calls)", fi.calls)
	}
	if err := h.Pin(); err != nil { // resident: pin is a no-op thaw-wise
		t.Fatal(err)
	}
	fi.verify(t, 32, 500)
	h.Unpin()
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"123":    123,
		"64k":    64 << 10,
		"64K":    64 << 10,
		"64kb":   64 << 10,
		"64KiB":  64 << 10,
		"256MiB": 256 << 20,
		"256mb":  256 << 20,
		"1.5g":   3 << 29,
		"2T":     2 << 40,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-5", "12q", "mib"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) did not fail", bad)
		}
	}
}
