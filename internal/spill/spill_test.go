package spill

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"qppt/internal/arena"
	"qppt/internal/prefixtree"
)

// fakeIndex is a minimal Freezer: a Slots arena plus a payload count, so
// the manager's byte accounting and freeze/thaw plumbing can be tested
// without dragging in a whole tree.
type fakeIndex struct {
	slots arena.Slots
}

func newFakeIndex(blocks int, seed uint32) *fakeIndex {
	fi := &fakeIndex{slots: arena.MakeSlots(16)}
	for i := 0; i < blocks; i++ {
		blk := fi.slots.Block(fi.slots.Alloc())
		for j := range blk {
			blk[j] = seed + uint32(i*len(blk)+j)
		}
	}
	return fi
}

func (f *fakeIndex) WriteSnapshot(w io.Writer) error { return f.slots.WriteChunks(w) }
func (f *fakeIndex) Release()                        { f.slots.Detach() }
func (f *fakeIndex) Thaw(r io.Reader) error          { return f.slots.ReadChunks(r) }
func (f *fakeIndex) Bytes() int                      { return f.slots.Bytes() }

func (f *fakeIndex) verify(t *testing.T, blocks int, seed uint32) {
	t.Helper()
	for i := 0; i < blocks; i++ {
		blk := f.slots.Block(uint32(i))
		for j, v := range blk {
			if v != seed+uint32(i*len(blk)+j) {
				t.Fatalf("block %d slot %d = %d after restore", i, j, v)
			}
		}
	}
}

func TestManagerEvictsLRUAndRestores(t *testing.T) {
	const blocks = 64 // 64 blocks × 16 slots × 4 B = 4 KiB < one chunk ⇒ Bytes = 256 KiB
	a := newFakeIndex(blocks, 1000)
	oneIdx := int64(a.Bytes())
	// Budget fits one index but not two: registering the second must
	// freeze the first (the least recently used).
	m, err := New(oneIdx+oneIdx/2, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ha := m.Register("a", a, a.Bytes)
	if ha.Frozen() {
		t.Fatal("sole index frozen while under budget")
	}
	b := newFakeIndex(blocks, 2000)
	hb := m.Register("b", b, b.Bytes)
	if !ha.Frozen() {
		t.Fatal("LRU entry not frozen when the second index broke the budget")
	}
	if hb.Frozen() {
		t.Fatal("most recent entry frozen instead of the LRU one")
	}
	if a.Bytes() != 0 {
		t.Fatalf("frozen index still resident (%d bytes)", a.Bytes())
	}

	// Pinning the frozen entry must thaw it byte-identically and evict
	// the other one instead.
	if err := ha.Pin(); err != nil {
		t.Fatal(err)
	}
	a.verify(t, blocks, 1000)
	if !hb.Frozen() {
		t.Fatal("thaw did not rebalance onto the unpinned entry")
	}
	// A pinned entry must never be evicted, however cold.
	c := newFakeIndex(blocks, 3000)
	m.Register("c", c, c.Bytes)
	if ha.Frozen() {
		t.Fatal("pinned entry was evicted")
	}
	ha.Unpin()

	st := m.Stats()
	if st.Spills < 2 || st.Restores != 1 {
		t.Fatalf("stats = %+v, want >=2 spills and 1 restore", st)
	}
	if st.SpillBytes < oneIdx || st.RestoreBytes != oneIdx {
		t.Fatalf("byte counters = %+v", st)
	}
	if s, r := ha.Counts(); s < 1 || r != 1 {
		t.Fatalf("handle a counts = %d/%d", s, r)
	}
}

func TestManagerUnlimitedBudgetNeverSpills(t *testing.T) {
	m, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 4; i++ {
		fi := newFakeIndex(32, uint32(i))
		if h := m.Register(fmt.Sprint(i), fi, fi.Bytes); h.Frozen() {
			t.Fatal("spilled without a budget")
		}
	}
	if st := m.Stats(); st.Spills != 0 || st.Resident == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestManagerCloseRemovesOwnDir(t *testing.T) {
	m, err := New(1, "") // everything spills
	if err != nil {
		t.Fatal(err)
	}
	fi := newFakeIndex(32, 9)
	h := m.Register("x", fi, fi.Bytes)
	if !h.Frozen() {
		t.Fatal("not frozen under 1-byte budget")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(m.dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir survived Close: %v", err)
	}
}

func TestManagerExplicitDirKeepsDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spills")
	m, err := New(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	fi := newFakeIndex(32, 9)
	m.Register("x", fi, fi.Bytes)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("caller-owned dir removed: %v", err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("spill files survived Close: %d entries", len(ents))
	}
}

// Concurrent pin/unpin traffic from several goroutines (the shape the
// plan executor generates when branches resolve in parallel) must stay
// race-free and leave every index restorable.
func TestManagerConcurrentPinUnpin(t *testing.T) {
	m, err := New(1, "") // maximal pressure: everything evictable spills
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const n = 8
	idxs := make([]*fakeIndex, n)
	handles := make([]*Handle, n)
	for i := range idxs {
		idxs[i] = newFakeIndex(16, uint32(100*i))
		handles[i] = m.Register(fmt.Sprint(i), idxs[i], idxs[i].Bytes)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				h := handles[(w*13+r)%n]
				if err := h.Pin(); err != nil {
					t.Errorf("pin: %v", err)
					return
				}
				idxs[(w*13+r)%n].verify(t, 16, uint32(100*((w*13+r)%n)))
				h.Unpin()
			}
		}(w)
	}
	wg.Wait()
	if st := m.Stats(); st.Spills == 0 || st.Restores == 0 {
		t.Fatalf("no spill traffic under pressure: %+v", st)
	}
}

// failingIndex errors partway through its snapshot — the shape of a
// disk-full or mid-shard failure.
type failingIndex struct {
	fakeIndex
	calls int
}

func (f *failingIndex) WriteSnapshot(w io.Writer) error {
	f.calls++
	if err := f.slots.WriteChunks(w); err != nil {
		return err
	}
	return fmt.Errorf("synthetic write failure")
}

// A failed freeze must leave the index resident and fully usable — the
// manager may only detach storage after the snapshot is safely on disk —
// and must not be retried in a hot loop.
func TestFailedFreezeKeepsIndexResident(t *testing.T) {
	m, err := New(1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	fi := &failingIndex{fakeIndex: *newFakeIndex(32, 500)}
	h := m.Register("flaky", fi, fi.Bytes)
	if h.Frozen() {
		t.Fatal("failed freeze marked the entry frozen")
	}
	if fi.Bytes() == 0 {
		t.Fatal("failed freeze detached the index storage")
	}
	fi.verify(t, 32, 500) // data intact, index still queryable
	if fi.calls != 1 {
		t.Fatalf("freeze retried %d times after failing", fi.calls)
	}
	// Further pressure must not retry the failed entry.
	other := newFakeIndex(32, 600)
	m.Register("ok", other, other.Bytes)
	if fi.calls != 1 {
		t.Fatalf("failed entry retried under later pressure (%d calls)", fi.calls)
	}
	if err := h.Pin(); err != nil { // resident: pin is a no-op thaw-wise
		t.Fatal(err)
	}
	fi.verify(t, 32, 500)
	h.Unpin()
}

// buildTree returns a prefix tree of n sequential keys; *prefixtree.Tree
// implements Freezer, RangeThawer and MappedThawer directly, so the
// manager-level restore paths can be tested against the real structure.
func buildTree(n int) *prefixtree.Tree {
	tr := prefixtree.MustNew(prefixtree.Config{PrefixLen: 4, KeyBits: 32, PayloadWidth: 1})
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i), []uint64{uint64(i) * 3})
	}
	return tr
}

func checkTreeRange(t *testing.T, tr *prefixtree.Tree, lo, hi uint64) {
	t.Helper()
	got := 0
	tr.Range(lo, hi, func(lf *prefixtree.Leaf) bool {
		if lf.Vals.First()[0] != lf.Key*3 {
			t.Fatalf("key %d: wrong payload", lf.Key)
		}
		got++
		return true
	})
	if got != int(hi-lo+1) {
		t.Fatalf("range [%d,%d] visited %d keys", lo, hi, got)
	}
}

// PinRange on a frozen entry must restore only part of the structure
// (partial counters move, plain restore counters behave like a thaw),
// serve in-range queries, and a later full Pin must complete it in place.
func TestManagerPinRangePartialThaw(t *testing.T) {
	m, err := New(1, "") // everything unpinned spills
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tr := buildTree(40000)
	h := m.Register("sel", tr, tr.Bytes)
	if !h.Frozen() {
		t.Fatal("entry not frozen under 1-byte budget")
	}
	if err := h.PinRange(1000, 2000); err != nil {
		t.Fatal(err)
	}
	if !h.Partial() || !tr.Partial() {
		t.Fatal("narrow PinRange did not leave the entry partial")
	}
	checkTreeRange(t, tr, 1000, 2000)
	st := m.Stats()
	if st.PartialRestores == 0 || st.Restores != 1 {
		t.Fatalf("stats = %+v", st)
	}
	partialRead := st.RestoreBytesRead
	if partialRead == 0 {
		t.Fatal("no restore bytes recorded")
	}

	// A covered range re-pins without extra I/O, even while pinned.
	if err := h.PinRange(1200, 1300); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().RestoreBytesRead; got != partialRead {
		t.Fatalf("covered PinRange read %d more bytes", got-partialRead)
	}
	h.Unpin()
	h.Unpin()

	// A full Pin tops the entry up in place.
	if err := h.Pin(); err != nil {
		t.Fatal(err)
	}
	if h.Partial() || tr.Partial() {
		t.Fatal("full Pin left the entry partial")
	}
	checkTreeRange(t, tr, 0, 39999)
	if got := m.Stats().RestoreBytesRead; got <= partialRead {
		t.Fatal("top-up read no further bytes")
	}
	h.Unpin()
}

// With Config.Mmap the restore must adopt mapped pages (MmapRestores
// counter, far fewer copied bytes than the file holds), stay re-evictable
// without rewriting, and Close must materialize a still-pinned entry so
// the caller's index survives the unmapping.
func TestManagerMmapThawAndMaterialize(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	m, err := NewConfig(Config{Budget: 1, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	// Large enough that the node arena spans multiple *full* 256 KiB
	// chunks — only full chunks can be adopted from the mapping.
	const n = 200000
	tr := buildTree(n)
	h := m.Register("idx", tr, tr.Bytes)
	if !h.Frozen() {
		t.Fatal("not frozen")
	}
	fi, err := os.Stat(h.file)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Pin(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.MmapRestores != 1 {
		t.Fatalf("MmapRestores = %d", st.MmapRestores)
	}
	if st.RestoreBytesRead >= fi.Size() {
		t.Fatalf("mmap restore copied %d of %d file bytes", st.RestoreBytesRead, fi.Size())
	}
	checkTreeRange(t, tr, 0, n-1)

	// Unpin → refreeze (no rewrite needed: the file is still valid) →
	// thaw again.
	h.Unpin()
	if !h.Frozen() {
		t.Fatal("unpinned entry not re-frozen under pressure")
	}
	//qpptvet:ignore pinbalance the test deliberately closes the manager with this pin held
	if err := h.Pin(); err != nil {
		t.Fatal(err)
	}
	checkTreeRange(t, tr, 0, n-1)

	// Close with the pin held: the mapping goes away, the data must not.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	checkTreeRange(t, tr, 0, n-1)
}

// Drop must delete the spill file and make further pins fail, while the
// handle's counters stay readable.
func TestHandleDrop(t *testing.T) {
	m, err := New(1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	tr := buildTree(5000)
	h := m.Register("dead", tr, tr.Bytes)
	if !h.Frozen() {
		t.Fatal("not frozen")
	}
	file := h.file
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("spill file missing before drop: %v", err)
	}
	h.Drop()
	if _, err := os.Stat(file); !os.IsNotExist(err) {
		t.Fatalf("spill file survived drop: %v", err)
	}
	if err := h.Pin(); err == nil {
		t.Fatal("pin on a dropped entry succeeded")
	}
	if s, _ := h.Counts(); s != 1 {
		t.Fatalf("spill count lost after drop: %d", s)
	}
}

// Detach must pull an entry out of the managed set with its structure
// fully resident and its spill state gone — the shared-manager path for a
// plan's result index.
func TestHandleDetach(t *testing.T) {
	m, err := New(1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	fi := newFakeIndex(64, 7)
	h := m.Register("result", fi, fi.Bytes)
	if !h.Frozen() {
		t.Fatal("1-byte budget did not freeze the entry")
	}
	file := h.file
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	fi.verify(t, 64, 7) // thawed and usable without any pin
	if _, err := os.Stat(file); !os.IsNotExist(err) {
		t.Fatalf("spill file survived detach: %v", err)
	}
	if got := m.Stats().Resident; got != 0 {
		t.Fatalf("detached entry still tracked: resident=%d", got)
	}
	// The manager no longer owns the entry: registering more load must
	// not re-evict it (nothing to evict — it left the set), and Close
	// must not touch its storage.
	other := newFakeIndex(64, 9)
	m.Register("other", other, other.Bytes)
	fi.verify(t, 64, 7)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	fi.verify(t, 64, 7)
}

// Dropped and detached handles must leave the managed slice — a
// session-lifetime manager would otherwise accumulate one dead handle per
// intermediate per query forever.
func TestDropForgetsHandle(t *testing.T) {
	m, err := New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 10; i++ {
		fi := newFakeIndex(4, uint32(i))
		h := m.Register(fmt.Sprintf("e%d", i), fi, fi.Bytes)
		if i%2 == 0 {
			h.Drop()
		} else if err := h.Detach(); err != nil {
			t.Fatal(err)
		}
	}
	m.mu.Lock()
	n := len(m.all)
	m.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d dead handles retained by the manager", n)
	}
}
