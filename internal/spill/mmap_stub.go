//go:build !unix

package spill

import (
	"fmt"
	"os"
)

// mmapSupported is false on platforms without a wired mmap; Manager falls
// back to the plain copying restore path.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("spill: mmap unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }
