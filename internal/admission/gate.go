// Package admission is the engine's front-door flow control: a
// max-concurrent-plans semaphore with a bounded, per-session fair queue
// in front of it.
//
// The gate exists because Engine.RunPlan historically accepted unbounded
// concurrent plans: every client that connected could push the engine
// past its memory budget at once, and a single greedy session could
// starve every other one. The gate bounds both failure modes:
//
//   - At most MaxPlans plans execute concurrently. Later arrivals queue.
//   - Each session owns a FIFO queue bounded at QueueDepth, and the gate
//     as a whole holds at most MaxPlans×QueueDepth waiters — so queue
//     memory stays bounded even when every query arrives on its own
//     session (one connection = one session in the wire server). Past
//     either bound, Acquire fails fast with ErrOverloaded — backpressure
//     the caller can surface as a typed protocol frame — instead of
//     queueing unbounded memory.
//   - Freed slots are granted round-robin across the sessions that have
//     waiters, FIFO within each session, so a session issuing hundreds
//     of plans cannot starve one issuing a single plan.
//
// Cancelling the Acquire context while queued abandons the wait; a grant
// that races the cancellation is re-donated to the next waiter, so slots
// never leak. The gate is small and allocation-light on the admit fast
// path (one mutex, no goroutines of its own).
package admission

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOverloaded is returned by Acquire when the caller's session queue is
// full: the server is past both its concurrency cap and its queue bound,
// and the honest answer is "try again later", not more buffering.
var ErrOverloaded = errors.New("admission: session queue full, server overloaded")

// DefaultQueueDepth bounds each session's wait queue when Config leaves
// QueueDepth zero: deep enough to ride out a burst the executing plans
// will absorb in a few slots' time, shallow enough that a stalled engine
// rejects instead of accumulating an unbounded backlog.
const DefaultQueueDepth = 16

// Config parameterizes a Gate.
type Config struct {
	// MaxPlans is the number of plans allowed to execute concurrently.
	// Values below 1 are treated as 1 — a gate that admits nothing would
	// deadlock every caller.
	MaxPlans int
	// QueueDepth bounds each session's FIFO of waiting plans
	// (0 = DefaultQueueDepth). MaxPlans×QueueDepth bounds the total
	// waiters across all sessions.
	QueueDepth int
}

// A waiter is one queued Acquire. The gate hands it a slot by setting
// granted and closing ready; a cancelled waiter is spliced out of its
// session queue, so the ring only ever holds live waiters.
type waiter struct {
	ready    chan struct{}
	enqueued time.Time
	granted  bool
}

// A sessQ is one session's FIFO of waiters.
type sessQ struct {
	id      uint64
	waiters []*waiter
}

// A Gate is the admission controller. It is safe for concurrent use.
type Gate struct {
	maxPlans   int
	queueDepth int

	mu       sync.Mutex
	running  int
	sessions map[uint64]*sessQ
	// ring is the round-robin order of sessions that currently have
	// waiters — the invariant is exact membership: a session is in the
	// ring iff it has at least one queued waiter. Grants pop the front
	// session's first waiter and rotate the session to the back while it
	// still has more.
	ring []*sessQ

	queued     int
	peakQueued int
	admitted   int64
	waited     int64
	rejected   int64
	waitTime   time.Duration
}

// New builds a gate from the configuration.
func New(cfg Config) *Gate {
	if cfg.MaxPlans < 1 {
		cfg.MaxPlans = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	return &Gate{
		maxPlans:   cfg.MaxPlans,
		queueDepth: cfg.QueueDepth,
		sessions:   make(map[uint64]*sessQ),
	}
}

// Acquire admits one plan for the session, blocking in the session's
// FIFO queue while the gate is at its concurrency cap. It returns nil
// when the plan may run (the caller must Release exactly once),
// ErrOverloaded when the session's queue is full, or ctx.Err() when the
// context is cancelled while queued.
func (g *Gate) Acquire(ctx context.Context, session uint64) error {
	g.mu.Lock()
	if g.running < g.maxPlans && len(g.ring) == 0 {
		// Fast path: a free slot and nobody queued ahead of us.
		g.running++
		g.admitted++
		g.mu.Unlock()
		return nil
	}
	sq := g.sessions[session]
	if (sq != nil && len(sq.waiters) >= g.queueDepth) || g.queued >= g.maxPlans*g.queueDepth {
		g.rejected++
		g.mu.Unlock()
		return ErrOverloaded
	}
	if sq == nil {
		sq = &sessQ{id: session}
		g.sessions[session] = sq
	}
	if len(sq.waiters) == 0 {
		g.ring = append(g.ring, sq)
	}
	w := &waiter{ready: make(chan struct{}), enqueued: time.Now()}
	sq.waiters = append(sq.waiters, w)
	g.queued++
	if g.queued > g.peakQueued {
		g.peakQueued = g.queued
	}
	g.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: we own a slot we will not
			// use. Donate it onward under the same lock.
			g.releaseLocked()
			g.mu.Unlock()
			return ctx.Err()
		}
		g.abandonLocked(sq, w)
		g.mu.Unlock()
		return ctx.Err()
	}
}

// abandonLocked splices a cancelled waiter out of its session queue,
// dropping the session from the ring (and the session map) when the
// queue empties.
func (g *Gate) abandonLocked(sq *sessQ, w *waiter) {
	for i, x := range sq.waiters {
		if x == w {
			sq.waiters = append(sq.waiters[:i], sq.waiters[i+1:]...)
			g.queued--
			break
		}
	}
	if len(sq.waiters) > 0 {
		return
	}
	for i, x := range g.ring {
		if x == sq {
			g.ring = append(g.ring[:i], g.ring[i+1:]...)
			break
		}
	}
	delete(g.sessions, sq.id)
}

// Release returns one admitted plan's slot, granting it to the next
// waiter round-robin across sessions (FIFO within a session) when any is
// queued.
func (g *Gate) Release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

// releaseLocked frees the caller's slot: hand it to the next queued
// waiter if one exists (running stays constant), otherwise decrement
// running. The ring invariant guarantees the front session has a waiter.
func (g *Gate) releaseLocked() {
	if len(g.ring) == 0 {
		g.running--
		return
	}
	sq := g.ring[0]
	w := sq.waiters[0]
	sq.waiters = sq.waiters[1:]
	g.ring = g.ring[1:]
	if len(sq.waiters) > 0 {
		g.ring = append(g.ring, sq)
	} else {
		delete(g.sessions, sq.id)
	}
	w.granted = true
	g.queued--
	g.admitted++
	g.waited++
	g.waitTime += time.Since(w.enqueued)
	close(w.ready)
}

// Stats is a point-in-time snapshot of the gate's counters.
type Stats struct {
	// MaxPlans/QueueDepth echo the configuration.
	MaxPlans   int
	QueueDepth int
	// Running is the number of plans currently admitted; Queued the
	// number currently waiting, PeakQueued the high-water mark.
	Running    int
	Queued     int
	PeakQueued int
	// Admitted counts every successful Acquire; Waited the subset that
	// queued first, with WaitTime their cumulative queue time. Rejected
	// counts ErrOverloaded answers.
	Admitted int64
	Waited   int64
	Rejected int64
	WaitTime time.Duration
}

// Stats snapshots the gate counters.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		MaxPlans:   g.maxPlans,
		QueueDepth: g.queueDepth,
		Running:    g.running,
		Queued:     g.queued,
		PeakQueued: g.peakQueued,
		Admitted:   g.admitted,
		Waited:     g.waited,
		Rejected:   g.rejected,
		WaitTime:   g.waitTime,
	}
}
