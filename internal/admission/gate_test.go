package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitQueued polls until the gate reports n queued waiters — the only
// way to order concurrent Acquire calls deterministically from outside.
func waitQueued(t *testing.T, g *Gate, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.Stats().Queued == n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("gate never reached %d queued waiters (stats %+v)", n, g.Stats())
}

// TestGateFastPath: an uncontended gate admits immediately and Release
// returns the slot.
func TestGateFastPath(t *testing.T) {
	g := New(Config{MaxPlans: 2})
	for i := 0; i < 10; i++ {
		if err := g.Acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	st := g.Stats()
	if st.Admitted != 10 || st.Waited != 0 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats after uncontended traffic: %+v", st)
	}
}

// TestGateRoundRobinFairness: three sessions enqueue three plans each,
// in session-batched order (A A A B B B C C C). Grants must interleave
// round-robin across sessions, FIFO within each: A1 B1 C1 A2 B2 C2 A3
// B3 C3 — not the session-batched arrival order.
func TestGateRoundRobinFairness(t *testing.T) {
	g := New(Config{MaxPlans: 1, QueueDepth: 16})
	if err := g.Acquire(context.Background(), 99); err != nil { // occupy the only slot
		t.Fatal(err)
	}

	order := make(chan string, 9)
	var wg sync.WaitGroup
	queued := 0
	for _, sess := range []uint64{1, 2, 3} {
		for i := 1; i <= 3; i++ {
			wg.Add(1)
			label := fmt.Sprintf("%c%d", 'A'+rune(sess-1), i)
			go func(sess uint64, label string) {
				defer wg.Done()
				if err := g.Acquire(context.Background(), sess); err != nil {
					t.Errorf("%s: %v", label, err)
					return
				}
				order <- label
				g.Release()
			}(sess, label)
			queued++
			waitQueued(t, g, queued) // pin the enqueue order
		}
	}

	g.Release() // free the slot; grants cascade one Release at a time
	wg.Wait()
	close(order)
	var got []string
	for l := range order {
		got = append(got, l)
	}
	want := []string{"A1", "B1", "C1", "A2", "B2", "C2", "A3", "B3", "C3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want round-robin %v", got, want)
		}
	}
	st := g.Stats()
	if st.Waited != 9 || st.WaitTime <= 0 {
		t.Errorf("stats recorded %d waiters / %v wait time, want 9 / > 0", st.Waited, st.WaitTime)
	}
	if st.PeakQueued != 9 {
		t.Errorf("peak queue depth %d, want 9", st.PeakQueued)
	}
}

// TestGateOverload: a session past its queue depth is rejected with
// ErrOverloaded — fast, without queueing.
func TestGateOverload(t *testing.T) {
	g := New(Config{MaxPlans: 2, QueueDepth: 2}) // global bound 4 stays clear
	if err := g.Acquire(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background(), 7); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background(), 7); err != nil {
				t.Error(err)
				return
			}
			g.Release()
		}()
		waitQueued(t, g, i+1)
	}
	if err := g.Acquire(context.Background(), 7); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third queued acquire returned %v, want ErrOverloaded", err)
	}
	// A different session still has queue room: the bound is per session.
	done := make(chan error, 1)
	go func() {
		err := g.Acquire(context.Background(), 8)
		if err == nil {
			g.Release()
		}
		done <- err
	}()
	waitQueued(t, g, 3)
	g.Release()
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("other session's acquire failed: %v", err)
	}
	if st := g.Stats(); st.Rejected != 1 {
		t.Errorf("rejected %d, want 1", st.Rejected)
	}
}

// TestGateGlobalBound: total waiters are bounded at MaxPlans×QueueDepth
// even when every waiter arrives on its own session — the wire server's
// shape, where one connection is one session with at most one query in
// flight, so the per-session bound alone could never shed load.
func TestGateGlobalBound(t *testing.T) {
	g := New(Config{MaxPlans: 1, QueueDepth: 2}) // global bound: 2 waiters
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(sess uint64) {
			defer wg.Done()
			if err := g.Acquire(context.Background(), sess); err != nil {
				t.Error(err)
				return
			}
			g.Release()
		}(uint64(2 + i))
		waitQueued(t, g, i+1)
	}
	if err := g.Acquire(context.Background(), 9); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire past the global bound returned %v, want ErrOverloaded", err)
	}
	g.Release()
	wg.Wait()
	if st := g.Stats(); st.Rejected != 1 {
		t.Errorf("rejected %d, want 1", st.Rejected)
	}
}

// TestGateCancelWhileQueued: cancelling a queued Acquire abandons the
// wait, removes the waiter from the queue, and never leaks the slot.
func TestGateCancelWhileQueued(t *testing.T) {
	g := New(Config{MaxPlans: 1})
	if err := g.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, 2) }()
	waitQueued(t, g, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("abandoned waiter still counted: %+v", st)
	}
	g.Release()
	// The slot must be free again.
	if err := g.Acquire(context.Background(), 3); err != nil {
		t.Fatalf("acquire after abandon: %v", err)
	}
	g.Release()
}

// TestGateCancelGrantRace: hammer grant-vs-cancel timing; whatever the
// interleaving, slots must neither leak nor double-free (the gate keeps
// admitting at full capacity afterwards).
func TestGateCancelGrantRace(t *testing.T) {
	g := New(Config{MaxPlans: 2, QueueDepth: 64})
	for round := 0; round < 200; round++ {
		if err := g.Acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- g.Acquire(ctx, 2) }()
		// Release and cancel race: the waiter either gets the slot (and
		// must then own it) or context.Canceled (and the donated slot
		// must stay available).
		go g.Release()
		cancel()
		if err := <-done; err == nil {
			g.Release()
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: %v", round, err)
		}
		// Drain to idle: the full capacity must be acquirable.
		for i := 0; i < 2; i++ {
			if err := g.Acquire(context.Background(), 9); err != nil {
				t.Fatalf("round %d: capacity leaked: %v", round, err)
			}
		}
		g.Release()
		g.Release()
	}
}

// TestGateConcurrencyBound: under a storm of concurrent plans from many
// sessions, the number running simultaneously never exceeds MaxPlans and
// every admit is eventually served.
func TestGateConcurrencyBound(t *testing.T) {
	const maxPlans = 3
	g := New(Config{MaxPlans: maxPlans, QueueDepth: 1000})
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(sess uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := g.Acquire(context.Background(), sess); err != nil {
					t.Error(err)
					return
				}
				n := running.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				running.Add(-1)
				g.Release()
			}
		}(uint64(c % 5))
	}
	wg.Wait()
	if p := peak.Load(); p > maxPlans {
		t.Errorf("observed %d concurrent plans, cap is %d", p, maxPlans)
	}
	st := g.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("gate not idle after drain: %+v", st)
	}
	if st.Admitted != 16*50 {
		t.Errorf("admitted %d, want %d", st.Admitted, 16*50)
	}
}
