package duplist

import "qppt/internal/arena"

// A Slab is an optional allocator for List memory. Without one, every
// first row and every duplicate segment of every key is a separate GC
// object (`make` per key); with one, an entire intermediate index draws
// its duplicate storage from a handful of large blocks owned by the tree
// that created it, and the memory is released wholesale when the operator
// drops the output index — there is nothing to free per key.
//
// Invariant: a Slab is SINGLE-WRITER, like the trees that own one.
// alloc bumps s.off/s.cur without synchronization, so concurrent
// AppendIn/AggregateIn through one slab race. This is a contract with
// package core, which is where slabs meet workers:
//
//   - each pool worker builds a private partial index — its own tree, its
//     own slab — so scan/probe parallelism never shares a slab;
//   - the parallel partition-wise merge gives every merge range its own
//     output shard (again: own tree, own slab) and re-inserts rows on the
//     worker that owns that shard;
//   - the spill manager freezes/thaws an index only while no operator has
//     it pinned, so no writer is active.
//
// Concurrent readers of a quiesced slab are safe (the merge's range scans
// rely on that). Anyone building indexes outside core must keep one
// writer per slab the same way.
type Slab struct {
	blocks [][]uint64
	cur    []uint64             // current block
	off    int                  // words used in cur
	segs   arena.Arena[segment] // segment headers, chunked like the data
	rec    *arena.Recycler      // optional plan-scoped block pool
}

const (
	// slabBlockWords is the slab block size: 8192 uint64 = 64 KiB, 16×
	// the largest duplicate segment, so block-tail waste stays under 7%.
	slabBlockWords = 8192
	// slabSegChunkBits: 512 segment headers (~10 KiB) per header chunk.
	slabSegChunkBits = 9
)

// NewSlab returns an empty slab.
func NewSlab() *Slab { return NewSlabIn(nil) }

// NewSlabIn returns an empty slab drawing its blocks (and segment-header
// chunks) from a plan-scoped recycler; Release parks them there again when
// the owning index is dropped. A nil recycler is plain NewSlab.
func NewSlabIn(rec *arena.Recycler) *Slab {
	s := &Slab{segs: arena.Make[segment](slabSegChunkBits), rec: rec}
	s.segs.SetRecycler(rec)
	return s
}

// newBlock returns a zeroed full-size slab block, recycled when possible.
func (s *Slab) newBlock() []uint64 {
	if b, ok := arena.GetChunk[uint64](s.rec, slabBlockWords); ok {
		return b[:slabBlockWords]
	}
	return make([]uint64, slabBlockWords)
}

// alloc carves n words off the current block, starting a fresh block when
// the remainder is too small. Requests larger than a block (very wide
// rows) get a dedicated block.
func (s *Slab) alloc(n int) []uint64 {
	if n > slabBlockWords {
		b := make([]uint64, n)
		s.blocks = append(s.blocks, b)
		return b
	}
	if len(s.cur)-s.off < n {
		s.cur = s.newBlock()
		s.off = 0
		s.blocks = append(s.blocks, s.cur)
	}
	d := s.cur[s.off : s.off+n : s.off+n]
	s.off += n
	return d
}

// Release returns the slab's storage — full-size blocks and the
// segment-header chunks — to the recycler it was created with, leaving the
// slab empty. The caller must guarantee nothing references segment memory
// anymore: Release is meant for the moment the owning index is dropped or
// frozen. Without a recycler it merely drops the references for the
// garbage collector. Oversized blocks (wider than a row of slabBlockWords)
// are never pooled.
func (s *Slab) Release() {
	for _, b := range s.blocks {
		if cap(b) == slabBlockWords {
			arena.PutChunk(s.rec, b)
		}
	}
	s.blocks, s.cur, s.off = nil, nil, 0
	s.segs.Reset()
}

// newSegment returns a segment header backed by slab memory.
func (s *Slab) newSegment(words int) *segment {
	return s.segs.At(s.segs.Alloc(segment{data: s.alloc(words)}))
}

// Blocks reports the number of slab blocks allocated.
func (s *Slab) Blocks() int { return len(s.blocks) }

// Bytes reports the heap footprint of the slab: all blocks (including
// unused tails) plus the segment-header arena.
func (s *Slab) Bytes() int {
	b := 0
	for _, blk := range s.blocks {
		b += len(blk) * wordBytes
	}
	return b + s.segs.Len()*segHeaderBytes
}

// segHeaderBytes estimates one segment header (next pointer + used int +
// slice header).
const segHeaderBytes = 40
