package duplist

// LinkedList is the naive per-row linked-list duplicate store that the paper
// argues against in Section 2.4 ("simply storing duplicates as linked lists
// usually results in random memory accesses"). It exists purely as the
// baseline for the duplicate-handling ablation benchmark: every row is a
// separate heap node, so a duplicate scan chases one pointer per row.
type LinkedList struct {
	head, tail *linkedNode
	n          int
	width      int
}

type linkedNode struct {
	next *linkedNode
	row  []uint64
}

// NewLinked returns an empty linked-list duplicate store for rows of the
// given width in uint64 words.
func NewLinked(width int) *LinkedList {
	if width < 0 {
		panic("duplist: negative row width")
	}
	return &LinkedList{width: width}
}

// Len reports the number of rows stored.
func (l *LinkedList) Len() int { return l.n }

// Append adds a copy of row to the list.
func (l *LinkedList) Append(row []uint64) {
	if len(row) != l.width {
		panic("duplist: row width mismatch")
	}
	nd := &linkedNode{row: make([]uint64, l.width)}
	copy(nd.row, row)
	if l.tail == nil {
		l.head = nd
	} else {
		l.tail.next = nd
	}
	l.tail = nd
	l.n++
}

// Scan calls visit for every row in insertion order, stopping early if
// visit returns false. It reports whether the scan ran to completion.
func (l *LinkedList) Scan(visit func(row []uint64) bool) bool {
	for nd := l.head; nd != nil; nd = nd.next {
		if !visit(nd.row) {
			return false
		}
	}
	return true
}

// Bytes estimates the heap footprint in bytes.
func (l *LinkedList) Bytes() int {
	return l.n * (l.width*wordBytes + 40) // row data + node header + slice header
}
