package duplist

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	l := New(2)
	if l.Len() != 0 || l.First() != nil {
		t.Errorf("empty list: Len=%d First=%v", l.Len(), l.First())
	}
	if !l.Scan(func([]uint64) bool { t.Error("visit on empty"); return true }) {
		t.Error("scan of empty list reported early stop")
	}
}

func TestAppendScanOrder(t *testing.T) {
	const width = 3
	l := New(width)
	var want [][]uint64
	for i := 0; i < 2000; i++ {
		row := []uint64{uint64(i), uint64(i * 2), uint64(i * 3)}
		l.Append(row)
		want = append(want, row)
	}
	if l.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", l.Len())
	}
	got := l.Rows()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("scan order differs from insertion order")
	}
}

func TestSegmentDoubling(t *testing.T) {
	// Width 1: rows are 8 bytes. First segment 64 B = 8 rows, then 16, 32,
	// ..., capped at 4 KB = 512 rows.
	l := New(1)
	l.Append([]uint64{0}) // inline first row, no segment
	if l.Segments() != 0 {
		t.Fatalf("first row allocated a segment")
	}
	for i := 1; i <= 8; i++ {
		l.Append([]uint64{uint64(i)})
	}
	if l.Segments() != 1 {
		t.Fatalf("after 8 duplicates: %d segments, want 1", l.Segments())
	}
	// Fill up to the cap and beyond: capacities 8,16,32,...,512,512,...
	for i := 9; i <= 8+16+32+64+128+256+512+512; i++ {
		l.Append([]uint64{uint64(i)})
	}
	// 8 segments of growing size plus one more at the 4 KB cap.
	if l.Segments() != 8 {
		t.Fatalf("segments = %d, want 8", l.Segments())
	}
	l.Append([]uint64{1})
	if l.Segments() != 9 {
		t.Fatalf("segments after cap overflow = %d, want 9", l.Segments())
	}
}

func TestManySegmentsScan(t *testing.T) {
	// Regression: lists with far more than 64 segments (large duplicate
	// chains past the 4 KB cap) must scan completely and in order.
	l := New(3)
	const n = 200000 // ~4.8 MB of rows → hundreds of 4 KB segments
	for i := 0; i < n; i++ {
		l.Append([]uint64{uint64(i), 0, 0})
	}
	if l.Segments() < 100 {
		t.Fatalf("expected >100 segments, got %d", l.Segments())
	}
	i := 0
	l.Scan(func(r []uint64) bool {
		if r[0] != uint64(i) {
			t.Fatalf("row %d out of order: %d", i, r[0])
		}
		i++
		return true
	})
	if i != n {
		t.Fatalf("scanned %d rows, want %d", i, n)
	}
}

func TestWideRows(t *testing.T) {
	// Rows wider than the first segment size must still fit one per segment.
	const width = 20 // 160 B > 64 B
	l := New(width)
	row := make([]uint64, width)
	for i := 0; i < 100; i++ {
		row[0] = uint64(i)
		l.Append(row)
	}
	if l.Len() != 100 {
		t.Fatalf("Len = %d", l.Len())
	}
	i := 0
	l.Scan(func(r []uint64) bool {
		if r[0] != uint64(i) {
			t.Fatalf("row %d has value %d", i, r[0])
		}
		i++
		return true
	})
}

func TestWidthZeroExistenceList(t *testing.T) {
	l := New(0)
	for i := 0; i < 10; i++ {
		l.Append(nil)
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	n := 0
	l.Scan(func(row []uint64) bool {
		if len(row) != 0 {
			t.Fatal("width-0 row has data")
		}
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("visited %d rows, want 10", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	l := New(1)
	for i := 0; i < 100; i++ {
		l.Append([]uint64{uint64(i)})
	}
	n := 0
	if l.Scan(func([]uint64) bool { n++; return n < 5 }) {
		t.Error("early-stopped scan reported completion")
	}
	if n != 5 {
		t.Errorf("visited %d rows, want 5", n)
	}
}

func TestAggregate(t *testing.T) {
	l := New(2)
	sum := func(dst, src []uint64) { dst[0] += src[0]; dst[1] += src[1] }
	for i := 1; i <= 10; i++ {
		l.Aggregate([]uint64{uint64(i), 1}, sum)
	}
	if l.Len() != 1 {
		t.Fatalf("aggregated list Len = %d, want 1", l.Len())
	}
	if got := l.First(); got[0] != 55 || got[1] != 10 {
		t.Fatalf("aggregate = %v, want [55 10]", got)
	}
}

func TestBytesGrowsSublinearlyVsLinked(t *testing.T) {
	seq := New(1)
	lnk := NewLinked(1)
	for i := 0; i < 10000; i++ {
		seq.Append([]uint64{uint64(i)})
		lnk.Append([]uint64{uint64(i)})
	}
	if seq.Bytes() >= lnk.Bytes() {
		t.Errorf("segmented list (%d B) not smaller than linked list (%d B)", seq.Bytes(), lnk.Bytes())
	}
}

func TestLinkedListScanOrder(t *testing.T) {
	l := NewLinked(2)
	for i := 0; i < 500; i++ {
		l.Append([]uint64{uint64(i), uint64(i + 1)})
	}
	if l.Len() != 500 {
		t.Fatalf("Len = %d", l.Len())
	}
	i := 0
	l.Scan(func(r []uint64) bool {
		if r[0] != uint64(i) || r[1] != uint64(i+1) {
			t.Fatalf("row %d = %v", i, r)
		}
		i++
		return true
	})
	if i != 500 {
		t.Fatalf("visited %d", i)
	}
}

func TestPropertyScanMatchesOracle(t *testing.T) {
	f := func(rows []uint16, width8 uint8) bool {
		width := int(width8%4) + 1
		l := New(width)
		var want [][]uint64
		row := make([]uint64, width)
		for _, v := range rows {
			for j := range row {
				row[j] = uint64(v) + uint64(j)
			}
			l.Append(row)
			cp := make([]uint64, width)
			copy(cp, row)
			want = append(want, cp)
		}
		got := l.Rows()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAppendPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on width mismatch")
		}
	}()
	New(2).Append([]uint64{1})
}
