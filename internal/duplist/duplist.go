// Package duplist implements QPPT's sequential duplicate handling
// (paper Section 2.4, Figure 4).
//
// All payload rows that share one index key are stored in a list of memory
// segments. The first row for a key lives in a small dedicated segment that
// also anchors the list; every further segment doubles the size of the
// previous one, starting at 64 bytes and capped at the 4 KB page size. The
// point of this layout is that a duplicate scan touches long sequential
// runs of memory — which hardware prefetchers can stream — instead of
// chasing a per-row linked list, while wasting at most half of the last
// segment. Beyond 4 KB, growing further buys nothing because hardware
// prefetching does not cross page boundaries, so segments stay at 4 KB.
//
// Rows are fixed-width tuples of uint64 attribute values; the width is a
// property of the owning indexed table. The same List type also backs
// aggregation-on-insert: instead of appending, an aggregator folds the new
// row into the stored first row (the paper's "grouping happens
// automatically as a side effect", Section 3).
//
// Segment memory normally comes from per-list `make` calls; the AppendIn /
// AggregateIn variants instead draw it from a Slab — a large-block
// allocator owned by the tree that embeds the lists — so a whole
// intermediate index allocates a handful of slabs instead of one object
// per key, and frees them wholesale when the index is dropped.
package duplist

const (
	// firstSegBytes is the size of the first duplicate segment (64 B).
	firstSegBytes = 64
	// maxSegBytes is the page-size cap for segment growth (4 KB).
	maxSegBytes = 4096
	wordBytes   = 8
)

// A List stores all payload rows for one index key.
//
// The zero value is not ready for use; create lists with New or Make so
// the row width is fixed. The first row is stored inline; duplicates go to
// doubling segments as in Figure 4 of the paper. The segment chain is kept
// oldest-first with head and tail pointers so scans stream the segments in
// insertion order without any per-scan bookkeeping; appends go to the tail
// (the paper anchors the chain at its newest segment instead — an
// equivalent O(1) choice).
type List struct {
	first      []uint64 // inline first row, len == width once set
	head, tail *segment // oldest first; nil until the first duplicate
	n          int      // total number of rows, including first
	width      int
}

// A segment is one sequential slab of duplicate rows.
type segment struct {
	next *segment // newer (larger) segment
	used int      // uint64 words used in data
	data []uint64
}

// New returns an empty list for rows of the given width (in uint64 words).
// Width 0 is allowed and models pure existence indexes (e.g. a unique
// probe-only index); such lists only count rows.
func New(width int) *List {
	if width < 0 {
		panic("duplist: negative row width")
	}
	return &List{width: width}
}

// Make returns an empty list by value, for embedding a list directly in a
// content node (one allocation and one pointer chase less per key).
func Make(width int) List {
	if width < 0 {
		panic("duplist: negative row width")
	}
	return List{width: width}
}

// Width reports the row width in uint64 words.
func (l *List) Width() int { return l.width }

// Len reports the number of rows stored.
func (l *List) Len() int { return l.n }

// First returns the first row stored for the key, or nil if the list is
// empty. The returned slice aliases list memory; callers must not grow it.
func (l *List) First() []uint64 {
	if l.n == 0 {
		return nil
	}
	return l.first
}

// Append adds a copy of row to the list.
func (l *List) Append(row []uint64) { l.AppendIn(nil, row) }

// AppendIn adds a copy of row to the list, drawing any new segment or
// first-row memory from slab. A nil slab falls back to per-list `make`
// calls — the pre-slab behaviour. A list must stick to one slab (or to
// none) for its whole lifetime.
func (l *List) AppendIn(slab *Slab, row []uint64) {
	if len(row) != l.width {
		panic("duplist: row width mismatch")
	}
	l.n++
	if l.n == 1 {
		if l.first == nil {
			l.first = allocRow(slab, l.width)
		}
		copy(l.first, row)
		return
	}
	if l.width == 0 {
		return // existence only: nothing to store
	}
	dst := l.alloc(slab)
	copy(dst, row)
}

// Aggregate folds row into the stored first row using fold, or stores it as
// the first row if the list is empty. It is the insertion path used by
// grouping/aggregating indexes: the list then always holds exactly one row.
func (l *List) Aggregate(row []uint64, fold func(dst, src []uint64)) {
	l.AggregateIn(nil, row, fold)
}

// AggregateIn is Aggregate drawing first-row memory from slab (nil slab =
// per-list make, as with AppendIn).
func (l *List) AggregateIn(slab *Slab, row []uint64, fold func(dst, src []uint64)) {
	if len(row) != l.width {
		panic("duplist: row width mismatch")
	}
	if l.n == 0 {
		l.n = 1
		if l.first == nil {
			l.first = allocRow(slab, l.width)
		}
		copy(l.first, row)
		return
	}
	fold(l.first, row)
}

// allocRow reserves one row of storage, from the slab when one is given.
func allocRow(slab *Slab, width int) []uint64 {
	if slab != nil {
		return slab.alloc(width)
	}
	return make([]uint64, width)
}

// alloc reserves space for one row and returns the destination slice.
func (l *List) alloc(slab *Slab) []uint64 {
	if l.tail == nil || l.tail.used+l.width > len(l.tail.data) {
		l.grow(slab)
	}
	s := l.tail
	dst := s.data[s.used : s.used+l.width]
	s.used += l.width
	return dst
}

// grow appends a new segment of twice the previous capacity, starting at
// 64 B and capping at the 4 KB page size (Figure 4). Segment header and
// data come from the slab when one is given.
func (l *List) grow(slab *Slab) {
	words := firstSegBytes / wordBytes
	if l.tail != nil {
		words = 2 * len(l.tail.data)
		if words > maxSegBytes/wordBytes {
			words = maxSegBytes / wordBytes
		}
	}
	if words < l.width { // very wide rows: at least one row per segment
		words = l.width
	}
	var seg *segment
	if slab != nil {
		seg = slab.newSegment(words)
	} else {
		seg = &segment{data: make([]uint64, words)}
	}
	if l.tail == nil {
		l.head, l.tail = seg, seg
	} else {
		l.tail.next = seg
		l.tail = seg
	}
}

// Scan calls visit for every row in insertion order. The row slice aliases
// list memory and is only valid during the call. Scan stops early if visit
// returns false and reports whether the scan ran to completion.
func (l *List) Scan(visit func(row []uint64) bool) bool {
	if l.n == 0 {
		return true
	}
	if !visit(l.first) {
		return false
	}
	if l.width == 0 {
		// Existence-only rows carry no storage; replay the count.
		for i := 1; i < l.n; i++ {
			if !visit(nil) {
				return false
			}
		}
		return true
	}
	for s := l.head; s != nil; s = s.next {
		for off := 0; off < s.used; off += l.width {
			if !visit(s.data[off : off+l.width]) {
				return false
			}
		}
	}
	return true
}

// Rows returns all rows as a freshly allocated slice of freshly allocated
// rows, in insertion order. Intended for tests and result extraction, not
// for hot paths.
func (l *List) Rows() [][]uint64 {
	out := make([][]uint64, 0, l.n)
	l.Scan(func(row []uint64) bool {
		r := make([]uint64, len(row))
		copy(r, row)
		out = append(out, r)
		return true
	})
	return out
}

// Bytes estimates the heap footprint of the list payload in bytes,
// excluding the List header itself.
func (l *List) Bytes() int {
	b := len(l.first) * wordBytes
	for s := l.head; s != nil; s = s.next {
		b += len(s.data)*wordBytes + 24 // data + segment header estimate
	}
	return b
}

// Segments reports the number of duplicate segments (excluding the inline
// first row). Exposed for the Figure 4 ablation and for tests.
func (l *List) Segments() int {
	k := 0
	for s := l.head; s != nil; s = s.next {
		k++
	}
	return k
}
