package duplist

import (
	"reflect"
	"testing"
)

// TestSlabListMatchesPlainList: a slab-backed list must behave exactly
// like a make-backed one — same rows, same segment doubling schedule.
func TestSlabListMatchesPlainList(t *testing.T) {
	for _, width := range []int{0, 1, 2, 7} {
		slab := NewSlab()
		a := Make(width)
		b := Make(width)
		row := make([]uint64, width)
		for i := 0; i < 3000; i++ {
			for j := range row {
				row[j] = uint64(i*10 + j)
			}
			a.AppendIn(slab, row)
			b.Append(row)
		}
		if a.Len() != b.Len() {
			t.Fatalf("width %d: len %d vs %d", width, a.Len(), b.Len())
		}
		if a.Segments() != b.Segments() {
			t.Fatalf("width %d: segments %d vs %d (doubling schedule diverged)",
				width, a.Segments(), b.Segments())
		}
		if !reflect.DeepEqual(a.Rows(), b.Rows()) {
			t.Fatalf("width %d: slab-backed rows differ from plain rows", width)
		}
		slab.Release()
	}
}

// TestSlabSharedAcrossLists: many lists drawing from one slab stay
// independent, and the slab block count stays far below the key count.
func TestSlabSharedAcrossLists(t *testing.T) {
	slab := NewSlab()
	defer slab.Release()
	const keys = 5000
	lists := make([]List, keys)
	for i := range lists {
		lists[i] = Make(1)
	}
	for rep := 0; rep < 3; rep++ {
		for i := range lists {
			lists[i].AppendIn(slab, []uint64{uint64(i*1000 + rep)})
		}
	}
	for i := range lists {
		rows := lists[i].Rows()
		if len(rows) != 3 {
			t.Fatalf("list %d has %d rows", i, len(rows))
		}
		for rep, r := range rows {
			if r[0] != uint64(i*1000+rep) {
				t.Fatalf("list %d row %d = %d: lists share storage", i, rep, r[0])
			}
		}
	}
	// keys first rows + keys segments of 8 words each ≈ 45k words → a few
	// dozen 8 KiW blocks, not one allocation per key.
	if slab.Blocks() > keys/50 {
		t.Fatalf("slab used %d blocks for %d keys — not slab-shaped", slab.Blocks(), keys)
	}
	if slab.Bytes() == 0 {
		t.Fatal("slab reports zero bytes")
	}
}

// TestSlabAggregate: AggregateIn allocates the first row from the slab and
// folds in place afterwards.
func TestSlabAggregate(t *testing.T) {
	slab := NewSlab()
	defer slab.Release()
	l := Make(2)
	fold := func(dst, src []uint64) { dst[0] += src[0]; dst[1] += src[1] }
	for i := 1; i <= 10; i++ {
		l.AggregateIn(slab, []uint64{uint64(i), uint64(2 * i)}, fold)
	}
	if l.Len() != 1 {
		t.Fatalf("aggregated list len = %d", l.Len())
	}
	if f := l.First(); f[0] != 55 || f[1] != 110 {
		t.Fatalf("aggregate = %v, want [55 110]", f)
	}
	if slab.Blocks() != 1 {
		t.Fatalf("aggregate-only list used %d blocks", slab.Blocks())
	}
}

// TestSlabWideRows: rows wider than a slab block get dedicated blocks
// instead of panicking or splitting.
func TestSlabWideRows(t *testing.T) {
	slab := NewSlab()
	defer slab.Release()
	width := slabBlockWords + 3
	l := Make(width)
	row := make([]uint64, width)
	row[0], row[width-1] = 1, 2
	l.AppendIn(slab, row)
	row[0], row[width-1] = 3, 4
	l.AppendIn(slab, row)
	rows := l.Rows()
	if len(rows) != 2 || rows[0][0] != 1 || rows[0][width-1] != 2 || rows[1][0] != 3 || rows[1][width-1] != 4 {
		t.Fatalf("wide rows corrupted")
	}
}
