//go:build !amd64 && !purego

package kernel

// Non-amd64 dispatch: the portable SWAR variants are still the fast path
// (they are pure Go); only the mode label differs. Per-arch assembly for
// other targets follows the same drop-in recipe as dispatch_amd64.go.
const (
	defaultEnabled = true
	dispatchMode   = "swar"
)
