//go:build race

package kernel

// RaceEnabled reports whether the race detector is compiled in. Tests
// asserting 0 allocs/op on sync.Pool-backed scratch paths skip under
// race: the detector makes Put randomly drop items to widen interleaving
// coverage, so pooled paths allocate by design there.
const RaceEnabled = true
