//go:build purego

package kernel

// purego dispatch: the generic oracle is the default (QPPT_KERNEL=on can
// still opt back into the portable SWAR variants at runtime). CI builds
// and tests this configuration so the fallback path never rots.
const (
	defaultEnabled = false
	dispatchMode   = "swar"
)
