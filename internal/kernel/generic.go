package kernel

import "math/bits"

// The generic variants are the oracle: the simplest possible loop per
// primitive, kept deliberately boring so differential tests compare the
// optimized SWAR code against something obviously correct. They are also
// the permanent fallback (purego builds, QPPT_KERNEL=off, ForceGeneric).

func fragsGeneric(dst, keys []uint64, shift uint, mask uint64) {
	for i, k := range keys {
		dst[i] = (k >> shift) & mask
	}
}

func rangeMaskGeneric(mask, keys []uint64, lo, hi uint64) {
	for i, k := range keys {
		if k >= lo && k <= hi {
			mask[i>>6] |= 1 << uint(i&63)
		}
	}
}

func maskSelGeneric(sel []uint32, mask []uint64, n int) []uint32 {
	for i := 0; i < n; i++ {
		if mask[i>>6]&(1<<uint(i&63)) != 0 {
			sel = append(sel, uint32(i))
		}
	}
	return sel
}

func minMaxGeneric(keys []uint64) (lo, hi uint64) {
	lo, hi = keys[0], keys[0]
	for _, k := range keys[1:] {
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	return lo, hi
}

func sortedOrGeneric(keys []uint64) (sorted bool, or uint64) {
	sorted = true
	or = keys[0]
	for i := 1; i < len(keys); i++ {
		or |= keys[i]
		if keys[i] < keys[i-1] {
			sorted = false
		}
	}
	return sorted, or
}

func packKeyIdxGeneric(dst, keys []uint64) []uint64 {
	for i, k := range keys {
		dst = append(dst, k<<32|uint64(i))
	}
	return dst
}

// popcountWords is shared by tests to sanity-check mask population.
func popcountWords(mask []uint64) int {
	n := 0
	for _, w := range mask {
		n += bits.OnesCount64(w)
	}
	return n
}
