//go:build amd64 && !purego

package kernel

// amd64 dispatch: the SWAR variants compile to branch-free scalar code
// (SETcc, CMOV) here. A hand-written assembly variant drops in by adding
// kernel_amd64.s plus a file like this one that rebinds the per-primitive
// implementations (e.g. fragsSWAR -> fragsAVX2 behind a cpuid check) —
// the exported wrappers and the generic oracle stay untouched.
const (
	defaultEnabled = true
	dispatchMode   = "swar-amd64"
)
