package kernel

import "math/bits"

// Optimized word-parallel variants. The shape is deliberately uniform:
// full-slice reslices (k := keys[i:i+8:i+8]) hoist the bounds checks out
// of the unrolled body, comparisons are rewritten as unsigned arithmetic
// so the compiler emits SETcc instead of branches, and per-iteration
// state lives in accumulator registers merged once at the end. Any
// future arch-specific assembly replaces these bodies behind the same
// names via a new dispatch_* file — the exported wrappers never change.

// b2u converts a bool to 0/1 without a branch (compiles to SETcc+MOVZX).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fragsSWAR(dst, keys []uint64, shift uint, mask uint64) {
	n := len(keys)
	if len(dst) < n {
		panic("kernel: Frags dst shorter than keys")
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		k := keys[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = (k[0] >> shift) & mask
		d[1] = (k[1] >> shift) & mask
		d[2] = (k[2] >> shift) & mask
		d[3] = (k[3] >> shift) & mask
		d[4] = (k[4] >> shift) & mask
		d[5] = (k[5] >> shift) & mask
		d[6] = (k[6] >> shift) & mask
		d[7] = (k[7] >> shift) & mask
	}
	for ; i < n; i++ {
		dst[i] = (keys[i] >> shift) & mask
	}
}

func rangeMaskSWAR(mask, keys []uint64, lo, hi uint64) {
	span := hi - lo // callers guarantee lo <= hi
	n := len(keys)
	for base, w := 0, 0; base < n; base, w = base+64, w+1 {
		end := base + 64
		if end > n {
			end = n
		}
		k := keys[base:end:end]
		var word uint64
		j := 0
		for ; j+4 <= len(k); j += 4 {
			// Unsigned wraparound in-range test: k-lo <= hi-lo holds
			// exactly when lo <= k <= hi. Each compare is branch-free.
			word |= b2u(k[j]-lo <= span) << uint(j)
			word |= b2u(k[j+1]-lo <= span) << uint(j+1)
			word |= b2u(k[j+2]-lo <= span) << uint(j+2)
			word |= b2u(k[j+3]-lo <= span) << uint(j+3)
		}
		for ; j < len(k); j++ {
			word |= b2u(k[j]-lo <= span) << uint(j)
		}
		mask[w] |= word
	}
}

func maskSelSWAR(sel []uint32, mask []uint64, n int) []uint32 {
	// Bits >= n are clear by the RangeMask contract, so every set bit is
	// a survivor: peel them off lowest-first with TrailingZeros64.
	for w := 0; w*64 < n; w++ {
		m := mask[w]
		base := uint32(w * 64)
		for m != 0 {
			sel = append(sel, base+uint32(bits.TrailingZeros64(m)))
			m &= m - 1
		}
	}
	return sel
}

func minMaxSWAR(keys []uint64) (lo, hi uint64) {
	lo0, hi0 := keys[0], keys[0]
	lo1, hi1 := lo0, hi0
	lo2, hi2 := lo0, hi0
	lo3, hi3 := lo0, hi0
	i := 1
	for ; i+4 <= len(keys); i += 4 {
		k := keys[i : i+4 : i+4]
		lo0, hi0 = min(lo0, k[0]), max(hi0, k[0])
		lo1, hi1 = min(lo1, k[1]), max(hi1, k[1])
		lo2, hi2 = min(lo2, k[2]), max(hi2, k[2])
		lo3, hi3 = min(lo3, k[3]), max(hi3, k[3])
	}
	for ; i < len(keys); i++ {
		lo0, hi0 = min(lo0, keys[i]), max(hi0, keys[i])
	}
	return min(min(lo0, lo1), min(lo2, lo3)), max(max(hi0, hi1), max(hi2, hi3))
}

func sortedOrSWAR(keys []uint64) (sorted bool, or uint64) {
	or = keys[0]
	var desc uint64
	prev := keys[0]
	i := 1
	for ; i+4 <= len(keys); i += 4 {
		k := keys[i : i+4 : i+4]
		or |= k[0] | k[1] | k[2] | k[3]
		desc |= b2u(k[0] < prev) | b2u(k[1] < k[0]) | b2u(k[2] < k[1]) | b2u(k[3] < k[2])
		prev = k[3]
	}
	for ; i < len(keys); i++ {
		or |= keys[i]
		desc |= b2u(keys[i] < prev)
		prev = keys[i]
	}
	return desc == 0, or
}

func packKeyIdxSWAR(dst, keys []uint64) []uint64 {
	n := len(keys)
	off := len(dst)
	dst = append(dst, make([]uint64, n)...)
	out := dst[off : off+n : off+n]
	i := 0
	for ; i+4 <= n; i += 4 {
		k := keys[i : i+4 : i+4]
		o := out[i : i+4 : i+4]
		o[0] = k[0]<<32 | uint64(i)
		o[1] = k[1]<<32 | uint64(i+1)
		o[2] = k[2]<<32 | uint64(i+2)
		o[3] = k[3]<<32 | uint64(i+3)
	}
	for ; i < n; i++ {
		out[i] = keys[i]<<32 | uint64(i)
	}
	return dst
}
