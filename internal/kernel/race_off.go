//go:build !race

package kernel

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
