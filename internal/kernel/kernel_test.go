package kernel

import (
	"math/rand"
	"slices"
	"testing"
)

// Differential harness: every primitive's SWAR variant must be
// bit-identical to the generic oracle on the same input. Cases sweep the
// shapes the pipeline produces: empty, single, unroll-boundary lengths,
// duplicates, full-width 64-bit keys.

func testKeys(n int, seed int64, wide bool) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		if wide {
			keys[i] = rng.Uint64()
		} else {
			keys[i] = uint64(rng.Intn(1 << 20))
		}
	}
	return keys
}

var lengths = []int{0, 1, 3, 7, 8, 9, 15, 16, 63, 64, 65, 100, 511, 512}

func TestFragsMatchesOracle(t *testing.T) {
	for _, n := range lengths {
		for _, wide := range []bool{false, true} {
			keys := testKeys(n, int64(n)*2+1, wide)
			for _, cfg := range []struct {
				shift uint
				mask  uint64
			}{{0, 63}, {6, 1<<26 - 1}, {60, 15}, {0, ^uint64(0)}, {32, 1<<16 - 1}} {
				got := make([]uint64, n)
				want := make([]uint64, n)
				fragsSWAR(got, keys, cfg.shift, cfg.mask)
				fragsGeneric(want, keys, cfg.shift, cfg.mask)
				if !slices.Equal(got, want) {
					t.Fatalf("Frags n=%d wide=%v shift=%d mask=%#x: swar != generic", n, wide, cfg.shift, cfg.mask)
				}
			}
		}
	}
}

func TestRangeMaskAndSelMatchOracle(t *testing.T) {
	for _, n := range lengths {
		for _, wide := range []bool{false, true} {
			keys := testKeys(n, int64(n)*3+7, wide)
			ranges := [][2]uint64{
				{0, ^uint64(0)},          // all-in
				{1, 0},                   // inverted: matches nothing (wrapper rejects)
				{1 << 19, 1 << 20},       // partial
				{^uint64(0), ^uint64(0)}, // all-miss for narrow keys
			}
			if n > 0 {
				ranges = append(ranges, [2]uint64{keys[0], keys[0]}) // point range incl. duplicates
			}
			for _, r := range ranges {
				words := MaskWords(n)
				got := make([]uint64, words)
				want := make([]uint64, words)
				if r[0] <= r[1] { // wrapper-level guard under test separately
					rangeMaskSWAR(got, keys, r[0], r[1])
					rangeMaskGeneric(want, keys, r[0], r[1])
				}
				if !slices.Equal(got, want) {
					t.Fatalf("RangeMask n=%d wide=%v range=%v: swar != generic", n, wide, r)
				}
				gotSel := maskSelSWAR(nil, got, n)
				wantSel := maskSelGeneric(nil, want, n)
				if !slices.Equal(gotSel, wantSel) {
					t.Fatalf("MaskSel n=%d wide=%v range=%v: swar != generic", n, wide, r)
				}
				if len(gotSel) != popcountWords(got) {
					t.Fatalf("MaskSel n=%d: %d selected, %d bits set", n, len(gotSel), popcountWords(got))
				}
			}
		}
	}
}

func TestRangeMaskInvertedRangeIsEmpty(t *testing.T) {
	keys := testKeys(64, 5, false)
	mask := make([]uint64, MaskWords(len(keys)))
	RangeMask(mask, keys, 10, 5)
	if popcountWords(mask) != 0 {
		t.Fatalf("inverted range set %d bits, want 0", popcountWords(mask))
	}
}

func TestMinMaxMatchesOracle(t *testing.T) {
	for _, n := range lengths {
		if n == 0 {
			if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
				t.Fatalf("MinMax(empty) = (%d, %d), want (0, 0)", lo, hi)
			}
			continue
		}
		for _, wide := range []bool{false, true} {
			keys := testKeys(n, int64(n)*5+3, wide)
			glo, ghi := minMaxSWAR(keys)
			wlo, whi := minMaxGeneric(keys)
			if glo != wlo || ghi != whi {
				t.Fatalf("MinMax n=%d wide=%v: swar (%d,%d) != generic (%d,%d)", n, wide, glo, ghi, wlo, whi)
			}
		}
	}
}

func TestSortedOrMatchesOracle(t *testing.T) {
	for _, n := range lengths {
		if n == 0 {
			if sorted, or := SortedOr(nil); !sorted || or != 0 {
				t.Fatalf("SortedOr(empty) = (%v, %d), want (true, 0)", sorted, or)
			}
			continue
		}
		for _, wide := range []bool{false, true} {
			for _, presort := range []bool{false, true} {
				keys := testKeys(n, int64(n)*7+11, wide)
				if presort {
					slices.Sort(keys)
				}
				gs, gor := sortedOrSWAR(keys)
				ws, wor := sortedOrGeneric(keys)
				if gs != ws || gor != wor {
					t.Fatalf("SortedOr n=%d wide=%v presort=%v: swar (%v,%#x) != generic (%v,%#x)",
						n, wide, presort, gs, gor, ws, wor)
				}
				if presort && !gs {
					t.Fatalf("SortedOr n=%d: sorted input reported unsorted", n)
				}
			}
		}
	}
}

func TestPackKeyIdxMatchesOracle(t *testing.T) {
	for _, n := range lengths {
		keys := testKeys(n, int64(n)*11+13, false) // packed path only runs on 32-bit keys
		got := packKeyIdxSWAR(nil, keys)
		want := packKeyIdxGeneric(nil, keys)
		if !slices.Equal(got, want) {
			t.Fatalf("PackKeyIdx n=%d: swar != generic", n)
		}
		// Appending to a non-empty dst must leave the prefix intact.
		prefix := []uint64{42, 43}
		got2 := packKeyIdxSWAR(slices.Clone(prefix), keys)
		if !slices.Equal(got2[:2], prefix) || !slices.Equal(got2[2:], want) {
			t.Fatalf("PackKeyIdx n=%d: append clobbered prefix", n)
		}
	}
}

func TestForceGenericRestores(t *testing.T) {
	wasEnabled := Enabled()
	restore := ForceGeneric()
	if Enabled() {
		t.Fatal("ForceGeneric left kernels enabled")
	}
	if Mode() != "generic" {
		t.Fatalf("Mode() = %q under ForceGeneric, want generic", Mode())
	}
	if Batched(1 << 10) {
		t.Fatal("Batched reported true under ForceGeneric")
	}
	restore()
	if Enabled() != wasEnabled {
		t.Fatal("restore did not reinstate prior dispatch state")
	}
}

func TestBatchedThreshold(t *testing.T) {
	if !Enabled() {
		t.Skip("kernels disabled in this configuration")
	}
	if Batched(MinBatch - 1) {
		t.Fatalf("Batched(%d) = true below MinBatch", MinBatch-1)
	}
	if !Batched(MinBatch) {
		t.Fatalf("Batched(%d) = false at MinBatch", MinBatch)
	}
}

// Every kernel entry point must be allocation-free — they run once per
// batch inside the probe hot loop. Mirrors TestLookupBatchAllocationFree.
func TestKernelEntryPointsAllocationFree(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation disables the append(dst, make(...)...) no-alloc optimization")
	}
	keys := testKeys(512, 99, false)
	dst := make([]uint64, len(keys))
	mask := make([]uint64, MaskWords(len(keys)))
	sel := make([]uint32, 0, len(keys))
	packed := make([]uint64, 0, len(keys))
	cases := []struct {
		name string
		fn   func()
	}{
		{"Frags", func() { Frags(dst, keys, 6, 63) }},
		{"RangeMask", func() { RangeMask(mask, keys, 100, 1<<19) }},
		{"MaskSel", func() { sel = MaskSel(sel[:0], mask, len(keys)) }},
		{"MinMax", func() { MinMax(keys) }},
		{"SortedOr", func() { SortedOr(keys) }},
		{"PackKeyIdx", func() { packed = PackKeyIdx(packed[:0], keys) }},
	}
	for _, tc := range cases {
		tc.fn() // warm: let MaskSel/PackKeyIdx reach steady-state capacity
		if allocs := testing.AllocsPerRun(20, tc.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}
