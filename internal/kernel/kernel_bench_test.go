package kernel

import "testing"

// BenchmarkRangeStreamKernel measures the fused range-stream predicate
// path exactly as flushForward drives it per batch: clear the mask words,
// one RangeMask pass per predicate range, one MaskSel compaction. The
// scalar sub-benchmark forces the generic oracle so the regression gate
// tracks both sides of the dispatch seam.
func BenchmarkRangeStreamKernel(b *testing.B) {
	keys := testKeys(512, 7, false)
	mask := make([]uint64, MaskWords(len(keys)))
	sel := make([]uint32, 0, len(keys))
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(mask)
			RangeMask(mask, keys, 1<<10, 1<<18)
			RangeMask(mask, keys, 1<<19, 1<<19+1<<12)
			sel = MaskSel(sel[:0], mask, len(keys))
		}
		if len(sel) == 0 {
			b.Fatal("predicate selected nothing")
		}
	}
	b.Run("kernel", run)
	b.Run("scalar", func(b *testing.B) {
		defer ForceGeneric()()
		run(b)
	})
}

func BenchmarkSortedOr(b *testing.B) {
	keys := testKeys(512, 13, true)
	b.ReportAllocs()
	var or uint64
	for i := 0; i < b.N; i++ {
		_, or = SortedOr(keys)
	}
	_ = or
}

func BenchmarkMinMax(b *testing.B) {
	keys := testKeys(512, 17, true)
	b.ReportAllocs()
	var hi uint64
	for i := 0; i < b.N; i++ {
		_, hi = MinMax(keys)
	}
	_ = hi
}
