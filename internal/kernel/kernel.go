// Package kernel hosts the branch-free, word-parallel (SWAR-on-uint64)
// batch primitives behind the batched pipeline's hot loops: key-fragment
// extraction for the level-synchronous tree descent, range-predicate
// bitmask evaluation and selection-vector compaction for range-stream
// fusion, and the sortedness / min-max / packed-key scans used by the
// forwarding sinks' packed sort path.
//
// Dispatch contract: every exported entry point has two implementations —
// an optimized SWAR variant (swar.go, unrolled, bounds-check hoisted) and
// a plain-loop generic variant (generic.go) that is the oracle in tests
// and the permanent fallback. Which one runs is a process-global switch:
//
//   - the per-arch dispatch files (dispatch_*.go, selected by build tags)
//     pick the default, so an arch-specific assembly variant can later
//     drop in behind the same seam without touching call sites;
//   - building with `-tags purego`, setting QPPT_KERNEL=off in the
//     environment, or calling ForceGeneric routes everything through the
//     generic oracle at runtime.
//
// Both variants are bit-identical by contract (enforced by differential
// tests and FuzzKernelVsScalar) and allocation-free on every entry point.
// The package deliberately operates on plain slices only — no arena refs,
// no unsafe — so qpptvet's refescape analyzer has nothing to track here.
package kernel

import (
	"os"
	"sync/atomic"
)

// MinBatch is the smallest batch for which the word-parallel kernels are
// worth their setup over the scalar per-key loop; callers gate batch-level
// strategy choices on Batched rather than re-deriving a threshold.
const MinBatch = 16

var enabled atomic.Bool

func init() {
	on := defaultEnabled
	switch os.Getenv("QPPT_KERNEL") {
	case "off", "generic", "scalar", "0":
		on = false
	case "on", "swar", "1":
		on = true
	}
	enabled.Store(on)
}

// Enabled reports whether the SWAR variants are active. When false every
// entry point runs the generic oracle.
func Enabled() bool { return enabled.Load() }

// Batched reports whether a batch of n keys should take the kernelized
// (level-synchronous / selection-vector) path rather than the scalar one.
func Batched(n int) bool { return n >= MinBatch && enabled.Load() }

// Mode names the active dispatch target ("swar", "swar-amd64", ...) or
// "generic" when the fallback oracle is forced; surfaced in engine stats.
func Mode() string {
	if enabled.Load() {
		return dispatchMode
	}
	return "generic"
}

// ForceGeneric switches every entry point to the generic oracle and
// returns a func restoring the previous state. Used by the scalar leg of
// ablations, the -nokernel CLI flag, and differential tests.
func ForceGeneric() (restore func()) {
	prev := enabled.Swap(false)
	return func() { enabled.Store(prev) }
}

// MaskWords returns the number of uint64 bitmask words covering n rows.
func MaskWords(n int) int { return (n + 63) / 64 }

// Frags extracts the per-key fragment (keys[i]>>shift)&mask for a whole
// batch into dst, which must be at least len(keys) long. This is the
// level-synchronous descent's fragment pass: one unrolled, bounds-check
// hoisted sweep per tree level instead of a shift+mask inside the per-key
// resolve loop.
func Frags(dst, keys []uint64, shift uint, mask uint64) {
	if enabled.Load() {
		fragsSWAR(dst, keys, shift, mask)
		return
	}
	fragsGeneric(dst, keys, shift, mask)
}

// RangeMask ORs, into the little-endian bitmask words of mask, a set bit
// for every keys[i] with lo <= keys[i] <= hi. The compare is branch-free
// (unsigned wraparound trick: k-lo <= hi-lo). Callers clear mask before
// the first range of a predicate; successive calls accumulate a union of
// ranges. mask must hold MaskWords(len(keys)) words. Bits at positions
// >= len(keys) are never set.
func RangeMask(mask, keys []uint64, lo, hi uint64) {
	if hi < lo { // empty range matches nothing
		return
	}
	if enabled.Load() {
		rangeMaskSWAR(mask, keys, lo, hi)
		return
	}
	rangeMaskGeneric(mask, keys, lo, hi)
}

// MaskSel appends to sel the index of every set bit in the first n bit
// positions of mask (ascending) and returns the extended slice. Bits at
// positions >= n must be clear — RangeMask guarantees that. Together with
// RangeMask this turns a per-row predicate callback into one bitmask pass
// plus one compaction pass.
func MaskSel(sel []uint32, mask []uint64, n int) []uint32 {
	if enabled.Load() {
		return maskSelSWAR(sel, mask, n)
	}
	return maskSelGeneric(sel, mask, n)
}

// MinMax returns the smallest and largest key in the batch in one
// multi-accumulator pass; (0, 0) for an empty batch. Used for batch
// envelope short-circuits before a full RangeMask evaluation.
func MinMax(keys []uint64) (lo, hi uint64) {
	if len(keys) == 0 {
		return 0, 0
	}
	if enabled.Load() {
		return minMaxSWAR(keys)
	}
	return minMaxGeneric(keys)
}

// SortedOr reports whether keys is non-decreasing and the OR of all keys,
// in a single fused pass — the forwarding sink's flush preamble (sorted
// batches forward as-is; a small OR picks the packed 32-bit sort path).
// An empty batch is sorted with OR 0.
func SortedOr(keys []uint64) (sorted bool, or uint64) {
	if len(keys) == 0 {
		return true, 0
	}
	if enabled.Load() {
		return sortedOrSWAR(keys)
	}
	return sortedOrGeneric(keys)
}

// PackKeyIdx appends keys[i]<<32|i for every i to dst and returns the
// extended slice — the packed key+index words sorted by the forwarding
// sink when all keys fit in 32 bits. Keys must be < 1<<32 and batches
// must hold fewer than 1<<32 rows; both hold by construction (the caller
// checks the OR of the batch, and batch sizes are small).
func PackKeyIdx(dst, keys []uint64) []uint64 {
	if enabled.Load() {
		return packKeyIdxSWAR(dst, keys)
	}
	return packKeyIdxGeneric(dst, keys)
}
