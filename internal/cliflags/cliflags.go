// Package cliflags is the single home of the execution knobs both CLIs
// (cmd/qpptbench, cmd/qpptsql) expose: worker pool size, morsel fan-out,
// joinbuffer size, memory budget, chunk recycling and mmap thaw. Register
// once, then resolve the parsed values into per-query core.Options or a
// long-lived qppt.Config — future knobs are added here and appear in both
// commands with identical names, defaults and help texts.
package cliflags

import (
	"flag"

	"qppt"
	"qppt/internal/core"
	"qppt/internal/kernel"
	"qppt/internal/spill"
)

// Exec holds the shared execution flags after parsing.
type Exec struct {
	Workers    int
	Morsels    int
	Buffer     int
	MemBudget  string
	RecycleCap string
	Recycle    bool
	NoRecycle  bool
	MmapThaw   bool
	NoFuse     bool
	ProbeBatch int
	NoKernel   bool
	MaxPlans   int
	QueueDepth int
	StmtCache  int
}

// Register declares the shared flags on fs (use flag.CommandLine for the
// process flag set). The returned struct is filled by fs.Parse.
func Register(fs *flag.FlagSet) *Exec {
	e := &Exec{}
	fs.IntVar(&e.Workers, "workers", 1, "shared worker pool size for morsel-driven parallel execution (1 = serial, -1 = GOMAXPROCS)")
	fs.IntVar(&e.Morsels, "morsels", 0, "morsels per worker (0 = default fan-out)")
	fs.IntVar(&e.Buffer, "buffer", 0, "joinbuffer/selectionbuffer size (1 disables batching, 0 = default)")
	fs.StringVar(&e.MemBudget, "membudget", "", "intermediate-index memory budget (e.g. 256MiB); empty = unlimited, no spilling")
	fs.BoolVar(&e.Recycle, "recycle", false, "recycle dropped intermediates' chunks within each one-shot plan (engine mode recycles across plans by default; see -norecycle)")
	fs.BoolVar(&e.NoRecycle, "norecycle", false, "disable the engine's cross-plan chunk recycler (on by default in engine mode)")
	fs.StringVar(&e.RecycleCap, "recyclecap", "", "byte cap on the engine chunk pool (e.g. 256MiB); empty = engine default")
	fs.BoolVar(&e.MmapThaw, "mmapthaw", false, "restore spilled intermediates via zero-copy mmap instead of copying")
	fs.BoolVar(&e.NoFuse, "nofuse", false, "disable pipeline fusion: materialize every single-consumer intermediate index (fusion is on by default)")
	fs.IntVar(&e.ProbeBatch, "probebatch", 0, "probe-forward batch size inside fused chains (1 = scalar forwarding, 0 = default; ignored under -nofuse)")
	fs.BoolVar(&e.NoKernel, "nokernel", false, "disable the SWAR batch kernels: route tree descents and range-stream predicates through the scalar fallback")
	fs.IntVar(&e.MaxPlans, "max-plans", 0, "admission cap on concurrently executing plans (0 = unlimited, no admission control)")
	fs.IntVar(&e.QueueDepth, "queue-depth", 0, "per-session admission queue depth before queries are shed with ErrOverloaded (0 = default; needs -max-plans)")
	fs.IntVar(&e.StmtCache, "stmtcache", 0, "per-connection prepared-statement cache capacity (0 = default, negative disables)")
	return e
}

// Serve holds the serving-tier address flags (cmd/qpptsql).
type Serve struct {
	Listen string
	HTTP   string
}

// RegisterServe declares the serving-tier flags on fs: -listen runs the
// binary wire protocol, -serve the HTTP adapter layered over it. Both
// may be given together; either replaces the interactive shell.
func RegisterServe(fs *flag.FlagSet) *Serve {
	s := &Serve{}
	fs.StringVar(&s.Listen, "listen", "", "serve the QPPT wire protocol on this TCP address (e.g. :5477) instead of the interactive shell")
	fs.StringVar(&s.HTTP, "serve", "", "serve HTTP queries on this address (e.g. :8080) as a thin adapter over the wire server")
	return s
}

// Serving reports whether any serving-tier address was given.
func (s *Serve) Serving() bool { return s.Listen != "" || s.HTTP != "" }

// ApplyRuntime applies the process-global knobs that live outside
// core.Options / qppt.Config — currently the batch-kernel dispatch
// switch. Call once after flag parsing, before running queries.
func (e *Exec) ApplyRuntime() {
	if e.NoKernel {
		kernel.ForceGeneric()
	}
}

// budget parses the -membudget value (0 when empty).
func (e *Exec) budget() (int64, error) {
	if e.MemBudget == "" {
		return 0, nil
	}
	return spill.ParseBytes(e.MemBudget)
}

// RecycleCapBytes parses the -recyclecap value (0 when empty).
func (e *Exec) RecycleCapBytes() (int64, error) {
	if e.RecycleCap == "" {
		return 0, nil
	}
	return spill.ParseBytes(e.RecycleCap)
}

// ExecOptions resolves the flags into one-shot execution options
// (core.Plan.Run / bench harness configuration).
func (e *Exec) ExecOptions() (core.Options, error) {
	budget, err := e.budget()
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Workers:          e.Workers,
		MorselsPerWorker: e.Morsels,
		BufferSize:       e.Buffer,
		MemBudget:        budget,
		Recycle:          e.Recycle,
		MmapThaw:         e.MmapThaw,
		NoFuse:           e.NoFuse,
		ProbeBatch:       e.ProbeBatch,
	}, nil
}

// EngineConfig resolves the flags into a long-lived engine configuration:
// the same knobs, but worker pool, chunk pool and spill budget become
// engine-scoped so they carry across queries. Matching qppt.Config's
// default, the cross-plan recycler stays ON unless -norecycle is given —
// -recycle only opts one-shot plans in and is implied here.
func (e *Exec) EngineConfig() (qppt.Config, error) {
	budget, err := e.budget()
	if err != nil {
		return qppt.Config{}, err
	}
	cfg := qppt.Config{
		Workers:          e.Workers,
		MorselsPerWorker: e.Morsels,
		BufferSize:       e.Buffer,
		MemBudget:        budget,
		MmapThaw:         e.MmapThaw,
		DisableRecycle:   e.NoRecycle,
		DisableFusion:    e.NoFuse,
		ProbeBatch:       e.ProbeBatch,
		MaxPlans:         e.MaxPlans,
		QueueDepth:       e.QueueDepth,
		StmtCache:        e.StmtCache,
	}
	cap, err := e.RecycleCapBytes()
	if err != nil {
		return qppt.Config{}, err
	}
	cfg.RecycleCap = cap
	return cfg, nil
}
