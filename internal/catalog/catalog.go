// Package catalog manages tables, dictionaries, and base indexes for QPPT.
//
// The catalog is the bridge between the row-store storage layer and the
// query processor: it loads relations (building order-preserving string
// dictionaries on the way), tracks per-column key widths, and builds the
// base indexes that QPPT plans start from — pure secondary indexes (payload
// is just the record identifier) or partially clustered indexes whose
// payload carries the join/selection/grouping attributes that successive
// operators will need (paper Section 3).
package catalog

import (
	"context"
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"qppt/internal/core"
	"qppt/internal/storage"
)

// RIDCol is the reserved attribute name under which base indexes expose
// the record identifier in their payloads.
const RIDCol = "rid"

// A Catalog owns the storage manager and all table metadata.
type Catalog struct {
	mgr    *storage.Manager
	tables map[string]*TableInfo
}

// New returns an empty catalog with a fresh storage manager.
func New() *Catalog {
	return &Catalog{mgr: storage.NewManager(), tables: make(map[string]*TableInfo)}
}

// Manager exposes the underlying storage manager (for transactional use).
func (c *Catalog) Manager() *storage.Manager { return c.mgr }

// TableInfo bundles a stored table with its dictionaries, column
// statistics, and base indexes.
type TableInfo struct {
	Name   string
	Table  *storage.Table
	Schema *storage.Schema

	dicts   map[string]*Dict // per string column
	colBits map[string]uint  // minimal key width per column

	// idxMu guards the index cache: concurrent sessions plan against the
	// same catalog, and the first plan to need a base index builds it.
	// The lock is held across a build, so racing planners wait for the
	// one build instead of duplicating the table scan.
	idxMu   sync.Mutex
	indexes map[string]*core.IndexedTable // guarded by idxMu
}

// Table returns the metadata of a loaded table, or nil.
func (c *Catalog) Table(name string) *TableInfo { return c.tables[name] }

// ColumnData carries one column of load input: Ints for TypeInt columns,
// Strs for TypeString columns (the other slice stays nil).
type ColumnData struct {
	Name string
	Ints []uint64
	Strs []string
}

// Load creates a table and bulk-loads it. Column order defines the schema;
// string columns get order-preserving dictionaries built from their values.
// All columns must have the same length.
func (c *Catalog) Load(name string, cols []ColumnData) (*TableInfo, error) {
	if _, dup := c.tables[name]; dup {
		return nil, fmt.Errorf("catalog: table %q already loaded", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %q has no columns", name)
	}
	n := -1
	schemaCols := make([]storage.Column, len(cols))
	for i, col := range cols {
		var cn int
		if col.Strs != nil {
			cn = len(col.Strs)
			schemaCols[i] = storage.Column{Name: col.Name, Type: storage.TypeString}
		} else {
			cn = len(col.Ints)
			schemaCols[i] = storage.Column{Name: col.Name, Type: storage.TypeInt}
		}
		if n == -1 {
			n = cn
		} else if cn != n {
			return nil, fmt.Errorf("catalog: column %q has %d values, want %d", col.Name, cn, n)
		}
	}
	schema, err := storage.NewSchema(schemaCols...)
	if err != nil {
		return nil, err
	}
	tbl, err := c.mgr.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	ti := &TableInfo{
		Name: name, Table: tbl, Schema: schema,
		dicts:   make(map[string]*Dict),
		colBits: make(map[string]uint),
		indexes: make(map[string]*core.IndexedTable),
	}

	// Encode columns: dictionary codes for strings, raw values for ints.
	encoded := make([][]uint64, len(cols))
	for i, col := range cols {
		if col.Strs != nil {
			b := NewDictBuilder()
			for _, s := range col.Strs {
				b.Add(s)
			}
			d := b.Build()
			ti.dicts[col.Name] = d
			enc := make([]uint64, n)
			for j, s := range col.Strs {
				enc[j] = d.MustCode(s)
			}
			encoded[i] = enc
		} else {
			encoded[i] = col.Ints
		}
		var maxV uint64
		for _, v := range encoded[i] {
			if v > maxV {
				maxV = v
			}
		}
		ti.colBits[col.Name] = uint(max(bits.Len64(maxV), 1))
	}

	// Row-major bulk load (this is a row store).
	rows := make([][]uint64, n)
	flat := make([]uint64, n*len(cols))
	for j := 0; j < n; j++ {
		row := flat[j*len(cols) : (j+1)*len(cols)]
		for i := range cols {
			row[i] = encoded[i][j]
		}
		rows[j] = row
	}
	tbl.BulkLoad(rows)
	ti.colBits[RIDCol] = uint(max(bits.Len64(uint64(n)), 1))
	c.tables[name] = ti
	return ti, nil
}

// Dict returns the dictionary of a string column, or nil.
func (ti *TableInfo) Dict(col string) *Dict { return ti.dicts[col] }

// Code encodes a string constant for predicates against col. It panics for
// unknown columns or strings (static query text against loaded data).
func (ti *TableInfo) Code(col, s string) uint64 {
	d := ti.dicts[col]
	if d == nil {
		panic(fmt.Sprintf("catalog: column %s.%s has no dictionary", ti.Name, col))
	}
	return d.MustCode(s)
}

// Decode renders a column value for output: dictionary strings decoded,
// integers printed as numbers.
func (ti *TableInfo) Decode(col string, v uint64) string {
	if d := ti.dicts[col]; d != nil {
		return d.String(v)
	}
	return fmt.Sprintf("%d", v)
}

// Bits reports the minimal key width of a column (RIDCol for the record
// identifier).
func (ti *TableInfo) Bits(col string) uint {
	b, ok := ti.colBits[col]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown column %s.%s", ti.Name, col))
	}
	return b
}

// An IndexDef describes a base index to build. With Include attributes the
// index is partially clustered: the payload carries those attributes (plus
// the RID) so operators never have to fetch records randomly during
// processing. Without Include it is a pure secondary index (payload = RID
// only).
type IndexDef struct {
	// KeyCols are the indexed attributes, most significant first for
	// composed (multidimensional) keys.
	KeyCols []string
	// Include are the payload attributes for partial clustering.
	Include []string
}

// IndexName derives the canonical name of an index. Two indexes on the
// same key columns but with different clustered payloads are distinct
// physical structures, so the Include list is part of the name.
func (def IndexDef) IndexName(table string) string {
	name := table + "[" + strings.Join(def.KeyCols, ",") + "]"
	if len(def.Include) > 0 {
		name += "{" + strings.Join(def.Include, ",") + "}"
	}
	return name
}

// BuildIndex builds (or returns the cached) base index for def over the
// current committed snapshot. The resulting indexed table's key spec uses
// the minimal column widths, so narrow domains get KISS-Trees. Safe for
// concurrent use: racing builders of the same index serialize on the
// table's index lock and all but one get the cached result.
func (ti *TableInfo) BuildIndex(def IndexDef) (*core.IndexedTable, error) {
	return ti.BuildIndexCtx(context.Background(), def)
}

// BuildIndexCtx is BuildIndex with cancellation: the build scans every
// committed row of the table — the most expensive cold-start step a query
// can trigger — and polls ctx between row batches, so a dead client stops
// a full fact-table scan (and releases the index lock for the builders
// waiting behind it).
func (ti *TableInfo) BuildIndexCtx(ctx context.Context, def IndexDef) (*core.IndexedTable, error) {
	ti.idxMu.Lock()
	defer ti.idxMu.Unlock()
	return ti.buildIndexLocked(ctx, def)
}

func (ti *TableInfo) buildIndexLocked(ctx context.Context, def IndexDef) (*core.IndexedTable, error) {
	name := def.IndexName(ti.Name)
	if t, ok := ti.indexes[name]; ok {
		return t, nil
	}
	keyPos := make([]int, len(def.KeyCols))
	keyBits := make([]uint, len(def.KeyCols))
	for i, kc := range def.KeyCols {
		if keyPos[i] = ti.Schema.Col(kc); keyPos[i] < 0 {
			return nil, fmt.Errorf("catalog: unknown key column %s.%s", ti.Name, kc)
		}
		keyBits[i] = ti.Bits(kc)
	}
	cols := append([]string{RIDCol}, def.Include...)
	colPos := make([]int, len(def.Include))
	for i, ic := range def.Include {
		if colPos[i] = ti.Schema.Col(ic); colPos[i] < 0 {
			return nil, fmt.Errorf("catalog: unknown include column %s.%s", ti.Name, ic)
		}
	}
	ks := core.GroupKey(def.KeyCols, keyBits)
	comp := ks.Composer()
	idx := core.NewIndex(core.IndexConfig{
		KeyBits:      ks.TotalBits(),
		PayloadWidth: len(cols),
	})
	row := make([]uint64, len(cols))
	fields := make([]uint64, len(keyPos))
	ts := tiNow(ti)
	scanned := 0
	ti.Table.ScanCommitted(ts, func(rid uint64, data []uint64) bool {
		if scanned++; scanned&8191 == 0 && ctx.Err() != nil {
			return false // cancelled mid-build; the partial index is dropped
		}
		var k uint64
		if comp == nil {
			k = data[keyPos[0]]
		} else {
			for i, p := range keyPos {
				fields[i] = data[p]
			}
			k = comp.Compose(fields...)
		}
		row[0] = rid
		for i, p := range colPos {
			row[i+1] = data[p]
		}
		idx.Insert(k, row)
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t := core.NewIndexedTable(name, ks, cols, idx)
	ti.indexes[name] = t
	return t, nil
}

// MustIndex is BuildIndex that panics on error, for static plans.
func (ti *TableInfo) MustIndex(keyCols []string, include ...string) *core.IndexedTable {
	t, err := ti.BuildIndex(IndexDef{KeyCols: keyCols, Include: include})
	if err != nil {
		panic(err)
	}
	return t
}

// Index returns a previously built index by canonical name, or nil.
func (ti *TableInfo) Index(name string) *core.IndexedTable {
	ti.idxMu.Lock()
	defer ti.idxMu.Unlock()
	return ti.indexes[name]
}

// RefreshIndexes rebuilds every built base index from the current
// committed snapshot. Base indexes have to care for transactional
// isolation (paper Section 3); this repository's OLAP lifecycle is
// load → index → query, so after committed mutations the indexes are
// refreshed wholesale rather than maintained incrementally. Plans built
// before a refresh keep reading their old (consistent) index snapshots;
// new plans see the new state.
func (ti *TableInfo) RefreshIndexes() error {
	ti.idxMu.Lock()
	defer ti.idxMu.Unlock()
	defs := make([]IndexDef, 0, len(ti.indexes))
	for _, t := range ti.indexes {
		def := IndexDef{KeyCols: t.Key.Attrs}
		// Payload column 0 is always the rid; the rest are the includes.
		def.Include = append(def.Include, t.Cols[1:]...)
		defs = append(defs, def)
	}
	ti.indexes = make(map[string]*core.IndexedTable, len(defs))
	// Column stats may have grown (new rows can widen a key domain).
	ti.refreshColBits()
	for _, def := range defs {
		if _, err := ti.buildIndexLocked(context.Background(), def); err != nil {
			return err
		}
	}
	return nil
}

// refreshColBits recomputes the minimal key widths from the committed
// data, so rebuilt indexes pick correct structures for grown domains.
func (ti *TableInfo) refreshColBits() {
	cols := ti.Schema.Cols()
	maxes := make([]uint64, len(cols))
	n := 0
	//qpptvet:ignore ctxpoll bulk-load/DDL path: runs before the table is served, outside any query context
	ti.Table.ScanCommitted(tiNow(ti), func(rid uint64, row []uint64) bool {
		for i, v := range row {
			if v > maxes[i] {
				maxes[i] = v
			}
		}
		n++
		return true
	})
	for i, c := range cols {
		ti.colBits[c.Name] = uint(max(bits.Len64(maxes[i]), 1))
	}
	ti.colBits[RIDCol] = uint(max(bits.Len64(uint64(ti.Table.NumRIDs())), 1))
}

// Indexes lists the canonical names of all built indexes.
func (ti *TableInfo) Indexes() []string {
	ti.idxMu.Lock()
	defer ti.idxMu.Unlock()
	names := make([]string, 0, len(ti.indexes))
	for n := range ti.indexes {
		names = append(names, n)
	}
	return names
}

// tiNow reads the table at the newest committed snapshot. Base index
// builds happen after bulk load, so "now" sees everything.
func tiNow(ti *TableInfo) uint64 {
	// The storage manager clock is monotone; bulk-loaded rows are visible
	// from timestamp 1 on.
	return ^uint64(0) >> 1 // any TS >= clock works for committed reads
}

// Rows reports the table cardinality (committed rows).
func (ti *TableInfo) Rows() int { return ti.Table.NumRIDs() }

// Columns materializes the committed table as encoded column arrays (dict
// codes for strings). Baseline engines load from here so that all engines
// operate on identical encodings and results compare exactly.
func (ti *TableInfo) Columns() map[string][]uint64 {
	n := ti.Rows()
	cols := ti.Schema.Cols()
	out := make(map[string][]uint64, len(cols))
	arrays := make([][]uint64, len(cols))
	for i, c := range cols {
		arrays[i] = make([]uint64, 0, n)
		out[c.Name] = nil // placeholder; set after the scan
	}
	//qpptvet:ignore ctxpoll baseline loader path: one-shot materialization at load time, outside any query context
	ti.Table.ScanCommitted(tiNow(ti), func(rid uint64, row []uint64) bool {
		for i := range cols {
			arrays[i] = append(arrays[i], row[i])
		}
		return true
	})
	for i, c := range cols {
		out[c.Name] = arrays[i]
	}
	return out
}
