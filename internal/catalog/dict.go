package catalog

import (
	"fmt"
	"sort"
)

// A Dict is an order-preserving string dictionary: codes are assigned in
// sorted string order, so unsigned comparison of codes equals
// lexicographic comparison of the strings. This is what lets QPPT run
// string predicates — points, IN lists, and BETWEEN ranges — directly on
// prefix-tree keys.
//
// Dictionaries are frozen at load time (the standard bulk-load-then-query
// OLAP lifecycle); adding strings later would require recoding.
type Dict struct {
	strs  []string
	codes map[string]uint64
}

// A DictBuilder accumulates the distinct strings of a column.
type DictBuilder struct {
	set map[string]struct{}
}

// NewDictBuilder returns an empty builder.
func NewDictBuilder() *DictBuilder {
	return &DictBuilder{set: make(map[string]struct{})}
}

// Add records one string occurrence.
func (b *DictBuilder) Add(s string) { b.set[s] = struct{}{} }

// Build freezes the dictionary, assigning order-preserving codes.
func (b *DictBuilder) Build() *Dict {
	d := &Dict{strs: make([]string, 0, len(b.set)), codes: make(map[string]uint64, len(b.set))}
	for s := range b.set {
		d.strs = append(d.strs, s)
	}
	sort.Strings(d.strs)
	for i, s := range d.strs {
		d.codes[s] = uint64(i)
	}
	return d
}

// Len reports the number of distinct strings.
func (d *Dict) Len() int { return len(d.strs) }

// Bits reports the key width needed for the code domain (at least 1).
func (d *Dict) Bits() uint {
	b := uint(1)
	for 1<<b < uint64(len(d.strs)) {
		b++
	}
	return b
}

// Code returns the code of s and whether s is in the dictionary.
func (d *Dict) Code(s string) (uint64, bool) {
	c, ok := d.codes[s]
	return c, ok
}

// MustCode is Code that panics for unknown strings, for static queries.
func (d *Dict) MustCode(s string) uint64 {
	c, ok := d.codes[s]
	if !ok {
		panic(fmt.Sprintf("catalog: string %q not in dictionary", s))
	}
	return c
}

// String returns the string for a code.
func (d *Dict) String(code uint64) string {
	if code >= uint64(len(d.strs)) {
		return fmt.Sprintf("<code %d>", code)
	}
	return d.strs[code]
}

// CeilCode returns the smallest code whose string is >= s, and ok == false
// if every string is smaller. Together with FloorCode it converts a string
// BETWEEN predicate to an inclusive code range.
func (d *Dict) CeilCode(s string) (uint64, bool) {
	i := sort.SearchStrings(d.strs, s)
	if i == len(d.strs) {
		return 0, false
	}
	return uint64(i), true
}

// FloorCode returns the largest code whose string is <= s, and ok == false
// if every string is larger.
func (d *Dict) FloorCode(s string) (uint64, bool) {
	i := sort.SearchStrings(d.strs, s)
	if i < len(d.strs) && d.strs[i] == s {
		return uint64(i), true
	}
	if i == 0 {
		return 0, false
	}
	return uint64(i - 1), true
}

// PrefixRange returns the inclusive code range of strings with the given
// prefix, and ok == false if no string has the prefix. Used for predicates
// like p_category = 'MFGR#12' when matching brand prefixes.
func (d *Dict) PrefixRange(prefix string) (lo, hi uint64, ok bool) {
	i := sort.SearchStrings(d.strs, prefix)
	j := i
	for j < len(d.strs) && len(d.strs[j]) >= len(prefix) && d.strs[j][:len(prefix)] == prefix {
		j++
	}
	if j == i {
		return 0, 0, false
	}
	return uint64(i), uint64(j - 1), true
}
