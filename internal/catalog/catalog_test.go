package catalog

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"qppt/internal/core"
	"qppt/internal/duplist"
)

func TestDictOrderPreserving(t *testing.T) {
	f := func(strs []string) bool {
		if len(strs) == 0 {
			return true
		}
		b := NewDictBuilder()
		for _, s := range strs {
			b.Add(s)
		}
		d := b.Build()
		for i := 0; i < len(strs)-1; i++ {
			c1 := d.MustCode(strs[i])
			c2 := d.MustCode(strs[i+1])
			if (strs[i] < strs[i+1]) != (c1 < c2) {
				return false
			}
			if d.String(c1) != strs[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDictRangeHelpers(t *testing.T) {
	b := NewDictBuilder()
	for _, s := range []string{"MFGR#11", "MFGR#12", "MFGR#13", "MFGR#21", "MFGR#22", "AAA"} {
		b.Add(s)
	}
	d := b.Build()
	if d.Len() != 6 {
		t.Fatalf("Len = %d", d.Len())
	}
	if c, ok := d.CeilCode("MFGR#12"); !ok || d.String(c) != "MFGR#12" {
		t.Error("CeilCode exact match wrong")
	}
	if c, ok := d.CeilCode("MFGR#14"); !ok || d.String(c) != "MFGR#21" {
		t.Error("CeilCode gap wrong")
	}
	if _, ok := d.CeilCode("ZZZ"); ok {
		t.Error("CeilCode past end reported ok")
	}
	if c, ok := d.FloorCode("MFGR#14"); !ok || d.String(c) != "MFGR#13" {
		t.Error("FloorCode gap wrong")
	}
	if _, ok := d.FloorCode("A"); ok {
		t.Error("FloorCode before start reported ok")
	}
	lo, hi, ok := d.PrefixRange("MFGR#1")
	if !ok || d.String(lo) != "MFGR#11" || d.String(hi) != "MFGR#13" {
		t.Errorf("PrefixRange = %q..%q", d.String(lo), d.String(hi))
	}
	if _, _, ok := d.PrefixRange("XX"); ok {
		t.Error("PrefixRange with no matches reported ok")
	}
	if d.Bits() != 3 {
		t.Errorf("Bits = %d, want 3", d.Bits())
	}
}

func loadMini(t *testing.T) (*Catalog, *TableInfo) {
	t.Helper()
	c := New()
	ti, err := c.Load("parts", []ColumnData{
		{Name: "partkey", Ints: []uint64{10, 11, 12, 13}},
		{Name: "brand", Strs: []string{"B#2", "B#1", "B#2", "B#3"}},
		{Name: "size", Ints: []uint64{7, 5, 7, 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, ti
}

func TestLoadAndEncode(t *testing.T) {
	c, ti := loadMini(t)
	if c.Table("parts") != ti || c.Table("nope") != nil {
		t.Fatal("table lookup broken")
	}
	if ti.Rows() != 4 {
		t.Fatalf("Rows = %d", ti.Rows())
	}
	if ti.Code("brand", "B#1") != 0 || ti.Code("brand", "B#3") != 2 {
		t.Fatal("dictionary codes not order-preserving")
	}
	if ti.Decode("brand", 1) != "B#2" || ti.Decode("size", 7) != "7" {
		t.Fatal("decode broken")
	}
	if ti.Bits("partkey") != 4 || ti.Bits("brand") != 2 {
		t.Fatalf("bits = %d/%d", ti.Bits("partkey"), ti.Bits("brand"))
	}
	if _, err := c.Load("parts", nil); err == nil {
		t.Fatal("duplicate load accepted")
	}
	if _, err := c.Load("bad", []ColumnData{
		{Name: "a", Ints: []uint64{1}},
		{Name: "b", Ints: []uint64{1, 2}},
	}); err == nil {
		t.Fatal("ragged load accepted")
	}
}

func TestBuildSecondaryIndex(t *testing.T) {
	_, ti := loadMini(t)
	idx, err := ti.BuildIndex(IndexDef{KeyCols: []string{"brand"}})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Keys() != 3 || idx.Rows() != 4 {
		t.Fatalf("keys/rows = %d/%d", idx.Keys(), idx.Rows())
	}
	if idx.Cols[0] != RIDCol || len(idx.Cols) != 1 {
		t.Fatalf("secondary payload = %v", idx.Cols)
	}
	// brand B#2 (code 1) has rids 0 and 2.
	vals := idx.Idx.Lookup(1)
	if vals == nil || vals.Len() != 2 {
		t.Fatal("duplicate key lost rows")
	}
	rids := map[uint64]bool{}
	vals.Scan(func(row []uint64) bool { rids[row[0]] = true; return true })
	if !rids[0] || !rids[2] {
		t.Fatalf("rids = %v", rids)
	}
	// Cached on second build.
	again, _ := ti.BuildIndex(IndexDef{KeyCols: []string{"brand"}})
	if again != idx {
		t.Fatal("index not cached")
	}
	if ti.Index(IndexDef{KeyCols: []string{"brand"}}.IndexName("parts")) != idx {
		t.Fatal("Index lookup by name failed")
	}
}

func TestBuildPartiallyClusteredIndex(t *testing.T) {
	_, ti := loadMini(t)
	idx := ti.MustIndex([]string{"partkey"}, "brand", "size")
	if len(idx.Cols) != 3 || idx.Cols[1] != "brand" || idx.Cols[2] != "size" {
		t.Fatalf("cols = %v", idx.Cols)
	}
	vals := idx.Idx.Lookup(12)
	if vals == nil || vals.Len() != 1 {
		t.Fatal("partkey 12 not found")
	}
	row := vals.First()
	if row[0] != 2 || row[1] != ti.Code("brand", "B#2") || row[2] != 7 {
		t.Fatalf("payload = %v", row)
	}
}

func TestBuildComposedKeyIndex(t *testing.T) {
	_, ti := loadMini(t)
	idx := ti.MustIndex([]string{"brand", "size"})
	if len(idx.Key.Attrs) != 2 {
		t.Fatalf("key attrs = %v", idx.Key.Attrs)
	}
	// Iterate: keys must come out sorted by (brand, size).
	type bs struct{ b, s uint64 }
	var got []bs
	comp := idx.Key.Composer()
	idx.Idx.Iterate(func(k uint64, vals *duplist.List) bool {
		got = append(got, bs{comp.Field(k, 0), comp.Field(k, 1)})
		return true
	})
	if len(got) != 3 {
		t.Fatalf("%d distinct (brand,size) keys, want 3", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		return got[i].b < got[j].b || (got[i].b == got[j].b && got[i].s < got[j].s)
	}) {
		t.Fatal("composed keys not sorted")
	}
	if _, err := ti.BuildIndex(IndexDef{KeyCols: []string{"nope"}}); err == nil {
		t.Fatal("unknown key column accepted")
	}
	if _, err := ti.BuildIndex(IndexDef{KeyCols: []string{"brand"}, Include: []string{"nope"}}); err == nil {
		t.Fatal("unknown include column accepted")
	}
}

func TestColumnsRoundTrip(t *testing.T) {
	_, ti := loadMini(t)
	cols := ti.Columns()
	if len(cols) != 3 || len(cols["partkey"]) != 4 {
		t.Fatalf("columns = %v", cols)
	}
	if cols["partkey"][2] != 12 || cols["size"][3] != 9 {
		t.Fatalf("int columns wrong: %v", cols)
	}
	if cols["brand"][1] != ti.Code("brand", "B#1") {
		t.Fatalf("string column not dictionary-encoded")
	}
}

func TestRefreshIndexesAfterMVCCMutations(t *testing.T) {
	c, ti := loadMini(t)
	idx := ti.MustIndex([]string{"partkey"}, "brand", "size")
	if idx.Rows() != 4 {
		t.Fatalf("initial rows = %d", idx.Rows())
	}

	// Committed insert, update and delete through the MVCC layer.
	tx := c.Manager().Begin()
	tbl := ti.Table
	if _, err := tx.Insert(tbl, []uint64{14, ti.Code("brand", "B#2"), 3}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(tbl, 0, []uint64{10, ti.Code("brand", "B#3"), 7}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// The old index still serves the old snapshot (plans in flight keep a
	// consistent view)...
	if idx.Rows() != 4 {
		t.Fatalf("old index changed: %d rows", idx.Rows())
	}
	// ...and a refresh rebuilds from the committed state: 4 − 1 + 1 rows.
	if err := ti.RefreshIndexes(); err != nil {
		t.Fatal(err)
	}
	fresh := ti.MustIndex([]string{"partkey"}, "brand", "size")
	if fresh == idx {
		t.Fatal("refresh returned the stale index")
	}
	if fresh.Rows() != 4 {
		t.Fatalf("refreshed rows = %d, want 4", fresh.Rows())
	}
	if fresh.Idx.Lookup(14) == nil {
		t.Error("inserted key missing after refresh")
	}
	if fresh.Idx.Lookup(11) != nil {
		t.Error("deleted row still indexed")
	}
	vals := fresh.Idx.Lookup(10)
	if vals == nil || vals.First()[1] != ti.Code("brand", "B#3") {
		t.Error("update not reflected after refresh")
	}
	// An aborted transaction must not surface after a refresh.
	tx2 := c.Manager().Begin()
	if _, err := tx2.Insert(tbl, []uint64{99, ti.Code("brand", "B#1"), 1}); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()
	if err := ti.RefreshIndexes(); err != nil {
		t.Fatal(err)
	}
	if ti.MustIndex([]string{"partkey"}, "brand", "size").Idx.Lookup(99) != nil {
		t.Error("aborted insert visible through refreshed index")
	}
}

func TestRefreshWidensKeyDomain(t *testing.T) {
	c, ti := loadMini(t)
	if ti.Bits("partkey") != 4 {
		t.Fatalf("initial partkey bits = %d", ti.Bits("partkey"))
	}
	tx := c.Manager().Begin()
	if _, err := tx.Insert(ti.Table, []uint64{1 << 40, ti.Code("brand", "B#1"), 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ti.RefreshIndexes(); err != nil {
		t.Fatal(err)
	}
	if ti.Bits("partkey") != 41 {
		t.Fatalf("partkey bits after refresh = %d, want 41", ti.Bits("partkey"))
	}
	// The rebuilt index must hold the wide key (prefix tree, not KISS).
	idx := ti.MustIndex([]string{"partkey"}, "brand", "size")
	if idx.Idx.Lookup(1<<40) == nil {
		t.Error("wide key not indexed after refresh")
	}
}

func TestIndexUsableInPlan(t *testing.T) {
	_, ti := loadMini(t)
	base := ti.MustIndex([]string{"brand"}, "partkey")
	sel := &core.Selection{
		Input: &core.Base{Table: base},
		Pred:  core.Point(ti.Code("brand", "B#2")),
		Out: core.OutputSpec{
			Name:     "σ",
			Key:      core.SimpleKey("partkey", ti.Bits("partkey")),
			KeyRefs:  []core.Ref{{Input: 0, Attr: "partkey"}},
			Cols:     []string{RIDCol},
			ColExprs: []core.RowExpr{core.Attr(0, RIDCol)},
		},
	}
	out, _, err := (&core.Plan{Root: sel}).Run(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := core.Extract(out)
	if len(res.Rows) != 2 || res.Rows[0][0] != 10 || res.Rows[1][0] != 12 {
		t.Fatalf("selection result = %v", res.Rows)
	}
}

// A cancelled context must abort a base-index build mid-scan instead of
// finishing a full table scan for a client that hung up.
func TestBuildIndexCtxCancelled(t *testing.T) {
	c := New()
	const n = 30000 // enough rows to cross the build's ctx poll interval
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i % 97)
	}
	ti, err := c.Load("big", []ColumnData{{Name: "v", Ints: vals}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ti.BuildIndexCtx(ctx, IndexDef{KeyCols: []string{"v"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v, want context.Canceled", err)
	}
	// The aborted build must not have cached a partial index; a later
	// build with a live context succeeds from scratch.
	idx, err := ti.BuildIndexCtx(context.Background(), IndexDef{KeyCols: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Rows() != n {
		t.Fatalf("rebuilt index has %d rows, want %d", idx.Rows(), n)
	}
}
