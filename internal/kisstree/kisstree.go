// Package kisstree implements the KISS-Tree (Kissinger et al., DaMoN 2012)
// as deployed by QPPT (paper Section 2.2, Figure 2(b)).
//
// The KISS-Tree is a prefix tree specialized for 32-bit keys that reaches a
// content node in at most two node accesses. The key is split into exactly
// two fragments: 26 bits select one of 2^26 root buckets, each holding a
// 32-bit compact pointer (an arena offset, not a machine pointer) to a
// second-level node of 2^6 = 64 buckets addressed by the remaining 6 bits.
//
// The original system allocates the 256 MB root virtually and lets the OS
// fault pages in on first write. Go cannot reserve-without-commit (a flat
// 2^26-entry slice would be re-zeroed by the allocator whenever a span is
// reused, charging every short-lived intermediate index ~256 MB of memset),
// so the root is emulated as a page directory: a small table of 1024 chunk
// pointers whose 256 KB chunks are allocated on first write. That is the
// same mechanism the OS applies to the original's virtual root — a page
// table in front of lazily faulted memory — at the cost of one extra
// cache-resident load per root access.
//
// Second-level nodes exist in two layouts. The uncompressed layout is a
// plain 64-slot array updated in place. The compressed layout (the
// original KISS-Tree default) stores a 64-bit occupancy bitmap plus a dense
// array of only the present slots; it saves memory and preserves locality,
// but every insertion of a new key must copy the node RCU-style. QPPT
// therefore disables compression for dense key domains (paper Section 2.2);
// the Compress knob reproduces both behaviours and the copy overhead.
package kisstree

import (
	"fmt"
	"math/bits"

	"qppt/internal/arena"
	"qppt/internal/duplist"
)

const (
	// KeyBits is the fixed key width of the KISS-Tree.
	KeyBits = 32
	// rootBits is the first fragment width (26 bits → 2^26 root buckets).
	rootBits = 26
	// leafBits is the second fragment width (6 bits → 64 node slots).
	leafBits  = KeyBits - rootBits
	rootSize  = 1 << rootBits
	nodeSlots = 1 << leafBits
	slotMask  = nodeSlots - 1

	// The virtual root's page directory: 1024 chunks of 2^16 buckets
	// (256 KB), materialized on first write.
	rootChunkBits = 16
	rootChunks    = rootSize >> rootChunkBits
	rootChunkMask = 1<<rootChunkBits - 1
)

// Config parameterizes a Tree.
type Config struct {
	// PayloadWidth is the number of uint64 attribute values per row.
	PayloadWidth int
	// Fold, if non-nil, makes insertion aggregate into the existing row
	// for the key instead of appending a duplicate.
	Fold func(dst, src []uint64)
	// Compress selects bitmask-compressed second-level nodes, which save
	// memory for sparse key ranges at the price of an RCU-style copy on
	// every new-key insert.
	Compress bool
	// Recycler, if non-nil, routes the tree's chunk storage — root pages,
	// node chunks, leaf chunks and slab blocks — through a plan-scoped
	// chunk pool (see package arena): growth draws from it, and
	// Release/Recycle park the chunks there for the next index.
	Recycler *arena.Recycler
}

// A Tree is a KISS-Tree mapping 32-bit keys to lists of fixed-width payload
// rows.
type Tree struct {
	cfg Config
	// root is the virtual root: a chunk directory of compact pointers.
	root [][]uint32
	// nodes stores uncompressed second-level nodes in the shared chunked
	// slot arena (package arena): one 64-slot block per node, addressed by
	// block ordinal, stable as the arena grows.
	nodes arena.Slots
	// cnodes are the compressed second-level nodes (bitmap + dense array).
	cnodes []cnode
	// leaves holds the content nodes; slot values are leaf index + 1.
	leaves arena.Arena[Leaf]
	// slab feeds duplicate-segment and first-row storage for all lists of
	// this tree, replacing per-key allocations with a few large blocks.
	slab *duplist.Slab

	keys, rows       int
	minKey, maxKey   uint32
	copies           int // RCU node copies performed (compression cost metric)
	touchedRootPages int // root pages written at least once (memory metric)

	// frozen marks a tree whose chunk storage is spilled (see spill.go);
	// counters and bounds stay valid, everything else is on disk.
	frozen bool
	// partial marks a tree whose leaf payloads were only partially
	// restored by ThawRange; thawedChunks records which leaf chunks are
	// back. Only keys inside the thawed ranges may be queried.
	partial      bool
	thawedChunks []bool
	// rootMapped marks root page chunks that alias an mmap-ed spill file
	// (ThawMapped); they must not be recycled, only dropped or copied.
	rootMapped bool
}

// cnode is a bitmask-compressed second-level node: a 64-bit occupancy
// bitmap plus a dense array of compact leaf pointers for the present slots.
type cnode struct {
	bitmap  uint64
	entries []uint32
}

// A Leaf is a content node: the full key and the payload row list. The
// list is embedded by value so that reaching the first payload row from a
// leaf costs no extra pointer chase.
type Leaf struct {
	Key  uint64
	Vals duplist.List
}

const leafChunkBits = 13 // 8192 leaves (~512 KB) per chunk

// New creates an empty KISS-Tree. The root is allocated virtually
// (2^26 × 4 B of untouched zero pages).
func New(cfg Config) (*Tree, error) {
	if cfg.PayloadWidth < 0 {
		return nil, fmt.Errorf("kisstree: negative PayloadWidth")
	}
	t := &Tree{
		cfg:    cfg,
		root:   make([][]uint32, rootChunks),
		nodes:  arena.MakeSlots(nodeSlots),
		leaves: arena.Make[Leaf](leafChunkBits),
		slab:   duplist.NewSlabIn(cfg.Recycler),
		minKey: ^uint32(0),
	}
	t.nodes.SetRecycler(cfg.Recycler)
	t.leaves.SetRecycler(cfg.Recycler)
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Keys reports the number of distinct keys.
func (t *Tree) Keys() int { return t.keys }

// Rows reports the total number of payload rows.
func (t *Tree) Rows() int { return t.rows }

// PayloadWidth reports the payload row width in uint64 words.
func (t *Tree) PayloadWidth() int { return t.cfg.PayloadWidth }

// Compressed reports whether second-level nodes use bitmask compression.
func (t *Tree) Compressed() bool { return t.cfg.Compress }

// RCUCopies reports how many second-level node copies compression has
// caused; always 0 for uncompressed trees. Exposed for the compression
// ablation benchmark.
func (t *Tree) RCUCopies() int { return t.copies }

func checkKey(key uint64) uint32 {
	if key >= 1<<KeyBits {
		panic(fmt.Sprintf("kisstree: key %#x exceeds 32 bits", key))
	}
	return uint32(key)
}

// rootGet reads a root bucket through the page directory; untouched
// chunks read as empty.
func (t *Tree) rootGet(idx uint32) uint32 {
	c := t.root[idx>>rootChunkBits]
	if c == nil {
		return 0
	}
	return c[idx&rootChunkMask]
}

// rootSet writes a root bucket, faulting the chunk in on first write.
func (t *Tree) rootSet(idx, v uint32) {
	c := t.root[idx>>rootChunkBits]
	if c == nil {
		c = t.newRootChunk()
		t.root[idx>>rootChunkBits] = c
	}
	c[idx&rootChunkMask] = v
}

// newRootChunk returns a zeroed root page chunk, recycled when the plan
// pool has one (root pages share the 256 KiB uint32 size class with the
// node-slot chunks of both tree kinds).
func (t *Tree) newRootChunk() []uint32 {
	if c, ok := arena.GetChunk[uint32](t.cfg.Recycler, 1<<rootChunkBits); ok {
		return c[:1<<rootChunkBits]
	}
	return make([]uint32, 1<<rootChunkBits)
}

// Insert adds a payload row under key (which must fit in 32 bits). With a
// Fold configured, the row is aggregated into the existing row instead.
func (t *Tree) Insert(key uint64, row []uint64) {
	k := checkKey(key)
	lf := t.leafFor(k)
	t.addRow(lf, row)
}

func (t *Tree) addRow(lf *Leaf, row []uint64) {
	if t.cfg.Fold != nil {
		was := lf.Vals.Len()
		lf.Vals.AggregateIn(t.slab, row, t.cfg.Fold)
		t.rows += lf.Vals.Len() - was
		return
	}
	lf.Vals.AppendIn(t.slab, row)
	t.rows++
}

// leafFor finds or creates the content entry for k.
func (t *Tree) leafFor(k uint32) *Leaf {
	return t.leaves.At(t.leafPtrFor(k) - 1)
}

// leafPtrFor finds or creates the content entry for k and returns its
// compact pointer (leaf arena index + 1) — the form batch inserts keep in
// their job state.
func (t *Tree) leafPtrFor(k uint32) uint32 {
	rootIdx := k >> leafBits
	slot := int(k & slotMask)
	ptr := t.rootGet(rootIdx)
	if ptr == 0 {
		t.touchedRootPages++ // approximation: one new bucket ~ page share
	}
	if t.cfg.Compress {
		return t.leafPtrForCompressed(rootIdx, slot, k, ptr)
	}
	if ptr == 0 {
		ptr = t.nodes.Alloc() + 1 // block ordinal + 1
		t.rootSet(rootIdx, ptr)
	}
	n := t.nodes.Block(ptr - 1)
	if n[slot] == 0 {
		n[slot] = t.newLeaf(k)
	}
	return n[slot]
}

// leafPtrForCompressed is the RCU path: adding a slot to a compressed node
// copies its dense entry array.
func (t *Tree) leafPtrForCompressed(rootIdx uint32, slot int, k uint32, ptr uint32) uint32 {
	bit := uint64(1) << slot
	if ptr == 0 {
		lp := t.newLeaf(k)
		t.cnodes = append(t.cnodes, cnode{bitmap: bit, entries: []uint32{lp}})
		t.rootSet(rootIdx, uint32(len(t.cnodes)))
		return lp
	}
	cn := &t.cnodes[ptr-1]
	pos := bits.OnesCount64(cn.bitmap & (bit - 1))
	if cn.bitmap&bit != 0 {
		return cn.entries[pos]
	}
	// New key in an existing node: copy the entry array (RCU update), then
	// publish the new node. In the original system the copy is what allows
	// lock-free readers; here it faithfully reproduces the copy cost.
	entries := make([]uint32, len(cn.entries)+1)
	copy(entries, cn.entries[:pos])
	entries[pos] = t.newLeaf(k)
	copy(entries[pos+1:], cn.entries[pos:])
	cn.entries = entries
	cn.bitmap |= bit
	t.copies++
	return entries[pos]
}

// newLeaf appends a fresh leaf for key k to the arena, returning its
// compact pointer (index+1).
func (t *Tree) newLeaf(k uint32) uint32 {
	lp := t.leaves.Alloc(Leaf{Key: uint64(k), Vals: duplist.Make(t.cfg.PayloadWidth)}) + 1
	t.keys++
	if k < t.minKey {
		t.minKey = k
	}
	if k > t.maxKey {
		t.maxKey = k
	}
	return lp
}

// Lookup returns the leaf for key, or nil if absent.
func (t *Tree) Lookup(key uint64) *Leaf {
	k := checkKey(key)
	ptr := t.rootGet(k >> leafBits)
	if ptr == 0 {
		return nil
	}
	slot := int(k & slotMask)
	if t.cfg.Compress {
		cn := &t.cnodes[ptr-1]
		bit := uint64(1) << slot
		if cn.bitmap&bit == 0 {
			return nil
		}
		pos := bits.OnesCount64(cn.bitmap & (bit - 1))
		return t.leaves.At(cn.entries[pos] - 1)
	}
	lp := t.nodes.Block(ptr - 1)[slot]
	if lp == 0 {
		return nil
	}
	return t.leaves.At(lp - 1)
}

// Contains reports whether key is present.
func (t *Tree) Contains(key uint64) bool { return t.Lookup(key) != nil }

// Min returns the smallest key; ok is false if the tree is empty.
func (t *Tree) Min() (uint64, bool) {
	if t.keys == 0 {
		return 0, false
	}
	return uint64(t.minKey), true
}

// Max returns the largest key; ok is false if the tree is empty.
func (t *Tree) Max() (uint64, bool) {
	if t.keys == 0 {
		return 0, false
	}
	return uint64(t.maxKey), true
}

// Iterate visits every leaf in ascending key order, restricted to the root
// range actually in use (the min/max trick from the synchronous scan). It
// stops early if visit returns false and reports whether it completed.
func (t *Tree) Iterate(visit func(lf *Leaf) bool) bool {
	if t.keys == 0 {
		return true
	}
	return t.iterateRange(t.minKey, t.maxKey, visit)
}

// Range visits, in ascending key order, every leaf with lo <= key <= hi.
func (t *Tree) Range(lo, hi uint64, visit func(lf *Leaf) bool) bool {
	if lo > hi || t.keys == 0 {
		return true
	}
	l := checkKey(lo)
	h := checkKey(hi)
	if l < t.minKey {
		l = t.minKey
	}
	if h > t.maxKey {
		h = t.maxKey
	}
	if l > h {
		return true
	}
	return t.iterateRange(l, h, visit)
}

func (t *Tree) iterateRange(lo, hi uint32, visit func(lf *Leaf) bool) bool {
	for rootIdx := lo >> leafBits; rootIdx <= hi>>leafBits; rootIdx++ {
		if t.root[rootIdx>>rootChunkBits] == nil {
			// Skip the whole untouched chunk.
			rootIdx |= rootChunkMask
			continue
		}
		ptr := t.rootGet(rootIdx)
		if ptr == 0 {
			continue
		}
		base := uint64(rootIdx) << leafBits
		if t.cfg.Compress {
			cn := &t.cnodes[ptr-1]
			bm := cn.bitmap
			for bm != 0 {
				slot := bits.TrailingZeros64(bm)
				bm &= bm - 1
				k := base | uint64(slot)
				if k < uint64(lo) || k > uint64(hi) {
					continue
				}
				pos := bits.OnesCount64(cn.bitmap & (uint64(1)<<slot - 1))
				if !visit(t.leaves.At(cn.entries[pos] - 1)) {
					return false
				}
			}
			continue
		}
		n := t.nodes.Block(ptr - 1)
		for slot := 0; slot < nodeSlots; slot++ {
			lp := n[slot]
			if lp == 0 {
				continue
			}
			k := base | uint64(slot)
			if k < uint64(lo) || k > uint64(hi) {
				continue
			}
			if !visit(t.leaves.At(lp - 1)) {
				return false
			}
		}
	}
	return true
}

// Delete removes key and all its rows, reporting whether it was present.
// If the deleted key was the current minimum or maximum, the boundary is
// recomputed with a root scan over the used range — deletes are rare on
// QPPT intermediate indexes, which are built once and then only read.
func (t *Tree) Delete(key uint64) bool {
	k := checkKey(key)
	ptr := t.rootGet(k >> leafBits)
	if ptr == 0 {
		return false
	}
	slot := int(k & slotMask)
	var removedRows int
	if t.cfg.Compress {
		cn := &t.cnodes[ptr-1]
		bit := uint64(1) << slot
		if cn.bitmap&bit == 0 {
			return false
		}
		pos := bits.OnesCount64(cn.bitmap & (bit - 1))
		removedRows = t.leaves.At(cn.entries[pos] - 1).Vals.Len()
		entries := make([]uint32, len(cn.entries)-1)
		copy(entries, cn.entries[:pos])
		copy(entries[pos:], cn.entries[pos+1:])
		cn.entries = entries
		cn.bitmap &^= bit
		t.copies++
		if cn.bitmap == 0 {
			t.rootSet(k>>leafBits, 0)
		}
	} else {
		n := t.nodes.Block(ptr - 1)
		lp := n[slot]
		if lp == 0 {
			return false
		}
		removedRows = t.leaves.At(lp - 1).Vals.Len()
		n[slot] = 0
	}
	t.keys--
	t.rows -= removedRows
	if t.keys == 0 {
		t.minKey, t.maxKey = ^uint32(0), 0
	} else if k == t.minKey || k == t.maxKey {
		t.recomputeBounds()
	}
	return true
}

func (t *Tree) recomputeBounds() {
	lo, hi := t.minKey, t.maxKey
	t.minKey, t.maxKey = ^uint32(0), 0
	t.iterateRange(lo, hi, func(lf *Leaf) bool {
		k := uint32(lf.Key)
		if k < t.minKey {
			t.minKey = k
		}
		if k > t.maxKey {
			t.maxKey = k
		}
		return true
	})
}

// Bytes estimates the *physically touched* heap footprint in bytes: the
// node arena, leaf-header arena and payload slab, plus the root pages
// that were actually written (the untouched remainder of the 256 MB root
// is virtual only).
func (t *Tree) Bytes() int {
	b := t.nodes.Bytes() + len(t.cnodes)*32
	for i := range t.cnodes {
		b += len(t.cnodes[i].entries) * 4
	}
	b += t.leaves.Bytes()
	if t.slab != nil {
		b += t.slab.Bytes()
	}
	// Root: the directory plus the chunks actually faulted in.
	b += rootChunks * 8
	for _, c := range t.root {
		if c != nil {
			b += len(c) * 4
		}
	}
	return b
}
