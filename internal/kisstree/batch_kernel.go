package kisstree

import (
	"sync"

	"qppt/internal/kernel"
)

// Kernelized KISS batch lookup (the SWAR path behind LookupBatch).
//
// The scalar batch path recomputes shift/mask arithmetic per key inside
// each level's access loop. The kernel path hoists all of it: one
// kernel.Frags sweep extracts every key's root-bucket index, another its
// node slot — both unrolled and bounds-check-free — so the per-level
// loops reduce to pure memory accesses over precomputed fragments. The
// root-access memo and the three level-synchronous passes (root, node,
// content) are unchanged from the scalar path, which stays the oracle.

const rootIdxMask = uint64(1)<<rootBits - 1

// kissScratch holds the kernel path's parallel arrays: per-key root
// index and node slot (extracted up front), and the compact pointer
// chain reused across the level passes.
type kissScratch struct {
	idx  []uint64
	slot []uint64
	ptrs []uint32
}

var kissScratchPool = sync.Pool{New: func() any { return new(kissScratch) }}

func getKissScratch(n int) *kissScratch {
	ks := kissScratchPool.Get().(*kissScratch)
	if cap(ks.idx) < n {
		ks.idx = make([]uint64, n)
		ks.slot = make([]uint64, n)
		ks.ptrs = make([]uint32, n)
	}
	ks.idx = ks.idx[:n]
	ks.slot = ks.slot[:n]
	ks.ptrs = ks.ptrs[:n]
	return ks
}

func (t *Tree) lookupBatchKernel(keys []uint64, visit func(i int, lf *Leaf)) {
	n := len(keys)
	ks := getKissScratch(n)
	idxs, slots, ptrs := ks.idx, ks.slot, ks.ptrs
	for _, k := range keys {
		checkKey(k)
	}
	// Fragment sweeps: root-bucket index (bits 6..31) and node slot
	// (bits 0..5) for the whole batch in two unrolled passes.
	kernel.Frags(idxs, keys, leafBits, rootIdxMask)
	kernel.Frags(slots, keys, 0, slotMask)
	// Level 1: root accesses, memoizing the last bucket (sorted probe
	// batches put same-bucket keys next to each other).
	lastIdx, lastPtr, haveLast := uint64(0), uint32(0), false
	for i, idx := range idxs {
		if !haveLast || idx != lastIdx {
			lastIdx, lastPtr, haveLast = idx, t.rootGet(uint32(idx)), true
		}
		ptrs[i] = lastPtr
	}
	// Level 2: node-slot accesses over the precomputed slots.
	if t.cfg.Compress {
		for i, ptr := range ptrs {
			if ptr == 0 {
				continue
			}
			cn := &t.cnodes[ptr-1]
			slot := int(slots[i])
			if cn.bitmap&(uint64(1)<<slot) == 0 {
				ptrs[i] = 0
				continue
			}
			ptrs[i] = cn.entries[onesBelow(cn.bitmap, slot)]
		}
	} else {
		for i, ptr := range ptrs {
			if ptr != 0 {
				ptrs[i] = t.nodes.Block(ptr - 1)[slots[i]]
			}
		}
	}
	// Level 3: content accesses, independent across jobs.
	for i, lp := range ptrs {
		if lp == 0 {
			visit(i, nil)
		} else {
			visit(i, t.leaves.At(lp-1))
		}
	}
	kissScratchPool.Put(ks)
}
