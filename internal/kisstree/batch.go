package kisstree

import (
	"math/bits"
	"sync"

	"qppt/internal/kernel"
)

// onesBelow counts occupied slots below slot in a compressed node's bitmap,
// i.e. the dense-array position of slot.
func onesBelow(bm uint64, slot int) int {
	return bits.OnesCount64(bm & (uint64(1)<<slot - 1))
}

// Batch processing for the KISS-Tree (paper Sections 2.3 and 2.5, the
// "KISS Batched" series of Figure 3).
//
// A KISS lookup is two dependent memory accesses (root bucket, then node
// slot) plus the content access. Processing a batch level-by-level turns
// each level into a tight loop of *independent* loads — all root accesses,
// then all node accesses, then all content accesses — so the memory system
// overlaps the cache misses across jobs instead of serializing them per
// key (the software-pipelining effect the paper gets from explicit
// prefetch instructions).

// ptrPool recycles the per-batch compact-pointer scratch so steady-state
// batched probes and inserts allocate nothing. A sync.Pool (rather than a
// tree-owned buffer) keeps concurrent LookupBatch calls from parallel
// morsel workers safe: each call checks out a private buffer.
var ptrPool = sync.Pool{New: func() any { return new([]uint32) }}

// getPtrs checks a uint32 scratch buffer of length n out of the pool,
// growing it only when a larger batch than ever before arrives.
func getPtrs(n int) *[]uint32 {
	pp := ptrPool.Get().(*[]uint32)
	if cap(*pp) < n {
		*pp = make([]uint32, n)
	}
	*pp = (*pp)[:n]
	return pp
}

// LookupBatch resolves all keys and calls visit(i, leaf) for each, where
// leaf is nil for absent keys. Batches large enough to amortize the setup
// take the kernelized path (batch_kernel.go), which hoists the fragment
// arithmetic into unrolled word-parallel sweeps; the loop below stays the
// fallback and the oracle.
func (t *Tree) LookupBatch(keys []uint64, visit func(i int, lf *Leaf)) {
	if kernel.Batched(len(keys)) {
		t.lookupBatchKernel(keys, visit)
		return
	}
	t.lookupBatchScalar(keys, visit)
}

func (t *Tree) lookupBatchScalar(keys []uint64, visit func(i int, lf *Leaf)) {
	if len(keys) == 0 {
		return
	}
	pp := getPtrs(len(keys))
	ptrs := *pp
	// Level 1: all root accesses back to back. Key-sorted batches (the
	// fused chains' probe buffers arrive sorted) place same-bucket keys
	// next to each other; reusing the previous root access then walks
	// each shared bucket descent once instead of once per key.
	lastIdx, lastPtr, haveLast := uint32(0), uint32(0), false
	for i, key := range keys {
		idx := checkKey(key) >> leafBits
		if !haveLast || idx != lastIdx {
			lastIdx, lastPtr, haveLast = idx, t.rootGet(idx), true
		}
		ptrs[i] = lastPtr
	}
	// Level 2: all node-slot accesses back to back, reusing ptrs for the
	// resulting compact leaf pointers.
	if t.cfg.Compress {
		for i, key := range keys {
			ptr := ptrs[i]
			if ptr == 0 {
				continue
			}
			cn := &t.cnodes[ptr-1]
			slot := int(uint32(key) & slotMask)
			if cn.bitmap&(uint64(1)<<slot) == 0 {
				ptrs[i] = 0
				continue
			}
			ptrs[i] = cn.entries[onesBelow(cn.bitmap, slot)]
		}
	} else {
		for i, key := range keys {
			if ptr := ptrs[i]; ptr != 0 {
				ptrs[i] = t.nodes.Block(ptr - 1)[uint32(key)&slotMask]
			}
		}
	}
	// Level 3: content accesses, independent across jobs.
	for i, lp := range ptrs {
		if lp == 0 {
			visit(i, nil)
		} else {
			visit(i, t.leaves.At(lp-1))
		}
	}
	ptrPool.Put(pp)
}

// lookupInNode resolves the second level and content access for one key,
// given its root pointer. Shared by the synchronous index scan.
func (t *Tree) lookupInNode(ptr uint32, k uint32) *Leaf {
	slot := int(k & slotMask)
	if t.cfg.Compress {
		cn := &t.cnodes[ptr-1]
		bit := uint64(1) << slot
		if cn.bitmap&bit == 0 {
			return nil
		}
		return t.leaves.At(cn.entries[onesBelow(cn.bitmap, slot)] - 1)
	}
	lp := t.nodes.Block(ptr - 1)[slot]
	if lp == 0 {
		return nil
	}
	return t.leaves.At(lp - 1)
}

// InsertBatch inserts rows[i] under keys[i] for all i. rows may be nil for
// width-0 trees; otherwise len(rows) must equal len(keys).
func (t *Tree) InsertBatch(keys []uint64, rows [][]uint64) {
	if len(keys) == 0 {
		return
	}
	if rows != nil && len(rows) != len(keys) {
		panic("kisstree: InsertBatch length mismatch")
	}
	// Pass 1 resolves/creates all content nodes level-synchronously,
	// recording compact leaf pointers (arena indices + 1, not machine
	// pointers) in pooled scratch; pass 2 appends the payload rows.
	// Buffered intermediate-index inserts in QPPT operators run through
	// here.
	pp := getPtrs(len(keys))
	ptrs := *pp
	for i, key := range keys {
		ptrs[i] = t.leafPtrFor(checkKey(key))
	}
	for i, lp := range ptrs {
		var row []uint64
		if rows != nil {
			row = rows[i]
		}
		t.addRow(t.leaves.At(lp-1), row)
	}
	ptrPool.Put(pp)
}
