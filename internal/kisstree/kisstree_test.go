package kisstree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func configs() []Config {
	return []Config{
		{PayloadWidth: 1},
		{PayloadWidth: 1, Compress: true},
	}
}

func TestInsertLookup(t *testing.T) {
	for _, cfg := range configs() {
		tr := MustNew(cfg)
		keys := []uint64{0, 1, 63, 64, 65, 1 << 26, 1<<32 - 1, 12345678}
		for i, k := range keys {
			tr.Insert(k, []uint64{uint64(i)})
		}
		if tr.Keys() != len(keys) {
			t.Fatalf("compress=%v: Keys = %d, want %d", cfg.Compress, tr.Keys(), len(keys))
		}
		for i, k := range keys {
			lf := tr.Lookup(k)
			if lf == nil {
				t.Fatalf("compress=%v: key %d not found", cfg.Compress, k)
			}
			if lf.Key != k || lf.Vals.First()[0] != uint64(i) {
				t.Fatalf("compress=%v: key %d wrong leaf", cfg.Compress, k)
			}
		}
		if tr.Lookup(2) != nil || tr.Lookup(1<<31) != nil {
			t.Fatalf("compress=%v: absent key found", cfg.Compress)
		}
	}
}

func TestKeyRangePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("33-bit key did not panic")
		}
	}()
	MustNew(Config{}).Insert(1<<32, nil)
}

func TestDuplicatesAndFold(t *testing.T) {
	tr := MustNew(Config{PayloadWidth: 1})
	for i := 0; i < 100; i++ {
		tr.Insert(7, []uint64{uint64(i)})
	}
	if tr.Keys() != 1 || tr.Rows() != 100 {
		t.Fatalf("Keys/Rows = %d/%d", tr.Keys(), tr.Rows())
	}
	agg := MustNew(Config{PayloadWidth: 1, Fold: func(dst, src []uint64) { dst[0] += src[0] }})
	for i := uint64(1); i <= 100; i++ {
		agg.Insert(i%5, []uint64{i})
	}
	if agg.Keys() != 5 || agg.Rows() != 5 {
		t.Fatalf("agg Keys/Rows = %d/%d", agg.Keys(), agg.Rows())
	}
	var total uint64
	agg.Iterate(func(lf *Leaf) bool { total += lf.Vals.First()[0]; return true })
	if total != 5050 {
		t.Fatalf("aggregate total = %d", total)
	}
}

func TestIterateOrderAndRange(t *testing.T) {
	for _, cfg := range configs() {
		tr := MustNew(cfg)
		rng := rand.New(rand.NewSource(17))
		oracle := map[uint64]bool{}
		for i := 0; i < 20000; i++ {
			k := uint64(rng.Uint32())
			tr.Insert(k, []uint64{k})
			oracle[k] = true
		}
		var prev uint64
		n := 0
		tr.Iterate(func(lf *Leaf) bool {
			if n > 0 && lf.Key <= prev {
				t.Fatalf("compress=%v: iteration out of order", cfg.Compress)
			}
			if !oracle[lf.Key] {
				t.Fatalf("compress=%v: phantom key %d", cfg.Compress, lf.Key)
			}
			prev = lf.Key
			n++
			return true
		})
		if n != len(oracle) {
			t.Fatalf("compress=%v: iterated %d keys, want %d", cfg.Compress, n, len(oracle))
		}

		lo, hi := uint64(1<<30), uint64(3<<30)
		want := 0
		for k := range oracle {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		tr.Range(lo, hi, func(lf *Leaf) bool {
			if lf.Key < lo || lf.Key > hi {
				t.Fatalf("compress=%v: range violated", cfg.Compress)
			}
			got++
			return true
		})
		if got != want {
			t.Fatalf("compress=%v: range visited %d, want %d", cfg.Compress, got, want)
		}
	}
}

func TestMinMaxAndDelete(t *testing.T) {
	for _, cfg := range configs() {
		tr := MustNew(cfg)
		if _, ok := tr.Min(); ok {
			t.Fatal("Min on empty ok")
		}
		keys := []uint64{100, 5, 999999, 1 << 31}
		for _, k := range keys {
			tr.Insert(k, []uint64{k})
		}
		if mn, _ := tr.Min(); mn != 5 {
			t.Fatalf("Min = %d", mn)
		}
		if mx, _ := tr.Max(); mx != 1<<31 {
			t.Fatalf("Max = %d", mx)
		}
		if tr.Delete(12345) {
			t.Fatal("deleted absent key")
		}
		if !tr.Delete(5) || tr.Lookup(5) != nil {
			t.Fatal("delete of min failed")
		}
		if mn, _ := tr.Min(); mn != 100 {
			t.Fatalf("Min after delete = %d", mn)
		}
		if !tr.Delete(1 << 31) {
			t.Fatal("delete of max failed")
		}
		if mx, _ := tr.Max(); mx != 999999 {
			t.Fatalf("Max after delete = %d", mx)
		}
		tr.Delete(100)
		tr.Delete(999999)
		if tr.Keys() != 0 {
			t.Fatalf("Keys = %d after deleting all", tr.Keys())
		}
		if _, ok := tr.Min(); ok {
			t.Fatal("Min ok on emptied tree")
		}
	}
}

func TestCompressionRCUCopies(t *testing.T) {
	// Dense inserts into one node: the compressed tree must copy on every
	// new key after the first, the uncompressed tree never.
	comp := MustNew(Config{Compress: true})
	flat := MustNew(Config{})
	for i := uint64(0); i < 64; i++ {
		comp.Insert(i, nil)
		flat.Insert(i, nil)
	}
	if comp.RCUCopies() != 63 {
		t.Errorf("compressed RCU copies = %d, want 63", comp.RCUCopies())
	}
	if flat.RCUCopies() != 0 {
		t.Errorf("uncompressed RCU copies = %d, want 0", flat.RCUCopies())
	}
}

func TestCompressionSavesMemoryOnSparseKeys(t *testing.T) {
	comp := MustNew(Config{Compress: true})
	flat := MustNew(Config{})
	// One key per second-level node: compression stores 1 entry vs 64 slots.
	for i := uint64(0); i < 1000; i++ {
		comp.Insert(i<<leafBits, nil)
		flat.Insert(i<<leafBits, nil)
	}
	if comp.Bytes() >= flat.Bytes() {
		t.Errorf("compressed %d B >= uncompressed %d B on sparse keys", comp.Bytes(), flat.Bytes())
	}
}

func TestPropertyOracle(t *testing.T) {
	for _, cfg := range configs() {
		cfg := cfg
		f := func(ops []uint32) bool {
			tr := MustNew(cfg)
			oracle := map[uint64]uint64{}
			for _, op := range ops {
				k := uint64(op % 100000)
				if op%4 == 3 {
					del := tr.Delete(k)
					_, present := oracle[k]
					if del != present {
						return false
					}
					delete(oracle, k)
					continue
				}
				tr.Insert(k, []uint64{uint64(op)})
				if _, dup := oracle[k]; !dup {
					oracle[k] = uint64(op)
				}
			}
			if tr.Keys() != len(oracle) {
				return false
			}
			for k, v := range oracle {
				lf := tr.Lookup(k)
				if lf == nil || lf.Vals.First()[0] != v {
					return false
				}
			}
			return true
		}
		qcfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(23))}
		if err := quick.Check(f, qcfg); err != nil {
			t.Fatalf("compress=%v: %v", cfg.Compress, err)
		}
	}
}

func TestLookupBatchMatchesScalar(t *testing.T) {
	for _, cfg := range configs() {
		tr := MustNew(cfg)
		rng := rand.New(rand.NewSource(29))
		for i := 0; i < 10000; i++ {
			k := uint64(rng.Uint32() % 200000)
			tr.Insert(k, []uint64{k})
		}
		batch := make([]uint64, 4096)
		for i := range batch {
			batch[i] = uint64(rng.Uint32() % 400000)
		}
		tr.LookupBatch(batch, func(i int, lf *Leaf) {
			scalar := tr.Lookup(batch[i])
			if lf != scalar {
				t.Fatalf("compress=%v: batch[%d]=%d mismatch", cfg.Compress, i, batch[i])
			}
		})
	}
}

func TestInsertBatchMatchesScalar(t *testing.T) {
	for _, cfg := range configs() {
		rng := rand.New(rand.NewSource(31))
		keys := make([]uint64, 5000)
		rows := make([][]uint64, len(keys))
		for i := range keys {
			keys[i] = uint64(rng.Uint32() % 10000)
			rows[i] = []uint64{uint64(i)}
		}
		scalar := MustNew(cfg)
		batched := MustNew(cfg)
		for i, k := range keys {
			scalar.Insert(k, rows[i])
		}
		batched.InsertBatch(keys, rows)
		if scalar.Keys() != batched.Keys() || scalar.Rows() != batched.Rows() {
			t.Fatalf("compress=%v: keys/rows mismatch", cfg.Compress)
		}
		scalar.Iterate(func(lf *Leaf) bool {
			blf := batched.Lookup(lf.Key)
			if blf == nil || blf.Vals.Len() != lf.Vals.Len() {
				t.Fatalf("compress=%v: key %d differs", cfg.Compress, lf.Key)
			}
			return true
		})
	}
}

func TestSyncScanIntersection(t *testing.T) {
	for _, cfgA := range configs() {
		for _, cfgB := range configs() {
			a := MustNew(Config{Compress: cfgA.Compress})
			b := MustNew(Config{Compress: cfgB.Compress})
			sa, sb := map[uint64]bool{}, map[uint64]bool{}
			rng := rand.New(rand.NewSource(37))
			for i := 0; i < 5000; i++ {
				ka, kb := uint64(rng.Uint32()%8000), uint64(rng.Uint32()%8000)
				a.Insert(ka, nil)
				b.Insert(kb, nil)
				sa[ka], sb[kb] = true, true
			}
			want := 0
			for k := range sa {
				if sb[k] {
					want++
				}
			}
			got := 0
			prev, first := uint64(0), true
			SyncScan(a, b, func(la, lb *Leaf) bool {
				if la.Key != lb.Key || !sa[la.Key] || !sb[la.Key] {
					t.Fatal("bad intersection element")
				}
				if !first && la.Key <= prev {
					t.Fatal("intersection out of order")
				}
				prev, first = la.Key, false
				got++
				return true
			})
			if got != want {
				t.Fatalf("intersection size %d, want %d", got, want)
			}
		}
	}
}

func TestSyncScanDisjointRootRanges(t *testing.T) {
	a, b := MustNew(Config{}), MustNew(Config{})
	for i := uint64(0); i < 1000; i++ {
		a.Insert(i, nil)
		b.Insert(i+1<<30, nil)
	}
	SyncScan(a, b, func(la, lb *Leaf) bool {
		t.Fatal("visited key in disjoint trees")
		return false
	})
}

func TestSyncScanEmpty(t *testing.T) {
	a, b := MustNew(Config{}), MustNew(Config{})
	a.Insert(1, nil)
	if !SyncScan(a, b, func(*Leaf, *Leaf) bool { t.Fatal("visit"); return false }) {
		t.Fatal("scan of empty reported early stop")
	}
}
