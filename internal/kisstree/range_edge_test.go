package kisstree

import (
	"reflect"
	"testing"
)

// Range/Iterate edge cases for the compressed-KISS layout (and, as a
// cross-check, the uncompressed one): empty tree, single key, and bounds
// straddling root-chunk boundaries, where the chunk-skipping fast path of
// iterateRange must not jump over populated buckets.

func collectRange(t *Tree, lo, hi uint64) []uint64 {
	var keys []uint64
	t.Range(lo, hi, func(lf *Leaf) bool {
		keys = append(keys, lf.Key)
		return true
	})
	return keys
}

func TestCompressedRangeEdgeCases(t *testing.T) {
	for _, compress := range []bool{true, false} {
		tr := MustNew(Config{Compress: compress})

		// Empty tree: nothing visits, scans complete.
		if got := collectRange(tr, 0, ^uint64(0)>>32); got != nil {
			t.Fatalf("compress=%v: empty tree range visited %v", compress, got)
		}
		if !tr.Iterate(func(*Leaf) bool { t.Fatal("empty Iterate visited"); return false }) {
			t.Fatalf("compress=%v: empty Iterate did not complete", compress)
		}

		// Single key: all window positions relative to it.
		tr.Insert(1<<20, nil)
		single := []struct {
			lo, hi uint64
			want   []uint64
		}{
			{0, 1<<32 - 1, []uint64{1 << 20}},
			{1 << 20, 1 << 20, []uint64{1 << 20}},
			{0, 1<<20 - 1, nil},
			{1<<20 + 1, 1<<32 - 1, nil},
		}
		for _, c := range single {
			if got := collectRange(tr, c.lo, c.hi); !reflect.DeepEqual(got, c.want) {
				t.Fatalf("compress=%v: single-key range [%#x,%#x] = %v, want %v",
					compress, c.lo, c.hi, got, c.want)
			}
		}
	}
}

func TestCompressedRangeAcrossChunkBoundaries(t *testing.T) {
	// A root chunk covers 2^16 root buckets = 2^22 keys. Plant keys just
	// below, at, and just above the first chunk boundary, plus one far
	// away, so the nil-chunk skip (rootIdx |= rootChunkMask) is exercised
	// with populated chunks on both sides of an untouched one.
	const chunkKeys = uint64(1) << (rootChunkBits + leafBits)
	keys := []uint64{
		chunkKeys - 2, chunkKeys - 1, // last buckets of chunk 0
		chunkKeys, chunkKeys + 1, // first buckets of chunk 1
		5 * chunkKeys, // chunk 5; chunks 2-4 untouched
	}
	for _, compress := range []bool{true, false} {
		tr := MustNew(Config{Compress: compress})
		for _, k := range keys {
			tr.Insert(k, nil)
		}
		cases := []struct {
			lo, hi uint64
			want   []uint64
		}{
			// Straddle the chunk 0 / chunk 1 boundary.
			{chunkKeys - 2, chunkKeys + 1, []uint64{chunkKeys - 2, chunkKeys - 1, chunkKeys, chunkKeys + 1}},
			// Clip exactly at the boundary from both sides.
			{0, chunkKeys - 1, []uint64{chunkKeys - 2, chunkKeys - 1}},
			{chunkKeys, 2*chunkKeys - 1, []uint64{chunkKeys, chunkKeys + 1}},
			// Window entirely inside untouched chunks.
			{2 * chunkKeys, 4*chunkKeys - 1, nil},
			// Window spanning the untouched gap to the far key.
			{chunkKeys + 1, 5 * chunkKeys, []uint64{chunkKeys + 1, 5 * chunkKeys}},
			// Everything.
			{0, 1<<32 - 1, keys},
		}
		for _, c := range cases {
			if got := collectRange(tr, c.lo, c.hi); !reflect.DeepEqual(got, c.want) {
				t.Fatalf("compress=%v: range [%#x,%#x] = %v, want %v", compress, c.lo, c.hi, got, c.want)
			}
		}
		var all []uint64
		tr.Iterate(func(lf *Leaf) bool {
			all = append(all, lf.Key)
			return true
		})
		if !reflect.DeepEqual(all, keys) {
			t.Fatalf("compress=%v: Iterate = %v, want %v", compress, all, keys)
		}
	}
}
