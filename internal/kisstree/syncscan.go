package kisstree

import "math/bits"

// SyncScan is the synchronous index scan over two KISS-Trees (paper
// Section 4.2): both root arrays are scanned in lockstep, restricted to
// [max(a.min, b.min), min(a.max, b.max)] so dense keys never touch the full
// 2^26-bucket roots, and second-level nodes are only visited for buckets
// populated in both trees. For compressed nodes the slot intersection is a
// single bitmap AND.
//
// Visit receives the matching leaves in ascending key order. SyncScan stops
// early if visit returns false and reports whether it completed.
func SyncScan(a, b *Tree, visit func(la, lb *Leaf) bool) bool {
	if a.keys == 0 || b.keys == 0 {
		return true
	}
	lo := max(a.minKey, b.minKey)
	hi := min(a.maxKey, b.maxKey)
	if lo > hi {
		return true
	}
	for rootIdx := lo >> leafBits; rootIdx <= hi>>leafBits; rootIdx++ {
		if a.root[rootIdx>>rootChunkBits] == nil || b.root[rootIdx>>rootChunkBits] == nil {
			// A whole 2^16-bucket chunk is untouched in one tree: skip it.
			rootIdx |= rootChunkMask
			continue
		}
		pa, pb := a.rootGet(rootIdx), b.rootGet(rootIdx)
		if pa == 0 || pb == 0 {
			continue // bucket unused in at least one index: skip
		}
		if !syncNode(a, b, pa, pb, uint64(rootIdx)<<leafBits, visit) {
			return false
		}
	}
	return true
}

// SyncScanRange is SyncScan restricted to keys in [lo, hi] — the
// partitioning primitive for intra-operator parallelism (paper Section 7).
// Partition boundaries align with root buckets, so concurrent workers on
// disjoint ranges never touch the same second-level node.
func SyncScanRange(a, b *Tree, lo, hi uint64, visit func(la, lb *Leaf) bool) bool {
	if lo > hi || a.keys == 0 || b.keys == 0 {
		return true
	}
	l := max(uint32(lo), max(a.minKey, b.minKey))
	h := min(uint32(hi), min(a.maxKey, b.maxKey))
	if l > h {
		return true
	}
	for rootIdx := l >> leafBits; rootIdx <= h>>leafBits; rootIdx++ {
		if a.root[rootIdx>>rootChunkBits] == nil || b.root[rootIdx>>rootChunkBits] == nil {
			rootIdx |= rootChunkMask
			continue
		}
		pa, pb := a.rootGet(rootIdx), b.rootGet(rootIdx)
		if pa == 0 || pb == 0 {
			continue
		}
		base := uint64(rootIdx) << leafBits
		if !syncNode(a, b, pa, pb, base, func(la, lb *Leaf) bool {
			if la.Key < uint64(l) || la.Key > uint64(h) {
				return true // edge bucket: clip to the partition
			}
			return visit(la, lb)
		}) {
			return false
		}
	}
	return true
}

// syncNode intersects two second-level nodes that share a root bucket.
func syncNode(a, b *Tree, pa, pb uint32, base uint64, visit func(la, lb *Leaf) bool) bool {
	bma := nodeBitmap(a, pa)
	bmb := nodeBitmap(b, pb)
	both := bma & bmb
	for both != 0 {
		slot := bits.TrailingZeros64(both)
		both &= both - 1
		la := a.lookupInNode(pa, uint32(base)|uint32(slot))
		lb := b.lookupInNode(pb, uint32(base)|uint32(slot))
		if !visit(la, lb) {
			return false
		}
	}
	return true
}

// nodeBitmap returns the occupancy bitmap of a second-level node in either
// layout.
func nodeBitmap(t *Tree, ptr uint32) uint64 {
	if t.cfg.Compress {
		return t.cnodes[ptr-1].bitmap
	}
	n := t.nodes.Block(ptr - 1)
	var bm uint64
	for slot := 0; slot < nodeSlots; slot++ {
		if n[slot] != 0 {
			bm |= uint64(1) << slot
		}
	}
	return bm
}
