package kisstree

import (
	"bufio"
	"fmt"
	"io"

	"qppt/internal/arena"
	"qppt/internal/duplist"
)

// Freeze/Thaw: the KISS-Tree's spill hooks, mirroring package prefixtree.
//
// All interior references are compact pointers (arena ordinals + 1), so
// the index is position-independent: the touched root-directory chunks and
// the second-level node chunks spill verbatim, content leaves are
// serialized key + rows (their duplicate lists embed Go slices), and the
// thaw paths rebuild everything index-for-index. Scalar state — key/row
// counters, min/max bounds, RCU-copy and root-page metrics — stays in the
// Tree struct across a freeze.
//
// Like prefixtree, the freeze format is self-indexing (format 2): section
// byte lengths for the root, node and compressed-node sections plus a
// per-leaf-chunk {min key, max key, byte length} directory. ThawMapped
// adopts root pages and node chunks straight out of an mmap-ed spill file
// (zero-copy; the mapping is private, so in-place writes copy pages);
// ThawRange restores only the leaf chunks a key range touches and is
// additive across calls.

// kissFreezeMagic distinguishes KISS-Tree freeze streams from prefix-tree
// ones (a sharded index freezes heterogeneous shards into one file).
const kissFreezeMagic = 0x5150_5054_4B53_0002 // "QPPT" + KISS format 2

// Frozen reports whether the tree's chunk storage is currently detached
// (spilled). A frozen tree must not be queried or mutated until Thaw.
func (t *Tree) Frozen() bool { return t.frozen }

// Partial reports whether only part of the leaf payloads is resident (see
// ThawRange).
func (t *Tree) Partial() bool { return t.partial }

// rootSnapshotBytes reports the serialized size of the root section.
func (t *Tree) rootSnapshotBytes() uint64 {
	touched := uint64(0)
	for _, c := range t.root {
		if c != nil {
			touched++
		}
	}
	return 8 + touched*(8+4<<rootChunkBits)
}

// cnodeSnapshotBytes reports the serialized size of the compressed-node
// section.
func (t *Tree) cnodeSnapshotBytes() uint64 {
	n := uint64(8)
	for i := range t.cnodes {
		n += 16 + 4*uint64(len(t.cnodes[i].entries))
	}
	return n
}

func leafSnapshotBytes(lf *Leaf, width int) uint64 {
	if width == 0 {
		return 16
	}
	return 16 + 8*uint64(width)*uint64(lf.Vals.Len())
}

// leafDir builds the per-leaf-chunk directory (arena.LeafChunkDir).
func (t *Tree) leafDir() []uint64 {
	return arena.LeafChunkDir(&t.leaves,
		func(lf *Leaf) uint64 { return leafSnapshotBytes(lf, t.cfg.PayloadWidth) },
		func(lf *Leaf) (uint64, bool) { return lf.Key, lf.Vals.Len() > 0 })
}

// WriteSnapshot writes the tree's storage to w in one sequential pass —
// the touched root chunks, node chunks, compressed nodes, the leaf-chunk
// directory and the content leaves. The storage stays attached and the
// tree fully usable; call Release once the snapshot is safely persisted
// to actually detach it, so a failed spill never drops index data.
//
// Like prefixtree, WriteSnapshot and the thaw paths consume exactly their
// own bytes (no internal buffering, no read-ahead) so several structures
// can share one stream; callers provide buffering.
func (t *Tree) WriteSnapshot(w io.Writer) error {
	if t.frozen || t.partial {
		return fmt.Errorf("kisstree: WriteSnapshot on a frozen or partially thawed tree")
	}
	if err := arena.WriteU64(w, kissFreezeMagic); err != nil {
		return err
	}
	// Root page directory: only the chunks faulted in by writes.
	if err := arena.WriteU64(w, t.rootSnapshotBytes()); err != nil {
		return err
	}
	touched := uint64(0)
	for _, c := range t.root {
		if c != nil {
			touched++
		}
	}
	if err := arena.WriteU64(w, touched); err != nil {
		return err
	}
	for ci, c := range t.root {
		if c == nil {
			continue
		}
		if err := arena.WriteU64(w, uint64(ci)); err != nil {
			return err
		}
		if err := arena.WriteU32s(w, c); err != nil {
			return err
		}
	}
	if err := arena.WriteU64(w, uint64(t.nodes.SnapshotLen())); err != nil {
		return err
	}
	if err := t.nodes.WriteChunks(w); err != nil {
		return err
	}
	if err := arena.WriteU64(w, t.cnodeSnapshotBytes()); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(len(t.cnodes))); err != nil {
		return err
	}
	for i := range t.cnodes {
		if err := arena.WriteU64(w, t.cnodes[i].bitmap); err != nil {
			return err
		}
		if err := arena.WriteU64(w, uint64(len(t.cnodes[i].entries))); err != nil {
			return err
		}
		if err := arena.WriteU32s(w, t.cnodes[i].entries); err != nil {
			return err
		}
	}
	if err := arena.WriteU64(w, uint64(t.leaves.Len())); err != nil {
		return err
	}
	dir := t.leafDir()
	if err := arena.WriteU64(w, uint64(len(dir)/3)); err != nil {
		return err
	}
	if err := arena.WriteU64s(w, dir); err != nil {
		return err
	}
	werr := error(nil)
	t.leaves.Scan(func(_ uint32, lf *Leaf) bool {
		werr = writeLeaf(w, lf)
		return werr == nil
	})
	return werr
}

// Release detaches the root directory, node arena, compressed nodes, leaf
// arena and payload slab the last WriteSnapshot captured, parking heap
// chunks in the configured recycler (mmap-adopted chunks are simply
// dropped). The tree keeps its counters and bounds but must not be
// queried or mutated until thawed. Only call after the snapshot is safely
// persisted.
func (t *Tree) Release() {
	if !t.rootMapped {
		for _, c := range t.root {
			if c != nil {
				arena.PutChunk(t.cfg.Recycler, c)
			}
		}
	}
	t.root = make([][]uint32, rootChunks)
	t.rootMapped = false
	t.nodes.Detach()
	t.cnodes = nil
	t.leaves.Reset()
	if t.slab != nil {
		t.slab.Release()
	}
	t.slab = nil
	t.partial = false
	t.thawedChunks = nil
	t.frozen = true
}

// Recycle drops a resident tree's chunk storage into the configured
// recycler (see Release); a frozen tree is left untouched. The tree is
// unusable afterwards.
func (t *Tree) Recycle() {
	if !t.frozen {
		t.Release()
	}
}

// Materialize copies any mmap-adopted root pages and node chunks to the
// heap, so the tree survives the unmapping of its spill file.
func (t *Tree) Materialize() {
	if t.rootMapped {
		for ci, c := range t.root {
			if c == nil {
				continue
			}
			h := make([]uint32, len(c))
			copy(h, c)
			t.root[ci] = h
		}
		t.rootMapped = false
	}
	t.nodes.Unmap()
}

// Freeze is WriteSnapshot + Release in one step, for callers whose write
// target cannot fail after the fact (e.g. an in-memory buffer).
func (t *Tree) Freeze(w io.Writer) error {
	if err := t.WriteSnapshot(w); err != nil {
		return err
	}
	t.Release()
	return nil
}

// Thaw restores the storage WriteSnapshot wrote. Root chunks and node
// blocks come back verbatim; leaves are re-allocated index-for-index so
// every compact pointer in the restored nodes stays valid.
func (t *Tree) Thaw(r io.Reader) error { return t.thaw(r, nil) }

// ThawMapped is Thaw over an mmap-ed spill file: root pages and node
// chunks are adopted as zero-copy views of the mapped pages; only the
// compressed nodes and content leaves are rebuilt. The caller owns the
// mapping and must keep it alive until the tree is released, recycled, or
// Materialized. On error the tree stays frozen and holds no reference
// into the mapping, so the caller may unmap it and retry through any
// thaw path.
func (t *Tree) ThawMapped(mr *arena.MapReader) error {
	if err := t.thaw(mr, mr); err != nil {
		// Drop any root pages and node chunks adopted from the mapping
		// before the caller unmaps it (the frozen flag only flips on
		// success, so the tree reads as frozen already).
		t.nodes.Detach()
		t.root = make([][]uint32, rootChunks)
		t.rootMapped = false
		return err
	}
	return nil
}

func (t *Tree) thaw(r io.Reader, mr *arena.MapReader) error {
	if !t.frozen {
		return fmt.Errorf("kisstree: Thaw on a tree that is not frozen")
	}
	magic, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	if magic != kissFreezeMagic {
		return fmt.Errorf("kisstree: bad freeze magic %#x", magic)
	}
	if _, err := arena.ReadU64(r); err != nil { // root section length
		return err
	}
	if err := t.readRootSection(r, mr); err != nil {
		return err
	}
	if _, err := arena.ReadU64(r); err != nil { // node section length
		return err
	}
	if mr != nil {
		err = t.nodes.ReadChunksMapped(mr)
	} else {
		err = t.nodes.ReadChunks(r)
	}
	if err != nil {
		return err
	}
	if err := t.readCnodesAndLeaves(r); err != nil {
		return err
	}
	t.frozen = false
	t.partial = false
	t.thawedChunks = nil
	return nil
}

// readRootSection restores the root page directory from r (positioned on
// the touched-chunk count), adopting zero-copy views of the mapped pages
// when mr is non-nil. Shared by the full thaw and the range thaw, so the
// format is parsed in exactly one place.
func (t *Tree) readRootSection(r io.Reader, mr *arena.MapReader) error {
	touched, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	t.root = make([][]uint32, rootChunks)
	t.rootMapped = false
	for i := uint64(0); i < touched; i++ {
		ci, err := arena.ReadU64(r)
		if err != nil {
			return err
		}
		if ci >= rootChunks {
			return fmt.Errorf("kisstree: root chunk %d out of range", ci)
		}
		if mr != nil {
			if view, ok := mr.U32View(1 << rootChunkBits); ok {
				t.root[ci] = view
				t.rootMapped = true
				continue
			}
		}
		c := t.newRootChunk()
		if err := arena.ReadU32s(r, c); err != nil {
			return err
		}
		t.root[ci] = c
	}
	return nil
}

// readCnodeSection restores the compressed-node section from r
// (positioned on the node count). Shared like readRootSection.
func (t *Tree) readCnodeSection(r io.Reader) error {
	nCN, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	t.cnodes = make([]cnode, nCN)
	for i := range t.cnodes {
		if t.cnodes[i].bitmap, err = arena.ReadU64(r); err != nil {
			return err
		}
		nEnt, err := arena.ReadU64(r)
		if err != nil {
			return err
		}
		t.cnodes[i].entries = make([]uint32, nEnt)
		if err := arena.ReadU32s(r, t.cnodes[i].entries); err != nil {
			return err
		}
	}
	return nil
}

// readCnodesAndLeaves restores the compressed-node section and all content
// leaves from r (positioned right after the node section).
func (t *Tree) readCnodesAndLeaves(r io.Reader) error {
	if _, err := arena.ReadU64(r); err != nil { // cnode section length
		return err
	}
	if err := t.readCnodeSection(r); err != nil {
		return err
	}
	nLeaves, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	nChunks, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	dir := make([]uint64, 3*nChunks)
	if err := arena.ReadU64s(r, dir); err != nil {
		return err
	}
	t.slab = duplist.NewSlabIn(t.cfg.Recycler)
	t.leaves.Reset()
	row := make([]uint64, t.cfg.PayloadWidth)
	for i := uint64(0); i < nLeaves; i++ {
		li := t.leaves.Alloc(Leaf{})
		if err := readLeaf(r, t.leaves.At(li), t.cfg.PayloadWidth, t.slab, row); err != nil {
			return err
		}
	}
	return nil
}

// ThawRange restores the tree far enough to serve queries inside [lo, hi]:
// root pages, node chunks and compressed nodes come back in full, but of
// the content leaves only the chunks whose key range intersects [lo, hi]
// are read — the rest are skipped with a seek and stay zero (empty). It
// returns the bytes actually read and whether the tree is now fully
// restored. Additive across calls, like prefixtree.ThawRange.
func (t *Tree) ThawRange(f io.ReadSeeker, lo, hi uint64) (int64, bool, error) {
	fresh := t.frozen
	n, full, err := t.thawRange(f, lo, hi)
	if err != nil && fresh && !t.frozen {
		// Roll a half-restored fresh thaw back to frozen (see the
		// prefixtree counterpart); the spill file is intact for a retry.
		t.Release()
	}
	return n, full, err
}

func (t *Tree) thawRange(f io.ReadSeeker, lo, hi uint64) (int64, bool, error) {
	// A fully resident tree (possible as one shard of a partially thawed
	// sharded index) just skims its section: every chunk reads as thawed,
	// so the loop seeks straight to the stream end.
	skim := !t.frozen && !t.partial
	fresh := t.frozen
	var nRead int64
	magic, err := arena.ReadU64(f)
	if err != nil {
		return nRead, false, err
	}
	if magic != kissFreezeMagic {
		return nRead, false, fmt.Errorf("kisstree: bad freeze magic %#x", magic)
	}
	nRead += 8
	// Root, node and cnode sections: restore on a fresh thaw, seek past on
	// a top-up (they are already resident and possibly in use by readers).
	for sec := 0; sec < 3; sec++ {
		secBytes, err := arena.ReadU64(f)
		if err != nil {
			return nRead, false, err
		}
		nRead += 8
		if !fresh {
			if _, err := f.Seek(int64(secBytes), io.SeekCurrent); err != nil {
				return nRead, false, err
			}
			continue
		}
		br := bufio.NewReaderSize(io.LimitReader(f, int64(secBytes)), 1<<18)
		switch sec {
		case 0:
			err = t.readRootSection(br, nil)
		case 1:
			err = t.nodes.ReadChunks(br)
		case 2:
			err = t.readCnodeSection(br)
		}
		if err != nil {
			return nRead, false, err
		}
		nRead += int64(secBytes)
	}
	nLeaves, err := arena.ReadU64(f)
	if err != nil {
		return nRead, false, err
	}
	nChunks, err := arena.ReadU64(f)
	if err != nil {
		return nRead, false, err
	}
	dir := make([]uint64, 3*nChunks)
	if err := arena.ReadU64s(f, dir); err != nil {
		return nRead, false, err
	}
	nRead += 16 + 24*int64(nChunks)
	if fresh {
		t.slab = duplist.NewSlabIn(t.cfg.Recycler)
		t.leaves.Reset()
		for i := uint64(0); i < nLeaves; i++ {
			t.leaves.Alloc(Leaf{})
		}
		t.thawedChunks = make([]bool, nChunks)
		t.frozen = false
		t.partial = true
	}
	row := make([]uint64, t.cfg.PayloadWidth)
	n, full, err := arena.ThawChunks(f, &t.leaves, nLeaves, dir, t.thawedChunks, skim, lo, hi,
		func(r io.Reader, lf *Leaf) error {
			return readLeaf(r, lf, t.cfg.PayloadWidth, t.slab, row)
		})
	nRead += n
	if err != nil {
		return nRead, false, err
	}
	if full && !skim {
		t.partial = false
		t.thawedChunks = nil
	}
	return nRead, full, nil
}

// writeLeaf serializes one content leaf: key, row count, rows.
func writeLeaf(w io.Writer, lf *Leaf) error {
	if err := arena.WriteU64(w, lf.Key); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(lf.Vals.Len())); err != nil {
		return err
	}
	if lf.Vals.Width() == 0 {
		return nil // existence-only rows carry no storage
	}
	werr := error(nil)
	lf.Vals.Scan(func(row []uint64) bool {
		werr = arena.WriteU64s(w, row)
		return werr == nil
	})
	return werr
}

// readLeaf rebuilds one content leaf in place, drawing row storage from
// slab. row is a caller-provided width-sized scratch buffer.
func readLeaf(r io.Reader, lf *Leaf, width int, slab *duplist.Slab, row []uint64) error {
	key, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	n, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	*lf = Leaf{Key: key, Vals: duplist.Make(width)}
	for j := uint64(0); j < n; j++ {
		if width > 0 {
			if err := arena.ReadU64s(r, row); err != nil {
				return err
			}
		}
		lf.Vals.AppendIn(slab, row[:width])
	}
	return nil
}
