package kisstree

import (
	"fmt"
	"io"

	"qppt/internal/arena"
	"qppt/internal/duplist"
)

// Freeze/Thaw: the KISS-Tree's spill hooks, mirroring package prefixtree.
//
// All interior references are compact pointers (arena ordinals + 1), so
// the index is position-independent: the touched root-directory chunks and
// the second-level node chunks spill verbatim, content leaves are
// serialized key + rows (their duplicate lists embed Go slices), and Thaw
// rebuilds everything index-for-index. Scalar state — key/row counters,
// min/max bounds, RCU-copy and root-page metrics — stays in the Tree
// struct across a freeze.

// kissFreezeMagic distinguishes KISS-Tree freeze streams from prefix-tree
// ones (a sharded index freezes heterogeneous shards into one file).
const kissFreezeMagic = 0x5150_5054_4B53_0001 // "QPPT" + KISS format 1

// Frozen reports whether the tree's chunk storage is currently detached
// (spilled). A frozen tree must not be queried or mutated until Thaw.
func (t *Tree) Frozen() bool { return t.frozen }

// WriteSnapshot writes the tree's storage to w in one sequential pass —
// the touched root chunks, node chunks, compressed nodes and content
// leaves. The storage stays attached and the tree fully usable; call
// Release once the snapshot is safely persisted to actually detach it,
// so a failed spill never drops index data.
//
// Like prefixtree, WriteSnapshot/Thaw consume exactly their own bytes
// (no internal buffering, no read-ahead) so several structures can share
// one stream; callers provide buffering.
func (t *Tree) WriteSnapshot(w io.Writer) error {
	if t.frozen {
		return fmt.Errorf("kisstree: WriteSnapshot on a frozen tree")
	}
	if err := arena.WriteU64(w, kissFreezeMagic); err != nil {
		return err
	}
	// Root page directory: only the chunks faulted in by writes.
	touched := uint64(0)
	for _, c := range t.root {
		if c != nil {
			touched++
		}
	}
	if err := arena.WriteU64(w, touched); err != nil {
		return err
	}
	for ci, c := range t.root {
		if c == nil {
			continue
		}
		if err := arena.WriteU64(w, uint64(ci)); err != nil {
			return err
		}
		if err := arena.WriteU32s(w, c); err != nil {
			return err
		}
	}
	if err := t.nodes.WriteChunks(w); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(len(t.cnodes))); err != nil {
		return err
	}
	for i := range t.cnodes {
		if err := arena.WriteU64(w, t.cnodes[i].bitmap); err != nil {
			return err
		}
		if err := arena.WriteU64(w, uint64(len(t.cnodes[i].entries))); err != nil {
			return err
		}
		if err := arena.WriteU32s(w, t.cnodes[i].entries); err != nil {
			return err
		}
	}
	if err := arena.WriteU64(w, uint64(t.leaves.Len())); err != nil {
		return err
	}
	werr := error(nil)
	t.leaves.Scan(func(_ uint32, lf *Leaf) bool {
		werr = writeLeaf(w, lf)
		return werr == nil
	})
	return werr
}

// Release detaches the root directory, node arena, compressed nodes, leaf
// arena and payload slab the last WriteSnapshot captured. The tree keeps
// its counters and bounds but must not be queried or mutated until Thaw.
// Only call after the snapshot is safely persisted.
func (t *Tree) Release() {
	t.root = make([][]uint32, rootChunks)
	t.nodes.Detach()
	t.cnodes = nil
	t.leaves.Reset()
	t.slab = nil
	t.frozen = true
}

// Freeze is WriteSnapshot + Release in one step, for callers whose write
// target cannot fail after the fact (e.g. an in-memory buffer).
func (t *Tree) Freeze(w io.Writer) error {
	if err := t.WriteSnapshot(w); err != nil {
		return err
	}
	t.Release()
	return nil
}

// Thaw restores the storage WriteSnapshot wrote. Root chunks and node
// blocks come back verbatim; leaves are re-allocated index-for-index so
// every compact pointer in the restored nodes stays valid.
func (t *Tree) Thaw(r io.Reader) error {
	if !t.frozen {
		return fmt.Errorf("kisstree: Thaw on a tree that is not frozen")
	}
	magic, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	if magic != kissFreezeMagic {
		return fmt.Errorf("kisstree: bad freeze magic %#x", magic)
	}
	touched, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	t.root = make([][]uint32, rootChunks)
	for i := uint64(0); i < touched; i++ {
		ci, err := arena.ReadU64(r)
		if err != nil {
			return err
		}
		if ci >= rootChunks {
			return fmt.Errorf("kisstree: root chunk %d out of range", ci)
		}
		c := make([]uint32, 1<<rootChunkBits)
		if err := arena.ReadU32s(r, c); err != nil {
			return err
		}
		t.root[ci] = c
	}
	if err := t.nodes.ReadChunks(r); err != nil {
		return err
	}
	nCN, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	t.cnodes = make([]cnode, nCN)
	for i := range t.cnodes {
		if t.cnodes[i].bitmap, err = arena.ReadU64(r); err != nil {
			return err
		}
		nEnt, err := arena.ReadU64(r)
		if err != nil {
			return err
		}
		t.cnodes[i].entries = make([]uint32, nEnt)
		if err := arena.ReadU32s(r, t.cnodes[i].entries); err != nil {
			return err
		}
	}
	nLeaves, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	t.slab = duplist.NewSlab()
	t.leaves.Reset()
	row := make([]uint64, t.cfg.PayloadWidth)
	for i := uint64(0); i < nLeaves; i++ {
		li := t.leaves.Alloc(Leaf{})
		if err := readLeaf(r, t.leaves.At(li), t.cfg.PayloadWidth, t.slab, row); err != nil {
			return err
		}
	}
	t.frozen = false
	return nil
}

// writeLeaf serializes one content leaf: key, row count, rows.
func writeLeaf(w io.Writer, lf *Leaf) error {
	if err := arena.WriteU64(w, lf.Key); err != nil {
		return err
	}
	if err := arena.WriteU64(w, uint64(lf.Vals.Len())); err != nil {
		return err
	}
	if lf.Vals.Width() == 0 {
		return nil // existence-only rows carry no storage
	}
	werr := error(nil)
	lf.Vals.Scan(func(row []uint64) bool {
		werr = arena.WriteU64s(w, row)
		return werr == nil
	})
	return werr
}

// readLeaf rebuilds one content leaf in place, drawing row storage from
// slab. row is a caller-provided width-sized scratch buffer.
func readLeaf(r io.Reader, lf *Leaf, width int, slab *duplist.Slab, row []uint64) error {
	key, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	n, err := arena.ReadU64(r)
	if err != nil {
		return err
	}
	*lf = Leaf{Key: key, Vals: duplist.Make(width)}
	for j := uint64(0); j < n; j++ {
		if width > 0 {
			if err := arena.ReadU64s(r, row); err != nil {
				return err
			}
		}
		lf.Vals.AppendIn(slab, row[:width])
	}
	return nil
}
