package kisstree

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"os"
	"reflect"
	"testing"
)

// Freeze/Thaw must round-trip the KISS-Tree — root page directory, node
// arena, compressed nodes and content leaves — in both node layouts, and
// the thawed tree must keep working as a live index.
func TestKissFreezeThawRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		tr := MustNew(Config{PayloadWidth: 2, Compress: compress})
		model := map[uint64][][]uint64{}
		rng := rand.New(rand.NewSource(7))
		insert := func(n int) {
			for i := 0; i < n; i++ {
				// Bounded domain: spans several root chunks (2^24 keys →
				// 2^18 root buckets) without making the ordered walks in
				// check() traverse the whole 2^26-bucket root range.
				k := uint64(rng.Intn(1 << 24))
				if rng.Intn(2) == 0 {
					k = uint64(rng.Intn(1000))
				}
				row := []uint64{k, rng.Uint64()}
				tr.Insert(k, row)
				model[k] = append(model[k], row)
			}
		}
		insert(4000)
		deleted := 0
		for k := range model {
			if deleted >= 50 {
				break
			}
			tr.Delete(k)
			delete(model, k)
			deleted++
		}

		check := func(stage string) {
			t.Helper()
			if tr.Keys() != len(model) {
				t.Fatalf("compress=%v %s: Keys = %d, want %d", compress, stage, tr.Keys(), len(model))
			}
			for k, want := range model {
				lf := tr.Lookup(k)
				if lf == nil || !reflect.DeepEqual(lf.Vals.Rows(), want) {
					t.Fatalf("compress=%v %s: rows for %#x differ", compress, stage, k)
				}
			}
			prev, first := uint64(0), true
			n := 0
			tr.Iterate(func(lf *Leaf) bool {
				if !first && lf.Key <= prev {
					t.Fatalf("compress=%v %s: iteration out of order", compress, stage)
				}
				prev, first = lf.Key, false
				n++
				return true
			})
			if n != len(model) {
				t.Fatalf("compress=%v %s: iterated %d keys, want %d", compress, stage, n, len(model))
			}
		}
		check("before freeze")

		resident := tr.Bytes()
		var buf bytes.Buffer
		if err := tr.Freeze(&buf); err != nil {
			t.Fatalf("compress=%v: Freeze: %v", compress, err)
		}
		if !tr.Frozen() {
			t.Fatal("tree not marked frozen")
		}
		if tr.Bytes() >= resident/4 {
			t.Fatalf("compress=%v: frozen tree still holds %d of %d bytes", compress, tr.Bytes(), resident)
		}
		if err := tr.Thaw(&buf); err != nil {
			t.Fatalf("compress=%v: Thaw: %v", compress, err)
		}
		check("after thaw")

		insert(1000)
		check("after post-thaw inserts")
		var buf2 bytes.Buffer
		if err := tr.Freeze(&buf2); err != nil {
			t.Fatalf("compress=%v: second Freeze: %v", compress, err)
		}
		if err := tr.Thaw(&buf2); err != nil {
			t.Fatalf("compress=%v: second Thaw: %v", compress, err)
		}
		check("after second thaw")
	}
}

// ThawRange must restore only the leaf chunks the key range touches and
// answer in-range queries identically; a full-span call completes the
// tree in place.
func TestKissThawRangePartialRestore(t *testing.T) {
	const n = 50000 // several 8192-leaf chunks
	tr := MustNew(Config{PayloadWidth: 1})
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i), []uint64{uint64(i) * 5})
	}
	f, err := os.CreateTemp(t.TempDir(), "kiss-*.spill")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := tr.Freeze(bw); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	fi, _ := f.Stat()

	lo, hi := uint64(2000), uint64(3000)
	nRead, full, err := tr.ThawRange(f, lo, hi)
	if err != nil {
		t.Fatalf("ThawRange: %v", err)
	}
	if full || !tr.Partial() {
		t.Fatal("narrow range did not leave the tree partial")
	}
	if nRead >= fi.Size()/2 {
		t.Fatalf("partial thaw read %d of %d bytes", nRead, fi.Size())
	}
	got := 0
	tr.Range(lo, hi, func(lf *Leaf) bool {
		if lf.Vals.First()[0] != lf.Key*5 {
			t.Fatalf("key %d wrong after partial thaw", lf.Key)
		}
		got++
		return true
	})
	if got != int(hi-lo+1) {
		t.Fatalf("partial Range visited %d keys, want %d", got, hi-lo+1)
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, full, err = tr.ThawRange(f, 0, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if !full || tr.Partial() {
		t.Fatal("full-span ThawRange left the tree partial")
	}
	count := 0
	tr.Iterate(func(lf *Leaf) bool {
		if lf.Vals.First()[0] != lf.Key*5 {
			t.Fatalf("key %d wrong after completion", lf.Key)
		}
		count++
		return true
	})
	if count != n {
		t.Fatalf("completed tree has %d keys, want %d", count, n)
	}
}
