package kisstree

import (
	"math/rand"
	"testing"

	"qppt/internal/kernel"
)

// TestKissKernelMatchesScalar is the differential check for the two
// paths behind LookupBatch: the kernelized fragment-sweep descent must be
// bit-identical to the scalar loop — same hit set, same leaf identity,
// same visit order — on both node layouts, across hits, misses,
// duplicates, and empty batches.
func TestKissKernelMatchesScalar(t *testing.T) {
	for _, compress := range []bool{false, true} {
		tr := MustNew(Config{Compress: compress})
		rng := rand.New(rand.NewSource(71))
		present := make([]uint64, 400)
		for i := range present {
			present[i] = uint64(rng.Uint32())
		}
		tr.InsertBatch(present, nil)

		batch := append([]uint64(nil), present...) // hits
		batch = append(batch, present[:64]...)     // duplicates
		for i := 0; i < 300; i++ {                 // mostly misses
			batch = append(batch, uint64(rng.Uint32()))
		}
		for _, probes := range [][]uint64{batch, batch[:0], batch[len(present) : len(present)+64]} {
			type hit struct {
				i  int
				lf *Leaf
			}
			var ker, sca []hit
			tr.lookupBatchKernel(probes, func(i int, lf *Leaf) { ker = append(ker, hit{i, lf}) })
			tr.lookupBatchScalar(probes, func(i int, lf *Leaf) { sca = append(sca, hit{i, lf}) })
			if len(ker) != len(sca) {
				t.Fatalf("compress=%v n=%d: kernel visited %d, scalar %d", compress, len(probes), len(ker), len(sca))
			}
			for i := range ker {
				if ker[i] != sca[i] {
					t.Fatalf("compress=%v n=%d: visit %d differs", compress, len(probes), i)
				}
			}
		}
	}
}

// TestKissKernelAllocationFree mirrors TestKissBatchAllocationFree for
// the kernelized descent.
func TestKissKernelAllocationFree(t *testing.T) {
	if kernel.RaceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector, so pooled scratch allocates by design")
	}
	keys := kissBenchKeys(1<<12, 73)
	tr := MustNew(Config{})
	for _, k := range keys {
		tr.Insert(k, nil)
	}
	tr.lookupBatchKernel(keys[:512], func(int, *Leaf) {}) // warm the pool
	var sink uint64
	allocs := testing.AllocsPerRun(20, func() {
		tr.lookupBatchKernel(keys[:512], func(_ int, lf *Leaf) {
			if lf != nil {
				sink += lf.Key
			}
		})
	})
	if allocs != 0 {
		t.Fatalf("lookupBatchKernel allocates %.1f objects per batch, want 0", allocs)
	}
	_ = sink
}
