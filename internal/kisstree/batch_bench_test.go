package kisstree

import (
	"math/rand"
	"testing"

	"qppt/internal/kernel"
)

func kissBenchKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Uint32())
	}
	return keys
}

// BenchmarkKissLookupBatch: batched KISS probes must stay allocation-free
// (pooled compact-pointer scratch).
func BenchmarkKissLookupBatch(b *testing.B) {
	const n = 1 << 17
	keys := kissBenchKeys(n, 61)
	t := MustNew(Config{})
	for _, k := range keys {
		t.Insert(k, nil)
	}
	probes := kissBenchKeys(n, 67)
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(probes); off += 512 {
			end := min(off+512, len(probes))
			t.LookupBatch(probes[off:end], func(_ int, lf *Leaf) {
				if lf != nil {
					sink += lf.Key
				}
			})
		}
	}
	_ = sink
}

// BenchmarkKissInsertBatch builds a full KISS index per iteration through
// the batched insert path.
func BenchmarkKissInsertBatch(b *testing.B) {
	const n = 1 << 17
	keys := kissBenchKeys(n, 61)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := MustNew(Config{})
		for off := 0; off < len(keys); off += 512 {
			end := min(off+512, len(keys))
			t.InsertBatch(keys[off:end], nil)
		}
	}
}

// TestKissBatchAllocationFree pins the pooled-scratch satellite for the
// KISS-Tree: after warm-up, batched lookups allocate nothing.
func TestKissBatchAllocationFree(t *testing.T) {
	if kernel.RaceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector, so pooled scratch allocates by design")
	}
	keys := kissBenchKeys(1<<12, 61)
	tr := MustNew(Config{})
	for _, k := range keys {
		tr.Insert(k, nil)
	}
	tr.LookupBatch(keys[:512], func(int, *Leaf) {}) // warm the pool
	var sink uint64
	allocs := testing.AllocsPerRun(20, func() {
		tr.LookupBatch(keys[:512], func(_ int, lf *Leaf) {
			if lf != nil {
				sink += lf.Key
			}
		})
	})
	if allocs != 0 {
		t.Fatalf("LookupBatch allocates %.1f objects per batch, want 0", allocs)
	}
	_ = sink
}
