package key

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromInt64OrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		return (a < b) == (FromInt64(a) < FromInt64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromInt64RoundTrip(t *testing.T) {
	f := func(a int64) bool { return ToInt64(FromInt64(a)) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromInt64Examples(t *testing.T) {
	cases := []struct{ lo, hi int64 }{
		{-1, 0}, {-1 << 62, 0}, {0, 1}, {-5, -4}, {1 << 62, 1<<62 + 1},
	}
	for _, c := range cases {
		if FromInt64(c.lo) >= FromInt64(c.hi) {
			t.Errorf("FromInt64(%d) >= FromInt64(%d)", c.lo, c.hi)
		}
	}
}

func TestComposerValidation(t *testing.T) {
	if _, err := NewComposer(); err == nil {
		t.Error("empty composer accepted")
	}
	if _, err := NewComposer(0); err == nil {
		t.Error("zero-width field accepted")
	}
	if _, err := NewComposer(65); err == nil {
		t.Error("65-bit field accepted")
	}
	if _, err := NewComposer(32, 33); err == nil {
		t.Error("total width 65 accepted")
	}
	if _, err := NewComposer(32, 32); err != nil {
		t.Errorf("total width 64 rejected: %v", err)
	}
}

func TestComposerRoundTrip(t *testing.T) {
	c := MustComposer(16, 8, 24)
	f := func(a uint16, b uint8, d uint32) bool {
		d24 := uint64(d) & 0xFFFFFF
		k := c.Compose(uint64(a), uint64(b), d24)
		got := c.Split(k, nil)
		return got[0] == uint64(a) && got[1] == uint64(b) && got[2] == d24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComposerLexOrder(t *testing.T) {
	// Composed keys must sort lexicographically by field order.
	c := MustComposer(16, 16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a1, b1 := uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<16))
		a2, b2 := uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<16))
		k1, k2 := c.Compose(a1, b1), c.Compose(a2, b2)
		lexLess := a1 < a2 || (a1 == a2 && b1 < b2)
		if lexLess != (k1 < k2) {
			t.Fatalf("lex order mismatch: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
		}
	}
}

func TestComposerField(t *testing.T) {
	c := MustComposer(8, 8, 8)
	k := c.Compose(1, 2, 3)
	for i, want := range []uint64{1, 2, 3} {
		if got := c.Field(k, i); got != want {
			t.Errorf("Field(%d) = %d, want %d", i, got, want)
		}
	}
	if c.Bits() != 24 || c.Fields() != 3 {
		t.Errorf("Bits/Fields = %d/%d, want 24/3", c.Bits(), c.Fields())
	}
}

func TestComposerMasksOversizedValues(t *testing.T) {
	c := MustComposer(4, 4)
	if got := c.Compose(0xFF, 0x1); got != c.Compose(0xF, 0x1) {
		t.Errorf("oversized field not masked: %#x", got)
	}
}

func TestComposePanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compose with wrong arity did not panic")
		}
	}()
	MustComposer(8, 8).Compose(1)
}
