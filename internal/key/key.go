// Package key provides order-preserving 64-bit key encodings for QPPT
// indexes.
//
// All QPPT index structures (the generalized prefix tree and the KISS-Tree)
// navigate on the big-endian binary representation of an unsigned integer
// key, so any attribute that should be indexed must first be mapped to a
// uint64 whose unsigned order equals the attribute's logical order. This
// package provides those mappings for signed integers and for composed
// (multi-attribute) keys such as the (year, brand1) group-by key of SSB
// query 2.3. Strings are handled by the catalog's order-preserving
// dictionary, which yields dense uint64 codes that can be used here
// directly.
package key

import "fmt"

// Key is an order-preserving 64-bit index key.
type Key = uint64

// FromInt64 maps a signed integer to a uint64 such that unsigned comparison
// of the results matches signed comparison of the inputs (the sign bit is
// flipped).
func FromInt64(v int64) Key {
	return uint64(v) ^ (1 << 63)
}

// ToInt64 inverts FromInt64.
func ToInt64(k Key) int64 {
	return int64(k ^ (1 << 63))
}

// A Composer packs several fixed-width fields into one order-preserving
// composed key. Fields are declared most-significant first, so the composed
// key sorts lexicographically by field order — exactly what a grouped and
// ordered output index needs (the paper's "composed key of the attributes
// year and brand1", Section 3).
type Composer struct {
	widths []uint // bits per field, most significant first
	shifts []uint
	total  uint
}

// NewComposer builds a Composer for the given field widths in bits. The
// widths must each be in [1, 64] and sum to at most 64.
func NewComposer(widths ...uint) (*Composer, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("key: composer needs at least one field")
	}
	var total uint
	for i, w := range widths {
		if w == 0 || w > 64 {
			return nil, fmt.Errorf("key: field %d width %d out of range [1,64]", i, w)
		}
		total += w
	}
	if total > 64 {
		return nil, fmt.Errorf("key: composed width %d exceeds 64 bits", total)
	}
	c := &Composer{widths: widths, total: total}
	c.shifts = make([]uint, len(widths))
	shift := total
	for i, w := range widths {
		shift -= w
		c.shifts[i] = shift
	}
	return c, nil
}

// MustComposer is NewComposer that panics on error, for static layouts.
func MustComposer(widths ...uint) *Composer {
	c, err := NewComposer(widths...)
	if err != nil {
		panic(err)
	}
	return c
}

// Bits reports the total width of the composed key in bits.
func (c *Composer) Bits() uint { return c.total }

// Fields reports the number of fields.
func (c *Composer) Fields() int { return len(c.widths) }

// Compose packs the fields into a single key. Each field value must fit in
// its declared width; oversized values are masked (truncated) to the width,
// which keeps Compose total but callers should validate domains up front.
func (c *Composer) Compose(fields ...uint64) Key {
	if len(fields) != len(c.widths) {
		panic(fmt.Sprintf("key: Compose got %d fields, want %d", len(fields), len(c.widths)))
	}
	var k Key
	for i, f := range fields {
		k |= (f & mask(c.widths[i])) << c.shifts[i]
	}
	return k
}

// Split unpacks a composed key into its fields, appending to dst.
func (c *Composer) Split(k Key, dst []uint64) []uint64 {
	for i := range c.widths {
		dst = append(dst, (k>>c.shifts[i])&mask(c.widths[i]))
	}
	return dst
}

// Field extracts the i-th field of a composed key.
func (c *Composer) Field(k Key, i int) uint64 {
	return (k >> c.shifts[i]) & mask(c.widths[i])
}

func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}
