package sql

import (
	"fmt"
	"strings"
)

// A SelectStmt is the parsed form of one SSB-dialect query.
type SelectStmt struct {
	Items   []SelectItem
	Tables  []string
	Where   []Cond // conjunction
	GroupBy []Column
	OrderBy []OrderItem
}

// A SelectItem is one output expression: either a SUM aggregate over a
// fact expression or a plain (grouped) column.
type SelectItem struct {
	Agg   Expr   // non-nil for sum(...)
	Col   Column // valid when Agg == nil
	Alias string
}

// A Column is a possibly table-qualified column reference.
type Column struct {
	Table string // optional qualifier
	Name  string
}

func (c Column) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// An Expr is a scalar expression over columns: a column, a literal, or a
// binary +,-,* over two expressions.
type Expr interface{ exprString() string }

// ColExpr references a column.
type ColExpr struct{ Col Column }

// NumExpr is an integer literal.
type NumExpr struct{ Val uint64 }

// StrExpr is a string literal.
type StrExpr struct{ Val string }

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   byte // '+', '-', '*'
	L, R Expr
}

func (e ColExpr) exprString() string { return e.Col.String() }
func (e NumExpr) exprString() string { return fmt.Sprintf("%d", e.Val) }
func (e StrExpr) exprString() string { return "'" + e.Val + "'" }
func (e BinExpr) exprString() string {
	return "(" + e.L.exprString() + string(e.Op) + e.R.exprString() + ")"
}

// CondKind enumerates WHERE conjunct kinds after normalization.
type CondKind int

const (
	// CondJoin is an equijoin between columns of two tables.
	CondJoin CondKind = iota
	// CondCmp is a comparison of a column against a literal
	// (=, <, <=, >, >=).
	CondCmp
	// CondBetween is col BETWEEN lo AND hi.
	CondBetween
	// CondIn is col IN (literals) — also the normal form of OR chains
	// over one column.
	CondIn
)

// A Cond is one normalized WHERE conjunct.
type Cond struct {
	Kind CondKind
	// Join columns for CondJoin.
	Left, Right Column
	// Col and literals for the restriction kinds.
	Col    Column
	Op     string // for CondCmp
	Num    uint64
	Str    string
	IsStr  bool
	LoNum  uint64 // CondBetween numeric bounds
	HiNum  uint64
	LoStr  string // CondBetween string bounds
	HiStr  string
	Set    []uint64 // CondIn numeric values
	StrSet []string // CondIn string values
}

// An OrderItem is one ORDER BY entry.
type OrderItem struct {
	// Expr names either a grouped column or an aggregate alias/implied
	// aggregate name.
	Col  Column
	Desc bool
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Agg != nil {
			sb.WriteString("sum(" + it.Agg.exprString() + ")")
		} else {
			sb.WriteString(it.Col.String())
		}
		if it.Alias != "" {
			sb.WriteString(" as " + it.Alias)
		}
	}
	sb.WriteString(" from " + strings.Join(s.Tables, ", "))
	return sb.String()
}
