package sql

import (
	"reflect"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("select sum(a*b) from `date` where x = 'MFGR#12' and y <= 25;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"select", "sum", "(", "a", "*", "b", ")", "from", "date",
		"where", "x", "=", "MFGR#12", "and", "y", "<=", "25", ";", ""}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("texts = %q", texts)
	}
	if kinds[8] != tokIdent || kinds[12] != tokString || kinds[16] != tokNumber {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("select 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("select `unterminated"); err == nil {
		t.Error("unterminated quoted ident accepted")
	}
	if _, err := lex("select @"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestLexEscapedQuote(t *testing.T) {
	toks, err := lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "it's" {
		t.Fatalf("got %q", toks[0].text)
	}
}

func TestParseSSBQuery23(t *testing.T) {
	stmt, err := Parse(`
		select sum(lineorder.lo_revenue), d_year, p_brand1
		from lineorder, date, part, supplier
		where lo_orderdate = d_datekey
		and lo_partkey = p_partkey
		and lo_suppkey = s_suppkey
		and p_brand1 = 'MFGR#2221'
		and s_region = 'EUROPE'
		group by d_year, p_brand1
		order by d_year, p_brand1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 3 || stmt.Items[0].Agg == nil {
		t.Fatalf("items = %+v", stmt.Items)
	}
	if len(stmt.Tables) != 4 || stmt.Tables[1] != "date" {
		t.Fatalf("tables = %v", stmt.Tables)
	}
	joins, cmps := 0, 0
	for _, c := range stmt.Where {
		switch c.Kind {
		case CondJoin:
			joins++
		case CondCmp:
			cmps++
			if !c.IsStr {
				t.Errorf("expected string comparison, got %+v", c)
			}
		}
	}
	if joins != 3 || cmps != 2 {
		t.Fatalf("joins/cmps = %d/%d", joins, cmps)
	}
	if len(stmt.GroupBy) != 2 || stmt.GroupBy[1].Name != "p_brand1" {
		t.Fatalf("group by = %v", stmt.GroupBy)
	}
	if len(stmt.OrderBy) != 2 || stmt.OrderBy[0].Desc {
		t.Fatalf("order by = %v", stmt.OrderBy)
	}
	if stmt.String() == "" {
		t.Error("empty String()")
	}
}

func TestParseBetweenAndArith(t *testing.T) {
	stmt, err := Parse(`select sum(lo_extendedprice*lo_discount) as revenue
		from lineorder, date
		where lo_orderdate = d_datekey and d_year = 1993
		and lo_discount between 1 and 3 and lo_quantity < 25`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Alias != "revenue" {
		t.Fatalf("alias = %q", stmt.Items[0].Alias)
	}
	be, ok := stmt.Items[0].Agg.(BinExpr)
	if !ok || be.Op != '*' {
		t.Fatalf("agg = %#v", stmt.Items[0].Agg)
	}
	var between, lt *Cond
	for i := range stmt.Where {
		switch stmt.Where[i].Kind {
		case CondBetween:
			between = &stmt.Where[i]
		case CondCmp:
			if stmt.Where[i].Op == "<" {
				lt = &stmt.Where[i]
			}
		}
	}
	if between == nil || between.LoNum != 1 || between.HiNum != 3 {
		t.Fatalf("between = %+v", between)
	}
	if lt == nil || lt.Num != 25 {
		t.Fatalf("lt = %+v", lt)
	}
}

func TestParseOrChainAndIn(t *testing.T) {
	stmt, err := Parse(`select sum(lo_revenue) from lineorder, part, date
		where lo_partkey = p_partkey and lo_orderdate = d_datekey
		and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2')
		and d_year in (1997, 1998)`)
	if err != nil {
		t.Fatal(err)
	}
	var strIn, numIn *Cond
	for i := range stmt.Where {
		if stmt.Where[i].Kind == CondIn {
			if stmt.Where[i].IsStr {
				strIn = &stmt.Where[i]
			} else {
				numIn = &stmt.Where[i]
			}
		}
	}
	if strIn == nil || !reflect.DeepEqual(strIn.StrSet, []string{"MFGR#1", "MFGR#2"}) {
		t.Fatalf("or chain = %+v", strIn)
	}
	if numIn == nil || !reflect.DeepEqual(numIn.Set, []uint64{1997, 1998}) {
		t.Fatalf("in list = %+v", numIn)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select a",                               // no FROM
		"select a from",                          // no table
		"select a from t where",                  // no condition
		"select a from t where a <> b",           // unsupported operator shape
		"select a from t where (a = 1 or b = 2)", // OR over two columns
		"select a from t where a between 1 and 'x'", // mixed types
		"select a from t extra",                     // trailing tokens
		"select a from t where a < 'x'",             // non-= string comparison
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseQualifiedAndDesc(t *testing.T) {
	stmt, err := Parse(`select c_nation, sum(lo_revenue) as revenue from lineorder, customer
		where lo_custkey = c_custkey group by c_nation order by revenue desc, c_nation asc`)
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order = %+v", stmt.OrderBy)
	}
}
