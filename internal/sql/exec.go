package sql

import (
	"context"
	"fmt"
	"sort"

	"qppt/internal/catalog"
	"qppt/internal/core"
)

// keyPred converts a restriction on an index key column into the
// selection operator's union-of-ranges predicate. String literals go
// through the order-preserving dictionary; literals missing from the
// dictionary yield an empty predicate (they cannot match loaded data).
func (b *builder) keyPred(ti *catalog.TableInfo, c Cond) (core.KeyPred, error) {
	nothing := core.KeyPred{{Lo: 1, Hi: 0}}
	col := c.Col.Name
	maxKey := uint64(1)<<ti.Bits(col) - 1
	if c.IsStr {
		d := ti.Dict(col)
		if d == nil {
			return nil, fmt.Errorf("sql: string predicate on numeric column %s", col)
		}
		switch c.Kind {
		case CondCmp:
			if code, ok := d.Code(c.Str); ok {
				return core.Point(code), nil
			}
			return nothing, nil
		case CondBetween:
			lo, okL := d.CeilCode(c.LoStr)
			hi, okH := d.FloorCode(c.HiStr)
			if !okL || !okH || lo > hi {
				return nothing, nil
			}
			return core.Between(lo, hi), nil
		case CondIn:
			var p core.KeyPred
			for _, s := range c.StrSet {
				if code, ok := d.Code(s); ok {
					p = append(p, core.KeyRange{Lo: code, Hi: code})
				}
			}
			if len(p) == 0 {
				return nothing, nil
			}
			return p, nil
		}
	}
	switch c.Kind {
	case CondCmp:
		switch c.Op {
		case "=":
			return core.Point(c.Num), nil
		case "<":
			if c.Num == 0 {
				return nothing, nil
			}
			return core.Between(0, min(c.Num-1, maxKey)), nil
		case "<=":
			return core.Between(0, min(c.Num, maxKey)), nil
		case ">":
			if c.Num >= maxKey {
				return nothing, nil
			}
			return core.Between(c.Num+1, maxKey), nil
		case ">=":
			if c.Num > maxKey {
				return nothing, nil
			}
			return core.Between(c.Num, maxKey), nil
		}
	case CondBetween:
		if c.LoNum > maxKey || c.LoNum > c.HiNum {
			return nothing, nil
		}
		return core.Between(c.LoNum, min(c.HiNum, maxKey)), nil
	case CondIn:
		var p core.KeyPred
		for _, v := range c.Set {
			if v <= maxKey {
				p = append(p, core.KeyRange{Lo: v, Hi: v})
			}
		}
		if len(p) == 0 {
			return nothing, nil
		}
		return p, nil
	}
	return nil, fmt.Errorf("sql: unsupported predicate on %s", col)
}

// residual compiles non-primary restrictions into a combination filter.
// shapes are the plan inputs up to and including the restricted one; ord
// is the restricted input's ordinal.
func (b *builder) residual(conds []Cond, ti *catalog.TableInfo, shapes []*core.IndexedTable, ord int) (func([]uint64) bool, error) {
	if len(conds) == 0 {
		return nil, nil
	}
	var tests []func([]uint64) bool
	for _, c := range conds {
		off := core.CtxOffsets(shapes, core.Ref{Input: ord, Attr: c.Col.Name})[0]
		test, err := compileTest(c, ti, off)
		if err != nil {
			return nil, err
		}
		tests = append(tests, test)
	}
	return func(ctx []uint64) bool {
		for _, t := range tests {
			if !t(ctx) {
				return false
			}
		}
		return true
	}, nil
}

func compileTest(c Cond, ti *catalog.TableInfo, off int) (func([]uint64) bool, error) {
	if c.IsStr {
		d := ti.Dict(c.Col.Name)
		if d == nil {
			return nil, fmt.Errorf("sql: string predicate on numeric column %s", c.Col)
		}
		switch c.Kind {
		case CondCmp:
			code, ok := d.Code(c.Str)
			if !ok {
				return func([]uint64) bool { return false }, nil
			}
			return func(ctx []uint64) bool { return ctx[off] == code }, nil
		case CondBetween:
			lo, okL := d.CeilCode(c.LoStr)
			hi, okH := d.FloorCode(c.HiStr)
			if !okL || !okH || lo > hi {
				return func([]uint64) bool { return false }, nil
			}
			return func(ctx []uint64) bool { return ctx[off] >= lo && ctx[off] <= hi }, nil
		case CondIn:
			set := map[uint64]bool{}
			for _, s := range c.StrSet {
				if code, ok := d.Code(s); ok {
					set[code] = true
				}
			}
			return func(ctx []uint64) bool { return set[ctx[off]] }, nil
		}
	}
	switch c.Kind {
	case CondCmp:
		n := c.Num
		switch c.Op {
		case "=":
			return func(ctx []uint64) bool { return ctx[off] == n }, nil
		case "<":
			return func(ctx []uint64) bool { return ctx[off] < n }, nil
		case "<=":
			return func(ctx []uint64) bool { return ctx[off] <= n }, nil
		case ">":
			return func(ctx []uint64) bool { return ctx[off] > n }, nil
		case ">=":
			return func(ctx []uint64) bool { return ctx[off] >= n }, nil
		}
	case CondBetween:
		lo, hi := c.LoNum, c.HiNum
		return func(ctx []uint64) bool { return ctx[off] >= lo && ctx[off] <= hi }, nil
	case CondIn:
		set := map[uint64]bool{}
		for _, v := range c.Set {
			set[v] = true
		}
		return func(ctx []uint64) bool { return set[ctx[off]] }, nil
	}
	return nil, fmt.Errorf("sql: unsupported residual predicate on %s", c.Col)
}

// finish assembles the Statement's extraction metadata: how to map the
// result index (key fields in GROUP BY order, then aggregates) into
// SELECT-item order, how to sort per ORDER BY, and how to decode cells.
func (b *builder) finish(plan *core.Plan) (*Statement, error) {
	s := &Statement{Plan: plan, opts: b.opt, nGroup: len(b.stmt.GroupBy)}
	groupPos := func(name string) int {
		for i, g := range b.stmt.GroupBy {
			if g.Name == name {
				return i
			}
		}
		return -1
	}
	aggIdx := 0
	for _, it := range b.stmt.Items {
		if it.Agg != nil {
			s.Attrs = append(s.Attrs, b.aggNames[aggIdx])
			s.selOrder = append(s.selOrder, s.nGroup+aggIdx)
			s.decodeTis = append(s.decodeTis, nil)
			s.decodeCol = append(s.decodeCol, "")
			aggIdx++
			continue
		}
		gp := groupPos(it.Col.Name)
		if gp < 0 {
			return nil, fmt.Errorf("sql: column %s is neither aggregated nor grouped", it.Col)
		}
		name := it.Alias
		if name == "" {
			name = it.Col.Name
		}
		s.Attrs = append(s.Attrs, name)
		s.selOrder = append(s.selOrder, gp)
		owner := b.tis[b.groupOwner[gp]]
		s.decodeTis = append(s.decodeTis, owner)
		s.decodeCol = append(s.decodeCol, it.Col.Name)
	}
	for _, o := range b.stmt.OrderBy {
		pos := -1
		for i, a := range s.Attrs {
			if a == o.Col.Name {
				pos = i
			}
		}
		if pos < 0 {
			// Also match the underlying column name of aliased items.
			for i, it := range b.stmt.Items {
				if it.Agg == nil && it.Col.Name == o.Col.Name {
					pos = i
				}
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("sql: ORDER BY column %s not in SELECT list", o.Col)
		}
		if o.Desc {
			s.orderSpec = append(s.orderSpec, -(pos + 1))
		} else {
			s.orderSpec = append(s.orderSpec, pos)
		}
	}
	return s, nil
}

// FusableEdges annotates the compiled plan with the number of
// intermediate indexes pipeline fusion skips when the statement runs
// with fusion on (core.Options.NoFuse unset). Zero means every edge of
// this plan must materialize: each output is either multi-consumer,
// aggregating, or feeds a consumer that needs indexed access.
func (s *Statement) FusableEdges() int { return core.FusableEdges(s.Plan.Root) }

// Run executes the statement one-shot on the options it was planned with:
// the plan allocates a private worker pool of Options.Exec.Workers
// goroutines (serial when unset) and, when requested via
// Options.Exec.CollectStats, returns per-operator statistics including the
// worker/morsel counts each operator executed with.
func (s *Statement) Run() (*Rows, *core.PlanStats, error) {
	return s.RunCtx(context.Background(), nil)
}

// RunCtx executes the statement with cancellation, against a long-lived
// execution environment when env is non-nil (the environment's worker
// pool, chunk recycler and spill budget then serve the query — see
// core.Plan.RunCtx) and one-shot otherwise.
func (s *Statement) RunCtx(ctx context.Context, env *core.Env) (*Rows, *core.PlanStats, error) {
	return s.RunExec(ctx, env, s.opts.Exec)
}

// RunExec is RunCtx with the execution options overridden per run — the
// hook engine sessions use to apply per-query knobs (statistics, buffer
// size, morsel fan-out) to a statement prepared once.
func (s *Statement) RunExec(ctx context.Context, env *core.Env, exec core.Options) (*Rows, *core.PlanStats, error) {
	out, stats, err := s.Plan.RunCtx(ctx, env, exec)
	if err != nil {
		return nil, nil, err
	}
	res := core.Extract(out)
	rows := make([][]uint64, len(res.Rows))
	for i, r := range res.Rows {
		nr := make([]uint64, len(s.selOrder))
		for j, c := range s.selOrder {
			nr[j] = r[c]
		}
		rows[i] = nr
	}
	if len(s.orderSpec) > 0 {
		spec := s.orderSpec
		sort.SliceStable(rows, func(a, c int) bool {
			ra, rc := rows[a], rows[c]
			for _, k := range spec {
				col, desc := k, false
				if col < 0 {
					col, desc = -col-1, true
				}
				if ra[col] != rc[col] {
					if desc {
						return ra[col] > rc[col]
					}
					return ra[col] < rc[col]
				}
			}
			return false
		})
	}
	return &Rows{Attrs: s.Attrs, Rows: rows, stmt: s}, stats, nil
}
