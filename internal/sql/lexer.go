// Package sql implements a SQL front end for the SSB dialect the paper
// queries are written in (Figure 5, Listings 1 and 2): SELECT with SUM
// aggregates and arithmetic over fact columns, multi-table FROM, WHERE
// with equijoins and point/range/IN/OR restrictions, GROUP BY and
// ORDER BY with ASC/DESC.
//
// The planner compiles statements into QPPT execution plans (package
// core): dimension restrictions become selection or composed select-join
// operators over catalog base indexes, the fact table becomes the main
// index of a multi-way/star join, and the GROUP BY attributes become the
// composed key of the aggregating output index.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . * - +
	tokOp     // = < > <= >=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. Identifiers may be backquoted (the paper writes
// `date` because DATE is a keyword in most systems); keywords are
// case-insensitive and reported as lowercase identifiers.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '`':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case c == '<' || c == '>':
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
				l.pos++
			}
			l.emit(tokOp, l.src[start:l.pos], start)
		case c == '=':
			l.emit(tokOp, "=", l.pos)
			l.pos++
		case strings.ContainsRune("(),.*-+;", rune(c)):
			l.emit(tokSymbol, string(c), l.pos)
			l.pos++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped ''
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, sb.String(), start)
			return nil
		}
		sb.WriteByte(l.src[l.pos])
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++
	end := strings.IndexByte(l.src[l.pos:], '`')
	if end < 0 {
		return fmt.Errorf("sql: unterminated quoted identifier at %d", start)
	}
	l.emit(tokIdent, strings.ToLower(l.src[l.pos:l.pos+end]), start)
	l.pos += end + 1
	return nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '#' {
			l.pos++
			continue
		}
		break
	}
	l.emit(tokIdent, strings.ToLower(l.src[start:l.pos]), start)
}
