package sql

import (
	"fmt"
	"strconv"
)

// Parse parses one SSB-dialect SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	if !p.at(k, text) {
		return token{}, p.errf("expected %q, found %q", text, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokIdent, "select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		stmt.Tables = append(stmt.Tables, t.text)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokIdent, "where") {
		for {
			cond, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, cond)
			if !p.accept(tokIdent, "and") {
				break
			}
		}
	}
	if p.accept(tokIdent, "group") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokIdent, "order") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumn()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.accept(tokIdent, "desc") {
				item.Desc = true
			} else {
				p.accept(tokIdent, "asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	var item SelectItem
	if p.at(tokIdent, "sum") {
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return item, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return item, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return item, err
		}
		item.Agg = expr
	} else {
		c, err := p.parseColumn()
		if err != nil {
			return item, err
		}
		item.Col = c
	}
	if p.accept(tokIdent, "as") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return item, err
		}
		item.Alias = a.text
	}
	return item, nil
}

// parseExpr parses additive expressions with standard precedence
// (* binds tighter than + and -).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") {
		op := p.next().text[0]
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "*") {
		p.next()
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: '*', L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.cur(); t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.ParseUint(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return NumExpr{Val: v}, nil
	case tokString:
		p.next()
		return StrExpr{Val: t.text}, nil
	case tokIdent:
		c, err := p.parseColumn()
		if err != nil {
			return nil, err
		}
		return ColExpr{Col: c}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("expected expression, found %q", p.cur().text)
}

func (p *parser) parseColumn() (Column, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return Column{}, err
	}
	if p.accept(tokSymbol, ".") {
		n, err := p.expect(tokIdent, "")
		if err != nil {
			return Column{}, err
		}
		return Column{Table: t.text, Name: n.text}, nil
	}
	return Column{Name: t.text}, nil
}

// parseCond parses one conjunct: an equijoin, a comparison, BETWEEN, IN,
// or a parenthesized OR chain over one column (normalized to IN).
func (p *parser) parseCond() (Cond, error) {
	if p.accept(tokSymbol, "(") {
		cond, err := p.parseOrChain()
		if err != nil {
			return Cond{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return Cond{}, err
		}
		return cond, nil
	}
	left, err := p.parseColumn()
	if err != nil {
		return Cond{}, err
	}
	switch {
	case p.accept(tokIdent, "between"):
		lo := p.cur()
		if !p.accept(tokNumber, "") && !p.accept(tokString, "") {
			return Cond{}, p.errf("expected literal after BETWEEN")
		}
		if _, err := p.expect(tokIdent, "and"); err != nil {
			return Cond{}, err
		}
		hi := p.cur()
		if !p.accept(tokNumber, "") && !p.accept(tokString, "") {
			return Cond{}, p.errf("expected literal after AND")
		}
		if lo.kind != hi.kind {
			return Cond{}, p.errf("BETWEEN bounds of different types")
		}
		c := Cond{Kind: CondBetween, Col: left}
		if lo.kind == tokString {
			c.IsStr, c.LoStr, c.HiStr = true, lo.text, hi.text
		} else {
			c.LoNum = mustNum(lo.text)
			c.HiNum = mustNum(hi.text)
		}
		return c, nil

	case p.accept(tokIdent, "in"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return Cond{}, err
		}
		c := Cond{Kind: CondIn, Col: left}
		for {
			t := p.cur()
			switch {
			case p.accept(tokString, ""):
				c.IsStr = true
				c.StrSet = append(c.StrSet, t.text)
			case p.accept(tokNumber, ""):
				c.Set = append(c.Set, mustNum(t.text))
			default:
				return Cond{}, p.errf("expected literal in IN list")
			}
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return Cond{}, err
		}
		return c, nil
	}

	opTok := p.cur()
	if opTok.kind != tokOp {
		return Cond{}, p.errf("expected operator, found %q", opTok.text)
	}
	p.next()
	rhs := p.cur()
	switch {
	case p.accept(tokString, ""):
		if opTok.text != "=" {
			return Cond{}, p.errf("only = is supported on strings (or BETWEEN/IN)")
		}
		return Cond{Kind: CondCmp, Col: left, Op: "=", Str: rhs.text, IsStr: true}, nil
	case p.accept(tokNumber, ""):
		return Cond{Kind: CondCmp, Col: left, Op: opTok.text, Num: mustNum(rhs.text)}, nil
	case rhs.kind == tokIdent:
		right, err := p.parseColumn()
		if err != nil {
			return Cond{}, err
		}
		if opTok.text != "=" {
			return Cond{}, p.errf("joins must be equijoins")
		}
		return Cond{Kind: CondJoin, Left: left, Right: right}, nil
	}
	return Cond{}, p.errf("expected literal or column after operator")
}

// parseOrChain parses `a = x or a = y [or ...]` and normalizes it to IN.
func (p *parser) parseOrChain() (Cond, error) {
	c := Cond{Kind: CondIn}
	for {
		col, err := p.parseColumn()
		if err != nil {
			return Cond{}, err
		}
		if c.Col.Name == "" {
			c.Col = col
		} else if c.Col != col {
			return Cond{}, p.errf("OR chains must restrict a single column (%s vs %s)", c.Col, col)
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return Cond{}, err
		}
		t := p.cur()
		switch {
		case p.accept(tokString, ""):
			c.IsStr = true
			c.StrSet = append(c.StrSet, t.text)
		case p.accept(tokNumber, ""):
			c.Set = append(c.Set, mustNum(t.text))
		default:
			return Cond{}, p.errf("expected literal in OR chain")
		}
		if !p.accept(tokIdent, "or") {
			return c, nil
		}
	}
}

func mustNum(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		panic("sql: lexer produced bad number " + s)
	}
	return v
}
