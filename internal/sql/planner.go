package sql

import (
	"context"
	"fmt"
	"sort"

	"qppt/internal/catalog"
	"qppt/internal/core"
)

// Options carry the demonstrator's optimizer knobs into SQL planning.
type Options struct {
	// UseSelectJoin fuses the most selective dimension selection into
	// the star join (paper Section 4.3).
	UseSelectJoin bool
	// Exec carries execution options: joinbuffer size, statistics, and
	// the morsel-driven parallelism knobs (Exec.Workers sizes the
	// plan-wide shared worker pool, Exec.MorselsPerWorker the morsel
	// fan-out; see core.Options). Compiled statements run every
	// execution with these options.
	Exec core.Options
}

// A Planner compiles parsed statements into QPPT plans against a catalog.
type Planner struct {
	cat *catalog.Catalog
}

// NewPlanner returns a planner over the catalog.
func NewPlanner(cat *catalog.Catalog) *Planner { return &Planner{cat: cat} }

// A Statement is a compiled, executable query.
type Statement struct {
	Plan *core.Plan
	// Attrs are the output attribute names in SELECT-item order.
	Attrs []string
	opts  Options
	// extraction state
	nGroup    int
	selOrder  []int                // result column positions in SELECT order
	orderSpec []int                // orderRows-style sort spec over output rows
	decodeTis []*catalog.TableInfo // per output column; nil = numeric
	decodeCol []string
}

// Rows is a materialized, ordered query result.
type Rows struct {
	Attrs []string
	Rows  [][]uint64

	stmt *Statement
}

// Decode renders one cell human-readably (dictionary strings decoded).
func (r *Rows) Decode(row, col int) string {
	if ti := r.stmt.decodeTis[col]; ti != nil {
		return ti.Decode(r.stmt.decodeCol[col], r.Rows[row][col])
	}
	return fmt.Sprintf("%d", r.Rows[row][col])
}

// PlanSQL parses and plans a query in one step.
func (p *Planner) PlanSQL(src string, opt Options) (*Statement, error) {
	return p.PlanSQLCtx(context.Background(), src, opt)
}

// PlanSQLCtx is PlanSQL with cancellation. Planning provisions the base
// indexes the physical plan needs — full table scans on a cold catalog —
// and a cancelled ctx aborts those builds instead of finishing them for
// a client that already hung up.
func (p *Planner) PlanSQLCtx(ctx context.Context, src string, opt Options) (*Statement, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return p.plan(ctx, stmt, opt, nil)
}

// dimInfo gathers everything the planner knows about one joined dimension.
type dimInfo struct {
	table   string
	ti      *catalog.TableInfo
	joinKey string // dimension-side join column
	fk      string // fact-side join column
	conds   []Cond
	carries []string // group-by attributes read from this dimension
	est     float64  // selectivity estimate (lower = more selective)
	ordinal int      // plan input ordinal, assigned late
}

// Plan compiles a parsed statement.
func (p *Planner) Plan(stmt *SelectStmt, opt Options) (*Statement, error) {
	return p.plan(context.Background(), stmt, opt, nil)
}

// An IndexRecommendation names one base index a workload needs, with the
// (0-based) workload statements that use it.
type IndexRecommendation struct {
	Table   string
	Def     catalog.IndexDef
	Queries []int
}

// Advise derives the base indexes a workload needs — the automatic index
// selection of the paper's Section 7 future work. Planning each statement
// also provisions the indexes in the catalog (they are cached), so Advise
// doubles as a workload warm-up; the recommendations record which
// statement needs which partially clustered index.
func (p *Planner) Advise(stmts []string, opt Options) ([]IndexRecommendation, error) {
	var recs []IndexRecommendation
	seen := map[string]int{} // canonical name → recs position
	for qi, src := range stmts {
		stmt, err := Parse(src)
		if err != nil {
			return nil, fmt.Errorf("sql: statement %d: %w", qi, err)
		}
		_, err = p.plan(context.Background(), stmt, opt, func(table string, def catalog.IndexDef) {
			name := def.IndexName(table)
			at, ok := seen[name]
			if !ok {
				at = len(recs)
				seen[name] = at
				recs = append(recs, IndexRecommendation{Table: table, Def: def})
			}
			qs := recs[at].Queries
			if len(qs) == 0 || qs[len(qs)-1] != qi {
				recs[at].Queries = append(qs, qi)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("sql: statement %d: %w", qi, err)
		}
	}
	return recs, nil
}

// plan compiles a parsed statement, reporting every base index it needs
// through record (when non-nil). ctx cancels the base-index builds
// planning triggers.
func (p *Planner) plan(ctx context.Context, stmt *SelectStmt, opt Options, record func(string, catalog.IndexDef)) (*Statement, error) {
	tis := make(map[string]*catalog.TableInfo, len(stmt.Tables))
	for _, t := range stmt.Tables {
		ti := p.cat.Table(t)
		if ti == nil {
			return nil, fmt.Errorf("sql: unknown table %q", t)
		}
		tis[t] = ti
	}
	resolve := func(c Column) (string, error) {
		if c.Table != "" {
			ti, ok := tis[c.Table]
			if !ok {
				return "", fmt.Errorf("sql: table %q not in FROM", c.Table)
			}
			if ti.Schema.Col(c.Name) < 0 {
				return "", fmt.Errorf("sql: no column %s.%s", c.Table, c.Name)
			}
			return c.Table, nil
		}
		owner := ""
		for t, ti := range tis {
			if ti.Schema.Col(c.Name) >= 0 {
				if owner != "" {
					return "", fmt.Errorf("sql: column %q is ambiguous", c.Name)
				}
				owner = t
			}
		}
		if owner == "" {
			return "", fmt.Errorf("sql: unknown column %q", c.Name)
		}
		return owner, nil
	}

	// Classify WHERE conjuncts.
	type joinCond struct {
		a, b   Column
		ta, tb string
	}
	var joins []joinCond
	restr := map[string][]Cond{}
	for _, c := range stmt.Where {
		if c.Kind == CondJoin {
			ta, err := resolve(c.Left)
			if err != nil {
				return nil, err
			}
			tb, err := resolve(c.Right)
			if err != nil {
				return nil, err
			}
			if ta == tb {
				return nil, fmt.Errorf("sql: self-join on %q not supported", ta)
			}
			joins = append(joins, joinCond{a: c.Left, b: c.Right, ta: ta, tb: tb})
			continue
		}
		t, err := resolve(c.Col)
		if err != nil {
			return nil, err
		}
		restr[t] = append(restr[t], c)
	}

	// The fact table is the larger side of every join.
	fact := ""
	if len(joins) == 0 {
		if len(stmt.Tables) != 1 {
			return nil, fmt.Errorf("sql: multiple tables without join conditions")
		}
		fact = stmt.Tables[0]
	}
	dims := map[string]*dimInfo{}
	for _, j := range joins {
		fa, fb := tis[j.ta], tis[j.tb]
		ft, dt, fc, dc := j.ta, j.tb, j.a, j.b
		if fa.Rows() < fb.Rows() {
			ft, dt, fc, dc = j.tb, j.ta, j.b, j.a
		}
		if fact == "" {
			fact = ft
		} else if fact != ft {
			return nil, fmt.Errorf("sql: queries must join a single fact table (%s vs %s)", fact, ft)
		}
		dims[dt] = &dimInfo{table: dt, ti: tis[dt], joinKey: dc.Name, fk: fc.Name}
	}
	for t, cs := range restr {
		if t == fact {
			continue
		}
		d, ok := dims[t]
		if !ok {
			return nil, fmt.Errorf("sql: table %q restricted but not joined", t)
		}
		d.conds = cs
	}

	// Group-by attributes: assign carries to their dimensions (or fact).
	factTi := tis[fact]
	var factCarries []string
	groupOwner := make([]string, len(stmt.GroupBy))
	for i, g := range stmt.GroupBy {
		t, err := resolve(g)
		if err != nil {
			return nil, err
		}
		groupOwner[i] = t
		if t == fact {
			factCarries = append(factCarries, g.Name)
		} else {
			dims[t].carries = append(dims[t].carries, g.Name)
		}
	}

	// Selectivity estimates pick the main (most selective) dimension.
	dimList := make([]*dimInfo, 0, len(dims))
	for _, d := range dims {
		d.est = estimate(d)
		dimList = append(dimList, d)
	}
	sort.Slice(dimList, func(i, j int) bool {
		if dimList[i].est != dimList[j].est {
			return dimList[i].est < dimList[j].est
		}
		return dimList[i].table < dimList[j].table // deterministic plans
	})

	// Aggregates must be fact-only expressions.
	aggNames := make([]string, 0, len(stmt.Items))
	var aggExprs []Expr
	for i, it := range stmt.Items {
		if it.Agg == nil {
			continue
		}
		if err := checkFactExpr(it.Agg, fact, resolve); err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = fmt.Sprintf("sum_%d", i)
		}
		aggNames = append(aggNames, name)
		aggExprs = append(aggExprs, it.Agg)
	}
	// Plain select items must be grouped.
	for _, it := range stmt.Items {
		if it.Agg != nil {
			continue
		}
		found := false
		for _, g := range stmt.GroupBy {
			if g.Name == it.Col.Name {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("sql: column %s is neither aggregated nor grouped", it.Col)
		}
	}

	b := &builder{ctx: ctx, p: p, stmt: stmt, opt: opt, record: record, fact: factTi, factName: fact,
		dims: dimList, restr: restr, factCarries: factCarries,
		groupOwner: groupOwner, aggNames: aggNames, aggExprs: aggExprs, tis: tis}
	return b.build()
}

// estimate guesses a dimension restriction's selectivity from dictionary
// domain sizes (lower is more selective; unrestricted dimensions get 1).
func estimate(d *dimInfo) float64 {
	if len(d.conds) == 0 {
		return 1
	}
	est := 1.0
	for _, c := range d.conds {
		var f float64 = 0.5
		if c.IsStr {
			if dict := d.ti.Dict(c.Col.Name); dict != nil && dict.Len() > 0 {
				n := float64(dict.Len())
				switch c.Kind {
				case CondCmp:
					f = 1 / n
				case CondIn:
					f = float64(len(c.StrSet)) / n
				case CondBetween:
					f = 8 / n // small contiguous slice
				}
			}
		} else {
			switch c.Kind {
			case CondCmp:
				if c.Op == "=" {
					f = 0.05
				} else {
					f = 0.4
				}
			case CondIn:
				f = 0.05 * float64(len(c.Set))
			case CondBetween:
				f = 0.3
			}
		}
		est *= f
	}
	return est
}

func checkFactExpr(e Expr, fact string, resolve func(Column) (string, error)) error {
	switch x := e.(type) {
	case ColExpr:
		t, err := resolve(x.Col)
		if err != nil {
			return err
		}
		if t != fact {
			return fmt.Errorf("sql: aggregate over non-fact column %s", x.Col)
		}
		return nil
	case BinExpr:
		if err := checkFactExpr(x.L, fact, resolve); err != nil {
			return err
		}
		return checkFactExpr(x.R, fact, resolve)
	case NumExpr:
		return nil
	case StrExpr:
		return fmt.Errorf("sql: string literal in aggregate")
	}
	return fmt.Errorf("sql: unsupported aggregate expression")
}
