package sql

import (
	"context"
	"fmt"

	"qppt/internal/catalog"
	"qppt/internal/core"
)

// builder turns the analyzed statement into a physical QPPT plan.
type builder struct {
	ctx         context.Context // cancels the base-index builds planning triggers
	p           *Planner
	stmt        *SelectStmt
	opt         Options
	record      func(table string, def catalog.IndexDef) // index advisor hook
	fact        *catalog.TableInfo
	factName    string
	dims        []*dimInfo // sorted most selective first
	restr       map[string][]Cond
	factCarries []string
	groupOwner  []string
	aggNames    []string
	aggExprs    []Expr
	tis         map[string]*catalog.TableInfo
}

func (b *builder) build() (*Statement, error) {
	if len(b.dims) == 0 {
		return b.buildSingleTable()
	}
	return b.buildStar()
}

// dimIndex picks the base index for a dimension: keyed on the primary
// restriction column (first in WHERE order) or on the join key when the
// dimension is unrestricted, partially clustered with everything the plan
// reads from it.
func (b *builder) dimIndex(d *dimInfo) (*core.IndexedTable, Cond, []Cond, error) {
	include := map[string]bool{d.joinKey: true}
	for _, c := range d.carries {
		include[c] = true
	}
	var primary Cond
	var residual []Cond
	if len(d.conds) > 0 {
		primary = d.conds[0]
		residual = d.conds[1:]
		for _, c := range residual {
			include[c.Col.Name] = true
		}
	}
	keyCol := d.joinKey
	if len(d.conds) > 0 {
		keyCol = primary.Col.Name
	}
	delete(include, keyCol)
	cols := make([]string, 0, len(include))
	for c := range include {
		cols = append(cols, c)
	}
	sortStrings(cols)
	def := catalog.IndexDef{KeyCols: []string{keyCol}, Include: cols}
	if b.record != nil {
		b.record(d.table, def)
	}
	idx, err := d.ti.BuildIndexCtx(b.ctx, def)
	if err != nil {
		return nil, Cond{}, nil, err
	}
	return idx, primary, residual, nil
}

// dimOperator builds the plan operator for a non-main dimension: a
// Selection for restricted dimensions, the base index directly otherwise.
func (b *builder) dimOperator(d *dimInfo) (core.Operator, error) {
	idx, primary, residual, err := b.dimIndex(d)
	if err != nil {
		return nil, err
	}
	if len(d.conds) == 0 {
		return &core.Base{Table: idx}, nil
	}
	pred, err := b.keyPred(d.ti, primary)
	if err != nil {
		return nil, err
	}
	res, err := b.residual(residual, d.ti, []*core.IndexedTable{idx}, 0)
	if err != nil {
		return nil, err
	}
	out := core.OutputSpec{
		Name:    "σ_" + d.table,
		Key:     core.SimpleKey(d.joinKey, d.ti.Bits(d.joinKey)),
		KeyRefs: []core.Ref{{Input: 0, Attr: d.joinKey}},
	}
	for _, c := range d.carries {
		out.Cols = append(out.Cols, c)
		out.ColExprs = append(out.ColExprs, core.Attr(0, c))
	}
	return &core.Selection{Input: &core.Base{Table: idx}, Pred: pred, Residual: res, Out: out}, nil
}

// factIndex builds the fact base index keyed on the main dimension's
// foreign key with every attribute the plan reads clustered in.
func (b *builder) factIndex(main *dimInfo) (*core.IndexedTable, error) {
	include := map[string]bool{}
	for _, d := range b.dims {
		if d != main {
			include[d.fk] = true
		}
	}
	for _, c := range b.restr[b.factName] {
		include[c.Col.Name] = true
	}
	for _, c := range b.factCarries {
		include[c] = true
	}
	for _, e := range b.aggExprs {
		collectCols(e, include)
	}
	delete(include, main.fk)
	cols := make([]string, 0, len(include))
	for c := range include {
		cols = append(cols, c)
	}
	sortStrings(cols)
	def := catalog.IndexDef{KeyCols: []string{main.fk}, Include: cols}
	if b.record != nil {
		b.record(b.factName, def)
	}
	return b.fact.BuildIndexCtx(b.ctx, def)
}

// buildStar assembles the star-join plan.
func (b *builder) buildStar() (*Statement, error) {
	main := b.dims[0]
	factIdx, err := b.factIndex(main)
	if err != nil {
		return nil, err
	}
	mainIdx, mainPrimary, mainResidual, err := b.dimIndex(main)
	if err != nil {
		return nil, err
	}

	useSJ := b.opt.UseSelectJoin && len(main.conds) > 0
	// Input ordinals: select-join → 0 = main dim, 1 = fact;
	// star join → 0 = fact, 1 = main dim. Assists follow at 2+i.
	factOrd, mainOrd := 1, 0
	if !useSJ {
		factOrd, mainOrd = 0, 1
	}
	main.ordinal = mainOrd

	// Shapes for offset resolution (inputs in ordinal order).
	var shapes []*core.IndexedTable
	mainShape := mainIdx
	if !useSJ && len(main.conds) > 0 {
		// The main dim enters the join through its selection output.
		mainShape = b.selShape(main)
	}
	if useSJ {
		shapes = []*core.IndexedTable{mainIdx, factIdx}
	} else {
		shapes = []*core.IndexedTable{factIdx, mainShape}
	}
	var assists []core.Assist
	for i, d := range b.dims[1:] {
		d.ordinal = 2 + i
		op, err := b.dimOperator(d)
		if err != nil {
			return nil, err
		}
		assists = append(assists, core.Assist{
			Input:     op,
			ProbeWith: core.Ref{Input: factOrd, Attr: d.fk},
		})
		shapes = append(shapes, b.assistShape(d))
	}

	out, err := b.outputSpec(factOrd, shapes)
	if err != nil {
		return nil, err
	}
	factRes, err := b.residual(b.restr[b.factName], b.fact, shapes[:factOrd+1], factOrd)
	if err != nil {
		return nil, err
	}

	var root core.Operator
	if useSJ {
		pred, err := b.keyPred(main.ti, mainPrimary)
		if err != nil {
			return nil, err
		}
		dimRes, err := b.residual(mainResidual, main.ti, []*core.IndexedTable{mainIdx}, 0)
		if err != nil {
			return nil, err
		}
		root = &core.SelectJoin{
			SelInput:      &core.Base{Table: mainIdx},
			Pred:          pred,
			Residual:      dimRes,
			Main:          &core.Base{Table: factIdx},
			ProbeMainWith: core.Ref{Input: 0, Attr: main.joinKey},
			MainResidual:  factRes,
			Assists:       assists,
			Out:           *out,
		}
	} else {
		var right core.Operator
		if len(main.conds) > 0 {
			right, err = b.dimOperator(main)
			if err != nil {
				return nil, err
			}
		} else {
			right = &core.Base{Table: mainIdx}
		}
		root = &core.Join{
			Left:     &core.Base{Table: factIdx},
			Right:    right,
			Residual: factRes,
			Assists:  assists,
			Out:      *out,
		}
	}
	return b.finish(&core.Plan{Root: root})
}

// buildSingleTable plans a query without joins: one selection (possibly
// grouping) over the fact table.
func (b *builder) buildSingleTable() (*Statement, error) {
	conds := b.restr[b.factName]
	include := map[string]bool{}
	for _, c := range b.factCarries {
		include[c] = true
	}
	for _, e := range b.aggExprs {
		collectCols(e, include)
	}
	var primary Cond
	var residual []Cond
	keyCol := ""
	if len(conds) > 0 {
		primary, residual = conds[0], conds[1:]
		keyCol = primary.Col.Name
		for _, c := range residual {
			include[c.Col.Name] = true
		}
	} else {
		// Unrestricted: scan any index; use the alphabetically first
		// needed column as the key so plans are deterministic.
		for c := range include {
			if keyCol == "" || c < keyCol {
				keyCol = c
			}
		}
		if keyCol == "" {
			return nil, fmt.Errorf("sql: empty query")
		}
	}
	delete(include, keyCol)
	cols := make([]string, 0, len(include))
	for c := range include {
		cols = append(cols, c)
	}
	sortStrings(cols)
	def := catalog.IndexDef{KeyCols: []string{keyCol}, Include: cols}
	if b.record != nil {
		b.record(b.factName, def)
	}
	idx, err := b.fact.BuildIndexCtx(b.ctx, def)
	if err != nil {
		return nil, err
	}
	shapes := []*core.IndexedTable{idx}
	out, err := b.outputSpec(0, shapes)
	if err != nil {
		return nil, err
	}
	var pred core.KeyPred
	if len(conds) > 0 {
		if pred, err = b.keyPred(b.fact, primary); err != nil {
			return nil, err
		}
	}
	res, err := b.residual(residual, b.fact, shapes, 0)
	if err != nil {
		return nil, err
	}
	root := &core.Selection{Input: &core.Base{Table: idx}, Pred: pred, Residual: res, Out: *out}
	return b.finish(&core.Plan{Root: root})
}

// selShape is the layout of a restricted dimension's selection output.
func (b *builder) selShape(d *dimInfo) *core.IndexedTable {
	return core.Shape("σ_"+d.table, core.SimpleKey(d.joinKey, d.ti.Bits(d.joinKey)), d.carries)
}

// assistShape is the layout under which an assist dimension appears in the
// combination context.
func (b *builder) assistShape(d *dimInfo) *core.IndexedTable {
	if len(d.conds) > 0 {
		return b.selShape(d)
	}
	idx, _, _, err := b.dimIndex(d)
	if err != nil {
		panic(err) // already built successfully in dimOperator
	}
	return idx
}

// outputSpec assembles the aggregating output index description.
func (b *builder) outputSpec(factOrd int, shapes []*core.IndexedTable) (*core.OutputSpec, error) {
	out := &core.OutputSpec{Name: "Γ"}
	for i, g := range b.stmt.GroupBy {
		owner := b.groupOwner[i]
		ord := factOrd
		ti := b.fact
		if owner != b.factName {
			for _, d := range b.dims {
				if d.table == owner {
					ord, ti = d.ordinal, d.ti
				}
			}
		}
		out.Key.Attrs = append(out.Key.Attrs, g.Name)
		out.Key.Bits = append(out.Key.Bits, ti.Bits(g.Name))
		out.KeyRefs = append(out.KeyRefs, core.Ref{Input: ord, Attr: g.Name})
	}
	folds := make([]int, len(b.aggExprs))
	for i, e := range b.aggExprs {
		fn, err := compileExpr(e, factOrd, shapes)
		if err != nil {
			return nil, err
		}
		out.Cols = append(out.Cols, b.aggNames[i])
		out.ColExprs = append(out.ColExprs, core.Computed(fn))
		folds[i] = i
	}
	if len(b.aggExprs) > 0 {
		out.Fold = core.FoldSum(folds...)
	}
	return out, nil
}

// compileExpr compiles a fact-side scalar expression to a context function.
func compileExpr(e Expr, factOrd int, shapes []*core.IndexedTable) (func([]uint64) uint64, error) {
	switch x := e.(type) {
	case NumExpr:
		v := x.Val
		return func([]uint64) uint64 { return v }, nil
	case ColExpr:
		off := core.CtxOffsets(shapes[:factOrd+1], core.Ref{Input: factOrd, Attr: x.Col.Name})[0]
		return func(ctx []uint64) uint64 { return ctx[off] }, nil
	case BinExpr:
		l, err := compileExpr(x.L, factOrd, shapes)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.R, factOrd, shapes)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case '+':
			return func(ctx []uint64) uint64 { return l(ctx) + r(ctx) }, nil
		case '-':
			return func(ctx []uint64) uint64 { return l(ctx) - r(ctx) }, nil
		case '*':
			return func(ctx []uint64) uint64 { return l(ctx) * r(ctx) }, nil
		}
	}
	return nil, fmt.Errorf("sql: unsupported expression")
}

func collectCols(e Expr, into map[string]bool) {
	switch x := e.(type) {
	case ColExpr:
		into[x.Col.Name] = true
	case BinExpr:
		collectCols(x.L, into)
		collectCols(x.R, into)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
