package prefixtree

import (
	"math/rand"
	"testing"
)

func TestLookupBatchMatchesScalar(t *testing.T) {
	tr := MustNew(Config{PayloadWidth: 1})
	rng := rand.New(rand.NewSource(9))
	var present []uint64
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 1_000_000
		tr.Insert(k, []uint64{k * 2})
		present = append(present, k)
	}
	batch := make([]uint64, 0, 4096)
	batch = append(batch, present[:2048]...)
	for i := 0; i < 2048; i++ {
		batch = append(batch, rng.Uint64()) // mostly absent keys
	}
	tr.LookupBatch(batch, func(i int, lf *Leaf) {
		scalar := tr.Lookup(batch[i])
		if (lf == nil) != (scalar == nil) {
			t.Fatalf("batch[%d]=%d: batch found=%v scalar found=%v", i, batch[i], lf != nil, scalar != nil)
		}
		if lf != nil && lf != scalar {
			t.Fatalf("batch[%d]: different leaf than scalar lookup", i)
		}
	})
}

func TestLookupBatchEmpty(t *testing.T) {
	tr := MustNew(Config{})
	tr.LookupBatch(nil, func(int, *Leaf) { t.Error("visit called") })
}

func TestInsertBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	keys := make([]uint64, 10000)
	rows := make([][]uint64, len(keys))
	for i := range keys {
		keys[i] = rng.Uint64() % 50_000 // plenty of duplicates and collisions
		rows[i] = []uint64{uint64(i)}
	}
	scalar := MustNew(Config{PayloadWidth: 1})
	batched := MustNew(Config{PayloadWidth: 1})
	for i, k := range keys {
		scalar.Insert(k, rows[i])
	}
	for off := 0; off < len(keys); off += 512 {
		end := min(off+512, len(keys))
		batched.InsertBatch(keys[off:end], rows[off:end])
	}
	if scalar.Keys() != batched.Keys() || scalar.Rows() != batched.Rows() {
		t.Fatalf("keys/rows: scalar %d/%d batched %d/%d",
			scalar.Keys(), scalar.Rows(), batched.Keys(), batched.Rows())
	}
	scalar.Iterate(func(lf *Leaf) bool {
		blf := batched.Lookup(lf.Key)
		if blf == nil {
			t.Fatalf("key %d missing from batched tree", lf.Key)
		}
		if blf.Vals.Len() != lf.Vals.Len() {
			t.Fatalf("key %d row count differs: %d vs %d", lf.Key, lf.Vals.Len(), blf.Vals.Len())
		}
		want := lf.Vals.Rows()
		got := blf.Vals.Rows()
		for i := range want {
			if want[i][0] != got[i][0] {
				t.Fatalf("key %d row %d differs: %v vs %v", lf.Key, i, want[i], got[i])
			}
		}
		return true
	})
}

func TestInsertBatchWithFold(t *testing.T) {
	tr := MustNew(Config{
		PayloadWidth: 1,
		Fold:         func(dst, src []uint64) { dst[0] += src[0] },
	})
	keys := make([]uint64, 1000)
	rows := make([][]uint64, len(keys))
	for i := range keys {
		keys[i] = uint64(i % 7)
		rows[i] = []uint64{1}
	}
	tr.InsertBatch(keys, rows)
	if tr.Keys() != 7 {
		t.Fatalf("Keys = %d, want 7", tr.Keys())
	}
	var total uint64
	tr.Iterate(func(lf *Leaf) bool { total += lf.Vals.First()[0]; return true })
	if total != 1000 {
		t.Fatalf("total count = %d, want 1000", total)
	}
}

func TestInsertBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	MustNew(Config{PayloadWidth: 1}).InsertBatch([]uint64{1, 2}, [][]uint64{{1}})
}
