package prefixtree

import "qppt/internal/arena"

// Synchronous index scan (paper Section 4.2, Figure 6).
//
// Two unbalanced tries are scanned simultaneously from left to right. Only
// when a bucket is populated in *both* trees does the scan suspend on the
// current nodes and descend synchronously into both children; buckets used
// by only one tree are skipped without ever touching their subtrees. This
// is the join kernel of QPPT — and, through the same visit mechanism, the
// kernel of the intersect and distinct-union set operators.
//
// With the compact-pointer layout a node is a run of fanout uint32 slots,
// so the lockstep bucket walk reads both nodes at 16 buckets per cache
// line (k′=4) instead of 4 — the skip decisions that dominate a sparse
// scan touch a quarter of the memory they used to.

// SyncScan visits, in ascending key order, every key present in both a and
// b, passing both leaves. The trees must agree on PrefixLen and KeyBits so
// their fragment grids line up; SyncScan panics otherwise, since silently
// joining misaligned trees would drop matches. It stops early if visit
// returns false and reports whether the scan ran to completion.
func SyncScan(a, b *Tree, visit func(la, lb *Leaf) bool) bool {
	if a.cfg.PrefixLen != b.cfg.PrefixLen || a.cfg.KeyBits != b.cfg.KeyBits {
		panic("prefixtree: SyncScan on trees with different geometry")
	}
	return syncNodes(a, b, rootNode, rootNode, 0, visit)
}

// syncNodes scans two nodes that sit at the same depth (level) in their
// respective trees. na/nb are node ordinals in their owning tree's arena.
func syncNodes(a, b *Tree, na, nb uint32, level int, visit func(la, lb *Leaf) bool) bool {
	ba, bb := a.nodes.Block(na), b.nodes.Block(nb)
	for f := 0; f < a.fanout; f++ {
		ra, rb := arena.Ref(ba[f]), arena.Ref(bb[f])
		if ra.IsNil() || rb.IsNil() {
			continue // bucket unused in at least one index: skip the descent
		}
		switch {
		case ra.IsLeaf() && rb.IsLeaf():
			la, lb := a.leaf(ra.Index()), b.leaf(rb.Index())
			if la.Key == lb.Key {
				if !visit(la, lb) {
					return false
				}
			}
		case ra.IsLeaf(): // a stored a content node high up, b has a subtree
			la := a.leaf(ra.Index())
			if lb := descend(b, rb.Index(), la.Key, level+1); lb != nil {
				if !visit(la, lb) {
					return false
				}
			}
		case rb.IsLeaf(): // b stored a content node high up, a has a subtree
			lb := b.leaf(rb.Index())
			if la := descend(a, ra.Index(), lb.Key, level+1); la != nil {
				if !visit(la, lb) {
					return false
				}
			}
		default: // both inner: suspend here, scan the children synchronously
			if !syncNodes(a, b, ra.Index(), rb.Index(), level+1, visit) {
				return false
			}
		}
	}
	return true
}

// SyncScanRange is SyncScan restricted to keys in [lo, hi]. It is the
// partitioning primitive for intra-operator parallelism (paper Section 7):
// the unbalanced tree splits deterministically into disjoint key-range
// subtrees, so concurrent workers can scan disjoint ranges of the same
// tree pair without coordination.
func SyncScanRange(a, b *Tree, lo, hi uint64, visit func(la, lb *Leaf) bool) bool {
	if a.cfg.PrefixLen != b.cfg.PrefixLen || a.cfg.KeyBits != b.cfg.KeyBits {
		panic("prefixtree: SyncScanRange on trees with different geometry")
	}
	if lo > hi {
		return true
	}
	return syncNodesRange(a, b, rootNode, rootNode, 0, lo, hi, visit)
}

// syncNodesRange is syncNodes with [lo, hi] bounds, handled exactly like
// Tree.rangeNode: only the edge fragments need recursive bound checks.
func syncNodesRange(a, b *Tree, na, nb uint32, level int, lo, hi uint64, visit func(la, lb *Leaf) bool) bool {
	ba, bb := a.nodes.Block(na), b.nodes.Block(nb)
	loFrag := a.frag(lo, level)
	hiFrag := a.frag(hi, level)
	for f := loFrag; f <= hiFrag; f++ {
		ra, rb := arena.Ref(ba[f]), arena.Ref(bb[f])
		if ra.IsNil() || rb.IsNil() {
			continue
		}
		switch {
		case ra.IsLeaf() && rb.IsLeaf():
			la, lb := a.leaf(ra.Index()), b.leaf(rb.Index())
			if la.Key == lb.Key && la.Key >= lo && la.Key <= hi {
				if !visit(la, lb) {
					return false
				}
			}
		case ra.IsLeaf():
			la := a.leaf(ra.Index())
			if la.Key >= lo && la.Key <= hi {
				if lb := descend(b, rb.Index(), la.Key, level+1); lb != nil {
					if !visit(la, lb) {
						return false
					}
				}
			}
		case rb.IsLeaf():
			lb := b.leaf(rb.Index())
			if lb.Key >= lo && lb.Key <= hi {
				if la := descend(a, ra.Index(), lb.Key, level+1); la != nil {
					if !visit(la, lb) {
						return false
					}
				}
			}
		default:
			ca, cb := ra.Index(), rb.Index()
			switch {
			case f == loFrag && f == hiFrag:
				if !syncNodesRange(a, b, ca, cb, level+1, lo, hi, visit) {
					return false
				}
			case f == loFrag:
				if !syncNodesRange(a, b, ca, cb, level+1, lo, a.keyMax(), visit) {
					return false
				}
			case f == hiFrag:
				if !syncNodesRange(a, b, ca, cb, level+1, 0, hi, visit) {
					return false
				}
			default:
				if !syncNodes(a, b, ca, cb, level+1, visit) {
					return false
				}
			}
		}
	}
	return true
}

// descend resolves key in the subtree rooted at node ordinal n of t, where
// n sits at the given depth. This covers the asymmetric case where dynamic
// expansion stored a key as a shallow content node in one tree while the
// other tree grew a subtree under the same fragment path.
func descend(t *Tree, n uint32, key uint64, level int) *Leaf {
	for {
		r := arena.Ref(t.nodes.Block(n)[t.frag(key, level)])
		if r.IsNil() {
			return nil
		}
		if r.IsLeaf() {
			if lf := t.leaf(r.Index()); lf.Key == key {
				return lf
			}
			return nil
		}
		n = r.Index()
		level++
	}
}
