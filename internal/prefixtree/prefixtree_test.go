package prefixtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{PrefixLen: 17}); err == nil {
		t.Error("PrefixLen 17 accepted")
	}
	if _, err := New(Config{KeyBits: 65}); err == nil {
		t.Error("KeyBits 65 accepted")
	}
	if _, err := New(Config{PayloadWidth: -1}); err == nil {
		t.Error("negative PayloadWidth accepted")
	}
	tr := newTree(t, Config{})
	if tr.PrefixLen() != 4 || tr.KeyBits() != 64 {
		t.Errorf("defaults: k'=%d bits=%d, want 4/64", tr.PrefixLen(), tr.KeyBits())
	}
}

func TestInsertLookupSmall(t *testing.T) {
	tr := newTree(t, Config{PayloadWidth: 1})
	keys := []uint64{0, 1, 15, 16, 255, 256, 1 << 32, ^uint64(0)}
	for i, k := range keys {
		tr.Insert(k, []uint64{uint64(i)})
	}
	if tr.Keys() != len(keys) {
		t.Fatalf("Keys = %d, want %d", tr.Keys(), len(keys))
	}
	for i, k := range keys {
		lf := tr.Lookup(k)
		if lf == nil {
			t.Fatalf("key %#x not found", k)
		}
		if lf.Vals.First()[0] != uint64(i) {
			t.Errorf("key %#x payload = %d, want %d", k, lf.Vals.First()[0], i)
		}
	}
	if tr.Lookup(2) != nil {
		t.Error("absent key found")
	}
}

func TestDuplicatesAccumulate(t *testing.T) {
	tr := newTree(t, Config{PayloadWidth: 1})
	for i := 0; i < 1000; i++ {
		tr.Insert(42, []uint64{uint64(i)})
	}
	if tr.Keys() != 1 || tr.Rows() != 1000 {
		t.Fatalf("Keys/Rows = %d/%d, want 1/1000", tr.Keys(), tr.Rows())
	}
	lf := tr.Lookup(42)
	i := 0
	lf.Vals.Scan(func(row []uint64) bool {
		if row[0] != uint64(i) {
			t.Fatalf("row %d = %d", i, row[0])
		}
		i++
		return true
	})
	if i != 1000 {
		t.Fatalf("scanned %d rows", i)
	}
}

func TestFoldAggregates(t *testing.T) {
	tr := newTree(t, Config{
		PayloadWidth: 1,
		Fold:         func(dst, src []uint64) { dst[0] += src[0] },
	})
	for i := 1; i <= 100; i++ {
		tr.Insert(uint64(i%10), []uint64{uint64(i)})
	}
	if tr.Keys() != 10 || tr.Rows() != 10 {
		t.Fatalf("Keys/Rows = %d/%d, want 10/10", tr.Keys(), tr.Rows())
	}
	var total uint64
	tr.Iterate(func(lf *Leaf) bool {
		total += lf.Vals.First()[0]
		return true
	})
	if total != 5050 {
		t.Fatalf("sum of aggregates = %d, want 5050", total)
	}
}

func TestIterateAscending(t *testing.T) {
	for _, kPrime := range []uint{1, 3, 4, 8} {
		tr := newTree(t, Config{PrefixLen: kPrime})
		rng := rand.New(rand.NewSource(7))
		want := map[uint64]bool{}
		for i := 0; i < 5000; i++ {
			k := rng.Uint64()
			tr.Insert(k, nil)
			want[k] = true
		}
		var got []uint64
		tr.Iterate(func(lf *Leaf) bool {
			got = append(got, lf.Key)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("k'=%d: iterated %d keys, want %d", kPrime, len(got), len(want))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("k'=%d: iteration not in ascending key order", kPrime)
		}
	}
}

func TestNarrowKeyBits(t *testing.T) {
	tr := newTree(t, Config{KeyBits: 32})
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i*1234567%4294967296, nil)
	}
	if tr.MaxDepth() >= levels32(t, tr) {
		// 32-bit keys at k'=4 need at most 8 levels; dynamic expansion
		// keeps actual depth lower for sparse data.
		t.Logf("depth = %d", tr.MaxDepth())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized key did not panic")
			}
		}()
		tr.Insert(1<<32, nil)
	}()
}

func levels32(t *testing.T, tr *Tree) int {
	t.Helper()
	return int((tr.KeyBits() + tr.PrefixLen() - 1) / tr.PrefixLen())
}

func TestDelete(t *testing.T) {
	tr := newTree(t, Config{PayloadWidth: 1})
	keys := []uint64{1, 2, 0x1234, 0x1235, 0xFFFF0000, 9}
	for _, k := range keys {
		tr.Insert(k, []uint64{k})
	}
	if tr.Delete(12345) {
		t.Error("deleted absent key")
	}
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%#x) = false", k)
		}
		if tr.Lookup(k) != nil {
			t.Fatalf("key %#x still present after delete", k)
		}
		if tr.Keys() != len(keys)-i-1 {
			t.Fatalf("Keys = %d after %d deletes", tr.Keys(), i+1)
		}
	}
	if tr.Nodes() != 1 {
		t.Errorf("Nodes = %d after deleting all keys, want 1 (root)", tr.Nodes())
	}
}

func TestRange(t *testing.T) {
	tr := newTree(t, Config{})
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i*3, nil)
	}
	cases := []struct {
		lo, hi uint64
		want   int
	}{
		{0, 2997, 1000},
		{0, 0, 1},
		{1, 2, 0},
		{3, 3, 1},
		{100, 200, 33}, // keys 102, 105, ..., 198
		{2998, 1 << 40, 0},
		{500, 499, 0}, // inverted range
	}
	for _, c := range cases {
		n := 0
		prev := uint64(0)
		first := true
		tr.Range(c.lo, c.hi, func(lf *Leaf) bool {
			if lf.Key < c.lo || lf.Key > c.hi {
				t.Fatalf("range [%d,%d] visited key %d", c.lo, c.hi, lf.Key)
			}
			if !first && lf.Key <= prev {
				t.Fatalf("range visited keys out of order")
			}
			prev, first = lf.Key, false
			n++
			return true
		})
		if n != c.want {
			t.Errorf("range [%d,%d] visited %d keys, want %d", c.lo, c.hi, n, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := newTree(t, Config{})
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty tree reported ok")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty tree reported ok")
	}
	keys := []uint64{500, 2, 999999, 42, 1 << 50}
	for _, k := range keys {
		tr.Insert(k, nil)
	}
	if mn, _ := tr.Min(); mn != 2 {
		t.Errorf("Min = %d, want 2", mn)
	}
	if mx, _ := tr.Max(); mx != 1<<50 {
		t.Errorf("Max = %d, want 2^50", mx)
	}
}

// TestPropertyOracle drives random insert/delete/lookup sequences against a
// map oracle across several tree geometries.
func TestPropertyOracle(t *testing.T) {
	for _, cfg := range []Config{
		{PrefixLen: 4, KeyBits: 64, PayloadWidth: 1},
		{PrefixLen: 8, KeyBits: 32, PayloadWidth: 1},
		{PrefixLen: 3, KeyBits: 20, PayloadWidth: 1},
		{PrefixLen: 16, KeyBits: 64, PayloadWidth: 1},
	} {
		cfg := cfg
		f := func(ops []uint32, seed int64) bool {
			tr := MustNew(cfg)
			oracle := map[uint64]uint64{}
			keyMask := ^uint64(0)
			if cfg.KeyBits < 64 {
				keyMask = uint64(1)<<cfg.KeyBits - 1
			}
			for _, op := range ops {
				k := (uint64(op) * 2654435761) & keyMask
				switch op % 3 {
				case 0, 1:
					tr.Insert(k, []uint64{uint64(op)})
					if _, dup := oracle[k]; !dup {
						oracle[k] = uint64(op)
					}
				case 2:
					del := tr.Delete(k)
					_, present := oracle[k]
					if del != present {
						return false
					}
					delete(oracle, k)
				}
			}
			if tr.Keys() != len(oracle) {
				return false
			}
			for k, v := range oracle {
				lf := tr.Lookup(k)
				if lf == nil || lf.Vals.First()[0] != v {
					return false
				}
			}
			n := 0
			ok := tr.Iterate(func(lf *Leaf) bool {
				if _, present := oracle[lf.Key]; !present {
					return false
				}
				n++
				return true
			})
			return ok && n == len(oracle)
		}
		cfg2 := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
		if err := quick.Check(f, cfg2); err != nil {
			t.Fatalf("k'=%d bits=%d: %v", cfg.PrefixLen, cfg.KeyBits, err)
		}
	}
}

func TestPropertyRangeMatchesOracle(t *testing.T) {
	f := func(keys []uint16, lo16, hi16 uint16) bool {
		tr := MustNew(Config{KeyBits: 16})
		oracle := map[uint64]bool{}
		for _, k := range keys {
			tr.Insert(uint64(k), nil)
			oracle[uint64(k)] = true
		}
		lo, hi := uint64(lo16), uint64(hi16)
		if lo > hi {
			lo, hi = hi, lo
		}
		want := 0
		for k := range oracle {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		tr.Range(lo, hi, func(lf *Leaf) bool { got++; return true })
		return got == want
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBytesAndDepthTradeoffAcrossKPrime(t *testing.T) {
	// Section 2.1: higher k' halves the depth but costs memory on sparse
	// distributions.
	sparse := make([]uint64, 20000)
	rng := rand.New(rand.NewSource(3))
	for i := range sparse {
		sparse[i] = rng.Uint64()
	}
	t4 := MustNew(Config{PrefixLen: 4})
	t8 := MustNew(Config{PrefixLen: 8})
	for _, k := range sparse {
		t4.Insert(k, nil)
		t8.Insert(k, nil)
	}
	if t8.MaxDepth() >= t4.MaxDepth() {
		t.Errorf("k'=8 depth %d not lower than k'=4 depth %d", t8.MaxDepth(), t4.MaxDepth())
	}
	if t8.Bytes() <= t4.Bytes() {
		t.Errorf("k'=8 bytes %d not higher than k'=4 bytes %d on sparse keys", t8.Bytes(), t4.Bytes())
	}
}
