package prefixtree

import (
	"sync"

	"qppt/internal/arena"
	"qppt/internal/kernel"
)

// Level-synchronous kernel descent (the SWAR path behind LookupBatch).
//
// The scalar job loop interleaves three concerns per key per level:
// fragment extraction, bucket load, and survivor bookkeeping. The kernel
// descent splits the level into passes over parallel arrays instead:
// kernel.Frags extracts every pending key's fragment for the level in one
// unrolled bounds-check-free sweep, then one resolve pass walks the
// fragments against the level's buckets (keeping the scalar path's
// last-(node,frag) memo, which sorted probe batches hit constantly) and
// compacts the surviving keys to the front of the arrays. Dead jobs stop
// costing anything on deeper levels — the scalar loop keeps skipping them
// — and the fragment sweep vectorizes because it touches no tree state.

// descentScratch holds the kernel descent's parallel arrays: the
// surviving keys (compacted each level), their fragments for the current
// level, their current node ordinals, their original batch positions, and
// the per-original-position resolved leaf index + 1 (0 = absent).
type descentScratch struct {
	keys  []uint64
	frags []uint64
	nodes []uint32
	pos   []uint32
	leaf  []uint32
}

var descentPool = sync.Pool{New: func() any { return new(descentScratch) }}

func getDescent(n int) *descentScratch {
	ds := descentPool.Get().(*descentScratch)
	if cap(ds.keys) < n {
		ds.keys = make([]uint64, n)
		ds.frags = make([]uint64, n)
		ds.nodes = make([]uint32, n)
		ds.pos = make([]uint32, n)
		ds.leaf = make([]uint32, n)
	}
	ds.keys = ds.keys[:n]
	ds.frags = ds.frags[:n]
	ds.nodes = ds.nodes[:n]
	ds.pos = ds.pos[:n]
	ds.leaf = ds.leaf[:n]
	return ds
}

func (t *Tree) lookupBatchKernel(keys []uint64, visit func(i int, lf *Leaf)) {
	n := len(keys)
	ds := getDescent(n)
	skeys, frags, nodes, pos, leaf := ds.keys, ds.frags, ds.nodes, ds.pos, ds.leaf
	for i, k := range keys {
		t.checkKey(k)
		skeys[i] = k
		nodes[i] = rootNode
		pos[i] = uint32(i)
		leaf[i] = 0
	}
	pending := n
	for level := 0; pending > 0; level++ {
		// The last level's fragment may be narrower than PrefixLen; fold
		// that into (shift, mask) once so the kernel sweep stays uniform.
		shift := int(t.cfg.KeyBits) - (level+1)*int(t.cfg.PrefixLen)
		m := t.mask
		if shift <= 0 {
			m >>= uint(-shift)
			shift = 0
		}
		kernel.Frags(frags[:pending], skeys[:pending], uint(shift), m)
		memoNode, memoFrag := jobDone, uint64(0)
		var memoRef arena.Ref
		w := 0
		for i := 0; i < pending; i++ {
			nd, f := nodes[i], frags[i]
			var r arena.Ref
			if nd == memoNode && f == memoFrag {
				r = memoRef
			} else {
				r = arena.Ref(t.nodes.Block(nd)[f])
				memoNode, memoFrag, memoRef = nd, f, r
			}
			switch {
			case r.IsNil():
				// dead: drop from the survivor set
			case r.IsLeaf():
				if li := r.Index(); t.leaf(li).Key == skeys[i] {
					leaf[pos[i]] = li + 1
				}
			default:
				skeys[w] = skeys[i]
				nodes[w] = r.Index()
				pos[w] = pos[i]
				w++
			}
		}
		pending = w
	}
	// Deliver in original batch order — bit-identical to the scalar path,
	// which downstream row ordering depends on.
	for i := range keys {
		if lp := leaf[i]; lp != 0 {
			visit(i, t.leaf(lp-1))
		} else {
			visit(i, nil)
		}
	}
	descentPool.Put(ds)
}
