package prefixtree

import (
	"math/rand"
	"slices"
	"testing"

	"qppt/internal/kernel"
)

// collect runs a batch-lookup func and records the visit sequence as
// (index, leaf-pointer) pairs so two descent strategies can be compared
// for bit-identity, including visit order.
func collect(lookup func([]uint64, func(int, *Leaf)), keys []uint64) []struct {
	i  int
	lf *Leaf
} {
	var got []struct {
		i  int
		lf *Leaf
	}
	lookup(keys, func(i int, lf *Leaf) {
		got = append(got, struct {
			i  int
			lf *Leaf
		}{i, lf})
	})
	return got
}

func diffLookup(t *testing.T, tr *Tree, batch []uint64, label string) {
	t.Helper()
	ker := collect(tr.lookupBatchKernel, batch)
	sca := collect(tr.lookupBatchScalar, batch)
	if len(ker) != len(sca) {
		t.Fatalf("%s: kernel visited %d, scalar %d", label, len(ker), len(sca))
	}
	for i := range ker {
		if ker[i] != sca[i] {
			t.Fatalf("%s: visit %d differs: kernel (%d,%p) scalar (%d,%p)",
				label, i, ker[i].i, ker[i].lf, sca[i].i, sca[i].lf)
		}
	}
}

func TestLookupBatchKernelMatchesScalar(t *testing.T) {
	cfgs := []Config{
		{},                           // 64-bit keys, k'=4
		{PrefixLen: 6},               // 64-bit keys, uneven last level (64%6 != 0)
		{KeyBits: 20, PrefixLen: 8},  // narrow keys, uneven last level
		{KeyBits: 32, PrefixLen: 16}, // widest buckets
		{KeyBits: 1, PrefixLen: 1},   // degenerate single-bit tree
		{PayloadWidth: 2, PrefixLen: 5},
	}
	for _, cfg := range cfgs {
		tr := MustNew(cfg)
		rng := rand.New(rand.NewSource(int64(cfg.PrefixLen)*64 + int64(cfg.KeyBits)))
		keyMask := ^uint64(0)
		if kb := cfg.KeyBits; kb != 0 && kb < 64 {
			keyMask = 1<<kb - 1
		}
		present := make([]uint64, 300)
		for i := range present {
			present[i] = rng.Uint64() & keyMask
		}
		var rows [][]uint64
		if cfg.PayloadWidth > 0 {
			rows = make([][]uint64, len(present))
			for i := range rows {
				rows[i] = make([]uint64, cfg.PayloadWidth)
			}
		}
		tr.InsertBatch(present, rows)

		batch := make([]uint64, 0, 700)
		batch = append(batch, present...)      // hits
		batch = append(batch, present[:50]...) // duplicates
		for i := 0; i < 300; i++ {             // mostly misses
			batch = append(batch, rng.Uint64()&keyMask)
		}
		diffLookup(t, tr, batch, "mixed")
		diffLookup(t, tr, batch[:0], "empty")
		diffLookup(t, tr, batch[len(present):len(present)+50], "all-dup")

		miss := make([]uint64, 64)
		for i := range miss {
			miss[i] = rng.Uint64() & keyMask
		}
		diffLookup(t, tr, miss, "all-miss-ish")
	}
}

// FuzzKernelVsScalar is the differential fuzz over the two descent
// strategies: random key widths (including full 64-bit keys), random
// prefix lengths, empty / all-miss / duplicate-heavy batches. The scalar
// job loop is the oracle; any divergence in hit set, leaf identity, or
// visit order is a bug.
func FuzzKernelVsScalar(f *testing.F) {
	f.Add(int64(1), uint16(512), uint8(64), uint8(4), uint8(50))
	f.Add(int64(2), uint16(0), uint8(64), uint8(4), uint8(0))    // empty batch
	f.Add(int64(3), uint16(100), uint8(64), uint8(6), uint8(0))  // all-miss
	f.Add(int64(4), uint16(64), uint8(20), uint8(8), uint8(100)) // all-hit, narrow keys
	f.Add(int64(5), uint16(33), uint8(32), uint8(16), uint8(80)) // widest buckets
	f.Add(int64(6), uint16(17), uint8(1), uint8(1), uint8(100))  // single-bit keyspace
	f.Fuzz(func(t *testing.T, seed int64, n uint16, keyBits, prefixLen, hitPct uint8) {
		cfg := Config{KeyBits: uint(keyBits%64) + 1, PrefixLen: uint(prefixLen%16) + 1}
		tr := MustNew(cfg)
		rng := rand.New(rand.NewSource(seed))
		keyMask := ^uint64(0)
		if cfg.KeyBits < 64 {
			keyMask = 1<<cfg.KeyBits - 1
		}
		present := make([]uint64, 128)
		for i := range present {
			present[i] = rng.Uint64() & keyMask
		}
		tr.InsertBatch(present, nil)
		batch := make([]uint64, int(n)%1024)
		for i := range batch {
			if uint8(rng.Intn(100)) < hitPct {
				batch[i] = present[rng.Intn(len(present))]
			} else {
				batch[i] = rng.Uint64() & keyMask
			}
		}
		diffLookup(t, tr, batch, "fuzz")
	})
}

// TestLookupBatchKernelAllocationFree mirrors TestLookupBatchAllocationFree
// for the kernel descent: after warm-up, the pooled parallel arrays make
// the SWAR path allocate nothing per batch.
func TestLookupBatchKernelAllocationFree(t *testing.T) {
	if kernel.RaceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector, so pooled scratch allocates by design")
	}
	keys := benchKeys(1<<12, 103)
	tr := buildArena(keys, benchRows(keys))
	tr.lookupBatchKernel(keys[:DefaultBatchSize], func(int, *Leaf) {}) // warm the pool
	var sink uint64
	allocs := testing.AllocsPerRun(20, func() {
		tr.lookupBatchKernel(keys[:DefaultBatchSize], func(_ int, lf *Leaf) {
			if lf != nil {
				sink += lf.Key
			}
		})
	})
	if allocs != 0 {
		t.Fatalf("lookupBatchKernel allocates %.1f objects per batch, want 0", allocs)
	}
	_ = sink
}

// BenchmarkProbeKernel compares the two descent strategies behind
// LookupBatch on the same sorted probe batch: the SWAR level-synchronous
// kernel vs the scalar job loop (forced via the dispatch switch, exactly
// how -nokernel and the scalar ablation leg run it).
func BenchmarkProbeKernel(b *testing.B) {
	keys := benchKeys(1<<16, 107)
	tr := buildArena(keys, benchRows(keys))
	batch := append([]uint64(nil), keys[:DefaultBatchSize]...)
	slices.Sort(batch) // fused chains deliver probe batches key-sorted
	run := func(b *testing.B) {
		b.ReportAllocs()
		var hits int
		tr.LookupBatch(batch, func(int, *Leaf) {}) // warm pools
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hits = 0
			tr.LookupBatch(batch, func(_ int, lf *Leaf) {
				if lf != nil {
					hits++
				}
			})
		}
		if hits != len(batch) {
			b.Fatalf("resolved %d of %d", hits, len(batch))
		}
	}
	b.Run("kernel", run)
	b.Run("scalar", func(b *testing.B) {
		defer kernel.ForceGeneric()()
		run(b)
	})
}
