//go:build unix

package prefixtree

import (
	"syscall"
	"testing"

	"qppt/internal/arena"
)

// ThawMapped must reproduce the index from a private mapping with the
// node chunks adopted (not copied), and the tree must stay fully usable —
// including Free-path writes, which hit the mapping's copy-on-write pages
// — and survive Materialize.
func TestThawMappedAdoptsNodeChunks(t *testing.T) {
	const n = 30000
	tr := MustNew(Config{PrefixLen: 4, KeyBits: 32, PayloadWidth: 1})
	for i := 0; i < n; i++ {
		tr.Insert(uint64(i)*7, []uint64{uint64(i)})
	}
	f := freezeToFile(t, tr)
	defer f.Close()
	fi, _ := f.Stat()
	data, err := syscall.Mmap(int(f.Fd()), 0, int(fi.Size()),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		t.Skipf("mmap unavailable: %v", err)
	}
	unmapped := false
	defer func() {
		if !unmapped {
			syscall.Munmap(data)
		}
	}()
	mr := arena.NewMapReader(data)
	if err := tr.ThawMapped(mr); err != nil {
		t.Fatalf("ThawMapped: %v", err)
	}
	if !tr.nodes.Mapped() {
		t.Fatal("no node chunks adopted from the mapping")
	}
	if mr.Copied() >= fi.Size() {
		t.Fatal("mmap thaw copied the whole file")
	}
	for i := 0; i < n; i += 97 {
		lf := tr.Lookup(uint64(i) * 7)
		if lf == nil || lf.Vals.First()[0] != uint64(i) {
			t.Fatalf("key %d wrong after mmap thaw", i*7)
		}
	}
	// Mutations write into the private mapping (page-level copy-on-write)
	// and must work.
	if !tr.Delete(7) {
		t.Fatal("delete on mapped tree failed")
	}
	tr.Insert(7, []uint64{123})
	// Materialize detaches from the mapping; queries keep working after
	// the pages go away.
	tr.Materialize()
	if tr.nodes.Mapped() {
		t.Fatal("Materialize left mapped chunks")
	}
	syscall.Munmap(data)
	unmapped = true
	if lf := tr.Lookup(7); lf == nil || lf.Vals.First()[0] != 123 {
		t.Fatal("materialized tree lost data")
	}
	if tr.Keys() != n {
		t.Fatalf("Keys = %d, want %d", tr.Keys(), n)
	}
}
