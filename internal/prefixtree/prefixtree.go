// Package prefixtree implements the generalized prefix tree of Böhm et al.
// as deployed by QPPT (paper Section 2.1, Figure 2(a)).
//
// The tree is order-preserving and — unlike a B+-Tree — unbalanced: it
// splits the big-endian binary representation of a key into fragments of an
// equal prefix length k′ and uses each fragment to pick one of the 2^k′
// buckets of the node at that level, so every key has a fixed position in
// the tree. Thanks to the *dynamic expansion* optimization, a key's content
// node is stored at the shallowest level at which its fragment path is
// unique; inner nodes are only created on demand when two keys collide.
// Because of that, the key cannot always be reconstructed from the path, so
// content nodes store the complete key for the final comparison.
//
// Storage follows the compact-pointer arena layout of the KISS-Tree (paper
// Section 2.2; Kissinger et al., DaMoN 2012): nodes live in a chunked slot
// arena and content leaves in a chunked leaf arena (package arena), and a
// node bucket is a single 32-bit tagged reference — empty, child node, or
// leaf — instead of a {child, leaf} pointer pair. That packs 4× more
// buckets into a cache line than the pointer layout (16 slots per line at
// k′=4), keeps the garbage collector out of tree interiors (a million-node
// tree is a handful of chunk allocations, not a million scannable
// objects), and survives arena growth because chunks never move. The
// pointer-based baseline is retained as package ptrtree for the layout
// ablation.
//
// Duplicates — multiple payload rows per key — are stored in sequential
// doubling segments (package duplist, paper Section 2.4) carved from a
// slab owned by the tree, and batched lookups/inserts process many keys
// level-by-level to overlap their memory accesses (paper Section 2.3,
// Algorithm 1).
//
// The tree is a single-writer structure: concurrent readers are safe only
// while no writer is active. QPPT's evaluation is single-threaded by
// design, matching the paper.
package prefixtree

import (
	"fmt"

	"qppt/internal/arena"
	"qppt/internal/duplist"
)

// Config parameterizes a Tree.
type Config struct {
	// PrefixLen is k′, the number of key bits consumed per tree level.
	// Must be in [1, 16]; the paper's default (and the best standard
	// trade-off, Section 2.1) is 4.
	PrefixLen uint
	// KeyBits is the key width in bits, in [1, 64]. Index keys narrower
	// than 64 bits make the tree shallower. Default 64.
	KeyBits uint
	// PayloadWidth is the number of uint64 attribute values stored per
	// row. Width 0 builds a pure existence index.
	PayloadWidth int
	// Fold, if non-nil, turns the tree into an aggregating index:
	// inserting a row under an existing key folds the new row into the
	// stored one instead of appending a duplicate (grouping/aggregation
	// as a side effect of index construction, paper Section 3).
	Fold func(dst, src []uint64)
	// Recycler, if non-nil, routes the tree's chunk storage — node
	// chunks, leaf chunks and slab blocks — through a plan-scoped chunk
	// pool: growth draws from it, and Release/Recycle park the chunks
	// there for the next index instead of handing them to the GC.
	Recycler *arena.Recycler
}

func (c *Config) normalize() error {
	if c.PrefixLen == 0 {
		c.PrefixLen = 4
	}
	if c.KeyBits == 0 {
		c.KeyBits = 64
	}
	if c.PrefixLen > 16 {
		return fmt.Errorf("prefixtree: PrefixLen %d out of range [1,16]", c.PrefixLen)
	}
	if c.KeyBits > 64 {
		return fmt.Errorf("prefixtree: KeyBits %d out of range [1,64]", c.KeyBits)
	}
	if c.PayloadWidth < 0 {
		return fmt.Errorf("prefixtree: negative PayloadWidth")
	}
	return nil
}

// rootNode is the arena ordinal of the root node; it is allocated first
// and never freed.
const rootNode uint32 = 0

// leafChunkBits sizes the leaf arena chunks: 4096 leaves (~256 KiB) per
// chunk, matching the slot-arena chunk granularity.
const leafChunkBits = 12

// A Tree is a generalized prefix tree mapping uint64 keys to lists of
// fixed-width payload rows.
type Tree struct {
	cfg    Config
	levels int    // maximum depth in nodes
	fanout int    // 2^k′
	mask   uint64 // fanout-1
	keys   int    // distinct keys
	rows   int    // total payload rows

	// nodes stores each inner node as one block of fanout tagged slots;
	// leaves stores the content nodes. Both arenas have stable addresses,
	// so *Leaf results stay valid while the tree grows.
	nodes      arena.Slots
	leaves     arena.Arena[Leaf]
	freeLeaves []uint32 // recycled leaf indexes (from Delete)

	// slab feeds duplicate-segment and first-row storage for all of this
	// tree's lists, so index construction allocates large blocks instead
	// of per-key objects.
	slab *duplist.Slab

	// frozen marks a tree whose chunk storage is spilled (see spill.go);
	// counters and geometry stay valid, everything else is on disk.
	frozen bool
	// partial marks a tree whose leaf payloads were only partially
	// restored by ThawRange; thawedChunks records which leaf chunks are
	// back. Only keys inside the union of the thawed ranges may be
	// queried — leaves of skipped chunks read as empty zero leaves.
	partial      bool
	thawedChunks []bool
}

// A Leaf is a content node: the full key (required because dynamic
// expansion loses path information) plus all payload rows for that key.
// The row list is embedded by value to avoid a pointer chase per access.
type Leaf struct {
	Key  uint64
	Vals duplist.List
}

// New creates an empty tree. It returns an error for out-of-range
// configuration values.
func New(cfg Config) (*Tree, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:    cfg,
		fanout: 1 << cfg.PrefixLen,
		mask:   uint64(1)<<cfg.PrefixLen - 1,
		levels: int((cfg.KeyBits + cfg.PrefixLen - 1) / cfg.PrefixLen),
		nodes:  arena.MakeSlots(1 << cfg.PrefixLen),
		leaves: arena.Make[Leaf](leafChunkBits),
		slab:   duplist.NewSlabIn(cfg.Recycler),
	}
	t.nodes.SetRecycler(cfg.Recycler)
	t.leaves.SetRecycler(cfg.Recycler)
	t.nodes.Alloc() // the root, ordinal 0
	return t, nil
}

// MustNew is New that panics on error, for static configurations.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// frag extracts the key fragment for the given level (0 = root). Fragments
// are taken from the most significant bits first so bucket order equals key
// order, which makes the tree order-preserving.
func (t *Tree) frag(key uint64, level int) uint64 {
	shift := int(t.cfg.KeyBits) - (level+1)*int(t.cfg.PrefixLen)
	if shift <= 0 {
		// Deepest level: the remaining low-order bits.
		return key & (t.mask >> uint(-shift))
	}
	return (key >> uint(shift)) & t.mask
}

// Keys reports the number of distinct keys in the tree.
func (t *Tree) Keys() int { return t.keys }

// Rows reports the total number of payload rows in the tree.
func (t *Tree) Rows() int { return t.rows }

// PayloadWidth reports the payload row width in uint64 words.
func (t *Tree) PayloadWidth() int { return t.cfg.PayloadWidth }

// KeyBits reports the configured key width in bits.
func (t *Tree) KeyBits() uint { return t.cfg.KeyBits }

// PrefixLen reports k′.
func (t *Tree) PrefixLen() uint { return t.cfg.PrefixLen }

// checkKey panics if key has bits outside the configured key width; such a
// key can never be stored or found and always indicates a caller bug.
func (t *Tree) checkKey(key uint64) {
	if t.cfg.KeyBits < 64 && key>>t.cfg.KeyBits != 0 {
		panic(fmt.Sprintf("prefixtree: key %#x exceeds %d key bits", key, t.cfg.KeyBits))
	}
}

// leaf returns the address of leaf idx in the arena.
func (t *Tree) leaf(idx uint32) *Leaf { return t.leaves.At(idx) }

// newLeaf allocates a content node for key, recycling leaves freed by
// Delete, and returns its arena index.
func (t *Tree) newLeaf(key uint64) uint32 {
	t.keys++
	if k := len(t.freeLeaves); k > 0 {
		li := t.freeLeaves[k-1]
		t.freeLeaves = t.freeLeaves[:k-1]
		*t.leaf(li) = Leaf{Key: key, Vals: duplist.Make(t.cfg.PayloadWidth)}
		return li
	}
	return t.leaves.Alloc(Leaf{Key: key, Vals: duplist.Make(t.cfg.PayloadWidth)})
}

// Insert adds a payload row under key. With a Fold configured, the row is
// aggregated into the existing row for the key instead.
func (t *Tree) Insert(key uint64, row []uint64) {
	t.checkKey(key)
	lf := t.leafFor(key)
	t.addRow(lf, row)
}

// addRow appends or folds row into lf, maintaining the row count. Storage
// comes from the tree's slab.
func (t *Tree) addRow(lf *Leaf, row []uint64) {
	if t.cfg.Fold != nil {
		was := lf.Vals.Len()
		lf.Vals.AggregateIn(t.slab, row, t.cfg.Fold)
		t.rows += lf.Vals.Len() - was
		return
	}
	lf.Vals.AppendIn(t.slab, row)
	t.rows++
}

// leafFor finds or creates the content node for key, applying dynamic
// expansion on collision.
func (t *Tree) leafFor(key uint64) *Leaf {
	n := rootNode
	for level := 0; ; level++ {
		blk := t.nodes.Block(n)
		f := t.frag(key, level)
		r := arena.Ref(blk[f])
		if !r.IsNil() && !r.IsLeaf() {
			n = r.Index()
			continue
		}
		if r.IsNil() {
			li := t.newLeaf(key)
			blk[f] = uint32(arena.LeafRef(li))
			return t.leaf(li)
		}
		li := r.Index()
		lf := t.leaf(li)
		if lf.Key == key {
			return lf
		}
		// Collision: expand by one level, pushing the resident leaf down.
		// The loop retries the same key at the new child; keys differ, so
		// their fragment paths split within t.levels levels and the loop
		// terminates. blk stays valid across Alloc: chunks never move.
		child := t.nodes.Alloc()
		t.nodes.Block(child)[t.frag(lf.Key, level+1)] = uint32(r)
		blk[f] = uint32(arena.NodeRef(child))
		n = child
	}
}

// Lookup returns the leaf for key, or nil if the key is absent.
func (t *Tree) Lookup(key uint64) *Leaf {
	t.checkKey(key)
	n := rootNode
	for level := 0; ; level++ {
		r := arena.Ref(t.nodes.Block(n)[t.frag(key, level)])
		if r.IsNil() {
			return nil
		}
		if r.IsLeaf() {
			lf := t.leaf(r.Index())
			if lf.Key == key {
				return lf
			}
			return nil
		}
		n = r.Index()
	}
}

// Contains reports whether key is present.
func (t *Tree) Contains(key uint64) bool { return t.Lookup(key) != nil }

// Delete removes key and all its rows, reporting whether it was present.
// Emptied inner nodes along the path are unlinked and recycled so
// iteration stays proportional to live content. The leaf header is
// recycled too; its slab-backed payload segments are only reclaimed when
// the whole tree is dropped — deletes are rare on QPPT intermediate
// indexes, which are built once and then only read.
func (t *Tree) Delete(key uint64) bool {
	t.checkKey(key)
	var path [65]uint32
	n := rootNode
	level := 0
	for {
		path[level] = n
		r := arena.Ref(t.nodes.Block(n)[t.frag(key, level)])
		if r.IsNil() {
			return false
		}
		if !r.IsLeaf() {
			n = r.Index()
			level++
			continue
		}
		li := r.Index()
		lf := t.leaf(li)
		if lf.Key != key {
			return false
		}
		t.keys--
		t.rows -= lf.Vals.Len()
		*lf = Leaf{} // drop row storage references before recycling
		t.freeLeaves = append(t.freeLeaves, li)
		t.nodes.Block(n)[t.frag(key, level)] = uint32(arena.Nil)
		break
	}
	// Unlink and recycle now-empty nodes bottom-up (the root always stays).
	for l := level; l > 0; l-- {
		if !t.emptyNode(path[l]) {
			break
		}
		t.nodes.Block(path[l-1])[t.frag(key, l-1)] = uint32(arena.Nil)
		t.nodes.Free(path[l])
	}
	return true
}

func (t *Tree) emptyNode(n uint32) bool {
	for _, v := range t.nodes.Block(n) {
		if v != uint32(arena.Nil) {
			return false
		}
	}
	return true
}

// Iterate visits every leaf in ascending key order. It stops early if visit
// returns false and reports whether the scan ran to completion.
func (t *Tree) Iterate(visit func(lf *Leaf) bool) bool {
	return t.iterate(rootNode, visit)
}

func (t *Tree) iterate(n uint32, visit func(lf *Leaf) bool) bool {
	for _, v := range t.nodes.Block(n) {
		r := arena.Ref(v)
		switch {
		case r.IsNil():
		case r.IsLeaf():
			if !visit(t.leaf(r.Index())) {
				return false
			}
		default:
			if !t.iterate(r.Index(), visit) {
				return false
			}
		}
	}
	return true
}

// Range visits, in ascending key order, every leaf with lo <= key <= hi.
// It stops early if visit returns false and reports whether the scan ran to
// completion.
func (t *Tree) Range(lo, hi uint64, visit func(lf *Leaf) bool) bool {
	t.checkKey(lo)
	t.checkKey(hi)
	if lo > hi {
		return true
	}
	return t.rangeNode(rootNode, 0, lo, hi, visit)
}

func (t *Tree) rangeNode(n uint32, level int, lo, hi uint64, visit func(lf *Leaf) bool) bool {
	// Restrict the fragment window at this level using the bounds' paths.
	// Only the first and last qualifying buckets need recursive bound
	// checks; buckets strictly between them are fully inside the range.
	blk := t.nodes.Block(n)
	loFrag := t.frag(lo, level)
	hiFrag := t.frag(hi, level)
	for f := loFrag; f <= hiFrag; f++ {
		r := arena.Ref(blk[f])
		if r.IsNil() {
			continue
		}
		if r.IsLeaf() {
			lf := t.leaf(r.Index())
			if lf.Key >= lo && lf.Key <= hi {
				if !visit(lf) {
					return false
				}
			}
			continue
		}
		child := r.Index()
		switch {
		case f == loFrag && f == hiFrag:
			if !t.rangeNode(child, level+1, lo, hi, visit) {
				return false
			}
		case f == loFrag:
			if !t.rangeNode(child, level+1, lo, t.keyMax(), visit) {
				return false
			}
		case f == hiFrag:
			if !t.rangeNode(child, level+1, 0, hi, visit) {
				return false
			}
		default:
			if !t.iterate(child, visit) {
				return false
			}
		}
	}
	return true
}

// keyMax returns the largest representable key for the configured width.
// Once the scan has descended past the low (resp. high) edge of a range,
// the bound on the other side no longer constrains the subtree, so it is
// widened to the full key space.
func (t *Tree) keyMax() uint64 {
	if t.cfg.KeyBits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<t.cfg.KeyBits - 1
}

// Min returns the smallest key in the tree; ok is false if the tree is
// empty.
func (t *Tree) Min() (key uint64, ok bool) {
	t.Iterate(func(lf *Leaf) bool {
		key, ok = lf.Key, true
		return false
	})
	return key, ok
}

// Max returns the largest key in the tree; ok is false if the tree is
// empty.
func (t *Tree) Max() (uint64, bool) {
	n := rootNode
	for {
		blk := t.nodes.Block(n)
		last := arena.Nil
		for i := t.fanout - 1; i >= 0; i-- {
			if r := arena.Ref(blk[i]); !r.IsNil() {
				last = r
				break
			}
		}
		if last.IsNil() {
			return 0, false
		}
		if last.IsLeaf() {
			return t.leaf(last.Index()).Key, true
		}
		n = last.Index()
	}
}

// Bytes estimates the heap footprint of the tree in bytes: the node slot
// arena, the leaf arena, and the slab holding all payload rows and
// duplicate segments. Arena numbers are reserved chunk capacity, so the
// estimate tracks what actually sits in the heap; a frozen (spilled) tree
// reports only its residual in-memory state.
func (t *Tree) Bytes() int {
	b := t.nodes.Bytes() + t.leaves.Bytes()
	if t.slab != nil {
		b += t.slab.Bytes()
	}
	return b
}

// Nodes reports the number of live inner nodes, for memory accounting
// tests.
func (t *Tree) Nodes() int { return t.nodes.Live() }

// MaxDepth returns the deepest leaf level currently present (root = level
// 0). A freshly filled dense tree of n keys has depth ~ log2(n)/k′ thanks
// to dynamic expansion.
func (t *Tree) MaxDepth() int {
	return t.maxDepth(rootNode, 0)
}

func (t *Tree) maxDepth(n uint32, level int) int {
	d := level
	for _, v := range t.nodes.Block(n) {
		if r := arena.Ref(v); !r.IsNil() && !r.IsLeaf() {
			if cd := t.maxDepth(r.Index(), level+1); cd > d {
				d = cd
			}
		}
	}
	return d
}
